// Package walberla is a Go reproduction of the waLBerla framework as
// published in "A Framework for Hybrid Parallel Flow Simulations with a
// Trillion Cells in Complex Geometries" (SC '13): a block-structured
// lattice Boltzmann framework with fully distributed data structures,
// optimized D3Q19 SRT/TRT compute kernels in the paper's three
// optimization stages, a parallel initialization pipeline for complex
// surface-mesh geometries, static load balancing, and the roofline/ECM
// performance models with machine and network descriptions of SuperMUC
// and JUQUEEN used to regenerate the paper's evaluation.
//
// The library lives under internal/: see internal/core for the high-level
// entry point, examples/ for runnable programs, cmd/walberla-bench for
// the harness regenerating every figure of the paper, and DESIGN.md /
// EXPERIMENTS.md for the system inventory and the paper-vs-measured
// record. The root package holds the benchmark suite (bench_test.go),
// one benchmark per table and figure.
package walberla
