// Command walberla-sim runs a distributed flow simulation: it loads a
// block-structure file produced by blockgen (or builds one on the fly),
// distributes it over the requested number of ranks exactly as the paper
// describes (single reader, broadcast, per-rank construction), voxelizes
// the geometry per rank, runs the time loop, reports MLUPS/MFLUPS and
// communication statistics, and optionally writes VTK output and PDF
// checkpoints per block.
//
// Usage:
//
//	walberla-sim -tree -dx 0.006 -cells 16 -ranks 4 -steps 200 -vtk out/
//	walberla-sim -blocks tree.wbf -tree -ranks 8 -steps 500 -kernel "TRT Interval"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"

	"walberla/internal/blockforest"
	"walberla/internal/boundary"
	"walberla/internal/comm"
	"walberla/internal/distance"
	"walberla/internal/mesh"
	"walberla/internal/output"
	"walberla/internal/perfmodel"
	"walberla/internal/scenario"
	"walberla/internal/setup"
	"walberla/internal/sim"
	"walberla/internal/telemetry"
	"walberla/internal/vascular"
)

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "scenario JSON file (see docs/SERVE.md); explicitly set flags override its fields")

		blocksPath = flag.String("blocks", "", "block structure file from blockgen (optional)")
		meshPath   = flag.String("mesh", "", "colored mesh file (WBM1)")
		useTree    = flag.Bool("tree", false, "use the built-in synthetic coronary tree")
		treeDepth  = flag.Int("tree-depth", 3, "bifurcation depth of the synthetic tree")
		seed       = flag.Int64("seed", 1, "generation/balancing seed")
		cells      = flag.Int("cells", 16, "cells per block edge (when building the forest here)")
		dx         = flag.Float64("dx", 0, "lattice spacing (when building the forest here)")
		ranks      = flag.Int("ranks", 4, "number of SPMD ranks")
		spares     = flag.Int("spares", 0, "spare ranks parked beside the active world for heal-mode recovery: a failure recruits one, its buddy streams the dead rank's state over, and the run resumes at full size (-recover-mode heal)")
		steps      = flag.Int("steps", 200, "time steps")
		kernel     = flag.String("kernel", "auto", "compute kernel: auto (per-block selection), generic, split, sparse, or an exact kernel name")
		layout     = flag.String("layout", "auto", "PDF memory layout: auto, aos or soa (bit-identical fields either way)")
		workers    = flag.Int("workers", 1, "intra-rank worker threads for block sweeps (hybrid mode)")
		exchange   = flag.String("exchange", "aggregated", "ghost exchange wire format: aggregated (one message per neighbor rank) or per-pair (one per block pair)")
		transport  = flag.String("transport", "inproc", "rank interconnect: inproc (shared-memory mailboxes) or unix/tcp (framed sockets with CRC-32C, heartbeats and reconnect)")
		transAddrs = flag.String("transport-addrs", "", "comma-separated listen address per rank for the socket transport (empty = ephemeral loopback/temp sockets)")
		heartbeat  = flag.Duration("heartbeat", 0, "socket transport heartbeat interval (0 = default 20ms)")
		tau        = flag.Float64("tau", 0.6, "relaxation time")
		inflowU    = flag.Float64("inflow", 0.02, "inflow velocity magnitude (+z)")
		vtkDir     = flag.String("vtk", "", "write per-block VTK files into this directory")
		ckptDir    = flag.String("checkpoint", "", "write per-block PDF checkpoints into this directory")
		rebalance  = flag.Int("rebalance", 0, "dynamically rebalance by measured compute time every N steps (0 = off)")
		resumeDir  = flag.String("resume", "", "restore per-block PDF checkpoints from this directory before stepping")

		tracePath   = flag.String("trace", "", "write a Chrome-trace/Perfetto JSON of all ranks' phase spans to this file (load in ui.perfetto.dev or chrome://tracing)")
		metricsJSON = flag.String("metrics-json", "", "write a merged JSON metrics snapshot (counters, gauges, histograms, roofline comparison) to this file")
		metricsAddr = flag.String("metrics-addr", "", `serve live metrics snapshots over HTTP on this address while the run is in flight (e.g. "localhost:6060")`)
		machineName = flag.String("machine", "supermuc", "perfmodel machine for the roofline comparison: supermuc or juqueen")

		amrMaxLevel     = flag.Int("amr-max-level", 0, "enable runtime adaptive mesh refinement up to this octree depth (0 = uniform grid; needs -scenario, see docs/AMR.md)")
		amrCriterion    = flag.String("amr-criterion", "", "AMR refine/coarsen criterion: gradient (default) or vorticity")
		amrRefineAbove  = flag.Float64("amr-refine-above", 0, "AMR criterion threshold above which a block refines")
		amrCoarsenBelow = flag.Float64("amr-coarsen-below", 0, "AMR criterion threshold below which a block coarsens")
		amrInterval     = flag.Int("amr-interval", 0, "coarse steps between AMR controller passes (default 4)")

		checkpointEvery = flag.Int("checkpoint-every", 0, "run the fault-tolerant driver, taking a coordinated checkpoint set every N steps (0 = off)")
		checkpointSets  = flag.String("checkpoint-sets", "checkpoint-sets", "directory for coordinated checkpoint sets (with -checkpoint-every)")
		injectFault     = flag.String("inject-fault", "", `deterministic fault plan, e.g. "crash=1@40,hang=2@80,drop=0.001,delay=0.01:2ms,seed=7"`)
		recoverMode     = flag.String("recover-mode", "rewind", "recovery after a rank failure: rewind (disk checkpoint sets), shrink (in-memory buddy replicas, survivors adopt the dead rank's blocks) or heal (shrink, then a spare rank rejoins and the world re-grows to full size; see -spares)")
		failTimeout     = flag.Duration("fail-timeout", 0, "declare a rank failed when a receive from it exceeds this deadline (0 = no silent-failure detection)")
		maxFailures     = flag.Int("max-failures", -1, "abort after this many rank failures (-1 = default of 8, 0 = abort on the first failure)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the run at the next step boundary on every
	// rank (in-flight checkpoint sets always commit first); output and
	// telemetry are still written from the consistent interrupted state.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	faults, err := parseFaultSpec(*injectFault)
	if err != nil {
		fatal(fmt.Errorf("-inject-fault: %w", err))
	}
	if *spares > 0 {
		if *recoverMode != "heal" {
			fatal(fmt.Errorf("-spares needs -recover-mode heal (got %q)", *recoverMode))
		}
		if *checkpointEvery <= 0 {
			fatal(fmt.Errorf("-spares needs -checkpoint-every > 0 (the heal driver runs under the fault-tolerant loop)"))
		}
	}
	if faults != nil {
		// Fault targets may name spare ranks too: the world is ranks+spares.
		if err := faults.Validate(*ranks + *spares); err != nil {
			fatal(fmt.Errorf("-inject-fault: %w", err))
		}
	}
	if *amrMaxLevel > 0 && *scenarioPath == "" {
		fatal(fmt.Errorf("-amr-max-level needs -scenario (AMR runs are scenario-driven; see docs/AMR.md)"))
	}
	resilient := *checkpointEvery > 0 || faults != nil
	if resilient && *rebalance > 0 {
		fatal(fmt.Errorf("-rebalance cannot be combined with the fault-tolerant driver (-checkpoint-every / -inject-fault)"))
	}
	var netOpts *comm.NetOptions
	switch *transport {
	case "inproc":
		if *transAddrs != "" || *heartbeat != 0 {
			fatal(fmt.Errorf("-transport-addrs/-heartbeat need -transport unix or tcp"))
		}
	case "unix", "tcp":
		netOpts = &comm.NetOptions{Network: *transport, HeartbeatEvery: *heartbeat}
		if *transAddrs != "" {
			netOpts.Addrs = strings.Split(*transAddrs, ",")
			if len(netOpts.Addrs) != *ranks+*spares {
				fatal(fmt.Errorf("-transport-addrs: %d addresses for %d ranks (+%d spares)", len(netOpts.Addrs), *ranks, *spares))
			}
		}
	default:
		fatal(fmt.Errorf("-transport: unknown transport %q (want inproc, unix or tcp)", *transport))
	}

	var mode sim.RecoveryMode
	switch *recoverMode {
	case "rewind":
		mode = sim.RecoverRewind
	case "shrink":
		mode = sim.RecoverShrink
	case "heal":
		mode = sim.RecoverHeal
	default:
		fatal(fmt.Errorf("-recover-mode: unknown mode %q (want rewind, shrink or heal)", *recoverMode))
	}

	var machine *perfmodel.Machine
	switch *machineName {
	case "supermuc":
		machine = perfmodel.SuperMUCSocket()
	case "juqueen":
		machine = perfmodel.JUQUEENNode()
	default:
		fatal(fmt.Errorf("-machine: unknown machine %q (want supermuc or juqueen)", *machineName))
	}

	// Telemetry: one tracer per rank sharing the trace epoch, one registry
	// per rank, optionally exposed live over HTTP. Any telemetry flag
	// enables recording for all of them — the extra cost is spans into
	// preallocated rings and atomic counter updates.
	telemetryOn := *tracePath != "" || *metricsJSON != "" || *metricsAddr != ""
	var trace *telemetry.Trace
	if *tracePath != "" {
		trace = telemetry.NewTrace()
	}
	var server *telemetry.MetricsServer
	if *metricsAddr != "" {
		server = telemetry.NewMetricsServer()
		addr, err := server.Serve(*metricsAddr)
		if err != nil {
			fatal(err)
		}
		defer server.Close()
		fmt.Printf("serving metrics on http://%s/metrics\n", addr)
	}

	if *scenarioPath != "" {
		sc, err := scenario.ParseFile(*scenarioPath)
		if err != nil {
			fatal(err)
		}
		// Explicitly set flags override the corresponding scenario fields
		// — the scenario file is the source of truth, the command line a
		// per-invocation tweak.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "steps":
				sc.Run.Steps = *steps
			case "ranks":
				sc.Parallel.Ranks = *ranks
			case "spares":
				sc.Parallel.Spares = *spares
			case "workers":
				sc.Parallel.Workers = *workers
			case "exchange":
				sc.Parallel.Exchange = *exchange
			case "tau":
				sc.Collision.Tau = *tau
			case "kernel":
				sc.Collision.Kernel = *kernel
			case "layout":
				sc.Collision.Layout = *layout
			case "cells":
				sc.Resolution.CellsPerBlock = [3]int{*cells, *cells, *cells}
			case "dx":
				sc.Geometry.Dx = *dx
			case "inflow":
				sc.Geometry.InflowVelocity = *inflowU
			case "tree-depth":
				sc.Geometry.TreeDepth = *treeDepth
			case "seed":
				sc.Geometry.Seed = *seed
			case "rebalance":
				sc.Run.RebalanceEvery = *rebalance
			case "checkpoint-every":
				sc.Resilience.CheckpointEvery = *checkpointEvery
			case "checkpoint-sets":
				sc.Resilience.Dir = *checkpointSets
			case "recover-mode":
				sc.Resilience.Mode = *recoverMode
			case "fail-timeout":
				sc.Resilience.FailTimeout = scenario.Duration(*failTimeout)
			case "max-failures":
				sc.Resilience.MaxFailures = maxFailures
			case "transport":
				sc.Transport.Network = *transport
			case "transport-addrs":
				sc.Transport.Addrs = strings.Split(*transAddrs, ",")
			case "heartbeat":
				sc.Transport.Heartbeat = scenario.Duration(*heartbeat)
			case "amr-max-level":
				sc.Refinement.MaxLevel = *amrMaxLevel
			case "amr-criterion":
				sc.Refinement.Criterion = *amrCriterion
			case "amr-refine-above":
				sc.Refinement.RefineAbove = *amrRefineAbove
			case "amr-coarsen-below":
				sc.Refinement.CoarsenBelow = *amrCoarsenBelow
			case "amr-interval":
				sc.Refinement.Interval = *amrInterval
			}
		})
		if err := sc.Validate(); err != nil {
			fatal(err)
		}
		opts := scenario.ExecuteOptions{VTKDir: *vtkDir}
		var mu sync.Mutex
		regs := map[int]*telemetry.Registry{}
		if telemetryOn {
			opts.TelemetryFor = func(rank int) (*telemetry.Tracer, *telemetry.Registry) {
				reg := telemetry.NewRegistry()
				server.Register(rank, reg)
				mu.Lock()
				regs[rank] = reg
				mu.Unlock()
				return trace.NewTracer(rank, sc.Parallel.Workers, 0), reg
			}
		}
		res, err := scenario.Execute(ctx, sc, opts)
		if err != nil {
			fatal(err)
		}
		if res.Interrupted {
			fmt.Printf("interrupted at step %d (state is consistent at this boundary)\n", res.Steps)
		} else if len(res.Levels) > 0 {
			fmt.Printf("AMR run complete: %d steps, leaves per level %v\n", res.Steps, res.Levels)
		} else {
			fmt.Println("simulation:", res.Metrics)
		}
		fmt.Printf("field hash: %016x\n", res.Hash)
		writeTelemetry(*tracePath, *metricsJSON, trace, regs)
		return
	}

	sdf, err := loadGeometry(*meshPath, *useTree, *treeDepth, *seed)
	if err != nil {
		fatal(err)
	}

	var forest *blockforest.SetupForest
	if *blocksPath != "" {
		f, err := os.Open(*blocksPath)
		if err != nil {
			fatal(err)
		}
		forest, err = blockforest.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %s: %d blocks, grid %v\n", *blocksPath, forest.NumBlocks(), forest.GridSize)
		if forest.MaxRank() >= *ranks {
			fmt.Printf("rebalancing for %d ranks\n", *ranks)
			forest.BalanceMorton(*ranks)
		}
	} else {
		if *dx <= 0 {
			fatal(fmt.Errorf("-dx is required when no -blocks file is given"))
		}
		var stats setup.Stats
		forest, stats, err = setup.BuildForest(sdf, setup.Options{
			CellsPerBlock:       [3]int{*cells, *cells, *cells},
			Dx:                  *dx,
			Ranks:               *ranks,
			Seed:                *seed,
			UseGraphPartitioner: true,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("built forest: grid %v, %d blocks, %.2f%% fluid\n",
			stats.Grid, stats.Blocks, 100*stats.FluidFraction)
	}

	for _, dir := range []string{*vtkDir, *ckptDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
	}

	exMode, err := parseExchangeMode(*exchange)
	if err != nil {
		fatal(err)
	}
	kernelChoice, err := sim.ParseKernelChoice(*kernel)
	if err != nil {
		fatal(fmt.Errorf("-kernel: %w", err))
	}
	layoutChoice, err := sim.ParseLayoutChoice(*layout)
	if err != nil {
		fatal(fmt.Errorf("-layout: %w", err))
	}
	cfg := sim.Config{
		Kernel:     kernelChoice,
		Layout:     layoutChoice,
		Workers:    *workers,
		Exchange:   exMode,
		Tau:        *tau,
		Boundary:   boundary.Config{WallVelocity: [3]float64{0, 0, *inflowU}, Density: 1},
		SetupFlags: setup.FlagsFromSDF(sdf),
	}

	var mu sync.Mutex
	var metrics sim.Metrics
	var overlap sim.OverlapTimes
	var frontier, interior int
	var files int
	var fieldHash uint64
	var interruptedAt int
	var roofline telemetry.RooflineReport
	regs := map[int]*telemetry.Registry{}
	rc := sim.ResilienceConfig{
		CheckpointEvery: *checkpointEvery,
		Dir:             *checkpointSets,
		Mode:            mode,
		MaxFailures:     *maxFailures,
	}
	comm.RunWithOptions(*ranks+*spares, comm.Options{Faults: faults, FailTimeout: *failTimeout, Net: netOpts}, func(c *comm.Comm) {
		rcfg := cfg
		if telemetryOn {
			reg := telemetry.NewRegistry()
			rcfg.Tracer = trace.NewTracer(c.WorldRank(), *workers, 0) // nil trace → untraced
			rcfg.Metrics = reg
			server.Register(c.WorldRank(), reg)
			mu.Lock()
			regs[c.WorldRank()] = reg
			mu.Unlock()
		}
		var s *sim.Simulation
		var m sim.Metrics
		var err error
		interrupted := false
		if *spares > 0 && c.WorldRank() >= *ranks {
			// Spare rank: park until a failure recruits it (or the run ends).
			header := &blockforest.BlockForest{
				Domain:        forest.Domain,
				GridSize:      forest.GridSize,
				CellsPerBlock: forest.CellsPerBlock,
			}
			var joined bool
			s, m, joined, err = sim.RunSpareCtx(ctx, c, *ranks, header, rcfg, *steps, rc)
			if !joined {
				if err != nil {
					fatal(err)
				}
				return
			}
			if errors.Is(err, sim.ErrInterrupted) {
				interrupted = true
			} else if err != nil {
				fatal(err)
			}
		} else {
			// Active rank: with spares parked, the simulation runs on the
			// world's leading sub-communicator.
			ac := c
			if *spares > 0 {
				ac = c.GrowWorld(*ranks)
			}
			var in *blockforest.SetupForest
			if ac.Rank() == 0 {
				in = forest
			}
			bf, err2 := blockforest.Distribute(ac, in)
			if err2 != nil {
				fatal(err2)
			}
			s, err = sim.New(ac, bf, rcfg)
			if err != nil {
				fatal(err)
			}
			if *resumeDir != "" {
				restored := 0
				for _, bd := range s.Blocks {
					name := fmt.Sprintf("block_%d_%d_%d.wbc",
						bd.Block.Coord[0], bd.Block.Coord[1], bd.Block.Coord[2])
					fh, err := os.Open(filepath.Join(*resumeDir, name))
					if err != nil {
						continue // no checkpoint for this block: keep initial state
					}
					err = output.RestorePDF(fh, bd.Src)
					fh.Close()
					if err != nil {
						fatal(err)
					}
					restored++
				}
				if restored > 0 && ac.Rank() == 0 {
					fmt.Printf("rank 0 restored %d block checkpoints from %s\n", restored, *resumeDir)
				}
			}
			if resilient {
				m, err = s.RunResilientCtx(ctx, *steps, rc)
				if err == sim.ErrRetired {
					// This rank failed permanently: under shrink the
					// survivors carry its blocks on; under heal a spare has
					// (or will have) taken its place.
					if mode == sim.RecoverHeal {
						fmt.Printf("rank %d retired; a spare rank adopted its blocks and the world re-grew\n", c.WorldRank())
					} else {
						fmt.Printf("rank %d retired; its blocks were adopted by the surviving ranks\n", c.WorldRank())
					}
					return
				}
				if errors.Is(err, sim.ErrInterrupted) {
					interrupted = true
				} else if err != nil {
					fatal(err)
				}
			} else if *rebalance > 0 {
				remaining := *steps
				for remaining > 0 && !interrupted {
					chunk := *rebalance
					if chunk > remaining {
						chunk = remaining
					}
					m, err = s.RunCtx(ctx, chunk)
					if errors.Is(err, sim.ErrInterrupted) {
						interrupted = true
						break
					}
					if err != nil {
						fatal(err)
					}
					remaining -= chunk
					if remaining > 0 {
						if err := s.RebalanceByWorkload(true); err != nil {
							fatal(err)
						}
						// RankLoad is collective: every rank participates.
						_, maxLoad, total := s.RankLoad()
						if c.Rank() == 0 {
							fmt.Printf("rebalanced: max rank load %d of %d fluid cells\n", maxLoad, total)
						}
					}
				}
			} else {
				m, err = s.RunCtx(ctx, *steps)
				if errors.Is(err, sim.ErrInterrupted) {
					interrupted = true
				} else if err != nil {
					fatal(err)
				}
			}
		}
		hash, err := s.FieldHash()
		if err != nil {
			fatal(err)
		}
		// The live measured-vs-model comparison lands in the registry, so
		// the metrics snapshot (file and HTTP endpoint) reports per-phase
		// MLUPS alongside the perfmodel prediction.
		report := s.RooflineReport(machine)
		report.Publish(rcfg.Metrics)
		mu.Lock()
		defer mu.Unlock()
		// Recovery may have renumbered the communicator (shrink) or swapped
		// members in (heal): the rank holding rank 0 NOW reports the result.
		if s.Comm.Rank() == 0 {
			metrics = m
			overlap = s.Overlap()
			frontier, interior = s.BlockSplit()
			roofline = report
			fieldHash = hash
			if interrupted {
				interruptedAt = s.Steps()
			}
		}
		for _, bd := range s.Blocks {
			spacing := (bd.Block.AABB.Max[0] - bd.Block.AABB.Min[0]) / float64(bd.Src.Nx)
			origin := [3]float64{
				bd.Block.AABB.Min[0] + spacing/2,
				bd.Block.AABB.Min[1] + spacing/2,
				bd.Block.AABB.Min[2] + spacing/2,
			}
			name := fmt.Sprintf("block_%d_%d_%d",
				bd.Block.Coord[0], bd.Block.Coord[1], bd.Block.Coord[2])
			if *vtkDir != "" {
				if err := writeFile(filepath.Join(*vtkDir, name+".vtk"), func(w *os.File) error {
					return output.WriteVTK(w, name, bd.Src, bd.Flags, origin, spacing)
				}); err != nil {
					fatal(err)
				}
				files++
			}
			if *ckptDir != "" {
				if err := writeFile(filepath.Join(*ckptDir, name+".wbc"), func(w *os.File) error {
					return output.SaveCheckpoint(w, bd.Src)
				}); err != nil {
					fatal(err)
				}
				files++
			}
		}
	})
	if interruptedAt > 0 {
		fmt.Printf("interrupted at step %d (state is consistent at this boundary)\n", interruptedAt)
	} else {
		fmt.Println("simulation:", metrics)
	}
	fmt.Printf("field hash: %016x\n", fieldHash)
	if *workers > 1 {
		fmt.Printf("hybrid: workers=%d blocks(frontier/interior)=%d/%d overlap: %v\n",
			*workers, frontier, interior, overlap)
	}
	if r := metrics.Recovery; r != (sim.RecoveryStats{}) {
		fmt.Printf("resilience: failures=%d restores=%d replayed=%d steps checkpoints=%d (%d bytes on rank 0) lost=%v\n",
			r.FailuresDetected, r.Restores, r.StepsReplayed,
			r.CheckpointsWritten, r.CheckpointBytes, r.TimeLost)
		if r.Replications > 0 || r.Shrinks > 0 {
			fmt.Printf("buddy: replications=%d (%d bytes on rank 0) buddy-restores=%d disk-restores=%d shrinks=%d adopted=%d blocks recovery-disk-reads=%d\n",
				r.Replications, r.ReplicaBytes, r.BuddyRestores, r.DiskRestores,
				r.Shrinks, r.BlocksAdopted, r.DiskReadsDuringRecovery)
		}
	}
	if roofline.Machine != "" {
		if err := roofline.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
	writeTelemetry(*tracePath, *metricsJSON, trace, regs)
	if files > 0 {
		fmt.Printf("wrote %d output files\n", files)
	}
}

// writeTelemetry flushes the optional trace and metrics artifacts; both
// the flag path and the scenario path end here.
func writeTelemetry(tracePath, metricsJSON string, trace *telemetry.Trace, regs map[int]*telemetry.Registry) {
	if tracePath != "" {
		if err := trace.WriteChromeFile(tracePath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (load in ui.perfetto.dev or chrome://tracing)\n", tracePath)
	}
	if metricsJSON != "" {
		var snaps []telemetry.Snapshot
		for rank, reg := range regs {
			snaps = append(snaps, reg.Snapshot(rank))
		}
		if err := writeFile(metricsJSON, func(w *os.File) error {
			return telemetry.Merge(snaps).WriteJSON(w)
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", metricsJSON)
	}
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}

func loadGeometry(meshPath string, useTree bool, depth int, seed int64) (distance.SDF, error) {
	if useTree {
		p := vascular.DefaultParams()
		p.Depth = depth
		p.Seed = seed
		return vascular.Generate(p).SDF()
	}
	if meshPath == "" {
		return nil, fmt.Errorf("either -mesh or -tree is required")
	}
	f, err := os.Open(meshPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := mesh.Read(f)
	if err != nil {
		return nil, err
	}
	return distance.NewField(m)
}

func parseExchangeMode(s string) (sim.ExchangeMode, error) {
	switch s {
	case "aggregated":
		return sim.ExchangeAggregated, nil
	case "per-pair":
		return sim.ExchangePerPair, nil
	}
	return 0, fmt.Errorf("-exchange: unknown mode %q (want aggregated or per-pair)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "walberla-sim:", err)
	os.Exit(1)
}
