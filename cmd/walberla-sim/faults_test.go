package main

import (
	"testing"
	"time"
)

func TestParseFaultSpec(t *testing.T) {
	p, err := parseFaultSpec("crash=1@40,crash=0@80,drop=0.001,delay=0.01:2ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Crashes) != 2 || p.Crashes[0].Rank != 1 || p.Crashes[0].Step != 40 ||
		p.Crashes[1].Rank != 0 || p.Crashes[1].Step != 80 {
		t.Fatalf("crashes = %+v", p.Crashes)
	}
	if p.Drop != 0.001 || p.DelayProb != 0.01 || p.MaxDelay != 2*time.Millisecond || p.Seed != 7 {
		t.Fatalf("plan = %+v", p)
	}

	p, err = parseFaultSpec("hang=2@10")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hangs) != 1 || p.Hangs[0].Rank != 2 || p.Hangs[0].Step != 10 {
		t.Fatalf("hangs = %+v", p.Hangs)
	}

	if p, err := parseFaultSpec(""); p != nil || err != nil {
		t.Fatalf("empty spec: %v, %v", p, err)
	}
	for _, bad := range []string{"crash=1", "crash=x@2", "hang=1", "hang=x@2", "drop=oops", "delay=0.5", "wat=1", "crash"} {
		if _, err := parseFaultSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
