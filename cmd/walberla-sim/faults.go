package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"walberla/internal/comm"
)

// parseFaultSpec parses the -inject-fault flag into a deterministic fault
// plan. The spec is a comma-separated list of clauses:
//
//	crash=RANK@STEP   kill RANK when the time loop reaches STEP (repeatable)
//	hang=RANK@STEP    silence RANK at STEP without any notification — the
//	                  failure is only detectable by timeout (-fail-timeout)
//	drop=P            drop each message with probability P
//	delay=P:DUR       delay each message with probability P by up to DUR
//	seed=N            seed of the deterministic fault decisions
//
// Example: "crash=1@40,drop=0.001,delay=0.01:2ms,seed=7".
func parseFaultSpec(spec string) (*comm.FaultPlan, error) {
	if spec == "" {
		return nil, nil
	}
	p := &comm.FaultPlan{Seed: 1}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("fault clause %q is not key=value", part)
		}
		switch key {
		case "crash", "hang":
			rankStr, stepStr, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("%s clause %q is not RANK@STEP", key, val)
			}
			rank, err := strconv.Atoi(rankStr)
			if err != nil {
				return nil, fmt.Errorf("%s rank %q: %v", key, rankStr, err)
			}
			step, err := strconv.Atoi(stepStr)
			if err != nil {
				return nil, fmt.Errorf("%s step %q: %v", key, stepStr, err)
			}
			if key == "crash" {
				p.Crashes = append(p.Crashes, comm.CrashSpec{Rank: rank, Step: step})
			} else {
				p.Hangs = append(p.Hangs, comm.CrashSpec{Rank: rank, Step: step})
			}
		case "drop":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("drop probability %q: %v", val, err)
			}
			p.Drop = f
		case "delay":
			probStr, durStr, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("delay clause %q is not PROB:DURATION", val)
			}
			f, err := strconv.ParseFloat(probStr, 64)
			if err != nil {
				return nil, fmt.Errorf("delay probability %q: %v", probStr, err)
			}
			d, err := time.ParseDuration(durStr)
			if err != nil {
				return nil, fmt.Errorf("delay duration %q: %v", durStr, err)
			}
			p.DelayProb, p.MaxDelay = f, d
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("seed %q: %v", val, err)
			}
			p.Seed = n
		default:
			return nil, fmt.Errorf("unknown fault clause %q", key)
		}
	}
	return p, nil
}
