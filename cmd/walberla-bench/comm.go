package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/sim"
)

// commBench measures the message aggregation of the ghost exchange: the
// same periodic domain is run over two ranks with an increasing number of
// blocks per rank, once with the legacy one-message-per-block-pair wire
// format and once rank-aggregated. Messages and bytes per step come from
// the communicator's send counters (sampled around a bare Step loop, so
// no collectives pollute them); the aggregated format must stay at one
// message per neighbor rank regardless of the block count. Results go to
// stdout as TSV and to BENCH_comm.json.
func commBench() {
	header("Ghost exchange aggregation (messages/bytes per step vs block count)")
	steps, warm, edge := 60, 3, 16
	if *quick {
		steps, edge = 20, 8
	}

	type modeResult struct {
		Mode            string  `json:"mode"`
		NeighborRanks   int     `json:"neighbor_ranks_rank0"`
		RemoteSlabs     int     `json:"remote_slabs_rank0"`
		MessagesPerStep float64 `json:"messages_per_step_global"`
		BytesPerStep    float64 `json:"bytes_per_step_global"`
		MLUPS           float64 `json:"mlups"`
	}
	type scenario struct {
		Grid          [3]int       `json:"grid"`
		BlocksPerRank int          `json:"blocks_per_rank"`
		Results       []modeResult `json:"results"`
		Reduction     float64      `json:"message_reduction_factor"`
	}

	const ranks = 2
	run := func(grid [3]int, mode sim.ExchangeMode) modeResult {
		domain := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
		f := blockforest.NewSetupForest(domain, grid, [3]int{edge, edge, edge}, [3]bool{true, true, true})
		f.BalanceMorton(ranks)
		var mu sync.Mutex
		var r modeResult
		comm.Run(ranks, func(c *comm.Comm) {
			var in *blockforest.SetupForest
			if c.Rank() == 0 {
				in = f
			}
			bf, err := blockforest.Distribute(c, in)
			if err != nil {
				fatalComm(err)
			}
			s, err := sim.New(c, bf, sim.Config{
				Exchange: mode,
				SetupFlags: func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
					flags.Fill(field.Fluid)
				},
			})
			if err != nil {
				fatalComm(err)
			}
			// Warm up (persistent buffers, mailbox queues), then sample the
			// send counters around a bare Step loop.
			for i := 0; i < warm; i++ {
				if err := s.Step(); err != nil {
					fatalComm(err)
				}
			}
			c.ResetStats()
			t0 := time.Now()
			for i := 0; i < steps; i++ {
				if err := s.Step(); err != nil {
					fatalComm(err)
				}
			}
			wall := time.Since(t0)
			st := c.Stats()

			// Collectives only after the counters are read.
			sends, err := c.AllreduceInt64Err(st.Sends, comm.Sum[int64])
			if err != nil {
				fatalComm(err)
			}
			bytes, err := c.AllreduceInt64Err(st.BytesSent, comm.Sum[int64])
			if err != nil {
				fatalComm(err)
			}
			maxWall, err := c.AllreduceInt64Err(int64(wall), comm.Max[int64])
			if err != nil {
				fatalComm(err)
			}
			if c.Rank() == 0 {
				es := s.ExchangeStats()
				cells := int64(grid[0]*grid[1]*grid[2]) * int64(edge*edge*edge)
				mu.Lock()
				r = modeResult{
					Mode:            mode.String(),
					NeighborRanks:   es.NeighborRanks,
					RemoteSlabs:     es.RemoteSlabs,
					MessagesPerStep: float64(sends) / float64(steps),
					BytesPerStep:    float64(bytes) / float64(steps),
					MLUPS:           float64(cells) * float64(steps) / time.Duration(maxWall).Seconds() / 1e6,
				}
				mu.Unlock()
			}
		})
		return r
	}

	grids := [][3]int{{2, 1, 1}, {2, 2, 2}, {4, 2, 2}, {4, 4, 2}}
	if *quick {
		grids = grids[:3]
	}
	fmt.Printf("# ranks=%d cells=%d^3/block steps=%d (periodic, all fluid)\n", ranks, edge, steps)
	fmt.Println("blocks/rank\tmode\tneighbors\tremote_slabs\tmsgs/step\tbytes/step\tMLUPS")
	var scenarios []scenario
	for _, grid := range grids {
		sc := scenario{Grid: grid, BlocksPerRank: grid[0] * grid[1] * grid[2] / ranks}
		for _, mode := range []sim.ExchangeMode{sim.ExchangePerPair, sim.ExchangeAggregated} {
			r := run(grid, mode)
			sc.Results = append(sc.Results, r)
			fmt.Printf("%d\t%s\t%d\t%d\t%.1f\t%.0f\t%.2f\n",
				sc.BlocksPerRank, r.Mode, r.NeighborRanks, r.RemoteSlabs,
				r.MessagesPerStep, r.BytesPerStep, r.MLUPS)
		}
		if agg := sc.Results[1].MessagesPerStep; agg > 0 {
			sc.Reduction = sc.Results[0].MessagesPerStep / agg
		}
		fmt.Printf("# message reduction: %.1fx\n", sc.Reduction)
		scenarios = append(scenarios, sc)
	}

	out := struct {
		Ranks         int        `json:"ranks"`
		CellsPerBlock int        `json:"cells_per_block_edge"`
		Steps         int        `json:"steps"`
		Scenarios     []scenario `json:"scenarios"`
	}{Ranks: ranks, CellsPerBlock: edge, Steps: steps, Scenarios: scenarios}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatalComm(err)
	}
	if err := os.WriteFile("BENCH_comm.json", append(data, '\n'), 0o644); err != nil {
		fatalComm(err)
	}
	fmt.Println("wrote BENCH_comm.json")
}

func fatalComm(err error) {
	fmt.Fprintln(os.Stderr, "comm bench:", err)
	os.Exit(1)
}
