package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"walberla/internal/comm"
	"walberla/internal/core"
	"walberla/internal/sim"
)

// hybridBench measures the hybrid MPI+threads mode: the same lid-driven
// cavity is run with an increasing intra-rank worker count and the
// aggregate MLUPS is compared against the serial (1-worker) run. Two
// decompositions are measured: a single rank owning all blocks (pure
// intra-rank parallelism, no communication) and two ranks with eight
// blocks each (worker parallelism plus comm/compute overlap across the
// rank boundary). Results go to stdout as TSV and to BENCH_hybrid.json.
func hybridBench() {
	header("Hybrid intra-rank parallelism (workers vs MLUPS)")
	steps := 150
	edge := 16
	if *quick {
		steps = 40
		edge = 8
	}

	type result struct {
		Workers     int     `json:"workers"`
		MLUPS       float64 `json:"mlups"`
		WallSeconds float64 `json:"wall_seconds"`
		Speedup     float64 `json:"speedup_vs_serial"`
		Frontier    int     `json:"frontier_blocks"`
		Interior    int     `json:"interior_blocks"`
		Overlap     string  `json:"overlap_rank0"`
	}
	type scenario struct {
		Name          string   `json:"name"`
		Ranks         int      `json:"ranks"`
		Grid          [3]int   `json:"grid"`
		CellsPerBlock [3]int   `json:"cells_per_block"`
		Steps         int      `json:"steps"`
		Results       []result `json:"results"`
	}

	run := func(name string, ranks int, grid [3]int, workers []int) scenario {
		sc := scenario{
			Name: name, Ranks: ranks, Grid: grid,
			CellsPerBlock: [3]int{edge, edge, edge}, Steps: steps,
		}
		fmt.Printf("# %s: ranks=%d grid=%v cells=%d^3 steps=%d\n", name, ranks, grid, edge, steps)
		fmt.Println("workers\tMLUPS\twall_s\tspeedup\tfrontier/interior\toverlap(rank0)")
		var serial float64
		for _, w := range workers {
			p := core.LidDrivenCavity(grid, [3]int{edge, edge, edge}, 0.05, ranks)
			p.Workers = w
			var r result
			err := p.RunEach(steps, func(c *comm.Comm, s *sim.Simulation, m sim.Metrics) {
				if c.Rank() != 0 {
					return
				}
				r = result{
					Workers:     w,
					MLUPS:       m.MLUPS,
					WallSeconds: m.WallTime.Seconds(),
					Overlap:     s.Overlap().String(),
				}
				r.Frontier, r.Interior = s.BlockSplit()
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "hybrid bench:", err)
				os.Exit(1)
			}
			if w == 1 {
				serial = r.WallSeconds
			}
			if serial > 0 && r.WallSeconds > 0 {
				r.Speedup = serial / r.WallSeconds
			}
			fmt.Printf("%d\t%.2f\t%.4f\t%.2fx\t%d/%d\t%s\n",
				r.Workers, r.MLUPS, r.WallSeconds, r.Speedup, r.Frontier, r.Interior, r.Overlap)
			sc.Results = append(sc.Results, r)
		}
		return sc
	}

	workers := []int{1, 2, 4, 8}
	out := struct {
		Host      string     `json:"host_cpus"`
		Scenarios []scenario `json:"scenarios"`
	}{
		Host: fmt.Sprintf("%d logical CPUs (GOMAXPROCS=%d)", runtime.NumCPU(), runtime.GOMAXPROCS(0)),
		Scenarios: []scenario{
			// 8 blocks on one rank: pure worker scaling, no communication.
			run("single-rank-8-blocks", 1, [3]int{2, 2, 2}, workers),
			// 16 blocks over 2 ranks: 8 blocks per rank with a frontier —
			// worker scaling plus comm/compute overlap.
			run("two-ranks-8-blocks-each", 2, [3]int{4, 2, 2}, workers),
		},
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "hybrid bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile("BENCH_hybrid.json", append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "hybrid bench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_hybrid.json")
}
