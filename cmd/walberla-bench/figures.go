package main

import (
	"fmt"
	"math"

	"walberla/internal/core"
	"walberla/internal/perfmodel"
	"walberla/internal/scaling"
	"walberla/internal/setup"
	"walberla/internal/sim"
	"walberla/internal/units"
	"walberla/internal/vascular"
)

// coronaryTree builds the synthetic coronary tree used by the geometry
// figures.
func coronaryTree() *vascular.Tree {
	p := vascular.DefaultParams()
	p.Depth = 5
	if *quick {
		p.Depth = 4
	}
	return vascular.Generate(p)
}

// figure1 reproduces the domain partitioning study of Figure 1: a target
// of one block per process, the binary search yielding slightly fewer
// blocks than processes (the paper: 512 processes / 485 blocks on one
// nodeboard, 458752 / 458184 on the whole machine).
func figure1() {
	header("Figure 1: coronary tree domain partitioning (one block per process)")
	tree := coronaryTree()
	sdf, err := tree.SDF()
	if err != nil {
		panic(err)
	}
	cells := [3]int{16, 16, 16}
	targets := []int{128, 512, 2048}
	if *quick {
		targets = []int{64, 256}
	}
	fmt.Println("processes\tblocks\tblocks/processes\tdx\tfluid_fraction")
	for _, target := range targets {
		dx, blocks, err := setup.FindWeakScalingDx(sdf, cells, target, 20)
		if err != nil {
			panic(err)
		}
		f, stats, err := setup.BuildForest(sdf, setup.Options{
			CellsPerBlock: cells, Dx: dx, Ranks: target, Seed: 1,
		})
		if err != nil {
			panic(err)
		}
		_ = f
		fmt.Printf("%d\t%d\t%.3f\t%.5g\t%.4f\n",
			target, blocks, float64(blocks)/float64(target), dx, stats.FluidFraction)
	}
	fmt.Println("# paper: 512 processes -> 485 blocks; 458752 processes -> 458184 blocks")
}

// figure2 demonstrates the two-stage domain partitioning: first the
// domain is divided into blocks (with blocks outside the geometry
// discarded), then the blocks are filled with their part of the global
// grid (voxelization) — the separation that lets the framework set up
// trillion-cell domains without ever materializing the full grid.
func figure2() {
	header("Figure 2: two-stage domain partitioning")
	tree := coronaryTree()
	sdf, err := tree.SDF()
	if err != nil {
		panic(err)
	}
	cells := [3]int{16, 16, 16}
	dx, _, err := setup.FindWeakScalingDx(sdf, cells, 128, 14)
	if err != nil {
		panic(err)
	}
	// Stage 1: block division (cheap, no cell data exists yet).
	grid, _ := setup.GridForDx(sdf.Bounds(), cells, dx)
	candidates := grid[0] * grid[1] * grid[2]
	f, stats, err := setup.BuildForest(sdf, setup.Options{
		CellsPerBlock: cells, Dx: dx, Ranks: 8, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	_ = f
	fmt.Printf("stage 1 (block division):   grid %v = %d candidate blocks, %d kept, %d discarded\n",
		grid, candidates, stats.Blocks, stats.DiscardedBlocks)
	fmt.Printf("stage 1 memory: %d block descriptors (no cell data)\n", stats.Blocks)
	// Stage 2: grid generation within the kept blocks only.
	perBlock := cells[0] * cells[1] * cells[2]
	fmt.Printf("stage 2 (grid generation):  %d cells allocated (%d per block) of %d the full grid would need\n",
		stats.TotalCells, perBlock, int64(candidates)*int64(perBlock))
	fmt.Printf("stage 2 fluid cells: %d (%.2f%% of allocated)\n", stats.FluidCells, 100*stats.FluidFraction)
	fmt.Printf("# memory saving of the two-stage approach: %.1fx\n",
		float64(candidates)*float64(perBlock)/float64(stats.TotalCells))
}

// figure3 reproduces the single-node kernel comparison: measured host
// curves for the six kernels (ranking claim) and modeled curves for the
// two machines of the paper.
func figure3() {
	header("Figure 3 (host measurement): kernel MLUPS vs threads")
	edge, steps := 48, 12
	if *quick {
		edge, steps = 32, 4
	}
	kernelChoices := []sim.KernelChoice{
		sim.KernelGenericSRT, sim.KernelGenericTRT,
		sim.KernelD3Q19SRT, sim.KernelD3Q19TRT,
		sim.KernelSplitSRT, sim.KernelSplitTRT,
	}
	maxThreads := core.MaxThreads()
	if maxThreads > 8 {
		maxThreads = 8
	}
	fmt.Println("kernel\tthreads\tMLUPS")
	for _, k := range kernelChoices {
		for th := 1; th <= maxThreads; th *= 2 {
			r := core.MeasureKernelMLUPS(k, edge, th, steps)
			fmt.Printf("%s\t%d\t%.2f\n", r.Kernel, r.Threads, r.MLUPS)
		}
	}
	// Host roofline, by the paper's own methodology: measured STREAM
	// bandwidth over 456 B per cell update.
	bw := core.MeasureStreamBandwidth(64, 3)
	fmt.Printf("# host STREAM copy bandwidth %.1f GiB/s -> roofline %.1f MLUPS\n",
		bw, core.HostRooflineMLUPS(bw))

	header("Figure 3a (model): SuperMUC socket")
	printKernelModel(perfmodel.SuperMUCSocket(), 1)
	header("Figure 3b (model): JUQUEEN node, 4-way SMT")
	printKernelModel(perfmodel.JUQUEENNode(), 4)
}

func printKernelModel(m *perfmodel.Machine, smt int) {
	fmt.Println("kernel\tcores\tMLUPS")
	for _, k := range []perfmodel.KernelClass{perfmodel.KernelGeneric, perfmodel.KernelD3Q19, perfmodel.KernelSIMD} {
		for _, c := range []perfmodel.CollisionClass{perfmodel.CollisionSRT, perfmodel.CollisionTRT} {
			for n := 1; n <= m.Cores; n++ {
				fmt.Printf("%s %s\t%d\t%.1f\n", c, k, n, perfmodel.KernelMLUPS(m, k, c, n, smt))
			}
		}
	}
	fmt.Printf("# roofline: %.1f MLUPS\n", m.Roofline())
}

// figure4 reproduces the ECM study: model components, model-vs-frequency
// curves at 2.7 and 1.6 GHz, and the energy optimum.
func figure4() {
	header("Figure 4: ECM model for the TRT kernel on SuperMUC")
	m := perfmodel.SuperMUCSocket()
	e := perfmodel.NewECM(m)
	fmt.Printf("T_core\t%.0f cycles / 8 LUP\n", e.TCore())
	fmt.Printf("T_cache\t%.0f cycles / 8 LUP (57 lines x 2 cycles x 2 hops)\n", e.TCache())
	fmt.Printf("T_mem(2.7GHz)\t%.0f cycles / 8 LUP\n", e.TMem())
	fmt.Println("freq_GHz\tcores\tMLUPS_model")
	for _, f := range []float64{2.7, 1.6} {
		ef := e.AtFrequency(f)
		for n := 1; n <= m.Cores; n++ {
			fmt.Printf("%.1f\t%d\t%.1f\n", f, n, ef.MLUPS(n))
		}
	}
	full27 := e.MLUPS(m.Cores)
	full16 := e.AtFrequency(1.6).MLUPS(m.Cores)
	fmt.Printf("# roofline SuperMUC %.1f MLUPS (paper: 87.8), JUQUEEN %.1f (paper: 76.2)\n",
		m.Roofline(), perfmodel.JUQUEENNode().Roofline())
	fmt.Printf("# 1.6 GHz performance ratio %.3f (paper: 0.93), saturation at %d cores (2.7 GHz: %d)\n",
		full16/full27, e.AtFrequency(1.6).SaturationCores(), e.SaturationCores())
	em := perfmodel.NewEnergyModel(m)
	fmt.Println("freq_GHz\trel_power\trel_energy_per_LUP")
	freqs := []float64{1.2, 1.4, 1.6, 1.8, 2.0, 2.3, 2.7}
	for _, f := range freqs {
		fmt.Printf("%.1f\t%.3f\t%.3f\n", f, em.RelativePower(f), em.RelativeEnergyPerLUP(f))
	}
	fmt.Printf("# optimal frequency %.1f GHz, energy saving %.0f%% (paper: 1.6 GHz, 25%%)\n",
		em.OptimalFrequency(freqs), 100*(1-em.RelativeEnergyPerLUP(1.6)))
}

// figure5 reproduces the SMT study on the JUQUEEN node.
func figure5() {
	header("Figure 5: JUQUEEN TRT kernel vs SMT level (model)")
	m := perfmodel.JUQUEENNode()
	fmt.Println("smt\tcores\tMLUPS")
	for _, smt := range []int{1, 2, 4} {
		for n := 1; n <= m.Cores; n++ {
			fmt.Printf("%d-way\t%d\t%.1f\n", smt, n, perfmodel.KernelMLUPS(m, perfmodel.KernelSIMD, perfmodel.CollisionTRT, n, smt))
		}
	}
}

// figure6 reproduces the dense weak scaling: model projections for both
// machines and all hybrid configurations, plus a real distributed weak
// scaling measurement through the in-process runtime.
func figure6() {
	header("Figure 6a (model): SuperMUC dense weak scaling, 3.43e6 cells/core")
	printWeak(scaling.SuperMUC(), []scaling.NodeConfig{{Processes: 16, Threads: 1}, {Processes: 4, Threads: 4}, {Processes: 2, Threads: 8}}, 3.43e6, 32, 1<<17, nil)
	header("Figure 6b (model): JUQUEEN dense weak scaling, 1.728e6 cells/core")
	printWeak(scaling.JUQUEEN(), []scaling.NodeConfig{{Processes: 64, Threads: 1}, {Processes: 16, Threads: 4}, {Processes: 8, Threads: 8}}, 1.728e6, 32, 1<<19, []int{458752})

	// In-text aggregate statements derived from the projected peaks.
	smucPeak := scaling.DenseWeakScaling(scaling.SuperMUC(),
		scaling.NodeConfig{Processes: 16, Threads: 1}, 3.43e6, []int{1 << 17})[0]
	jqPeak := scaling.DenseWeakScaling(scaling.JUQUEEN(),
		scaling.NodeConfig{Processes: 64, Threads: 1}, 1.728e6, []int{458752})[0]
	const flopsPerLUP = 198
	smucM := perfmodel.SuperMUCSocket()
	jqM := perfmodel.JUQUEENNode()
	fmt.Printf("# SuperMUC 2^17 cores: %.0f GLUPS, %.1f%% of aggregate bandwidth (paper: 837, 54.2%%), %.0f TFLOPS = %.1f%% of peak (paper: 166, ~5%%)\n",
		smucPeak.TotalMLUPS/1e3, 100*smucM.BandwidthUtilization(smucPeak.TotalMLUPS, 1<<17),
		perfmodel.FLOPRate(smucPeak.TotalMLUPS, flopsPerLUP)/1e3,
		100*smucM.PercentOfPeak(smucPeak.TotalMLUPS, 1<<17, flopsPerLUP))
	fmt.Printf("# JUQUEEN full machine: %.2f TLUPS, %.1f%% of aggregate bandwidth (paper: 1.93, 67.4%%), %.0f TFLOPS = %.1f%% of peak (paper: 383, ~6.5%%)\n",
		jqPeak.TotalMLUPS/1e6, 100*jqM.BandwidthUtilization(jqPeak.TotalMLUPS, 458752),
		perfmodel.FLOPRate(jqPeak.TotalMLUPS, flopsPerLUP)/1e3,
		100*jqM.PercentOfPeak(jqPeak.TotalMLUPS, 458752, flopsPerLUP))

	header("Figure 6 (host measurement): real weak scaling over ranks (lid-driven cavity)")
	edge := 24
	steps := 20
	if *quick {
		edge, steps = 16, 8
	}
	maxRanks := core.MaxThreads()
	if maxRanks > 8 {
		maxRanks = 8
	}
	fmt.Println("ranks\tcells\tMLUPS\tMLUPS/rank\tcomm_fraction")
	for ranks := 1; ranks <= maxRanks; ranks *= 2 {
		p := core.LidDrivenCavity([3]int{ranks, 1, 1}, [3]int{edge, edge, edge}, 0.05, ranks)
		m, err := p.Run(steps)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%d\t%d\t%.2f\t%.2f\t%.3f\n", ranks, m.TotalCells, m.MLUPS, m.MLUPSPerCore(), m.CommFraction)
	}
}

func printWeak(p scaling.Platform, cfgs []scaling.NodeConfig, cellsPerCore float64, lo, hi int, extra []int) {
	fmt.Println("config\tcores\tMLUPS/core\ttotal_MLUPS\tcomm_fraction")
	var coreCounts []int
	for c := lo; c <= hi; c *= 2 {
		coreCounts = append(coreCounts, c)
	}
	coreCounts = append(coreCounts, extra...)
	for _, cfg := range cfgs {
		for _, pt := range scaling.DenseWeakScaling(p, cfg, cellsPerCore, coreCounts) {
			fmt.Printf("%s\t%d\t%.2f\t%.0f\t%.3f\n", cfg, pt.Cores, pt.MLUPSPerCore, pt.TotalMLUPS, pt.CommFraction)
		}
	}
}

// fitPowerLaw fits y = a * x^b by least squares in log-log space.
func fitPowerLaw(xs []float64, ys []float64) (a, b float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	b = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	a = math.Exp((sy - b*sx) / n)
	return a, b
}

// figure7 reproduces the vascular weak scaling: the fluid fraction of
// real partitionings of the synthetic tree at increasing block counts, a
// power-law fit extrapolated to machine scale, and the projected
// MFLUPS-per-core curves for both machines.
func figure7() {
	header("Figure 7: vascular geometry weak scaling")
	tree := coronaryTree()
	sdf, err := tree.SDF()
	if err != nil {
		panic(err)
	}
	cells := [3]int{16, 16, 16}
	targets := []int{16, 64, 256, 1024}
	if *quick {
		targets = []int{16, 64, 256}
	}
	fmt.Println("blocks_target\tblocks\tdx\tfluid_fraction (measured on synthetic tree)")
	var xs, ys []float64
	for _, target := range targets {
		dx, blocks, err := setup.FindWeakScalingDx(sdf, cells, target, 18)
		if err != nil {
			panic(err)
		}
		_, stats, err := setup.BuildForest(sdf, setup.Options{
			CellsPerBlock: cells, Dx: dx, Ranks: target, Seed: 1,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%d\t%d\t%.5g\t%.4f\n", target, blocks, dx, stats.FluidFraction)
		xs = append(xs, float64(blocks))
		ys = append(ys, stats.FluidFraction)
	}
	a, b := fitPowerLaw(xs, ys)
	fmt.Printf("# fluid fraction fit: ff(blocks) = %.4f * blocks^%.4f\n", a, b)
	ffAt := func(blocks int) float64 {
		return math.Min(a*math.Pow(float64(blocks), b), 0.9)
	}

	fmt.Println("\nmachine\tcores\tMFLUPS/core\tfluid_fraction\tcomm_fraction")
	type mc struct {
		name  string
		p     scaling.Platform
		cfg   scaling.NodeConfig
		block float64
		maxC  int
	}
	for _, m := range []mc{
		{"SuperMUC", scaling.SuperMUC(), scaling.NodeConfig{Processes: 4, Threads: 4}, 170 * 170 * 170, 1 << 17},
		{"JUQUEEN", scaling.JUQUEEN(), scaling.NodeConfig{Processes: 16, Threads: 4}, 80 * 80 * 80, 458752},
	} {
		var coreCounts []int
		for c := 512; c <= m.maxC; c *= 2 {
			coreCounts = append(coreCounts, c)
		}
		if coreCounts[len(coreCounts)-1] != m.maxC {
			coreCounts = append(coreCounts, m.maxC)
		}
		for _, pt := range scaling.VascularWeakScaling(m.p, m.cfg, m.block, ffAt, coreCounts) {
			fmt.Printf("%s\t%d\t%.3f\t%.4f\t%.3f\n", m.name, pt.Cores, pt.MLUPSPerCore, pt.FluidFraction, pt.CommFraction)
		}
	}
	fmt.Println("# paper: MFLUPS/core rises with core count as the block grid fits the geometry better")
}

// figure8 reproduces the strong scaling study at 0.1 mm and 0.05 mm
// resolution on both machines, plus a real host strong scaling.
func figure8() {
	header("Figure 8 (model): strong scaling on the vascular geometry")
	fmt.Println("machine\tresolution\tcores\tMFLUPS/core\ttime_steps/s\tblocks/core\tblock_edge")
	type exp struct {
		name string
		p    scaling.Platform
		cfg  scaling.NodeConfig
		sc   scaling.StrongScalingConfig
		lo   int
		hi   int
	}
	// The 0.1 mm problem: 2.1e6 fluid cells, searched partitionings from
	// 32 blocks/core of 34^3 at 16 cores down to one 9^3 block per core;
	// the 0.05 mm problem: 16.9e6 fluid cells, 64 blocks/core of 46^3 down
	// to 13^3 (the paper's reported optima). JUQUEEN follows the same
	// partitioning trajectory over its own core range.
	res01 := scaling.StrongScalingConfig{
		FluidCells: 2.1e6, BaseBlocksPerCore: 32, BaseCores: 16, BaseEdge: 34, MinEdge: 9,
	}
	res005 := scaling.StrongScalingConfig{
		FluidCells: 16.9e6, BaseBlocksPerCore: 64, BaseCores: 16, BaseEdge: 46, EdgeExponent: 0.182, MinEdge: 13,
	}
	exps := []exp{
		{"SuperMUC", scaling.SuperMUC(), scaling.NodeConfig{Processes: 4, Threads: 4}, res01, 16, 32768},
		{"JUQUEEN", scaling.JUQUEEN(), scaling.NodeConfig{Processes: 16, Threads: 4}, res01, 512, 65536},
		{"SuperMUC", scaling.SuperMUC(), scaling.NodeConfig{Processes: 4, Threads: 4}, res005, 16, 32768},
		{"JUQUEEN", scaling.JUQUEEN(), scaling.NodeConfig{Processes: 16, Threads: 4}, res005, 512, 262144},
	}
	res := []string{"0.1mm", "0.1mm", "0.05mm", "0.05mm"}
	for i, e := range exps {
		var coreCounts []int
		for c := e.lo; c <= e.hi; c *= 2 {
			coreCounts = append(coreCounts, c)
		}
		for _, pt := range scaling.StrongScaling(e.p, e.cfg, e.sc, coreCounts) {
			fmt.Printf("%s\t%s\t%d\t%.3f\t%.1f\t%.1f\t%.0f\n",
				e.name, res[i], pt.Cores, pt.MFLUPSPerCore, pt.TimeStepsPerS, pt.BlocksPerCore, pt.BlockEdge)
		}
	}
	fmt.Println("# paper: 0.1mm on SuperMUC runs 11.4 steps/s on 1 node up to 6638 steps/s on 2048 nodes")

	// Section 4.3 time-step arithmetic: what the rates mean in physical
	// time (0.2 m/s peak blood velocity, lattice velocity 0.1).
	if conv, err := units.FromVelocity(1.276e-6, 0.2, 0.1, 1060); err == nil {
		fmt.Printf("# at 1.276um resolution the time step is %.3g s (paper: 0.64 us); 1.25 steps/s simulate %.3g s of flow per wall second\n",
			conv.Dt, conv.SimulatedSecondsPerWallSecond(1.25))
	}
	if conv, err := units.FromVelocity(0.1e-3, 0.2, 0.1, 1060); err == nil {
		peak := scaling.StrongScaling(scaling.SuperMUC(), scaling.NodeConfig{Processes: 4, Threads: 4}, res01, []int{32768})[0]
		fmt.Printf("# at 0.1mm the projected %.0f steps/s simulate %.2f s of flow per wall second (the conclusion's practical real-time regime)\n",
			peak.TimeStepsPerS, conv.SimulatedSecondsPerWallSecond(peak.TimeStepsPerS))
	}

	header("Figure 8 (host measurement): real strong scaling, fixed cavity")
	edge := 32
	steps := 20
	if *quick {
		edge, steps = 16, 8
	}
	maxRanks := core.MaxThreads()
	if maxRanks > 8 {
		maxRanks = 8
	}
	fmt.Println("ranks\tsteps/s\tMLUPS/rank\tcomm_fraction")
	for ranks := 1; ranks <= maxRanks; ranks *= 2 {
		// Fixed global domain: split along x into more, smaller blocks.
		p := core.LidDrivenCavity([3]int{ranks, 1, 1}, [3]int{edge / ranks, edge, edge}, 0.05, ranks)
		m, err := p.Run(steps)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%d\t%.1f\t%.2f\t%.3f\n", ranks, m.TimeStepsPerSecond(), m.MLUPSPerCore(), m.CommFraction)
	}
}

// sparseAblation benchmarks the three sparse-block strategies of section
// 4.3 at several fill fractions on the host.
func sparseAblation() {
	header("Sparse kernel strategies (section 4.3, host measurement)")
	edge, steps := 48, 8
	if *quick {
		edge, steps = 32, 4
	}
	fmt.Println("fill\tstrategy\tMFLUPS\tMLUPS")
	for _, fill := range []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.0} {
		for _, r := range core.MeasureSparseStrategies(edge, fill, steps, 7) {
			fmt.Printf("%.2f\t%s\t%.2f\t%.2f\n", r.FluidFraction, r.Strategy, r.MFLUPS, r.MLUPS)
		}
	}
	fmt.Println("# paper: the interval (compressed-row) strategy enables vectorization and wins on tubular geometries")
}
