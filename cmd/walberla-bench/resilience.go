package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/boundary"
	"walberla/internal/comm"
	"walberla/internal/core"
	"walberla/internal/sim"
)

// resilienceBench compares the two recovery modes of the fault-tolerant
// driver on the same failure: a lid-driven cavity over four ranks, one
// rank crashed mid-run, protected at equal checkpoint intervals either by
// disk checkpoint sets (rewind-and-replay) or by in-memory buddy replicas
// (shrinking recovery). The headline number is the restore latency — from
// the recovery rendezvous to the simulation stepping again — where the
// buddy path wins by avoiding every disk access. Results go to stdout as
// TSV and to BENCH_resilience.json.
func resilienceBench() {
	header("Resilience: buddy shrink vs disk rewind (restore latency)")
	steps, edge := 60, 16
	if *quick {
		steps, edge = 30, 8
	}
	const (
		ranks    = 4
		victim   = 1
		interval = 5
	)
	crashStep := steps/2 + 1

	type result struct {
		Mode          string  `json:"mode"`
		RestoreMs     float64 `json:"restore_latency_ms_max"`
		Restores      int     `json:"restores"`
		StepsReplayed int     `json:"steps_replayed_max"`
		DiskReads     int     `json:"disk_reads_during_recovery"`
		ReplicaBytes  int64   `json:"replica_bytes_rank_max"`
		CheckpointKB  int64   `json:"checkpoint_kb_rank_max"`
		WallSeconds   float64 `json:"wall_seconds"`
	}

	runMode := func(name string, mode sim.RecoveryMode, dir string) result {
		forest := blockforest.NewSetupForest(
			blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
			[3]int{2, 2, 1}, [3]int{edge, edge, edge}, [3]bool{})
		forest.BalanceMorton(ranks)
		cfg := sim.Config{
			Tau:        0.65,
			Boundary:   boundary.Config{WallVelocity: [3]float64{0.05, 0, 0}},
			SetupFlags: core.CavityFlags,
		}
		res := result{Mode: name}
		var mu sync.Mutex
		start := time.Now()
		opts := comm.Options{Faults: &comm.FaultPlan{
			Seed:    17,
			Crashes: []comm.CrashSpec{{Rank: victim, Step: crashStep}},
		}}
		comm.RunWithOptions(ranks, opts, func(c *comm.Comm) {
			var in *blockforest.SetupForest
			if c.Rank() == 0 {
				in = forest
			}
			bf, err := blockforest.Distribute(c, in)
			if err != nil {
				fmt.Fprintln(os.Stderr, "resilience bench:", err)
				os.Exit(1)
			}
			s, err := sim.New(c, bf, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "resilience bench:", err)
				os.Exit(1)
			}
			m, err := s.RunResilient(steps, sim.ResilienceConfig{
				CheckpointEvery: interval,
				Dir:             dir,
				Mode:            mode,
				MaxFailures:     4,
				BackoffBase:     time.Millisecond,
				BackoffMax:      time.Millisecond,
			})
			if err == sim.ErrRetired {
				return
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "resilience bench:", err)
				os.Exit(1)
			}
			r := m.Recovery
			mu.Lock()
			defer mu.Unlock()
			if ms := float64(r.RestoreLatency) / float64(time.Millisecond); ms > res.RestoreMs {
				res.RestoreMs = ms
			}
			if r.Restores > res.Restores {
				res.Restores = r.Restores
			}
			if r.StepsReplayed > res.StepsReplayed {
				res.StepsReplayed = r.StepsReplayed
			}
			res.DiskReads += r.DiskReadsDuringRecovery
			if r.ReplicaBytes > res.ReplicaBytes {
				res.ReplicaBytes = r.ReplicaBytes
			}
			if kb := r.CheckpointBytes / 1024; kb > res.CheckpointKB {
				res.CheckpointKB = kb
			}
		})
		res.WallSeconds = time.Since(start).Seconds()
		return res
	}

	diskDir, err := os.MkdirTemp("", "walberla-resilience-bench-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "resilience bench:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(diskDir)

	// Best of three trials per mode: restore latency is the metric, and on
	// a loaded host a single trial can land a GC cycle inside the recovery
	// window of either mode.
	const trials = 3
	best := func(name string, mode sim.RecoveryMode, dir string) result {
		trialDir := func(t int) string {
			if dir == "" {
				return ""
			}
			// A fresh set directory per trial, or a later trial would
			// restore from the previous trial's final checkpoint.
			d := filepath.Join(dir, fmt.Sprintf("trial%d", t))
			if err := os.MkdirAll(d, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "resilience bench:", err)
				os.Exit(1)
			}
			return d
		}
		r := runMode(name, mode, trialDir(0))
		for t := 1; t < trials; t++ {
			if c := runMode(name, mode, trialDir(t)); c.RestoreMs < r.RestoreMs {
				r = c
			}
		}
		return r
	}

	fmt.Printf("# cavity: ranks=%d grid=2x2x1 cells=%d^3 steps=%d interval=%d crash=rank %d@step %d trials=%d (best)\n",
		ranks, edge, steps, interval, victim, crashStep, trials)
	fmt.Println("mode\trestore_ms(max)\trestores\treplayed\tdisk_reads\twall_s")
	rewind := best("disk-rewind", sim.RecoverRewind, diskDir)
	buddy := best("buddy-shrink", sim.RecoverShrink, "")
	for _, r := range []result{rewind, buddy} {
		fmt.Printf("%s\t%.3f\t%d\t%d\t%d\t%.3f\n",
			r.Mode, r.RestoreMs, r.Restores, r.StepsReplayed, r.DiskReads, r.WallSeconds)
	}
	speedup := 0.0
	if buddy.RestoreMs > 0 {
		speedup = rewind.RestoreMs / buddy.RestoreMs
	}
	fmt.Printf("buddy restore latency advantage: %.1fx (buddy disk reads: %d)\n", speedup, buddy.DiskReads)

	out := struct {
		Ranks      int      `json:"ranks"`
		Edge       int      `json:"cells_per_block_edge"`
		Steps      int      `json:"steps"`
		Interval   int      `json:"checkpoint_interval"`
		CrashStep  int      `json:"crash_step"`
		CrashRank  int      `json:"crash_rank"`
		Modes      []result `json:"modes"`
		SpeedupVsD float64  `json:"buddy_restore_speedup_vs_disk"`
	}{ranks, edge, steps, interval, crashStep, victim, []result{rewind, buddy}, speedup}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "resilience bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile("BENCH_resilience.json", append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "resilience bench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_resilience.json")
}
