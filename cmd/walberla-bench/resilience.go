package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/boundary"
	"walberla/internal/comm"
	"walberla/internal/core"
	"walberla/internal/sim"
)

// resilienceFile is the benchmark's on-disk record; bench-resilience
// appends one timestamped record per run, and -compare ratchets the
// newest against the best earlier record of the same configuration.
const resilienceFile = "BENCH_resilience.json"

// resilienceResult is one recovery mode's measurement.
type resilienceResult struct {
	Mode          string  `json:"mode"`
	RestoreMs     float64 `json:"restore_latency_ms_max"`
	MTTRMs        float64 `json:"mttr_ms_max"`
	Restores      int     `json:"restores"`
	StepsReplayed int     `json:"steps_replayed_max"`
	DiskReads     int     `json:"disk_reads_during_recovery"`
	ReplicaBytes  int64   `json:"replica_bytes_rank_max"`
	CheckpointKB  int64   `json:"checkpoint_kb_rank_max"`
	WorldSize     int     `json:"final_world_size"`
	WallSeconds   float64 `json:"wall_seconds"`
}

// resilienceRecord is one timestamped benchmark run.
type resilienceRecord struct {
	Time       string             `json:"time,omitempty"`
	Ranks      int                `json:"ranks"`
	Edge       int                `json:"cells_per_block_edge"`
	Steps      int                `json:"steps"`
	Interval   int                `json:"checkpoint_interval"`
	CrashStep  int                `json:"crash_step"`
	CrashRank  int                `json:"crash_rank"`
	Modes      []resilienceResult `json:"modes"`
	SpeedupVsD float64            `json:"buddy_restore_speedup_vs_disk"`
}

// resilienceHistory is the file layout: an append-only list of records.
type resilienceHistory struct {
	Records []resilienceRecord `json:"records"`
}

// loadResilienceHistory reads the benchmark history, accepting both the
// current {"records": [...]} layout and the legacy single-record object
// (which becomes the history's first, untimestamped record). A missing
// file is an empty history.
func loadResilienceHistory(path string) (*resilienceHistory, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return &resilienceHistory{}, nil
	}
	if err != nil {
		return nil, err
	}
	var h resilienceHistory
	if err := json.Unmarshal(data, &h); err == nil && h.Records != nil {
		return &h, nil
	}
	var legacy resilienceRecord
	if err := json.Unmarshal(data, &legacy); err != nil || len(legacy.Modes) == 0 {
		return nil, fmt.Errorf("%s: unrecognized format", path)
	}
	return &resilienceHistory{Records: []resilienceRecord{legacy}}, nil
}

// sameResilienceConfig reports whether two records measured the same
// benchmark configuration.
func sameResilienceConfig(a, b *resilienceRecord) bool {
	return a.Ranks == b.Ranks && a.Edge == b.Edge && a.Steps == b.Steps &&
		a.Interval == b.Interval && a.CrashStep == b.CrashStep && a.CrashRank == b.CrashRank
}

// compareResilience ratchets the newest record of BENCH_resilience.json
// against the best earlier record of the same configuration: per recovery
// mode, both the restore latency and the MTTR (recovery wall time per
// restore) must stay within 1.5x + 1ms of the best (lowest) value ever
// recorded — recovery windows are milliseconds, so a percentage gate
// would trip on scheduler jitter; the multiplier still catches structural
// regressions (an extra rendezvous, an accidental disk access) — and the
// in-memory modes (buddy-shrink, spare-heal) must stay entirely disk-free
// during recovery. It returns an error (nonzero exit) on any regression,
// making `make bench-resilience` a recovery-latency regression gate.
func compareResilience() error {
	const (
		factor  = 1.5 // allowed multiple of the best recorded latency
		slackMs = 1.0 // absolute jitter allowance on top
	)
	allowed := func(best float64) float64 { return best*factor + slackMs }
	h, err := loadResilienceHistory(resilienceFile)
	if err != nil {
		return err
	}
	if len(h.Records) == 0 {
		return fmt.Errorf("%s: no records (run walberla-bench -fig resilience first)", resilienceFile)
	}
	cur := &h.Records[len(h.Records)-1]
	type best struct{ restoreMs, mttrMs float64 }
	baseline := map[string]best{}
	for i := range h.Records[:len(h.Records)-1] {
		r := &h.Records[i]
		if !sameResilienceConfig(r, cur) {
			continue
		}
		for _, m := range r.Modes {
			b, ok := baseline[m.Mode]
			if !ok {
				b = best{restoreMs: m.RestoreMs, mttrMs: m.MTTRMs}
			} else {
				if m.RestoreMs < b.restoreMs {
					b.restoreMs = m.RestoreMs
				}
				if m.MTTRMs < b.mttrMs {
					b.mttrMs = m.MTTRMs
				}
			}
			baseline[m.Mode] = b
		}
	}
	var failures []string
	for _, m := range cur.Modes {
		// The in-memory recovery paths must never touch disk, baseline or not.
		if (m.Mode == "buddy-shrink" || m.Mode == "spare-heal") && m.DiskReads != 0 {
			failures = append(failures, fmt.Sprintf(
				"%s performed %d disk reads during recovery, want 0", m.Mode, m.DiskReads))
		}
		b, ok := baseline[m.Mode]
		if !ok {
			fmt.Printf("%-12s restore %.3fms mttr %.3fms (no baseline)\n", m.Mode, m.RestoreMs, m.MTTRMs)
			continue
		}
		status := "ok"
		if b.restoreMs > 0 && m.RestoreMs > allowed(b.restoreMs) {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf(
				"%s restore latency %.3fms exceeds %.3fms (best baseline %.3fms)", m.Mode, m.RestoreMs, allowed(b.restoreMs), b.restoreMs))
		}
		if b.mttrMs > 0 && m.MTTRMs > allowed(b.mttrMs) {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf(
				"%s MTTR %.3fms exceeds %.3fms (best baseline %.3fms)", m.Mode, m.MTTRMs, allowed(b.mttrMs), b.mttrMs))
		}
		fmt.Printf("%-12s restore %.3fms (best %.3f) mttr %.3fms (best %.3f) %s\n",
			m.Mode, m.RestoreMs, b.restoreMs, m.MTTRMs, b.mttrMs, status)
	}
	if len(baseline) == 0 {
		fmt.Printf("%s: no earlier record matches the newest configuration; invariants only\n", resilienceFile)
	}
	if len(failures) > 0 {
		return fmt.Errorf("recovery latency regressed vs recorded baseline:\n  %s", joinLines(failures))
	}
	fmt.Println("no recovery regression vs recorded baseline")
	return nil
}

// resilienceBench compares the recovery modes of the fault-tolerant
// driver on the same failure: a lid-driven cavity over four ranks, one
// rank crashed mid-run, protected at equal checkpoint intervals either by
// disk checkpoint sets (rewind-and-replay), by in-memory buddy replicas
// (shrinking recovery), or by buddy replicas plus a parked spare rank
// that rejoins and re-grows the world to full size (healing recovery).
// The headline numbers are the restore latency — from the recovery
// rendezvous to the simulation stepping again — and the MTTR (total
// recovery wall time per restore). Results go to stdout as TSV and are
// appended as a timestamped record to BENCH_resilience.json.
func resilienceBench() {
	header("Resilience: buddy shrink vs disk rewind vs spare heal (restore latency, MTTR)")
	steps, edge := 60, 16
	if *quick {
		steps, edge = 30, 8
	}
	const (
		ranks    = 4
		victim   = 1
		interval = 5
	)
	crashStep := steps/2 + 1

	runMode := func(name string, mode sim.RecoveryMode, dir string) resilienceResult {
		forest := blockforest.NewSetupForest(
			blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
			[3]int{2, 2, 1}, [3]int{edge, edge, edge}, [3]bool{})
		forest.BalanceMorton(ranks)
		cfg := sim.Config{
			Tau:        0.65,
			Boundary:   boundary.Config{WallVelocity: [3]float64{0.05, 0, 0}},
			SetupFlags: core.CavityFlags,
		}
		rc := sim.ResilienceConfig{
			CheckpointEvery: interval,
			Dir:             dir,
			Mode:            mode,
			MaxFailures:     4,
			BackoffBase:     time.Millisecond,
			BackoffMax:      time.Millisecond,
		}
		spares := 0
		if mode == sim.RecoverHeal {
			spares = 1
		}
		res := resilienceResult{Mode: name}
		var mu sync.Mutex
		start := time.Now()
		opts := comm.Options{Faults: &comm.FaultPlan{
			Seed:    17,
			Crashes: []comm.CrashSpec{{Rank: victim, Step: crashStep}},
		}}
		comm.RunWithOptions(ranks+spares, opts, func(c *comm.Comm) {
			var s *sim.Simulation
			var m sim.Metrics
			if spares > 0 && c.WorldRank() >= ranks {
				headerBF := &blockforest.BlockForest{
					Domain:        forest.Domain,
					GridSize:      forest.GridSize,
					CellsPerBlock: forest.CellsPerBlock,
				}
				var joined bool
				var err error
				s, m, joined, err = sim.RunSpareCtx(context.Background(), c, ranks, headerBF, cfg, steps, rc)
				if !joined {
					if err != nil {
						fmt.Fprintln(os.Stderr, "resilience bench:", err)
						os.Exit(1)
					}
					return
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "resilience bench:", err)
					os.Exit(1)
				}
			} else {
				ac := c
				if spares > 0 {
					ac = c.GrowWorld(ranks)
				}
				var in *blockforest.SetupForest
				if ac.Rank() == 0 {
					in = forest
				}
				bf, err := blockforest.Distribute(ac, in)
				if err != nil {
					fmt.Fprintln(os.Stderr, "resilience bench:", err)
					os.Exit(1)
				}
				s, err = sim.New(ac, bf, cfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, "resilience bench:", err)
					os.Exit(1)
				}
				m, err = s.RunResilient(steps, rc)
				if err == sim.ErrRetired {
					return
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "resilience bench:", err)
					os.Exit(1)
				}
			}
			r := m.Recovery
			mu.Lock()
			defer mu.Unlock()
			if ms := float64(r.RestoreLatency) / float64(time.Millisecond); ms > res.RestoreMs {
				res.RestoreMs = ms
			}
			if r.Restores > 0 {
				if ms := float64(r.TimeLost) / float64(time.Millisecond) / float64(r.Restores); ms > res.MTTRMs {
					res.MTTRMs = ms
				}
			}
			if r.Restores > res.Restores {
				res.Restores = r.Restores
			}
			if r.StepsReplayed > res.StepsReplayed {
				res.StepsReplayed = r.StepsReplayed
			}
			res.DiskReads += r.DiskReadsDuringRecovery
			if r.ReplicaBytes > res.ReplicaBytes {
				res.ReplicaBytes = r.ReplicaBytes
			}
			if kb := r.CheckpointBytes / 1024; kb > res.CheckpointKB {
				res.CheckpointKB = kb
			}
			if sz := s.Comm.Size(); sz > res.WorldSize {
				res.WorldSize = sz
			}
		})
		res.WallSeconds = time.Since(start).Seconds()
		return res
	}

	diskDir, err := os.MkdirTemp("", "walberla-resilience-bench-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "resilience bench:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(diskDir)

	// Best of three trials per mode: restore latency is the metric, and on
	// a loaded host a single trial can land a GC cycle inside the recovery
	// window of either mode.
	const trials = 3
	best := func(name string, mode sim.RecoveryMode, dir string) resilienceResult {
		trialDir := func(t int) string {
			if dir == "" {
				return ""
			}
			// A fresh set directory per trial, or a later trial would
			// restore from the previous trial's final checkpoint.
			d := filepath.Join(dir, fmt.Sprintf("trial%d", t))
			if err := os.MkdirAll(d, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "resilience bench:", err)
				os.Exit(1)
			}
			return d
		}
		r := runMode(name, mode, trialDir(0))
		for t := 1; t < trials; t++ {
			if c := runMode(name, mode, trialDir(t)); c.RestoreMs < r.RestoreMs {
				r = c
			}
		}
		return r
	}

	fmt.Printf("# cavity: ranks=%d grid=2x2x1 cells=%d^3 steps=%d interval=%d crash=rank %d@step %d trials=%d (best)\n",
		ranks, edge, steps, interval, victim, crashStep, trials)
	fmt.Println("mode\trestore_ms(max)\tmttr_ms(max)\trestores\treplayed\tdisk_reads\tworld\twall_s")
	rewind := best("disk-rewind", sim.RecoverRewind, diskDir)
	buddy := best("buddy-shrink", sim.RecoverShrink, "")
	heal := best("spare-heal", sim.RecoverHeal, "")
	modes := []resilienceResult{rewind, buddy, heal}
	for _, r := range modes {
		fmt.Printf("%s\t%.3f\t%.3f\t%d\t%d\t%d\t%d\t%.3f\n",
			r.Mode, r.RestoreMs, r.MTTRMs, r.Restores, r.StepsReplayed, r.DiskReads, r.WorldSize, r.WallSeconds)
	}
	speedup := 0.0
	if buddy.RestoreMs > 0 {
		speedup = rewind.RestoreMs / buddy.RestoreMs
	}
	fmt.Printf("buddy restore latency advantage: %.1fx (buddy disk reads: %d); heal resumes at %d ranks\n",
		speedup, buddy.DiskReads, heal.WorldSize)

	// Append this run as a timestamped record; earlier records (including
	// legacy single-record files) are preserved so -compare can ratchet
	// against the best recorded baseline.
	h, err := loadResilienceHistory(resilienceFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "resilience bench:", err)
		os.Exit(1)
	}
	h.Records = append(h.Records, resilienceRecord{
		Time:  time.Now().UTC().Format(time.RFC3339),
		Ranks: ranks, Edge: edge, Steps: steps, Interval: interval,
		CrashStep: crashStep, CrashRank: victim,
		Modes: modes, SpeedupVsD: speedup,
	})
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "resilience bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(resilienceFile, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "resilience bench:", err)
		os.Exit(1)
	}
	fmt.Printf("appended record %d to %s\n", len(h.Records), resilienceFile)
}
