// Command walberla-bench regenerates the evaluation of the paper: every
// figure of section 4 is reproduced either as a real measurement on the
// host machine (node-level kernel studies, sparse-strategy ablation,
// small-scale distributed runs through the in-process message passing
// runtime) or as a projection of the calibrated machine/network models
// (the petascale scaling figures), or both. Output is tab-separated with
// one header line per table, suitable for plotting.
//
// Usage:
//
//	walberla-bench -fig all        # everything
//	walberla-bench -fig 6 -quick   # one figure, reduced sizes
package main

import (
	"flag"
	"fmt"
	"os"
)

var quick = flag.Bool("quick", false, "reduce problem sizes for fast runs")

func main() {
	figure := flag.String("fig", "all", "figure to regenerate: 1|3|4|5|6|7|8|sparse|filesize|balance|iaca|hybrid|comm|resilience|phases|net|serve|amr|all")
	compare := flag.Bool("compare", false, "compare the newest record of every benchmark history on disk (BENCH_phases.json, BENCH_resilience.json, BENCH_amr.json) against its best recorded baseline and fail on a regression")
	flag.Parse()

	if *compare {
		if err := compareAll(); err != nil {
			fmt.Fprintln(os.Stderr, "walberla-bench -compare:", err)
			os.Exit(1)
		}
		return
	}

	figures := map[string]func(){
		"1":          figure1,
		"2":          figure2,
		"3":          figure3,
		"4":          figure4,
		"5":          figure5,
		"6":          figure6,
		"7":          figure7,
		"8":          figure8,
		"sparse":     sparseAblation,
		"filesize":   fileSizes,
		"balance":    balanceAblation,
		"iaca":       iacaReport,
		"hybrid":     hybridBench,
		"comm":       commBench,
		"resilience": resilienceBench,
		"phases":     phasesBench,
		"net":        netBench,
		"serve":      serveBench,
		"amr":        amrBench,
	}
	if *figure == "all" {
		for _, name := range []string{"1", "2", "3", "4", "5", "6", "7", "8", "sparse", "filesize", "balance", "iaca", "hybrid", "comm", "resilience", "phases", "net", "serve", "amr"} {
			figures[name]()
		}
		return
	}
	f, ok := figures[*figure]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figure)
		os.Exit(2)
	}
	f()
}

func header(title string) {
	fmt.Printf("\n### %s\n", title)
}

// compareAll ratchets every benchmark history present on disk against its
// best recorded baseline; at least one history must exist.
func compareAll() error {
	compared := false
	for _, c := range []struct {
		file string
		fn   func() error
	}{
		{phasesFile, comparePhases},
		{resilienceFile, compareResilience},
		{amrFile, compareAmr},
	} {
		if _, err := os.Stat(c.file); err != nil {
			continue
		}
		compared = true
		if err := c.fn(); err != nil {
			return err
		}
	}
	if !compared {
		return fmt.Errorf("no benchmark history found (run walberla-bench -fig phases or -fig resilience first)")
	}
	return nil
}
