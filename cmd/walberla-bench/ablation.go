package main

import (
	"fmt"
	"sync"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/partition"
	"walberla/internal/perfmodel"
	"walberla/internal/setup"
	"walberla/internal/sim"
)

// balanceAblation compares the two static load balancers on real vascular
// partitionings: the Morton space-filling curve (fast, locality
// preserving) against the multilevel graph partitioner (the METIS
// substitute, workload- and communication-aware) — the design choice
// section 2.3 motivates for complex geometries.
func balanceAblation() {
	header("Load balancer ablation: Morton curve vs multilevel graph partitioner")
	tree := coronaryTree()
	sdf, err := tree.SDF()
	if err != nil {
		panic(err)
	}
	cells := [3]int{16, 16, 16}
	target := 256
	if *quick {
		target = 128
	}
	dx, _, err := setup.FindWeakScalingDx(sdf, cells, target, 16)
	if err != nil {
		panic(err)
	}
	fmt.Println("ranks\tbalancer\tmax/avg_workload\tedge_cut\ttotal_edge_weight")
	for _, ranks := range []int{4, 16, 64} {
		for _, useGraph := range []bool{false, true} {
			f, _, err := setup.BuildForest(sdf, setup.Options{
				CellsPerBlock:       cells,
				Dx:                  dx,
				Ranks:               ranks,
				Seed:                1,
				UseGraphPartitioner: useGraph,
			})
			if err != nil {
				panic(err)
			}
			g, blocks := partition.BuildBlockGraph(f)
			parts := make([]int, len(blocks))
			for i, b := range blocks {
				parts[i] = b.Rank
			}
			name := "morton"
			if useGraph {
				name = "graph"
			}
			var totalW float64
			for u := 0; u < g.NumVertices(); u++ {
				for _, e := range g.Neighbors(u) {
					if u < e.To {
						totalW += e.Weight
					}
				}
			}
			fmt.Printf("%d\t%s\t%.3f\t%.0f\t%.0f\n",
				ranks, name,
				partition.Imbalance(g, parts, ranks),
				partition.EdgeCut(g, parts),
				totalW)
		}
	}
	fmt.Println("# the graph partitioner trades a little imbalance for a lower communication cut")

	// Real-run counterpart: per-rank kernel compute time imbalance of a
	// short vascular simulation under each balancer ("we employ load
	// balancing to reduce workload peaks"). On a loaded or single-CPU
	// host this timing is scheduler-noisy; the deterministic fluid-cell
	// imbalance is printed alongside.
	fmt.Println("\nbalancer\tmax/avg_compute_time (measured, 4 ranks)\tmax/avg_fluid_cells")
	for _, useGraph := range []bool{false, true} {
		name := "morton"
		if useGraph {
			name = "graph"
		}
		f, _, err := setup.BuildForest(sdf, setup.Options{
			CellsPerBlock:       cells,
			Dx:                  dx,
			Ranks:               4,
			Seed:                1,
			UseGraphPartitioner: useGraph,
		})
		if err != nil {
			panic(err)
		}
		var maxT, sumT float64
		var maxCells, totalCells int64
		var mu sync.Mutex
		comm.Run(4, func(c *comm.Comm) {
			var in *blockforest.SetupForest
			if c.Rank() == 0 {
				in = f
			}
			bf, err := blockforest.Distribute(c, in)
			if err != nil {
				panic(err)
			}
			s, err := sim.New(c, bf, sim.Config{
				Kernel:     sim.KernelSparse,
				Tau:        0.6,
				SetupFlags: setup.FlagsFromSDF(sdf),
			})
			if err != nil {
				panic(err)
			}
			if _, err := s.Run(100); err != nil {
				panic(err)
			}
			compute, _, _ := s.PhaseTimes()
			_, mc, tc := s.RankLoad()
			mu.Lock()
			sumT += compute.Seconds()
			if compute.Seconds() > maxT {
				maxT = compute.Seconds()
			}
			maxCells, totalCells = mc, tc
			mu.Unlock()
		})
		fmt.Printf("%s\t%.3f\t%.3f\n", name,
			maxT/(sumT/4), float64(maxCells)/(float64(totalCells)/4))
	}
}

// iacaReport prints the static kernel analysis substituting the paper's
// IACA run.
func iacaReport() {
	header("Static kernel analysis (IACA substitute)")
	snb := perfmodel.SandyBridgePorts()
	bgq := perfmodel.BlueGeneQPorts()
	fmt.Println("kernel\tarch\tFLOPs/cell\tport_bound_cycles/8LUP\testimated_cycles/8LUP")
	for _, k := range []struct {
		name string
		ops  perfmodel.KernelOpCounts
	}{
		{"SRT D3Q19", perfmodel.D3Q19SRTOpCounts()},
		{"TRT D3Q19", perfmodel.D3Q19TRTOpCounts()},
	} {
		for _, arch := range []perfmodel.PortModel{snb, bgq} {
			fmt.Printf("%s\t%s\t%d\t%.0f\t%.0f\n",
				k.name, arch.Name, k.ops.FLOPsPerCell(),
				perfmodel.PortBoundCycles(k.ops, arch),
				perfmodel.EstimatedCycles(k.ops, arch))
		}
	}
	fmt.Println("# paper (IACA on Sandy Bridge, TRT): 448 cycles per 8 cell updates")
}
