package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"walberla/internal/comm"
	"walberla/internal/core"
	"walberla/internal/sim"
	"walberla/internal/telemetry"
)

// phasesBench breaks the step time into the split-phase components the
// telemetry layer times — exchange post, interior sweep, residual
// exchange wait, frontier sweep — as a function of the intra-rank worker
// count, on a two-rank lid-driven cavity. The numbers come from the
// telemetry registry (the sim.phase.*_ns counters every traced step
// updates), not from ad-hoc stopwatches, so the bench also exercises the
// telemetry wiring end to end. A rank-0 roofline report places the
// measured kernel rate against the perfmodel prediction. Results go to
// stdout as TSV and to BENCH_phases.json.
func phasesBench() {
	header("Step phase breakdown vs worker count (telemetry timers)")
	steps := 150
	edge := 16
	if *quick {
		steps = 40
		edge = 8
	}
	const ranks = 2
	grid := [3]int{4, 2, 2}

	type result struct {
		Workers         int     `json:"workers"`
		MLUPS           float64 `json:"mlups"`
		WallSeconds     float64 `json:"wall_seconds"`
		PostSeconds     float64 `json:"exchange_post_seconds"`
		InteriorSeconds float64 `json:"interior_sweep_seconds"`
		WaitSeconds     float64 `json:"exchange_wait_seconds"`
		FrontierSeconds float64 `json:"frontier_sweep_seconds"`
		WaitShare       float64 `json:"exchange_wait_share"`
		LoadImbalance   float64 `json:"load_imbalance"`
		PredictedMLUPS  float64 `json:"predicted_mlups_rank0"`
		KernelMLUPS     float64 `json:"kernel_mlups_rank0"`
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "phases bench:", err)
		os.Exit(1)
	}

	fmt.Printf("# ranks=%d grid=%v cells=%d^3 steps=%d (phase seconds summed over ranks)\n",
		ranks, grid, edge, steps)
	fmt.Println("workers\tMLUPS\tpost_s\tinterior_s\twait_s\tfrontier_s\twait%\timbalance")
	var results []result
	for _, w := range []int{1, 2, 4, 8} {
		trace := telemetry.NewTrace()
		var mu sync.Mutex
		regs := map[int]*telemetry.Registry{}

		p := core.LidDrivenCavity(grid, [3]int{edge, edge, edge}, 0.05, ranks)
		p.Workers = w
		p.TelemetryFor = func(rank int) (*telemetry.Tracer, *telemetry.Registry) {
			reg := telemetry.NewRegistry()
			mu.Lock()
			regs[rank] = reg
			mu.Unlock()
			return trace.NewTracer(rank, w, 0), reg
		}

		r := result{Workers: w}
		err := p.RunEach(steps, func(c *comm.Comm, s *sim.Simulation, m sim.Metrics) {
			if c.Rank() != 0 {
				return
			}
			rep := s.RooflineReport(nil)
			r.MLUPS = m.MLUPS
			r.WallSeconds = m.WallTime.Seconds()
			r.PredictedMLUPS = rep.PredictedMLUPS
			r.KernelMLUPS = rep.KernelMLUPS
		})
		if err != nil {
			fail(err)
		}

		var snaps []telemetry.Snapshot
		for rank, reg := range regs {
			snaps = append(snaps, reg.Snapshot(rank))
		}
		merged := telemetry.Merge(snaps)
		r.PostSeconds = float64(merged.Counter("sim.phase.exchange_post_ns")) / 1e9
		r.InteriorSeconds = float64(merged.Counter("sim.phase.interior_sweep_ns")) / 1e9
		r.WaitSeconds = float64(merged.Counter("sim.phase.exchange_wait_ns")) / 1e9
		r.FrontierSeconds = float64(merged.Counter("sim.phase.frontier_sweep_ns")) / 1e9
		if total := r.PostSeconds + r.InteriorSeconds + r.WaitSeconds + r.FrontierSeconds; total > 0 {
			r.WaitShare = r.WaitSeconds / total
		}
		r.LoadImbalance = merged.Gauge("sim.load_imbalance")

		fmt.Printf("%d\t%.2f\t%.4f\t%.4f\t%.4f\t%.4f\t%.1f%%\t%.2f\n",
			r.Workers, r.MLUPS, r.PostSeconds, r.InteriorSeconds,
			r.WaitSeconds, r.FrontierSeconds, 100*r.WaitShare, r.LoadImbalance)
		results = append(results, r)
	}

	out := struct {
		Ranks         int      `json:"ranks"`
		Grid          [3]int   `json:"grid"`
		CellsPerBlock [3]int   `json:"cells_per_block"`
		Steps         int      `json:"steps"`
		Results       []result `json:"results"`
	}{
		Ranks: ranks, Grid: grid,
		CellsPerBlock: [3]int{edge, edge, edge}, Steps: steps,
		Results: results,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile("BENCH_phases.json", append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Println("wrote BENCH_phases.json")
}
