package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
	"time"

	"walberla/internal/comm"
	"walberla/internal/core"
	"walberla/internal/sim"
	"walberla/internal/telemetry"
)

// phasesFile is the benchmark's on-disk record; bench-phases appends one
// timestamped record per run, and -compare ratchets the newest against
// the best earlier record of the same configuration.
const phasesFile = "BENCH_phases.json"

// phasesResult is one worker-count measurement of the phases benchmark.
type phasesResult struct {
	Workers         int     `json:"workers"`
	MLUPS           float64 `json:"mlups"`
	WallSeconds     float64 `json:"wall_seconds"`
	PostSeconds     float64 `json:"exchange_post_seconds"`
	InteriorSeconds float64 `json:"interior_sweep_seconds"`
	WaitSeconds     float64 `json:"exchange_wait_seconds"`
	FrontierSeconds float64 `json:"frontier_sweep_seconds"`
	WaitShare       float64 `json:"exchange_wait_share"`
	LoadImbalance   float64 `json:"load_imbalance"`
	PredictedMLUPS  float64 `json:"predicted_mlups_rank0"`
	KernelMLUPS     float64 `json:"kernel_mlups_rank0"`
}

// phasesRecord is one timestamped benchmark run.
type phasesRecord struct {
	Time          string         `json:"time,omitempty"`
	Ranks         int            `json:"ranks"`
	Grid          [3]int         `json:"grid"`
	CellsPerBlock [3]int         `json:"cells_per_block"`
	Steps         int            `json:"steps"`
	Results       []phasesResult `json:"results"`
}

// phasesHistory is the file layout: an append-only list of records.
type phasesHistory struct {
	Records []phasesRecord `json:"records"`
}

// loadPhasesHistory reads the benchmark history, accepting both the
// current {"records": [...]} layout and the legacy single-record object
// (which becomes the history's first, untimestamped record). A missing
// file is an empty history.
func loadPhasesHistory(path string) (*phasesHistory, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return &phasesHistory{}, nil
	}
	if err != nil {
		return nil, err
	}
	var h phasesHistory
	if err := json.Unmarshal(data, &h); err == nil && h.Records != nil {
		return &h, nil
	}
	var legacy phasesRecord
	if err := json.Unmarshal(data, &legacy); err != nil || len(legacy.Results) == 0 {
		return nil, fmt.Errorf("%s: unrecognized format", path)
	}
	return &phasesHistory{Records: []phasesRecord{legacy}}, nil
}

// sameConfig reports whether two records measured the same benchmark
// configuration (comparing a quick run against a full run is meaningless).
func sameConfig(a, b *phasesRecord) bool {
	return a.Ranks == b.Ranks && a.Grid == b.Grid &&
		a.CellsPerBlock == b.CellsPerBlock && a.Steps == b.Steps
}

// comparePhases ratchets the newest record of BENCH_phases.json against
// the best earlier record of the same configuration: for every worker
// count, both the end-to-end MLUPS and the kernel/roofline ratio
// (kernel_mlups_rank0 / predicted_mlups_rank0) must stay within 5% of the
// best value ever recorded. It returns an error (nonzero exit) on any
// regression, making `make bench-phases` a performance regression gate.
func comparePhases() error {
	const tolerance = 0.95
	h, err := loadPhasesHistory(phasesFile)
	if err != nil {
		return err
	}
	if len(h.Records) == 0 {
		return fmt.Errorf("%s: no records (run walberla-bench -fig phases first)", phasesFile)
	}
	cur := &h.Records[len(h.Records)-1]
	type best struct{ mlups, ratio float64 }
	baseline := map[int]best{}
	for i := range h.Records[:len(h.Records)-1] {
		r := &h.Records[i]
		if !sameConfig(r, cur) {
			continue
		}
		for _, res := range r.Results {
			b := baseline[res.Workers]
			if res.MLUPS > b.mlups {
				b.mlups = res.MLUPS
			}
			if res.PredictedMLUPS > 0 {
				if ratio := res.KernelMLUPS / res.PredictedMLUPS; ratio > b.ratio {
					b.ratio = ratio
				}
			}
			baseline[res.Workers] = b
		}
	}
	if len(baseline) == 0 {
		fmt.Printf("%s: no earlier record matches the newest configuration; nothing to compare\n", phasesFile)
		return nil
	}
	var failures []string
	for _, res := range cur.Results {
		b, ok := baseline[res.Workers]
		if !ok {
			continue
		}
		ratio := 0.0
		if res.PredictedMLUPS > 0 {
			ratio = res.KernelMLUPS / res.PredictedMLUPS
		}
		status := "ok"
		if res.MLUPS < tolerance*b.mlups {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf(
				"workers=%d MLUPS %.2f is below 95%% of best baseline %.2f", res.Workers, res.MLUPS, b.mlups))
		}
		if b.ratio > 0 && ratio < tolerance*b.ratio {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf(
				"workers=%d roofline ratio %.3f is below 95%% of best baseline %.3f", res.Workers, ratio, b.ratio))
		}
		fmt.Printf("workers=%d MLUPS %.2f (best %.2f) ratio %.3f (best %.3f) %s\n",
			res.Workers, res.MLUPS, b.mlups, ratio, b.ratio, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("performance regressed vs recorded baseline:\n  %s", joinLines(failures))
	}
	fmt.Println("no regression vs recorded baseline")
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

// phasesBench breaks the step time into the split-phase components the
// telemetry layer times — exchange post, interior sweep, residual
// exchange wait, frontier sweep — as a function of the intra-rank worker
// count, on a two-rank lid-driven cavity. The numbers come from the
// telemetry registry (the sim.phase.*_ns counters every traced step
// updates), not from ad-hoc stopwatches, so the bench also exercises the
// telemetry wiring end to end. A rank-0 roofline report places the
// measured kernel rate against the perfmodel prediction. Results go to
// stdout as TSV and to BENCH_phases.json.
func phasesBench() {
	header("Step phase breakdown vs worker count (telemetry timers)")
	steps := 150
	edge := 16
	if *quick {
		steps = 40
		edge = 8
	}
	const ranks = 2
	grid := [3]int{4, 2, 2}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "phases bench:", err)
		os.Exit(1)
	}

	fmt.Printf("# ranks=%d grid=%v cells=%d^3 steps=%d (phase seconds summed over ranks)\n",
		ranks, grid, edge, steps)
	fmt.Println("workers\tMLUPS\tpost_s\tinterior_s\twait_s\tfrontier_s\twait%\timbalance")
	var results []phasesResult
	for _, w := range []int{1, 2, 4, 8} {
		trace := telemetry.NewTrace()
		var mu sync.Mutex
		regs := map[int]*telemetry.Registry{}

		p := core.LidDrivenCavity(grid, [3]int{edge, edge, edge}, 0.05, ranks)
		p.Workers = w
		p.TelemetryFor = func(rank int) (*telemetry.Tracer, *telemetry.Registry) {
			reg := telemetry.NewRegistry()
			mu.Lock()
			regs[rank] = reg
			mu.Unlock()
			return trace.NewTracer(rank, w, 0), reg
		}

		r := phasesResult{Workers: w}
		err := p.RunEach(steps, func(c *comm.Comm, s *sim.Simulation, m sim.Metrics) {
			if c.Rank() != 0 {
				return
			}
			rep := s.RooflineReport(nil)
			r.MLUPS = m.MLUPS
			r.WallSeconds = m.WallTime.Seconds()
			r.PredictedMLUPS = rep.PredictedMLUPS
			r.KernelMLUPS = rep.KernelMLUPS
		})
		if err != nil {
			fail(err)
		}

		var snaps []telemetry.Snapshot
		for rank, reg := range regs {
			snaps = append(snaps, reg.Snapshot(rank))
		}
		merged := telemetry.Merge(snaps)
		r.PostSeconds = float64(merged.Counter("sim.phase.exchange_post_ns")) / 1e9
		r.InteriorSeconds = float64(merged.Counter("sim.phase.interior_sweep_ns")) / 1e9
		r.WaitSeconds = float64(merged.Counter("sim.phase.exchange_wait_ns")) / 1e9
		r.FrontierSeconds = float64(merged.Counter("sim.phase.frontier_sweep_ns")) / 1e9
		if total := r.PostSeconds + r.InteriorSeconds + r.WaitSeconds + r.FrontierSeconds; total > 0 {
			r.WaitShare = r.WaitSeconds / total
		}
		r.LoadImbalance = merged.Gauge("sim.load_imbalance")

		fmt.Printf("%d\t%.2f\t%.4f\t%.4f\t%.4f\t%.4f\t%.1f%%\t%.2f\n",
			r.Workers, r.MLUPS, r.PostSeconds, r.InteriorSeconds,
			r.WaitSeconds, r.FrontierSeconds, 100*r.WaitShare, r.LoadImbalance)
		results = append(results, r)
	}

	// Append this run as a timestamped record; earlier records (including
	// legacy single-record files) are preserved so -compare can ratchet
	// against the best recorded baseline.
	h, err := loadPhasesHistory(phasesFile)
	if err != nil {
		fail(err)
	}
	h.Records = append(h.Records, phasesRecord{
		Time:  time.Now().UTC().Format(time.RFC3339),
		Ranks: ranks, Grid: grid,
		CellsPerBlock: [3]int{edge, edge, edge}, Steps: steps,
		Results: results,
	})
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(phasesFile, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("appended record %d to %s\n", len(h.Records), phasesFile)
}
