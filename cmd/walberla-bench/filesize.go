package main

import (
	"fmt"

	"walberla/internal/blockforest"
)

// fileSizes reproduces the block-structure file claims of section 2.2:
// only the low-order bytes carrying information are stored, so ranks of
// simulations with up to 65,536 processes cost two bytes, and forests for
// hundreds of thousands of processes fit in tens of megabytes.
func fileSizes() {
	header("Block structure file size (section 2.2)")
	fmt.Println("processes\tblocks\tfile_bytes\tbytes/block")
	cases := []struct{ grid, procs int }{
		{16, 4096},
		{32, 32768},
		{40, 64000},
		{64, 262144},
	}
	if *quick {
		cases = cases[:2]
	}
	for _, c := range cases {
		f := blockforest.NewSetupForest(
			blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
			[3]int{c.grid, c.grid, c.grid}, [3]int{8, 8, 8}, [3]bool{})
		f.BalanceMorton(c.procs)
		size := f.FileSize()
		fmt.Printf("%d\t%d\t%d\t%.2f\n", c.procs, f.NumBlocks(), size, float64(size)/float64(f.NumBlocks()))
	}
	fmt.Println("# paper: ~40 MiB for half a million processes; 2-byte ranks up to 65,536 processes")
}
