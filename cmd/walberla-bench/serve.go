package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"walberla/internal/scenario"
	"walberla/internal/serve"
)

// serveBench measures the session daemon's control-plane costs: how long
// creating a session takes (scenario validation + forest build + world
// spin-up), the suspend/resume round trip through a coordinated
// checkpoint set, and how aggregate throughput scales when 1/4/8
// concurrent sessions share the stepping gate versus one dedicated run.
// Results go to stdout as TSV and to BENCH_serve.json.
func serveBench() {
	header("Session daemon (create latency, suspend/resume RTT, concurrent sessions)")
	steps, creates := 40, 5
	if *quick {
		steps, creates = 10, 2
	}
	const (
		ranks = 2
		edge  = 8
	)
	cells := float64(2*1*1) * float64(edge*edge*edge)
	scenarioJSON := fmt.Sprintf(`{
		"version": 1, "name": "bench",
		"geometry": {"example": "cavity"},
		"lattice": {}, "collision": {"tau": 0.65},
		"resolution": {"grid": [2, 1, 1], "cells_per_block": [%d, %d, %d]},
		"physics": {"force": [0, 0, 0], "initial_velocity": [0, 0, 0]},
		"parallel": {"ranks": %d},
		"transport": {}, "resilience": {}, "telemetry": {},
		"run": {"steps": 1000000}
	}`, edge, edge, edge, ranks)
	parse := func() *scenario.Scenario {
		sc, err := scenario.Parse([]byte(scenarioJSON))
		if err != nil {
			fatalServe(err)
		}
		return sc
	}
	dir, err := os.MkdirTemp("", "walberla-bench-serve-*")
	if err != nil {
		fatalServe(err)
	}
	defer os.RemoveAll(dir)
	srv, err := serve.NewServer(serve.Config{MaxSessions: 16, MaxConcurrentSteps: 8, DataDir: dir})
	if err != nil {
		fatalServe(err)
	}
	defer srv.Close()
	ctx := context.Background()

	// Create latency: scenario → ready world, averaged over a few worlds.
	t0 := time.Now()
	ids := make([]string, creates)
	for i := range ids {
		sess, err := srv.Create(parse(), "bench")
		if err != nil {
			fatalServe(err)
		}
		ids[i] = sess.ID
	}
	createMs := float64(time.Since(t0).Milliseconds()) / float64(creates)

	// Suspend/resume round trip (checkpoint set write + world teardown +
	// spin-up + restore), measured on a stepped session.
	if _, _, err := srv.Step(ctx, ids[0], steps); err != nil {
		fatalServe(err)
	}
	t0 = time.Now()
	if err := srv.Suspend(ctx, ids[0]); err != nil {
		fatalServe(err)
	}
	if err := srv.Resume(ctx, ids[0]); err != nil {
		fatalServe(err)
	}
	rttMs := float64(time.Since(t0).Microseconds()) / 1e3
	for _, id := range ids {
		if err := srv.Destroy(ctx, id); err != nil {
			fatalServe(err)
		}
	}

	// Aggregate throughput at N concurrent sessions over the shared gate
	// versus one dedicated session.
	type loadPoint struct {
		Sessions       int     `json:"sessions"`
		AggregateMLUPS float64 `json:"aggregate_mlups"`
		PerSession     float64 `json:"per_session_mlups"`
	}
	measure := func(n int) loadPoint {
		ids := make([]string, n)
		for i := range ids {
			sess, err := srv.Create(parse(), fmt.Sprintf("tenant-%d", i))
			if err != nil {
				fatalServe(err)
			}
			ids[i] = sess.ID
		}
		var wg sync.WaitGroup
		t0 := time.Now()
		for _, id := range ids {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				if _, _, err := srv.Step(ctx, id, steps); err != nil {
					fatalServe(err)
				}
			}(id)
		}
		wg.Wait()
		sec := time.Since(t0).Seconds()
		for _, id := range ids {
			if err := srv.Destroy(ctx, id); err != nil {
				fatalServe(err)
			}
		}
		agg := float64(n) * cells * float64(steps) / sec / 1e6
		return loadPoint{Sessions: n, AggregateMLUPS: agg, PerSession: agg / float64(n)}
	}
	var points []loadPoint
	for _, n := range []int{1, 4, 8} {
		points = append(points, measure(n))
	}

	fmt.Println("metric\tvalue")
	fmt.Printf("create_latency_ms\t%.2f\n", createMs)
	fmt.Printf("suspend_resume_ms\t%.2f\n", rttMs)
	fmt.Println("\nsessions\taggregate_MLUPS\tper_session_MLUPS")
	for _, p := range points {
		fmt.Printf("%d\t%.2f\t%.2f\n", p.Sessions, p.AggregateMLUPS, p.PerSession)
	}

	out := struct {
		CreateLatencyMs float64     `json:"create_latency_ms"`
		SuspendResumeMs float64     `json:"suspend_resume_ms"`
		StepsPerBatch   int         `json:"steps_per_batch"`
		Ranks           int         `json:"ranks_per_session"`
		Load            []loadPoint `json:"load"`
	}{createMs, rttMs, steps, ranks, points}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatalServe(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
		fatalServe(err)
	}
	fmt.Println("wrote BENCH_serve.json")
}

func fatalServe(err error) {
	fmt.Fprintln(os.Stderr, "serve bench:", err)
	os.Exit(1)
}
