package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/netmodel"
	"walberla/internal/sim"
)

// netBench compares the in-process communicator with the socket transports
// on the same ghost-exchange workload (messages, bytes and step latency
// per transport), measures how long a severed connection takes to recover,
// and calibrates the analytic network models' postal parameters (latency,
// bandwidth) against the real wire with a ping-pong sweep. Results go to
// stdout as TSV and to BENCH_net.json.
func netBench() {
	header("Socket transport vs in-process (ghost exchange, reconnect, calibration)")
	steps, warm := 60, 3
	pingSizes := []int{1, 64, 1024, 16384, 131072}
	pingReps := 200
	if *quick {
		steps, pingReps = 20, 50
	}

	type transportResult struct {
		Transport       string  `json:"transport"`
		MessagesPerStep float64 `json:"messages_per_step_global"`
		BytesPerStep    float64 `json:"bytes_per_step_global"`
		StepMicros      float64 `json:"step_latency_us"`
		MLUPS           float64 `json:"mlups"`
		WireFramesSent  int64   `json:"wire_frames_sent,omitempty"`
		WireBytesSent   int64   `json:"wire_bytes_sent,omitempty"`
		Heartbeats      int64   `json:"wire_heartbeats,omitempty"`
	}

	const ranks, edge = 2, 16
	grid := [3]int{2, 2, 1}
	runTransport := func(name string, net *comm.NetOptions) transportResult {
		domain := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
		f := blockforest.NewSetupForest(domain, grid, [3]int{edge, edge, edge}, [3]bool{true, true, true})
		f.BalanceMorton(ranks)
		var mu sync.Mutex
		var r transportResult
		comm.RunWithOptions(ranks, comm.Options{Net: net}, func(c *comm.Comm) {
			var in *blockforest.SetupForest
			if c.Rank() == 0 {
				in = f
			}
			bf, err := blockforest.Distribute(c, in)
			if err != nil {
				fatalNet(err)
			}
			s, err := sim.New(c, bf, sim.Config{
				SetupFlags: func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
					flags.Fill(field.Fluid)
				},
			})
			if err != nil {
				fatalNet(err)
			}
			for i := 0; i < warm; i++ {
				if err := s.Step(); err != nil {
					fatalNet(err)
				}
			}
			c.ResetStats()
			t0 := time.Now()
			for i := 0; i < steps; i++ {
				if err := s.Step(); err != nil {
					fatalNet(err)
				}
			}
			wall := time.Since(t0)
			st := c.Stats()
			ns, haveNet := c.NetStats()

			sends, err := c.AllreduceInt64Err(st.Sends, comm.Sum[int64])
			if err != nil {
				fatalNet(err)
			}
			bytes, err := c.AllreduceInt64Err(st.BytesSent, comm.Sum[int64])
			if err != nil {
				fatalNet(err)
			}
			maxWall, err := c.AllreduceInt64Err(int64(wall), comm.Max[int64])
			if err != nil {
				fatalNet(err)
			}
			var frames, wireBytes, hbs int64
			if haveNet {
				frames, err = c.AllreduceInt64Err(ns.FramesSent, comm.Sum[int64])
				if err != nil {
					fatalNet(err)
				}
				wireBytes, err = c.AllreduceInt64Err(ns.BytesSent, comm.Sum[int64])
				if err != nil {
					fatalNet(err)
				}
				hbs, err = c.AllreduceInt64Err(ns.Heartbeats, comm.Sum[int64])
				if err != nil {
					fatalNet(err)
				}
			}
			if c.Rank() == 0 {
				cells := int64(grid[0]*grid[1]*grid[2]) * int64(edge*edge*edge)
				sec := time.Duration(maxWall).Seconds()
				mu.Lock()
				r = transportResult{
					Transport:       name,
					MessagesPerStep: float64(sends) / float64(steps),
					BytesPerStep:    float64(bytes) / float64(steps),
					StepMicros:      sec / float64(steps) * 1e6,
					MLUPS:           float64(cells) * float64(steps) / sec / 1e6,
					WireFramesSent:  frames,
					WireBytesSent:   wireBytes,
					Heartbeats:      hbs,
				}
				mu.Unlock()
			}
		})
		return r
	}

	fmt.Printf("# ranks=%d cells=%d^3/block grid=%v steps=%d (periodic, all fluid)\n", ranks, edge, grid, steps)
	fmt.Println("transport\tmsgs/step\tbytes/step\tstep_us\tMLUPS\twire_frames\twire_bytes")
	var transports []transportResult
	for _, tc := range []struct {
		name string
		net  *comm.NetOptions
	}{
		{"inproc", nil},
		{"unix", &comm.NetOptions{Network: "unix"}},
		{"tcp", &comm.NetOptions{Network: "tcp"}},
	} {
		r := runTransport(tc.name, tc.net)
		transports = append(transports, r)
		fmt.Printf("%s\t%.1f\t%.0f\t%.1f\t%.2f\t%d\t%d\n",
			r.Transport, r.MessagesPerStep, r.BytesPerStep, r.StepMicros, r.MLUPS,
			r.WireFramesSent, r.WireBytesSent)
	}

	// Reconnect recovery: ping-pong with severed connections. Every
	// round trip is timed; the worst round trip of a faulty run bounds the
	// detect-reconnect-resend cycle, compared against the fault-free worst.
	pingPong := func(reps, floats int, plan *comm.NetFaultPlan) (worst time.Duration, resent int64) {
		var mu sync.Mutex
		net := &comm.NetOptions{Network: "unix", HeartbeatEvery: 2 * time.Millisecond}
		net.Faults = plan
		comm.RunWithOptions(2, comm.Options{Net: net}, func(c *comm.Comm) {
			peer := 1 - c.Rank()
			for i := 0; i < reps; i++ {
				buf := make([]float64, floats)
				t0 := time.Now()
				if c.Rank() == 0 {
					if err := c.SendFloat64s(peer, 7, buf); err != nil {
						fatalNet(err)
					}
					if _, _, err := c.RecvFloat64sErr(peer, 8); err != nil {
						fatalNet(err)
					}
					if d := time.Since(t0); d > worst {
						mu.Lock()
						worst = d
						mu.Unlock()
					}
				} else {
					if _, _, err := c.RecvFloat64sErr(peer, 7); err != nil {
						fatalNet(err)
					}
					if err := c.SendFloat64s(peer, 8, buf); err != nil {
						fatalNet(err)
					}
				}
			}
			ns, _ := c.NetStats()
			mu.Lock()
			resent += ns.ResentFrames
			mu.Unlock()
		})
		return worst, resent
	}

	header("Reconnect recovery (worst ping-pong round trip, severed vs clean)")
	cleanWorst, _ := pingPong(pingReps, 16, nil)
	severPlan := &comm.NetFaultPlan{Severs: []comm.SeverSpec{
		{From: 0, To: 1, AtFrame: uint64(pingReps / 4)},
		{From: 1, To: 0, AtFrame: uint64(pingReps / 2)},
	}}
	severWorst, resent := pingPong(pingReps, 16, severPlan)
	fmt.Println("case\tworst_rt_us\tresent_frames")
	fmt.Printf("clean\t%.1f\t0\n", float64(cleanWorst.Nanoseconds())/1e3)
	fmt.Printf("severed\t%.1f\t%d\n", float64(severWorst.Nanoseconds())/1e3, resent)

	// Calibration: one-way latency/bandwidth of the unix wire from timed
	// round trips across message sizes, fitted to t = L + m/B.
	header("Postal-model calibration of the socket wire")
	var sizes, times []float64
	fmt.Println("bytes\trt_us\toneway_us")
	for _, floats := range pingSizes {
		var mu sync.Mutex
		var total time.Duration
		net := &comm.NetOptions{Network: "unix"}
		comm.RunWithOptions(2, comm.Options{Net: net}, func(c *comm.Comm) {
			peer := 1 - c.Rank()
			// Warm the connection and the receive rotation.
			for i := 0; i < 5; i++ {
				buf := make([]float64, floats)
				if c.Rank() == 0 {
					c.SendFloat64s(peer, 7, buf)
					c.RecvFloat64s(peer, 8)
				} else {
					c.RecvFloat64s(peer, 7)
					c.SendFloat64s(peer, 8, buf)
				}
			}
			t0 := time.Now()
			for i := 0; i < pingReps; i++ {
				buf := make([]float64, floats)
				if c.Rank() == 0 {
					c.SendFloat64s(peer, 7, buf)
					c.RecvFloat64s(peer, 8)
				} else {
					c.RecvFloat64s(peer, 7)
					c.SendFloat64s(peer, 8, buf)
				}
			}
			if c.Rank() == 0 {
				mu.Lock()
				total = time.Since(t0)
				mu.Unlock()
			}
		})
		bytes := float64(8 * floats)
		oneWay := total.Seconds() / float64(2*pingReps)
		sizes = append(sizes, bytes)
		times = append(times, oneWay)
		fmt.Printf("%.0f\t%.2f\t%.2f\n", bytes, total.Seconds()/float64(pingReps)*1e6, oneWay*1e6)
	}
	lat, bw, err := netmodel.FitLatencyBandwidth(sizes, times)
	calibrated := map[string]any{}
	if err != nil {
		fmt.Printf("# calibration failed: %v\n", err)
		calibrated["error"] = err.Error()
	} else {
		cal := &netmodel.Calibrated{NetName: "unix", Latency: lat, Bandwidth: bw}
		fmt.Printf("# fitted: latency=%.2fus bandwidth=%.2fGB/s\n", lat*1e6, bw/1e9)
		fmt.Printf("# model check: 10 msgs x 1MiB -> %.1fus\n", cal.CommTime(2, 10<<20, 0, 10)*1e6)
		calibrated["latency_us"] = lat * 1e6
		calibrated["bandwidth_bytes_per_s"] = bw
	}

	out := struct {
		Ranks            int               `json:"ranks"`
		Steps            int               `json:"steps"`
		Transports       []transportResult `json:"transports"`
		CleanWorstRTUs   float64           `json:"clean_worst_roundtrip_us"`
		SeveredWorstRTUs float64           `json:"severed_worst_roundtrip_us"`
		ResentFrames     int64             `json:"resent_frames"`
		Calibration      map[string]any    `json:"calibrated_postal_model"`
	}{
		Ranks: ranks, Steps: steps, Transports: transports,
		CleanWorstRTUs:   float64(cleanWorst.Nanoseconds()) / 1e3,
		SeveredWorstRTUs: float64(severWorst.Nanoseconds()) / 1e3,
		ResentFrames:     resent,
		Calibration:      calibrated,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatalNet(err)
	}
	if err := os.WriteFile("BENCH_net.json", append(data, '\n'), 0o644); err != nil {
		fatalNet(err)
	}
	fmt.Println("wrote BENCH_net.json")
}

func fatalNet(err error) {
	fmt.Fprintln(os.Stderr, "net bench:", err)
	os.Exit(1)
}
