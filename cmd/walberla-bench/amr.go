package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"sync"
	"time"

	"walberla/internal/amr"
	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/lattice"
)

// amrFile is the benchmark's on-disk record; bench-amr appends one
// timestamped record per run and -compare ratchets the newest against
// the best earlier record of the same configuration.
const amrFile = "BENCH_amr.json"

// amrLevelStat is one refinement level's share of a refined run.
type amrLevelStat struct {
	Level      int     `json:"level"`
	Leaves     int     `json:"leaves_final"`
	Updates    int64   `json:"cell_updates"`
	MLUPS      float64 `json:"mlups"`
	SweepMs    float64 `json:"sweep_ms_rank_max"`
	ExchangeMs float64 `json:"exchange_ms_rank_max"`
}

// amrRunResult is one run (refined or uniform) of the jet workload.
type amrRunResult struct {
	Name        string         `json:"name"`
	Cells       int64          `json:"cells_final"`
	Steps       int            `json:"steps"`
	WallSeconds float64        `json:"wall_seconds"`
	MLUPS       float64        `json:"mlups"`
	JetEnergy   float64        `json:"jet_energy_density"`
	JetError    float64        `json:"jet_rms_error_vs_analytic"`
	Levels      []amrLevelStat `json:"levels,omitempty"`
	Regrades    int            `json:"regrades,omitempty"`
	Splits      int            `json:"splits,omitempty"`
	Merges      int            `json:"merges,omitempty"`
	Migrated    int            `json:"migrated,omitempty"`
	RegradeMs   float64        `json:"regrade_ms_rank_max,omitempty"`
	MigrateMs   float64        `json:"migrate_ms_rank_max,omitempty"`
	RegradePct  float64        `json:"regrade_pct_of_wall,omitempty"`
}

// amrRecord is one timestamped benchmark run.
type amrRecord struct {
	Time            string         `json:"time,omitempty"`
	Quick           bool           `json:"quick"`
	Grid            [3]int         `json:"grid"`
	Edge            int            `json:"cells_per_block_edge"`
	MaxLevel        int            `json:"max_level"`
	Steps           int            `json:"coarse_steps"`
	Ranks           int            `json:"ranks"`
	Workers         int            `json:"workers"`
	Runs            []amrRunResult `json:"runs"`
	CellRatioVsFine float64        `json:"cell_ratio_fine_over_refined"`
	ErrRefined      float64        `json:"err_refined_vs_analytic"`
	ErrCoarse       float64        `json:"err_coarse_vs_analytic"`
}

type amrHistory struct {
	Records []amrRecord `json:"records"`
}

func loadAmrHistory(path string) (*amrHistory, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return &amrHistory{}, nil
	}
	if err != nil {
		return nil, err
	}
	var h amrHistory
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &h, nil
}

func sameAmrConfig(a, b *amrRecord) bool {
	return a.Quick == b.Quick && a.Grid == b.Grid && a.Edge == b.Edge &&
		a.MaxLevel == b.MaxLevel && a.Steps == b.Steps && a.Ranks == b.Ranks && a.Workers == b.Workers
}

// compareAmr ratchets the newest BENCH_amr.json record. Two invariants
// hold regardless of any baseline — the refined run must keep at least
// 4x fewer cells than the uniform fine run, and its accuracy against
// the closed-form jet profile must be no worse than the uniform coarse
// run's —
// and against the best earlier record of the same configuration the
// refined run's MLUPS must stay within 25% (MLUPS on a shared machine
// is noisier than the millisecond recovery latencies, so the gate is
// wider than the phase ratchet's 5%).
func compareAmr() error {
	const mlupsSlack = 0.75
	h, err := loadAmrHistory(amrFile)
	if err != nil {
		return err
	}
	if len(h.Records) == 0 {
		return fmt.Errorf("%s: no records (run walberla-bench -fig amr first)", amrFile)
	}
	cur := &h.Records[len(h.Records)-1]
	var failures []string
	if cur.CellRatioVsFine < 4 {
		failures = append(failures, fmt.Sprintf(
			"refined run holds only %.2fx fewer cells than uniform fine, want >= 4x", cur.CellRatioVsFine))
	}
	if cur.ErrRefined > cur.ErrCoarse {
		failures = append(failures, fmt.Sprintf(
			"refined jet error %.3g vs the analytic profile is worse than uniform coarse %.3g", cur.ErrRefined, cur.ErrCoarse))
	}
	refinedMLUPS := func(r *amrRecord) float64 {
		for _, run := range r.Runs {
			if run.Name == "refined" {
				return run.MLUPS
			}
		}
		return 0
	}
	best := 0.0
	for i := range h.Records[:len(h.Records)-1] {
		r := &h.Records[i]
		if sameAmrConfig(r, cur) {
			if m := refinedMLUPS(r); m > best {
				best = m
			}
		}
	}
	curM := refinedMLUPS(cur)
	if best > 0 {
		if curM < best*mlupsSlack {
			failures = append(failures, fmt.Sprintf(
				"refined MLUPS %.1f below %.1f (%.0f%% of best recorded %.1f)", curM, best*mlupsSlack, mlupsSlack*100, best))
		}
		fmt.Printf("amr: refined %.1f MLUPS (best %.1f), %.2fx fewer cells than fine, err %.3g vs coarse %.3g\n",
			curM, best, cur.CellRatioVsFine, cur.ErrRefined, cur.ErrCoarse)
	} else {
		fmt.Printf("amr: refined %.1f MLUPS (no baseline), %.2fx fewer cells than fine, err %.3g vs coarse %.3g\n",
			curM, cur.CellRatioVsFine, cur.ErrRefined, cur.ErrCoarse)
	}
	if len(failures) > 0 {
		return fmt.Errorf("amr benchmark regressed:\n  %s", joinLines(failures))
	}
	fmt.Println("no amr regression vs recorded baseline")
	return nil
}

// The benchmark workload is a Gaussian shear layer uy(x): a
// unidirectional shear flow is an exact Navier–Stokes solution (the
// advection term vanishes identically), so uy evolves by pure 1-D
// diffusion and every run can be scored against the closed-form
// solution — no reference-run confound. The layer is sharp (σ₀ ≈ 1.4
// coarse cells), so the coarse grid genuinely under-resolves it while
// it is still localized enough that most of the domain stays quiescent.
const (
	jetAmp = 0.05
	jetVar = 2.0 // initial variance v₀ (coarse cell units): uy = A·exp(−d²/(2v₀))
	jetTau = 0.8 // coarse relaxation time; ν = (τ−1/2)/3
)

// amrJetState builds the initial condition at a given resolution scale:
// scale k means the run's level-0 cell is 1/k of the coarse run's —
// positions and widths scale with k while lattice velocities stay put
// (acoustic scaling).
func amrJetState(lx int, scale int) func(x, y, z float64) (float64, float64, float64, float64) {
	cx := float64(lx*scale) / 2
	twoVar := 2 * jetVar * float64(scale*scale)
	return func(x, y, z float64) (rho, ux, uy, uz float64) {
		d := x - cx
		return 1, 0, jetAmp * math.Exp(-d*d/twoVar), 0
	}
}

// jetAnalytic is the exact diffused profile at coarse time t (coarse
// steps) and coarse position offset d from the layer center:
// variance grows as v(t) = v₀ + 2νt, amplitude shrinks as √(v₀/v(t)).
func jetAnalytic(d, t float64) float64 {
	nu := (jetTau - 0.5) / 3
	vt := jetVar + 2*nu*t
	return jetAmp * math.Sqrt(jetVar/vt) * math.Exp(-d*d/(2*vt))
}

// jetMeasure walks every owned cell in the jet window |x - Lx/2| < 8
// (coarse level-0 units, rescaled by the run's resolution scale) and
// reduces two numbers across all ranks: the mean kinetic energy density
// over the window (a scale-free diagnostic — densities need no unit
// conversion between resolutions), and the volume-weighted RMS error of
// uy against the closed-form diffused profile at coarse time tCoarse.
// Cell volumes are weighted by 8^-level so refined runs integrate
// correctly over their mixed-resolution leaves.
func jetMeasure(s *amr.Sim, c *comm.Comm, cfg *amr.Config, scale int, lxCoarse int, tCoarse float64) (energy, rmsErr float64) {
	st := cfg.Stencil
	cx := float64(lxCoarse*scale) / 2
	w := 8 * float64(scale)
	f := make([]float64, st.Q)
	var e, sq, volSum float64
	for _, b := range s.OwnedBlocks() {
		h := 1.0 / float64(int(1)<<uint(b.Level()))
		vol := h * h * h
		C := cfg.Cells
		for z := 0; z < C[2]; z++ {
			for y := 0; y < C[1]; y++ {
				for x := 0; x < C[0]; x++ {
					px := (float64(b.Idx[0]*C[0]+x) + 0.5) * h
					if math.Abs(px-cx) >= w {
						continue
					}
					for a := 0; a < st.Q; a++ {
						f[a] = b.Src.Get(x, y, z, lattice.Direction(a))
					}
					rho, ux, uy, uz := st.Moments(f)
					e += 0.5 * rho * (ux*ux + uy*uy + uz*uz) * vol
					d := uy - jetAnalytic((px-cx)/float64(scale), tCoarse)
					sq += d * d * vol
					volSum += vol
				}
			}
		}
	}
	sum := func(a, b float64) float64 { return a + b }
	e = c.AllreduceFloat64(e, sum)
	sq = c.AllreduceFloat64(sq, sum)
	volSum = c.AllreduceFloat64(volSum, sum)
	return e / volSum, math.Sqrt(sq / volSum)
}

// amrBench compares runtime AMR against uniform-resolution baselines on
// a localized Gaussian shear layer: a refined run (the controller
// resolves the layer to max_level), a uniform run at the coarse
// resolution, and a uniform run at the finest resolution everywhere
// (stepped 2^max_level times as often under acoustic scaling). Because
// the layer diffuses by a closed-form solution, every run is scored
// against the exact profile — the fine run shows the error floor. The
// headline numbers are the cell-count ratio fine/refined (how much mesh
// the controller saves), the RMS profile error of refined vs coarse
// (what the saved mesh costs in accuracy), per-level MLUPS and the
// re-grade + migration overhead. Results go to stdout as TSV and are
// appended to BENCH_amr.json.
func amrBench() {
	header("AMR: refined vs uniform coarse/fine (cells, accuracy, per-level MLUPS, re-grade cost)")
	const (
		ranks    = 2
		workers  = 2
		maxLevel = 2
	)
	grid := [3]int{8, 2, 2}
	edge := 8
	steps := 24
	if *quick {
		steps = 8
	}
	lx := grid[0] * edge
	fineScale := 1 << maxLevel

	baseCfg := func(scale int) amr.Config {
		return amr.Config{
			Stencil:      lattice.D3Q19(),
			Grid:         grid,
			Cells:        [3]int{edge * scale, edge * scale, edge * scale},
			Periodic:     [3]bool{true, true, true},
			Layout:       field.SoA,
			Tau:          0.5 + float64(scale)*(jetTau-0.5),
			Workers:      workers,
			InitialState: amrJetState(lx, scale),
		}
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "amr bench:", err)
		os.Exit(1)
	}

	// run executes one configuration and reports the rank-0 result. The
	// refined run steps manually to integrate per-level cell updates
	// against the live leaf counts (the forest changes under it).
	run := func(name string, cfg amr.Config, scale, steps int) amrRunResult {
		var mu sync.Mutex
		var res amrRunResult
		comm.Run(ranks, func(c *comm.Comm) {
			s, err := amr.New(c, cfg)
			if err != nil {
				fail(err)
			}
			cells := [9]int64{}
			start := time.Now()
			for i := 0; i < steps; i++ {
				if err := s.Step(); err != nil {
					fail(err)
				}
				for l, n := range s.LevelCounts() {
					cells[l] += int64(n) * int64(cfg.Cells[0]*cfg.Cells[1]*cfg.Cells[2]) * int64(int(1)<<uint(l))
				}
			}
			wall := time.Since(start)
			energy, rmsErr := jetMeasure(s, c, &cfg, scale, lx, float64(steps)/float64(scale))
			st := s.GetStats()
			// Per-rank timers reduce to the rank max: the slowest rank is
			// the one the synchronized schedule actually waits for.
			maxI64 := func(a, b int64) int64 {
				if a > b {
					return a
				}
				return b
			}
			var sweepNs, xNs [9]int64
			for l := 0; l <= maxLevel; l++ {
				sweepNs[l] = c.AllreduceInt64(st.SweepNs[l], maxI64)
				xNs[l] = c.AllreduceInt64(st.ExchangeNs[l], maxI64)
			}
			regradeNs := c.AllreduceInt64(st.RegradeNs, maxI64)
			migrateNs := c.AllreduceInt64(st.MigrateNs, maxI64)
			if c.Rank() != 0 {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			res = amrRunResult{
				Name:        name,
				Cells:       s.TotalCells(),
				Steps:       steps,
				WallSeconds: wall.Seconds(),
				JetEnergy:   energy,
				JetError:    rmsErr,
				Regrades:    st.Regrades,
				Splits:      st.Splits,
				Merges:      st.Merges,
				Migrated:    st.Migrated,
				RegradeMs:   float64(regradeNs) / 1e6,
				MigrateMs:   float64(migrateNs) / 1e6,
			}
			var updates int64
			counts := s.LevelCounts()
			for l := 0; l <= maxLevel && l < len(counts); l++ {
				if cells[l] == 0 {
					continue
				}
				ls := amrLevelStat{
					Level:      l,
					Leaves:     counts[l],
					Updates:    cells[l],
					SweepMs:    float64(sweepNs[l]) / 1e6,
					ExchangeMs: float64(xNs[l]) / 1e6,
				}
				if sweepNs[l] > 0 {
					ls.MLUPS = float64(cells[l]) / float64(sweepNs[l]) * 1e3
				}
				res.Levels = append(res.Levels, ls)
				updates += cells[l]
			}
			if wall > 0 {
				res.MLUPS = float64(updates) / float64(wall.Nanoseconds()) * 1e3
				res.RegradePct = float64(regradeNs+migrateNs) / float64(wall.Nanoseconds()) * 100
			}
		})
		return res
	}

	coarseCfg := baseCfg(1)
	coarse := run("uniform-coarse", coarseCfg, 1, steps)

	refinedCfg := baseCfg(1)
	refinedCfg.Refinement = amr.Refinement{
		MaxLevel:     maxLevel,
		Criterion:    amr.CriterionGradient,
		RefineAbove:  0.008,
		CoarsenBelow: 0.001,
		Interval:     4,
	}
	refined := run("refined", refinedCfg, 1, steps)

	fine := run("uniform-fine", baseCfg(fineScale), fineScale, steps*fineScale)
	ratio := float64(fine.Cells) / float64(refined.Cells)

	fmt.Printf("# jet: grid=%dx%dx%d cells=%d^3 max_level=%d coarse_steps=%d ranks=%d workers=%d\n",
		grid[0], grid[1], grid[2], edge, maxLevel, steps, ranks, workers)
	fmt.Println("run\tcells\tsteps\twall_s\tmlups\tjet_energy\trms_err\tregrades\tsplits\tmerges\tmigrated\tregrade_pct")
	for _, r := range []amrRunResult{coarse, refined, fine} {
		fmt.Printf("%s\t%d\t%d\t%.3f\t%.1f\t%.6g\t%.3g\t%d\t%d\t%d\t%d\t%.2f\n",
			r.Name, r.Cells, r.Steps, r.WallSeconds, r.MLUPS, r.JetEnergy, r.JetError,
			r.Regrades, r.Splits, r.Merges, r.Migrated, r.RegradePct)
	}
	fmt.Println("level\tleaves\tcell_updates\tmlups\tsweep_ms\texchange_ms")
	for _, l := range refined.Levels {
		fmt.Printf("L%d\t%d\t%d\t%.1f\t%.2f\t%.2f\n", l.Level, l.Leaves, l.Updates, l.MLUPS, l.SweepMs, l.ExchangeMs)
	}
	fmt.Printf("refined holds %.2fx fewer cells than uniform fine at %.3g rms profile error (coarse %.3g, fine floor %.3g); regrade+migration %.2f%% of wall\n",
		ratio, refined.JetError, coarse.JetError, fine.JetError, refined.RegradePct)

	h, err := loadAmrHistory(amrFile)
	if err != nil {
		fail(err)
	}
	h.Records = append(h.Records, amrRecord{
		Time:  time.Now().UTC().Format(time.RFC3339),
		Quick: *quick, Grid: grid, Edge: edge, MaxLevel: maxLevel,
		Steps: steps, Ranks: ranks, Workers: workers,
		Runs:            []amrRunResult{coarse, refined, fine},
		CellRatioVsFine: ratio,
		ErrRefined:      refined.JetError,
		ErrCoarse:       coarse.JetError,
	})
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(amrFile, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("appended record %d to %s\n", len(h.Records), amrFile)
}
