// Command walberla-serve is the simulation-as-a-service daemon: it owns
// a shared stepping pool and multiplexes many concurrent simulation
// sessions over it. Scenarios (the typed JSON schema of
// internal/scenario) arrive over an HTTP+JSON session API; sessions are
// stepped, steered, snapshotted, suspended to coordinated checkpoint
// sets and revived bit-identically. See docs/SERVE.md for the API
// reference.
//
// Usage:
//
//	walberla-serve -addr localhost:8977
//	curl -X POST localhost:8977/v1/sessions -d @scenario.json
//	curl -X POST localhost:8977/v1/sessions/s-000001/step -d '{"steps":100}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"walberla/internal/serve"
	"walberla/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8977", "HTTP listen address for the session API")
		maxSessions = flag.Int("max-sessions", 8, "admission control: maximum resident sessions (suspended sessions do not count)")
		maxSteppers = flag.Int("max-concurrent-steps", 0, "fair-share gate width: sessions stepping at once (0 = GOMAXPROCS/2)")
		dataDir     = flag.String("data", "", "session spill directory for checkpoint sets and VTK frames (empty = temp dir)")
	)
	flag.Parse()

	metrics := telemetry.NewMetricsServer()
	srv, err := serve.NewServer(serve.Config{
		MaxSessions:        *maxSessions,
		MaxConcurrentSteps: *maxSteppers,
		DataDir:            *dataDir,
		Metrics:            metrics,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: serve.Handler(srv)}
	fmt.Printf("walberla-serve listening on http://%s (sessions: %d resident max)\n",
		ln.Addr(), *maxSessions)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Println("\nshutting down: draining requests, destroying sessions")
	case err := <-done:
		fatal(err)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "walberla-serve:", err)
	os.Exit(1)
}
