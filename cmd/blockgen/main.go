// Command blockgen runs the offline initialization phase of section 2.2:
// it builds the block structure for a surface geometry — classification,
// workload counting, static load balancing — and writes it to the compact
// binary block-structure file that the simulation later loads and
// broadcasts. The geometry comes from a colored mesh file (or the built-in
// synthetic coronary tree), the target is either an explicit resolution or
// a block-count target resolved by binary search.
//
// Usage:
//
//	blockgen -tree -cells 16 -target 512 -ranks 512 -o tree.wbf
//	blockgen -mesh vessel.wbm -dx 0.05 -ranks 64 -metis -o vessel.wbf
package main

import (
	"flag"
	"fmt"
	"os"

	"walberla/internal/distance"
	"walberla/internal/mesh"
	"walberla/internal/setup"
	"walberla/internal/vascular"
)

func main() {
	var (
		meshPath  = flag.String("mesh", "", "colored mesh file (WBM1 format; see cmd/voxelize -export)")
		useTree   = flag.Bool("tree", false, "use the built-in synthetic coronary tree")
		treeDepth = flag.Int("tree-depth", 4, "bifurcation depth of the synthetic tree")
		seed      = flag.Int64("seed", 1, "seed for tree generation and balancing")
		cells     = flag.Int("cells", 16, "lattice cells per block edge")
		dx        = flag.Float64("dx", 0, "lattice spacing (alternative to -target)")
		target    = flag.Int("target", 0, "target block count resolved by binary search")
		ranks     = flag.Int("ranks", 1, "process count to balance for")
		metis     = flag.Bool("metis", false, "use the multilevel graph partitioner instead of the Morton curve")
		out       = flag.String("o", "blocks.wbf", "output block structure file")
	)
	flag.Parse()

	sdf, err := loadGeometry(*meshPath, *useTree, *treeDepth, *seed)
	if err != nil {
		fatal(err)
	}
	cpb := [3]int{*cells, *cells, *cells}
	resolution := *dx
	if resolution == 0 {
		if *target == 0 {
			fatal(fmt.Errorf("one of -dx or -target is required"))
		}
		var blocks int
		resolution, blocks, err = setup.FindWeakScalingDx(sdf, cpb, *target, 20)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("binary search: dx = %g yields %d blocks (target %d)\n", resolution, blocks, *target)
	}
	forest, stats, err := setup.BuildForest(sdf, setup.Options{
		CellsPerBlock:       cpb,
		Dx:                  resolution,
		Ranks:               *ranks,
		Seed:                *seed,
		UseGraphPartitioner: *metis,
	})
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := forest.Save(f); err != nil {
		fatal(err)
	}
	fmt.Printf("grid %v, %d blocks (%d discarded), %d fluid of %d cells (%.2f%%)\n",
		stats.Grid, stats.Blocks, stats.DiscardedBlocks,
		stats.FluidCells, stats.TotalCells, 100*stats.FluidFraction)
	fmt.Printf("wrote %s (%d bytes, %.2f bytes/block)\n",
		*out, forest.FileSize(), float64(forest.FileSize())/float64(stats.Blocks))
}

func loadGeometry(meshPath string, useTree bool, depth int, seed int64) (distance.SDF, error) {
	if useTree {
		p := vascular.DefaultParams()
		p.Depth = depth
		p.Seed = seed
		return vascular.Generate(p).SDF()
	}
	if meshPath == "" {
		return nil, fmt.Errorf("either -mesh or -tree is required")
	}
	f, err := os.Open(meshPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := mesh.Read(f)
	if err != nil {
		return nil, err
	}
	return distance.NewField(m)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "blockgen:", err)
	os.Exit(1)
}
