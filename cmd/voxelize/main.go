// Command voxelize exercises the geometry stage of the initialization
// pipeline on a single block: it voxelizes a surface geometry against the
// signed distance function, computes the boundary hull by morphological
// dilation, and reports the resulting cell statistics. With -export it
// instead writes the geometry as a colored mesh file for use with
// blockgen.
//
// Usage:
//
//	voxelize -tree -n 64
//	voxelize -mesh vessel.wbm -n 128
//	voxelize -tree -tree-depth 5 -export tree.wbm
package main

import (
	"flag"
	"fmt"
	"os"

	"walberla/internal/distance"
	"walberla/internal/field"
	"walberla/internal/geometry"
	"walberla/internal/lattice"
	"walberla/internal/mesh"
	"walberla/internal/vascular"
)

func main() {
	var (
		meshPath  = flag.String("mesh", "", "colored mesh file (WBM1 format)")
		useTree   = flag.Bool("tree", false, "use the built-in synthetic coronary tree")
		treeDepth = flag.Int("tree-depth", 4, "bifurcation depth of the synthetic tree")
		seed      = flag.Int64("seed", 1, "tree generation seed")
		n         = flag.Int("n", 64, "voxelization resolution per axis")
		export    = flag.String("export", "", "write the geometry mesh to this file and exit")
	)
	flag.Parse()

	var sdf distance.SDF
	var surface *mesh.Mesh
	if *useTree {
		p := vascular.DefaultParams()
		p.Depth = *treeDepth
		p.Seed = *seed
		tree := vascular.Generate(p)
		surface = tree.Mesh()
		s, err := tree.SDF()
		if err != nil {
			fatal(err)
		}
		sdf = s
	} else if *meshPath != "" {
		f, err := os.Open(*meshPath)
		if err != nil {
			fatal(err)
		}
		m, err := mesh.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		surface = m
		s, err := distance.NewField(m)
		if err != nil {
			fatal(err)
		}
		sdf = s
	} else {
		fatal(fmt.Errorf("either -mesh or -tree is required"))
	}

	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := surface.Write(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d vertices, %d triangles\n", *export, surface.VertexCount(), surface.TriangleCount())
		return
	}

	bounds := sdf.Bounds()
	fmt.Printf("geometry: %d triangles, bounds %v - %v\n", surface.TriangleCount(), bounds.Min, bounds.Max)
	flags := field.NewFlagField(*n, *n, *n, 1)
	geometry.Voxelize(sdf, bounds, flags)
	created := geometry.DilateBoundary(sdf, bounds, flags, lattice.D3Q19())
	counts := map[field.CellType]int{}
	for z := 0; z < *n; z++ {
		for y := 0; y < *n; y++ {
			for x := 0; x < *n; x++ {
				counts[flags.Get(x, y, z)]++
			}
		}
	}
	total := *n * *n * *n
	fmt.Printf("resolution %d^3 = %d cells\n", *n, total)
	fmt.Printf("fluid     %9d (%.3f%%)\n", counts[field.Fluid], 100*float64(counts[field.Fluid])/float64(total))
	fmt.Printf("wall      %9d\n", counts[field.NoSlip])
	fmt.Printf("inflow    %9d\n", counts[field.VelocityBounce])
	fmt.Printf("outflow   %9d\n", counts[field.PressureBounce])
	fmt.Printf("outside   %9d\n", counts[field.Outside])
	fmt.Printf("boundary hull: %d cells created by dilation (incl. ghost layer)\n", created)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "voxelize:", err)
	os.Exit(1)
}
