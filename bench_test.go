package walberla

// The benchmark suite: one benchmark per table and figure of the paper's
// evaluation (section 4). Real measurements run on the host; the analytic
// model benchmarks regenerate the projected numbers and report them as
// custom metrics, so `go test -bench . -benchmem` reproduces the full
// evaluation record.

import (
	"testing"

	"walberla/internal/blockforest"
	"walberla/internal/boundary"
	"walberla/internal/collide"
	"walberla/internal/comm"
	"walberla/internal/core"
	"walberla/internal/field"
	"walberla/internal/geometry"
	"walberla/internal/kernels"
	"walberla/internal/lattice"
	"walberla/internal/partition"
	"walberla/internal/perfmodel"
	"walberla/internal/scaling"
	"walberla/internal/setup"
	"walberla/internal/sim"
	"walberla/internal/vascular"
)

// BenchmarkFig1Partitioning measures the domain partitioning search of
// Figure 1: binary search in dx for a one-block-per-process target on the
// synthetic coronary tree.
func BenchmarkFig1Partitioning(b *testing.B) {
	p := vascular.DefaultParams()
	p.Depth = 3
	tree := vascular.Generate(p)
	sdf, err := tree.SDF()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var blocks int
	for i := 0; i < b.N; i++ {
		_, blocks, err = setup.FindWeakScalingDx(sdf, [3]int{12, 12, 12}, 64, 14)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(blocks), "blocks")
}

// BenchmarkFig3Kernels measures the six kernels of Figure 3 on a dense
// block, reporting MLUPS — the node-level kernel comparison.
func BenchmarkFig3Kernels(b *testing.B) {
	const edge = 32
	for _, choice := range []sim.KernelChoice{
		sim.KernelGenericSRT, sim.KernelGenericTRT,
		sim.KernelD3Q19SRT, sim.KernelD3Q19TRT,
		sim.KernelSplitSRT, sim.KernelSplitTRT,
	} {
		b.Run(string(choice), func(b *testing.B) {
			k, err := kernels.New(kernels.Spec{Choice: choice, Tau: 0.9})
			if err != nil {
				b.Fatal(err)
			}
			src := field.NewPDFField(lattice.D3Q19(), edge, edge, edge, 1, k.Layout())
			src.FillEquilibrium(1, 0.02, 0, 0)
			dst := src.CopyShape()
			cells := float64(edge * edge * edge)
			b.SetBytes(int64(cells * perfmodel.BytesPerLUP))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Sweep(src, dst, nil)
				field.Swap(src, dst)
			}
			b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds()/1e6, "MLUPS")
		})
	}
}

// BenchmarkFig4ECM regenerates the ECM model predictions of Figure 4 and
// reports the full-socket value at both studied frequencies.
func BenchmarkFig4ECM(b *testing.B) {
	m := perfmodel.SuperMUCSocket()
	e := perfmodel.NewECM(m)
	var v27, v16 float64
	for i := 0; i < b.N; i++ {
		v27 = e.MLUPS(m.Cores)
		v16 = e.AtFrequency(1.6).MLUPS(m.Cores)
	}
	b.ReportMetric(v27, "MLUPS@2.7GHz")
	b.ReportMetric(v16, "MLUPS@1.6GHz")
	b.ReportMetric(m.Roofline(), "roofline")
}

// BenchmarkFig5SMT regenerates the SMT study of Figure 5 on the JUQUEEN
// node model.
func BenchmarkFig5SMT(b *testing.B) {
	m := perfmodel.JUQUEENNode()
	var v1, v2, v4 float64
	for i := 0; i < b.N; i++ {
		v1 = perfmodel.KernelMLUPS(m, perfmodel.KernelSIMD, perfmodel.CollisionTRT, m.Cores, 1)
		v2 = perfmodel.KernelMLUPS(m, perfmodel.KernelSIMD, perfmodel.CollisionTRT, m.Cores, 2)
		v4 = perfmodel.KernelMLUPS(m, perfmodel.KernelSIMD, perfmodel.CollisionTRT, m.Cores, 4)
	}
	b.ReportMetric(v1, "MLUPS@1way")
	b.ReportMetric(v2, "MLUPS@2way")
	b.ReportMetric(v4, "MLUPS@4way")
}

// BenchmarkFig6WeakScaling runs a real distributed lid-driven cavity
// through the in-process communicator (the host-scale counterpart of the
// dense weak scaling) and also regenerates the full-machine projections.
func BenchmarkFig6WeakScaling(b *testing.B) {
	b.Run("host-2ranks", func(b *testing.B) {
		const edge = 20
		p := core.LidDrivenCavity([3]int{2, 1, 1}, [3]int{edge, edge, edge}, 0.05, 2)
		var mlups float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := p.Run(10)
			if err != nil {
				b.Fatal(err)
			}
			mlups = m.MLUPS
		}
		b.ReportMetric(mlups, "MLUPS")
	})
	b.Run("model-full-machines", func(b *testing.B) {
		var smuc, jq float64
		for i := 0; i < b.N; i++ {
			smuc = scaling.DenseWeakScaling(scaling.SuperMUC(),
				scaling.NodeConfig{Processes: 16, Threads: 1}, 3.43e6, []int{1 << 17})[0].TotalMLUPS
			jq = scaling.DenseWeakScaling(scaling.JUQUEEN(),
				scaling.NodeConfig{Processes: 64, Threads: 1}, 1.728e6, []int{458752})[0].TotalMLUPS
		}
		b.ReportMetric(smuc/1e3, "GLUPS-SuperMUC-2^17cores")
		b.ReportMetric(jq/1e3, "GLUPS-JUQUEEN-full")
	})
}

// BenchmarkFig7Vascular runs the sparse-geometry simulation end-to-end on
// the synthetic coronary tree, reporting MFLUPS and the fluid fraction.
func BenchmarkFig7Vascular(b *testing.B) {
	p := vascular.DefaultParams()
	p.Depth = 2
	tree := vascular.Generate(p)
	sdf, err := tree.SDF()
	if err != nil {
		b.Fatal(err)
	}
	problem := &core.Problem{
		Geometry:            sdf,
		Dx:                  p.RootRadius / 3,
		CellsPerBlock:       [3]int{12, 12, 12},
		Kernel:              sim.KernelSparse,
		Tau:                 0.6,
		Boundary:            boundary.Config{WallVelocity: [3]float64{0, 0, 0.02}, Density: 1},
		Ranks:               2,
		UseGraphPartitioner: true,
	}
	b.ResetTimer()
	var mflups, ff float64
	for i := 0; i < b.N; i++ {
		m, err := problem.Run(10)
		if err != nil {
			b.Fatal(err)
		}
		mflups, ff = m.MFLUPS, m.FluidFraction()
	}
	b.ReportMetric(mflups, "MFLUPS")
	b.ReportMetric(100*ff, "fluid%")
}

// BenchmarkFig8StrongScaling runs a real strong scaling (fixed cavity
// split over more ranks) and regenerates the modeled peak time stepping
// rates.
func BenchmarkFig8StrongScaling(b *testing.B) {
	b.Run("host-fixed-domain", func(b *testing.B) {
		const edge = 24
		p := core.LidDrivenCavity([3]int{2, 1, 1}, [3]int{edge / 2, edge, edge}, 0.05, 2)
		var stepsPerS float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := p.Run(20)
			if err != nil {
				b.Fatal(err)
			}
			stepsPerS = m.TimeStepsPerSecond()
		}
		b.ReportMetric(stepsPerS, "steps/s")
	})
	b.Run("model-peak-rates", func(b *testing.B) {
		sc := scaling.StrongScalingConfig{
			FluidCells: 2.1e6, BaseBlocksPerCore: 32, BaseCores: 16, BaseEdge: 34, MinEdge: 9,
		}
		var peak float64
		for i := 0; i < b.N; i++ {
			pts := scaling.StrongScaling(scaling.SuperMUC(),
				scaling.NodeConfig{Processes: 4, Threads: 4}, sc, []int{32768})
			peak = pts[0].TimeStepsPerS
		}
		b.ReportMetric(peak, "steps/s-model-32768cores")
	})
}

// BenchmarkSparseKernels is the section 4.3 ablation: the three
// sparse-block strategies on a tubular fill pattern.
func BenchmarkSparseKernels(b *testing.B) {
	const edge = 32
	trt := collide.NewTRT(0.9, collide.MagicParameter)
	flags := field.NewFlagField(edge, edge, edge, 1)
	flags.Fill(field.NoSlip)
	// A few fluid tubes along x (deterministic pattern, ~15 % fill).
	for _, c := range [][2]int{{8, 8}, {16, 20}, {24, 12}} {
		for x := 0; x < edge; x++ {
			for dy := -2; dy <= 2; dy++ {
				for dz := -2; dz <= 2; dz++ {
					if dy*dy+dz*dz <= 4 {
						flags.Set(x, c[0]+dy, c[1]+dz, field.Fluid)
					}
				}
			}
		}
	}
	fluid := float64(flags.Count(field.Fluid))
	for _, s := range []struct {
		name string
		k    kernels.Kernel
	}{
		{"conditional", kernels.NewSparseConditional(trt)},
		{"celllist", kernels.NewSparseCellList(trt, flags)},
		{"interval", kernels.NewSparseInterval(trt, flags)},
	} {
		b.Run(s.name, func(b *testing.B) {
			src := field.NewPDFField(lattice.D3Q19(), edge, edge, edge, 1, s.k.Layout())
			src.FillEquilibrium(1, 0.01, 0, 0)
			dst := src.CopyShape()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.k.Sweep(src, dst, flags)
				field.Swap(src, dst)
			}
			b.ReportMetric(fluid*float64(b.N)/b.Elapsed().Seconds()/1e6, "MFLUPS")
		})
	}
}

// BenchmarkTableFileSize measures the compact block-structure file
// serialization of section 2.2 and reports the bytes-per-block cost.
func BenchmarkTableFileSize(b *testing.B) {
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{32, 32, 32}, [3]int{8, 8, 8}, [3]bool{})
	f.BalanceMorton(32768)
	b.ResetTimer()
	var size int64
	for i := 0; i < b.N; i++ {
		size = f.FileSize()
	}
	b.ReportMetric(float64(size)/float64(f.NumBlocks()), "bytes/block")
}

// BenchmarkGhostExchange isolates the per-step ghost layer communication
// between two ranks.
func BenchmarkGhostExchange(b *testing.B) {
	const edge = 24
	p := core.LidDrivenCavity([3]int{2, 1, 1}, [3]int{edge, edge, edge}, 0.05, 2)
	var commFraction float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := p.Run(20)
		if err != nil {
			b.Fatal(err)
		}
		commFraction = m.CommFraction
	}
	b.ReportMetric(100*commFraction, "comm%")
}

// BenchmarkBoundarySweep measures the link-wise boundary handling on a
// closed box.
func BenchmarkBoundarySweep(b *testing.B) {
	const edge = 32
	s := lattice.D3Q19()
	flags := field.NewFlagField(edge, edge, edge, 1)
	boundary.MarkBox(flags, [6]field.CellType{
		field.NoSlip, field.NoSlip, field.NoSlip, field.NoSlip, field.NoSlip, field.VelocityBounce,
	})
	bs := boundary.NewSweep(s, flags, boundary.Config{WallVelocity: [3]float64{0.05, 0, 0}})
	src := field.NewPDFField(s, edge, edge, edge, 1, field.AoS)
	src.FillEquilibrium(1, 0, 0, 0)
	noSlip, vel, _ := bs.Links()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.Apply(src)
	}
	b.ReportMetric(float64(noSlip+vel)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mlinks/s")
}

// BenchmarkCommCollectives measures the tree-based collectives of the
// message-passing runtime across 8 ranks.
func BenchmarkCommCollectives(b *testing.B) {
	b.Run("Allreduce", func(b *testing.B) {
		comm.Run(8, func(c *comm.Comm) {
			for i := 0; i < b.N; i++ {
				c.AllreduceFloat64(float64(c.Rank()), comm.Sum[float64])
			}
		})
	})
	b.Run("Bcast1MB", func(b *testing.B) {
		payload := make([]float64, 128*1024)
		comm.Run(8, func(c *comm.Comm) {
			for i := 0; i < b.N; i++ {
				var in any
				if c.Rank() == 0 {
					in = payload
				}
				c.Bcast(0, in)
			}
		})
	})
}

// BenchmarkGraphPartitioner measures the METIS-substitute on a 3-D grid
// graph of vascular-study size.
func BenchmarkGraphPartitioner(b *testing.B) {
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{12, 12, 12}, [3]int{8, 8, 8}, [3]bool{})
	g, _ := partition.BuildBlockGraph(f)
	b.ResetTimer()
	var cut float64
	for i := 0; i < b.N; i++ {
		parts, err := partition.Partition(g, partition.Options{Parts: 32, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		cut = partition.EdgeCut(g, parts)
	}
	b.ReportMetric(cut, "edge-cut")
}

// BenchmarkSignedDistance measures point queries against the synthetic
// coronary tree SDF (the inner loop of the setup phase).
func BenchmarkSignedDistance(b *testing.B) {
	p := vascular.DefaultParams()
	p.Depth = 4
	tree := vascular.Generate(p)
	sdf, err := tree.SDF()
	if err != nil {
		b.Fatal(err)
	}
	bounds := sdf.Bounds()
	size := bounds.Size()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := float64(i%1024) / 1024
		pnt := [3]float64{
			bounds.Min[0] + t*size[0],
			bounds.Min[1] + (1-t)*size[1],
			bounds.Min[2] + t*size[2],
		}
		sdf.Signed(pnt)
	}
}

// BenchmarkVoxelization measures the recursive block voxelization against
// the synthetic tree SDF.
func BenchmarkVoxelization(b *testing.B) {
	p := vascular.DefaultParams()
	p.Depth = 3
	tree := vascular.Generate(p)
	sdf, err := tree.SDF()
	if err != nil {
		b.Fatal(err)
	}
	bounds := sdf.Bounds()
	const n = 48
	flags := field.NewFlagField(n, n, n, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geometry.Voxelize(sdf, bounds, flags)
	}
	b.ReportMetric(float64(n*n*n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
}
