package output

import (
	"bytes"
	"errors"
	"testing"

	"walberla/internal/field"
	"walberla/internal/lattice"
)

// Fuzz harness for the external-data readers: whatever bytes arrive —
// truncated, bit-flipped, adversarial — the readers must either decode or
// return an error, never panic and never allocate proportionally to an
// unvalidated header. Run the full fuzzer with e.g.
//
//	go test -fuzz FuzzReadRankFile -fuzztime 30s ./internal/output/
//
// The seed corpus below (valid encodings plus systematic corruptions) also
// runs as ordinary tests, which is the smoke mode `make verify` uses.

// validManifestBytes encodes a representative manifest.
func validManifestBytes(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	m := &SetManifest{Step: 40, Ranks: 2, Entries: []ManifestEntry{
		{Name: RankFileName(0), Size: 128, CRC: 0xdeadbeef},
		{Name: RankFileName(1), Size: 256, CRC: 0x01020304},
	}}
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	return buf.Bytes()
}

// validRankFileBytes encodes a one-block rank file with both PDF fields.
func validRankFileBytes(t testing.TB) []byte {
	t.Helper()
	src := field.NewPDFField(lattice.D3Q19(), 2, 2, 2, 1, field.SoA)
	src.FillEquilibrium(1.0, 0.01, 0, 0)
	dst := src.CopyShape()
	dst.FillEquilibrium(1.0, 0, 0.01, 0)
	var buf bytes.Buffer
	if _, _, err := WriteRankFile(&buf, []BlockSnapshot{{Coord: [3]int{1, 2, 3}, Src: src, Dst: dst}}); err != nil {
		t.Fatalf("WriteRankFile: %v", err)
	}
	return buf.Bytes()
}

// corruptions derives a systematic corruption set from a valid encoding:
// truncations, bit flips across the stream, and an implausible count in
// the header region.
func corruptions(valid []byte) [][]byte {
	var out [][]byte
	for _, n := range []int{0, 1, 4, len(valid) / 2, len(valid) - 1} {
		if n <= len(valid) {
			out = append(out, valid[:n])
		}
	}
	for _, pos := range []int{0, 4, 5, len(valid) / 3, len(valid) / 2, len(valid) - 2} {
		if pos < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[pos] ^= 0x40
			out = append(out, mut)
		}
	}
	if len(valid) > 8 {
		mut := append([]byte(nil), valid...)
		mut[4], mut[5], mut[6], mut[7] = 0xff, 0xff, 0xff, 0xff // saturate the count field
		out = append(out, mut)
	}
	out = append(out, append(valid[:len(valid):len(valid)], 0xAA)) // trailing garbage
	return out
}

func FuzzReadManifest(f *testing.F) {
	valid := validManifestBytes(f)
	f.Add(valid)
	for _, c := range corruptions(valid) {
		f.Add(c)
	}
	f.Add([]byte(manifestMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadManifest(bytes.NewReader(data))
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("non-typed manifest error: %v", err)
			}
			return
		}
		// A successful decode must round-trip bit-identically up to the
		// decoded prefix — re-encoding recomputes the same CRC-closed form.
		var buf bytes.Buffer
		if werr := WriteManifest(&buf, m); werr != nil {
			t.Fatalf("re-encoding decoded manifest: %v", werr)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("manifest round-trip mismatch")
		}
	})
}

func FuzzReadRankFile(f *testing.F) {
	valid := validRankFileBytes(f)
	f.Add(valid)
	for _, c := range corruptions(valid) {
		f.Add(c)
	}
	f.Add([]byte(rankFileMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		blocks, _, err := ReadRankFile(bytes.NewReader(data), lattice.D3Q19(), field.SoA)
		if err != nil {
			return // any error is acceptable; panics are not
		}
		for _, b := range blocks {
			if b.Src == nil || b.Dst == nil {
				t.Fatal("decoded block with nil field")
			}
		}
	})
}

func FuzzLoadCheckpoint(f *testing.F) {
	src := field.NewPDFField(lattice.D3Q19(), 2, 2, 2, 1, field.SoA)
	src.FillEquilibrium(1.0, 0, 0, 0.01)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src); err != nil {
		f.Fatalf("SaveCheckpoint: %v", err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for _, c := range corruptions(valid) {
		f.Add(c)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pf, err := LoadCheckpoint(bytes.NewReader(data), lattice.D3Q19(), field.SoA)
		if err == nil && pf == nil {
			t.Fatal("nil field without error")
		}
	})
}

// TestReadersRejectSeedCorpusCorruptions pins the stronger property the
// fuzz invariant alone cannot assert: every systematic corruption of a
// valid encoding is rejected with an error (the CRC discipline leaves no
// silently-accepted mutations).
func TestReadersRejectSeedCorpusCorruptions(t *testing.T) {
	for i, c := range corruptions(validManifestBytes(t)) {
		if _, err := ReadManifest(bytes.NewReader(c)); err == nil {
			t.Errorf("manifest corruption %d accepted", i)
		}
	}
	valid := validRankFileBytes(t)
	_, validCRC, err := ReadRankFile(bytes.NewReader(valid), lattice.D3Q19(), field.SoA)
	if err != nil {
		t.Fatalf("valid rank file rejected: %v", err)
	}
	for i, c := range corruptions(valid) {
		// Trailing garbage is legitimately tolerated by the record-level
		// checks; it must then surface in the whole-stream CRC, which the
		// manifest cross-check rejects.
		if _, crc, err := ReadRankFile(bytes.NewReader(c), lattice.D3Q19(), field.SoA); err == nil && crc == validCRC {
			t.Errorf("rank file corruption %d accepted with unchanged CRC", i)
		}
	}
}
