package output

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"walberla/internal/field"
	"walberla/internal/lattice"
)

func randomPDF(t *testing.T, layout field.Layout) *field.PDFField {
	t.Helper()
	s := lattice.D3Q19()
	f := field.NewPDFField(s, 4, 3, 5, 1, layout)
	r := rand.New(rand.NewSource(1))
	for z := -1; z < f.Nz+1; z++ {
		for y := -1; y < f.Ny+1; y++ {
			for x := -1; x < f.Nx+1; x++ {
				for a := 0; a < s.Q; a++ {
					f.Set(x, y, z, lattice.Direction(a), r.Float64())
				}
			}
		}
	}
	return f
}

func TestCheckpointRoundTripExact(t *testing.T) {
	f := randomPDF(t, field.SoA)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := LoadCheckpoint(&buf, lattice.D3Q19(), field.SoA)
	if err != nil {
		t.Fatal(err)
	}
	for z := -1; z < f.Nz+1; z++ {
		for y := -1; y < f.Ny+1; y++ {
			for x := -1; x < f.Nx+1; x++ {
				for a := 0; a < 19; a++ {
					d := lattice.Direction(a)
					if f.Get(x, y, z, d) != g.Get(x, y, z, d) {
						t.Fatalf("value differs at (%d,%d,%d,%d)", x, y, z, a)
					}
				}
			}
		}
	}
}

// A checkpoint saved in one layout restores exactly into the other — the
// format is canonical.
func TestCheckpointCrossLayout(t *testing.T) {
	f := randomPDF(t, field.AoS)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := LoadCheckpoint(&buf, lattice.D3Q19(), field.SoA)
	if err != nil {
		t.Fatal(err)
	}
	if g.Layout != field.SoA {
		t.Fatal("layout not applied")
	}
	if f.Get(2, 1, 3, lattice.NE) != g.Get(2, 1, 3, lattice.NE) {
		t.Error("cross-layout restore lost values")
	}
}

func TestCheckpointRejectsWrongStencil(t *testing.T) {
	f := randomPDF(t, field.AoS)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, f); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(&buf, lattice.D2Q9(), field.AoS); err == nil {
		t.Error("Q mismatch accepted")
	}
	if _, err := LoadCheckpoint(bytes.NewReader([]byte("XXXX")), lattice.D3Q19(), field.AoS); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestCheckpointTruncation(t *testing.T) {
	f := randomPDF(t, field.AoS)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, f); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadCheckpoint(bytes.NewReader(short), lattice.D3Q19(), field.AoS); err == nil {
		t.Error("truncated checkpoint accepted")
	}
}

func TestRestorePDFInPlace(t *testing.T) {
	f := randomPDF(t, field.SoA)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, f); err != nil {
		t.Fatal(err)
	}
	g := f.CopyShape()
	if err := RestorePDF(&buf, g); err != nil {
		t.Fatal(err)
	}
	if f.Get(1, 2, 3, lattice.TN) != g.Get(1, 2, 3, lattice.TN) {
		t.Error("in-place restore lost values")
	}
	// Shape mismatch rejected.
	buf.Reset()
	if err := SaveCheckpoint(&buf, f); err != nil {
		t.Fatal(err)
	}
	wrong := field.NewPDFField(lattice.D3Q19(), 2, 2, 2, 1, field.SoA)
	if err := RestorePDF(&buf, wrong); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestFlagsRoundTrip(t *testing.T) {
	f := field.NewFlagField(5, 4, 3, 1)
	f.FillInterior(field.Fluid)
	f.Set(1, 1, 1, field.NoSlip)
	f.Set(-1, 0, 0, field.VelocityBounce)
	var buf bytes.Buffer
	if err := SaveFlags(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := LoadFlags(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for z := -1; z < 4; z++ {
		for y := -1; y < 5; y++ {
			for x := -1; x < 6; x++ {
				if f.Get(x, y, z) != g.Get(x, y, z) {
					t.Fatalf("flag differs at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

func TestWriteVTKStructure(t *testing.T) {
	s := lattice.D3Q19()
	f := field.NewPDFField(s, 3, 2, 2, 1, field.AoS)
	f.FillEquilibrium(1.25, 0.1, 0, 0)
	flags := field.NewFlagField(3, 2, 2, 1)
	flags.FillInterior(field.Fluid)
	flags.Set(0, 0, 0, field.NoSlip)
	var buf bytes.Buffer
	if err := WriteVTK(&buf, "test block", f, flags, [3]float64{0.5, 0.5, 0.5}, 0.1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"DIMENSIONS 3 2 2",
		"ORIGIN 0.5 0.5 0.5",
		"SPACING 0.1 0.1 0.1",
		"POINT_DATA 12",
		"SCALARS density double 1",
		"VECTORS velocity double",
		"SCALARS celltype int 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VTK output missing %q", want)
		}
	}
	// The wall cell writes zeros; fluid cells write rho ~= 1.25 (floating
	// point summation may round the last digits).
	if !strings.Contains(out, "1.2") {
		t.Error("density value missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 8 header lines, then SCALARS + LOOKUP_TABLE, then the first cell —
	// the wall at (0,0,0), written as zero.
	if lines[10] != "0" {
		t.Errorf("wall cell density line = %q, want 0", lines[10])
	}
}

func TestWriteVTKShapeMismatch(t *testing.T) {
	s := lattice.D3Q19()
	f := field.NewPDFField(s, 3, 3, 3, 1, field.AoS)
	flags := field.NewFlagField(4, 3, 3, 1)
	if err := WriteVTK(&bytes.Buffer{}, "x", f, flags, [3]float64{}, 1); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestWriteVTKMesh(t *testing.T) {
	verts := [][3]float64{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}}
	tris := [][3]int32{{0, 1, 2}}
	var buf bytes.Buffer
	err := WriteVTKMesh(&buf, "tri", verts, tris, func(t int) int { return 7 })
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"POINTS 3 double", "POLYGONS 1 4", "3 0 1 2", "CELL_DATA 1", "7"} {
		if !strings.Contains(out, want) {
			t.Errorf("mesh VTK missing %q", want)
		}
	}
}
