package output

import (
	"bytes"
	"errors"
	"testing"

	"walberla/internal/field"
	"walberla/internal/lattice"
)

func testLeafSnapshot(t *testing.T, s *lattice.Stencil, tree uint32, path uint64, level uint8, coord [3]int, seed float64) LeafSnapshot {
	t.Helper()
	mk := func(off float64) *field.PDFField {
		f := field.NewPDFField(s, 4, 2, 2, 1, field.SoA)
		d := f.Data()
		for i := range d {
			d[i] = seed + off + float64(i)*0.125
		}
		return f
	}
	return LeafSnapshot{Tree: tree, Path: path, Level: level, Coord: coord, Src: mk(0), Dst: mk(1000)}
}

func TestLeafFileRoundTrip(t *testing.T) {
	s := lattice.D3Q19()
	leaves := []LeafSnapshot{
		testLeafSnapshot(t, s, 0, 0, 0, [3]int{0, 0, 0}, 1),
		testLeafSnapshot(t, s, 3, 0b1_011, 1, [3]int{1, 0, 2}, 2),
		testLeafSnapshot(t, s, 7, 0b1_101_110, 2, [3]int{3, 1, 1}, 3),
	}
	var buf bytes.Buffer
	size, crc, err := WriteLeafFile(&buf, leaves)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(buf.Len()) {
		t.Fatalf("reported size %d, wrote %d bytes", size, buf.Len())
	}
	got, gotCRC, err := ReadLeafFileStored(bytes.NewReader(buf.Bytes()), s)
	if err != nil {
		t.Fatal(err)
	}
	if gotCRC != crc {
		t.Fatalf("read CRC %08x, write CRC %08x", gotCRC, crc)
	}
	if len(got) != len(leaves) {
		t.Fatalf("got %d leaves, want %d", len(got), len(leaves))
	}
	for i, l := range got {
		w := leaves[i]
		if l.Tree != w.Tree || l.Path != w.Path || l.Level != w.Level || l.Coord != w.Coord {
			t.Fatalf("leaf %d identity (%d,%#o,%d,%v), want (%d,%#o,%d,%v)",
				i, l.Tree, l.Path, l.Level, l.Coord, w.Tree, w.Path, w.Level, w.Coord)
		}
		for fi, pair := range [][2]*field.PDFField{{l.Src, w.Src}, {l.Dst, w.Dst}} {
			g, want := pair[0], pair[1]
			if g.Layout != want.Layout {
				t.Fatalf("leaf %d field %d: stored layout not preserved", i, fi)
			}
			gd, wd := g.Data(), want.Data()
			if len(gd) != len(wd) {
				t.Fatalf("leaf %d field %d: %d values, want %d", i, fi, len(gd), len(wd))
			}
			for j := range wd {
				if gd[j] != wd[j] {
					t.Fatalf("leaf %d field %d value %d: got %v want %v", i, fi, j, gd[j], wd[j])
				}
			}
		}
	}
}

// TestLeafFileCrossLayout: restoring into the opposite layout permutes
// storage but preserves every cell value.
func TestLeafFileCrossLayout(t *testing.T) {
	s := lattice.D3Q19()
	orig := testLeafSnapshot(t, s, 1, 0b1_010, 1, [3]int{1, 1, 0}, 5)
	var buf bytes.Buffer
	if _, _, err := WriteLeafFile(&buf, []LeafSnapshot{orig}); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadLeafFile(bytes.NewReader(buf.Bytes()), s, field.AoS)
	if err != nil {
		t.Fatal(err)
	}
	g := got[0].Src
	if g.Layout != field.AoS {
		t.Fatalf("requested AoS, got layout %v", g.Layout)
	}
	gl := g.Ghost
	for z := -gl; z < g.Nz+gl; z++ {
		for y := -gl; y < g.Ny+gl; y++ {
			for x := -gl; x < g.Nx+gl; x++ {
				for a := 0; a < s.Q; a++ {
					if gv, wv := g.Get(x, y, z, lattice.Direction(a)), orig.Src.Get(x, y, z, lattice.Direction(a)); gv != wv {
						t.Fatalf("cell (%d,%d,%d,%d): got %v want %v", x, y, z, a, gv, wv)
					}
				}
			}
		}
	}
}

func TestLeafFileDetectsBitFlips(t *testing.T) {
	s := lattice.D3Q19()
	var buf bytes.Buffer
	if _, _, err := WriteLeafFile(&buf, []LeafSnapshot{testLeafSnapshot(t, s, 2, 0b1_100, 1, [3]int{0, 1, 0}, 1)}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// One flipped bit anywhere — identity header, field payload, record
	// CRC — must surface as a typed corruption error.
	for _, off := range []int{9, 20, 60, 300, len(raw) / 2, len(raw) - 2} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x08
		_, _, err := ReadLeafFileStored(bytes.NewReader(mut), s)
		if err == nil {
			t.Fatalf("bit flip at offset %d went undetected", off)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("bit flip at offset %d: error %v is not a *CorruptError", off, err)
		}
	}
}

func TestLeafFileRejectsGarbageWithoutAllocating(t *testing.T) {
	s := lattice.D3Q19()
	// Claims 2^31 leaves in an 8-byte file: rejected by the plausibility
	// bound, not attempted.
	garbage := append([]byte(leafFileMagic), 0, 0, 0, 0x80)
	if _, _, err := ReadLeafFileStored(bytes.NewReader(garbage), s); err == nil {
		t.Fatal("implausible leaf count accepted")
	}
	// Truncated mid-record.
	var buf bytes.Buffer
	if _, _, err := WriteLeafFile(&buf, []LeafSnapshot{testLeafSnapshot(t, s, 0, 0, 0, [3]int{0, 0, 0}, 1)}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, _, err := ReadLeafFileStored(bytes.NewReader(trunc), s); err == nil {
		t.Fatal("truncated leaf file accepted")
	}
}
