package output

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"

	"walberla/internal/field"
	"walberla/internal/lattice"
)

// Leaf rank files ("WBK2") are the level-aware sibling of the WBK1
// block rank file: one file holds the checkpointed Src/Dst fields of
// every octree leaf a rank owns, each record keyed by the full leaf
// identity (root tree, octree path, level, root grid coordinate) instead
// of a flat block coordinate. The same format is the unit of block
// migration during AMR re-grading — one aggregated WBK2 blob per
// destination rank — and of the AMR buddy replica, so checkpointing,
// migration and in-memory recovery all share one codec. Record framing,
// per-record CRC32C protection and the whole-file CRC mirror WBK1, and
// leaf files plug into the same WBS1 set manifest machinery.

const leafFileMagic = "WBK2"

// LeafSnapshot is one octree leaf's contribution to a WBK2 file.
type LeafSnapshot struct {
	Tree  uint32
	Path  uint64
	Level uint8
	Coord [3]int
	Src   *field.PDFField
	Dst   *field.PDFField
}

// WriteLeafFile writes the leaves of one rank, returning the byte size
// and the CRC32C of everything written.
func WriteLeafFile(w io.Writer, leaves []LeafSnapshot) (int64, uint32, error) {
	crc := crc32.New(castagnoli)
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: io.MultiWriter(bw, crc)}
	io.WriteString(cw, leafFileMagic)
	binary.Write(cw, binary.LittleEndian, uint32(len(leaves)))
	for _, l := range leaves {
		var rec bytes.Buffer
		binary.Write(&rec, binary.LittleEndian, l.Tree)
		binary.Write(&rec, binary.LittleEndian, l.Path)
		rec.WriteByte(l.Level)
		for _, c := range l.Coord {
			binary.Write(&rec, binary.LittleEndian, int64(c))
		}
		var src, dst bytes.Buffer
		if err := SaveCheckpoint(&src, l.Src); err != nil {
			return 0, 0, err
		}
		if err := SaveCheckpoint(&dst, l.Dst); err != nil {
			return 0, 0, err
		}
		binary.Write(&rec, binary.LittleEndian, uint64(src.Len()))
		rec.Write(src.Bytes())
		binary.Write(&rec, binary.LittleEndian, uint64(dst.Len()))
		rec.Write(dst.Bytes())
		recCRC := crc32.Checksum(rec.Bytes(), castagnoli)
		if _, err := cw.Write(rec.Bytes()); err != nil {
			return 0, 0, err
		}
		if err := binary.Write(cw, binary.LittleEndian, recCRC); err != nil {
			return 0, 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, 0, err
	}
	return cw.n, crc.Sum32(), nil
}

// ReadLeafFile reads a WBK2 leaf file, restoring every field in the
// given layout, and returns the leaves plus the whole-stream CRC32C.
func ReadLeafFile(r io.Reader, s *lattice.Stencil, layout field.Layout) ([]LeafSnapshot, uint32, error) {
	return readLeafFile(r, s, layout, false)
}

// ReadLeafFileStored is ReadLeafFile with every field restored in the
// layout recorded in its own checkpoint header.
func ReadLeafFileStored(r io.Reader, s *lattice.Stencil) ([]LeafSnapshot, uint32, error) {
	return readLeafFile(r, s, field.AoS, true)
}

func readLeafFile(r io.Reader, s *lattice.Stencil, layout field.Layout, useStored bool) ([]LeafSnapshot, uint32, error) {
	cr := newCRCReader(bufio.NewReader(r))
	magic := make([]byte, 4)
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, 0, corruptf(leafFileMagic, "reading magic: %v", err)
	}
	if string(magic) != leafFileMagic {
		return nil, 0, corruptf(leafFileMagic, "bad magic %q", magic)
	}
	var count uint32
	if err := binary.Read(cr, binary.LittleEndian, &count); err != nil {
		return nil, 0, corruptf(leafFileMagic, "truncated leaf count: %v", err)
	}
	if count > maxRankFileBlocks {
		return nil, 0, corruptf(leafFileMagic, "implausible leaf count %d", count)
	}
	initialCap := count
	if initialCap > 1024 {
		initialCap = 1024
	}
	leaves := make([]LeafSnapshot, 0, initialCap)
	for i := uint32(0); i < count; i++ {
		recCRC := crc32.New(castagnoli)
		rr := io.TeeReader(cr, recCRC)
		var l LeafSnapshot
		if err := binary.Read(rr, binary.LittleEndian, &l.Tree); err != nil {
			return nil, 0, corruptf(leafFileMagic, "leaf %d: truncated tree: %v", i, err)
		}
		if err := binary.Read(rr, binary.LittleEndian, &l.Path); err != nil {
			return nil, 0, corruptf(leafFileMagic, "leaf %d: truncated path: %v", i, err)
		}
		var level [1]byte
		if _, err := io.ReadFull(rr, level[:]); err != nil {
			return nil, 0, corruptf(leafFileMagic, "leaf %d: truncated level: %v", i, err)
		}
		l.Level = level[0]
		if l.Level > 20 {
			return nil, 0, corruptf(leafFileMagic, "leaf %d: implausible level %d", i, l.Level)
		}
		for d := 0; d < 3; d++ {
			var c int64
			if err := binary.Read(rr, binary.LittleEndian, &c); err != nil {
				return nil, 0, corruptf(leafFileMagic, "leaf %d: truncated coordinates: %v", i, err)
			}
			l.Coord[d] = int(c)
		}
		for fi, dst := range []**field.PDFField{&l.Src, &l.Dst} {
			var n uint64
			if err := binary.Read(rr, binary.LittleEndian, &n); err != nil {
				return nil, 0, corruptf(leafFileMagic, "leaf %d: truncated field length: %v", i, err)
			}
			if n == 0 || n > 1<<40 {
				return nil, 0, corruptf(leafFileMagic, "leaf %d: implausible field length %d", i, n)
			}
			f, err := loadCheckpoint(io.LimitReader(rr, int64(n)), s, layout, useStored)
			if err != nil {
				// Any undecodable embedded field makes the record unusable —
				// classify it as corruption so callers can vote the whole
				// file down uniformly.
				return nil, 0, corruptf(leafFileMagic, "leaf %d field %d: %v", i, fi, err)
			}
			*dst = f
		}
		var stored uint32
		want := recCRC.Sum32()
		if err := binary.Read(cr, binary.LittleEndian, &stored); err != nil {
			return nil, 0, corruptf(leafFileMagic, "leaf %d: missing record CRC: %v", i, err)
		}
		if stored != want {
			return nil, 0, corruptf(leafFileMagic,
				"leaf %d: record CRC mismatch: stored %08x, computed %08x", i, stored, want)
		}
		leaves = append(leaves, l)
	}
	if _, err := io.Copy(io.Discard, cr); err != nil {
		return nil, 0, corruptf(leafFileMagic, "draining trailer: %v", err)
	}
	return leaves, cr.crc.Sum32(), nil
}
