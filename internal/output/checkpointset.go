package output

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"walberla/internal/field"
	"walberla/internal/lattice"
)

// Coordinated checkpoint sets. A "set" snapshots every block of every
// rank at one step barrier into a directory:
//
//	<dir>/set-0000000040/
//	    MANIFEST            step, rank count, per-file size + CRC32C,
//	                        self-checksummed (WBS1)
//	    rank_0000.ckpt      this rank's blocks (WBK1): per block a
//	    rank_0001.ckpt      coordinate-keyed record carrying the Src and
//	    ...                 Dst PDF checkpoints, CRC32C per record
//
// Sets are written into a hidden ".tmp-set-*" directory and renamed into
// place only after every rank file and the manifest are complete, so a
// crash mid-checkpoint never corrupts an existing set — the rename is the
// commit point. The coordination (step barrier, manifest gather, rename)
// lives in package sim; this file owns the on-disk formats.

const (
	manifestMagic = "WBS1"
	rankFileMagic = "WBK1"
	// ManifestName is the manifest file inside a set directory.
	ManifestName = "MANIFEST"
	setPrefix    = "set-"
	tmpSetPrefix = ".tmp-set-"
)

// SetDirName returns the directory name of the checkpoint set at a step.
func SetDirName(step int) string { return fmt.Sprintf("%s%010d", setPrefix, step) }

// TmpSetDirName returns the transient directory a set is assembled in
// before the atomic rename.
func TmpSetDirName(step int) string { return fmt.Sprintf("%s%010d", tmpSetPrefix, step) }

// RankFileName returns the per-rank data file name inside a set.
func RankFileName(rank int) string { return fmt.Sprintf("rank_%04d.ckpt", rank) }

// BlockSnapshot is the checkpointed state of one block: both PDF fields,
// so a restored simulation is bit-identical regardless of which cells the
// kernels and boundary sweeps of the following steps overwrite.
type BlockSnapshot struct {
	Coord [3]int
	Src   *field.PDFField
	Dst   *field.PDFField
}

// ManifestEntry describes one rank file of a set.
type ManifestEntry struct {
	Name string
	Size int64
	CRC  uint32 // CRC32C of the complete file
}

// SetManifest is the metadata record committed last when a set is
// written; a set without a CRC-valid manifest does not exist.
type SetManifest struct {
	Step    int64
	Ranks   int32
	Entries []ManifestEntry
}

// WriteRankFile writes the blocks of one rank, returning the byte size
// and CRC32C of the produced file for the manifest.
func WriteRankFile(w io.Writer, blocks []BlockSnapshot) (int64, uint32, error) {
	crc := crc32.New(castagnoli)
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: io.MultiWriter(bw, crc)}
	io.WriteString(cw, rankFileMagic)
	binary.Write(cw, binary.LittleEndian, uint32(len(blocks)))
	for _, b := range blocks {
		var rec bytes.Buffer
		for _, c := range b.Coord {
			binary.Write(&rec, binary.LittleEndian, int64(c))
		}
		var src, dst bytes.Buffer
		if err := SaveCheckpoint(&src, b.Src); err != nil {
			return 0, 0, err
		}
		if err := SaveCheckpoint(&dst, b.Dst); err != nil {
			return 0, 0, err
		}
		binary.Write(&rec, binary.LittleEndian, uint64(src.Len()))
		rec.Write(src.Bytes())
		binary.Write(&rec, binary.LittleEndian, uint64(dst.Len()))
		rec.Write(dst.Bytes())
		// CRC32C per block record, over coordinates, lengths and payloads.
		recCRC := crc32.Checksum(rec.Bytes(), castagnoli)
		if _, err := cw.Write(rec.Bytes()); err != nil {
			return 0, 0, err
		}
		if err := binary.Write(cw, binary.LittleEndian, recCRC); err != nil {
			return 0, 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, 0, err
	}
	return cw.n, crc.Sum32(), nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// maxRankFileBlocks bounds the block count a rank file header may claim
// before any allocation happens — far above any per-rank block count the
// framework produces.
const maxRankFileBlocks = 1 << 20

// ReadRankFile reads and CRC-validates the blocks of one rank file,
// returning the snapshots and the CRC32C of the whole byte stream (to be
// cross-checked against the manifest entry). Any integrity failure is a
// typed *CorruptError.
func ReadRankFile(r io.Reader, s *lattice.Stencil, layout field.Layout) ([]BlockSnapshot, uint32, error) {
	return readRankFile(r, s, layout, false)
}

// ReadRankFileStored is ReadRankFile with every block field restored in
// the layout recorded in its own checkpoint header, so rank files written
// by a mixed-layout world (per-block kernel selection) round-trip without
// the reader knowing the per-block layouts in advance.
func ReadRankFileStored(r io.Reader, s *lattice.Stencil) ([]BlockSnapshot, uint32, error) {
	return readRankFile(r, s, field.AoS, true)
}

func readRankFile(r io.Reader, s *lattice.Stencil, layout field.Layout, useStored bool) ([]BlockSnapshot, uint32, error) {
	cr := newCRCReader(bufio.NewReader(r))
	magic := make([]byte, 4)
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, 0, corruptf(rankFileMagic, "reading magic: %v", err)
	}
	if string(magic) != rankFileMagic {
		return nil, 0, corruptf(rankFileMagic, "bad magic %q", magic)
	}
	var count uint32
	if err := binary.Read(cr, binary.LittleEndian, &count); err != nil {
		return nil, 0, corruptf(rankFileMagic, "truncated block count: %v", err)
	}
	if count > maxRankFileBlocks {
		return nil, 0, corruptf(rankFileMagic, "implausible block count %d", count)
	}
	// Grow toward the claimed count instead of trusting it for the initial
	// allocation: the header is read before any payload is validated, so a
	// corrupt count must not drive a large up-front allocation.
	initialCap := count
	if initialCap > 1024 {
		initialCap = 1024
	}
	blocks := make([]BlockSnapshot, 0, initialCap)
	for i := uint32(0); i < count; i++ {
		recCRC := crc32.New(castagnoli)
		rr := io.TeeReader(cr, recCRC)
		var b BlockSnapshot
		for d := 0; d < 3; d++ {
			var c int64
			if err := binary.Read(rr, binary.LittleEndian, &c); err != nil {
				return nil, 0, corruptf(rankFileMagic, "block %d: truncated coordinates: %v", i, err)
			}
			b.Coord[d] = int(c)
		}
		for fi, dst := range []**field.PDFField{&b.Src, &b.Dst} {
			var n uint64
			if err := binary.Read(rr, binary.LittleEndian, &n); err != nil {
				return nil, 0, corruptf(rankFileMagic, "block %d: truncated field length: %v", i, err)
			}
			if n == 0 || n > 1<<40 {
				return nil, 0, corruptf(rankFileMagic, "block %d: implausible field length %d", i, n)
			}
			f, err := loadCheckpoint(io.LimitReader(rr, int64(n)), s, layout, useStored)
			if err != nil {
				return nil, 0, fmt.Errorf("block %d field %d: %w", i, fi, err)
			}
			*dst = f
		}
		var stored uint32
		want := recCRC.Sum32()
		if err := binary.Read(cr, binary.LittleEndian, &stored); err != nil {
			return nil, 0, corruptf(rankFileMagic, "block %d: missing record CRC: %v", i, err)
		}
		if stored != want {
			return nil, 0, corruptf(rankFileMagic,
				"block %d: record CRC mismatch: stored %08x, computed %08x", i, stored, want)
		}
		blocks = append(blocks, b)
	}
	// Trailing garbage would change the file CRC vs the manifest; drain
	// to compute the full-stream CRC.
	if _, err := io.Copy(io.Discard, cr); err != nil {
		return nil, 0, corruptf(rankFileMagic, "draining trailer: %v", err)
	}
	return blocks, cr.crc.Sum32(), nil
}

// WriteManifest writes the set manifest, self-protected by a trailing
// CRC32C.
func WriteManifest(w io.Writer, m *SetManifest) error {
	var buf bytes.Buffer
	buf.WriteString(manifestMagic)
	binary.Write(&buf, binary.LittleEndian, m.Step)
	binary.Write(&buf, binary.LittleEndian, m.Ranks)
	binary.Write(&buf, binary.LittleEndian, uint32(len(m.Entries)))
	for _, e := range m.Entries {
		if len(e.Name) > 1<<10 {
			return fmt.Errorf("output: manifest entry name %q too long", e.Name)
		}
		binary.Write(&buf, binary.LittleEndian, uint16(len(e.Name)))
		buf.WriteString(e.Name)
		binary.Write(&buf, binary.LittleEndian, e.Size)
		binary.Write(&buf, binary.LittleEndian, e.CRC)
	}
	binary.Write(&buf, binary.LittleEndian, crc32.Checksum(buf.Bytes(), castagnoli))
	_, err := w.Write(buf.Bytes())
	return err
}

// ReadManifest reads and validates a set manifest.
func ReadManifest(r io.Reader) (*SetManifest, error) {
	raw, err := io.ReadAll(io.LimitReader(r, 1<<24))
	if err != nil {
		return nil, corruptf(manifestMagic, "reading manifest: %v", err)
	}
	if len(raw) < 4+8+4+4+4 {
		return nil, corruptf(manifestMagic, "manifest too short (%d bytes)", len(raw))
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.Checksum(body, castagnoli); got != want {
		return nil, corruptf(manifestMagic, "manifest CRC mismatch: stored %08x, computed %08x", got, want)
	}
	br := bytes.NewReader(body)
	magic := make([]byte, 4)
	io.ReadFull(br, magic)
	if string(magic) != manifestMagic {
		return nil, corruptf(manifestMagic, "bad magic %q", magic)
	}
	m := &SetManifest{}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &m.Step); err != nil {
		return nil, corruptf(manifestMagic, "truncated step: %v", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &m.Ranks); err != nil {
		return nil, corruptf(manifestMagic, "truncated rank count: %v", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, corruptf(manifestMagic, "truncated entry count: %v", err)
	}
	if m.Step < 0 || m.Ranks <= 0 || count > 1<<16 {
		return nil, corruptf(manifestMagic, "implausible manifest header step=%d ranks=%d entries=%d",
			m.Step, m.Ranks, count)
	}
	for i := uint32(0); i < count; i++ {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, corruptf(manifestMagic, "entry %d: truncated name length: %v", i, err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, corruptf(manifestMagic, "entry %d: truncated name: %v", i, err)
		}
		var e ManifestEntry
		e.Name = string(name)
		if err := binary.Read(br, binary.LittleEndian, &e.Size); err != nil {
			return nil, corruptf(manifestMagic, "entry %d: truncated size: %v", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &e.CRC); err != nil {
			return nil, corruptf(manifestMagic, "entry %d: truncated CRC: %v", i, err)
		}
		m.Entries = append(m.Entries, e)
	}
	return m, nil
}

// ReadManifestFile reads the manifest of a set directory.
func ReadManifestFile(setDir string) (*SetManifest, error) {
	f, err := os.Open(filepath.Join(setDir, ManifestName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadManifest(f)
}

// ValidateSetDir checks a set directory cheaply: the manifest must be
// CRC-valid and every listed rank file must exist with the recorded size.
// (Full payload CRCs are verified by ReadRankFile when a rank restores
// its own file.) It returns the validated manifest.
func ValidateSetDir(setDir string) (*SetManifest, error) {
	m, err := ReadManifestFile(setDir)
	if err != nil {
		return nil, err
	}
	for _, e := range m.Entries {
		if strings.ContainsAny(e.Name, "/\\") {
			return nil, corruptf(manifestMagic, "entry name %q escapes the set directory", e.Name)
		}
		fi, err := os.Stat(filepath.Join(setDir, e.Name))
		if err != nil {
			return nil, corruptf(manifestMagic, "missing rank file %s: %v", e.Name, err)
		}
		if fi.Size() != e.Size {
			return nil, corruptf(manifestMagic, "rank file %s is %d bytes, manifest records %d",
				e.Name, fi.Size(), e.Size)
		}
	}
	return m, nil
}

// ListValidSets scans a checkpoint root for committed sets, newest
// (highest step) first, skipping transient ".tmp-set-*" directories and
// any set whose manifest or file inventory fails validation. A missing
// root directory yields an empty list.
func ListValidSets(dir string) []int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var steps []int64
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), setPrefix) {
			continue
		}
		step, err := strconv.ParseInt(strings.TrimPrefix(e.Name(), setPrefix), 10, 64)
		if err != nil || step < 0 {
			continue
		}
		if _, err := ValidateSetDir(filepath.Join(dir, e.Name())); err != nil {
			continue
		}
		steps = append(steps, step)
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i] > steps[j] })
	return steps
}
