package output

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"walberla/internal/field"
	"walberla/internal/lattice"
)

func testSnapshot(t *testing.T, s *lattice.Stencil, coord [3]int, seed float64) BlockSnapshot {
	t.Helper()
	mk := func(off float64) *field.PDFField {
		f := field.NewPDFField(s, 3, 2, 2, 1, field.SoA)
		d := f.Data()
		for i := range d {
			d[i] = seed + off + float64(i)*0.25
		}
		return f
	}
	return BlockSnapshot{Coord: coord, Src: mk(0), Dst: mk(1000)}
}

func writeTestSet(t *testing.T, root string, step int, blocks []BlockSnapshot) string {
	t.Helper()
	dir := filepath.Join(root, SetDirName(step))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	size, crc, err := WriteRankFile(&buf, blocks)
	if err != nil {
		t.Fatal(err)
	}
	name := RankFileName(0)
	if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mf, err := os.Create(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	m := &SetManifest{Step: int64(step), Ranks: 1,
		Entries: []ManifestEntry{{Name: name, Size: size, CRC: crc}}}
	if err := WriteManifest(mf, m); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRankFileRoundTrip(t *testing.T) {
	s := lattice.D3Q19()
	blocks := []BlockSnapshot{
		testSnapshot(t, s, [3]int{0, 0, 0}, 1),
		testSnapshot(t, s, [3]int{1, 0, 2}, 2),
		testSnapshot(t, s, [3]int{-1, 3, 0}, 3),
	}
	var buf bytes.Buffer
	size, crc, err := WriteRankFile(&buf, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(buf.Len()) {
		t.Fatalf("reported size %d, wrote %d bytes", size, buf.Len())
	}
	got, gotCRC, err := ReadRankFile(bytes.NewReader(buf.Bytes()), s, field.AoS)
	if err != nil {
		t.Fatal(err)
	}
	if gotCRC != crc {
		t.Fatalf("read CRC %08x, write CRC %08x", gotCRC, crc)
	}
	if len(got) != len(blocks) {
		t.Fatalf("got %d blocks, want %d", len(got), len(blocks))
	}
	for i, b := range got {
		if b.Coord != blocks[i].Coord {
			t.Fatalf("block %d coord %v, want %v", i, b.Coord, blocks[i].Coord)
		}
		for fi, pair := range [][2]*field.PDFField{{b.Src, blocks[i].Src}, {b.Dst, blocks[i].Dst}} {
			g, w := pair[0], pair[1]
			if g.Nx != w.Nx || g.Ny != w.Ny || g.Nz != w.Nz || g.Ghost != w.Ghost {
				t.Fatalf("block %d field %d: shape mismatch", i, fi)
			}
			gl := g.Ghost
			for z := -gl; z < g.Nz+gl; z++ {
				for y := -gl; y < g.Ny+gl; y++ {
					for x := -gl; x < g.Nx+gl; x++ {
						for a := 0; a < s.Q; a++ {
							gv := g.Get(x, y, z, lattice.Direction(a))
							wv := w.Get(x, y, z, lattice.Direction(a))
							if gv != wv {
								t.Fatalf("block %d field %d (%d,%d,%d,%d): got %v want %v",
									i, fi, x, y, z, a, gv, wv)
							}
						}
					}
				}
			}
		}
	}
}

func TestRankFileDetectsBitFlips(t *testing.T) {
	s := lattice.D3Q19()
	var buf bytes.Buffer
	if _, _, err := WriteRankFile(&buf, []BlockSnapshot{testSnapshot(t, s, [3]int{0, 0, 0}, 1)}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one bit at several offsets spread over the record (coords,
	// payload, record CRC); every flip must surface as a typed error.
	for _, off := range []int{9, 40, 200, len(raw) / 2, len(raw) - 3} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x10
		_, _, err := ReadRankFile(bytes.NewReader(mut), s, field.SoA)
		if err == nil {
			t.Fatalf("bit flip at offset %d went undetected", off)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("bit flip at offset %d: error %v is not a *CorruptError", off, err)
		}
	}
}

func TestRankFileRejectsGarbageWithoutAllocating(t *testing.T) {
	s := lattice.D3Q19()
	// Claims 2^31 blocks in an 8-byte file: must be rejected by the
	// plausibility bound, not attempted.
	garbage := append([]byte(rankFileMagic), 0, 0, 0, 0x80)
	if _, _, err := ReadRankFile(bytes.NewReader(garbage), s, field.SoA); err == nil {
		t.Fatal("implausible block count accepted")
	}
}

func TestManifestRoundTripAndCorruption(t *testing.T) {
	m := &SetManifest{Step: 40, Ranks: 4, Entries: []ManifestEntry{
		{Name: RankFileName(0), Size: 123, CRC: 0xdeadbeef},
		{Name: RankFileName(1), Size: 456, CRC: 0x01020304},
	}}
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != m.Step || got.Ranks != m.Ranks || len(got.Entries) != len(m.Entries) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
	for i := range m.Entries {
		if got.Entries[i] != m.Entries[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, got.Entries[i], m.Entries[i])
		}
	}
	// Any single-byte flip must fail the self-CRC.
	for _, off := range []int{0, 5, 20, buf.Len() - 2} {
		mut := append([]byte(nil), buf.Bytes()...)
		mut[off] ^= 0x01
		if _, err := ReadManifest(bytes.NewReader(mut)); err == nil {
			t.Fatalf("manifest bit flip at offset %d went undetected", off)
		}
	}
}

func TestListValidSetsOrderingAndSkipping(t *testing.T) {
	s := lattice.D3Q19()
	root := t.TempDir()
	blocks := []BlockSnapshot{testSnapshot(t, s, [3]int{0, 0, 0}, 1)}
	writeTestSet(t, root, 10, blocks)
	writeTestSet(t, root, 40, blocks)
	dir20 := writeTestSet(t, root, 20, blocks)

	// A transient tmp dir and a non-set dir must be ignored.
	if err := os.MkdirAll(filepath.Join(root, TmpSetDirName(30)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "unrelated"), 0o755); err != nil {
		t.Fatal(err)
	}

	got := ListValidSets(root)
	want := []int64{40, 20, 10}
	if len(got) != len(want) {
		t.Fatalf("ListValidSets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ListValidSets = %v, want %v", got, want)
		}
	}

	// Corrupt set-20's manifest: it must drop out of the valid list.
	mf := filepath.Join(dir20, ManifestName)
	raw, err := os.ReadFile(mf)
	if err != nil {
		t.Fatal(err)
	}
	raw[6] ^= 0xff
	if err := os.WriteFile(mf, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got = ListValidSets(root)
	want = []int64{40, 10}
	if len(got) != 2 || got[0] != 40 || got[1] != 10 {
		t.Fatalf("after manifest corruption ListValidSets = %v, want %v", got, want)
	}

	// Truncate set-40's rank file: size mismatch vs manifest drops it too.
	rf := filepath.Join(root, SetDirName(40), RankFileName(0))
	raw, err = os.ReadFile(rf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rf, raw[:len(raw)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	got = ListValidSets(root)
	if len(got) != 1 || got[0] != 10 {
		t.Fatalf("after truncation ListValidSets = %v, want [10]", got)
	}

	// Missing root directory: empty, not an error.
	if got := ListValidSets(filepath.Join(root, "nope")); len(got) != 0 {
		t.Fatalf("missing root: got %v", got)
	}
}

func TestValidateSetDirRejectsPathEscape(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, SetDirName(5))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	mf, err := os.Create(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	m := &SetManifest{Step: 5, Ranks: 1,
		Entries: []ManifestEntry{{Name: "../evil", Size: 1, CRC: 0}}}
	if err := WriteManifest(mf, m); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	if _, err := ValidateSetDir(dir); err == nil {
		t.Fatal("manifest entry escaping the set directory accepted")
	}
}
