// Package output writes simulation fields to standard visualization and
// checkpoint formats: legacy VTK structured-points files (one per block,
// loadable by ParaView/VisIt) for the macroscopic fields, and a binary
// checkpoint format that restores the exact PDF state of a block.
package output

import (
	"bufio"
	"fmt"
	"io"

	"walberla/internal/field"
)

// WriteVTK writes the macroscopic fields (density, velocity, cell type)
// of one block as a legacy-format VTK structured-points dataset. origin
// is the position of the first cell center, spacing the lattice constant.
// Non-fluid cells carry zero velocity and density.
func WriteVTK(w io.Writer, title string, pdfs *field.PDFField, flags *field.FlagField, origin [3]float64, spacing float64) error {
	if flags != nil && (flags.Nx != pdfs.Nx || flags.Ny != pdfs.Ny || flags.Nz != pdfs.Nz) {
		return fmt.Errorf("output: flag field shape %dx%dx%d does not match PDF field %dx%dx%d",
			flags.Nx, flags.Ny, flags.Nz, pdfs.Nx, pdfs.Ny, pdfs.Nz)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintln(bw, title)
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET STRUCTURED_POINTS")
	fmt.Fprintf(bw, "DIMENSIONS %d %d %d\n", pdfs.Nx, pdfs.Ny, pdfs.Nz)
	fmt.Fprintf(bw, "ORIGIN %g %g %g\n", origin[0], origin[1], origin[2])
	fmt.Fprintf(bw, "SPACING %g %g %g\n", spacing, spacing, spacing)
	n := pdfs.Nx * pdfs.Ny * pdfs.Nz
	fmt.Fprintf(bw, "POINT_DATA %d\n", n)

	isFluid := func(x, y, z int) bool {
		return flags == nil || flags.Get(x, y, z) == field.Fluid
	}

	fmt.Fprintln(bw, "SCALARS density double 1")
	fmt.Fprintln(bw, "LOOKUP_TABLE default")
	for z := 0; z < pdfs.Nz; z++ {
		for y := 0; y < pdfs.Ny; y++ {
			for x := 0; x < pdfs.Nx; x++ {
				if !isFluid(x, y, z) {
					fmt.Fprintln(bw, "0")
					continue
				}
				rho, _, _, _ := pdfs.Moments(x, y, z)
				fmt.Fprintf(bw, "%g\n", rho)
			}
		}
	}

	fmt.Fprintln(bw, "VECTORS velocity double")
	for z := 0; z < pdfs.Nz; z++ {
		for y := 0; y < pdfs.Ny; y++ {
			for x := 0; x < pdfs.Nx; x++ {
				if !isFluid(x, y, z) {
					fmt.Fprintln(bw, "0 0 0")
					continue
				}
				_, ux, uy, uz := pdfs.Moments(x, y, z)
				fmt.Fprintf(bw, "%g %g %g\n", ux, uy, uz)
			}
		}
	}

	if flags != nil {
		fmt.Fprintln(bw, "SCALARS celltype int 1")
		fmt.Fprintln(bw, "LOOKUP_TABLE default")
		for z := 0; z < pdfs.Nz; z++ {
			for y := 0; y < pdfs.Ny; y++ {
				for x := 0; x < pdfs.Nx; x++ {
					fmt.Fprintf(bw, "%d\n", flags.Get(x, y, z))
				}
			}
		}
	}
	return bw.Flush()
}

// WriteVTKMesh writes a triangle surface mesh as a legacy VTK polydata
// dataset with per-triangle boundary colors, for inspecting geometries.
func WriteVTKMesh(w io.Writer, title string, vertices [][3]float64, triangles [][3]int32, triColor func(t int) int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintln(bw, title)
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET POLYDATA")
	fmt.Fprintf(bw, "POINTS %d double\n", len(vertices))
	for _, v := range vertices {
		fmt.Fprintf(bw, "%g %g %g\n", v[0], v[1], v[2])
	}
	fmt.Fprintf(bw, "POLYGONS %d %d\n", len(triangles), 4*len(triangles))
	for _, t := range triangles {
		fmt.Fprintf(bw, "3 %d %d %d\n", t[0], t[1], t[2])
	}
	if triColor != nil {
		fmt.Fprintf(bw, "CELL_DATA %d\n", len(triangles))
		fmt.Fprintln(bw, "SCALARS boundary int 1")
		fmt.Fprintln(bw, "LOOKUP_TABLE default")
		for t := range triangles {
			fmt.Fprintf(bw, "%d\n", triColor(t))
		}
	}
	return bw.Flush()
}
