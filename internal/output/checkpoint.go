package output

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"walberla/internal/field"
	"walberla/internal/lattice"
)

// Checkpoint format: an exact binary snapshot of one block's PDF state
// (including ghost layers, so a restored simulation continues
// bit-identically without a communication step). Little-endian by
// definition, like the block-structure file format. Version 2 ("WBC2")
// appends a CRC32C (Castagnoli) trailer over header and payload so silent
// corruption is detected at load time; version-1 files are rejected
// loudly rather than trusted without an integrity check.

const (
	checkpointMagic       = "WBC2"
	checkpointMagicLegacy = "WBC1"
	// maxCheckpointBytes bounds the allocation a single-block checkpoint
	// header may request — far above any block the framework produces,
	// far below anything that could exhaust memory.
	maxCheckpointBytes = int64(1) << 30
)

// castagnoli is the CRC32C polynomial table shared by all framework file
// formats (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CRC32C returns the Castagnoli CRC of p — the checksum every framework
// format uses, exported so in-memory consumers of the encodings (the
// buddy-replication envelopes of shrinking recovery) validate payloads
// with the identical discipline.
func CRC32C(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// CorruptError is the typed error for structurally invalid or
// integrity-failing external data: bad magic, implausible headers that
// would otherwise drive huge allocations, truncations and CRC mismatches.
type CorruptError struct {
	// Format is the file format ("WBC2", "WBS1", ...).
	Format string
	// Reason describes the failed validation.
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("output: corrupt %s data: %s", e.Format, e.Reason)
}

func corruptf(format, reason string, args ...any) *CorruptError {
	return &CorruptError{Format: format, Reason: fmt.Sprintf(reason, args...)}
}

// SaveCheckpoint writes the complete PDF state of a block, protected by a
// CRC32C trailer.
func SaveCheckpoint(w io.Writer, f *field.PDFField) error {
	bw := bufio.NewWriter(w)
	crc := crc32.New(castagnoli)
	out := io.MultiWriter(bw, crc)
	io.WriteString(out, checkpointMagic)
	hdr := []uint32{
		uint32(f.Stencil.Q),
		uint32(f.Nx), uint32(f.Ny), uint32(f.Nz),
		uint32(f.Ghost),
		uint32(f.Layout),
	}
	for _, v := range hdr {
		binary.Write(out, binary.LittleEndian, v)
	}
	// Write in canonical (layout-independent) order — (z,y,x) cells with
	// the Q directions interleaved — so checkpoints are portable between
	// layouts. Encoding is buffered one padded row at a time: the AoS
	// storage order coincides with the wire order, and the SoA path
	// gathers from the by-direction arrays without converting the field.
	q := f.Stencil.Q
	g := f.Ghost
	ax := f.Nx + 2*g
	row := make([]byte, ax*q*8)
	data := f.Data()
	cells := f.AllocatedCells()
	for z := -g; z < f.Nz+g; z++ {
		for y := -g; y < f.Ny+g; y++ {
			ci := f.CellIndex(-g, y, z)
			if f.Layout == field.AoS {
				vals := data[ci*q : (ci+ax)*q]
				for i, v := range vals {
					binary.LittleEndian.PutUint64(row[i*8:], math.Float64bits(v))
				}
			} else {
				o := 0
				for x := 0; x < ax; x++ {
					for a := 0; a < q; a++ {
						binary.LittleEndian.PutUint64(row[o:], math.Float64bits(data[a*cells+ci+x]))
						o += 8
					}
				}
			}
			out.Write(row)
		}
	}
	// Trailer: CRC32C over magic, header and payload (not itself).
	binary.Write(bw, binary.LittleEndian, crc.Sum32())
	return bw.Flush()
}

// CheckpointSize returns the exact number of bytes SaveCheckpoint
// produces for a block of the given shape.
func CheckpointSize(q, nx, ny, nz, ghost int) int64 {
	cells := int64(nx+2*ghost) * int64(ny+2*ghost) * int64(nz+2*ghost)
	return 4 + 6*4 + cells*int64(q)*8 + 4
}

// crcReader tees everything read through it into a CRC32C accumulator.
type crcReader struct {
	r   io.Reader
	crc hash.Hash32
}

func newCRCReader(r io.Reader) *crcReader {
	return &crcReader{r: r, crc: crc32.New(castagnoli)}
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.crc.Write(p[:n])
	}
	return n, err
}

// LoadCheckpoint restores a PDF field saved by SaveCheckpoint, verifying
// the CRC32C trailer. The stencil must match the saved Q; the restored
// field uses the requested layout regardless of the layout at save time.
// Structural problems (bad magic, implausible header, truncation, CRC
// mismatch) return a typed *CorruptError before any large allocation.
func LoadCheckpoint(r io.Reader, s *lattice.Stencil, layout field.Layout) (*field.PDFField, error) {
	return loadCheckpoint(r, s, layout, false)
}

// LoadCheckpointStored restores a PDF field in the layout recorded in the
// checkpoint header. The wire format is layout-independent; this variant
// merely picks the in-memory representation the writer used, which lets a
// reader reconstruct a mixed-layout rank without knowing the per-block
// kernel choices in advance.
func LoadCheckpointStored(r io.Reader, s *lattice.Stencil) (*field.PDFField, error) {
	return loadCheckpoint(r, s, field.AoS, true)
}

func loadCheckpoint(r io.Reader, s *lattice.Stencil, layout field.Layout, useStored bool) (*field.PDFField, error) {
	br := bufio.NewReader(r)
	cr := newCRCReader(br)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, corruptf(checkpointMagic, "reading magic: %v", err)
	}
	switch string(magic) {
	case checkpointMagic:
	case checkpointMagicLegacy:
		return nil, corruptf(checkpointMagic,
			"legacy %s checkpoint has no integrity trailer; re-save with this version", checkpointMagicLegacy)
	default:
		return nil, corruptf(checkpointMagic, "bad magic %q", magic)
	}
	var hdr [6]uint32
	for i := range hdr {
		if err := binary.Read(cr, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, corruptf(checkpointMagic, "truncated header: %v", err)
		}
	}
	if int(hdr[0]) != s.Q {
		return nil, fmt.Errorf("output: checkpoint has Q=%d, stencil %s has Q=%d", hdr[0], s, s.Q)
	}
	// Reject corrupted headers before allocating (extents beyond any
	// block the framework produces, or absurd ghost widths): garbage
	// header fields must produce a typed error, never a multi-GiB
	// allocation attempt.
	const maxExtent = 1 << 16
	if hdr[1] == 0 || hdr[2] == 0 || hdr[3] == 0 ||
		hdr[1] > maxExtent || hdr[2] > maxExtent || hdr[3] > maxExtent || hdr[4] > 8 {
		return nil, corruptf(checkpointMagic, "implausible header %v", hdr)
	}
	// The per-axis bound does not bound the product: three individually
	// plausible extents can still multiply into a terabyte allocation.
	if size := CheckpointSize(s.Q, int(hdr[1]), int(hdr[2]), int(hdr[3]), int(hdr[4])); size > maxCheckpointBytes {
		return nil, corruptf(checkpointMagic, "header %v implies a %d-byte checkpoint (limit %d)", hdr, size, int64(maxCheckpointBytes))
	}
	if hdr[5] != uint32(field.AoS) && hdr[5] != uint32(field.SoA) {
		return nil, corruptf(checkpointMagic, "unknown layout %d", hdr[5])
	}
	if useStored {
		layout = field.Layout(hdr[5])
	}
	f := field.NewPDFField(s, int(hdr[1]), int(hdr[2]), int(hdr[3]), int(hdr[4]), layout)
	// Decode one padded row of the canonical wire order at a time: a
	// straight copy into AoS storage, a scatter into the by-direction
	// arrays for SoA — either way without a layout round-trip.
	q := s.Q
	g := f.Ghost
	ax := f.Nx + 2*g
	row := make([]byte, ax*q*8)
	data := f.Data()
	cells := f.AllocatedCells()
	for z := -g; z < f.Nz+g; z++ {
		for y := -g; y < f.Ny+g; y++ {
			if _, err := io.ReadFull(cr, row); err != nil {
				return nil, corruptf(checkpointMagic,
					"truncated payload at row (y=%d,z=%d): %v", y, z, err)
			}
			ci := f.CellIndex(-g, y, z)
			if f.Layout == field.AoS {
				vals := data[ci*q : (ci+ax)*q]
				for i := range vals {
					vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(row[i*8:]))
				}
			} else {
				o := 0
				for x := 0; x < ax; x++ {
					for a := 0; a < q; a++ {
						data[a*cells+ci+x] = math.Float64frombits(binary.LittleEndian.Uint64(row[o:]))
						o += 8
					}
				}
			}
		}
	}
	want := cr.crc.Sum32()
	var got uint32
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, corruptf(checkpointMagic, "missing CRC trailer: %v", err)
	}
	if got != want {
		return nil, corruptf(checkpointMagic, "CRC mismatch: stored %08x, computed %08x", got, want)
	}
	return f, nil
}

// RestorePDF loads a checkpoint into an existing field, validating that
// shapes match — the in-place variant used for simulation restarts where
// the fields are already allocated by the setup pipeline.
func RestorePDF(r io.Reader, f *field.PDFField) error {
	g, err := LoadCheckpoint(r, f.Stencil, f.Layout)
	if err != nil {
		return err
	}
	if g.Nx != f.Nx || g.Ny != f.Ny || g.Nz != f.Nz || g.Ghost != f.Ghost {
		return fmt.Errorf("output: checkpoint shape %dx%dx%d (ghost %d) does not match field %dx%dx%d (ghost %d)",
			g.Nx, g.Ny, g.Nz, g.Ghost, f.Nx, f.Ny, f.Nz, f.Ghost)
	}
	copy(f.Data(), g.Data())
	return nil
}

// SaveFlags writes a flag field snapshot (same canonical order).
func SaveFlags(w io.Writer, f *field.FlagField) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("WBF1") // flags checkpoint shares the minimal header style
	hdr := []uint32{uint32(f.Nx), uint32(f.Ny), uint32(f.Nz), uint32(f.Ghost)}
	for _, v := range hdr {
		binary.Write(bw, binary.LittleEndian, v)
	}
	g := f.Ghost
	for z := -g; z < f.Nz+g; z++ {
		for y := -g; y < f.Ny+g; y++ {
			for x := -g; x < f.Nx+g; x++ {
				bw.WriteByte(byte(f.Get(x, y, z)))
			}
		}
	}
	return bw.Flush()
}

// LoadFlags restores a flag field saved by SaveFlags.
func LoadFlags(r io.Reader) (*field.FlagField, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != "WBF1" {
		return nil, fmt.Errorf("output: bad flags magic %q", magic)
	}
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	const maxExtent = 1 << 16
	if hdr[0] == 0 || hdr[1] == 0 || hdr[2] == 0 ||
		hdr[0] > maxExtent || hdr[1] > maxExtent || hdr[2] > maxExtent || hdr[3] > 8 {
		return nil, corruptf("WBF1", "implausible header %v", hdr)
	}
	g64 := int64(hdr[3])
	if cells := (int64(hdr[0]) + 2*g64) * (int64(hdr[1]) + 2*g64) * (int64(hdr[2]) + 2*g64); cells > maxCheckpointBytes {
		return nil, corruptf("WBF1", "header %v implies %d cells (limit %d)", hdr, cells, int64(maxCheckpointBytes))
	}
	f := field.NewFlagField(int(hdr[0]), int(hdr[1]), int(hdr[2]), int(hdr[3]))
	g := f.Ghost
	buf := make([]byte, 1)
	for z := -g; z < f.Nz+g; z++ {
		for y := -g; y < f.Ny+g; y++ {
			for x := -g; x < f.Nx+g; x++ {
				if _, err := io.ReadFull(br, buf); err != nil {
					return nil, err
				}
				f.Set(x, y, z, field.CellType(buf[0]))
			}
		}
	}
	return f, nil
}
