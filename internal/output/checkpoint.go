package output

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"walberla/internal/field"
	"walberla/internal/lattice"
)

// Checkpoint format: an exact binary snapshot of one block's PDF state
// (including ghost layers, so a restored simulation continues
// bit-identically without a communication step). Little-endian by
// definition, like the block-structure file format.

const checkpointMagic = "WBC1"

// SaveCheckpoint writes the complete PDF state of a block.
func SaveCheckpoint(w io.Writer, f *field.PDFField) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(checkpointMagic)
	hdr := []uint32{
		uint32(f.Stencil.Q),
		uint32(f.Nx), uint32(f.Ny), uint32(f.Nz),
		uint32(f.Ghost),
		uint32(f.Layout),
	}
	for _, v := range hdr {
		binary.Write(bw, binary.LittleEndian, v)
	}
	// Write in canonical (layout-independent) order so checkpoints are
	// portable between layouts.
	g := f.Ghost
	for z := -g; z < f.Nz+g; z++ {
		for y := -g; y < f.Ny+g; y++ {
			for x := -g; x < f.Nx+g; x++ {
				for a := 0; a < f.Stencil.Q; a++ {
					binary.Write(bw, binary.LittleEndian,
						math.Float64bits(f.Get(x, y, z, lattice.Direction(a))))
				}
			}
		}
	}
	return bw.Flush()
}

// LoadCheckpoint restores a PDF field saved by SaveCheckpoint. The
// stencil must match the saved Q; the restored field uses the requested
// layout regardless of the layout at save time.
func LoadCheckpoint(r io.Reader, s *lattice.Stencil, layout field.Layout) (*field.PDFField, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("output: reading checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("output: bad checkpoint magic %q", magic)
	}
	var hdr [6]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	if int(hdr[0]) != s.Q {
		return nil, fmt.Errorf("output: checkpoint has Q=%d, stencil %s has Q=%d", hdr[0], s, s.Q)
	}
	// Reject corrupted headers before allocating (extents beyond any
	// block the framework produces, or absurd ghost widths).
	const maxExtent = 1 << 16
	if hdr[1] == 0 || hdr[2] == 0 || hdr[3] == 0 ||
		hdr[1] > maxExtent || hdr[2] > maxExtent || hdr[3] > maxExtent || hdr[4] > 8 {
		return nil, fmt.Errorf("output: implausible checkpoint header %v", hdr)
	}
	f := field.NewPDFField(s, int(hdr[1]), int(hdr[2]), int(hdr[3]), int(hdr[4]), layout)
	g := f.Ghost
	for z := -g; z < f.Nz+g; z++ {
		for y := -g; y < f.Ny+g; y++ {
			for x := -g; x < f.Nx+g; x++ {
				for a := 0; a < s.Q; a++ {
					var bits uint64
					if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
						return nil, fmt.Errorf("output: truncated checkpoint at (%d,%d,%d,%d): %w", x, y, z, a, err)
					}
					f.Set(x, y, z, lattice.Direction(a), math.Float64frombits(bits))
				}
			}
		}
	}
	return f, nil
}

// RestorePDF loads a checkpoint into an existing field, validating that
// shapes match — the in-place variant used for simulation restarts where
// the fields are already allocated by the setup pipeline.
func RestorePDF(r io.Reader, f *field.PDFField) error {
	g, err := LoadCheckpoint(r, f.Stencil, f.Layout)
	if err != nil {
		return err
	}
	if g.Nx != f.Nx || g.Ny != f.Ny || g.Nz != f.Nz || g.Ghost != f.Ghost {
		return fmt.Errorf("output: checkpoint shape %dx%dx%d (ghost %d) does not match field %dx%dx%d (ghost %d)",
			g.Nx, g.Ny, g.Nz, g.Ghost, f.Nx, f.Ny, f.Nz, f.Ghost)
	}
	copy(f.Data(), g.Data())
	return nil
}

// SaveFlags writes a flag field snapshot (same canonical order).
func SaveFlags(w io.Writer, f *field.FlagField) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("WBF1") // flags checkpoint shares the minimal header style
	hdr := []uint32{uint32(f.Nx), uint32(f.Ny), uint32(f.Nz), uint32(f.Ghost)}
	for _, v := range hdr {
		binary.Write(bw, binary.LittleEndian, v)
	}
	g := f.Ghost
	for z := -g; z < f.Nz+g; z++ {
		for y := -g; y < f.Ny+g; y++ {
			for x := -g; x < f.Nx+g; x++ {
				bw.WriteByte(byte(f.Get(x, y, z)))
			}
		}
	}
	return bw.Flush()
}

// LoadFlags restores a flag field saved by SaveFlags.
func LoadFlags(r io.Reader) (*field.FlagField, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != "WBF1" {
		return nil, fmt.Errorf("output: bad flags magic %q", magic)
	}
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	f := field.NewFlagField(int(hdr[0]), int(hdr[1]), int(hdr[2]), int(hdr[3]))
	g := f.Ghost
	buf := make([]byte, 1)
	for z := -g; z < f.Nz+g; z++ {
		for y := -g; y < f.Ny+g; y++ {
			for x := -g; x < f.Nx+g; x++ {
				if _, err := io.ReadFull(br, buf); err != nil {
					return nil, err
				}
				f.Set(x, y, z, field.CellType(buf[0]))
			}
		}
	}
	return f, nil
}
