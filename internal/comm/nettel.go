package comm

import (
	"sync"

	"walberla/internal/telemetry"
)

// Telemetry wiring of the socket transport. Unlike the rank-driver
// telemetry (telemetry.go), transport events originate on background
// goroutines — supervisors, readers, accept handlers — so they cannot
// share the driver's single-writer span lane. SetNetTelemetry attaches a
// dedicated lane (created with Tracer.AddLane) guarded by a mutex: the
// events are rare (connects, faults, accusations — never per frame), so
// the lock is off every hot path. Counters are registry atomics, safe
// from any goroutine.

// netTel bundles one endpoint's attached telemetry handles. All methods
// are nil-safe.
type netTel struct {
	mu   sync.Mutex
	lane *telemetry.Lane

	framesSent, framesRecv *telemetry.Counter
	bytesSent, bytesRecv   *telemetry.Counter
	heartbeats             *telemetry.Counter
	reconnects, resent     *telemetry.Counter
	dups, gaps, checksums  *telemetry.Counter
	accusals, injected     *telemetry.Counter
}

// instant records a transport event span; safe from any goroutine.
func (nt *netTel) instant(p telemetry.Phase, arg int) {
	if nt == nil || nt.lane == nil {
		return
	}
	nt.mu.Lock()
	nt.lane.Instant(p, 0, int32(arg))
	nt.mu.Unlock()
}

// SetNetTelemetry attaches a span lane and metrics registry to this
// rank's socket endpoint: connection lifecycle instants (net-connect,
// net-reconnect, net-resend, net-fault, net-accuse) on the lane and
// comm.net.* counters in the registry. The lane must be dedicated to the
// transport (e.g. from Tracer.AddLane("net", 0)) — it is written from
// background goroutines under an internal lock, never from the rank's
// driver. No-op on the in-process backend; nil lane/registry disable the
// respective half.
func (c *Comm) SetNetTelemetry(lane *telemetry.Lane, reg *telemetry.Registry) {
	t, ok := c.w.transport.(*netTransport)
	if !ok {
		return
	}
	ep := t.endpoints[c.WorldRank()]
	if lane == nil && reg == nil {
		ep.tel.Store(nil)
		return
	}
	ep.tel.Store(&netTel{
		lane:       lane,
		framesSent: reg.Counter("comm.net.frames_sent"),
		framesRecv: reg.Counter("comm.net.frames_recv"),
		bytesSent:  reg.Counter("comm.net.bytes_sent"),
		bytesRecv:  reg.Counter("comm.net.bytes_recv"),
		heartbeats: reg.Counter("comm.net.heartbeats"),
		reconnects: reg.Counter("comm.net.reconnects"),
		resent:     reg.Counter("comm.net.resent_frames"),
		dups:       reg.Counter("comm.net.dup_frames"),
		gaps:       reg.Counter("comm.net.gaps"),
		checksums:  reg.Counter("comm.net.checksum_errors"),
		accusals:   reg.Counter("comm.net.accusals"),
		injected:   reg.Counter("comm.net.injected_faults"),
	})
}

// event records a connection-lifecycle instant, bumping the matching
// registry counter where one exists.
func (ep *netEndpoint) event(p telemetry.Phase, arg int) {
	nt := ep.tel.Load()
	if nt == nil {
		return
	}
	switch p {
	case telemetry.PhaseNetReconnect:
		nt.reconnects.Inc()
	case telemetry.PhaseNetResend:
		nt.resent.Inc()
	}
	nt.instant(p, arg)
}

// netFault records one injected frame fault against peer.
func (ep *netEndpoint) netFault(peer int) {
	nt := ep.tel.Load()
	if nt == nil {
		return
	}
	nt.injected.Inc()
	nt.instant(telemetry.PhaseNetFault, peer)
}

// frameSent counts one written data frame of the given wire size.
func (ep *netEndpoint) frameSent(bytes int64) {
	ep.stats.framesSent.Add(1)
	if nt := ep.tel.Load(); nt != nil {
		nt.framesSent.Inc()
		nt.bytesSent.Add(bytes)
	}
}

// heartbeat counts one written liveness probe.
func (ep *netEndpoint) heartbeat() {
	ep.stats.heartbeats.Add(1)
	if nt := ep.tel.Load(); nt != nil {
		nt.heartbeats.Inc()
		nt.bytesSent.Add(frameHeaderLen)
	}
}

// bytesIn counts inbound wire bytes (all frame kinds).
func (ep *netEndpoint) bytesIn(n int64) {
	ep.stats.bytesRecv.Add(n)
	if nt := ep.tel.Load(); nt != nil {
		nt.bytesRecv.Add(n)
	}
}

// frameRecv counts one accepted inbound data frame.
func (ep *netEndpoint) frameRecv() {
	ep.stats.framesRecv.Add(1)
	if nt := ep.tel.Load(); nt != nil {
		nt.framesRecv.Inc()
	}
}

// dupFrame counts one discarded duplicate data frame.
func (ep *netEndpoint) dupFrame() {
	ep.stats.dups.Add(1)
	if nt := ep.tel.Load(); nt != nil {
		nt.dups.Inc()
	}
}

// gapFrame counts one sequence gap forcing a teardown.
func (ep *netEndpoint) gapFrame() {
	ep.stats.gaps.Add(1)
	if nt := ep.tel.Load(); nt != nil {
		nt.gaps.Inc()
	}
}

// checksumErr counts one frame rejected by the CRC check.
func (ep *netEndpoint) checksumErr() {
	ep.stats.checksumErrs.Add(1)
	if nt := ep.tel.Load(); nt != nil {
		nt.checksums.Inc()
	}
}

// accused counts one rank accusation declared by this endpoint.
func (ep *netEndpoint) accused(rank int) {
	ep.stats.accusals.Add(1)
	if nt := ep.tel.Load(); nt != nil {
		nt.accusals.Inc()
		nt.instant(telemetry.PhaseNetAccuse, rank)
	}
}
