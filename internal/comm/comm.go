// Package comm provides the message-passing runtime the framework is
// written against — the reproduction's stand-in for MPI.
//
// A "process" (rank) is a goroutine executing the same SPMD function; the
// communicator offers the MPI subset waLBerla uses: blocking point-to-point
// send/receive with tag matching, nonblocking sends, the collectives
// Barrier, Bcast, Gather, Allgather, Reduce, Allreduce and Alltoall (built
// on point-to-point messages, binomial trees for the rooted collectives),
// and communicator splitting into subgroups. The communication patterns
// and volumes therefore match a real distributed run, and ranks share no
// data except through messages, keeping the paper's fully distributed
// data structure invariants testable in process.
//
// Message passing is "eager": sends do not rendezvous with the receiver
// (each rank owns a mailbox), receives block until a matching message
// arrives. Messages match on (communicator context, source, tag), so
// traffic in a subcommunicator cannot interfere with the parent's.
// Mailboxes may be depth-bounded (Options.MailboxDepth), in which case a
// full mailbox applies backpressure to senders; per-rank statistics
// (message and byte counts, time blocked in receives and in backpressure)
// support the %MPI accounting of the scaling experiments.
//
// For resilience testing the runtime supports deterministic fault
// injection (FaultPlan): dropped and delayed messages and rank crashes at
// chosen time steps. Every operation has an error-returning variant
// (SendErr, RecvErr, BarrierErr, ...) that surfaces a typed
// *RankFailedError instead of deadlocking when a rank has failed; see
// fault.go and docs/RESILIENCE.md for the fault model and the recovery
// protocol built on top in package sim.
package comm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// AnySource matches messages from every rank in Recv.
const AnySource = -1

// AnyTag matches every tag in Recv.
const AnyTag = -2

// internalTag marks messages of the collective implementations; user tags
// must be non-negative.
const internalTag = -1000

type message struct {
	ctx    int // communicator context id
	source int // world rank of the sender
	tag    int
	data   any
	// f64 is the typed payload path of SendFloat64s: storing the slice in
	// its own field instead of data avoids the interface boxing allocation
	// on every send, which the zero-allocation ghost exchange relies on.
	// Exactly one of data and f64 is set.
	f64 []float64
	seq uint64 // mailbox arrival stamp, orders wildcard matches
}

// payload returns the message payload as an untyped value (boxing a typed
// float64 payload on demand).
func (m *message) payload() any {
	if m.f64 != nil {
		return m.f64
	}
	return m.data
}

// bytes estimates the wire size of the payload.
func (m *message) bytes() int64 {
	if m.f64 != nil {
		return int64(8 * len(m.f64))
	}
	return payloadBytes(m.data)
}

// mkey is the exact-match index key of a mailbox queue.
type mkey struct{ ctx, source, tag int }

// errTimeout is the internal sentinel of an expired receive deadline; the
// public error surfaced to callers is a *RankFailedError with a timeout
// cause (see recvErr).
var errTimeout = errors.New("comm: receive deadline exceeded")

// queue is one per-(context, source, tag) FIFO of pending messages. Popped
// slots are cleared (dropping payload references) and the backing array is
// recycled once the queue drains, so steady-state traffic — e.g. the ghost
// layer exchange depositing one aggregate per step — enqueues without heap
// allocations after warm-up.
type queue struct {
	msgs []message
	head int
}

func (q *queue) empty() bool { return q.head == len(q.msgs) }

func (q *queue) push(m message) {
	q.msgs = append(q.msgs, m)
}

func (q *queue) pop() message {
	m := q.msgs[q.head]
	q.msgs[q.head] = message{} // release the payload reference
	q.head++
	if q.head == len(q.msgs) {
		q.msgs = q.msgs[:0]
		q.head = 0
	}
	return m
}

func (q *queue) peek() *message { return &q.msgs[q.head] }

// mailbox is the receive queue of one world rank. Messages are kept in
// per-(context, source, tag) FIFO queues so the common exact-match receive
// is a map lookup instead of a linear scan over all pending traffic;
// wildcard receives (AnySource / AnyTag) pick the earliest arrival among
// the matching queue heads, preserving the arrival-order semantics of the
// previous single-queue implementation. Drained queues stay in the map
// with their capacity so repeated traffic on a key does not reallocate.
// An optional depth bound turns the eager channel into a backpressured
// one: full mailboxes block senders.
type mailbox struct {
	mu        sync.Mutex
	cond      *sync.Cond
	queues    map[mkey]*queue
	count     int    // total pending messages
	seq       uint64 // arrival counter
	maxDepth  int    // 0 = unbounded
	highWater int    // maximum of count over the run
}

func newMailbox(maxDepth int) *mailbox {
	m := &mailbox{queues: make(map[mkey]*queue), maxDepth: maxDepth}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put enqueues a message, blocking while the mailbox is at its depth bound.
// bail is polled while blocked; a non-nil bail error aborts the send (used
// to break backpressure deadlocks when a rank has failed). It returns the
// time spent blocked on backpressure.
func (m *mailbox) put(msg message, bail func() error) (time.Duration, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var waited time.Duration
	for m.maxDepth > 0 && m.count >= m.maxDepth {
		if err := bail(); err != nil {
			return waited, err
		}
		t0 := time.Now()
		m.cond.Wait()
		waited += time.Since(t0)
	}
	m.seq++
	msg.seq = m.seq
	k := mkey{msg.ctx, msg.source, msg.tag}
	q := m.queues[k]
	if q == nil {
		q = &queue{}
		m.queues[k] = q
	}
	q.push(msg)
	m.count++
	if m.count > m.highWater {
		m.highWater = m.count
	}
	m.cond.Broadcast()
	return waited, nil
}

// match finds and removes the first message matching context, source and
// tag. Caller holds m.mu.
func (m *mailbox) match(ctx, source, tag int) (message, bool) {
	if source != AnySource && tag != AnyTag {
		// Fast path: exact (source, tag) lookup, the shape of every ghost
		// layer exchange and tree collective message.
		q := m.queues[mkey{ctx, source, tag}]
		if q == nil || q.empty() {
			return message{}, false
		}
		m.count--
		return q.pop(), true
	}
	// Wildcard: earliest arrival among matching queue heads. O(#distinct
	// keys), not O(#pending messages).
	var best *queue
	for k, q := range m.queues {
		if k.ctx != ctx || q.empty() {
			continue
		}
		if source != AnySource && k.source != source {
			continue
		}
		if tag != AnyTag && k.tag != tag {
			continue
		}
		if best == nil || q.peek().seq < best.peek().seq {
			best = q
		}
	}
	if best == nil {
		return message{}, false
	}
	m.count--
	return best.pop(), true
}

// take removes and returns the first message matching context, source
// (world rank or AnySource) and tag, blocking until one arrives. A
// non-zero timeout bounds the wait (errTimeout); bail is polled on every
// wakeup so a declared rank failure unblocks the receive.
func (m *mailbox) take(ctx, source, tag int, timeout time.Duration, bail func() error) (message, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		t := time.AfterFunc(timeout, m.cond.Broadcast)
		defer t.Stop()
	}
	for {
		if msg, ok := m.match(ctx, source, tag); ok {
			if m.maxDepth > 0 {
				m.cond.Broadcast() // free a sender blocked on the bound
			}
			return msg, nil
		}
		if err := bail(); err != nil {
			return message{}, err
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			return message{}, errTimeout
		}
		m.cond.Wait()
	}
}

// purge discards all pending messages (recovery: stale traffic of the
// failed epoch must not match post-recovery receives).
func (m *mailbox) purge() {
	m.mu.Lock()
	m.queues = make(map[mkey]*queue)
	m.count = 0
	m.cond.Broadcast()
	m.mu.Unlock()
}

// wake pokes all goroutines blocked on this mailbox so they re-check the
// failure flag. Taking the lock is required to avoid a lost wakeup against
// a receiver between its predicate check and cond.Wait.
func (m *mailbox) wake() {
	m.mu.Lock()
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *mailbox) depth() (pending, highWater int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count, m.highWater
}

// Options configures a Run: fault injection, mailbox bounding and receive
// timeouts. The zero value reproduces the classic perfect-network runtime:
// no faults, unbounded mailboxes, receives that wait forever.
type Options struct {
	// Faults injects deterministic communication faults; nil disables
	// injection entirely.
	Faults *FaultPlan
	// MailboxDepth bounds the number of queued messages per rank; senders
	// to a full mailbox block until the receiver drains it (backpressure,
	// accounted in Stats.BackpressureWait). 0 means unbounded.
	MailboxDepth int
	// RecvTimeout bounds every error-returning receive; when it expires the
	// runtime declares the awaited rank failed and returns a typed
	// *RankFailedError. 0 means wait forever (except under a FaultPlan
	// with drops, where it defaults to 10s so lost messages surface).
	RecvTimeout time.Duration
	// FailTimeout is the failure-detection deadline: a rank whose message
	// a receive has awaited longer than this is *declared* failed with a
	// timeout-cause *RankFailedError (RankFailedError.TimedOut reports
	// true) — the heartbeat that detects silent failures, not just
	// injected crashes. It acts as the default for RecvTimeout when
	// RecvTimeout is 0; an explicit RecvTimeout takes precedence. On the
	// socket transport it is additionally the connection-level accusation
	// deadline (see NetOptions).
	FailTimeout time.Duration
	// Net selects the socket transport (TCP or unix-domain sockets) and
	// configures its heartbeats, reconnect backoff and frame-fault
	// injection; nil keeps messages in process (see transport.go).
	Net *NetOptions
}

// world is the shared state of one Run invocation.
type world struct {
	size      int
	mailboxes []*mailbox
	opts      Options
	// transport moves stamped messages between ranks: the in-process
	// mailbox deposit, or the socket backend when Options.Net is set.
	transport transport

	// epoch counts completed recoveries; delayed (fault-injected) messages
	// from an older epoch are discarded at delivery time.
	epoch atomic.Int64
	// failure is the first declared rank failure of the current epoch; all
	// error-returning operations fail fast once it is set.
	failure atomic.Pointer[RankFailedError]
	// crashFired marks FaultPlan.Crashes entries that have triggered, so a
	// crash fires exactly once even across recovery replays.
	crashFired []atomic.Bool
	// hangFired marks FaultPlan.Hangs entries that have triggered, so a
	// silence fires exactly once even across recovery replays.
	hangFired []atomic.Bool
	// sendSeq is the per-world-rank send counter driving the deterministic
	// drop/delay decisions.
	sendSeq []atomic.Uint64

	// Pending delayed-delivery timers of the fault injector. Tracked so
	// recovery and run teardown can stop them: an untracked timer firing
	// after the world is gone would leak, and one firing after a recovery
	// would race the epoch check (see injectSendFaults).
	timerMu      sync.Mutex
	timers       map[*time.Timer]struct{}
	timersClosed bool

	// Recovery rendezvous and permanent-death bookkeeping (see
	// (*Comm).Recover, MarkDead, Shrink). dead/deadCount are guarded by
	// recMu because the rendezvous completion condition reads them.
	recMu            sync.Mutex
	recCond          *sync.Cond
	recCount, recGen int
	dead             []bool
	deadCount        int
	// sparesReleased, once set, terminally releases every parked spare
	// rank (see grow.go); guarded by recMu.
	sparesReleased bool
}

// failErr returns the declared failure of the current epoch, if any.
func (w *world) failErr() error {
	if f := w.failure.Load(); f != nil {
		return f
	}
	return nil
}

// declareFailure records the first failure of the epoch and wakes every
// blocked sender and receiver so they observe it.
func (w *world) declareFailure(f *RankFailedError) {
	if w.failure.CompareAndSwap(nil, f) {
		for _, m := range w.mailboxes {
			m.wake()
		}
		if w.transport != nil {
			// Senders can also be blocked inside the transport (retention-
			// ring backpressure); wake them too.
			w.transport.onFailure()
		}
		// Parked spares wait on the recovery condition (see grow.go); wake
		// them so they join the rendezvous.
		w.recMu.Lock()
		w.recCond.Broadcast()
		w.recMu.Unlock()
	}
}

// PeerStats counts one rank's point-to-point traffic toward a single
// destination world rank (messages issued on behalf of collectives
// included) — the per-neighbor accounting the aggregated ghost exchange
// is benchmarked with.
type PeerStats struct {
	// Sends is the number of messages sent to this destination.
	Sends int64
	// BytesSent is the estimated payload volume sent to this destination.
	BytesSent int64
}

// Stats accumulates per-rank communication statistics. All communicators
// derived from one rank share the same counters.
type Stats struct {
	// Sends is the number of point-to-point messages sent (including those
	// issued on behalf of collectives).
	Sends int64
	// BytesSent is the estimated payload volume of all sends.
	BytesSent int64
	// Peers breaks Sends/BytesSent down by destination world rank.
	Peers []PeerStats
	// RecvWait is the total wall time this rank spent blocked in receives,
	// the numerator of the %MPI metric.
	RecvWait time.Duration
	// BackpressureWait is the total time this rank's sends spent blocked
	// on full (depth-bounded) destination mailboxes.
	BackpressureWait time.Duration
	// Dropped counts this rank's sends discarded by fault injection.
	Dropped int64
	// Delayed counts this rank's sends deferred by fault injection.
	Delayed int64
	// Timeouts counts receives that expired and declared a failure.
	Timeouts int64
}

// MailboxStats reports the receive-queue occupancy of one rank.
type MailboxStats struct {
	// Pending is the current number of queued messages.
	Pending int
	// HighWater is the maximum queue depth observed so far.
	HighWater int
	// Depth is the configured bound (0 = unbounded).
	Depth int
}

// Comm is one rank's handle to a communicator: the world communicator
// created by Run, or a subgroup created by Split. Ranks are relative to
// the communicator (0..Size-1).
type Comm struct {
	w       *world
	group   []int       // world ranks of the members, sorted by comm rank
	toIndex map[int]int // world rank -> comm rank
	rank    int         // this rank's position within group
	ctx     int         // context id isolating this communicator's traffic
	splits  int         // number of Split calls issued on this handle
	stats   *Stats
	// tel is the optional telemetry attachment (SetTelemetry); like stats
	// it is shared across every communicator derived from this rank's
	// handle. nil means untraced — every recording site is a single branch.
	tel *commTel
}

// Run executes f on n ranks, one goroutine per rank, and returns when all
// ranks have finished. A panic on any rank is re-raised on the caller with
// the rank attached.
func Run(n int, f func(c *Comm)) {
	RunWithOptions(n, Options{}, f)
}

// RunWithOptions is Run with fault injection, mailbox bounding and
// receive-timeout configuration.
func RunWithOptions(n int, opts Options, f func(c *Comm)) {
	if n <= 0 {
		panic("comm: Run requires at least one rank")
	}
	if opts.RecvTimeout == 0 {
		// The failure-detection deadline doubles as the receive deadline:
		// a silent rank is detected by the receives awaiting it.
		opts.RecvTimeout = opts.FailTimeout
		if opts.Net != nil {
			// On the socket transport the connection-level detector is
			// primary: its accusation names the silent rank, while a receive
			// timeout can only blame whichever rank it happened to await.
			// Give the transport the first FailTimeout window to itself.
			opts.RecvTimeout = 2 * opts.FailTimeout
		}
	}
	if p := opts.Faults; p != nil {
		if err := p.Validate(n); err != nil {
			panic("comm: " + err.Error())
		}
		if opts.RecvTimeout == 0 && p.Drop > 0 {
			// Dropped messages would otherwise hang receivers forever.
			opts.RecvTimeout = 10 * time.Second
		}
	}
	if opts.MailboxDepth < 0 {
		panic("comm: negative mailbox depth")
	}
	w := &world{size: n, mailboxes: make([]*mailbox, n), opts: opts}
	w.recCond = sync.NewCond(&w.recMu)
	w.dead = make([]bool, n)
	w.timers = make(map[*time.Timer]struct{})
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox(opts.MailboxDepth)
	}
	if opts.Faults != nil {
		w.crashFired = make([]atomic.Bool, len(opts.Faults.Crashes))
		w.hangFired = make([]atomic.Bool, len(opts.Faults.Hangs))
	}
	w.sendSeq = make([]atomic.Uint64, n)
	w.transport = &inprocTransport{w: w}
	if opts.Net != nil {
		nt, err := newNetTransport(w, *opts.Net)
		if err != nil {
			panic("comm: " + err.Error())
		}
		w.transport = nt
	}
	group := make([]int, n)
	toIndex := make(map[int]int, n)
	for i := range group {
		group[i] = i
		toIndex[i] = i
	}
	var wg sync.WaitGroup
	panics := make(chan string, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					select {
					case panics <- fmt.Sprintf("rank %d: %v", rank, p):
					default:
					}
				}
			}()
			f(&Comm{w: w, group: group, toIndex: toIndex, rank: rank,
				stats: &Stats{Peers: make([]PeerStats, n)}})
		}(r)
	}
	wg.Wait()
	// Stop delayed-delivery timers still pending at teardown; their
	// callbacks must never touch the mailboxes of a finished world.
	w.stopDelayedTimers(true)
	w.transport.shutdown()
	if testHookWorld != nil {
		testHookWorld(w)
	}
	select {
	case p := <-panics:
		panic("comm: " + p)
	default:
	}
}

// testHookWorld, when non-nil, observes the world of each Run after
// teardown — tests assert invariants like "no pending delayed-delivery
// timers survive the run".
var testHookWorld func(w *world)

// Rank returns this rank's id within the communicator, in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank returns this rank's id in the world communicator.
func (c *Comm) WorldRank() int { return c.group[c.rank] }

// Stats returns the communication statistics accumulated so far (shared
// across all communicators of this rank). The per-peer breakdown is
// copied, so the snapshot stays stable while the rank keeps sending.
func (c *Comm) Stats() Stats {
	s := *c.stats
	s.Peers = append([]PeerStats(nil), c.stats.Peers...)
	return s
}

// ResetStats zeroes the statistics counters, including the per-peer
// breakdown.
func (c *Comm) ResetStats() {
	peers := c.stats.Peers
	for i := range peers {
		peers[i] = PeerStats{}
	}
	*c.stats = Stats{Peers: peers}
}

// MailboxStats reports this rank's receive-queue occupancy.
func (c *Comm) MailboxStats() MailboxStats {
	m := c.w.mailboxes[c.WorldRank()]
	pending, high := m.depth()
	return MailboxStats{Pending: pending, HighWater: high, Depth: m.maxDepth}
}

// Split partitions the communicator into subgroups: ranks passing the
// same color form a new communicator, ordered by (key, parent rank). A
// negative color opts out and receives nil. Collective: every rank of the
// communicator must call Split.
func (c *Comm) Split(color, key int) *Comm {
	c.splits++
	type entry struct{ Color, Key, Rank int }
	gathered := c.Allgather(entry{color, key, c.rank})
	var members []entry
	for _, g := range gathered {
		e := g.(entry)
		if e.Color == color {
			members = append(members, e)
		}
	}
	if color < 0 {
		return nil
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].Key != members[j].Key {
			return members[i].Key < members[j].Key
		}
		return members[i].Rank < members[j].Rank
	})
	group := make([]int, len(members))
	toIndex := make(map[int]int, len(members))
	myRank := -1
	for i, e := range members {
		world := c.group[e.Rank]
		group[i] = world
		toIndex[world] = i
		if e.Rank == c.rank {
			myRank = i
		}
	}
	// Deterministic context id: every member executed the same sequence
	// of Split calls on the same parent, so (parent ctx, split counter,
	// color) agree across the subgroup and differ between sibling groups.
	ctx := (c.ctx*31+c.splits)*1000003 + color + 1
	return &Comm{
		w: c.w, group: group, toIndex: toIndex, rank: myRank,
		ctx: ctx, stats: c.stats, tel: c.tel,
	}
}

// payloadBytes estimates the wire size of a payload for the statistics.
func payloadBytes(data any) int64 {
	switch d := data.(type) {
	case nil:
		return 0
	case []byte:
		return int64(len(d))
	case []float64:
		return int64(8 * len(d))
	case []int:
		return int64(8 * len(d))
	case []int64:
		return int64(8 * len(d))
	case []int32:
		return int64(4 * len(d))
	case float64, int, int64, uint64:
		return 8
	case int32, uint32, float32:
		return 4
	case bool, int8, uint8:
		return 1
	case string:
		return int64(len(d))
	default:
		return 8 // opaque payloads count as one word
	}
}

// Send delivers data to rank dst with the given non-negative tag. Send is
// asynchronous (eager): it blocks only while the destination mailbox is at
// its depth bound. The payload is shared, not copied; the sender must not
// modify it afterwards (pack fresh buffers per message, as the ghost-layer
// exchange does). Send panics if a rank failure has been declared; use
// SendErr where failures must be handled.
func (c *Comm) Send(dst, tag int, data any) {
	if err := c.SendErr(dst, tag, data); err != nil {
		panic(err)
	}
}

// SendErr is Send returning a typed *RankFailedError instead of panicking
// once a rank failure has been declared.
func (c *Comm) SendErr(dst, tag int, data any) error {
	if tag < 0 {
		panic("comm: user tags must be non-negative")
	}
	return c.sendErr(dst, tag, data)
}

// SendFloat64s is SendErr specialized for []float64 payloads: the slice is
// carried in a typed message field, so a send performs no interface boxing
// and — beyond the mailbox bookkeeping — no heap allocation. Like Send the
// payload is shared with the receiver, not copied; a sender reusing a
// persistent buffer must guarantee the receiver is done with the previous
// contents before overwriting it (see docs/EXCHANGE.md for the ghost
// exchange's double-buffer ownership protocol).
func (c *Comm) SendFloat64s(dst, tag int, buf []float64) error {
	if tag < 0 {
		panic("comm: user tags must be non-negative")
	}
	return c.sendMsg(dst, tag, message{f64: buf})
}

func (c *Comm) sendErr(dst, tag int, data any) error {
	return c.sendMsg(dst, tag, message{data: data})
}

func (c *Comm) sendMsg(dst, tag int, msg message) error {
	if dst < 0 || dst >= len(c.group) {
		panic(fmt.Sprintf("comm: rank %d sends to invalid rank %d (size %d)", c.rank, dst, len(c.group)))
	}
	w := c.w
	if err := w.failErr(); err != nil {
		return err
	}
	worldDst := c.group[dst]
	nb := msg.bytes()
	c.stats.Sends++
	c.stats.BytesSent += nb
	if worldDst < len(c.stats.Peers) {
		p := &c.stats.Peers[worldDst]
		p.Sends++
		p.BytesSent += nb
	}
	msg.ctx, msg.source, msg.tag = c.ctx, c.WorldRank(), tag
	telStart := c.tel.sendStart(nb)
	if p := w.opts.Faults; p != nil {
		if done, err := c.injectSendFaults(p, worldDst, msg); done {
			return err
		}
	}
	waited, err := w.transport.deliver(c.WorldRank(), worldDst, msg)
	c.stats.BackpressureWait += waited
	c.tel.sendDone(worldDst, telStart, waited)
	return err
}

// Recv blocks until a message from src (or AnySource) with the given tag
// (or AnyTag) arrives on this communicator and returns its payload and
// origin (communicator-relative). Recv panics if a rank failure has been
// declared; use RecvErr where failures must be handled.
func (c *Comm) Recv(src, tag int) (data any, source int) {
	data, source, err := c.RecvErr(src, tag)
	if err != nil {
		panic(err)
	}
	return data, source
}

// RecvErr is Recv returning a typed *RankFailedError instead of
// panicking when a rank failure has been declared or the configured
// receive timeout expires (the timeout declares the awaited rank failed).
func (c *Comm) RecvErr(src, tag int) (any, int, error) {
	return c.RecvWithin(src, tag, c.w.opts.RecvTimeout)
}

// RecvWithin is RecvErr with an explicit per-call timeout overriding the
// Options default; 0 waits forever.
func (c *Comm) RecvWithin(src, tag int, timeout time.Duration) (any, int, error) {
	if tag < 0 && tag != AnyTag {
		panic("comm: user tags must be non-negative")
	}
	return c.recv(src, tag, timeout)
}

func (c *Comm) recvErr(src, tag int) (any, int, error) {
	return c.recv(src, tag, c.w.opts.RecvTimeout)
}

func (c *Comm) recv(src, tag int, timeout time.Duration) (any, int, error) {
	msg, source, err := c.recvMsg(src, tag, timeout)
	if err != nil {
		return nil, 0, err
	}
	return msg.payload(), source, nil
}

// recvFloat64s is the typed receive path: a float64 payload is returned
// without ever being boxed into an interface, keeping the steady-state
// ghost exchange allocation-free end to end.
func (c *Comm) recvFloat64s(src, tag int, timeout time.Duration) ([]float64, int, error) {
	msg, source, err := c.recvMsg(src, tag, timeout)
	if err != nil {
		return nil, 0, err
	}
	if msg.f64 != nil {
		return msg.f64, source, nil
	}
	f, ok := msg.data.([]float64)
	if !ok {
		panic(fmt.Sprintf("comm: rank %d expected []float64 from %d tag %d, got %T", c.rank, src, tag, msg.data))
	}
	return f, source, nil
}

func (c *Comm) recvMsg(src, tag int, timeout time.Duration) (message, int, error) {
	worldSrc := AnySource
	if src != AnySource {
		if src < 0 || src >= len(c.group) {
			panic(fmt.Sprintf("comm: rank %d receives from invalid rank %d", c.rank, src))
		}
		worldSrc = c.group[src]
	}
	telStart := c.tel.start()
	start := time.Now()
	msg, err := c.w.mailboxes[c.WorldRank()].take(c.ctx, worldSrc, tag, timeout, c.w.failErr)
	waited := time.Since(start)
	c.stats.RecvWait += waited
	if err == errTimeout {
		c.stats.Timeouts++
		// Accuse the awaited rank (the likely victim of a drop or crash);
		// a wildcard receive can only accuse the receiver itself.
		accused := worldSrc
		if accused == AnySource {
			accused = c.WorldRank()
		}
		f := &RankFailedError{
			Rank: accused,
			Cause: fmt.Sprintf("%srank %d received no message (tag %d) within %v",
				timeoutCausePrefix, c.WorldRank(), tag, timeout),
		}
		c.w.declareFailure(f)
		// Concurrent timeouts race to declare; everyone returns the winning
		// accusation so the whole world blames the same rank (a loser may
		// have accused a merely-slow rank stuck behind the real victim).
		if winner := c.w.failure.Load(); winner != nil {
			f = winner
		}
		c.tel.recv(worldSrc, telStart, waited, true, f.Rank)
		return message{}, 0, f
	}
	if err != nil {
		return message{}, 0, err
	}
	c.tel.recv(worldSrc, telStart, waited, false, 0)
	return msg, c.toIndex[msg.source], nil
}

// RecvFloat64s is Recv with a typed payload, panicking on type mismatch.
func (c *Comm) RecvFloat64s(src, tag int) ([]float64, int) {
	f, source, err := c.RecvFloat64sErr(src, tag)
	if err != nil {
		panic(err)
	}
	return f, source
}

// RecvFloat64sErr is RecvErr with a typed payload; a payload type mismatch
// is a programming error and still panics.
func (c *Comm) RecvFloat64sErr(src, tag int) ([]float64, int, error) {
	if tag < 0 && tag != AnyTag {
		panic("comm: user tags must be non-negative")
	}
	return c.recvFloat64s(src, tag, c.w.opts.RecvTimeout)
}

// RecvBytes is Recv with a []byte payload, panicking on type mismatch.
func (c *Comm) RecvBytes(src, tag int) ([]byte, int) {
	data, source := c.Recv(src, tag)
	b, ok := data.([]byte)
	if !ok {
		panic(fmt.Sprintf("comm: rank %d expected []byte from %d tag %d, got %T", c.rank, src, tag, data))
	}
	return b, source
}
