// Package comm provides the message-passing runtime the framework is
// written against — the reproduction's stand-in for MPI.
//
// A "process" (rank) is a goroutine executing the same SPMD function; the
// communicator offers the MPI subset waLBerla uses: blocking point-to-point
// send/receive with tag matching, nonblocking sends, the collectives
// Barrier, Bcast, Gather, Allgather, Reduce, Allreduce and Alltoall (built
// on point-to-point messages, binomial trees for the rooted collectives),
// and communicator splitting into subgroups. The communication patterns
// and volumes therefore match a real distributed run, and ranks share no
// data except through messages, keeping the paper's fully distributed
// data structure invariants testable in process.
//
// Message passing is "eager": sends never block (each rank owns an
// unbounded mailbox), receives block until a matching message arrives.
// Messages match on (communicator context, source, tag), so traffic in a
// subcommunicator cannot interfere with the parent's. Per-rank statistics
// (message and byte counts, time blocked in receives) support the %MPI
// accounting of the scaling experiments.
package comm

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// AnySource matches messages from every rank in Recv.
const AnySource = -1

// AnyTag matches every tag in Recv.
const AnyTag = -2

// internalTag marks messages of the collective implementations; user tags
// must be non-negative.
const internalTag = -1000

type message struct {
	ctx    int // communicator context id
	source int // world rank of the sender
	tag    int
	data   any
}

// mailbox is the unbounded receive queue of one world rank.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.pending = append(m.pending, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take removes and returns the first message matching context, source
// (world rank or AnySource) and tag, blocking until one arrives.
func (m *mailbox) take(ctx, source, tag int) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.pending {
			if msg.ctx == ctx &&
				(source == AnySource || msg.source == source) &&
				(tag == AnyTag || msg.tag == tag) {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				return msg
			}
		}
		m.cond.Wait()
	}
}

// world is the shared state of one Run invocation.
type world struct {
	size      int
	mailboxes []*mailbox
}

// Stats accumulates per-rank communication statistics. All communicators
// derived from one rank share the same counters.
type Stats struct {
	// Sends is the number of point-to-point messages sent (including those
	// issued on behalf of collectives).
	Sends int64
	// BytesSent is the estimated payload volume of all sends.
	BytesSent int64
	// RecvWait is the total wall time this rank spent blocked in receives,
	// the numerator of the %MPI metric.
	RecvWait time.Duration
}

// Comm is one rank's handle to a communicator: the world communicator
// created by Run, or a subgroup created by Split. Ranks are relative to
// the communicator (0..Size-1).
type Comm struct {
	w       *world
	group   []int       // world ranks of the members, sorted by comm rank
	toIndex map[int]int // world rank -> comm rank
	rank    int         // this rank's position within group
	ctx     int         // context id isolating this communicator's traffic
	splits  int         // number of Split calls issued on this handle
	stats   *Stats
}

// Run executes f on n ranks, one goroutine per rank, and returns when all
// ranks have finished. A panic on any rank is re-raised on the caller with
// the rank attached.
func Run(n int, f func(c *Comm)) {
	if n <= 0 {
		panic("comm: Run requires at least one rank")
	}
	w := &world{size: n, mailboxes: make([]*mailbox, n)}
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox()
	}
	group := make([]int, n)
	toIndex := make(map[int]int, n)
	for i := range group {
		group[i] = i
		toIndex[i] = i
	}
	var wg sync.WaitGroup
	panics := make(chan string, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					select {
					case panics <- fmt.Sprintf("rank %d: %v", rank, p):
					default:
					}
				}
			}()
			f(&Comm{w: w, group: group, toIndex: toIndex, rank: rank, stats: &Stats{}})
		}(r)
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic("comm: " + p)
	default:
	}
}

// Rank returns this rank's id within the communicator, in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank returns this rank's id in the world communicator.
func (c *Comm) WorldRank() int { return c.group[c.rank] }

// Stats returns the communication statistics accumulated so far (shared
// across all communicators of this rank).
func (c *Comm) Stats() Stats { return *c.stats }

// ResetStats zeroes the statistics counters.
func (c *Comm) ResetStats() { *c.stats = Stats{} }

// Split partitions the communicator into subgroups: ranks passing the
// same color form a new communicator, ordered by (key, parent rank). A
// negative color opts out and receives nil. Collective: every rank of the
// communicator must call Split.
func (c *Comm) Split(color, key int) *Comm {
	c.splits++
	type entry struct{ Color, Key, Rank int }
	gathered := c.Allgather(entry{color, key, c.rank})
	var members []entry
	for _, g := range gathered {
		e := g.(entry)
		if e.Color == color {
			members = append(members, e)
		}
	}
	if color < 0 {
		return nil
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].Key != members[j].Key {
			return members[i].Key < members[j].Key
		}
		return members[i].Rank < members[j].Rank
	})
	group := make([]int, len(members))
	toIndex := make(map[int]int, len(members))
	myRank := -1
	for i, e := range members {
		world := c.group[e.Rank]
		group[i] = world
		toIndex[world] = i
		if e.Rank == c.rank {
			myRank = i
		}
	}
	// Deterministic context id: every member executed the same sequence
	// of Split calls on the same parent, so (parent ctx, split counter,
	// color) agree across the subgroup and differ between sibling groups.
	ctx := (c.ctx*31+c.splits)*1000003 + color + 1
	return &Comm{
		w: c.w, group: group, toIndex: toIndex, rank: myRank,
		ctx: ctx, stats: c.stats,
	}
}

// payloadBytes estimates the wire size of a payload for the statistics.
func payloadBytes(data any) int64 {
	switch d := data.(type) {
	case nil:
		return 0
	case []byte:
		return int64(len(d))
	case []float64:
		return int64(8 * len(d))
	case []int:
		return int64(8 * len(d))
	case []int64:
		return int64(8 * len(d))
	case []int32:
		return int64(4 * len(d))
	case float64, int, int64, uint64:
		return 8
	case int32, uint32, float32:
		return 4
	case bool, int8, uint8:
		return 1
	case string:
		return int64(len(d))
	default:
		return 8 // opaque payloads count as one word
	}
}

// Send delivers data to rank dst with the given non-negative tag. Send is
// asynchronous (eager): it never blocks. The payload is shared, not
// copied; the sender must not modify it afterwards (pack fresh buffers per
// message, as the ghost-layer exchange does).
func (c *Comm) Send(dst, tag int, data any) {
	if tag < 0 {
		panic("comm: user tags must be non-negative")
	}
	c.send(dst, tag, data)
}

func (c *Comm) send(dst, tag int, data any) {
	if dst < 0 || dst >= len(c.group) {
		panic(fmt.Sprintf("comm: rank %d sends to invalid rank %d (size %d)", c.rank, dst, len(c.group)))
	}
	c.stats.Sends++
	c.stats.BytesSent += payloadBytes(data)
	c.w.mailboxes[c.group[dst]].put(message{
		ctx: c.ctx, source: c.WorldRank(), tag: tag, data: data,
	})
}

// Recv blocks until a message from src (or AnySource) with the given tag
// (or AnyTag) arrives on this communicator and returns its payload and
// origin (communicator-relative).
func (c *Comm) Recv(src, tag int) (data any, source int) {
	if tag < 0 && tag != AnyTag {
		panic("comm: user tags must be non-negative")
	}
	return c.recv(src, tag)
}

func (c *Comm) recv(src, tag int) (any, int) {
	worldSrc := AnySource
	if src != AnySource {
		if src < 0 || src >= len(c.group) {
			panic(fmt.Sprintf("comm: rank %d receives from invalid rank %d", c.rank, src))
		}
		worldSrc = c.group[src]
	}
	start := time.Now()
	msg := c.w.mailboxes[c.WorldRank()].take(c.ctx, worldSrc, tag)
	c.stats.RecvWait += time.Since(start)
	return msg.data, c.toIndex[msg.source]
}

// RecvFloat64s is Recv with a typed payload, panicking on type mismatch.
func (c *Comm) RecvFloat64s(src, tag int) ([]float64, int) {
	data, source := c.Recv(src, tag)
	f, ok := data.([]float64)
	if !ok {
		panic(fmt.Sprintf("comm: rank %d expected []float64 from %d tag %d, got %T", c.rank, src, tag, data))
	}
	return f, source
}

// RecvBytes is Recv with a []byte payload, panicking on type mismatch.
func (c *Comm) RecvBytes(src, tag int) ([]byte, int) {
	data, source := c.Recv(src, tag)
	b, ok := data.([]byte)
	if !ok {
		panic(fmt.Sprintf("comm: rank %d expected []byte from %d tag %d, got %T", c.rank, src, tag, data))
	}
	return b, source
}
