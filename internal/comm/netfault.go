package comm

import (
	"fmt"
	"time"
)

// Deterministic frame-layer fault injection for the socket transport,
// mirroring FaultPlan one layer down: where FaultPlan drops or delays
// *messages* above the transport, a NetFaultPlan corrupts the *wire* —
// frames vanish, checksums flip, sockets sever mid-stream, whole
// endpoints fall silent. Every decision is a pure function of (seed,
// directed stream, frame sequence number), so a faulty run over real
// sockets is exactly reproducible regardless of goroutine or kernel
// scheduling.

// NetFaultPlan describes the frame-layer faults to inject into a socket
// transport run.
type NetFaultPlan struct {
	// Seed drives the per-frame drop/corrupt/delay decisions.
	Seed int64
	// Drop is the probability in [0,1] that a data frame's socket write is
	// skipped. The frame stays in the sender's retention ring; the receiver
	// observes a sequence gap (at the next data frame or heartbeat) and
	// forces a reconnect, after which the frame is resent — so drops cost
	// latency, never data.
	Drop float64
	// Corrupt is the probability in [0,1] that a data frame is written
	// with a flipped checksum. The receiver's CRC check rejects it, severs
	// the connection and recovers the frame through the reconnect resend.
	Corrupt float64
	// Delay is the probability in [0,1] that the writer stalls for a
	// pseudo-random duration in (0, MaxDelay] before a data frame.
	Delay float64
	// MaxDelay bounds injected write stalls.
	MaxDelay time.Duration
	// Severs closes directed-pair sockets at chosen frames: the connection
	// From→To is torn down immediately before writing the AtFrame-th data
	// frame (1-based). The transport reconnects with backoff and resends.
	Severs []SeverSpec
	// Refusals reject the first Count connection attempts dialed From→To
	// (the acceptor closes the socket before the handshake completes),
	// exercising the connect-retry backoff path — including at startup.
	Refusals []RefuseSpec
	// BlackHoles silence whole endpoints permanently: from the moment rank
	// Rank has sent AfterFrames data frames, its writes are discarded, its
	// reads ignored, its handshakes refused and its dials suppressed. The
	// silence is only detectable through the stall/accusation machinery,
	// modeling a died-without-a-trace node.
	BlackHoles []HoleSpec
}

// SeverSpec tears down the socket carrying the From→To stream just
// before its AtFrame-th data frame (1-based).
type SeverSpec struct {
	From, To int
	AtFrame  uint64
}

// RefuseSpec rejects the first Count connection attempts of the dialer
// From toward the acceptor To.
type RefuseSpec struct {
	From, To int
	Count    int
}

// HoleSpec silences world rank Rank permanently once it has sent
// AfterFrames data frames (0 silences it from the start).
type HoleSpec struct {
	Rank        int
	AfterFrames uint64
}

// Validate checks the plan against a world of n ranks.
func (p *NetFaultPlan) Validate(n int) error {
	check01 := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("net fault plan: %s fraction %v outside [0,1]", name, v)
		}
		return nil
	}
	if err := check01("drop", p.Drop); err != nil {
		return err
	}
	if err := check01("corrupt", p.Corrupt); err != nil {
		return err
	}
	if err := check01("delay", p.Delay); err != nil {
		return err
	}
	if p.Delay > 0 && p.MaxDelay <= 0 {
		return fmt.Errorf("net fault plan: delay probability %v requires a positive MaxDelay", p.Delay)
	}
	checkRank := func(what string, r int) error {
		if r < 0 || r >= n {
			return fmt.Errorf("net fault plan: %s rank %d outside world of size %d", what, r, n)
		}
		return nil
	}
	for _, s := range p.Severs {
		if err := checkRank("sever", s.From); err != nil {
			return err
		}
		if err := checkRank("sever", s.To); err != nil {
			return err
		}
		if s.From == s.To {
			return fmt.Errorf("net fault plan: sever of the self stream of rank %d", s.From)
		}
		if s.AtFrame == 0 {
			return fmt.Errorf("net fault plan: sever frame numbers are 1-based")
		}
	}
	for _, r := range p.Refusals {
		if err := checkRank("refusal", r.From); err != nil {
			return err
		}
		if err := checkRank("refusal", r.To); err != nil {
			return err
		}
		if r.Count <= 0 {
			return fmt.Errorf("net fault plan: refusal count %d must be positive", r.Count)
		}
	}
	for _, h := range p.BlackHoles {
		if err := checkRank("black-hole", h.Rank); err != nil {
			return err
		}
	}
	return nil
}

// Frame-fault decision sub-streams (disjoint from the message-level
// faultKind* space by construction: separate mixer inputs).
const (
	netFaultKindDrop = 1 + iota
	netFaultKindCorrupt
	netFaultKindDelay
	netFaultKindDelayLen
)

// chance returns a deterministic uniform value in [0,1) for the seq-th
// data frame of the directed stream src→dst under sub-stream kind.
func (p *NetFaultPlan) chance(kind, src, dst int, seq uint64) float64 {
	h := mix64(uint64(p.Seed)<<20 ^ uint64(kind)<<56 ^ uint64(src)<<44 ^ uint64(dst)<<32 ^ seq)
	return float64(h>>11) / float64(1<<53)
}

// dropFrame decides whether the seq-th data frame src→dst is dropped.
func (p *NetFaultPlan) dropFrame(src, dst int, seq uint64) bool {
	return p.Drop > 0 && p.chance(netFaultKindDrop, src, dst, seq) < p.Drop
}

// corruptFrame decides whether the seq-th data frame src→dst is written
// with a flipped checksum.
func (p *NetFaultPlan) corruptFrame(src, dst int, seq uint64) bool {
	return p.Corrupt > 0 && p.chance(netFaultKindCorrupt, src, dst, seq) < p.Corrupt
}

// delayFrame returns the injected write stall before the seq-th data
// frame src→dst (0 = none).
func (p *NetFaultPlan) delayFrame(src, dst int, seq uint64) time.Duration {
	if p.Delay <= 0 || p.chance(netFaultKindDelay, src, dst, seq) >= p.Delay {
		return 0
	}
	return time.Duration(p.chance(netFaultKindDelayLen, src, dst, seq) * float64(p.MaxDelay))
}

// severAt reports whether the socket carrying src→dst must be torn down
// just before its seq-th data frame.
func (p *NetFaultPlan) severAt(src, dst int, seq uint64) bool {
	for _, s := range p.Severs {
		if s.From == src && s.To == dst && s.AtFrame == seq {
			return true
		}
	}
	return false
}

// refusals returns the number of connection attempts to reject for the
// dialer from toward the acceptor to.
func (p *NetFaultPlan) refusals(from, to int) int {
	n := 0
	for _, r := range p.Refusals {
		if r.From == from && r.To == to {
			n += r.Count
		}
	}
	return n
}

// holeAfter returns the black-hole trigger for rank (sent-data-frame
// count at which the endpoint falls silent) and whether one is planned.
func (p *NetFaultPlan) holeAfter(rank int) (uint64, bool) {
	for _, h := range p.BlackHoles {
		if h.Rank == rank {
			return h.AfterFrames, true
		}
	}
	return 0, false
}
