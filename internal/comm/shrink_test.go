package comm

import (
	"errors"
	"testing"
	"time"
)

// TestShrinkDenseRerankingAndTraffic kills one rank of four, shrinks, and
// exercises point-to-point and collective traffic on the survivor
// communicator.
func TestShrinkDenseRerankingAndTraffic(t *testing.T) {
	const dead = 2
	Run(4, func(c *Comm) {
		if c.Rank() == dead {
			c.Retire()
			return
		}
		c.MarkDead(dead)
		c.Recover()
		nc, rankMap := c.Shrink()
		if nc == nil {
			t.Errorf("rank %d: survivor got nil shrunk comm", c.Rank())
			return
		}
		if nc.Size() != 3 {
			t.Errorf("rank %d: shrunk size %d, want 3", c.Rank(), nc.Size())
		}
		want := []int{0, 1, -1, 2}
		for i, m := range rankMap {
			if m != want[i] {
				t.Errorf("rank %d: rankMap[%d] = %d, want %d", c.Rank(), i, m, want[i])
			}
		}
		if got := rankMap[c.Rank()]; got != nc.Rank() {
			t.Errorf("rank %d: shrunk rank %d, rankMap says %d", c.Rank(), nc.Rank(), got)
		}
		if nc.WorldRank() != c.WorldRank() {
			t.Errorf("rank %d: world rank changed to %d", c.Rank(), nc.WorldRank())
		}
		// Ring exchange plus an allreduce on the shrunk communicator.
		next := (nc.Rank() + 1) % nc.Size()
		prev := (nc.Rank() + nc.Size() - 1) % nc.Size()
		if err := nc.SendErr(next, 7, nc.Rank()); err != nil {
			t.Errorf("rank %d: send on shrunk comm: %v", c.Rank(), err)
		}
		got, _, err := nc.RecvErr(prev, 7)
		if err != nil {
			t.Errorf("rank %d: recv on shrunk comm: %v", c.Rank(), err)
		} else if got.(int) != prev {
			t.Errorf("rank %d: ring got %v, want %d", c.Rank(), got, prev)
		}
		sum, err := nc.AllreduceInt64Err(int64(c.WorldRank()), Sum[int64])
		if err != nil {
			t.Errorf("rank %d: allreduce on shrunk comm: %v", c.Rank(), err)
		} else if sum != 0+1+3 {
			t.Errorf("rank %d: allreduce sum %d, want 4", c.Rank(), sum)
		}
	})
}

// TestRecoverCompletesWhenDeathIsLearnedLate has the survivors enter the
// rendezvous before anyone knows a rank died: MarkDead must re-evaluate
// the quorum and release them.
func TestRecoverCompletesWhenDeathIsLearnedLate(t *testing.T) {
	done := make(chan int64, 3)
	Run(3, func(c *Comm) {
		if c.Rank() == 2 {
			time.Sleep(50 * time.Millisecond) // survivors are already waiting
			c.Retire()
			return
		}
		done <- c.Recover()
	})
	close(done)
	n := 0
	for epoch := range done {
		n++
		if epoch != 1 {
			t.Errorf("recover returned epoch %d, want 1", epoch)
		}
	}
	if n != 2 {
		t.Fatalf("%d survivors completed Recover, want 2", n)
	}
}

// TestFailTimeoutDeclaresTimeoutFailure: a silent peer is declared failed
// with a timeout cause once the failure-detection deadline expires.
func TestFailTimeoutDeclaresTimeoutFailure(t *testing.T) {
	RunWithOptions(2, Options{FailTimeout: 50 * time.Millisecond}, func(c *Comm) {
		if c.Rank() == 1 {
			return // silent
		}
		_, _, err := c.RecvErr(1, 3)
		var rfe *RankFailedError
		if !errors.As(err, &rfe) {
			t.Errorf("recv from silent rank: got %v, want RankFailedError", err)
			return
		}
		if rfe.Rank != 1 {
			t.Errorf("accused rank %d, want 1", rfe.Rank)
		}
		if !rfe.TimedOut() {
			t.Errorf("failure %v not marked as timeout", rfe)
		}
	})
}

// TestHangFiresSilently: an injected hang panics the victim without
// declaring a failure — the world must find out by timeout.
func TestHangFiresSilently(t *testing.T) {
	opts := Options{Faults: &FaultPlan{Hangs: []CrashSpec{{Rank: 1, Step: 0}}}}
	RunWithOptions(2, opts, func(c *Comm) {
		if c.Rank() == 1 {
			defer func() {
				if r := recover(); r == nil {
					t.Error("hang did not fire")
				} else if h, ok := r.(Hang); !ok || h.Rank != 1 {
					t.Errorf("hang panic value %v", r)
				}
				if c.Failed() != nil {
					t.Errorf("hang declared a failure: %v", c.Failed())
				}
			}()
			c.SetStep(0)
			return
		}
		c.SetStep(0)
		if c.Failed() != nil {
			t.Errorf("survivor sees declared failure: %v", c.Failed())
		}
	})
}

// TestDelayedTimersStoppedAtTeardown arms a plan that delays every
// message far beyond the run's lifetime and asserts no delayed-delivery
// timer survives the Run — the leak fixed by the timer registry.
func TestDelayedTimersStoppedAtTeardown(t *testing.T) {
	checked := false
	testHookWorld = func(w *world) {
		if n := w.pendingDelayedTimers(); n != 0 {
			t.Errorf("%d delayed-delivery timers pending after Run", n)
		}
		if !w.timersClosed {
			t.Error("timer registry not closed after Run")
		}
		checked = true
	}
	defer func() { testHookWorld = nil }()
	opts := Options{Faults: &FaultPlan{Seed: 5, DelayProb: 1, MaxDelay: time.Minute}}
	RunWithOptions(2, opts, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 4; i++ {
				if err := c.SendErr(1, 9, i); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		}
	})
	if !checked {
		t.Fatal("teardown hook did not run")
	}
}

// TestDelayedDeliveryShedOnRecover: a message in delayed flight when the
// world recovers must never be delivered afterwards.
func TestDelayedDeliveryShedOnRecover(t *testing.T) {
	opts := Options{Faults: &FaultPlan{Seed: 11, DelayProb: 1, MaxDelay: 150 * time.Millisecond}}
	RunWithOptions(2, opts, func(c *Comm) {
		if c.Rank() == 0 {
			if err := c.SendErr(1, 4, 42); err != nil {
				t.Errorf("send: %v", err)
			}
		}
		c.Recover()
		if c.Rank() == 1 {
			_, _, err := c.RecvWithin(0, 4, 300*time.Millisecond)
			var rfe *RankFailedError
			if !errors.As(err, &rfe) || !rfe.TimedOut() {
				t.Errorf("delayed pre-recovery message was delivered (err=%v)", err)
			}
		}
	})
}
