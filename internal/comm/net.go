package comm

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"walberla/internal/telemetry"
)

// Socket transport: the same communicator semantics as the in-process
// backend, but every cross-rank message crosses a real stream socket as a
// checksummed, sequence-numbered frame (frame.go). Ranks remain goroutines
// of one process — the data plane is real (loopback TCP or unix-domain
// sockets, kernel buffering, partial reads, connection loss), while the
// recovery control plane (Recover, MarkDead, the epoch counter) stays
// shared memory, modeling the out-of-band runtime service a multi-process
// deployment would use. See docs/TRANSPORT.md.
//
// Topology: one persistent duplex connection per rank pair; the lower rank
// dials, the higher rank accepts. Connections start down — senders never
// wait for a connection: frames are retained in a per-connection ring and
// replayed when the link (re)establishes, so "connect refused at startup",
// a mid-run sever and an injected drop all ride the same idempotent-resend
// path. Failure detection is connection-level: heartbeats and read
// deadlines spot a silent peer, reconnects back off exponentially, and a
// peer silent past FailTimeout is accused through the ordinary
// RankFailedError machinery so buddy restore + Shrink work unchanged.

// errTransportClosed aborts transport-internal waits at shutdown.
var errTransportClosed = &RankFailedError{Rank: -1, Cause: "transport closed"}

// emptyF64 marks a zero-length typed float64 payload after decode (the
// f64 field must be non-nil to select the typed receive path).
var emptyF64 = make([]float64, 0)

// opaqueKey identifies one in-flight opaque payload (src and dst are
// world ranks, seq the data-frame sequence of the directed stream).
type opaqueKey struct {
	src, dst int
	seq      uint64
}

// netTransport is the socket backend: one endpoint (listener + connection
// set) per world rank, all inside this process.
type netTransport struct {
	w         *world
	opts      NetOptions
	endpoints []*netEndpoint
	addrs     []string // resolved listen address per rank

	// opaque holds payloads the wire cannot carry (arbitrary interface
	// values of collectives and migration). The frame travels empty and the
	// receiver resolves the value here by (src, dst, seq); entries die with
	// the retained frame on ack. Valid precisely because both endpoints
	// share this process (docs/TRANSPORT.md, "single-process scope").
	opaque sync.Map

	closed atomic.Bool
	done   chan struct{}
	wg     sync.WaitGroup
	tmpDir string // owned unix-socket directory, "" for tcp/pinned addrs
}

// netCounters are one endpoint's lifetime statistics (NetStats mirrors
// them). All atomics: they are bumped from driver, supervisor and reader
// goroutines alike.
type netCounters struct {
	framesSent, framesRecv              atomic.Int64
	bytesSent, bytesRecv                atomic.Int64
	heartbeats, connects, reconnects    atomic.Int64
	resent, dups, gaps, checksumErrs    atomic.Int64
	accusals                            atomic.Int64
	injDrops, injCorrupts               atomic.Int64
	injDelays, injSevers                atomic.Int64
}

// netEndpoint is one world rank's side of the transport.
type netEndpoint struct {
	t     *netTransport
	rank  int
	ln    net.Listener
	conns []*netConn // by peer world rank, nil at own index

	// dead marks the rank permanently removed (MarkDead): its listener is
	// closed and every connection involving it is shut for good.
	dead atomic.Bool

	// Black-hole injection: once the endpoint has sent holeAfter data
	// frames, it falls silent — writes discarded, inbound frames drained
	// but ignored, dials suppressed, accepts refused. dataSent counts only
	// first transmissions from the rank's driver goroutine, so the trigger
	// point is deterministic.
	holePlanned bool
	holeAfter   uint64
	holed       atomic.Bool
	dataSent    atomic.Uint64

	stats netCounters
	tel   atomic.Pointer[netTel]
}

func (ep *netEndpoint) isHoled() bool { return ep.holed.Load() }

// noteDataSend advances the deterministic black-hole trigger.
func (ep *netEndpoint) noteDataSend() {
	n := ep.dataSent.Add(1)
	if ep.holePlanned && n > ep.holeAfter && !ep.holed.Load() {
		ep.holed.Store(true)
		ep.event(telemetry.PhaseNetFault, ep.rank)
	}
}

// snapshot copies the endpoint counters into the public NetStats form.
func (ep *netEndpoint) snapshot() NetStats {
	s := &ep.stats
	return NetStats{
		FramesSent: s.framesSent.Load(), FramesRecv: s.framesRecv.Load(),
		BytesSent: s.bytesSent.Load(), BytesRecv: s.bytesRecv.Load(),
		Heartbeats: s.heartbeats.Load(),
		Connects:   s.connects.Load(), Reconnects: s.reconnects.Load(),
		ResentFrames: s.resent.Load(), DupFrames: s.dups.Load(), Gaps: s.gaps.Load(),
		ChecksumErrors: s.checksumErrs.Load(), Accusals: s.accusals.Load(),
		InjectedDrops: s.injDrops.Load(), InjectedCorrupts: s.injCorrupts.Load(),
		InjectedDelays: s.injDelays.Load(), InjectedSevers: s.injSevers.Load(),
	}
}

// newNetTransport builds listeners, connection state and background
// goroutines for a world of w.size ranks. All listeners exist before any
// rank runs, so a dial hitting "connection refused" means fault injection
// (or a dead rank), not a startup race — though the dialer retries with
// backoff either way.
func newNetTransport(w *world, opts NetOptions) (*netTransport, error) {
	opts = opts.withDefaults()
	if err := opts.validate(w.size); err != nil {
		return nil, err
	}
	t := &netTransport{
		w: w, opts: opts, done: make(chan struct{}),
		endpoints: make([]*netEndpoint, w.size),
		addrs:     make([]string, w.size),
	}
	if opts.Network == "unix" && len(opts.Addrs) == 0 {
		dir, err := os.MkdirTemp("", "wbnet")
		if err != nil {
			return nil, fmt.Errorf("socket transport: %w", err)
		}
		t.tmpDir = dir
	}
	fail := func(err error) (*netTransport, error) {
		for _, ep := range t.endpoints {
			if ep != nil && ep.ln != nil {
				ep.ln.Close()
			}
		}
		if t.tmpDir != "" {
			os.RemoveAll(t.tmpDir)
		}
		return nil, err
	}
	for r := 0; r < w.size; r++ {
		var addr string
		switch {
		case len(opts.Addrs) == w.size:
			addr = opts.Addrs[r]
		case opts.Network == "tcp":
			addr = "127.0.0.1:0"
		default:
			addr = filepath.Join(t.tmpDir, fmt.Sprintf("rank-%d.sock", r))
		}
		ln, err := net.Listen(opts.Network, addr)
		if err != nil {
			return fail(fmt.Errorf("socket transport: rank %d listen %s %q: %w", r, opts.Network, addr, err))
		}
		ep := &netEndpoint{t: t, rank: r, ln: ln, conns: make([]*netConn, w.size)}
		if p := opts.Faults; p != nil {
			if after, ok := p.holeAfter(r); ok {
				ep.holePlanned, ep.holeAfter = true, after
			}
		}
		t.endpoints[r] = ep
		t.addrs[r] = ln.Addr().String()
	}
	now := time.Now().UnixNano()
	for r, ep := range t.endpoints {
		for p := range t.endpoints {
			if p == r {
				continue
			}
			c := &netConn{
				ep: ep, peer: p, dialer: r < p, down: true,
				ring:     make([]retainedFrame, opts.RetainFrames),
				recvBufs: make(map[recvKey]*recvRing),
			}
			c.cond = sync.NewCond(&c.mu)
			// A fresh connection has seen no silence yet: the accusation
			// clock starts now, not at the unix epoch.
			c.lastIn.Store(now)
			if pl := opts.Faults; pl != nil && !c.dialer {
				c.refusedLeft.Store(int64(pl.refusals(p, r)))
			}
			ep.conns[p] = c
		}
	}
	for _, ep := range t.endpoints {
		t.wg.Add(1)
		go ep.acceptLoop()
		for _, c := range ep.conns {
			if c != nil {
				t.wg.Add(1)
				go c.supervise()
			}
		}
	}
	return t, nil
}

func (t *netTransport) name() string { return t.opts.Network }

// bail is the abort predicate of transport-internal waits (retention-ring
// backpressure, mailbox depth bounds): a declared rank failure or the
// transport shutting down unblocks them.
func (t *netTransport) bail() error {
	if t.closed.Load() {
		return errTransportClosed
	}
	return t.w.failErr()
}

// deliver routes one stamped message. Self-sends skip the wire (as a real
// MPI implementation short-circuits rank-local traffic); everything else
// becomes a data frame on the pair's connection.
func (t *netTransport) deliver(src, dst int, msg message) (time.Duration, error) {
	if src == dst {
		return t.w.mailboxes[dst].put(msg, t.w.failErr)
	}
	if t.endpoints[src].dead.Load() || t.endpoints[dst].dead.Load() {
		if err := t.w.failErr(); err != nil {
			return 0, err
		}
		return 0, &RankFailedError{Rank: dst, Cause: fmt.Sprintf("send over %s transport to retired rank", t.opts.Network)}
	}
	return t.endpoints[src].conns[dst].send(msg)
}

// noteDead shuts every connection involving a permanently dead rank: its
// own endpoint stops accepting and dialing, survivors stop retrying
// toward it and shed retained frames (nobody will ack them).
func (t *netTransport) noteDead(worldRank int) {
	if worldRank < 0 || worldRank >= len(t.endpoints) {
		return
	}
	ep := t.endpoints[worldRank]
	if ep.dead.Swap(true) {
		return
	}
	ep.ln.Close()
	for _, c := range ep.conns {
		if c != nil {
			c.permanentlyDown()
		}
	}
	for r, other := range t.endpoints {
		if r == worldRank {
			continue
		}
		if c := other.conns[worldRank]; c != nil {
			c.permanentlyDown()
		}
	}
}

// onFailure wakes senders blocked on full retention rings so they observe
// the declared failure (the socket analogue of the mailbox wake).
func (t *netTransport) onFailure() {
	for _, ep := range t.endpoints {
		for _, c := range ep.conns {
			if c != nil {
				c.mu.Lock()
				c.cond.Broadcast()
				c.mu.Unlock()
			}
		}
	}
}

// shutdown tears the transport down after the run: close listeners and
// sockets, unblock every internal wait, join all background goroutines,
// remove the unix-socket directory.
func (t *netTransport) shutdown() {
	if t.closed.Swap(true) {
		return
	}
	close(t.done)
	for _, ep := range t.endpoints {
		ep.ln.Close()
	}
	for _, ep := range t.endpoints {
		for _, c := range ep.conns {
			if c != nil {
				c.permanentlyDown()
			}
		}
	}
	// Readers blocked depositing into a bounded mailbox poll bail; wake
	// them so they see the closed flag.
	for _, m := range t.w.mailboxes {
		m.wake()
	}
	t.wg.Wait()
	if t.tmpDir != "" {
		os.RemoveAll(t.tmpDir)
	}
}

// acceptLoop admits inbound connections for one endpoint until the
// listener closes (shutdown or MarkDead).
func (ep *netEndpoint) acceptLoop() {
	t := ep.t
	defer t.wg.Done()
	for {
		sock, err := ep.ln.Accept()
		if err != nil {
			if t.closed.Load() || ep.dead.Load() {
				return
			}
			select {
			case <-t.done:
				return
			case <-time.After(time.Millisecond):
				continue
			}
		}
		t.wg.Add(1)
		go ep.handleAccept(sock)
	}
}

// handleAccept runs the acceptor's half of the connection handshake: read
// the dialer's hello (which carries how far its inbound stream got), apply
// refusal/black-hole/death policy, answer with a welcome carrying our own
// receive progress, then install the socket.
func (ep *netEndpoint) handleAccept(sock net.Conn) {
	t := ep.t
	defer t.wg.Done()
	sock.SetDeadline(time.Now().Add(4 * t.opts.StallTimeout))
	var s frameScratch
	h, _, err := readFrame(sock, t.opts.MaxFrameBytes, &s)
	if err != nil || h.kind != frameHello {
		sock.Close()
		return
	}
	src := int(h.source)
	// Only the lower rank of a pair dials, so a valid hello names a lower
	// rank; anything else lost framing or violates the topology.
	if src < 0 || src >= len(ep.conns) || src == ep.rank || ep.conns[src] == nil || ep.conns[src].dialer {
		sock.Close()
		return
	}
	c := ep.conns[src]
	if ep.isHoled() || ep.dead.Load() || t.endpoints[src].dead.Load() || t.closed.Load() {
		sock.Close()
		return
	}
	// Injected connection refusal: drop the socket before completing the
	// handshake, exactly like a peer whose listener is not up yet.
	if c.refusedLeft.Add(-1) >= 0 {
		sock.Close()
		return
	}
	var hdr [frameHeaderLen]byte
	encodeFrameHeader(&hdr, frameHeader{
		kind: frameWelcome, ack: c.lastRecv.Load(),
		epoch: uint64(t.w.epoch.Load()), source: int32(ep.rank),
	}, nil)
	if _, err := sock.Write(hdr[:]); err != nil {
		sock.Close()
		return
	}
	sock.SetDeadline(time.Time{})
	c.install(sock, h.ack)
}

// putNet is the socket reader's mailbox deposit: identical to put except
// delivery is epoch-gated under the mailbox lock — a frame sent before a
// recovery must not outlive the recovery purge. finishRecoveryLocked
// advances the epoch before purging under this same lock, so the check
// here cannot race the purge. The per-(ctx, source, tag) pending count
// after the push is returned so the reader can judge whether its rotation
// buffers are draining (see recvRing).
func (m *mailbox) putNet(msg message, w *world, epoch int64, bail func() error) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.maxDepth > 0 && m.count >= m.maxDepth {
		if epoch < w.epoch.Load() {
			return 0, nil
		}
		if err := bail(); err != nil {
			return 0, err
		}
		m.cond.Wait()
	}
	if epoch < w.epoch.Load() {
		return 0, nil
	}
	m.seq++
	msg.seq = m.seq
	k := mkey{msg.ctx, msg.source, msg.tag}
	q := m.queues[k]
	if q == nil {
		q = &queue{}
		m.queues[k] = q
	}
	q.push(msg)
	m.count++
	if m.count > m.highWater {
		m.highWater = m.count
	}
	m.cond.Broadcast()
	return len(q.msgs) - q.head, nil
}
