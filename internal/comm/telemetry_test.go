package comm

import (
	"sync"
	"testing"
	"time"

	"walberla/internal/telemetry"
)

func TestSetTelemetryRecordsTraffic(t *testing.T) {
	trace := telemetry.NewTrace()
	var mu sync.Mutex
	regs := map[int]*telemetry.Registry{}
	lanes := map[int]*telemetry.Lane{}

	Run(2, func(c *Comm) {
		tr := trace.NewTracer(c.Rank(), 0, 64)
		reg := telemetry.NewRegistry()
		c.SetTelemetry(tr.Driver(), reg)
		c.SetTelemetryStep(5)
		mu.Lock()
		regs[c.Rank()] = reg
		lanes[c.Rank()] = tr.Driver()
		mu.Unlock()

		// Traffic on a derived communicator must hit the same handles.
		sub := c.Split(0, c.Rank())
		if c.Rank() == 0 {
			sub.Send(1, 7, []float64{1, 2, 3})
		} else {
			sub.RecvFloat64s(0, 7)
		}
		c.Barrier()
	})

	for rank := 0; rank < 2; rank++ {
		snap := regs[rank].Snapshot(rank)
		if snap.Counter("comm.sends") == 0 {
			t.Fatalf("rank %d: no sends counted (collectives should count)", rank)
		}
		var sends, recvs, barriers int
		lanes[rank].Each(func(s telemetry.Span) {
			switch s.Phase {
			case telemetry.PhaseSend:
				sends++
				if s.Step != 5 {
					t.Fatalf("rank %d: send span step = %d, want 5", rank, s.Step)
				}
			case telemetry.PhaseRecv:
				recvs++
			case telemetry.PhaseBarrier:
				barriers++
			}
		})
		if sends == 0 || recvs == 0 {
			t.Fatalf("rank %d: spans sends=%d recvs=%d", rank, sends, recvs)
		}
		if barriers != 1 {
			t.Fatalf("rank %d: barrier spans = %d, want 1", rank, barriers)
		}
	}
	if regs[0].Snapshot(0).Counter("comm.bytes_sent") == 0 {
		t.Fatal("rank 0: no bytes counted")
	}
}

func TestTelemetryFaultInstants(t *testing.T) {
	plan := &FaultPlan{Seed: 42, Drop: 1.0}
	var lane *telemetry.Lane
	var reg *telemetry.Registry
	RunWithOptions(2, Options{Faults: plan, RecvTimeout: 50 * time.Millisecond}, func(c *Comm) {
		if c.Rank() == 0 {
			tr := telemetry.NewTracer(0, 0, 64)
			r := telemetry.NewRegistry()
			c.SetTelemetry(tr.Driver(), r)
			lane, reg = tr.Driver(), r
			c.SendErr(1, 3, []float64{1}) //nolint:errcheck
			// The drop means rank 1 never replies; the timeout declares a
			// failure, visible as an instant event.
			c.RecvErr(1, 4) //nolint:errcheck
		}
		// Rank 1 sends nothing and exits.
	})
	if reg.Snapshot(0).Counter("comm.dropped") != 1 {
		t.Fatalf("dropped = %d, want 1", reg.Snapshot(0).Counter("comm.dropped"))
	}
	if reg.Snapshot(0).Counter("comm.timeouts") != 1 {
		t.Fatalf("timeouts = %d, want 1", reg.Snapshot(0).Counter("comm.timeouts"))
	}
	var drops, failed int
	lane.Each(func(s telemetry.Span) {
		switch s.Phase {
		case telemetry.PhaseFaultDrop:
			drops++
		case telemetry.PhaseRankFailed:
			failed++
		}
	})
	if drops != 1 || failed != 1 {
		t.Fatalf("instants: drops=%d failed=%d, want 1/1", drops, failed)
	}
}
