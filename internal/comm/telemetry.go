package comm

import (
	"time"

	"walberla/internal/telemetry"
)

// Telemetry wiring of the communication runtime. A rank attaches a span
// lane and a metrics registry with SetTelemetry; derived communicators
// (Split, Shrink) inherit the attachment like they share Stats. Without
// an attachment every recording site below sees nil handles and costs
// one branch (the package telemetry nil fast path), which keeps the
// zero-allocation guarantees of the ghost exchange intact either way:
// spans land in preallocated rings, counter updates are single atomics.

// commTel bundles the pre-registered telemetry handles of one rank.
type commTel struct {
	lane     *telemetry.Lane
	step     int // current simulation step, stamps spans
	sends    *telemetry.Counter
	bytes    *telemetry.Counter
	dropped  *telemetry.Counter
	delayed  *telemetry.Counter
	timeouts *telemetry.Counter
	recvWait *telemetry.Histogram
	bpWait   *telemetry.Histogram
}

// SetTelemetry attaches span tracing and metrics to this rank's
// communication: sends, receives (including nonblocking completions and
// the point-to-point traffic of collectives), barriers, fault-injection
// events and declared rank failures. lane must be owned by this rank's
// driver goroutine (single-writer); nil lane or registry disables the
// respective half. The attachment is shared with every communicator
// already derived from this one and created afterwards.
func (c *Comm) SetTelemetry(lane *telemetry.Lane, reg *telemetry.Registry) {
	if lane == nil && reg == nil {
		c.tel = nil
		return
	}
	c.tel = &commTel{
		lane:     lane,
		sends:    reg.Counter("comm.sends"),
		bytes:    reg.Counter("comm.bytes_sent"),
		dropped:  reg.Counter("comm.dropped"),
		delayed:  reg.Counter("comm.delayed"),
		timeouts: reg.Counter("comm.timeouts"),
		recvWait: reg.Histogram("comm.recv_wait"),
		bpWait:   reg.Histogram("comm.backpressure_wait"),
	}
}

// SetTelemetryStep stamps subsequent communication spans with the given
// simulation step. Nil-safe (no telemetry attached).
func (c *Comm) SetTelemetryStep(step int) {
	if c.tel != nil {
		c.tel.step = step
	}
}

// telLane returns the attached span lane (nil when untraced).
func (c *Comm) telLane() *telemetry.Lane {
	if c.tel == nil {
		return nil
	}
	return c.tel.lane
}

// start stamps a span start on the attached lane (0 when untraced).
func (t *commTel) start() int64 {
	if t == nil {
		return 0
	}
	return t.lane.Start()
}

// sendStart counts one send attempt (delivered, dropped or delayed alike,
// matching Stats.Sends) and stamps the span start.
func (t *commTel) sendStart(nb int64) int64 {
	if t == nil {
		return 0
	}
	t.sends.Inc()
	t.bytes.Add(nb)
	return t.lane.Start()
}

// sendDone records the span of one delivered send toward worldDst,
// including any backpressure wait on the destination mailbox.
func (t *commTel) sendDone(worldDst int, start int64, waited time.Duration) {
	if t == nil {
		return
	}
	if waited > 0 {
		t.bpWait.Observe(waited)
	}
	t.lane.Span(telemetry.PhaseSend, t.step, int32(worldDst), start)
}

// telRecv records one completed (or failed) receive from worldSrc.
func (t *commTel) recv(worldSrc int, start int64, waited time.Duration, timedOut bool, accused int) {
	if t == nil {
		return
	}
	t.recvWait.Observe(waited)
	t.lane.Span(telemetry.PhaseRecv, t.step, int32(worldSrc), start)
	if timedOut {
		t.timeouts.Inc()
		t.lane.Instant(telemetry.PhaseRankFailed, t.step, int32(accused))
	}
}

// telDrop records a send consumed by drop injection.
func (t *commTel) drop(worldDst int) {
	if t == nil {
		return
	}
	t.dropped.Inc()
	t.lane.Instant(telemetry.PhaseFaultDrop, t.step, int32(worldDst))
}

// telDelay records a send deferred by delay injection.
func (t *commTel) delay(worldDst int) {
	if t == nil {
		return
	}
	t.delayed.Inc()
	t.lane.Instant(telemetry.PhaseFaultDelay, t.step, int32(worldDst))
}
