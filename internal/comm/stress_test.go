package comm

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// Randomized all-to-all messaging: every rank sends a deterministic
// pseudo-random schedule of messages and verifies the full set it
// receives — catches tag/source matching races under load.
func TestRandomMessagingStress(t *testing.T) {
	const n = 6
	const messagesPerRank = 200
	Run(n, func(c *Comm) {
		r := rand.New(rand.NewSource(int64(1000 + c.Rank())))
		type plan struct{ dst, tag, value int }
		plans := make([]plan, messagesPerRank)
		for i := range plans {
			plans[i] = plan{
				dst:   r.Intn(n),
				tag:   r.Intn(4),
				value: c.Rank()*1000000 + i,
			}
		}
		// Every rank reconstructs every other rank's plan (same seeds) to
		// know exactly what to expect.
		expect := map[int]int{} // value -> count expected at this rank
		for src := 0; src < n; src++ {
			rs := rand.New(rand.NewSource(int64(1000 + src)))
			for i := 0; i < messagesPerRank; i++ {
				dst := rs.Intn(n)
				rs.Intn(4) // tag
				if dst == c.Rank() {
					expect[src*1000000+i]++
				}
			}
		}
		for _, p := range plans {
			c.Send(p.dst, p.tag, p.value)
		}
		for i := 0; i < len(expect); i++ {
			v, _ := c.Recv(AnySource, AnyTag)
			val := v.(int)
			if expect[val] == 0 {
				t.Errorf("rank %d received unexpected value %d", c.Rank(), val)
				return
			}
			expect[val]--
		}
		for val, cnt := range expect {
			if cnt != 0 {
				t.Errorf("rank %d missing %d copies of %d", c.Rank(), cnt, val)
			}
		}
	})
}

// Repeated interleaved collectives must neither deadlock nor cross-match
// across iterations.
func TestCollectiveSequenceStress(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 9, 17} {
		Run(n, func(c *Comm) {
			for round := 0; round < 25; round++ {
				sum := c.AllreduceInt64(int64(c.Rank()+round), Sum[int64])
				want := int64(n*(n-1)/2 + n*round)
				if sum != want {
					t.Errorf("n=%d round %d: sum %d, want %d", n, round, sum, want)
					return
				}
				root := round % n
				got := c.Bcast(root, sumIfRoot(c, root, round)).(int)
				if got != root*100+round {
					t.Errorf("n=%d round %d: bcast %d, want %d", n, round, got, root*100+round)
					return
				}
				all := c.Allgather(c.Rank())
				for r := 0; r < n; r++ {
					if all[r].(int) != r {
						t.Errorf("n=%d round %d: allgather[%d] = %v", n, round, r, all[r])
						return
					}
				}
				c.Barrier()
			}
		})
	}
}

func sumIfRoot(c *Comm, root, round int) any {
	if c.Rank() == root {
		return root*100 + round
	}
	return nil
}

// Overlapping sends from many ranks to one receiver preserve per-sender
// FIFO order.
func TestPerSenderOrderingUnderLoad(t *testing.T) {
	const n = 8
	const k = 100
	Run(n, func(c *Comm) {
		if c.Rank() == 0 {
			next := make([]int, n)
			for i := 0; i < (n-1)*k; i++ {
				v, src := c.Recv(AnySource, 1)
				if v.(int) != next[src] {
					t.Errorf("from %d: got %d, want %d", src, v.(int), next[src])
					return
				}
				next[src]++
			}
		} else {
			for i := 0; i < k; i++ {
				c.Send(0, 1, i)
			}
		}
	})
}

// A chain of dependent reductions across subgroup-like patterns using raw
// p2p: pipeline through all ranks.
func TestPipelineChain(t *testing.T) {
	const n = 10
	var final int64
	Run(n, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 2, int64(1))
		} else {
			v, _ := c.Recv(c.Rank()-1, 2)
			acc := v.(int64) + int64(c.Rank())
			if c.Rank() < n-1 {
				c.Send(c.Rank()+1, 2, acc)
			} else {
				atomic.StoreInt64(&final, acc)
			}
		}
	})
	if want := int64(n*(n-1)/2 + 1); final != want {
		t.Errorf("pipeline result %d, want %d", final, want)
	}
}

func TestReduceNonCommutativeOrderIndependence(t *testing.T) {
	// Max reduction with distinct values: result independent of tree shape.
	for _, n := range []int{2, 7, 16, 31} {
		Run(n, func(c *Comm) {
			got := c.AllreduceFloat64(float64((c.Rank()*7919)%n), Max[float64])
			var want float64
			for r := 0; r < n; r++ {
				if v := float64((r * 7919) % n); v > want {
					want = v
				}
			}
			if got != want {
				t.Errorf("n=%d: max %v, want %v", n, got, want)
			}
		})
	}
}
