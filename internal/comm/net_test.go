package comm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"walberla/internal/testutil"
)

// fastNet returns socket-transport options tuned for tests: aggressive
// heartbeats so stall detection and reconnects resolve in milliseconds.
func fastNet() *NetOptions {
	return &NetOptions{HeartbeatEvery: 2 * time.Millisecond}
}

// TestNetTransportRing pushes typed float64 traffic around a ring over
// unix sockets and checks values, transport identity and frame counters.
func TestNetTransportRing(t *testing.T) {
	testutil.CheckLeaks(t)
	const n, steps = 4, 50
	RunWithOptions(n, Options{Net: fastNet()}, func(c *Comm) {
		if got := c.TransportName(); got != "unix" {
			t.Errorf("TransportName = %q, want unix", got)
		}
		right := (c.Rank() + 1) % n
		left := (c.Rank() + n - 1) % n
		for step := 0; step < steps; step++ {
			// Fresh buffer per message: like Send, the payload is shared
			// with the runtime until delivered (and retained for resend), so
			// only a protocol like the ghost exchange's double-buffer
			// ownership may reuse buffers.
			buf := make([]float64, 8)
			for i := range buf {
				buf[i] = float64(c.Rank()*1000 + step + i)
			}
			if err := c.SendFloat64s(right, 7, buf); err != nil {
				t.Errorf("rank %d send: %v", c.Rank(), err)
				return
			}
			got, src := c.RecvFloat64s(left, 7)
			if src != left || len(got) != len(buf) {
				t.Errorf("rank %d: got %d floats from %d", c.Rank(), len(got), src)
				return
			}
			for i, v := range got {
				if want := float64(left*1000 + step + i); v != want {
					t.Errorf("rank %d step %d[%d]: got %v want %v", c.Rank(), step, i, v, want)
					return
				}
			}
		}
		stats, ok := c.NetStats()
		if !ok {
			t.Error("NetStats not available on socket transport")
			return
		}
		if stats.FramesSent < steps || stats.FramesRecv < steps {
			t.Errorf("rank %d: frames sent/recv %d/%d, want >= %d", c.Rank(), stats.FramesSent, stats.FramesRecv, steps)
		}
		if stats.Connects == 0 {
			t.Errorf("rank %d: no connects recorded", c.Rank())
		}
	})
}

// TestNetTransportTCP runs the same communicator semantics over loopback
// TCP instead of unix sockets.
func TestNetTransportTCP(t *testing.T) {
	testutil.CheckLeaks(t)
	RunWithOptions(3, Options{Net: &NetOptions{Network: "tcp", HeartbeatEvery: 2 * time.Millisecond}}, func(c *Comm) {
		if got := c.TransportName(); got != "tcp" {
			t.Errorf("TransportName = %q, want tcp", got)
		}
		sum := c.AllreduceInt64(int64(c.Rank()), func(a, b int64) int64 { return a + b })
		if sum != 3 {
			t.Errorf("rank %d: allreduce sum = %d, want 3", c.Rank(), sum)
		}
	})
}

// TestNetTransportPayloadKinds exercises every wire encoding: nil
// (barrier), bytes, int64 slices, scalars and opaque struct payloads
// (collectives gather structs).
func TestNetTransportPayloadKinds(t *testing.T) {
	type opaque struct {
		Rank int
		Name string
	}
	const n = 3
	RunWithOptions(n, Options{Net: fastNet()}, func(c *Comm) {
		c.Barrier()
		next := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		c.Send(next, 1, []byte{byte(c.Rank()), 0xab})
		c.Send(next, 2, []int64{int64(c.Rank()), -7})
		c.Send(next, 3, int64(c.Rank()*11))
		c.Send(next, 4, c.Rank()*13)
		c.Send(next, 5, float64(c.Rank())+0.5)
		c.Send(next, 6, opaque{Rank: c.Rank(), Name: "hello"})

		if b, _ := c.RecvBytes(prev, 1); b[0] != byte(prev) || b[1] != 0xab {
			t.Errorf("rank %d: bad []byte payload %v", c.Rank(), b)
		}
		if v, _ := c.Recv(prev, 2); v.([]int64)[0] != int64(prev) {
			t.Errorf("rank %d: bad []int64 payload %v", c.Rank(), v)
		}
		if v, _ := c.Recv(prev, 3); v.(int64) != int64(prev*11) {
			t.Errorf("rank %d: bad int64 payload %v", c.Rank(), v)
		}
		if v, _ := c.Recv(prev, 4); v.(int) != prev*13 {
			t.Errorf("rank %d: bad int payload %v", c.Rank(), v)
		}
		if v, _ := c.Recv(prev, 5); v.(float64) != float64(prev)+0.5 {
			t.Errorf("rank %d: bad float64 payload %v", c.Rank(), v)
		}
		if v, _ := c.Recv(prev, 6); v.(opaque) != (opaque{Rank: prev, Name: "hello"}) {
			t.Errorf("rank %d: bad opaque payload %+v", c.Rank(), v)
		}
		gathered := c.Allgather(opaque{Rank: c.Rank(), Name: "g"})
		for r, g := range gathered {
			if g.(opaque).Rank != r {
				t.Errorf("rank %d: allgather[%d] = %+v", c.Rank(), r, g)
			}
		}
		c.Barrier()
	})
}

// TestNetTransportSplitTraffic checks that subcommunicator traffic is
// isolated on the wire exactly as in process (contexts travel in the
// frame header).
func TestNetTransportSplitTraffic(t *testing.T) {
	RunWithOptions(4, Options{Net: fastNet()}, func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		sum := sub.AllreduceInt64(int64(c.Rank()), func(a, b int64) int64 { return a + b })
		want := int64(0 + 2)
		if c.Rank()%2 == 1 {
			want = 1 + 3
		}
		if sum != want {
			t.Errorf("rank %d: subgroup sum = %d, want %d", c.Rank(), sum, want)
		}
	})
}

// exerciseFaultyNet runs steady ring traffic under a frame-fault plan and
// asserts every value still arrives intact and in order — transient wire
// faults must be fully absorbed by retention, reconnect and resend.
func exerciseFaultyNet(t *testing.T, n, steps int, plan *NetFaultPlan, check func(r int, all []NetStats)) {
	t.Helper()
	opts := fastNet()
	opts.Faults = plan
	statsMu := sync.Mutex{}
	all := make([]NetStats, n)
	RunWithOptions(n, Options{Net: opts, FailTimeout: 20 * time.Second}, func(c *Comm) {
		right := (c.Rank() + 1) % n
		left := (c.Rank() + n - 1) % n
		for step := 0; step < steps; step++ {
			buf := make([]float64, 4)
			for i := range buf {
				buf[i] = float64(c.Rank()*100000 + step*10 + i)
			}
			if err := c.SendFloat64s(right, 9, buf); err != nil {
				t.Errorf("rank %d send: %v", c.Rank(), err)
				return
			}
			got, _ := c.RecvFloat64s(left, 9)
			for i, v := range got {
				if want := float64(left*100000 + step*10 + i); v != want {
					t.Errorf("rank %d step %d[%d]: got %v want %v", c.Rank(), step, i, v, want)
					return
				}
			}
		}
		c.Barrier()
		s, _ := c.NetStats()
		statsMu.Lock()
		all[c.WorldRank()] = s
		statsMu.Unlock()
	})
	for r := range all {
		check(r, all)
	}
}

// TestNetTransportDropsAbsorbed injects deterministic frame drops; the
// gap/heartbeat detectors must recover every one via reconnect + resend
// with zero effect on delivered values.
func TestNetTransportDropsAbsorbed(t *testing.T) {
	total := func(all []NetStats, f func(NetStats) int64) int64 {
		var s int64
		for _, st := range all {
			s += f(st)
		}
		return s
	}
	exerciseFaultyNet(t, 3, 40, &NetFaultPlan{Seed: 42, Drop: 0.05}, func(r int, all []NetStats) {
		if r != 0 {
			return
		}
		if total(all, func(s NetStats) int64 { return s.InjectedDrops }) == 0 {
			t.Error("plan injected no drops — fault path untested")
		}
		if total(all, func(s NetStats) int64 { return s.ResentFrames }) == 0 {
			t.Error("drops recovered without any resends?")
		}
		if total(all, func(s NetStats) int64 { return s.Reconnects }) == 0 {
			t.Error("drops recovered without any reconnects?")
		}
	})
}

// TestNetTransportCorruptionAbsorbed injects checksum corruption; the CRC
// must reject the frames and the resend path must deliver clean copies.
func TestNetTransportCorruptionAbsorbed(t *testing.T) {
	exerciseFaultyNet(t, 3, 40, &NetFaultPlan{Seed: 7, Corrupt: 0.05}, func(r int, all []NetStats) {
		if r != 0 {
			return
		}
		var checksums, corrupts int64
		for _, s := range all {
			checksums += s.ChecksumErrors
			corrupts += s.InjectedCorrupts
		}
		if corrupts == 0 {
			t.Error("plan injected no corruption — fault path untested")
		}
		if checksums == 0 {
			t.Error("injected corruption never tripped the CRC check")
		}
	})
}

// TestNetTransportSeverAndRefusal severs live sockets mid-stream and
// refuses the first reconnect attempts, exercising the capped-backoff
// redial path end to end.
func TestNetTransportSeverAndRefusal(t *testing.T) {
	testutil.CheckLeaks(t)
	plan := &NetFaultPlan{
		Seed:     3,
		Severs:   []SeverSpec{{From: 0, To: 1, AtFrame: 5}, {From: 1, To: 0, AtFrame: 11}},
		Refusals: []RefuseSpec{{From: 0, To: 1, Count: 2}},
	}
	exerciseFaultyNet(t, 2, 30, plan, func(r int, all []NetStats) {
		if r != 0 {
			return
		}
		var severs, reconnects int64
		for _, s := range all {
			severs += s.InjectedSevers
			reconnects += s.Reconnects
		}
		if severs != 2 {
			t.Errorf("injected severs = %d, want 2", severs)
		}
		if reconnects < 2 {
			t.Errorf("reconnects = %d, want >= 2", reconnects)
		}
	})
}

// TestNetTransportDelay injects write stalls; traffic must simply be
// slower, never wrong.
func TestNetTransportDelay(t *testing.T) {
	plan := &NetFaultPlan{Seed: 9, Delay: 0.1, MaxDelay: 2 * time.Millisecond}
	exerciseFaultyNet(t, 2, 30, plan, func(r int, all []NetStats) {
		if r != 0 {
			return
		}
		var delays int64
		for _, s := range all {
			delays += s.InjectedDelays
		}
		if delays == 0 {
			t.Error("plan injected no delays — fault path untested")
		}
	})
}

// TestNetTransportBlackHoleAccusation silences rank 2 mid-run and checks
// the connection-level detector accuses exactly that rank within
// FailTimeout, surfacing the typed timeout-cause RankFailedError on the
// survivors.
func TestNetTransportBlackHoleAccusation(t *testing.T) {
	testutil.CheckLeaks(t)
	const n = 3
	const failTimeout = 300 * time.Millisecond
	opts := fastNet()
	opts.Faults = &NetFaultPlan{BlackHoles: []HoleSpec{{Rank: 2, AfterFrames: 4}}}
	var mu sync.Mutex
	detect := make([]time.Duration, 0, n)
	accusedSet := make(map[int]bool)
	RunWithOptions(n, Options{Net: opts, FailTimeout: failTimeout}, func(c *Comm) {
		right := (c.Rank() + 1) % n
		left := (c.Rank() + n - 1) % n
		start := time.Now()
		var failure *RankFailedError
		for step := 0; step < 1000; step++ {
			if err := c.SendFloat64s(right, 1, []float64{float64(step)}); err != nil {
				if !errors.As(err, &failure) {
					t.Errorf("rank %d: untyped send error %v", c.Rank(), err)
				}
				break
			}
			if _, _, err := c.RecvFloat64sErr(left, 1); err != nil {
				if !errors.As(err, &failure) {
					t.Errorf("rank %d: untyped recv error %v", c.Rank(), err)
				}
				break
			}
		}
		elapsed := time.Since(start)
		if failure == nil {
			t.Errorf("rank %d: black hole never surfaced as a failure", c.Rank())
			return
		}
		if !failure.TimedOut() {
			t.Errorf("rank %d: accusation %v not marked as timeout", c.Rank(), failure)
		}
		mu.Lock()
		detect = append(detect, elapsed)
		accusedSet[failure.Rank] = true
		mu.Unlock()
	})
	if len(accusedSet) != 1 || !accusedSet[2] {
		t.Errorf("accused set = %v, want exactly rank 2", accusedSet)
	}
	// The transport must detect the silence within FailTimeout of it
	// starting (generous wall-clock envelope: traffic until the hole plus
	// the detection window plus scheduling slack).
	for _, d := range detect {
		if d > 8*failTimeout {
			t.Errorf("detection took %v, want well under %v", d, 8*failTimeout)
		}
	}
}

// TestNetTransportMarkDeadStopsReconnects checks noteDead: after the
// survivors mark a silent rank dead, its connections close permanently
// and the surviving pair keeps communicating over its own link.
func TestNetTransportMarkDeadStopsReconnects(t *testing.T) {
	testutil.CheckLeaks(t)
	const n = 3
	opts := fastNet()
	opts.Faults = &NetFaultPlan{BlackHoles: []HoleSpec{{Rank: 2, AfterFrames: 0}}}
	RunWithOptions(n, Options{Net: opts, FailTimeout: 200 * time.Millisecond}, func(c *Comm) {
		if c.Rank() == 2 {
			// The victim: wait until either it observes the accusation or
			// the survivors' recovery has already marked it dead (their
			// Recover clears the failure, so polling Failed alone races),
			// then retire.
			for c.Failed() == nil && c.Alive(2) {
				time.Sleep(5 * time.Millisecond)
			}
			c.Retire()
			return
		}
		// Survivors: trip the failure detector by awaiting the victim.
		_, _, err := c.RecvFloat64sErr(2, 1)
		var rfe *RankFailedError
		if !errors.As(err, &rfe) {
			t.Errorf("rank %d: expected rank failure, got %v", c.Rank(), err)
			return
		}
		c.MarkDead(2)
		c.Recover()
		sub, rankMap := c.Shrink()
		if sub == nil || sub.Size() != 2 {
			t.Errorf("rank %d: shrink produced %v (map %v)", c.Rank(), sub, rankMap)
			return
		}
		// The surviving pair must still talk over its (possibly recycled)
		// socket after the shrink.
		peer := 1 - sub.Rank()
		if err := sub.SendFloat64s(peer, 3, []float64{float64(sub.Rank())}); err != nil {
			t.Errorf("rank %d: post-shrink send: %v", c.Rank(), err)
			return
		}
		got, _, err := sub.RecvFloat64sErr(peer, 3)
		if err != nil || got[0] != float64(peer) {
			t.Errorf("rank %d: post-shrink recv = %v, %v", c.Rank(), got, err)
		}
	})
}

// TestNetTransportBackpressure bounds the retention ring and floods one
// direction: senders must block (not fail, not drop) until acks free ring
// space.
func TestNetTransportBackpressure(t *testing.T) {
	opts := fastNet()
	opts.RetainFrames = 4
	RunWithOptions(2, Options{Net: opts}, func(c *Comm) {
		const msgs = 64
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := c.SendFloat64s(1, 5, []float64{float64(i)}); err != nil {
					t.Errorf("send %d: %v", i, err)
					return
				}
			}
		} else {
			time.Sleep(20 * time.Millisecond) // let the ring fill
			for i := 0; i < msgs; i++ {
				got, _ := c.RecvFloat64s(0, 5)
				if got[0] != float64(i) {
					t.Errorf("recv %d: got %v", i, got[0])
					return
				}
			}
		}
	})
}

// TestNetOptionsValidate rejects impossible socket configurations.
func TestNetOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts NetOptions
	}{
		{"bad network", NetOptions{Network: "udp"}},
		{"addr count", NetOptions{Network: "tcp", Addrs: []string{"127.0.0.1:0"}}},
		{"bad fault fraction", NetOptions{Network: "unix", Faults: &NetFaultPlan{Drop: 1.5}}},
		{"sever self", NetOptions{Network: "unix", Faults: &NetFaultPlan{Severs: []SeverSpec{{From: 1, To: 1, AtFrame: 1}}}}},
		{"sever frame zero", NetOptions{Network: "unix", Faults: &NetFaultPlan{Severs: []SeverSpec{{From: 0, To: 1}}}}},
		{"refusal rank", NetOptions{Network: "unix", Faults: &NetFaultPlan{Refusals: []RefuseSpec{{From: 0, To: 9, Count: 1}}}}},
		{"hole rank", NetOptions{Network: "unix", Faults: &NetFaultPlan{BlackHoles: []HoleSpec{{Rank: -1}}}}},
	}
	for _, tc := range cases {
		if err := tc.opts.validate(2); err == nil {
			t.Errorf("%s: validate accepted %+v", tc.name, tc.opts)
		}
	}
	if err := (NetOptions{}).withDefaults().validate(2); err != nil {
		t.Errorf("default options rejected: %v", err)
	}
}

// TestNetStatsInproc checks NetStats degrades gracefully on backend zero.
func TestNetStatsInproc(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.TransportName() != "inproc" {
			t.Errorf("TransportName = %q, want inproc", c.TransportName())
		}
		if _, ok := c.NetStats(); ok {
			t.Error("NetStats reported ok on the in-process backend")
		}
	})
}

// TestNetTransportManyRanks smoke-tests a wider world (one listener and
// n-1 connections per rank) with an alltoall.
func TestNetTransportManyRanks(t *testing.T) {
	testutil.CheckLeaks(t)
	const n = 7
	RunWithOptions(n, Options{Net: fastNet()}, func(c *Comm) {
		bufs := make([]any, n)
		for i := range bufs {
			bufs[i] = fmt.Sprintf("%d->%d", c.Rank(), i)
		}
		got := c.Alltoall(bufs)
		for i, g := range got {
			if want := fmt.Sprintf("%d->%d", i, c.Rank()); g.(string) != want {
				t.Errorf("rank %d: alltoall[%d] = %v, want %s", c.Rank(), i, g, want)
			}
		}
	})
}
