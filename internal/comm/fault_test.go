package comm

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// A dropped message must surface as a typed rank failure on the receiver
// (via the receive timeout), not hang forever.
func TestDropSurfacesTimeoutFailure(t *testing.T) {
	opts := Options{
		Faults:      &FaultPlan{Seed: 3, Drop: 1.0}, // drop everything
		RecvTimeout: 50 * time.Millisecond,
	}
	RunWithOptions(2, opts, func(c *Comm) {
		if c.Rank() == 0 {
			if err := c.SendErr(1, 1, 42); err != nil {
				t.Errorf("SendErr of a dropped message: %v", err)
			}
			if s := c.Stats(); s.Dropped != 1 {
				t.Errorf("Dropped = %d, want 1", s.Dropped)
			}
			return
		}
		_, _, err := c.RecvErr(0, 1)
		var rf *RankFailedError
		if !errors.As(err, &rf) {
			t.Fatalf("RecvErr = %v, want *RankFailedError", err)
		}
		if rf.Rank != 0 {
			t.Errorf("accused rank %d, want 0", rf.Rank)
		}
		if !strings.Contains(rf.Cause, "within") {
			t.Errorf("cause %q does not mention the timeout", rf.Cause)
		}
		if s := c.Stats(); s.Timeouts != 1 {
			t.Errorf("Timeouts = %d, want 1", s.Timeouts)
		}
	})
}

// Delayed messages still arrive (late), and drop decisions are a pure
// function of the seed: two runs with the same plan drop the same sends.
func TestDelayedDeliveryAndDeterminism(t *testing.T) {
	opts := Options{
		Faults: &FaultPlan{Seed: 7, DelayProb: 1.0, MaxDelay: 20 * time.Millisecond},
	}
	RunWithOptions(2, opts, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				c.Send(1, 1, i)
			}
			if s := c.Stats(); s.Delayed != 5 {
				t.Errorf("Delayed = %d, want 5", s.Delayed)
			}
			return
		}
		for i := 0; i < 5; i++ {
			v, _ := c.Recv(0, 1) // FIFO per (source, tag) holds for delays too?
			_ = v                // ordering among delayed messages is not guaranteed; only delivery is
		}
	})

	drops := func(seed int64) []int64 {
		var counts [4]int64
		RunWithOptions(4, Options{Faults: &FaultPlan{Seed: seed, Drop: 0.5}, RecvTimeout: time.Hour},
			func(c *Comm) {
				for i := 0; i < 50; i++ {
					dst := (c.Rank() + 1) % c.Size()
					if err := c.SendErr(dst, 1, i); err != nil {
						t.Errorf("SendErr: %v", err)
					}
				}
				atomic.StoreInt64(&counts[c.Rank()], c.Stats().Dropped)
				// Drain nothing: receivers would time out on dropped
				// messages; this test only checks the drop decisions.
			})
		return counts[:]
	}
	a, b := drops(11), drops(11)
	for r := range a {
		if a[r] != b[r] {
			t.Errorf("rank %d: drop count %d vs %d across identical runs", r, a[r], b[r])
		}
		if a[r] == 0 || a[r] == 50 {
			t.Errorf("rank %d: degenerate drop count %d of 50 at fraction 0.5", r, a[r])
		}
	}
	c := drops(12)
	same := true
	for r := range a {
		if a[r] != c[r] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical drop patterns")
	}
}

// An injected crash panics the victim with a Crash value and surfaces a
// typed *RankFailedError on every other rank — including ranks blocked in
// a receive and ranks inside a collective — instead of deadlocking.
func TestCrashUnblocksReceiversAndCollectives(t *testing.T) {
	const n = 4
	var failures int32
	opts := Options{Faults: &FaultPlan{Crashes: []CrashSpec{{Rank: 2, Step: 5}}}}
	RunWithOptions(n, opts, func(c *Comm) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			cr, ok := p.(Crash)
			if !ok {
				panic(p)
			}
			if cr.Rank != 2 || c.Rank() != 2 {
				t.Errorf("crash of rank %d recovered on rank %d", cr.Rank, c.Rank())
			}
			atomic.AddInt32(&failures, 1)
		}()
		if c.Rank() == 2 {
			c.SetStep(4) // below the trigger: no crash
			c.SetStep(5) // fires
			t.Error("rank 2 survived its crash step")
			return
		}
		// Everyone else blocks in a receive that can only be released by
		// the failure declaration.
		_, _, err := c.RecvErr(2, 1)
		var rf *RankFailedError
		if !errors.As(err, &rf) || rf.Rank != 2 {
			t.Errorf("rank %d: RecvErr = %v, want failure of rank 2", c.Rank(), err)
			return
		}
		// Collectives must now fail fast, not deadlock.
		if err := c.BarrierErr(); !IsRankFailure(err) {
			t.Errorf("rank %d: BarrierErr = %v, want rank failure", c.Rank(), err)
		}
		if _, err := c.AllreduceInt64Err(1, Sum[int64]); !IsRankFailure(err) {
			t.Errorf("rank %d: AllreduceInt64Err = %v, want rank failure", c.Rank(), err)
		}
		if err := c.SendErr(0, 1, 1); !IsRankFailure(err) {
			t.Errorf("rank %d: SendErr = %v, want rank failure", c.Rank(), err)
		}
		atomic.AddInt32(&failures, 1)
	})
	if failures != n {
		t.Errorf("%d ranks observed the failure, want %d", failures, n)
	}
}

// Recover clears the failure, purges stale traffic and advances the
// epoch; afterwards normal messaging and collectives work again.
func TestRecoverRestoresService(t *testing.T) {
	opts := Options{Faults: &FaultPlan{Crashes: []CrashSpec{{Rank: 1, Step: 0}}}}
	RunWithOptions(3, opts, func(c *Comm) {
		crashed := false
		func() {
			defer func() {
				if p := recover(); p != nil {
					if _, ok := p.(Crash); !ok {
						panic(p)
					}
					crashed = true
				}
			}()
			// Rank 0 leaves a stale message in rank 2's mailbox before the
			// crash; it must not survive recovery. Rank 1 crashes only
			// after rank 0's go-signal, so the stale send precedes the
			// failure declaration.
			if c.Rank() == 0 {
				c.Send(2, 9, "stale")
				c.Send(1, 1, "go")
			}
			if c.Rank() == 1 {
				c.Recv(0, 1)
				c.SetStep(0)
				t.Error("rank 1 survived its crash step")
			}
			// Survivors wait for the declaration.
			for c.Failed() == nil {
				time.Sleep(time.Millisecond)
			}
		}()
		if crashed != (c.Rank() == 1) {
			t.Errorf("rank %d: crashed=%v", c.Rank(), crashed)
		}
		epoch := c.Recover()
		if epoch != 1 {
			t.Errorf("rank %d: epoch %d after first recovery, want 1", c.Rank(), epoch)
		}
		if c.Failed() != nil {
			t.Errorf("rank %d: failure still declared after Recover", c.Rank())
		}
		// Stale pre-crash traffic is gone.
		if c.Rank() == 2 {
			if _, _, err := c.RecvWithin(0, 9, 20*time.Millisecond); err == nil {
				t.Error("stale pre-recovery message survived the purge")
			}
		}
		c.Recover() // clear the failure the stale-probe timeout just declared
		// Service restored: a collective over all ranks completes.
		sum, err := c.AllreduceInt64Err(int64(c.Rank()), Sum[int64])
		if err != nil || sum != 3 {
			t.Errorf("rank %d: post-recovery allreduce = %d, %v", c.Rank(), sum, err)
		}
	})
}

// Depth-bounded mailboxes block fast senders (backpressure) instead of
// growing without bound, and the stats surface both the wait time and the
// high-water mark.
func TestMailboxBackpressure(t *testing.T) {
	const depth = 8
	const msgs = 100
	RunWithOptions(2, Options{MailboxDepth: depth}, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				c.Send(1, 1, i)
			}
			c.Recv(1, 2)
			if c.Stats().BackpressureWait <= 0 {
				t.Error("no backpressure wait recorded for the flooding sender")
			}
			return
		}
		time.Sleep(20 * time.Millisecond) // let the sender hit the bound
		if ms := c.MailboxStats(); ms.Pending > depth || ms.Depth != depth {
			t.Errorf("mailbox stats %+v exceed depth %d", ms, depth)
		}
		for i := 0; i < msgs; i++ {
			v, _ := c.Recv(0, 1)
			if v.(int) != i {
				t.Errorf("message %d arrived as %v", i, v)
			}
		}
		if hw := c.MailboxStats().HighWater; hw > depth {
			t.Errorf("high-water %d exceeds depth %d", hw, depth)
		}
		// The flooding sender must have spent measurable time blocked.
		c.Send(0, 2, "done")
	})
}

// A sender blocked on the depth bound of a failed receiver must not hang:
// the failure declaration aborts the send with an error.
func TestBackpressureUnblocksOnFailure(t *testing.T) {
	opts := Options{
		MailboxDepth: 2,
		Faults:       &FaultPlan{Crashes: []CrashSpec{{Rank: 1, Step: 1}}},
	}
	RunWithOptions(2, opts, func(c *Comm) {
		defer func() {
			if p := recover(); p != nil {
				if _, ok := p.(Crash); !ok {
					panic(p)
				}
			}
		}()
		if c.Rank() == 1 {
			// Wait until the sender has filled the mailbox (and is most
			// likely blocked on the bound), then crash.
			for c.MailboxStats().Pending < 2 {
				time.Sleep(time.Millisecond)
			}
			time.Sleep(20 * time.Millisecond)
			c.SetStep(1)
			return
		}
		var err error
		for i := 0; i < 10 && err == nil; i++ {
			err = c.SendErr(1, 1, i)
		}
		if !IsRankFailure(err) {
			t.Errorf("blocked sender got %v, want rank failure", err)
		}
	})
}

// The eager unbounded default must still accept unmatched traffic without
// blocking — the invariant the ghost-layer exchange relies on.
func TestUnboundedMailboxNeverBlocksSends(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			done := make(chan struct{})
			go func() {
				for i := 0; i < 10000; i++ {
					c.Send(1, 1, i)
				}
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Error("unbounded send blocked")
			}
			c.Send(1, 2, -1)
		} else {
			c.Recv(0, 2) // wait for the flood to finish
			if ms := c.MailboxStats(); ms.HighWater < 10000 {
				t.Errorf("high-water %d, want >= 10000", ms.HighWater)
			}
			for i := 0; i < 10000; i++ {
				c.Recv(0, 1)
			}
		}
	})
}

// SetStep without a fault plan is free and a crash spec fires exactly
// once, even if the step is revisited (recovery replay).
func TestCrashFiresOnce(t *testing.T) {
	opts := Options{Faults: &FaultPlan{Crashes: []CrashSpec{{Rank: 0, Step: 3}}}}
	RunWithOptions(1, opts, func(c *Comm) {
		crashes := 0
		for attempt := 0; attempt < 2; attempt++ {
			func() {
				defer func() {
					if p := recover(); p != nil {
						if _, ok := p.(Crash); !ok {
							panic(p)
						}
						crashes++
					}
				}()
				for step := 0; step < 6; step++ {
					c.SetStep(step)
				}
			}()
			c.Recover()
		}
		if crashes != 1 {
			t.Errorf("crash fired %d times, want exactly once", crashes)
		}
	})
}

// Exact-match receives still interleave correctly with wildcard receives
// under the indexed mailbox (mixed matching paths share one queue set).
func TestMixedWildcardAndExactMatching(t *testing.T) {
	Run(3, func(c *Comm) {
		if c.Rank() == 0 {
			// The exact receive must pick the tag-5 message even while
			// other traffic is pending for the wildcard receives.
			v, src := c.Recv(1, 5)
			if v.(int) != 7 || src != 1 {
				t.Errorf("exact receive got %v from %d", v, src)
			}
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				v, src := c.Recv(AnySource, AnyTag)
				got[v.(int)*10+src] = true
			}
			if !got[11] || !got[22] {
				t.Errorf("wildcard receives got %v", got)
			}
		} else {
			c.Send(0, c.Rank(), c.Rank())
			if c.Rank() == 1 {
				c.Send(0, 5, 7)
			}
		}
	})
}
