package comm

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzDecodeFrame feeds arbitrary byte streams to the wire-frame decoder.
// The invariants under fuzz: malformed input must only ever produce the
// typed decoder errors (never a panic), the staged payload must never
// exceed the configured frame bound (no attacker-controlled allocation),
// and any accepted frame must re-encode to a stream the decoder accepts
// again (decode/encode consistency).
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: one valid frame of each interesting shape plus the
	// canonical malformed inputs.
	seed := func(h frameHeader, payload []byte) {
		f.Add(buildFrame(h, payload))
	}
	seed(frameHeader{kind: frameData, enc: encF64s, seq: 1, ack: 0, epoch: 0, ctx: 1, tag: 2, source: 0}, f64Bytes([]float64{1, 2, 3}))
	seed(frameHeader{kind: frameData, enc: encBytes, seq: 2, source: 1}, []byte("seed"))
	seed(frameHeader{kind: frameData, enc: encI64s, seq: 3, source: 1}, i64Bytes([]int64{-7}))
	seed(frameHeader{kind: frameData, enc: encInt64, seq: 4, source: 1}, make([]byte, 8))
	seed(frameHeader{kind: frameData, enc: encNil, seq: 5, source: 1}, nil)
	seed(frameHeader{kind: frameData, enc: encOpaque, seq: 6, source: 1}, nil)
	seed(frameHeader{kind: frameHeartbeat, seq: 10, ack: 9, source: 1}, nil)
	seed(frameHeader{kind: frameHello, ack: 3, source: 0}, nil)
	seed(frameHeader{kind: frameWelcome, ack: 4, source: 1}, nil)

	truncated := buildFrame(frameHeader{kind: frameData, enc: encBytes, seq: 1, source: 0}, []byte("cut off"))
	f.Add(truncated[:20])
	f.Add(truncated[:frameHeaderLen+2])

	badMagic := append([]byte(nil), truncated...)
	badMagic[0] = 'Z'
	f.Add(badMagic)

	badCRC := append([]byte(nil), truncated...)
	badCRC[len(badCRC)-1] ^= 0xA5
	f.Add(badCRC)

	oversized := append([]byte(nil), truncated...)
	oversized[48], oversized[49], oversized[50], oversized[51] = 0xFF, 0xFF, 0xFF, 0x7F
	f.Add(oversized)

	reserved := append([]byte(nil), truncated...)
	reserved[6] = 0xEE
	f.Add(reserved)

	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 2*frameHeaderLen))

	const maxBytes = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		var s frameScratch
		r := bytes.NewReader(data)
		for {
			h, payload, err := readFrame(r, maxBytes, &s)
			if err != nil {
				if err == io.EOF {
					return // clean end of stream
				}
				if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadFrame) &&
					!errors.Is(err, ErrFrameTooLarge) && !errors.Is(err, ErrChecksum) &&
					!errors.Is(err, ErrTruncated) {
					t.Fatalf("untyped decoder error: %v", err)
				}
				return
			}
			if len(payload) > maxBytes || cap(s.payload) > maxBytes {
				t.Fatalf("payload staging exceeded the frame bound: len %d cap %d", len(payload), cap(s.payload))
			}
			if int(h.length) != len(payload) {
				t.Fatalf("length prefix %d != payload %d", h.length, len(payload))
			}
			// Decode/encode consistency: a frame the decoder accepts must
			// survive a round trip bit-for-bit.
			re := buildFrame(h, payload)
			var s2 frameScratch
			h2, p2, err := readFrame(bytes.NewReader(re), maxBytes, &s2)
			if err != nil {
				t.Fatalf("re-encoded frame rejected: %v", err)
			}
			if h2 != h || !bytes.Equal(p2, payload) {
				t.Fatalf("round trip mismatch: %+v vs %+v", h2, h)
			}
		}
	})
}
