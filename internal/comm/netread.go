package comm

import (
	"fmt"
	"io"
	"net"
	"time"
)

// readLoop consumes one socket generation's inbound frame stream and
// deposits data frames into the rank's mailbox. readerGate serializes
// readers across reconnects: a new socket's reader waits until its
// predecessor drained, so lastRecv and the decode buffers advance in
// stream order. Any error — wire, decode, checksum, sequence gap — tears
// the connection down; the retention/resend protocol makes that lossless.
func (c *netConn) readLoop(sock net.Conn, gen uint64) {
	ep := c.ep
	t := ep.t
	defer t.wg.Done()
	c.readerGate.Lock()
	defer c.readerGate.Unlock()
	c.mu.Lock()
	stale := c.sockGen != gen
	c.mu.Unlock()
	if stale {
		return
	}
	for {
		// The deadline is a backstop only — the supervisor's stall detector
		// fires first on a silent peer; this bounds how long a reader can
		// linger on a socket the supervisor already abandoned.
		sock.SetReadDeadline(time.Now().Add(4 * t.opts.StallTimeout))
		if _, err := io.ReadFull(sock, c.scratch.hdr[:]); err != nil {
			c.sever(gen)
			return
		}
		h, err := decodeFrameHeader(&c.scratch.hdr, t.opts.MaxFrameBytes)
		if err != nil {
			c.sever(gen)
			return
		}
		ep.bytesIn(int64(frameHeaderLen) + int64(h.length))
		switch h.kind {
		case frameHeartbeat:
			if checkFrameCRC(&c.scratch.hdr, nil) != nil {
				ep.checksumErr()
				c.sever(gen)
				return
			}
			if ep.isHoled() {
				continue // black-holed: drain, acknowledge nothing
			}
			c.lastIn.Store(time.Now().UnixNano())
			c.prune(h.ack)
			// Tail-gap detection: the heartbeat names the peer's last data
			// seq; it was written after that data on the same FIFO socket,
			// so a cursor behind it proves a lost frame. Sever and let the
			// reconnect resend recover it — this bounds the latency of a
			// dropped stream tail to about one heartbeat interval.
			if h.seq > c.lastRecv.Load() {
				ep.gapFrame()
				c.sever(gen)
				return
			}
		case frameData:
			if int(h.source) != c.peer {
				c.sever(gen)
				return
			}
			seq := h.seq
			last := c.lastRecv.Load()
			dup := seq <= last
			gap := seq > last+1
			var payload []byte
			var f64dst []float64
			var ring *recvRing
			if h.enc == encF64s && !dup && !gap {
				// Zero-copy decode: read the payload straight into the
				// rotation buffer the message will carry.
				f64dst, ring = c.f64Buffer(recvKey{h.ctx, h.tag}, int(h.length)/8)
				payload = f64Bytes(f64dst)
			} else {
				payload = c.scratch.grow(int(h.length))
			}
			if _, err := io.ReadFull(sock, payload); err != nil {
				c.sever(gen)
				return
			}
			if checkFrameCRC(&c.scratch.hdr, payload) != nil {
				ep.checksumErr()
				c.sever(gen)
				return
			}
			if ep.isHoled() {
				continue
			}
			c.lastIn.Store(time.Now().UnixNano())
			c.prune(h.ack)
			if dup {
				// Already delivered before the last reconnect; the resend
				// protocol over-replays rather than losing.
				ep.dupFrame()
				continue
			}
			if gap {
				ep.gapFrame()
				c.sever(gen)
				return
			}
			ep.frameRecv()
			if int64(h.epoch) < t.w.epoch.Load() {
				// Pre-recovery traffic: consume for stream continuity, never
				// deliver (the wire analogue of the recovery mailbox purge).
				c.lastRecv.Store(seq)
				continue
			}
			msg := message{ctx: int(h.ctx), source: int(h.source), tag: int(h.tag)}
			switch h.enc {
			case encF64s:
				if len(f64dst) == 0 {
					f64dst = emptyF64
				}
				msg.f64 = f64dst
			case encBytes:
				b := make([]byte, len(payload))
				copy(b, payload)
				msg.data = b
			case encI64s:
				v := make([]int64, len(payload)/8)
				bytesI64(v, payload)
				msg.data = v
			case encInt64, encInt, encFloat64:
				msg.data = decodeScalar(h.enc, payload)
			case encOpaque:
				v, ok := t.opaque.Load(opaqueKey{c.peer, ep.rank, seq})
				if !ok {
					// Unreachable by protocol (pruned means acked means dup);
					// treat as stream corruption rather than delivering nil.
					c.sever(gen)
					return
				}
				msg.data = v
			}
			c.delivering.Store(true)
			pending, err := t.w.mailboxes[ep.rank].putNet(msg, t.w, int64(h.epoch), t.bail)
			c.delivering.Store(false)
			if err != nil {
				if t.closed.Load() {
					return
				}
				// A declared failure aborted a backpressured deposit. The
				// pending recovery's purge would have discarded the message
				// anyway, so advance the cursor and keep the stream alive.
			}
			c.lastRecv.Store(seq)
			if ring != nil {
				ring.lastPending = pending
			}
		default:
			// hello/welcome mid-stream: the peer lost framing.
			c.sever(gen)
			return
		}
	}
}

// supervise is the connection's background caretaker: while up it
// heartbeats and tears down stalled links; while down it accuses peers
// silent past FailTimeout and (on the dialer side) redials with capped
// exponential backoff.
func (c *netConn) supervise() {
	t := c.ep.t
	defer t.wg.Done()
	backoff := t.opts.ReconnectBase
	// Dialers attempt the first connection immediately; acceptors just
	// start their heartbeat cadence.
	first := t.opts.HeartbeatEvery
	if c.dialer {
		first = 0
	}
	timer := time.NewTimer(first)
	defer timer.Stop()
	for {
		select {
		case <-t.done:
			return
		case <-timer.C:
		}
		c.mu.Lock()
		if c.permDown {
			c.mu.Unlock()
			return
		}
		down := c.down
		if !down {
			idle := time.Since(time.Unix(0, c.lastIn.Load()))
			if idle > t.opts.StallTimeout && !c.delivering.Load() && !c.ep.isHoled() {
				// Silent past the stall threshold: assume the socket is
				// dead, recycle it. If the peer is alive the redial
				// restores the stream; if not, the accusation clock below
				// keeps running off lastIn.
				c.teardownLocked()
				down = true
			} else {
				c.writeHeartbeatLocked()
			}
		}
		c.mu.Unlock()
		if down {
			c.maybeAccuse()
			if c.dialer && !c.ep.isHoled() && c.tryDial() {
				backoff = t.opts.ReconnectBase
				timer.Reset(t.opts.HeartbeatEvery)
				continue
			}
			timer.Reset(backoff)
			backoff *= 2
			if backoff > t.opts.ReconnectMax {
				backoff = t.opts.ReconnectMax
			}
		} else {
			backoff = t.opts.ReconnectBase
			timer.Reset(t.opts.HeartbeatEvery)
		}
	}
}

// maybeAccuse declares a rank failure once the connection has been silent
// past FailTimeout. Normally the silent peer is accused; but an endpoint
// whose every live connection is down at once is far more likely to be
// the problem itself (a black-holed node still believes it is fine — its
// packets just go nowhere), so with two or more live links all down it
// accuses its own rank. For a world of three or more ranks this makes the
// black-hole victim's identity deterministic: every endpoint, victim
// included, names the victim.
func (c *netConn) maybeAccuse() {
	t := c.ep.t
	ft := t.w.opts.FailTimeout
	if ft <= 0 || t.closed.Load() || t.w.failure.Load() != nil {
		return
	}
	if time.Since(time.Unix(0, c.lastIn.Load())) <= ft {
		return
	}
	c.mu.Lock()
	eligible := c.down && !c.permDown
	c.mu.Unlock()
	if !eligible {
		return
	}
	accused := c.peer
	live, downN := 0, 0
	for _, o := range c.ep.conns {
		if o == nil {
			continue
		}
		o.mu.Lock()
		if !o.permDown {
			live++
			if o.down {
				downN++
			}
		}
		o.mu.Unlock()
	}
	if live >= 2 && downN == live {
		accused = c.ep.rank
	}
	f := &RankFailedError{
		Rank: accused,
		Cause: fmt.Sprintf("%srank %d saw no traffic from rank %d on the %s transport within %v",
			timeoutCausePrefix, c.ep.rank, c.peer, t.opts.Network, ft),
	}
	c.ep.accused(accused)
	t.w.declareFailure(f)
}

// tryDial attempts the dialer's half of the handshake: connect, send a
// hello carrying our receive progress, await the welcome carrying the
// peer's. Failures (connect refused, injected refusal, handshake
// timeout) report false and the supervisor backs off.
func (c *netConn) tryDial() bool {
	t := c.ep.t
	dialTO := t.opts.StallTimeout
	if dialTO <= 0 {
		dialTO = time.Second
	}
	d := net.Dialer{Timeout: dialTO}
	sock, err := d.Dial(t.opts.Network, t.addrs[c.peer])
	if err != nil {
		return false
	}
	sock.SetDeadline(time.Now().Add(4 * t.opts.StallTimeout))
	var hdr [frameHeaderLen]byte
	encodeFrameHeader(&hdr, frameHeader{
		kind: frameHello, ack: c.lastRecv.Load(),
		epoch: uint64(t.w.epoch.Load()), source: int32(c.ep.rank),
	}, nil)
	if _, err := sock.Write(hdr[:]); err != nil {
		sock.Close()
		return false
	}
	var s frameScratch
	h, _, err := readFrame(sock, t.opts.MaxFrameBytes, &s)
	if err != nil || h.kind != frameWelcome || int(h.source) != c.peer {
		sock.Close()
		return false
	}
	sock.SetDeadline(time.Time{})
	return c.install(sock, h.ack)
}
