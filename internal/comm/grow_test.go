package comm

import (
	"sync/atomic"
	"testing"
	"time"

	"walberla/internal/testutil"
)

// TestGrowWorldRecruitsLowestSpare runs a 3-active/2-spare world, kills an
// active rank, and checks that the recovery recruits exactly the
// lowest-indexed spare: the survivors and the recruit independently build
// the same grown communicator and a collective works on it.
func TestGrowWorldRecruitsLowestSpare(t *testing.T) {
	testutil.CheckLeaks(t)
	const active, spares = 3, 2
	const victim = 1
	var joined atomic.Int64
	var released atomic.Int64
	RunWithOptions(active+spares, Options{FailTimeout: 2 * time.Second}, func(c *Comm) {
		if c.WorldRank() >= active {
			_, join := c.ParkSpare(active)
			if !join {
				released.Add(1)
				return
			}
			if c.WorldRank() != active {
				t.Errorf("world rank %d recruited; want %d (lowest spare)", c.WorldRank(), active)
			}
			joined.Add(1)
			gc := c.GrowWorld(active)
			if gc == nil || gc.Size() != active {
				t.Errorf("recruit built communicator %v", gc)
				return
			}
			if got := gc.AllreduceInt64(1, Sum[int64]); got != active {
				t.Errorf("recruit allreduce = %d, want %d", got, active)
			}
			gc.ReleaseSpares()
			return
		}
		ac := c.GrowWorld(active)
		if ac == nil || ac.Size() != active || ac.WorldRankOf(ac.Rank()) != c.WorldRank() {
			t.Errorf("world rank %d: bad initial active communicator", c.WorldRank())
			return
		}
		if c.WorldRank() == victim {
			c.Retire()
			return
		}
		// Survivors: wait out the victim's retirement, declare the failure
		// (in the resilient driver, send timeouts do this — the declaration
		// is what wakes parked spares into the rendezvous), and grow.
		for c.Alive(victim) {
			time.Sleep(time.Millisecond)
		}
		if c.WorldRank() == 0 {
			c.w.declareFailure(&RankFailedError{Rank: victim, Cause: "retired"})
		}
		c.Recover()
		gc := c.GrowWorld(active)
		if gc == nil || gc.Size() != active {
			t.Errorf("world rank %d: grown communicator %v", c.WorldRank(), gc)
			return
		}
		if gc.WorldRankOf(active-1) != active {
			t.Errorf("grown comm rank %d maps to world %d, want %d",
				active-1, gc.WorldRankOf(active-1), active)
		}
		if got := gc.AllreduceInt64(1, Sum[int64]); got != active {
			t.Errorf("survivor allreduce = %d, want %d", got, active)
		}
	})
	if joined.Load() != 1 {
		t.Fatalf("%d spares joined, want 1", joined.Load())
	}
	if released.Load() != spares-1 {
		t.Fatalf("%d spares released, want %d", released.Load(), spares-1)
	}
}

// TestParkSpareReleasedWithoutFailure checks that spares of a fault-free
// run park and are released cleanly.
func TestParkSpareReleasedWithoutFailure(t *testing.T) {
	testutil.CheckLeaks(t)
	const active, spares = 2, 3
	var released atomic.Int64
	Run(active+spares, func(c *Comm) {
		if c.WorldRank() >= active {
			if _, join := c.ParkSpare(active); join {
				t.Errorf("spare %d joined a fault-free run", c.WorldRank())
			} else {
				released.Add(1)
			}
			return
		}
		ac := c.GrowWorld(active)
		ac.Barrier()
		if ac.Rank() == 0 {
			ac.ReleaseSpares()
		}
	})
	if released.Load() != spares {
		t.Fatalf("%d spares released, want %d", released.Load(), spares)
	}
}

// TestParkSpareReleasedMidFailure checks the abort path: a failure is
// declared but the actives give up without completing a recovery; the
// release must still unblock a spare already waiting in the rendezvous.
func TestParkSpareReleasedMidFailure(t *testing.T) {
	testutil.CheckLeaks(t)
	const active, spares = 2, 1
	var released atomic.Int64
	RunWithOptions(active+spares, Options{}, func(c *Comm) {
		if c.WorldRank() >= active {
			if _, join := c.ParkSpare(active); join {
				t.Errorf("spare %d joined an aborted run", c.WorldRank())
			} else {
				released.Add(1)
			}
			return
		}
		if c.WorldRank() == 0 {
			// Declare a failure, give the spare time to enter the
			// rendezvous, then abort the run without recovering.
			c.w.declareFailure(&RankFailedError{Rank: 1, Cause: "test abort"})
			time.Sleep(20 * time.Millisecond)
			c.ReleaseSpares()
		}
	})
	if released.Load() != spares {
		t.Fatalf("%d spares released, want %d", released.Load(), spares)
	}
}
