package comm

import (
	"fmt"
	"testing"
)

// Regression benchmarks for the mailbox matching fast path: the common
// receive — exact (source, tag), the shape of every ghost-layer exchange
// message — must stay O(1) in the number of unrelated pending messages,
// so the fault-injection bookkeeping wrapped around put/take cannot
// silently reintroduce the old O(n) scan.

// benchMailbox builds a mailbox preloaded with backlog messages spread
// over distinct (source, tag) keys that the benchmarked receive never
// matches.
func benchMailbox(backlog int) *mailbox {
	m := newMailbox(0)
	for i := 0; i < backlog; i++ {
		m.put(message{ctx: 0, source: 1 + i%7, tag: 100 + i/7, data: i}, func() error { return nil })
	}
	return m
}

func noBail() error { return nil }

func BenchmarkMailboxExactMatch(b *testing.B) {
	for _, backlog := range []int{0, 100, 10000} {
		b.Run(fmt.Sprintf("backlog=%d", backlog), func(b *testing.B) {
			m := benchMailbox(backlog)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.put(message{ctx: 0, source: 0, tag: 1, data: i}, noBail)
				if _, err := m.take(0, 0, 1, 0, noBail); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMailboxWildcardSource(b *testing.B) {
	// Wildcard matching scans queue heads (one per distinct key), not
	// every pending message.
	for _, backlog := range []int{100, 10000} {
		b.Run(fmt.Sprintf("backlog=%d", backlog), func(b *testing.B) {
			m := benchMailbox(backlog)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.put(message{ctx: 0, source: 0, tag: 1, data: i}, noBail)
				if _, err := m.take(0, AnySource, 1, 0, noBail); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSendRecvRoundtrip measures the end-to-end p2p latency through
// the full Comm path (stats, fault hooks disabled) — the number the
// fault-injection wrapping must not regress.
func BenchmarkSendRecvRoundtrip(b *testing.B) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{1, 2, 3}
			for i := 0; i < b.N; i++ {
				c.Send(1, 1, buf)
				c.Recv(1, 2)
			}
		} else {
			for i := 0; i < b.N; i++ {
				c.Recv(0, 1)
				c.Send(0, 2, true)
			}
		}
	})
}

// BenchmarkSendRecvRoundtripFaultPlan is the same roundtrip with an
// armed (but never-firing) fault plan: the deterministic decision hashing
// must add only nanoseconds.
func BenchmarkSendRecvRoundtripFaultPlan(b *testing.B) {
	opts := Options{Faults: &FaultPlan{Seed: 1, Drop: 0, DelayProb: 0,
		Crashes: []CrashSpec{{Rank: 0, Step: 1 << 30}}}}
	RunWithOptions(2, opts, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{1, 2, 3}
			for i := 0; i < b.N; i++ {
				c.Send(1, 1, buf)
				c.Recv(1, 2)
			}
		} else {
			for i := 0; i < b.N; i++ {
				c.Recv(0, 1)
				c.Send(0, 2, true)
			}
		}
	})
}
