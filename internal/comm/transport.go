package comm

import (
	"fmt"
	"time"
)

// The communicator is abstracted over a Transport: the component that
// moves a stamped message from the sending rank to the destination rank's
// mailbox. Backend zero is the original in-process channel world (the
// sender deposits directly into the receiver's mailbox); the socket
// backend (net.go) pushes every message through a real length-prefixed,
// checksummed wire protocol over TCP or unix-domain sockets, with
// connection-level failure detection feeding the same RankFailedError
// machinery. Everything above deliver — matching, collectives, fault
// injection, recovery — is transport-agnostic.

// transport moves stamped messages between world ranks.
type transport interface {
	// name identifies the backend ("inproc", "tcp", "unix").
	name() string
	// deliver moves msg from world rank src into dst's mailbox, blocking
	// on backpressure (full mailbox, full retention ring). It returns the
	// time spent blocked.
	deliver(src, dst int, msg message) (time.Duration, error)
	// noteDead tells the transport a world rank is permanently dead:
	// connections to it are closed, reconnect attempts stop and retained
	// frames toward it are shed.
	noteDead(worldRank int)
	// onFailure wakes transport-internal waiters (ring-full blocked
	// senders) so they observe a declared rank failure.
	onFailure()
	// shutdown tears the transport down after the run (listeners, sockets,
	// background goroutines).
	shutdown()
}

// inprocTransport is backend zero: the classic shared-memory mailbox
// deposit. deliver is exactly the pre-transport send path, so the
// zero-allocation and bit-identity properties of the in-process runtime
// are unchanged.
type inprocTransport struct{ w *world }

func (t *inprocTransport) name() string { return "inproc" }

func (t *inprocTransport) deliver(src, dst int, msg message) (time.Duration, error) {
	return t.w.mailboxes[dst].put(msg, t.w.failErr)
}

func (t *inprocTransport) noteDead(int) {}
func (t *inprocTransport) onFailure()   {}
func (t *inprocTransport) shutdown()    {}

// NetOptions selects and configures the socket transport. The zero value
// of every field picks a sensible default; Options.Net == nil selects the
// in-process backend.
type NetOptions struct {
	// Network is the socket flavor: "tcp" (loopback TCP) or "unix"
	// (unix-domain stream sockets, the default).
	Network string
	// Addrs optionally pins one listen address per world rank (length must
	// equal the world size). Empty selects ephemeral loopback addresses
	// ("127.0.0.1:0") or temp-dir unix socket paths.
	Addrs []string
	// HeartbeatEvery is the idle-liveness probe interval of every
	// connection; heartbeats also carry the cumulative acks and the
	// sender's last data sequence, so dropped stream tails are detected
	// within one interval. Default 20ms.
	HeartbeatEvery time.Duration
	// StallTimeout is the per-connection silence threshold: a connection
	// with no inbound bytes for this long is torn down and redialed.
	// Default 6×HeartbeatEvery.
	StallTimeout time.Duration
	// ReconnectBase and ReconnectMax bound the capped exponential backoff
	// between reconnect attempts. Defaults 1ms and 100ms.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// RetainFrames is the per-connection retention ring capacity: unacked
	// data frames kept for idempotent resend. A full ring blocks the
	// sender (end-to-end backpressure). Default 512.
	RetainFrames int
	// MaxFrameBytes guards the decoder against corrupt length prefixes.
	// Default 64 MiB.
	MaxFrameBytes int
	// Faults injects deterministic frame-layer faults; nil disables.
	Faults *NetFaultPlan
}

// withDefaults resolves the zero-value fields.
func (o NetOptions) withDefaults() NetOptions {
	if o.Network == "" {
		o.Network = "unix"
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 20 * time.Millisecond
	}
	if o.StallTimeout <= 0 {
		o.StallTimeout = 6 * o.HeartbeatEvery
	}
	if o.ReconnectBase <= 0 {
		o.ReconnectBase = time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = 100 * time.Millisecond
	}
	if o.ReconnectMax < o.ReconnectBase {
		o.ReconnectMax = o.ReconnectBase
	}
	if o.RetainFrames <= 0 {
		o.RetainFrames = 512
	}
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = defaultMaxFrameBytes
	}
	return o
}

// validate rejects impossible socket configurations before the world
// starts.
func (o NetOptions) validate(n int) error {
	if o.Network != "tcp" && o.Network != "unix" {
		return fmt.Errorf("net options: unknown network %q (want tcp or unix)", o.Network)
	}
	if len(o.Addrs) != 0 && len(o.Addrs) != n {
		return fmt.Errorf("net options: %d listen addresses for %d ranks", len(o.Addrs), n)
	}
	if o.Faults != nil {
		if err := o.Faults.Validate(n); err != nil {
			return err
		}
	}
	return nil
}

// TransportName reports the backend moving this communicator's messages:
// "inproc", "tcp" or "unix".
func (c *Comm) TransportName() string { return c.w.transport.name() }

// NetStats is one rank's socket-transport counters. All fields are
// lifetime totals of the rank's endpoint (all its connections).
type NetStats struct {
	// FramesSent and FramesRecv count data frames written to and accepted
	// off the wire (heartbeats and handshakes excluded).
	FramesSent int64
	FramesRecv int64
	// BytesSent and BytesRecv count frame bytes including headers.
	BytesSent int64
	BytesRecv int64
	// Heartbeats counts liveness probes written.
	Heartbeats int64
	// Connects counts established connections (initial dials and accepts);
	// Reconnects counts re-establishments after a teardown.
	Connects   int64
	Reconnects int64
	// ResentFrames counts retained data frames replayed after reconnect
	// handshakes; DupFrames counts received frames discarded as already
	// delivered; Gaps counts sequence gaps that forced a teardown.
	ResentFrames int64
	DupFrames    int64
	Gaps         int64
	// ChecksumErrors counts frames rejected by the CRC check.
	ChecksumErrors int64
	// Accusals counts rank failures this endpoint declared from stalled
	// connections.
	Accusals int64
	// InjectedDrops/Corrupts/Delays/Severs count NetFaultPlan decisions
	// taken on this endpoint's outgoing streams.
	InjectedDrops    int64
	InjectedCorrupts int64
	InjectedDelays   int64
	InjectedSevers   int64
}

// NetStats returns this rank's socket-transport counters; ok is false on
// the in-process backend.
func (c *Comm) NetStats() (stats NetStats, ok bool) {
	nt, isNet := c.w.transport.(*netTransport)
	if !isNet {
		return NetStats{}, false
	}
	return nt.endpoints[c.WorldRank()].snapshot(), true
}
