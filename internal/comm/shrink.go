package comm

// Shrinking recovery — the ULFM-style alternative to rewind-and-replay.
// A rank that has failed permanently is marked dead (MarkDead by the
// survivors, Retire by the victim itself when it can); the recovery
// rendezvous then completes with the live ranks only, and Shrink derives
// the surviving subcommunicator with a dense re-ranking plus the old→new
// rank map the application needs to re-own the dead rank's work. The
// shrunk communicator shares the world: messages, epochs, statistics and
// any later failures behave exactly as on the original.

// MarkDead records the permanent death of a world rank. Idempotent and
// callable by any rank at any time; a pending recovery rendezvous is
// re-evaluated, so the orderings "Recover first, then MarkDead" and the
// reverse both complete. Dead ranks are excluded from every future
// Recover quorum and from communicators built by Shrink.
func (c *Comm) MarkDead(worldRank int) {
	w := c.w
	if worldRank < 0 || worldRank >= w.size {
		panic("comm: MarkDead of invalid world rank")
	}
	w.recMu.Lock()
	newly := !w.dead[worldRank]
	if newly {
		w.dead[worldRank] = true
		w.deadCount++
		w.finishRecoveryLocked()
	}
	w.recMu.Unlock()
	if newly && w.transport != nil {
		// Outside recMu: the transport closes sockets and sheds retained
		// frames, which takes connection locks of its own.
		w.transport.noteDead(worldRank)
	}
}

// Retire marks the calling rank itself permanently dead — the last act of
// a rank that knows it has failed (e.g. it caught its own injected crash
// under a shrinking-recovery driver). After Retire the rank must not
// communicate or call Recover; it simply returns from the SPMD function.
func (c *Comm) Retire() { c.MarkDead(c.WorldRank()) }

// Alive reports whether a world rank has not been marked permanently
// dead.
func (c *Comm) Alive(worldRank int) bool {
	w := c.w
	w.recMu.Lock()
	defer w.recMu.Unlock()
	return worldRank >= 0 && worldRank < w.size && !w.dead[worldRank]
}

// DeadRanks returns the world ranks marked permanently dead, ascending.
func (c *Comm) DeadRanks() []int {
	w := c.w
	w.recMu.Lock()
	defer w.recMu.Unlock()
	var out []int
	for r, d := range w.dead {
		if d {
			out = append(out, r)
		}
	}
	return out
}

// CommRankOf translates a world rank into this communicator's rank space,
// returning -1 when the rank is not a member.
func (c *Comm) CommRankOf(worldRank int) int {
	if r, ok := c.toIndex[worldRank]; ok {
		return r
	}
	return -1
}

// WorldRankOf translates a rank of this communicator into its world rank,
// returning -1 when the rank is out of range.
func (c *Comm) WorldRankOf(commRank int) int {
	if commRank < 0 || commRank >= len(c.group) {
		return -1
	}
	return c.group[commRank]
}

// Shrink builds the communicator of this communicator's surviving
// members: every member not marked dead, densely re-ranked in the old
// rank order. It returns the new communicator plus the old→new rank map
// (indexed by old communicator rank, -1 for dead members). A caller that
// is itself dead receives a nil communicator.
//
// Shrink is pure-local (no messages — the members agree because the dead
// set and the epoch are shared world state), so survivors can call it
// even though the old communicator is revoked. It must be called at an
// agreed point after Recover: the context id of the shrunk communicator
// is derived deterministically from the parent context and the recovery
// epoch, so all survivors build the same communicator and successive
// shrinks never collide with each other or with Split contexts.
func (c *Comm) Shrink() (*Comm, []int) {
	w := c.w
	w.recMu.Lock()
	dead := append([]bool(nil), w.dead...)
	w.recMu.Unlock()

	rankMap := make([]int, len(c.group))
	var group []int
	toIndex := make(map[int]int)
	myRank := -1
	for i, wr := range c.group {
		if dead[wr] {
			rankMap[i] = -1
			continue
		}
		rankMap[i] = len(group)
		toIndex[wr] = len(group)
		if i == c.rank {
			myRank = len(group)
		}
		group = append(group, wr)
	}
	if myRank < 0 {
		return nil, rankMap
	}
	// Deterministic context id, disjoint from the non-negative Split
	// context space: negative, mixed from (parent ctx, epoch). Survivors
	// agree because both inputs are shared; successive shrinks differ
	// because every recovery advances the epoch.
	h := mix64(uint64(w.epoch.Load())<<32 ^ uint64(int64(c.ctx)))
	ctx := -int(h>>1) - 1
	return &Comm{
		w: w, group: group, toIndex: toIndex, rank: myRank,
		ctx: ctx, stats: c.stats, tel: c.tel,
	}, rankMap
}
