package comm

import (
	"sync/atomic"
	"testing"
)

func TestRankAndSize(t *testing.T) {
	const n = 7
	var seen [n]int32
	Run(n, func(c *Comm) {
		if c.Size() != n {
			t.Errorf("Size = %d, want %d", c.Size(), n)
		}
		atomic.AddInt32(&seen[c.Rank()], 1)
	})
	for r, v := range seen {
		if v != 1 {
			t.Errorf("rank %d executed %d times, want 1", r, v)
		}
	}
}

func TestSendRecvOrdering(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, []float64{1})
			c.Send(1, 5, []float64{2})
			c.Send(1, 7, []float64{3})
		} else {
			// Tag matching out of arrival order.
			d, src := c.RecvFloat64s(0, 7)
			if src != 0 || d[0] != 3 {
				t.Errorf("tag 7 payload %v from %d", d, src)
			}
			// FIFO per (source, tag).
			d, _ = c.RecvFloat64s(0, 5)
			if d[0] != 1 {
				t.Errorf("first tag-5 payload %v, want 1", d)
			}
			d, _ = c.RecvFloat64s(0, 5)
			if d[0] != 2 {
				t.Errorf("second tag-5 payload %v, want 2", d)
			}
		}
	})
}

func TestAnySource(t *testing.T) {
	const n = 5
	Run(n, func(c *Comm) {
		if c.Rank() == 0 {
			got := map[int]bool{}
			for i := 0; i < n-1; i++ {
				_, src := c.Recv(AnySource, 1)
				got[src] = true
			}
			if len(got) != n-1 {
				t.Errorf("received from %d distinct ranks, want %d", len(got), n-1)
			}
		} else {
			c.Send(0, 1, c.Rank())
		}
	})
}

func TestBarrier(t *testing.T) {
	const n = 8
	var counter int32
	Run(n, func(c *Comm) {
		atomic.AddInt32(&counter, 1)
		c.Barrier()
		if v := atomic.LoadInt32(&counter); v != n {
			t.Errorf("rank %d passed barrier with counter %d, want %d", c.Rank(), v, n)
		}
		c.Barrier()
	})
}

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 13} {
		for root := 0; root < n; root += 3 {
			Run(n, func(c *Comm) {
				var payload any
				if c.Rank() == root {
					payload = []float64{3.25, -1}
				}
				got := c.Bcast(root, payload).([]float64)
				if got[0] != 3.25 || got[1] != -1 {
					t.Errorf("n=%d root=%d rank=%d got %v", n, root, c.Rank(), got)
				}
			})
		}
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		Run(n, func(c *Comm) {
			v := float64(c.Rank() + 1)
			want := float64(n * (n + 1) / 2)
			got := c.AllreduceFloat64(v, Sum[float64])
			if got != want {
				t.Errorf("n=%d rank %d: Allreduce sum = %v, want %v", n, c.Rank(), got, want)
			}
			m := c.AllreduceFloat64(v, Max[float64])
			if m != float64(n) {
				t.Errorf("n=%d rank %d: Allreduce max = %v, want %v", n, c.Rank(), m, float64(n))
			}
			root := n - 1
			r := c.ReduceFloat64(root, v, Sum[float64])
			if c.Rank() == root && r != want {
				t.Errorf("n=%d: Reduce at root = %v, want %v", n, r, want)
			}
			if c.Rank() != root && r != 0 {
				t.Errorf("n=%d rank %d: non-root Reduce = %v, want 0", n, c.Rank(), r)
			}
		})
	}
}

func TestAllreduceInt64Min(t *testing.T) {
	Run(6, func(c *Comm) {
		got := c.AllreduceInt64(int64(10-c.Rank()), Min[int64])
		if got != 5 {
			t.Errorf("rank %d: min = %d, want 5", c.Rank(), got)
		}
	})
}

func TestGatherAllgather(t *testing.T) {
	const n = 6
	Run(n, func(c *Comm) {
		data := c.Gather(2, c.Rank()*10)
		if c.Rank() == 2 {
			for r := 0; r < n; r++ {
				if data[r].(int) != r*10 {
					t.Errorf("Gather[%d] = %v, want %d", r, data[r], r*10)
				}
			}
		} else if data != nil {
			t.Errorf("rank %d: non-root Gather returned %v", c.Rank(), data)
		}
		all := c.Allgather(c.Rank() + 100)
		for r := 0; r < n; r++ {
			if all[r].(int) != r+100 {
				t.Errorf("Allgather[%d] = %v, want %d", r, all[r], r+100)
			}
		}
	})
}

func TestAlltoall(t *testing.T) {
	const n = 4
	Run(n, func(c *Comm) {
		bufs := make([]any, n)
		for dst := 0; dst < n; dst++ {
			bufs[dst] = c.Rank()*100 + dst
		}
		got := c.Alltoall(bufs)
		for src := 0; src < n; src++ {
			want := src*100 + c.Rank()
			if got[src].(int) != want {
				t.Errorf("rank %d: Alltoall[%d] = %v, want %d", c.Rank(), src, got[src], want)
			}
		}
	})
}

func TestExscan(t *testing.T) {
	const n = 6
	Run(n, func(c *Comm) {
		got := c.ExscanInt64(int64(c.Rank() + 1))
		want := int64(c.Rank() * (c.Rank() + 1) / 2)
		if got != want {
			t.Errorf("rank %d: Exscan = %d, want %d", c.Rank(), got, want)
		}
	})
}

func TestStatsAccounting(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, make([]float64, 10))
			c.Send(1, 2, make([]byte, 3))
			st := c.Stats()
			if st.Sends != 2 {
				t.Errorf("Sends = %d, want 2", st.Sends)
			}
			if st.BytesSent != 83 {
				t.Errorf("BytesSent = %d, want 83", st.BytesSent)
			}
			c.ResetStats()
			if c.Stats().Sends != 0 {
				t.Error("ResetStats did not zero counters")
			}
		} else {
			c.Recv(0, 1)
			c.Recv(0, 2)
		}
	})
}

func TestRecvBytesAndTypeMismatch(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte{9, 8})
			c.Send(1, 2, 42) // not a []byte
		} else {
			b, src := c.RecvBytes(0, 1)
			if src != 0 || len(b) != 2 || b[0] != 9 {
				t.Errorf("RecvBytes got %v from %d", b, src)
			}
			defer func() {
				if recover() == nil {
					t.Error("type mismatch did not panic")
				}
			}()
			c.RecvBytes(0, 2)
		}
	})
}

func TestRunValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run(0) did not panic")
		}
	}()
	Run(0, func(c *Comm) {})
}

func TestWorldRankOnWorld(t *testing.T) {
	Run(3, func(c *Comm) {
		if c.WorldRank() != c.Rank() {
			t.Errorf("world comm: WorldRank %d != Rank %d", c.WorldRank(), c.Rank())
		}
	})
}

func TestInvalidPeerPanics(t *testing.T) {
	Run(1, func(c *Comm) {
		mustPanic := func(name string, fn func()) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}
		mustPanic("send out of range", func() { c.Send(5, 1, nil) })
		mustPanic("recv out of range", func() { c.Recv(7, 1) })
		mustPanic("recv negative tag", func() { c.Recv(0, -9) })
	})
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run did not propagate rank panic")
		}
	}()
	Run(3, func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
}

func TestInvalidUserTagPanics(t *testing.T) {
	Run(1, func(c *Comm) {
		defer func() {
			if recover() == nil {
				t.Error("negative user tag did not panic")
			}
		}()
		c.Send(0, -5, nil)
	})
}

// Many rounds of neighbor exchange on a ring must neither deadlock nor
// mismatch — the steady-state pattern of the ghost layer exchange.
func TestRingExchangeManyRounds(t *testing.T) {
	const n = 9
	const rounds = 200
	Run(n, func(c *Comm) {
		left := (c.Rank() + n - 1) % n
		right := (c.Rank() + 1) % n
		v := float64(c.Rank())
		for i := 0; i < rounds; i++ {
			c.Send(right, 3, []float64{v})
			d, _ := c.RecvFloat64s(left, 3)
			v = d[0]
		}
		// After n*k rounds the value returns to the origin; 200 = 22*9+2.
		want := float64((c.Rank() + n - rounds%n) % n)
		if v != want {
			t.Errorf("rank %d: value %v after %d rounds, want %v", c.Rank(), v, rounds, want)
		}
	})
}
