package comm

// World re-growing — the healing counterpart of shrink.go. A Run may be
// started with more ranks than the application actively computes on; the
// extra ranks park as *spares* (ParkSpare) while the first `target` live
// world ranks carry the simulation on the communicator built by
// GrowWorld(target). When a rank fails permanently, the survivors shrink
// around it as usual and then *grow* back to the target size: the same
// GrowWorld call, evaluated against the updated dead set, deterministically
// recruits the lowest-indexed live spare into the active set. The recruit
// observes its own recruitment from the shared dead set after the recovery
// rendezvous, so no membership traffic is needed — like Shrink, GrowWorld
// is pure-local.
//
// Parked spares are full members of the world: they hold mailboxes, the
// socket transport keeps connections (and heartbeats) to them, and they
// join every recovery rendezvous — Recover's quorum spans all live world
// ranks, actives and spares alike.

// growCtxSalt distinguishes the context-id derivation of grown
// communicators from Shrink's: a heal performs both a shrink and a grow
// within one recovery epoch, so the two derivations must mix different
// inputs. The salt has bit 62 set, a value no Split or Shrink context
// occupies in practice.
const growCtxSalt = uint64(1) << 62

// WorldSize returns the total number of ranks of the Run this
// communicator belongs to, including parked spares and dead ranks.
func (c *Comm) WorldSize() int { return c.w.size }

// GrowWorld builds the communicator of the first `target` live world
// ranks, in world-rank order — the *active* communicator of a world with
// spares. Pure-local, like Shrink: the members agree because the dead set
// and the epoch are shared world state. Fewer than `target` live ranks
// yield a smaller communicator (the spare pool is exhausted); a caller
// outside the active set receives nil. Must be called at an agreed point
// (at world start, or directly after Recover), because the context id is
// derived from the recovery epoch.
func (c *Comm) GrowWorld(target int) *Comm {
	w := c.w
	w.recMu.Lock()
	dead := append([]bool(nil), w.dead...)
	w.recMu.Unlock()

	me := c.WorldRank()
	var group []int
	toIndex := make(map[int]int)
	myRank := -1
	for wr := 0; wr < w.size && len(group) < target; wr++ {
		if dead[wr] {
			continue
		}
		if wr == me {
			myRank = len(group)
		}
		toIndex[wr] = len(group)
		group = append(group, wr)
	}
	if myRank < 0 {
		return nil
	}
	// Deterministic context id in the negative (recovery) context space,
	// mixed from the epoch and the grow salt. All members agree because
	// the epoch is shared; successive grows differ because every recovery
	// advances the epoch; and the salt keeps a grow at epoch E disjoint
	// from the shrink at the same epoch.
	h := mix64(uint64(w.epoch.Load())<<32 ^ growCtxSalt)
	ctx := -int(h>>1) - 1
	return &Comm{
		w: w, group: group, toIndex: toIndex, rank: myRank,
		ctx: ctx, stats: c.stats, tel: c.tel,
	}
}

// activeMemberLocked reports whether this rank is among the first
// `target` live world ranks. Caller holds w.recMu.
func (c *Comm) activeMemberLocked(target int) bool {
	w := c.w
	me := c.WorldRank()
	n := 0
	for wr := 0; wr < w.size && n < target; wr++ {
		if w.dead[wr] {
			continue
		}
		if wr == me {
			return true
		}
		n++
	}
	return false
}

// ParkSpare blocks the calling rank until the active world of the given
// target size needs it or the run ends. While parked, the rank joins
// every recovery rendezvous (Recover's quorum spans all live world
// ranks). It returns (epoch, true) when, after a completed recovery, this
// rank has become a member of the active set — the caller must then build
// the active communicator with GrowWorld(target) and join the
// application's healing protocol — or (0, false) once ReleaseSpares has
// been called (the run is over and the spare was never needed).
func (c *Comm) ParkSpare(target int) (int64, bool) {
	w := c.w
	w.recMu.Lock()
	defer w.recMu.Unlock()
	for {
		if w.sparesReleased {
			return 0, false
		}
		if w.failure.Load() == nil {
			// Nothing to do: wait for a declared failure or the release.
			// declareFailure broadcasts recCond, so the wakeup is not lost.
			w.recCond.Wait()
			continue
		}
		// A failure is declared: join the rendezvous exactly as Recover
		// does, and re-examine the active set once it completes.
		w.recCount++
		gen := w.recGen
		w.finishRecoveryLocked()
		for gen == w.recGen && !w.sparesReleased {
			w.recCond.Wait()
		}
		if w.sparesReleased {
			// The run is ending mid-recovery (e.g. the failure budget was
			// exhausted); the rendezvous will never complete.
			return 0, false
		}
		if c.activeMemberLocked(target) {
			return w.epoch.Load(), true
		}
	}
}

// Accuse declares the given world rank failed, exactly as the built-in
// failure detectors (receive deadline, connection heartbeat) would: every
// pending error-returning operation aborts with a *RankFailedError and
// parked spares wake into the recovery rendezvous. It is the ULFM
// "revoke" analogue for callers that learn about a death out-of-band — a
// supervisor process, or a test harness. Only the first accusation of an
// epoch sticks; Accuse does not mark the rank dead (see MarkDead).
func (c *Comm) Accuse(worldRank int, cause string) {
	c.w.declareFailure(&RankFailedError{Rank: worldRank, Cause: cause})
}

// ReleaseSpares marks the run as over for every parked spare: current and
// future ParkSpare calls return immediately with joined=false. Idempotent
// and callable by any rank on any communicator of the world; the resilient
// driver calls it on every exit path so spares can never outlive the
// active ranks. Terminal for the world — a released world cannot park
// spares again.
func (c *Comm) ReleaseSpares() {
	w := c.w
	w.recMu.Lock()
	w.sparesReleased = true
	w.recCond.Broadcast()
	w.recMu.Unlock()
}
