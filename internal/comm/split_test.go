package comm

import "testing"

// Split partitions ranks into independent communicators with their own
// rank numbering, collectives and isolated message traffic.
func TestSplitBasics(t *testing.T) {
	const n = 8
	Run(n, func(c *Comm) {
		// Even/odd split, ordered by world rank.
		sub := c.Split(c.Rank()%2, c.Rank())
		if sub == nil {
			t.Errorf("rank %d: nil subcomm", c.Rank())
			return
		}
		if sub.Size() != n/2 {
			t.Errorf("subcomm size %d, want %d", sub.Size(), n/2)
		}
		if sub.Rank() != c.Rank()/2 {
			t.Errorf("world %d: sub rank %d, want %d", c.Rank(), sub.Rank(), c.Rank()/2)
		}
		if sub.WorldRank() != c.Rank() {
			t.Errorf("WorldRank = %d, want %d", sub.WorldRank(), c.Rank())
		}
		// Collectives within the subgroup.
		sum := sub.AllreduceInt64(int64(c.Rank()), Sum[int64])
		want := int64(0 + 2 + 4 + 6)
		if c.Rank()%2 == 1 {
			want = 1 + 3 + 5 + 7
		}
		if sum != want {
			t.Errorf("world %d: subgroup sum %d, want %d", c.Rank(), sum, want)
		}
	})
}

// Messages in a subcommunicator must not interfere with world traffic,
// even with identical tags and overlapping rank numbers.
func TestSplitContextIsolation(t *testing.T) {
	const n = 4
	Run(n, func(c *Comm) {
		sub := c.Split(c.Rank()%2, 0)
		// World: rank 0 -> rank 1, tag 7. Sub (even group): sub-rank 0
		// (world 0) -> sub-rank 1 (world 2), same tag.
		if c.Rank() == 0 {
			c.Send(1, 7, "world")
			sub.Send(1, 7, "sub-even")
		}
		if c.Rank() == 1 {
			v, _ := c.Recv(0, 7)
			if v.(string) != "world" {
				t.Errorf("world message got %v", v)
			}
		}
		if c.Rank() == 2 {
			v, src := sub.Recv(0, 7)
			if v.(string) != "sub-even" || src != 0 {
				t.Errorf("sub message got %v from %d", v, src)
			}
		}
		c.Barrier()
	})
}

// Key ordering controls the new rank numbering; negative colors opt out.
func TestSplitKeysAndOptOut(t *testing.T) {
	const n = 6
	Run(n, func(c *Comm) {
		color := 0
		if c.Rank() == 5 {
			color = -1 // opt out
		}
		// Reverse ordering via descending keys.
		sub := c.Split(color, -c.Rank())
		if c.Rank() == 5 {
			if sub != nil {
				t.Error("opted-out rank received a communicator")
			}
			return
		}
		if sub.Size() != 5 {
			t.Errorf("size %d, want 5", sub.Size())
		}
		// World rank 4 has the smallest key (-4) -> sub rank 0.
		want := 4 - c.Rank()
		if sub.Rank() != want {
			t.Errorf("world %d: sub rank %d, want %d", c.Rank(), sub.Rank(), want)
		}
	})
}

// Nested splits: a subgroup can be split again; contexts stay distinct.
func TestNestedSplit(t *testing.T) {
	const n = 8
	Run(n, func(c *Comm) {
		half := c.Split(c.Rank()/4, c.Rank()) // 0-3 and 4-7
		quarter := half.Split(half.Rank()/2, half.Rank())
		if quarter.Size() != 2 {
			t.Errorf("quarter size %d, want 2", quarter.Size())
		}
		sum := quarter.AllreduceInt64(int64(c.Rank()), Sum[int64])
		pair := c.Rank() / 2 * 2
		if sum != int64(pair+pair+1) {
			t.Errorf("world %d: pair sum %d, want %d", c.Rank(), sum, pair+pair+1)
		}
		// The parent communicator still works afterwards.
		total := c.AllreduceInt64(1, Sum[int64])
		if total != n {
			t.Errorf("world collective after splits = %d", total)
		}
	})
}

// Repeated splits on the same handle produce distinct contexts: two
// same-color splits do not cross-match.
func TestRepeatedSplitDistinctContexts(t *testing.T) {
	const n = 4
	Run(n, func(c *Comm) {
		a := c.Split(0, c.Rank())
		b := c.Split(0, c.Rank())
		if c.Rank() == 0 {
			a.Send(1, 3, "A")
			b.Send(1, 3, "B")
		}
		if c.Rank() == 1 {
			// Receive from b first: must get "B", not "A".
			vb, _ := b.Recv(0, 3)
			va, _ := a.Recv(0, 3)
			if vb.(string) != "B" || va.(string) != "A" {
				t.Errorf("context mixing: a=%v b=%v", va, vb)
			}
		}
		c.Barrier()
	})
}

// Stats are shared across a rank's communicators.
func TestSplitSharedStats(t *testing.T) {
	Run(2, func(c *Comm) {
		c.ResetStats()
		sub := c.Split(0, c.Rank())
		before := c.Stats().Sends
		if sub.Rank() == 0 {
			sub.Send(1, 1, []byte{1, 2, 3})
		} else {
			sub.Recv(0, 1)
		}
		if sub.Rank() == 0 && c.Stats().Sends != before+1 {
			t.Errorf("subcomm send not visible in shared stats")
		}
		c.Barrier()
	})
}
