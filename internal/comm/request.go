package comm

import "fmt"

// Nonblocking receives — the split post/complete half of the MPI subset,
// used by the ghost-layer exchange to overlap communication with
// computation (post receives, sweep the interior blocks, then complete).
//
// The runtime is eager: a sender deposits its message directly into the
// receiver's mailbox without a rendezvous, so a posted receive needs no
// progress thread. All matching work happens in Wait, which blocks only
// if the message has not yet arrived; everything computed between Irecv
// and Wait therefore shrinks the blocked time exactly like an
// MPI_Irecv/MPI_Wait pair overlapping an interior sweep.

// RecvRequest is a posted nonblocking receive created by Irecv and
// completed by exactly one Wait (or typed WaitFloat64s) call.
type RecvRequest struct {
	c    *Comm
	src  int
	tag  int
	done bool
}

// Irecv posts a nonblocking receive for a message from src (or AnySource)
// with the given tag (or AnyTag) on this communicator.
func (c *Comm) Irecv(src, tag int) *RecvRequest {
	req := new(RecvRequest)
	c.IrecvInit(req, src, tag)
	return req
}

// IrecvInit (re)initializes req in place as a freshly posted nonblocking
// receive — the allocation-free variant of Irecv for hot paths that keep
// one request object per communication partner and re-post it every step,
// like MPI persistent requests. req must not have an outstanding
// (un-Waited) post.
func (c *Comm) IrecvInit(req *RecvRequest, src, tag int) {
	if tag < 0 && tag != AnyTag {
		panic("comm: user tags must be non-negative")
	}
	if src != AnySource && (src < 0 || src >= len(c.group)) {
		panic(fmt.Sprintf("comm: rank %d posts receive from invalid rank %d", c.rank, src))
	}
	*req = RecvRequest{c: c, src: src, tag: tag}
}

// Wait completes the receive, blocking until the matching message arrives
// and returning its payload and origin (communicator-relative). Like
// RecvErr it returns a typed *RankFailedError instead of deadlocking when
// a rank failure has been declared or the configured receive timeout
// expires. Completing a request twice is a programming error and panics.
func (r *RecvRequest) Wait() (any, int, error) {
	if r.done {
		panic("comm: RecvRequest completed twice")
	}
	r.done = true
	return r.c.recvErr(r.src, r.tag)
}

// WaitFloat64s is Wait with a typed payload; a payload type mismatch is a
// programming error and panics. The typed path never boxes the payload,
// so completing a float64 receive performs no heap allocation.
func (r *RecvRequest) WaitFloat64s() ([]float64, int, error) {
	if r.done {
		panic("comm: RecvRequest completed twice")
	}
	r.done = true
	return r.c.recvFloat64s(r.src, r.tag, r.c.w.opts.RecvTimeout)
}
