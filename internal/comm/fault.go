package comm

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Deterministic fault injection. A FaultPlan describes communication
// faults as a pure function of (seed, sender rank, per-rank send counter)
// plus explicit rank-crash trigger points, so a faulty run is exactly
// reproducible: the same plan against the same SPMD program injects the
// same faults, independent of goroutine scheduling.

// FaultPlan describes the faults to inject into one Run.
type FaultPlan struct {
	// Seed drives the per-message drop/delay decisions.
	Seed int64
	// Drop is the probability in [0,1] that a point-to-point message
	// (including collective-internal ones) is silently discarded.
	Drop float64
	// DelayProb is the probability in [0,1] that a message is delivered
	// late, after a pseudo-random delay in (0, MaxDelay].
	DelayProb float64
	// MaxDelay bounds injected delivery delays.
	MaxDelay time.Duration
	// Crashes lists rank crashes: the victim rank panics with a Crash
	// value at the first SetStep call whose step reaches the trigger.
	// Each entry fires at most once, even across recovery replays.
	Crashes []CrashSpec
	// Hangs lists silent rank failures: the victim panics with a Hang
	// value at the trigger step WITHOUT declaring a global failure — it
	// simply stops communicating, modeling a hung or partitioned node.
	// Survivors only notice through the failure-detection deadline
	// (Options.FailTimeout), which accuses the silent rank by timeout.
	// Each entry fires at most once, even across recovery replays. A
	// driver must recover by shrinking (the victim never rejoins); the
	// rewind driver would wait for the silent rank forever.
	Hangs []CrashSpec
}

// CrashSpec crashes world rank Rank at simulation step Step.
type CrashSpec struct {
	Rank int
	Step int
}

// Validate checks the plan against a world of n ranks; RunWithOptions
// panics on an invalid plan, so front ends should validate user-supplied
// plans first.
func (p *FaultPlan) Validate(n int) error {
	if p.Drop < 0 || p.Drop > 1 {
		return fmt.Errorf("fault plan: drop fraction %v outside [0,1]", p.Drop)
	}
	if p.DelayProb < 0 || p.DelayProb > 1 {
		return fmt.Errorf("fault plan: delay probability %v outside [0,1]", p.DelayProb)
	}
	if p.DelayProb > 0 && p.MaxDelay <= 0 {
		return fmt.Errorf("fault plan: delay probability %v requires a positive MaxDelay", p.DelayProb)
	}
	for _, cs := range p.Crashes {
		if cs.Rank < 0 || cs.Rank >= n {
			return fmt.Errorf("fault plan: crash rank %d outside world of size %d", cs.Rank, n)
		}
		if cs.Step < 0 {
			return fmt.Errorf("fault plan: negative crash step %d", cs.Step)
		}
	}
	for _, hs := range p.Hangs {
		if hs.Rank < 0 || hs.Rank >= n {
			return fmt.Errorf("fault plan: hang rank %d outside world of size %d", hs.Rank, n)
		}
		if hs.Step < 0 {
			return fmt.Errorf("fault plan: negative hang step %d", hs.Step)
		}
	}
	return nil
}

// Fault decision sub-streams.
const (
	faultKindDrop = 1 + iota
	faultKindDelay
	faultKindDelayLen
)

// mix64 is the splitmix64 finalizer, a cheap high-quality bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// chance returns a deterministic uniform value in [0,1) for the n-th send
// of a rank under decision sub-stream kind.
func (p *FaultPlan) chance(kind, rank int, n uint64) float64 {
	h := mix64(uint64(p.Seed)<<16 ^ uint64(kind)<<56 ^ uint64(rank)<<40 ^ n)
	return float64(h>>11) / float64(1<<53)
}

// injectSendFaults applies drop/delay decisions to one outgoing message.
// It returns done=true when the message was consumed by the injector
// (dropped, or scheduled for delayed delivery).
func (c *Comm) injectSendFaults(p *FaultPlan, worldDst int, msg message) (done bool, err error) {
	w := c.w
	n := w.sendSeq[c.WorldRank()].Add(1)
	if p.Drop > 0 && p.chance(faultKindDrop, c.WorldRank(), n) < p.Drop {
		c.stats.Dropped++
		c.tel.drop(worldDst)
		return true, nil
	}
	if p.DelayProb > 0 && p.chance(faultKindDelay, c.WorldRank(), n) < p.DelayProb {
		c.stats.Delayed++
		c.tel.delay(worldDst)
		if msg.f64 != nil {
			// Typed payloads may be persistent buffers the sender repacks
			// next step; a delayed delivery must snapshot the contents.
			msg.f64 = append([]float64(nil), msg.f64...)
		}
		d := time.Duration(p.chance(faultKindDelayLen, c.WorldRank(), n) * float64(p.MaxDelay))
		epoch := w.epoch.Load()
		mb := w.mailboxes[worldDst]
		// The timer is registered before its callback can observe the
		// registry, and the callback delivers only while still registered:
		// stopDelayedTimers (recovery, run teardown) clears the registry,
		// so a timer it could not Stop in time sheds its message instead of
		// delivering into a recovered or torn-down world.
		w.timerMu.Lock()
		if w.timersClosed {
			w.timerMu.Unlock()
			return true, nil
		}
		var t *time.Timer
		t = time.AfterFunc(d, func() {
			w.timerMu.Lock()
			_, live := w.timers[t]
			delete(w.timers, t)
			w.timerMu.Unlock()
			// A recovery between send and delivery invalidated this
			// message: traffic never crosses epochs.
			if !live || w.epoch.Load() != epoch {
				return
			}
			mb.put(msg, w.failErr) //nolint:errcheck // late traffic may be shed on failure
		})
		w.timers[t] = struct{}{}
		w.timerMu.Unlock()
		return true, nil
	}
	return false, nil
}

// stopDelayedTimers stops and deregisters all pending delayed-delivery
// timers; final additionally refuses future registrations (run teardown).
// A timer that already fired finds itself deregistered and sheds its
// message.
func (w *world) stopDelayedTimers(final bool) {
	w.timerMu.Lock()
	for t := range w.timers {
		t.Stop()
	}
	clear(w.timers)
	if final {
		w.timersClosed = true
	}
	w.timerMu.Unlock()
}

// pendingDelayedTimers reports the number of registered delayed-delivery
// timers (teardown invariant checked by tests).
func (w *world) pendingDelayedTimers() int {
	w.timerMu.Lock()
	defer w.timerMu.Unlock()
	return len(w.timers)
}

// Crash is the panic value of an injected rank crash. The resilient
// driver (sim.RunResilient) recovers it; if it escapes to Run the whole
// run fails loudly, like an unhandled fatal signal.
type Crash struct{ Rank int }

func (c Crash) String() string {
	return fmt.Sprintf("injected crash of rank %d", c.Rank)
}

// Hang is the panic value of an injected silent failure (FaultPlan.Hangs).
// Unlike Crash it declares nothing: the rank just stops participating, and
// the rest of the world discovers the failure only through the
// failure-detection deadline. The resilient driver catches it and retires
// the rank without ever communicating again.
type Hang struct{ Rank int }

func (h Hang) String() string {
	return fmt.Sprintf("injected silence of rank %d", h.Rank)
}

// RankFailedError reports that a rank has failed (injected crash) or has
// been declared failed (receive timeout). Once declared, every
// error-returning operation of every rank fails fast with this error
// until Recover is called — the in-process analogue of MPI ULFM's
// communicator revocation, which keeps collectives from deadlocking on a
// dead rank.
type RankFailedError struct {
	// Rank is the world rank that failed or was accused.
	Rank int
	// Cause describes the detection: injected crash or timeout.
	Cause string
}

func (e *RankFailedError) Error() string {
	return fmt.Sprintf("comm: rank %d failed (%s)", e.Rank, e.Cause)
}

// timeoutCausePrefix marks failures declared by an expired receive
// deadline, so drivers can distinguish detection by timeout from an
// injected crash.
const timeoutCausePrefix = "timeout: "

// TimedOut reports whether this failure was declared by the
// failure-detection deadline (Options.FailTimeout / RecvTimeout) rather
// than an injected crash.
func (e *RankFailedError) TimedOut() bool {
	return strings.HasPrefix(e.Cause, "timeout")
}

// IsRankFailure reports whether err is (or wraps) a rank failure.
func IsRankFailure(err error) bool {
	var rf *RankFailedError
	return errors.As(err, &rf)
}

// SetStep announces the current simulation step of this rank to the fault
// injector; crash triggers whose step has been reached fire here, making
// the crash point deterministic regardless of the step's communication
// pattern. A no-op without a fault plan.
func (c *Comm) SetStep(step int) {
	p := c.w.opts.Faults
	if p == nil {
		return
	}
	me := c.WorldRank()
	for i := range p.Crashes {
		cs := p.Crashes[i]
		if cs.Rank == me && step >= cs.Step && c.w.crashFired[i].CompareAndSwap(false, true) {
			c.w.declareFailure(&RankFailedError{
				Rank:  me,
				Cause: fmt.Sprintf("injected crash at step %d", step),
			})
			panic(Crash{Rank: me})
		}
	}
	for i := range p.Hangs {
		hs := p.Hangs[i]
		if hs.Rank == me && step >= hs.Step && c.w.hangFired[i].CompareAndSwap(false, true) {
			// Deliberately no declareFailure: the world must detect the
			// silence on its own, via the failure-detection deadline.
			panic(Hang{Rank: me})
		}
	}
}

// Failed returns the currently declared rank failure, or nil.
func (c *Comm) Failed() *RankFailedError { return c.w.failure.Load() }

// Recover is the world-wide recovery rendezvous: every *live* rank of the
// Run (the full world minus ranks marked dead with MarkDead/Retire,
// regardless of subcommunicators) must call it after a failure. Once the
// last live rank arrives, all mailboxes are purged, pending
// delayed-delivery timers stopped, the failure flag cleared and the
// message epoch advanced, so stale traffic from before the failure can
// never match a post-recovery receive. It returns the new epoch number.
//
// Recover is intentionally built on shared synchronization rather than
// messages — it models the out-of-band runtime service (mpirun, a
// resource manager) that real fault-tolerant MPI relies on to reach ranks
// whose communicators are broken.
func (c *Comm) Recover() int64 {
	w := c.w
	w.recMu.Lock()
	w.recCount++
	gen := w.recGen
	w.finishRecoveryLocked()
	for gen == w.recGen {
		w.recCond.Wait()
	}
	epoch := w.epoch.Load()
	w.recMu.Unlock()
	return epoch
}

// finishRecoveryLocked completes a pending recovery rendezvous once every
// live rank has arrived. Caller holds recMu. It is re-evaluated both when
// a rank arrives in Recover and when MarkDead lowers the quorum — the
// orderings "survivors arrive first, then learn who died" and vice versa
// both terminate.
func (w *world) finishRecoveryLocked() {
	if w.recCount == 0 || w.recCount < w.size-w.deadCount {
		return
	}
	w.recCount = 0
	w.recGen++
	w.epoch.Add(1)
	w.stopDelayedTimers(false)
	for _, m := range w.mailboxes {
		m.purge()
	}
	w.failure.Store(nil)
	w.recCond.Broadcast()
}
