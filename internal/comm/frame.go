package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"
)

// Wire format of the socket transport (see docs/TRANSPORT.md).
//
// Every frame is a fixed 56-byte header followed by a length-prefixed
// payload. The header carries the message routing triple (context, source,
// tag), the per-directed-stream sequence number driving idempotent resend,
// a piggybacked cumulative acknowledgement, and the world epoch the frame
// was sent in (stale cross-epoch traffic is shed at delivery, the wire
// analogue of the recovery mailbox purge). The trailing CRC-32C covers the
// first 52 header bytes plus the payload, so a flipped bit anywhere in the
// frame is detected before anything is delivered.
//
//	offset  size  field
//	 0       4    magic "WFR1"
//	 4       1    kind  (data, heartbeat, hello, welcome)
//	 5       1    enc   (payload encoding)
//	 6       2    reserved, must be zero
//	 8       8    seq    per-directed-stream sequence (data), lastSent (heartbeat)
//	16       8    ack    cumulative ack of the reverse stream
//	24       8    epoch  world epoch at send time
//	32       8    ctx    communicator context id
//	40       4    tag
//	44       4    source world rank
//	48       4    payload length in bytes
//	52       4    CRC-32C (Castagnoli) over header[0:52] ++ payload

const (
	frameMagic     = 0x31524657 // "WFR1" little-endian
	frameHeaderLen = 56

	// defaultMaxFrameBytes guards the decoder against hostile or corrupt
	// length prefixes: a frame above the bound is rejected before any
	// payload allocation.
	defaultMaxFrameBytes = 64 << 20
)

// frameKind discriminates the frame types of the wire protocol.
type frameKind uint8

const (
	frameData      frameKind = 1 // one comm message
	frameHeartbeat frameKind = 2 // liveness + tail-gap probe, carries acks
	frameHello     frameKind = 3 // dialer's half of the connection handshake
	frameWelcome   frameKind = 4 // acceptor's half of the connection handshake
)

// payloadEnc identifies how a data frame's payload bytes map back to the
// message payload. Opaque payloads (arbitrary interface values of the
// collectives and migration paths) are not serialized: the frame carries
// no bytes and the receiver resolves the sender's retained reference by
// sequence number — valid because both endpoints live in one process (see
// docs/TRANSPORT.md, "single-process scope").
type payloadEnc uint8

const (
	encNil     payloadEnc = 0 // nil payload (barriers)
	encF64s    payloadEnc = 1 // []float64, raw little-endian bits
	encBytes   payloadEnc = 2 // []byte
	encI64s    payloadEnc = 3 // []int64
	encInt64   payloadEnc = 4 // int64 scalar
	encInt     payloadEnc = 5 // int scalar (carried as 64-bit)
	encFloat64 payloadEnc = 6 // float64 scalar
	encOpaque  payloadEnc = 7 // process-local reference, no payload bytes
)

// Typed decoder errors. The reader severs and redials the connection on
// any of them; the fuzz harness asserts malformed input can only produce
// these (never a panic, never an unbounded allocation).
var (
	// ErrBadMagic reports a frame not starting with the WFR1 magic — the
	// stream lost framing or the peer speaks another protocol.
	ErrBadMagic = errors.New("comm: frame header magic mismatch")
	// ErrBadFrame reports an unknown frame kind or payload encoding, or a
	// nonzero reserved field.
	ErrBadFrame = errors.New("comm: malformed frame header")
	// ErrFrameTooLarge reports a length prefix above the configured
	// MaxFrameBytes bound, rejected before any payload allocation.
	ErrFrameTooLarge = errors.New("comm: frame exceeds maximum size")
	// ErrChecksum reports a frame whose CRC-32C does not cover its bytes.
	ErrChecksum = errors.New("comm: frame checksum mismatch")
	// ErrTruncated reports a stream ending mid-frame.
	ErrTruncated = errors.New("comm: truncated frame")
)

// castagnoli is the CRC-32C table shared by all encode/decode sites.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeader is the decoded header of one frame.
type frameHeader struct {
	kind   frameKind
	enc    payloadEnc
	seq    uint64
	ack    uint64
	epoch  uint64
	ctx    int64
	tag    int32
	source int32
	length uint32
}

// encodeFrameHeader serializes h into dst and stamps the CRC over the
// header and the payload bytes. Allocation-free: dst is the caller's
// persistent scratch.
func encodeFrameHeader(dst *[frameHeaderLen]byte, h frameHeader, payload []byte) {
	binary.LittleEndian.PutUint32(dst[0:4], frameMagic)
	dst[4] = byte(h.kind)
	dst[5] = byte(h.enc)
	dst[6], dst[7] = 0, 0
	binary.LittleEndian.PutUint64(dst[8:16], h.seq)
	binary.LittleEndian.PutUint64(dst[16:24], h.ack)
	binary.LittleEndian.PutUint64(dst[24:32], h.epoch)
	binary.LittleEndian.PutUint64(dst[32:40], uint64(h.ctx))
	binary.LittleEndian.PutUint32(dst[40:44], uint32(h.tag))
	binary.LittleEndian.PutUint32(dst[44:48], uint32(h.source))
	binary.LittleEndian.PutUint32(dst[48:52], uint32(len(payload)))
	crc := crc32.Checksum(dst[0:52], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(dst[52:56], crc)
}

// decodeFrameHeader validates and parses a raw header. The payload CRC is
// checked separately once the payload bytes are in (checkFrameCRC), so
// hot-path readers can stream the payload into typed buffers.
func decodeFrameHeader(raw *[frameHeaderLen]byte, maxFrameBytes int) (frameHeader, error) {
	if binary.LittleEndian.Uint32(raw[0:4]) != frameMagic {
		return frameHeader{}, ErrBadMagic
	}
	h := frameHeader{
		kind:   frameKind(raw[4]),
		enc:    payloadEnc(raw[5]),
		seq:    binary.LittleEndian.Uint64(raw[8:16]),
		ack:    binary.LittleEndian.Uint64(raw[16:24]),
		epoch:  binary.LittleEndian.Uint64(raw[24:32]),
		ctx:    int64(binary.LittleEndian.Uint64(raw[32:40])),
		tag:    int32(binary.LittleEndian.Uint32(raw[40:44])),
		source: int32(binary.LittleEndian.Uint32(raw[44:48])),
		length: binary.LittleEndian.Uint32(raw[48:52]),
	}
	if raw[6] != 0 || raw[7] != 0 {
		return frameHeader{}, ErrBadFrame
	}
	if h.kind < frameData || h.kind > frameWelcome {
		return frameHeader{}, fmt.Errorf("%w: unknown kind %d", ErrBadFrame, h.kind)
	}
	if h.enc > encOpaque {
		return frameHeader{}, fmt.Errorf("%w: unknown payload encoding %d", ErrBadFrame, h.enc)
	}
	if h.kind != frameData && h.length != 0 {
		return frameHeader{}, fmt.Errorf("%w: %v frame with payload", ErrBadFrame, h.kind)
	}
	if h.enc == encOpaque && h.length != 0 {
		return frameHeader{}, fmt.Errorf("%w: opaque frame with payload bytes", ErrBadFrame)
	}
	switch h.enc {
	case encF64s, encI64s:
		if h.length%8 != 0 {
			return frameHeader{}, fmt.Errorf("%w: %d payload bytes not a multiple of 8", ErrBadFrame, h.length)
		}
	case encInt64, encInt, encFloat64:
		if h.length != 8 {
			return frameHeader{}, fmt.Errorf("%w: scalar frame with %d payload bytes", ErrBadFrame, h.length)
		}
	case encNil:
		if h.length != 0 {
			return frameHeader{}, fmt.Errorf("%w: nil-payload frame with %d payload bytes", ErrBadFrame, h.length)
		}
	}
	if maxFrameBytes <= 0 {
		maxFrameBytes = defaultMaxFrameBytes
	}
	if int64(h.length) > int64(maxFrameBytes) {
		return frameHeader{}, fmt.Errorf("%w: %d bytes over the %d bound", ErrFrameTooLarge, h.length, maxFrameBytes)
	}
	return h, nil
}

// checkFrameCRC verifies the frame checksum given the raw header bytes
// and the payload as read off the wire.
func checkFrameCRC(raw *[frameHeaderLen]byte, payload []byte) error {
	want := binary.LittleEndian.Uint32(raw[52:56])
	crc := crc32.Checksum(raw[0:52], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != want {
		return ErrChecksum
	}
	return nil
}

// frameScratch is a reader's reusable decode state: the header buffer and
// a grow-once payload staging area for byte-oriented encodings.
type frameScratch struct {
	hdr     [frameHeaderLen]byte
	payload []byte
}

// grow returns a scratch payload slice of exactly n bytes, reusing the
// backing array once it is large enough.
func (s *frameScratch) grow(n int) []byte {
	if cap(s.payload) < n {
		s.payload = make([]byte, n)
	}
	return s.payload[:cap(s.payload)][:n]
}

// readFrame reads and validates one whole frame from r, staging the
// payload into the scratch buffer. The returned payload slice aliases the
// scratch and is only valid until the next readFrame call. A stream
// ending mid-frame returns ErrTruncated (a clean EOF before any header
// byte returns io.EOF); any malformed content returns one of the typed
// decoder errors above. The payload allocation is bounded by
// maxFrameBytes regardless of the length prefix.
func readFrame(r io.Reader, maxFrameBytes int, s *frameScratch) (frameHeader, []byte, error) {
	if _, err := io.ReadFull(r, s.hdr[:]); err != nil {
		if err == io.EOF {
			return frameHeader{}, nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return frameHeader{}, nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		return frameHeader{}, nil, err
	}
	h, err := decodeFrameHeader(&s.hdr, maxFrameBytes)
	if err != nil {
		return frameHeader{}, nil, err
	}
	payload := s.grow(int(h.length))
	if _, err := io.ReadFull(r, payload); err != nil {
		return frameHeader{}, nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if err := checkFrameCRC(&s.hdr, payload); err != nil {
		return frameHeader{}, nil, err
	}
	return h, payload, nil
}

// f64Bytes views a []float64 as its raw little-endian byte representation
// without copying — the zero-copy half of "writing directly from the
// persistent aggregated send buffers". Safe on all supported platforms
// (little-endian; float64 and its bit pattern share a layout).
func f64Bytes(f []float64) []byte {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&f[0])), 8*len(f))
}

// i64Bytes views a []int64 as raw bytes without copying.
func i64Bytes(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))
}

// bytesF64 decodes a payload byte slice into dst (len(b)/8 values).
func bytesF64(dst []float64, b []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// bytesI64 decodes a payload byte slice into dst (len(b)/8 values).
func bytesI64(dst []int64, b []byte) {
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// encodeScalar stamps a scalar payload into an 8-byte scratch.
func encodeScalar(dst *[8]byte, enc payloadEnc, data any) {
	switch enc {
	case encInt64:
		binary.LittleEndian.PutUint64(dst[:], uint64(data.(int64)))
	case encInt:
		binary.LittleEndian.PutUint64(dst[:], uint64(int64(data.(int))))
	case encFloat64:
		binary.LittleEndian.PutUint64(dst[:], math.Float64bits(data.(float64)))
	default:
		panic("comm: encodeScalar on non-scalar encoding")
	}
}

// decodeScalar rebuilds the scalar payload of a frame.
func decodeScalar(enc payloadEnc, b []byte) any {
	u := binary.LittleEndian.Uint64(b)
	switch enc {
	case encInt64:
		return int64(u)
	case encInt:
		return int(int64(u))
	case encFloat64:
		return math.Float64frombits(u)
	default:
		panic("comm: decodeScalar on non-scalar encoding")
	}
}

// classifyPayload picks the wire encoding of a message payload. Everything
// not representable as raw bytes travels as an opaque process-local
// reference.
func classifyPayload(msg *message) payloadEnc {
	if msg.f64 != nil {
		return encF64s
	}
	switch msg.data.(type) {
	case nil:
		return encNil
	case []float64:
		return encF64s
	case []byte:
		return encBytes
	case []int64:
		return encI64s
	case int64:
		return encInt64
	case int:
		return encInt
	case float64:
		return encFloat64
	default:
		return encOpaque
	}
}
