package comm

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"walberla/internal/telemetry"
)

// netConn is one endpoint's end of the persistent duplex connection to a
// single peer rank: the outgoing frame stream (sequence counter, retention
// ring, write scratch) and the incoming one (receive cursor, reader decode
// state). Exactly one netConn exists per (endpoint, peer) ordered pair;
// the two ends of a pair share one socket.
type netConn struct {
	ep     *netEndpoint
	peer   int
	dialer bool // this end dials (lower rank); the other end accepts

	mu   sync.Mutex
	cond *sync.Cond
	// sock is the live socket, nil while down. sockGen increments on every
	// install and teardown so readers and error reporters can tell whether
	// their socket is still the current one.
	sock     net.Conn
	sockGen  uint64
	down     bool
	permDown bool // peer (or self) is dead: never reconnect
	everUp   bool // distinguishes first connects from reconnects

	// Outgoing stream state under mu: per-directed-stream data sequence
	// (from 1) and the retention ring of unacked frames, a circular buffer
	// of capacity NetOptions.RetainFrames. A full ring blocks the sender —
	// end-to-end backpressure through the wire.
	sendSeq    uint64
	ring       []retainedFrame
	head, nRet int

	// Persistent write scratch: header buffers and the two-element iovec
	// for gather writes straight out of the caller's payload (the
	// steady-state send performs no payload copy and no allocation).
	hdr    [frameHeaderLen]byte
	hbHdr  [frameHeaderLen]byte
	iov    net.Buffers
	iovArr [2][]byte

	// lastRecv is the highest data sequence delivered off the inbound
	// stream (written by the reader, read by writers stamping acks and by
	// handshakes). lastIn is the wall time (UnixNano) of the last inbound
	// frame — the accusation clock. refusedLeft counts injected handshake
	// refusals still owed (acceptor side).
	lastRecv    atomic.Uint64
	lastIn      atomic.Int64
	refusedLeft atomic.Int64

	// Reader-owned state, serialized across socket generations by
	// readerGate (a reader holds it for its whole life, so a reconnected
	// socket's reader waits for its predecessor to drain). delivering
	// suppresses stall teardown while the reader is blocked depositing
	// into a full mailbox — the link is fine, the receiver is just behind.
	readerGate sync.Mutex
	scratch    frameScratch
	recvBufs   map[recvKey]*recvRing
	delivering atomic.Bool
}

// retainedFrame is one unacked data frame: everything needed to rewrite
// it verbatim after a reconnect. Payload fields alias the sender's buffers
// (zero-copy); exactly one of f64/bytes/i64/word is meaningful, per enc.
type retainedFrame struct {
	seq   uint64
	epoch uint64
	ctx   int64
	tag   int32
	enc   payloadEnc
	f64   []float64
	bytes []byte
	i64   []int64
	word  [8]byte
}

// recvKey indexes a reader's typed-receive buffers by traffic stream.
type recvKey struct {
	ctx int64
	tag int32
}

// recvRing is the reader's per-(ctx, tag) rotation of decode buffers for
// float64 payloads, mirroring the sender's aggregate double buffer: the
// sender's ownership protocol keeps at most two messages of a stream
// pending in the mailbox (the one being consumed plus the one packed
// ahead), so the buffer three deliveries ago is no longer referenced and
// a three-deep rotation is allocation-free in the steady state. If the
// pending count ever reaches the rotation depth the protocol assumption
// does not hold for this stream and the reader falls back to allocating
// fresh buffers (a flood of unconsumed messages must never be silently
// overwritten).
type recvRing struct {
	bufs        [3][]float64
	next        int
	lastPending int
}

// f64Buffer returns the decode target for an n-value float64 payload.
// Reader-owned (readerGate).
func (c *netConn) f64Buffer(k recvKey, n int) ([]float64, *recvRing) {
	r := c.recvBufs[k]
	if r == nil {
		r = &recvRing{}
		c.recvBufs[k] = r
	}
	if r.lastPending >= len(r.bufs) {
		return make([]float64, n), r
	}
	buf := r.bufs[r.next]
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	r.bufs[r.next] = buf
	r.next = (r.next + 1) % len(r.bufs)
	return buf, r
}

// send retains msg as the stream's next data frame and, when the link is
// up, writes it immediately. It never waits for a connection — only for
// ring space — so connection loss is invisible to senders beyond latency.
// Injected frame faults apply exactly once, at first transmission;
// resends are verbatim (a deterministic per-seq drop would otherwise
// repeat forever).
func (c *netConn) send(msg message) (time.Duration, error) {
	ep := c.ep
	t := ep.t
	c.mu.Lock()
	defer c.mu.Unlock()
	var waited time.Duration
	for c.nRet == len(c.ring) && !c.permDown {
		if err := t.bail(); err != nil {
			return waited, err
		}
		t0 := time.Now()
		c.cond.Wait()
		waited += time.Since(t0)
	}
	if c.permDown {
		if err := t.w.failErr(); err != nil {
			return waited, err
		}
		return waited, &RankFailedError{Rank: c.peer, Cause: "send on permanently closed connection"}
	}
	c.sendSeq++
	seq := c.sendSeq
	enc := classifyPayload(&msg)
	rf := retainedFrame{
		seq: seq, epoch: uint64(t.w.epoch.Load()),
		ctx: int64(msg.ctx), tag: int32(msg.tag), enc: enc,
	}
	switch enc {
	case encF64s:
		if msg.f64 != nil {
			rf.f64 = msg.f64
		} else {
			rf.f64 = msg.data.([]float64)
		}
	case encBytes:
		rf.bytes = msg.data.([]byte)
	case encI64s:
		rf.i64 = msg.data.([]int64)
	case encInt64, encInt, encFloat64:
		encodeScalar(&rf.word, enc, msg.data)
	case encOpaque:
		t.opaque.Store(opaqueKey{ep.rank, c.peer, seq}, msg.data)
	}
	c.ring[(c.head+c.nRet)%len(c.ring)] = rf
	c.nRet++

	// First-transmission fault decisions (deterministic per seq).
	var drop, corrupt, sever bool
	if p := t.opts.Faults; p != nil {
		sever = p.severAt(ep.rank, c.peer, seq)
		drop = !sever && p.dropFrame(ep.rank, c.peer, seq)
		corrupt = !sever && !drop && p.corruptFrame(ep.rank, c.peer, seq)
		if d := p.delayFrame(ep.rank, c.peer, seq); d > 0 {
			ep.stats.injDelays.Add(1)
			ep.netFault(c.peer)
			// Sleeping under mu models a serialized slow link: everything
			// behind this frame (including heartbeats) waits too.
			time.Sleep(d)
		}
	}
	ep.noteDataSend()
	switch {
	case ep.isHoled():
		// Swallowed without a trace; only the stall detectors will notice.
	case sever:
		ep.stats.injSevers.Add(1)
		ep.netFault(c.peer)
		c.teardownLocked()
	case drop:
		ep.stats.injDrops.Add(1)
		ep.netFault(c.peer)
	case c.down:
		// Retained; install replays it when the link comes up.
	default:
		if corrupt {
			ep.stats.injCorrupts.Add(1)
			ep.netFault(c.peer)
		}
		c.writeDataLocked(&c.ring[(c.head+c.nRet-1)%len(c.ring)], corrupt)
	}
	return waited, nil
}

// framePayload returns the wire bytes of a retained frame (zero-copy for
// slice payloads).
func framePayload(rf *retainedFrame) []byte {
	switch rf.enc {
	case encF64s:
		return f64Bytes(rf.f64)
	case encBytes:
		return rf.bytes
	case encI64s:
		return i64Bytes(rf.i64)
	case encInt64, encInt, encFloat64:
		return rf.word[:8]
	}
	return nil
}

// writeDataLocked frames and writes one retained frame on the live
// socket. corrupt flips a checksum byte after encoding, so the receiver's
// CRC rejects the frame. Caller holds mu; write errors tear the
// connection down (the frame stays retained) and are never surfaced.
func (c *netConn) writeDataLocked(rf *retainedFrame, corrupt bool) {
	payload := framePayload(rf)
	encodeFrameHeader(&c.hdr, frameHeader{
		kind: frameData, enc: rf.enc, seq: rf.seq, ack: c.lastRecv.Load(),
		epoch: rf.epoch, ctx: rf.ctx, tag: rf.tag, source: int32(c.ep.rank),
	}, payload)
	if corrupt {
		c.hdr[52] ^= 0xff
	}
	if c.writeFrameLocked(c.hdr[:], payload) {
		c.ep.frameSent(int64(frameHeaderLen + len(payload)))
	}
}

// writeHeartbeatLocked writes a liveness probe carrying the cumulative
// ack and the stream's last data sequence (seq): because heartbeats
// follow data on the same FIFO socket, a receiver seeing hb.seq beyond
// its cursor has proof of a lost frame and can force the resend without
// waiting for the next data frame.
func (c *netConn) writeHeartbeatLocked() {
	if c.down || c.ep.isHoled() {
		return
	}
	encodeFrameHeader(&c.hbHdr, frameHeader{
		kind: frameHeartbeat, seq: c.sendSeq, ack: c.lastRecv.Load(),
		epoch: uint64(c.ep.t.w.epoch.Load()), source: int32(c.ep.rank),
	}, nil)
	if c.writeFrameLocked(c.hbHdr[:], nil) {
		c.ep.heartbeat()
	}
}

// writeFrameLocked writes header+payload with a gather write (no payload
// copy), reporting success. Caller holds mu.
func (c *netConn) writeFrameLocked(hdr, payload []byte) bool {
	sock := c.sock
	if sock == nil || c.down {
		return false
	}
	// A peer that stopped reading must not wedge the writer forever: bound
	// the write, turn pathological backpressure into teardown + resend.
	sock.SetWriteDeadline(time.Now().Add(4 * c.ep.t.opts.StallTimeout))
	var nw int64
	var err error
	if len(payload) > 0 {
		c.iovArr[0], c.iovArr[1] = hdr, payload
		c.iov = c.iovArr[:]
		nw, err = c.iov.WriteTo(sock)
		c.iovArr[0], c.iovArr[1] = nil, nil
	} else {
		var n int
		n, err = sock.Write(hdr)
		nw = int64(n)
	}
	c.ep.stats.bytesSent.Add(nw)
	if err != nil {
		c.teardownLocked()
		return false
	}
	return true
}

// teardownLocked drops the live socket: subsequent sends retain only, the
// supervisor notices down and redials (dialer side) or waits for a
// re-accept. Caller holds mu.
func (c *netConn) teardownLocked() {
	if c.down {
		return
	}
	c.down = true
	c.sockGen++
	if c.sock != nil {
		c.sock.Close()
		c.sock = nil
	}
	c.cond.Broadcast()
}

// sever tears the connection down if gen still names the current socket
// (a reader discovering a stale generation must not kill its successor).
func (c *netConn) sever(gen uint64) {
	c.mu.Lock()
	if c.sockGen == gen && !c.permDown {
		c.teardownLocked()
	}
	c.mu.Unlock()
}

// prune acknowledges the outgoing stream up to ack: retained frames with
// seq ≤ ack are released (their opaque payload entries with them) and
// ring-blocked senders wake.
func (c *netConn) prune(ack uint64) {
	c.mu.Lock()
	c.pruneLocked(ack)
	c.mu.Unlock()
}

func (c *netConn) pruneLocked(ack uint64) {
	freed := false
	for c.nRet > 0 {
		rf := &c.ring[c.head]
		if rf.seq > ack {
			break
		}
		if rf.enc == encOpaque {
			c.ep.t.opaque.Delete(opaqueKey{c.ep.rank, c.peer, rf.seq})
		}
		*rf = retainedFrame{}
		c.head = (c.head + 1) % len(c.ring)
		c.nRet--
		freed = true
	}
	if freed {
		c.cond.Broadcast()
	}
}

// resendLocked replays every retained frame in sequence order on a fresh
// socket — verbatim, bypassing fault injection (decisions were spent at
// first transmission). Caller holds mu with the socket installed.
func (c *netConn) resendLocked() {
	if c.nRet == 0 {
		return
	}
	for i := 0; i < c.nRet && !c.down; i++ {
		c.writeDataLocked(&c.ring[(c.head+i)%len(c.ring)], false)
	}
	c.ep.stats.resent.Add(int64(c.nRet))
	c.ep.event(telemetry.PhaseNetResend, c.peer)
}

// install adopts a freshly handshaken socket: prune what the peer already
// acknowledged (peerHas, from its hello/welcome), replay the rest, start
// the reader. Reports whether the socket was accepted. Callers hold a wg
// slot (supervisor or accept handler), which makes the wg.Add for the
// reader safe against shutdown's Wait.
func (c *netConn) install(sock net.Conn, peerHas uint64) bool {
	t := c.ep.t
	c.mu.Lock()
	if c.permDown || t.closed.Load() {
		c.mu.Unlock()
		sock.Close()
		return false
	}
	if c.sock != nil {
		c.sock.Close()
	}
	c.sockGen++
	gen := c.sockGen
	c.sock = sock
	c.down = false
	reconnect := c.everUp
	c.everUp = true
	c.lastIn.Store(time.Now().UnixNano())
	c.pruneLocked(peerHas)
	c.resendLocked()
	c.cond.Broadcast()
	c.mu.Unlock()
	ep := c.ep
	ep.stats.connects.Add(1)
	if reconnect {
		ep.stats.reconnects.Add(1)
		ep.event(telemetry.PhaseNetReconnect, c.peer)
	} else {
		ep.event(telemetry.PhaseNetConnect, c.peer)
	}
	t.wg.Add(1)
	go c.readLoop(sock, gen)
	return true
}

// permanentlyDown closes the connection forever (dead peer or shutdown):
// no reconnects, retained frames and their opaque entries shed, all
// waiters released.
func (c *netConn) permanentlyDown() {
	c.mu.Lock()
	if c.permDown {
		c.mu.Unlock()
		return
	}
	c.permDown = true
	c.down = true
	c.sockGen++
	if c.sock != nil {
		c.sock.Close()
		c.sock = nil
	}
	for i := 0; i < c.nRet; i++ {
		rf := &c.ring[(c.head+i)%len(c.ring)]
		if rf.enc == encOpaque {
			c.ep.t.opaque.Delete(opaqueKey{c.ep.rank, c.peer, rf.seq})
		}
		*rf = retainedFrame{}
	}
	c.head, c.nRet = 0, 0
	c.cond.Broadcast()
	c.mu.Unlock()
}
