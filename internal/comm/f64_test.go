package comm

import (
	"sync"
	"testing"
)

// TestSendFloat64sTypedRoundTrip: the typed send/receive pair delivers the
// exact payload slice (eager zero-copy transport) without boxing, and the
// typed receive also accepts float64 payloads sent via the generic path.
func TestSendFloat64sTypedRoundTrip(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{1, 2, 3}
			if err := c.SendFloat64s(1, 5, buf); err != nil {
				t.Error(err)
			}
			c.Send(1, 6, []float64{4, 5})
			return
		}
		got, src := c.RecvFloat64s(0, 5)
		if src != 0 || len(got) != 3 || got[0] != 1 || got[2] != 3 {
			t.Errorf("typed receive got %v from %d", got, src)
		}
		got, _ = c.RecvFloat64s(0, 6)
		if len(got) != 2 || got[1] != 5 {
			t.Errorf("typed receive of boxed payload got %v", got)
		}
	})
}

// TestGenericRecvOfTypedSend: the untyped receive path boxes a typed
// payload on demand, so mixed usage keeps working.
func TestGenericRecvOfTypedSend(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			if err := c.SendFloat64s(1, 9, []float64{7, 8}); err != nil {
				t.Error(err)
			}
			return
		}
		data, src := c.Recv(0, 9)
		f, ok := data.([]float64)
		if !ok || src != 0 || len(f) != 2 || f[0] != 7 {
			t.Errorf("generic receive got %T %v from %d", data, data, src)
		}
	})
}

// TestPeerStatsAccounting: per-destination send counters attribute every
// message and its payload bytes to the world-rank destination.
func TestPeerStatsAccounting(t *testing.T) {
	var mu sync.Mutex
	stats := make(map[int]Stats)
	Run(3, func(c *Comm) {
		if c.Rank() == 0 {
			if err := c.SendFloat64s(1, 1, make([]float64, 4)); err != nil {
				t.Error(err)
			}
			if err := c.SendFloat64s(2, 1, make([]float64, 2)); err != nil {
				t.Error(err)
			}
			if err := c.SendFloat64s(2, 2, make([]float64, 1)); err != nil {
				t.Error(err)
			}
		}
		if c.Rank() != 0 {
			want := 1
			if c.Rank() == 2 {
				want = 2
			}
			for i := 0; i < want; i++ {
				c.RecvFloat64s(0, AnyTag)
			}
		}
		// Snapshot before any collective: collectives ride on the same
		// point-to-point layer and would show up in the peer counters.
		mu.Lock()
		stats[c.Rank()] = c.Stats()
		mu.Unlock()
	})
	s0 := stats[0]
	if len(s0.Peers) != 3 {
		t.Fatalf("rank 0 has %d peer slots, want 3", len(s0.Peers))
	}
	if s0.Peers[1].Sends != 1 || s0.Peers[1].BytesSent != 4*8 {
		t.Errorf("peer 1 counters %+v, want 1 send / 32 bytes", s0.Peers[1])
	}
	if s0.Peers[2].Sends != 2 || s0.Peers[2].BytesSent != 3*8 {
		t.Errorf("peer 2 counters %+v, want 2 sends / 24 bytes", s0.Peers[2])
	}
	// ResetStats must also clear peer counters (checked via a fresh run).
	Run(1, func(c *Comm) {
		if err := c.SendFloat64s(0, 1, make([]float64, 3)); err != nil {
			t.Error(err)
		}
		c.RecvFloat64s(0, 1)
		c.ResetStats()
		st := c.Stats()
		if st.Sends != 0 || len(st.Peers) != 1 || st.Peers[0].Sends != 0 {
			t.Errorf("stats not reset: %+v", st)
		}
	})
}

// TestIrecvInitReuse: one request object re-posted every iteration
// behaves like a fresh Irecv — the persistent-request pattern of the
// aggregated ghost exchange.
func TestIrecvInitReuse(t *testing.T) {
	const rounds = 50
	Run(2, func(c *Comm) {
		peer := 1 - c.Rank()
		var req RecvRequest
		for i := 0; i < rounds; i++ {
			// A fresh payload per round: the transport is zero-copy, so a
			// reused buffer would be overwritten under the receiver (the
			// sim layer double-buffers for exactly this reason).
			if err := c.SendFloat64s(peer, 3, []float64{float64(c.Rank()*1000 + i)}); err != nil {
				t.Error(err)
				return
			}
			c.IrecvInit(&req, peer, 3)
			got, src, err := req.WaitFloat64s()
			if err != nil {
				t.Error(err)
				return
			}
			if src != peer || got[0] != float64(peer*1000+i) {
				t.Errorf("round %d: got %v from %d", i, got, src)
				return
			}
		}
	})
}
