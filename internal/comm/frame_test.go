package comm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"strings"
	"testing"
)

// buildFrame encodes a complete wire frame (header + payload) for tests.
func buildFrame(h frameHeader, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	encodeFrameHeader(&hdr, h, payload)
	return append(append([]byte(nil), hdr[:]...), payload...)
}

func TestFrameHeaderRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		h       frameHeader
		payload []byte
	}{
		{"data f64s", frameHeader{kind: frameData, enc: encF64s, seq: 7, ack: 3, epoch: 2, ctx: -12345, tag: 9, source: 4}, f64Bytes([]float64{1.5, -2.25, math.Inf(1)})},
		{"data bytes", frameHeader{kind: frameData, enc: encBytes, seq: 1, source: 1}, []byte("hello, wire")},
		{"data i64s", frameHeader{kind: frameData, enc: encI64s, seq: 2, source: 0}, i64Bytes([]int64{-1, 1 << 62})},
		{"data int64", frameHeader{kind: frameData, enc: encInt64, seq: 3, source: 2}, make([]byte, 8)},
		{"data nil", frameHeader{kind: frameData, enc: encNil, seq: 4, source: 2}, nil},
		{"data opaque", frameHeader{kind: frameData, enc: encOpaque, seq: 5, source: 2}, nil},
		{"heartbeat", frameHeader{kind: frameHeartbeat, seq: 99, ack: 98, epoch: 1, source: 3}, nil},
		{"hello", frameHeader{kind: frameHello, ack: 41, source: 0}, nil},
		{"welcome", frameHeader{kind: frameWelcome, ack: 17, source: 6}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := buildFrame(tc.h, tc.payload)
			var s frameScratch
			got, payload, err := readFrame(bytes.NewReader(raw), 0, &s)
			if err != nil {
				t.Fatalf("readFrame: %v", err)
			}
			want := tc.h
			want.length = uint32(len(tc.payload))
			if got != want {
				t.Errorf("header round trip: got %+v want %+v", got, want)
			}
			if !bytes.Equal(payload, tc.payload) {
				t.Errorf("payload round trip: got %x want %x", payload, tc.payload)
			}
		})
	}
}

func TestFrameCRCDetectsFlips(t *testing.T) {
	h := frameHeader{kind: frameData, enc: encF64s, seq: 11, ack: 5, epoch: 1, ctx: 3, tag: 2, source: 1}
	payload := f64Bytes([]float64{3.14, 2.71, 1.41})
	raw := buildFrame(h, payload)
	// Flip one bit at every position that the CRC must cover: the first 52
	// header bytes and all payload bytes. (Bytes 52..55 are the CRC itself;
	// flipping those must also fail, checked separately below.)
	for i := 0; i < len(raw); i++ {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x10
		var s frameScratch
		_, _, err := readFrame(bytes.NewReader(mut), 0, &s)
		if err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
}

func TestFrameTruncation(t *testing.T) {
	raw := buildFrame(frameHeader{kind: frameData, enc: encBytes, seq: 1, source: 0}, []byte("payload-bytes"))
	for cut := 1; cut < len(raw); cut++ {
		var s frameScratch
		_, _, err := readFrame(bytes.NewReader(raw[:cut]), 0, &s)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: got %v, want ErrTruncated", cut, err)
		}
	}
	// A clean EOF before any byte is io.EOF, not truncation.
	var s frameScratch
	if _, _, err := readFrame(bytes.NewReader(nil), 0, &s); err != io.EOF {
		t.Errorf("empty stream: got %v, want io.EOF", err)
	}
}

func TestFrameDecodeRejections(t *testing.T) {
	valid := func() []byte {
		return buildFrame(frameHeader{kind: frameData, enc: encBytes, seq: 1, source: 0}, []byte{1, 2, 3})
	}
	cases := []struct {
		name   string
		mut    func(raw []byte)
		target error
	}{
		{"bad magic", func(raw []byte) { raw[0] = 'X' }, ErrBadMagic},
		{"reserved nonzero", func(raw []byte) { raw[6] = 1; stampCRC(raw) }, ErrBadFrame},
		{"kind zero", func(raw []byte) { raw[4] = 0; stampCRC(raw) }, ErrBadFrame},
		{"kind unknown", func(raw []byte) { raw[4] = 200; stampCRC(raw) }, ErrBadFrame},
		{"enc unknown", func(raw []byte) { raw[5] = 99; stampCRC(raw) }, ErrBadFrame},
		{"heartbeat with payload", func(raw []byte) { raw[4] = byte(frameHeartbeat); stampCRC(raw) }, ErrBadFrame},
		{"opaque with payload", func(raw []byte) { raw[5] = byte(encOpaque); stampCRC(raw) }, ErrBadFrame},
		{"f64 odd length", func(raw []byte) { raw[5] = byte(encF64s); stampCRC(raw) }, ErrBadFrame},
		{"scalar wrong length", func(raw []byte) { raw[5] = byte(encInt64); stampCRC(raw) }, ErrBadFrame},
		{"nil with payload", func(raw []byte) { raw[5] = byte(encNil); stampCRC(raw) }, ErrBadFrame},
		{"oversized length", func(raw []byte) { raw[48] = 0xFF; raw[49] = 0xFF; raw[50] = 0xFF; stampCRC(raw) }, ErrFrameTooLarge},
		{"bad crc", func(raw []byte) { raw[len(raw)-1] ^= 0xFF }, ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := valid()
			tc.mut(raw)
			var s frameScratch
			_, _, err := readFrame(bytes.NewReader(raw), 1<<20, &s)
			if !errors.Is(err, tc.target) {
				t.Errorf("got %v, want %v", err, tc.target)
			}
		})
	}
}

// stampCRC recomputes a mutated test frame's checksum in place so the
// header validation under test — not the CRC — is what trips.
func stampCRC(raw []byte) {
	crc := crc32.Checksum(raw[:52], castagnoli)
	crc = crc32.Update(crc, castagnoli, raw[frameHeaderLen:])
	binary.LittleEndian.PutUint32(raw[52:56], crc)
}

func TestFrameLengthBound(t *testing.T) {
	// A length prefix just over the bound is rejected before allocation.
	raw := buildFrame(frameHeader{kind: frameData, enc: encBytes, seq: 1, source: 0}, make([]byte, 64))
	var s frameScratch
	if _, _, err := readFrame(bytes.NewReader(raw), 63, &s); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("got %v, want ErrFrameTooLarge", err)
	}
	if _, _, err := readFrame(bytes.NewReader(raw), 64, &s); err != nil {
		t.Errorf("at the bound: %v", err)
	}
}

func TestScalarRoundTrip(t *testing.T) {
	var b [8]byte
	encodeScalar(&b, encInt64, int64(-42))
	if v := decodeScalar(encInt64, b[:]); v != int64(-42) {
		t.Errorf("int64: %v", v)
	}
	encodeScalar(&b, encInt, int(1<<40))
	if v := decodeScalar(encInt, b[:]); v != int(1<<40) {
		t.Errorf("int: %v", v)
	}
	encodeScalar(&b, encFloat64, math.Pi)
	if v := decodeScalar(encFloat64, b[:]); v != math.Pi {
		t.Errorf("float64: %v", v)
	}
}

func TestClassifyPayload(t *testing.T) {
	cases := []struct {
		msg  message
		want payloadEnc
	}{
		{message{f64: []float64{1}}, encF64s},
		{message{data: []float64{1}}, encF64s},
		{message{}, encNil},
		{message{data: []byte{1}}, encBytes},
		{message{data: []int64{1}}, encI64s},
		{message{data: int64(1)}, encInt64},
		{message{data: 1}, encInt},
		{message{data: 1.0}, encFloat64},
		{message{data: struct{ X int }{1}}, encOpaque},
		{message{data: map[string]int{"a": 1}}, encOpaque},
	}
	for i, tc := range cases {
		if got := classifyPayload(&tc.msg); got != tc.want {
			t.Errorf("case %d: got %v want %v", i, got, tc.want)
		}
	}
}

func TestFrameScratchReuse(t *testing.T) {
	var s frameScratch
	a := s.grow(100)
	if len(a) != 100 {
		t.Fatalf("grow(100) len = %d", len(a))
	}
	b := s.grow(50)
	if len(b) != 50 {
		t.Fatalf("grow(50) len = %d", len(b))
	}
	if &a[0] != &b[0] {
		t.Error("shrinking grow reallocated")
	}
	c := s.grow(200)
	if len(c) != 200 {
		t.Fatalf("grow(200) len = %d", len(c))
	}
}

func TestF64BytesRoundTrip(t *testing.T) {
	src := []float64{0, -0.5, math.MaxFloat64, math.SmallestNonzeroFloat64, math.NaN()}
	b := f64Bytes(src)
	if len(b) != 8*len(src) {
		t.Fatalf("f64Bytes len = %d", len(b))
	}
	dst := make([]float64, len(src))
	bytesF64(dst, b)
	for i := range src {
		if math.Float64bits(dst[i]) != math.Float64bits(src[i]) {
			t.Errorf("f64[%d]: %x != %x", i, math.Float64bits(dst[i]), math.Float64bits(src[i]))
		}
	}
	iv := []int64{-9, 0, 1 << 60}
	ib := i64Bytes(iv)
	idst := make([]int64, len(iv))
	bytesI64(idst, ib)
	for i := range iv {
		if idst[i] != iv[i] {
			t.Errorf("i64[%d]: %d != %d", i, idst[i], iv[i])
		}
	}
	if f64Bytes(nil) != nil || i64Bytes(nil) != nil {
		t.Error("empty slices must view as nil")
	}
}

func TestReadFrameErrorStrings(t *testing.T) {
	// The typed errors must keep their comm: prefix so transport logs are
	// attributable.
	for _, err := range []error{ErrBadMagic, ErrBadFrame, ErrFrameTooLarge, ErrChecksum, ErrTruncated} {
		if !strings.HasPrefix(err.Error(), "comm: ") {
			t.Errorf("error %q lacks comm: prefix", err)
		}
	}
}
