package comm

import "fmt"

// Collective tags. Each collective uses a distinct internal tag so that
// overlapping collectives on disjoint rank subsets cannot mismatch; within
// one communicator collectives are ordered per rank exactly as in MPI.
const (
	tagBarrier = internalTag - iota
	tagBcast
	tagGather
	tagReduce
	tagAlltoall
	tagScan
)

// Barrier blocks until every rank has entered it. Implemented as a
// zero-byte reduce-to-zero followed by a broadcast (the classic two-phase
// tree barrier).
func (c *Comm) Barrier() {
	c.reduceTree(tagBarrier, nil, func(a, b any) any { return nil })
	c.bcastTree(tagBarrier, nil)
}

// Bcast distributes root's payload to every rank and returns it; non-root
// ranks pass nil (or any placeholder, which is ignored).
func (c *Comm) Bcast(root int, data any) any {
	if c.rank != root {
		data = nil
	}
	// Rotate ranks so the tree is rooted at rank 0.
	return c.bcastTreeRooted(tagBcast, root, data)
}

// rel translates an absolute rank into the tree coordinate system rooted
// at root.
func (c *Comm) rel(root int) int { return (c.rank - root + c.Size()) % c.Size() }

// abs translates a tree coordinate back to an absolute rank.
func (c *Comm) abs(root, r int) int { return (r + root) % c.Size() }

// bcastTreeRooted runs a binomial broadcast tree rooted at root.
func (c *Comm) bcastTreeRooted(tag int, root int, data any) any {
	n := c.Size()
	me := c.rel(root)
	// Receive from parent (if not root).
	if me != 0 {
		mask := 1
		for mask <= me {
			mask <<= 1
		}
		mask >>= 1
		parent := me &^ mask
		data, _ = c.recv(c.abs(root, parent), tag)
	}
	// Forward to children.
	mask := 1
	for mask <= me {
		mask <<= 1
	}
	for ; mask < n; mask <<= 1 {
		child := me | mask
		if child < n {
			c.send(c.abs(root, child), tag, data)
		}
	}
	return data
}

// bcastTree broadcasts from rank 0.
func (c *Comm) bcastTree(tag int, data any) any {
	return c.bcastTreeRooted(tag, 0, data)
}

// reduceTree combines every rank's contribution at rank 0 using op; only
// rank 0 receives the final value (other ranks get nil).
func (c *Comm) reduceTree(tag int, data any, op func(a, b any) any) any {
	n := c.Size()
	me := c.rank
	for mask := 1; mask < n; mask <<= 1 {
		if me&mask != 0 {
			c.send(me&^mask, tag, data)
			return nil
		}
		if partner := me | mask; partner < n {
			other, _ := c.recv(partner, tag)
			data = op(data, other)
		}
	}
	return data
}

// ReduceFloat64 combines the per-rank values with op at root; other ranks
// receive 0.
func (c *Comm) ReduceFloat64(root int, v float64, op func(a, b float64) float64) float64 {
	// Reduce to rank 0, then move to root if different (a minor shortcut
	// MPI implementations also take).
	res := c.reduceTree(tagReduce, v, func(a, b any) any {
		return op(a.(float64), b.(float64))
	})
	if root == 0 {
		if c.rank == 0 {
			return res.(float64)
		}
		return 0
	}
	if c.rank == 0 {
		c.send(root, tagReduce, res)
		return 0
	}
	if c.rank == root {
		got, _ := c.recv(0, tagReduce)
		return got.(float64)
	}
	return 0
}

// AllreduceFloat64 combines the per-rank values with op and returns the
// result on every rank (reduce + broadcast).
func (c *Comm) AllreduceFloat64(v float64, op func(a, b float64) float64) float64 {
	res := c.reduceTree(tagReduce, v, func(a, b any) any {
		return op(a.(float64), b.(float64))
	})
	return c.bcastTree(tagReduce, res).(float64)
}

// AllreduceInt64 combines the per-rank values with op on every rank.
func (c *Comm) AllreduceInt64(v int64, op func(a, b int64) int64) int64 {
	res := c.reduceTree(tagReduce, v, func(a, b any) any {
		return op(a.(int64), b.(int64))
	})
	return c.bcastTree(tagReduce, res).(int64)
}

// Sum, Max and Min are the common reduction operators.
func Sum[T int64 | float64](a, b T) T { return a + b }

// Max returns the larger value.
func Max[T int64 | float64](a, b T) T {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller value.
func Min[T int64 | float64](a, b T) T {
	if a < b {
		return a
	}
	return b
}

// Gather collects every rank's payload at root in rank order; non-root
// ranks receive nil.
func (c *Comm) Gather(root int, data any) []any {
	if c.rank != root {
		c.send(root, tagGather, data)
		return nil
	}
	out := make([]any, c.Size())
	out[c.rank] = data
	for i := 0; i < c.Size()-1; i++ {
		data, source := c.recv(AnySource, tagGather)
		out[source] = data
	}
	return out
}

// Allgather collects every rank's payload on every rank in rank order.
func (c *Comm) Allgather(data any) []any {
	gathered := c.Gather(0, data)
	res := c.bcastTree(tagGather, gathered)
	return res.([]any)
}

// Alltoall sends bufs[i] to rank i and returns the payloads received from
// every rank, indexed by source. bufs must have length Size.
func (c *Comm) Alltoall(bufs []any) []any {
	if len(bufs) != c.Size() {
		panic(fmt.Sprintf("comm: Alltoall with %d buffers on %d ranks", len(bufs), c.Size()))
	}
	for dst := 0; dst < c.Size(); dst++ {
		if dst == c.rank {
			continue
		}
		c.send(dst, tagAlltoall, bufs[dst])
	}
	out := make([]any, c.Size())
	out[c.rank] = bufs[c.rank]
	for i := 0; i < c.Size()-1; i++ {
		data, source := c.recv(AnySource, tagAlltoall)
		out[source] = data
	}
	return out
}

// ExscanInt64 returns the exclusive prefix sum of v over ranks: rank r
// receives the sum of the values of ranks 0..r-1 (0 on rank 0). Used for
// assigning global offsets during parallel setup.
func (c *Comm) ExscanInt64(v int64) int64 {
	// Gather + broadcast keeps this O(n) messages; fine at our scales and
	// faithful in pattern (MPI_Exscan).
	all := c.Allgather(v)
	var sum int64
	for r := 0; r < c.rank; r++ {
		sum += all[r].(int64)
	}
	return sum
}
