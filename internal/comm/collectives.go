package comm

import (
	"fmt"

	"walberla/internal/telemetry"
)

// Collective tags. Each collective uses a distinct internal tag so that
// overlapping collectives on disjoint rank subsets cannot mismatch; within
// one communicator collectives are ordered per rank exactly as in MPI.
const (
	tagBarrier = internalTag - iota
	tagBcast
	tagGather
	tagReduce
	tagAlltoall
	tagScan
)

// Every collective is implemented as an error-returning core (the *Err
// methods), which detect a declared rank failure mid-collective and
// return a typed *RankFailedError instead of deadlocking. The classic
// infallible API wraps the cores and panics on failure, preserving the
// perfect-network programming model for code that does not opt into
// resilience.

// Barrier blocks until every rank has entered it. Implemented as a
// zero-byte reduce-to-zero followed by a broadcast (the classic two-phase
// tree barrier).
func (c *Comm) Barrier() {
	if err := c.BarrierErr(); err != nil {
		panic(err)
	}
}

// BarrierErr is Barrier returning an error on rank failure.
func (c *Comm) BarrierErr() error {
	telStart := c.tel.start()
	if _, err := c.reduceTreeErr(tagBarrier, nil, func(a, b any) any { return nil }); err != nil {
		return err
	}
	_, err := c.bcastTreeErr(tagBarrier, nil)
	if err == nil && c.tel != nil {
		c.tel.lane.Span(telemetry.PhaseBarrier, c.tel.step, 0, telStart)
	}
	return err
}

// Bcast distributes root's payload to every rank and returns it; non-root
// ranks pass nil (or any placeholder, which is ignored).
func (c *Comm) Bcast(root int, data any) any {
	out, err := c.BcastErr(root, data)
	if err != nil {
		panic(err)
	}
	return out
}

// BcastErr is Bcast returning an error on rank failure.
func (c *Comm) BcastErr(root int, data any) (any, error) {
	if c.rank != root {
		data = nil
	}
	// Rotate ranks so the tree is rooted at rank 0.
	return c.bcastTreeRootedErr(tagBcast, root, data)
}

// rel translates an absolute rank into the tree coordinate system rooted
// at root.
func (c *Comm) rel(root int) int { return (c.rank - root + c.Size()) % c.Size() }

// abs translates a tree coordinate back to an absolute rank.
func (c *Comm) abs(root, r int) int { return (r + root) % c.Size() }

// bcastTreeRootedErr runs a binomial broadcast tree rooted at root.
func (c *Comm) bcastTreeRootedErr(tag int, root int, data any) (any, error) {
	n := c.Size()
	me := c.rel(root)
	// Receive from parent (if not root).
	if me != 0 {
		mask := 1
		for mask <= me {
			mask <<= 1
		}
		mask >>= 1
		parent := me &^ mask
		var err error
		data, _, err = c.recvErr(c.abs(root, parent), tag)
		if err != nil {
			return nil, err
		}
	}
	// Forward to children.
	mask := 1
	for mask <= me {
		mask <<= 1
	}
	for ; mask < n; mask <<= 1 {
		child := me | mask
		if child < n {
			if err := c.sendErr(c.abs(root, child), tag, data); err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

// bcastTreeErr broadcasts from rank 0.
func (c *Comm) bcastTreeErr(tag int, data any) (any, error) {
	return c.bcastTreeRootedErr(tag, 0, data)
}

// reduceTreeErr combines every rank's contribution at rank 0 using op;
// only rank 0 receives the final value (other ranks get nil).
func (c *Comm) reduceTreeErr(tag int, data any, op func(a, b any) any) (any, error) {
	n := c.Size()
	me := c.rank
	for mask := 1; mask < n; mask <<= 1 {
		if me&mask != 0 {
			return nil, c.sendErr(me&^mask, tag, data)
		}
		if partner := me | mask; partner < n {
			other, _, err := c.recvErr(partner, tag)
			if err != nil {
				return nil, err
			}
			data = op(data, other)
		}
	}
	return data, nil
}

// ReduceFloat64 combines the per-rank values with op at root; other ranks
// receive 0.
func (c *Comm) ReduceFloat64(root int, v float64, op func(a, b float64) float64) float64 {
	// Reduce to rank 0, then move to root if different (a minor shortcut
	// MPI implementations also take).
	res, err := c.reduceTreeErr(tagReduce, v, func(a, b any) any {
		return op(a.(float64), b.(float64))
	})
	if err != nil {
		panic(err)
	}
	if root == 0 {
		if c.rank == 0 {
			return res.(float64)
		}
		return 0
	}
	if c.rank == 0 {
		if err := c.sendErr(root, tagReduce, res); err != nil {
			panic(err)
		}
		return 0
	}
	if c.rank == root {
		got, _, err := c.recvErr(0, tagReduce)
		if err != nil {
			panic(err)
		}
		return got.(float64)
	}
	return 0
}

// AllreduceFloat64 combines the per-rank values with op and returns the
// result on every rank (reduce + broadcast).
func (c *Comm) AllreduceFloat64(v float64, op func(a, b float64) float64) float64 {
	out, err := c.AllreduceFloat64Err(v, op)
	if err != nil {
		panic(err)
	}
	return out
}

// AllreduceFloat64Err is AllreduceFloat64 returning an error on rank
// failure.
func (c *Comm) AllreduceFloat64Err(v float64, op func(a, b float64) float64) (float64, error) {
	res, err := c.reduceTreeErr(tagReduce, v, func(a, b any) any {
		return op(a.(float64), b.(float64))
	})
	if err != nil {
		return 0, err
	}
	out, err := c.bcastTreeErr(tagReduce, res)
	if err != nil {
		return 0, err
	}
	return out.(float64), nil
}

// AllreduceInt64 combines the per-rank values with op on every rank.
func (c *Comm) AllreduceInt64(v int64, op func(a, b int64) int64) int64 {
	out, err := c.AllreduceInt64Err(v, op)
	if err != nil {
		panic(err)
	}
	return out
}

// AllreduceInt64Err is AllreduceInt64 returning an error on rank failure.
func (c *Comm) AllreduceInt64Err(v int64, op func(a, b int64) int64) (int64, error) {
	res, err := c.reduceTreeErr(tagReduce, v, func(a, b any) any {
		return op(a.(int64), b.(int64))
	})
	if err != nil {
		return 0, err
	}
	out, err := c.bcastTreeErr(tagReduce, res)
	if err != nil {
		return 0, err
	}
	return out.(int64), nil
}

// Sum, Max and Min are the common reduction operators.
func Sum[T int64 | float64](a, b T) T { return a + b }

// Max returns the larger value.
func Max[T int64 | float64](a, b T) T {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller value.
func Min[T int64 | float64](a, b T) T {
	if a < b {
		return a
	}
	return b
}

// Gather collects every rank's payload at root in rank order; non-root
// ranks receive nil.
func (c *Comm) Gather(root int, data any) []any {
	out, err := c.GatherErr(root, data)
	if err != nil {
		panic(err)
	}
	return out
}

// GatherErr is Gather returning an error on rank failure.
func (c *Comm) GatherErr(root int, data any) ([]any, error) {
	if c.rank != root {
		return nil, c.sendErr(root, tagGather, data)
	}
	out := make([]any, c.Size())
	out[c.rank] = data
	for i := 0; i < c.Size()-1; i++ {
		data, source, err := c.recvErr(AnySource, tagGather)
		if err != nil {
			return nil, err
		}
		out[source] = data
	}
	return out, nil
}

// Allgather collects every rank's payload on every rank in rank order.
func (c *Comm) Allgather(data any) []any {
	out, err := c.AllgatherErr(data)
	if err != nil {
		panic(err)
	}
	return out
}

// AllgatherErr is Allgather returning an error on rank failure.
func (c *Comm) AllgatherErr(data any) ([]any, error) {
	gathered, err := c.GatherErr(0, data)
	if err != nil {
		return nil, err
	}
	res, err := c.bcastTreeErr(tagGather, gathered)
	if err != nil {
		return nil, err
	}
	return res.([]any), nil
}

// Alltoall sends bufs[i] to rank i and returns the payloads received from
// every rank, indexed by source. bufs must have length Size.
func (c *Comm) Alltoall(bufs []any) []any {
	out, err := c.AlltoallErr(bufs)
	if err != nil {
		panic(err)
	}
	return out
}

// AlltoallErr is Alltoall returning an error on rank failure.
func (c *Comm) AlltoallErr(bufs []any) ([]any, error) {
	if len(bufs) != c.Size() {
		panic(fmt.Sprintf("comm: Alltoall with %d buffers on %d ranks", len(bufs), c.Size()))
	}
	for dst := 0; dst < c.Size(); dst++ {
		if dst == c.rank {
			continue
		}
		if err := c.sendErr(dst, tagAlltoall, bufs[dst]); err != nil {
			return nil, err
		}
	}
	out := make([]any, c.Size())
	out[c.rank] = bufs[c.rank]
	for i := 0; i < c.Size()-1; i++ {
		data, source, err := c.recvErr(AnySource, tagAlltoall)
		if err != nil {
			return nil, err
		}
		out[source] = data
	}
	return out, nil
}

// ExscanInt64 returns the exclusive prefix sum of v over ranks: rank r
// receives the sum of the values of ranks 0..r-1 (0 on rank 0). Used for
// assigning global offsets during parallel setup.
func (c *Comm) ExscanInt64(v int64) int64 {
	// Gather + broadcast keeps this O(n) messages; fine at our scales and
	// faithful in pattern (MPI_Exscan).
	all := c.Allgather(v)
	var sum int64
	for r := 0; r < c.rank; r++ {
		sum += all[r].(int64)
	}
	return sum
}
