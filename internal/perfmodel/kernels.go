package perfmodel

import "math"

// Per-kernel performance models for the single-node study of Figure 3:
// the three optimization stages differ in their in-core execution time,
// and only the SIMD stage is fast enough to saturate the memory interface
// (the paper: "SIMD vectorization is needed to saturate the memory
// interface and come close to the predicted limit of the roofline model").

// KernelClass is a kernel optimization stage.
type KernelClass int

// Kernel optimization stages.
const (
	KernelGeneric KernelClass = iota // textbook kernel for arbitrary models
	KernelD3Q19                      // specialized, scalar
	KernelSIMD                       // SoA split-loop, vectorized
)

func (k KernelClass) String() string {
	switch k {
	case KernelGeneric:
		return "Generic"
	case KernelD3Q19:
		return "D3Q19"
	case KernelSIMD:
		return "SIMD"
	}
	return "?"
}

// CollisionClass selects the collision operator of a modeled kernel.
type CollisionClass int

// Collision operators.
const (
	CollisionSRT CollisionClass = iota
	CollisionTRT
)

func (c CollisionClass) String() string {
	if c == CollisionSRT {
		return "SRT"
	}
	return "TRT"
}

// trtCorePenalty is the additional in-core execution time of the TRT
// collision relative to SRT: visible below saturation, irrelevant once
// memory bound (the paper's observation that TRT matches SRT on the full
// node).
const trtCorePenalty = 1.10

// coreMultiplier returns the core-time factor of a kernel stage relative
// to the SIMD SRT kernel.
func coreMultiplier(m *Machine, k KernelClass, c CollisionClass) float64 {
	mult := 1.0
	switch k {
	case KernelD3Q19:
		mult = m.ScalarSlowdown
	case KernelGeneric:
		mult = m.GenericSlowdown
	}
	if c == CollisionTRT {
		mult *= trtCorePenalty
	}
	return mult
}

// KernelMLUPS predicts the performance of a kernel stage on n cores with
// the given SMT level (threads per core): the ECM single-core time scaled
// by the kernel's core-time factor and the SMT issue efficiency, capped by
// the memory bandwidth roofline.
func KernelMLUPS(m *Machine, k KernelClass, c CollisionClass, cores, smtWays int) float64 {
	if cores < 1 {
		return 0
	}
	e := NewECM(m)
	eta, ok := m.SMTEfficiency[smtWays]
	if !ok {
		eta = m.SMTEfficiency[1]
	}
	tCore := e.TCore() * coreMultiplier(m, k, c) / eta
	cycles := tCore + e.TCache() + e.TMem()
	single := m.FreqGHz * 1e9 / (cycles / LUPsPerCacheLine) / 1e6
	// The SMT level limits the attainable bandwidth as well: an in-order
	// core running one thread sustains too few outstanding memory requests
	// to saturate its share of the memory interface (Figure 5's 1-way SMT
	// plateau well below the roofline).
	roof := eta * e.MLUPS(m.Cores)
	return math.Min(float64(cores)*single, roof)
}

// KernelCurve returns the MLUPS prediction for 1..maxCores cores.
func KernelCurve(m *Machine, k KernelClass, c CollisionClass, maxCores, smtWays int) []float64 {
	out := make([]float64, maxCores)
	for n := 1; n <= maxCores; n++ {
		out[n-1] = KernelMLUPS(m, k, c, n, smtWays)
	}
	return out
}

// SaturatedMLUPSPerCore returns the per-core rate at full-socket
// saturation for the SIMD TRT production kernel — the per-core baseline of
// the scaling projections.
func SaturatedMLUPSPerCore(m *Machine) float64 {
	return KernelMLUPS(m, KernelSIMD, CollisionTRT, m.Cores, m.SMTWays) / float64(m.Cores)
}

// SparseKernelMFLUPSPerCore models the sparse interval kernel on a block
// with the given fluid fraction: only fluid cells count as work (MFLUPS),
// but skipped cells still cost a fraction of a full update (prefetcher
// loads of skipped lines, interval bookkeeping) and the ghost layer
// communication stays dense. skipCost is the relative cost of traversing
// a non-fluid cell (calibrated 0.25).
func SparseKernelMFLUPSPerCore(m *Machine, fluidFraction float64) float64 {
	const skipCost = 0.25
	if fluidFraction <= 0 {
		return 0
	}
	if fluidFraction > 1 {
		fluidFraction = 1
	}
	dense := SaturatedMLUPSPerCore(m)
	// Time per allocated cell in units of a full update.
	timePerCell := fluidFraction + skipCost*(1-fluidFraction)
	// MFLUPS = fluid work / time: rate * ff / timePerCell.
	return dense * fluidFraction / timePerCell
}
