// Package perfmodel implements the analytic performance models of section
// 4.1 — the roofline model and the Execution-Cache-Memory (ECM) model —
// together with machine descriptions of the two evaluation platforms, a
// simultaneous-multithreading model for the BG/Q in-order cores, and
// per-kernel core-execution models for the three kernel optimization
// stages. The scaling package builds the petascale projections of the
// paper's figures on top of these models; the constants below are the
// published values of the paper (STREAM bandwidths, IACA cycle counts,
// speedup factors), not fits to our host machine.
package perfmodel

// GiB is 2^30 bytes; the paper's bandwidths are given in GiB/s.
const GiB = 1024.0 * 1024.0 * 1024.0

// BytesPerLUP is the memory traffic of one D3Q19 lattice cell update with
// write-allocate stores: 19 PDFs streamed in and out plus the
// write-allocate load, 8 bytes each (456 B).
const BytesPerLUP = 19 * 3 * 8

// CacheLineBytes on both evaluation platforms.
const CacheLineBytes = 64

// LUPsPerCacheLine: one cache line holds eight doubles, so the ECM unit of
// work is eight lattice cell updates.
const LUPsPerCacheLine = 8

// StreamsPerLUP is the number of concurrent load/store streams of the
// D3Q19 stream-pull update: 19 loads, 19 stores, 19 write-allocate loads.
const StreamsPerLUP = 3 * 19

// Machine describes one compute node (or socket) of an evaluation
// platform.
type Machine struct {
	Name string
	// Cores per socket/node used for the single-node studies.
	Cores int
	// SMTWays is the hardware thread count per core.
	SMTWays int
	// FreqGHz is the nominal clock frequency.
	FreqGHz float64
	// StreamBW is the STREAM triad bandwidth in GiB/s.
	StreamBW float64
	// LBMBW is the attainable bandwidth for the LBM access pattern with
	// many concurrent store streams, in GiB/s (the paper's refined stream
	// benchmark).
	LBMBW float64
	// BWAtFreq returns the LBM-pattern bandwidth at a reduced clock
	// frequency (Sandy Bridge memory bandwidth decreases slightly at lower
	// clock speeds). nil means frequency-independent.
	BWAtFreq func(freqGHz float64) float64
	// CoreCyclesPer8LUP is the in-L1 execution time of the optimized
	// (SIMD) TRT kernel for eight cell updates, in cycles (IACA on
	// SuperMUC: 448).
	CoreCyclesPer8LUP float64
	// CacheLevels is the number of inter-cache transfer hops between L1
	// and memory (Sandy Bridge: L1-L2 and L2-L3 = 2).
	CacheLevels int
	// CyclesPerLineTransfer between adjacent cache levels (2 on SNB).
	CyclesPerLineTransfer float64
	// CacheBlockBytes is the per-core share of the last-level cache, the
	// budget cache-blocked (tiled) kernel traversal should size its
	// working set against (SNB: 20 MiB L3 across 8 cores; BG/Q: 32 MiB L2
	// across 16 cores).
	CacheBlockBytes int
	// SMTEfficiency maps 1-, 2-, 4-way SMT to the fraction of the core's
	// peak instruction throughput reachable (in-order BG/Q cores need two
	// threads to dual-issue).
	SMTEfficiency map[int]float64
	// ScalarSlowdown is the core-time penalty of the non-vectorized
	// D3Q19-specialized kernel relative to the SIMD kernel (the paper: AVX
	// gains 20 % on SuperMUC, QPX gains 2.5x on JUQUEEN).
	ScalarSlowdown float64
	// GenericSlowdown is the core-time penalty of the generic textbook
	// kernel relative to the SIMD kernel.
	GenericSlowdown float64
	// PeakGFLOPS of the socket/node, for percent-of-peak statements.
	PeakGFLOPS float64
	// NodesToCores: cores per node for machine-level aggregates.
	CoresPerNode int
	// TotalCores of the full machine.
	TotalCores int
}

// SuperMUCSocket returns the model of one SuperMUC socket: 8 Sandy Bridge
// cores at 2.7 GHz, STREAM 40 GiB/s, 37.3 GiB/s for the LBM pattern.
func SuperMUCSocket() *Machine {
	return &Machine{
		Name:                  "SuperMUC socket (SNB-EP 2.7 GHz)",
		Cores:                 8,
		SMTWays:               2, // HyperThreading available but yields no LBM gain
		FreqGHz:               2.7,
		StreamBW:              40.0,
		LBMBW:                 37.3,
		CoreCyclesPer8LUP:     448, // IACA static analysis of the TRT SIMD loop
		CacheLevels:           2,
		CyclesPerLineTransfer: 2,
		CacheBlockBytes:       20 * 1024 * 1024 / 8,
		// Memory bandwidth shrinks mildly at lower clock frequency (Schöne
		// et al.), with a knee below 1.5 GHz where the uncore can no longer
		// sustain the request concurrency; calibrated so that 1.6 GHz
		// delivers 93 % of the 2.7 GHz performance, as measured in the
		// paper, and is the energy optimum.
		BWAtFreq: func(f float64) float64 {
			if f >= 2.7 {
				return 37.3
			}
			knee := 37.3 * (1.0 - 0.06*(2.7-1.5)/1.1)
			if f >= 1.5 {
				return 37.3 * (1.0 - 0.06*(2.7-f)/1.1)
			}
			return knee * f / 1.5
		},
		SMTEfficiency:   map[int]float64{1: 1.0, 2: 1.0},
		ScalarSlowdown:  1.2,
		GenericSlowdown: 11.0,
		PeakGFLOPS:      8 * 2.7 * 8, // 8 cores x 8 FLOP/cycle (AVX)
		CoresPerNode:    16,
		TotalCores:      147456,
	}
}

// JUQUEENNode returns the model of one JUQUEEN node: 16 PowerPC A2 cores
// at 1.6 GHz with 4-way SMT, STREAM 42.4 GiB/s but only 32.4 GiB/s with
// concurrent store streams.
func JUQUEENNode() *Machine {
	return &Machine{
		Name:     "JUQUEEN node (BG/Q A2 1.6 GHz)",
		Cores:    16,
		SMTWays:  4,
		FreqGHz:  1.6,
		StreamBW: 42.4,
		LBMBW:    32.4,
		// The A2 core is in-order and single-issue per thread: one thread
		// cannot fill both pipelines, two threads nearly can, four
		// saturate them (Figure 5).
		SMTEfficiency: map[int]float64{1: 0.52, 2: 0.93, 4: 1.0},
		// Effective core execution time calibrated to the QPX kernel:
		// saturation around 12-16 cores at 4-way SMT.
		CoreCyclesPer8LUP:     520,
		CacheLevels:           1, // L1 -> L2 -> memory, one inter-cache hop
		CyclesPerLineTransfer: 4,
		CacheBlockBytes:       32 * 1024 * 1024 / 16,
		ScalarSlowdown:        2.5,
		GenericSlowdown:       16.0,
		PeakGFLOPS:            16 * 1.6 * 8, // 204.8 GFLOPS per node
		CoresPerNode:          16,
		TotalCores:            458752,
	}
}

// RooflineMLUPS returns the bandwidth-bound performance ceiling in MLUPS
// for the given attainable bandwidth (GiB/s): the paper's
// 37.3 GiB/s : 456 B/LUP = 87.8 MLUPS (SuperMUC) and
// 32.4 GiB/s : 456 B/LUP = 76.2 MLUPS (JUQUEEN).
func RooflineMLUPS(bandwidthGiBs float64) float64 {
	return bandwidthGiBs * GiB / BytesPerLUP / 1e6
}

// Roofline returns the machine's LBM performance ceiling in MLUPS.
func (m *Machine) Roofline() float64 { return RooflineMLUPS(m.LBMBW) }

// AggregateBandwidthGiBs returns the theoretical machine-wide memory
// bandwidth (STREAM based, per socket/node scaled to all cores), used for
// the paper's percent-of-aggregate-bandwidth statements.
func (m *Machine) AggregateBandwidthGiBs(cores int) float64 {
	sockets := float64(cores) / float64(m.Cores)
	return sockets * m.StreamBW
}

// BandwidthUtilization returns the fraction of the aggregate theoretical
// memory bandwidth a sustained update rate drives — the paper's
//
//	837e9 * 19 * 3 * 8 : 1024^3 GiB/s over 2^14 * 40 GiB/s = 54.2 %
//
// arithmetic for SuperMUC and the corresponding 67.4 % for JUQUEEN.
func (m *Machine) BandwidthUtilization(totalMLUPS float64, cores int) float64 {
	gibPerS := totalMLUPS * 1e6 * BytesPerLUP / GiB
	return gibPerS / m.AggregateBandwidthGiBs(cores)
}

// FLOPRate converts a sustained update rate into GFLOPS using the given
// per-update operation count (the paper's in-text TFLOPS statements use
// ~198 FLOPs per cell update).
func FLOPRate(totalMLUPS, flopsPerLUP float64) float64 {
	return totalMLUPS * flopsPerLUP / 1e3 // MLUPS * FLOP -> GFLOPS
}

// PercentOfPeak returns the fraction of the machine's floating point peak
// that a sustained rate represents over the given core count.
func (m *Machine) PercentOfPeak(totalMLUPS float64, cores int, flopsPerLUP float64) float64 {
	peakGFLOPS := m.PeakGFLOPS * float64(cores) / float64(m.Cores)
	return FLOPRate(totalMLUPS, flopsPerLUP) / peakGFLOPS
}
