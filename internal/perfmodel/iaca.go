package perfmodel

import "math"

// The paper uses the Intel Architecture Code Analyzer (IACA) to obtain
// the ECM core-execution input: 448 cycles for eight lattice cell updates
// of the TRT SIMD kernel on Sandy Bridge, all data in L1. IACA is
// proprietary and discontinued; this file substitutes a transparent
// static analyzer: the per-cell operation counts of the D3Q19 TRT kernel
// (counted from internal/kernels, the same arithmetic the paper's kernel
// performs) are scheduled onto a port throughput model of the target
// microarchitecture. The port bound is a lower bound — dependency chains
// and front-end effects push the real in-L1 time above it; the ratio of
// the paper's IACA figure to our port bound is exposed as the calibrated
// dependency-stall factor.

// KernelOpCounts is the per-lattice-cell operation mix of a compute
// kernel.
type KernelOpCounts struct {
	Adds   int // floating point additions/subtractions
	Muls   int // floating point multiplications
	Divs   int // floating point divisions
	Loads  int // memory loads (PDF pulls)
	Stores int // memory stores (PDF writes)
}

// D3Q19TRTOpCounts returns the operation mix of one cell update of the
// fused D3Q19 TRT kernel, counted from the implementation in
// internal/kernels/d3q19.go:
//
//	density:      18 adds
//	velocities:   27 adds + 3 muls (momentum sums, scale by 1/rho)
//	1/rho:        1 div
//	u^2 term:     2 adds + 4 muls
//	w*rho terms:  3 muls
//	center:       3 adds + 2 muls
//	9 pairs:      10 adds + 9 muls each, plus 6 adds for the two-component
//	              velocity projections
func D3Q19TRTOpCounts() KernelOpCounts {
	return KernelOpCounts{
		Adds:   18 + 27 + 2 + 3 + 9*10 + 6,
		Muls:   3 + 4 + 3 + 2 + 9*9,
		Divs:   1,
		Loads:  19,
		Stores: 19,
	}
}

// D3Q19SRTOpCounts returns the mix of the SRT variant (fewer pair
// operations: 8 adds + 7 muls per pair).
func D3Q19SRTOpCounts() KernelOpCounts {
	return KernelOpCounts{
		Adds:   18 + 27 + 2 + 3 + 9*8 + 6,
		Muls:   3 + 4 + 3 + 2 + 9*7,
		Divs:   1,
		Loads:  19,
		Stores: 19,
	}
}

// PortModel describes the issue capabilities of one core.
type PortModel struct {
	Name string
	// VectorWidth is the SIMD width in doubles (AVX: 4, QPX: 4, scalar: 1).
	VectorWidth int
	// AddPerCycle / MulPerCycle are vector operations issued per cycle.
	AddPerCycle float64
	MulPerCycle float64
	// DivCycles is the reciprocal throughput of one vector division.
	DivCycles float64
	// LoadPerCycle / StorePerCycle are vector memory ops per cycle (L1).
	LoadPerCycle  float64
	StorePerCycle float64
	// FrontEndUopsPerCycle bounds total instruction issue.
	FrontEndUopsPerCycle float64
	// DependencyStallFactor multiplies the port bound to the realistic
	// in-L1 time (calibrated against the paper's IACA figure).
	DependencyStallFactor float64
}

// SandyBridgePorts returns the SNB-EP port model: one AVX add and one AVX
// multiply per cycle, two load ports, one store port, 4-wide front end.
// The dependency-stall factor is calibrated so that the D3Q19 TRT kernel
// lands on the paper's IACA result of 448 cycles per eight updates.
func SandyBridgePorts() PortModel {
	return PortModel{
		Name:                  "Sandy Bridge EP",
		VectorWidth:           4,
		AddPerCycle:           1,
		MulPerCycle:           1,
		DivCycles:             22,
		LoadPerCycle:          2,
		StorePerCycle:         1,
		FrontEndUopsPerCycle:  4,
		DependencyStallFactor: 448.0 / 336.0, // port bound 292 + div 44 -> IACA 448
	}
}

// BlueGeneQPorts returns the BG/Q A2 port model: one QPX (4-wide) FMA
// pipeline shared by adds and multiplies, one load/store pipeline,
// in-order dual-issue across two threads.
func BlueGeneQPorts() PortModel {
	return PortModel{
		Name:                  "Blue Gene/Q A2",
		VectorWidth:           4,
		AddPerCycle:           0.5, // one FP pipe shared with muls
		MulPerCycle:           0.5,
		DivCycles:             32,
		LoadPerCycle:          1,
		StorePerCycle:         1,
		FrontEndUopsPerCycle:  2,
		DependencyStallFactor: 1.2,
	}
}

// PortBoundCycles returns the throughput lower bound in cycles for eight
// cell updates of the given operation mix: each port processes its
// vector-op share, the result is the maximum over ports and the front
// end (no overlap between iterations is required — this is a pure
// throughput argument, exactly IACA's "block throughput").
func PortBoundCycles(ops KernelOpCounts, arch PortModel) float64 {
	iters := 8.0 / float64(arch.VectorWidth) // vector iterations per 8 LUPs
	addCycles := float64(ops.Adds) * iters / arch.AddPerCycle
	mulCycles := float64(ops.Muls) * iters / arch.MulPerCycle
	divCycles := float64(ops.Divs) * iters * arch.DivCycles
	loadCycles := float64(ops.Loads) * iters / arch.LoadPerCycle
	storeCycles := float64(ops.Stores) * iters / arch.StorePerCycle
	uops := float64(ops.Adds+ops.Muls+ops.Divs+ops.Loads+ops.Stores) * iters
	frontEnd := uops / arch.FrontEndUopsPerCycle
	bound := math.Max(addCycles, math.Max(mulCycles, math.Max(loadCycles, storeCycles)))
	bound = math.Max(bound, frontEnd)
	// Division is rare enough to serialize with everything else.
	return bound + divCycles
}

// EstimatedCycles returns the realistic in-L1 execution time per eight
// updates: the port bound scaled by the dependency-stall factor. For the
// D3Q19 TRT kernel on Sandy Bridge this reproduces the paper's 448
// cycles.
func EstimatedCycles(ops KernelOpCounts, arch PortModel) float64 {
	return PortBoundCycles(ops, arch) * arch.DependencyStallFactor
}

// FLOPsPerCell returns the floating point operations of one cell update.
func (o KernelOpCounts) FLOPsPerCell() int { return o.Adds + o.Muls + o.Divs }
