package perfmodel

import "math"

// The Execution-Cache-Memory model (Treibig/Hager; section 4.1): the
// runtime of one unit of work (eight lattice cell updates = one cache
// line per stream) decomposes into
//
//	T_core  — execution with all data in L1 (IACA cycle count),
//	T_cache — cache line transfers through the cache hierarchy,
//	T_mem   — cache line transfers over the memory interface,
//
// under the no-overlap assumption (a cache can either evict or reload,
// not both). A single core runs in T_core + T_cache + T_mem; n cores
// scale linearly until the aggregate hits the memory bandwidth ceiling.

// ECM evaluates the model for one machine at a given clock frequency.
type ECM struct {
	Machine *Machine
	// FreqGHz is the evaluated clock frequency (may differ from nominal
	// for the frequency study of Figure 4).
	FreqGHz float64
}

// NewECM builds the model at the machine's nominal frequency.
func NewECM(m *Machine) ECM { return ECM{Machine: m, FreqGHz: m.FreqGHz} }

// AtFrequency returns the model evaluated at a different core frequency.
func (e ECM) AtFrequency(freqGHz float64) ECM {
	e.FreqGHz = freqGHz
	return e
}

// bandwidth returns the LBM-pattern bandwidth at the evaluated frequency
// in bytes/s.
func (e ECM) bandwidth() float64 {
	bw := e.Machine.LBMBW
	if e.Machine.BWAtFreq != nil {
		bw = e.Machine.BWAtFreq(e.FreqGHz)
	}
	return bw * GiB
}

// TCore returns the in-cache execution cycles for eight cell updates.
func (e ECM) TCore() float64 { return e.Machine.CoreCyclesPer8LUP }

// TCache returns the inter-cache transfer cycles for eight cell updates:
// 57 cache lines (19 loads + 19 stores + 19 write-allocates) per hop.
func (e ECM) TCache() float64 {
	return float64(StreamsPerLUP) * e.Machine.CyclesPerLineTransfer * float64(e.Machine.CacheLevels)
}

// TMem returns the memory transfer cycles for eight cell updates at the
// evaluated frequency.
func (e ECM) TMem() float64 {
	bytes := float64(StreamsPerLUP) * CacheLineBytes
	seconds := bytes / e.bandwidth()
	return seconds * e.FreqGHz * 1e9
}

// SingleCoreCycles returns the no-overlap single core prediction for
// eight updates.
func (e ECM) SingleCoreCycles() float64 { return e.TCore() + e.TCache() + e.TMem() }

// SingleCoreMLUPS returns the single core performance prediction.
func (e ECM) SingleCoreMLUPS() float64 {
	cyclesPerLUP := e.SingleCoreCycles() / LUPsPerCacheLine
	return e.FreqGHz * 1e9 / cyclesPerLUP / 1e6
}

// MLUPS returns the predicted performance with n cores: linear scaling of
// the single-core prediction capped by the bandwidth roofline.
func (e ECM) MLUPS(cores int) float64 {
	linear := float64(cores) * e.SingleCoreMLUPS()
	roof := RooflineMLUPS(e.bandwidth() / GiB)
	return math.Min(linear, roof)
}

// SaturationCores returns the number of cores at which the memory
// interface saturates (the paper: six of eight cores on SuperMUC at
// 2.7 GHz; all eight are needed at the reduced frequency).
func (e ECM) SaturationCores() int {
	roof := RooflineMLUPS(e.bandwidth() / GiB)
	single := e.SingleCoreMLUPS()
	n := int(math.Ceil(roof/single - 1e-9))
	if n < 1 {
		n = 1
	}
	if n > e.Machine.Cores {
		n = e.Machine.Cores
	}
	return n
}

// EnergyModel estimates socket energy per lattice cell update relative to
// operation at the nominal frequency, using a simple static+dynamic power
// split P(f) = P_static + c f^3 calibrated so that running SuperMUC at
// 1.6 GHz consumes 25 % less energy at 93 % of the performance (the
// paper's optimal operating point).
type EnergyModel struct {
	ecm ECM
	// staticShare is the fraction of socket power that does not scale
	// with frequency at the nominal operating point.
	staticShare float64
}

// NewEnergyModel builds the calibrated energy model.
func NewEnergyModel(m *Machine) EnergyModel {
	return EnergyModel{ecm: NewECM(m), staticShare: 0.627}
}

// RelativePower returns P(f)/P(f_nominal).
func (em EnergyModel) RelativePower(freqGHz float64) float64 {
	f0 := em.ecm.Machine.FreqGHz
	r := freqGHz / f0
	return em.staticShare + (1-em.staticShare)*r*r*r
}

// RelativeEnergyPerLUP returns E(f)/E(f_nominal) for the full socket: the
// power ratio divided by the performance ratio.
func (em EnergyModel) RelativeEnergyPerLUP(freqGHz float64) float64 {
	perf := em.ecm.AtFrequency(freqGHz).MLUPS(em.ecm.Machine.Cores)
	perf0 := em.ecm.MLUPS(em.ecm.Machine.Cores)
	return em.RelativePower(freqGHz) / (perf / perf0)
}

// OptimalFrequency scans candidate frequencies for the minimum energy per
// update — reproducing the paper's 1.6 GHz sweet spot on SuperMUC.
func (em EnergyModel) OptimalFrequency(candidates []float64) float64 {
	best, bestE := em.ecm.Machine.FreqGHz, math.Inf(1)
	for _, f := range candidates {
		if e := em.RelativeEnergyPerLUP(f); e < bestE {
			best, bestE = f, e
		}
	}
	return best
}
