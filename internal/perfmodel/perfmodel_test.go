package perfmodel

import (
	"math"
	"testing"
)

// The roofline arithmetic of section 4.1: 37.3 GiB/s : 456 B/LUP = 87.8
// MLUPS on SuperMUC, 32.4 GiB/s -> 76.2 MLUPS on JUQUEEN.
func TestRooflineMatchesPaper(t *testing.T) {
	if got := RooflineMLUPS(37.3); math.Abs(got-87.8) > 0.1 {
		t.Errorf("SuperMUC roofline = %v, want 87.8", got)
	}
	if got := RooflineMLUPS(32.4); math.Abs(got-76.2) > 0.1 {
		t.Errorf("JUQUEEN roofline = %v, want 76.2", got)
	}
	if got := SuperMUCSocket().Roofline(); math.Abs(got-87.8) > 0.1 {
		t.Errorf("machine roofline = %v", got)
	}
	if got := JUQUEENNode().Roofline(); math.Abs(got-76.2) > 0.1 {
		t.Errorf("machine roofline = %v", got)
	}
}

func TestBytesPerLUP(t *testing.T) {
	if BytesPerLUP != 456 {
		t.Errorf("BytesPerLUP = %d, want 456", BytesPerLUP)
	}
	if StreamsPerLUP != 57 {
		t.Errorf("StreamsPerLUP = %d, want 57", StreamsPerLUP)
	}
}

// ECM components on SuperMUC: 448 core cycles, 114 cycles per cache hop
// (57 lines x 2 cycles) for eight updates, as stated in the paper.
func TestECMComponents(t *testing.T) {
	e := NewECM(SuperMUCSocket())
	if e.TCore() != 448 {
		t.Errorf("TCore = %v, want 448", e.TCore())
	}
	if e.TCache() != 228 { // two hops x 114
		t.Errorf("TCache = %v, want 228 (2 x 114)", e.TCache())
	}
	// TMem: 57 lines x 64 B over 37.3 GiB/s at 2.7 GHz.
	want := 57.0 * 64.0 / (37.3 * GiB) * 2.7e9
	if math.Abs(e.TMem()-want) > 1e-9 {
		t.Errorf("TMem = %v, want %v", e.TMem(), want)
	}
}

// The ECM multicore curve must saturate at the roofline before the full
// socket (the paper: six of eight cores saturate at 2.7 GHz) and the
// reduced frequency must need all eight.
func TestECMSaturation(t *testing.T) {
	m := SuperMUCSocket()
	e := NewECM(m)
	sat := e.SaturationCores()
	if sat < 4 || sat > 7 {
		t.Errorf("saturation at %d cores, want 4..7", sat)
	}
	full := e.MLUPS(8)
	if math.Abs(full-87.8) > 0.5 {
		t.Errorf("full socket = %v MLUPS, want ~87.8", full)
	}
	low := e.AtFrequency(1.6)
	if got := low.SaturationCores(); got < sat {
		t.Errorf("reduced frequency saturates at %d cores, was %d at nominal", got, sat)
	}
	// 1.6 GHz must reach about 93 % of the nominal performance.
	ratio := low.MLUPS(8) / full
	if math.Abs(ratio-0.93) > 0.03 {
		t.Errorf("1.6 GHz performance ratio = %v, want ~0.93", ratio)
	}
}

// The ECM curve is monotone in cores and the single-core value is far
// below the roofline (memory interface cannot be saturated by one core).
func TestECMShape(t *testing.T) {
	for _, m := range []*Machine{SuperMUCSocket(), JUQUEENNode()} {
		e := NewECM(m)
		prev := 0.0
		for n := 1; n <= m.Cores; n++ {
			v := e.MLUPS(n)
			if v < prev-1e-9 {
				t.Errorf("%s: MLUPS decreases at %d cores", m.Name, n)
			}
			prev = v
		}
		if e.SingleCoreMLUPS() > 0.5*e.Machine.Roofline() {
			t.Errorf("%s: single core implausibly close to roofline", m.Name)
		}
	}
}

// Energy study of Figure 4: 1.6 GHz is the optimum, saving ~25 % energy
// at ~93 % performance.
func TestEnergyOptimum(t *testing.T) {
	em := NewEnergyModel(SuperMUCSocket())
	freqs := []float64{1.2, 1.4, 1.6, 1.8, 2.0, 2.3, 2.7}
	best := em.OptimalFrequency(freqs)
	if best < 1.4 || best > 1.8 {
		t.Errorf("optimal frequency %v GHz, want ~1.6", best)
	}
	saving := 1 - em.RelativeEnergyPerLUP(1.6)
	if saving < 0.15 || saving > 0.35 {
		t.Errorf("energy saving at 1.6 GHz = %v, want ~0.25", saving)
	}
	if em.RelativePower(2.7) != 1 {
		t.Error("relative power at nominal frequency must be 1")
	}
}

// Figure 3 ranking: Generic < D3Q19 < SIMD everywhere; only SIMD reaches
// the roofline; TRT equals SRT at the full socket but trails at one core.
func TestKernelModelRanking(t *testing.T) {
	for _, m := range []*Machine{SuperMUCSocket(), JUQUEENNode()} {
		smt := m.SMTWays
		for n := 1; n <= m.Cores; n++ {
			gen := KernelMLUPS(m, KernelGeneric, CollisionTRT, n, smt)
			d3q := KernelMLUPS(m, KernelD3Q19, CollisionTRT, n, smt)
			simd := KernelMLUPS(m, KernelSIMD, CollisionTRT, n, smt)
			if !(gen <= d3q+1e-9 && d3q <= simd+1e-9) {
				t.Errorf("%s n=%d: ranking violated gen=%v d3q=%v simd=%v", m.Name, n, gen, d3q, simd)
			}
		}
		simdFull := KernelMLUPS(m, KernelSIMD, CollisionTRT, m.Cores, smt)
		if simdFull < 0.95*m.Roofline() {
			t.Errorf("%s: SIMD full socket %v below 95%% of roofline %v", m.Name, simdFull, m.Roofline())
		}
		genFull := KernelMLUPS(m, KernelGeneric, CollisionTRT, m.Cores, smt)
		if genFull > 0.8*m.Roofline() {
			t.Errorf("%s: generic kernel %v implausibly close to roofline", m.Name, genFull)
		}
		// TRT vs SRT: equal at saturation, SRT faster on one core.
		srt1 := KernelMLUPS(m, KernelSIMD, CollisionSRT, 1, smt)
		trt1 := KernelMLUPS(m, KernelSIMD, CollisionTRT, 1, smt)
		if trt1 >= srt1 {
			t.Errorf("%s: TRT single-core %v not below SRT %v", m.Name, trt1, srt1)
		}
		srtFull := KernelMLUPS(m, KernelSIMD, CollisionSRT, m.Cores, smt)
		if math.Abs(srtFull-simdFull) > 1e-9 {
			t.Errorf("%s: TRT %v != SRT %v at full socket", m.Name, simdFull, srtFull)
		}
	}
}

// Figure 5: JUQUEEN needs at least 2-way SMT to approach saturation;
// 4-way reaches it, 1-way stays clearly below.
func TestSMTModel(t *testing.T) {
	m := JUQUEENNode()
	full1 := KernelMLUPS(m, KernelSIMD, CollisionTRT, 16, 1)
	full2 := KernelMLUPS(m, KernelSIMD, CollisionTRT, 16, 2)
	full4 := KernelMLUPS(m, KernelSIMD, CollisionTRT, 16, 4)
	if !(full1 < full2 && full2 <= full4+1e-9) {
		t.Errorf("SMT ordering violated: %v %v %v", full1, full2, full4)
	}
	if full4 < 0.95*m.Roofline() {
		t.Errorf("4-way SMT %v does not saturate roofline %v", full4, m.Roofline())
	}
	if full1 > 0.85*m.Roofline() {
		t.Errorf("1-way SMT %v implausibly close to roofline", full1)
	}
}

func TestKernelCurveLengthAndMonotone(t *testing.T) {
	m := SuperMUCSocket()
	curve := KernelCurve(m, KernelSIMD, CollisionTRT, 8, 1)
	if len(curve) != 8 {
		t.Fatalf("curve length %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]-1e-9 {
			t.Errorf("curve decreases at %d", i)
		}
	}
}

// The sparse kernel model: MFLUPS grows with fluid fraction, reaching the
// dense rate at 1 and collapsing at 0 — the mechanism behind the rising
// efficiency in Figure 7.
func TestSparseKernelModel(t *testing.T) {
	m := JUQUEENNode()
	dense := SaturatedMLUPSPerCore(m)
	if got := SparseKernelMFLUPSPerCore(m, 1); math.Abs(got-dense) > 1e-9 {
		t.Errorf("full block rate %v != dense %v", got, dense)
	}
	if got := SparseKernelMFLUPSPerCore(m, 0); got != 0 {
		t.Errorf("empty block rate %v != 0", got)
	}
	prev := -1.0
	for _, ff := range []float64{0.05, 0.1, 0.3, 0.5, 0.8, 1.0} {
		v := SparseKernelMFLUPSPerCore(m, ff)
		if v <= prev {
			t.Errorf("sparse rate not increasing at ff=%v", ff)
		}
		prev = v
	}
	// At low fluid fraction the rate is dominated by skip cost: MFLUPS
	// well below ff * dense-equivalents... it must at least stay under
	// the dense rate.
	if SparseKernelMFLUPSPerCore(m, 0.2) >= dense {
		t.Error("sparse rate exceeds dense rate")
	}
}

func TestAggregateBandwidth(t *testing.T) {
	m := SuperMUCSocket()
	// 2^17 cores = 16384 sockets x 40 GiB/s.
	if got := m.AggregateBandwidthGiBs(1 << 17); math.Abs(got-16384*40) > 1e-6 {
		t.Errorf("aggregate bandwidth = %v", got)
	}
}

// The paper's in-text aggregate statements: 837 GLUPS on 2^17 SuperMUC
// cores drive 54.2 % of the theoretical bandwidth (166 TFLOPS, ~5 % of
// peak); 1.93 TLUPS on the full JUQUEEN drive 67.4 % (383 TFLOPS, ~6.5 %
// of peak).
func TestPaperAggregateStatements(t *testing.T) {
	smuc := SuperMUCSocket()
	if got := smuc.BandwidthUtilization(837e3, 1<<17); math.Abs(got-0.542) > 0.005 {
		t.Errorf("SuperMUC bandwidth utilization = %v, want 0.542", got)
	}
	jq := JUQUEENNode()
	if got := jq.BandwidthUtilization(1.93e6, 458752); math.Abs(got-0.674) > 0.005 {
		t.Errorf("JUQUEEN bandwidth utilization = %v, want 0.674", got)
	}
	// FLOP statements with the paper's implied ~198 FLOPs per update.
	const flopsPerLUP = 198
	if got := FLOPRate(837e3, flopsPerLUP); math.Abs(got-166e3) > 2e3 {
		t.Errorf("SuperMUC rate = %v GFLOPS, want ~166000", got)
	}
	if got := FLOPRate(1.93e6, flopsPerLUP); math.Abs(got-382e3) > 3e3 {
		t.Errorf("JUQUEEN rate = %v GFLOPS, want ~383000", got)
	}
	if got := smuc.PercentOfPeak(837e3, 1<<17, flopsPerLUP); got < 0.045 || got > 0.07 {
		t.Errorf("SuperMUC percent of peak = %v, want ~0.05", got)
	}
	if got := jq.PercentOfPeak(1.93e6, 458752, flopsPerLUP); got < 0.055 || got > 0.075 {
		t.Errorf("JUQUEEN percent of peak = %v, want ~0.065", got)
	}
}

func TestStringers(t *testing.T) {
	if KernelGeneric.String() != "Generic" || KernelD3Q19.String() != "D3Q19" || KernelSIMD.String() != "SIMD" {
		t.Error("KernelClass strings wrong")
	}
	if CollisionSRT.String() != "SRT" || CollisionTRT.String() != "TRT" {
		t.Error("CollisionClass strings wrong")
	}
}
