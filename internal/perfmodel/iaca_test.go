package perfmodel

import (
	"math"
	"testing"
)

func TestOpCountsPlausible(t *testing.T) {
	trt := D3Q19TRTOpCounts()
	srt := D3Q19SRTOpCounts()
	if trt.Loads != 19 || trt.Stores != 19 {
		t.Errorf("TRT memory ops: %d loads, %d stores", trt.Loads, trt.Stores)
	}
	// TRT performs strictly more arithmetic than SRT (the paper:
	// "computationally more expensive").
	if trt.FLOPsPerCell() <= srt.FLOPsPerCell() {
		t.Errorf("TRT FLOPs %d not above SRT %d", trt.FLOPsPerCell(), srt.FLOPsPerCell())
	}
	// Around 200-300 FLOPs per D3Q19 cell update is the documented range
	// for optimized TRT kernels.
	if trt.FLOPsPerCell() < 150 || trt.FLOPsPerCell() > 350 {
		t.Errorf("TRT FLOPs/cell = %d out of plausible range", trt.FLOPsPerCell())
	}
}

// The calibrated Sandy Bridge analysis must reproduce the paper's IACA
// result of 448 cycles per eight TRT cell updates.
func TestEstimatedCyclesMatchIACA(t *testing.T) {
	got := EstimatedCycles(D3Q19TRTOpCounts(), SandyBridgePorts())
	if math.Abs(got-448) > 1 {
		t.Errorf("estimated cycles = %v, want 448 (paper's IACA figure)", got)
	}
}

// The port bound is dominated by the FP add port for this kernel and lies
// strictly below the stall-inclusive estimate.
func TestPortBoundStructure(t *testing.T) {
	ops := D3Q19TRTOpCounts()
	arch := SandyBridgePorts()
	bound := PortBoundCycles(ops, arch)
	if bound >= EstimatedCycles(ops, arch) {
		t.Error("port bound not below stall-inclusive estimate")
	}
	// Adds: 146 * 2 vector iterations / 1 per cycle = 292 plus division.
	want := 146.0*2 + 2*arch.DivCycles
	if math.Abs(bound-want) > 1e-9 {
		t.Errorf("port bound = %v, want %v (add-port dominated)", bound, want)
	}
}

// SRT needs fewer cycles than TRT in core execution; the BG/Q in-order
// core needs more cycles than Sandy Bridge for the same kernel.
func TestAnalyzerOrderings(t *testing.T) {
	snb := SandyBridgePorts()
	bgq := BlueGeneQPorts()
	srt := PortBoundCycles(D3Q19SRTOpCounts(), snb)
	trt := PortBoundCycles(D3Q19TRTOpCounts(), snb)
	if srt >= trt {
		t.Errorf("SRT port bound %v not below TRT %v", srt, trt)
	}
	if PortBoundCycles(D3Q19TRTOpCounts(), bgq) <= trt {
		t.Error("BG/Q core should need more cycles than SNB for the same kernel")
	}
}

// Scalar execution (vector width 1) must cost about four times the AVX
// port bound.
func TestVectorWidthScaling(t *testing.T) {
	avx := SandyBridgePorts()
	scalar := avx
	scalar.VectorWidth = 1
	rAVX := PortBoundCycles(D3Q19TRTOpCounts(), avx)
	rScalar := PortBoundCycles(D3Q19TRTOpCounts(), scalar)
	ratio := rScalar / rAVX
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("scalar/AVX ratio = %v, want ~4", ratio)
	}
}
