package scenario

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"walberla/internal/amr"
	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/output"
	"walberla/internal/sim"
	"walberla/internal/telemetry"
)

// ExecuteOptions carries host-side hooks that are not part of the
// scenario contract: where telemetry goes, and whether fields are dumped
// at the end.
type ExecuteOptions struct {
	// TelemetryFor, if non-nil, supplies each rank's tracer and metrics
	// registry (either may be nil) before the simulation is built.
	TelemetryFor func(rank int) (*telemetry.Tracer, *telemetry.Registry)
	// VTKDir, if non-empty, receives one VTK file per block after the run.
	VTKDir string
	// Each, if non-nil, runs on every rank's goroutine after its time
	// loop with the local simulation state (probing, assertions).
	Each func(c *comm.Comm, s *sim.Simulation)
	// EachAMR is Each for refined scenarios (refinement.max_level > 0),
	// which run on the AMR driver.
	EachAMR func(c *comm.Comm, s *amr.Sim)
}

// Result is what one scenario execution produced.
type Result struct {
	// Metrics are the globally reduced run metrics (zero when the run was
	// interrupted before completion).
	Metrics sim.Metrics
	// Hash is the collective field fingerprint after the run — equal
	// across CLI, daemon, worker counts and transports exactly when the
	// fields are bit-identical.
	Hash uint64
	// Steps is the number of steps rank 0 executed (less than the
	// scenario's run.steps when interrupted).
	Steps int
	// Levels is the final leaf count per refinement level (AMR runs
	// only; nil for uniform runs).
	Levels []int
	// Interrupted reports that the context cancelled the run at a step
	// boundary; the fields (and Hash) are the consistent state there.
	Interrupted bool
}

// Execute runs the scenario to completion (or cancellation) and returns
// the reduced metrics and the final field hash. It is the one execution
// path shared by the CLI, the tests and the benchmark harness, which is
// what makes "the same scenario file gives the same answer everywhere" a
// checkable property rather than a convention.
func Execute(ctx context.Context, sc *Scenario, opts ExecuteOptions) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	if sc.AMR() {
		return executeAMR(ctx, sc, opts)
	}
	p, err := sc.Problem()
	if err != nil {
		return Result{}, err
	}
	forest, err := p.BuildForest()
	if err != nil {
		return Result{}, err
	}
	rc, resilient := sc.Resilient()

	var mu sync.Mutex
	var res Result
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	// Heal mode parks parallel.spares extra ranks alongside the active
	// world; they join via the spare driver when a failure recruits them.
	active := sc.Parallel.Ranks
	spares := 0
	if resilient && rc.Mode == sim.RecoverHeal {
		spares = sc.Parallel.Spares
	}
	comm.RunWithOptions(active+spares, sc.CommOptions(), func(c *comm.Comm) {
		cfg := p.SimConfig()
		if opts.TelemetryFor != nil {
			cfg.Tracer, cfg.Metrics = opts.TelemetryFor(c.WorldRank())
		}
		var s *sim.Simulation
		var m sim.Metrics
		var err error
		if spares > 0 && c.WorldRank() >= active {
			header := &blockforest.BlockForest{
				Domain:        forest.Domain,
				GridSize:      forest.GridSize,
				CellsPerBlock: forest.CellsPerBlock,
			}
			var joined bool
			s, m, joined, err = sim.RunSpareCtx(ctx, c, active, header, cfg, sc.Run.Steps, rc)
			if !joined {
				// The run ended without needing this spare.
				if err != nil {
					fail(err)
				}
				return
			}
		} else {
			ac := c
			if spares > 0 {
				ac = c.GrowWorld(active)
			}
			var in *blockforest.SetupForest
			if ac.Rank() == 0 {
				in = forest
			}
			bf, derr := blockforest.Distribute(ac, in)
			if derr != nil {
				fail(derr)
				return
			}
			s, err = sim.New(ac, bf, cfg)
			if err != nil {
				fail(err)
				return
			}
			switch {
			case resilient:
				m, err = s.RunResilientCtx(ctx, sc.Run.Steps, rc)
			case sc.Run.RebalanceEvery > 0:
				m, err = runRebalanced(ctx, s, sc.Run.Steps, sc.Run.RebalanceEvery)
			default:
				m, err = s.RunCtx(ctx, sc.Run.Steps)
			}
		}
		interrupted := false
		switch {
		case errors.Is(err, sim.ErrInterrupted):
			interrupted = true
		case errors.Is(err, sim.ErrRetired):
			// This rank failed permanently under shrinking/healing recovery;
			// the survivors carry its blocks (and the result) on.
			return
		case err != nil:
			fail(err)
			return
		}
		hash, err := s.FieldHash()
		if err != nil {
			fail(err)
			return
		}
		if opts.VTKDir != "" {
			if err := WriteBlockVTK(opts.VTKDir, s); err != nil {
				fail(err)
				return
			}
		}
		if opts.Each != nil {
			opts.Each(s.Comm, s)
		}
		// Recovery may have renumbered the communicator (shrink) or swapped
		// members in (heal): the rank holding rank 0 NOW reports the result.
		if s.Comm.Rank() == 0 {
			mu.Lock()
			res = Result{Metrics: m, Hash: hash, Steps: s.Steps(), Interrupted: interrupted}
			mu.Unlock()
		}
	})
	if firstErr != nil {
		return Result{}, firstErr
	}
	return res, nil
}

// runRebalanced interleaves chunked stepping with workload-measured
// rebalancing, preserving the context's step-boundary cancellation.
func runRebalanced(ctx context.Context, s *sim.Simulation, steps, every int) (sim.Metrics, error) {
	var m sim.Metrics
	for remaining := steps; remaining > 0; {
		chunk := every
		if chunk > remaining {
			chunk = remaining
		}
		var err error
		m, err = s.RunCtx(ctx, chunk)
		if err != nil {
			return m, err
		}
		remaining -= chunk
		if remaining > 0 {
			if err := s.RebalanceByWorkload(true); err != nil {
				return m, err
			}
		}
	}
	return m, nil
}

// WriteBlockVTK dumps every local block's field as block_X_Y_Z.vtk into
// dir (created if missing). Each rank writes only its own blocks, so the
// daemon and the CLI call this per rank without coordination.
func WriteBlockVTK(dir string, s *sim.Simulation) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, bd := range s.Blocks {
		spacing := (bd.Block.AABB.Max[0] - bd.Block.AABB.Min[0]) / float64(bd.Src.Nx)
		origin := [3]float64{
			bd.Block.AABB.Min[0] + spacing/2,
			bd.Block.AABB.Min[1] + spacing/2,
			bd.Block.AABB.Min[2] + spacing/2,
		}
		name := fmt.Sprintf("block_%d_%d_%d", bd.Block.Coord[0], bd.Block.Coord[1], bd.Block.Coord[2])
		f, err := os.Create(filepath.Join(dir, name+".vtk"))
		if err != nil {
			return err
		}
		err = output.WriteVTK(f, name, bd.Src, bd.Flags, origin, spacing)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}
