package scenario

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestParseGolden: the checked-in valid scenario files parse, and
// Validate fills the documented defaults in place.
func TestParseGolden(t *testing.T) {
	sc, err := ParseFile(filepath.Join("testdata", "cavity.json"))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "cavity-smoke" || sc.Geometry.Example != "cavity" {
		t.Errorf("parsed %q/%q", sc.Name, sc.Geometry.Example)
	}
	if sc.Parallel.Ranks != 2 || sc.Parallel.Workers != 2 {
		t.Errorf("parallel = %+v", sc.Parallel)
	}
	if sc.Parallel.Exchange != "aggregated" {
		t.Errorf("exchange default = %q, want aggregated", sc.Parallel.Exchange)
	}
	if sc.Transport.Network != "inproc" {
		t.Errorf("network default = %q, want inproc", sc.Transport.Network)
	}
	if sc.Resilience.Mode != "rewind" {
		t.Errorf("resilience mode default = %q, want rewind", sc.Resilience.Mode)
	}
	if sc.Lattice.Stencil != "d3q19" {
		t.Errorf("stencil = %q", sc.Lattice.Stencil)
	}

	tg, err := ParseFile(filepath.Join("testdata", "taylorgreen.json"))
	if err != nil {
		t.Fatal(err)
	}
	if tg.Geometry.Amplitude != 0.02 || !tg.Telemetry.Metrics {
		t.Errorf("taylor-green parsed %+v %+v", tg.Geometry, tg.Telemetry)
	}
	p, err := tg.Problem()
	if err != nil {
		t.Fatal(err)
	}
	if p.Periodic != [3]bool{true, true, true} || p.InitialState == nil {
		t.Errorf("taylor-green problem not periodic with an initial state")
	}
}

// TestParseRejects: the schema fails loudly on unknown fields, version
// skew and invalid values — the golden rejection contract of the HTTP
// API's 400 responses.
func TestParseRejects(t *testing.T) {
	cases := []struct {
		file, want string
	}{
		{"bad-unknown-field.json", "unknown field"},
		{"bad-version.json", "unsupported version"},
		{"bad-values.json", "tau"},
	}
	for _, tc := range cases {
		data, err := os.ReadFile(filepath.Join("testdata", tc.file))
		if err != nil {
			t.Fatal(err)
		}
		_, err = Parse(data)
		if err == nil {
			t.Errorf("%s: accepted an invalid scenario", tc.file)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.file, err, tc.want)
		}
	}
}

// TestValidateErrors covers the semantic checks beyond JSON shape.
func TestValidateErrors(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{
			Version:    Version,
			Geometry:   Geometry{Example: "cavity"},
			Resolution: Resolution{Grid: [3]int{1, 1, 1}},
			Run:        RunSpec{Steps: 1},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"no example", func(sc *Scenario) { sc.Geometry.Example = "" }, "geometry.example"},
		{"bad example", func(sc *Scenario) { sc.Geometry.Example = "vortex-street" }, "geometry.example"},
		{"bad stencil", func(sc *Scenario) { sc.Lattice.Stencil = "d3q15" }, "lattice.stencil"},
		{"no grid", func(sc *Scenario) { sc.Resolution.Grid = [3]int{} }, "resolution.grid"},
		{"tree without dx", func(sc *Scenario) { sc.Geometry.Example = "tree" }, "geometry.dx"},
		{"obstacle outside channel", func(sc *Scenario) {
			sc.Geometry.Obstacle = &Obstacle{Min: [3]int{0, 0, 0}, Max: [3]int{1, 1, 1}}
		}, "obstacle"},
		{"empty obstacle", func(sc *Scenario) {
			sc.Geometry.Example = "channel"
			sc.Geometry.Obstacle = &Obstacle{Min: [3]int{2, 0, 0}, Max: [3]int{1, 1, 1}}
		}, "obstacle"},
		{"bad exchange", func(sc *Scenario) { sc.Parallel.Exchange = "zero-copy" }, "parallel.exchange"},
		{"bad network", func(sc *Scenario) { sc.Transport.Network = "infiniband" }, "transport.network"},
		{"addrs on inproc", func(sc *Scenario) { sc.Transport.Addrs = []string{"a"} }, "transport.addrs"},
		{"addr count", func(sc *Scenario) {
			sc.Transport.Network = "tcp"
			sc.Transport.Addrs = []string{"127.0.0.1:0"}
			sc.Parallel.Ranks = 2
		}, "transport.addrs"},
		{"bad mode", func(sc *Scenario) { sc.Resilience.Mode = "forward" }, "resilience.mode"},
		{"rewind without dir", func(sc *Scenario) { sc.Resilience.CheckpointEvery = 5 }, "resilience.dir"},
		{"no steps", func(sc *Scenario) { sc.Run.Steps = 0 }, "run.steps"},
		{"rebalance with resilience", func(sc *Scenario) {
			sc.Run.RebalanceEvery = 2
			sc.Resilience = Resilience{CheckpointEvery: 5, Dir: "x"}
		}, "rebalance"},
		{"bad tau", func(sc *Scenario) { sc.Collision.Tau = 0.3 }, "tau"},
		{"bad kernel pairing", func(sc *Scenario) {
			sc.Lattice.Stencil = "d2q9"
			sc.Collision.Kernel = "TRT SIMD"
		}, "kernel"},
	}
	for _, tc := range cases {
		sc := base()
		tc.mutate(sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the scenario", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestRoundTrip: a validated scenario re-marshals and re-parses into the
// same value — the schema is closed under its own serialization, which
// the daemon relies on when echoing a session's scenario back.
func TestRoundTrip(t *testing.T) {
	for _, file := range []string{"cavity.json", "taylorgreen.json", "amr-cavity.json"} {
		sc, err := ParseFile(filepath.Join("testdata", file))
		if err != nil {
			t.Fatal(err)
		}
		sc.Resilience.FailTimeout = Duration(250 * time.Millisecond)
		data, err := json.Marshal(sc)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: re-parse: %v", file, err)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Errorf("%s: round trip changed the scenario:\n  %+v\n  %+v", file, sc, back)
		}
	}
}

// TestDurationForms: the Duration type accepts both human strings and
// raw nanosecond numbers.
func TestDurationForms(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"150ms"`), &d); err != nil || time.Duration(d) != 150*time.Millisecond {
		t.Errorf("string form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`1000000`), &d); err != nil || time.Duration(d) != time.Millisecond {
		t.Errorf("number form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"fast"`), &d); err == nil {
		t.Error("accepted a junk duration")
	}
}

// TestExecuteDeterministic: the same scenario executes to the same field
// hash regardless of worker count — the property that makes the hash a
// meaningful CLI-vs-daemon and suspend-vs-uninterrupted comparison.
func TestExecuteDeterministic(t *testing.T) {
	sc, err := ParseFile(filepath.Join("testdata", "cavity.json"))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Execute(context.Background(), sc, ExecuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Interrupted || r1.Steps != sc.Run.Steps || r1.Hash == 0 {
		t.Fatalf("unexpected result %+v", r1)
	}
	sc2 := *sc
	sc2.Parallel.Workers = 4
	r2, err := Execute(context.Background(), &sc2, ExecuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Hash != r2.Hash {
		t.Errorf("hash differs across worker counts: %016x vs %016x", r1.Hash, r2.Hash)
	}
}
