// Package scenario defines the versioned, validated JSON scenario schema
// — the single source of truth for what a simulation *is*, consumed by
// both the walberla-sim CLI (flags become overrides parsed into the same
// struct) and the walberla-serve session daemon (scenarios arrive over
// HTTP). A scenario that survives Parse/Validate maps deterministically
// onto a core.Problem, so the CLI and the daemon running the same file
// produce bit-identical fields (compare with sim.FieldHash).
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"walberla/internal/boundary"
	"walberla/internal/comm"
	"walberla/internal/core"
	"walberla/internal/lattice"
	"walberla/internal/setup"
	"walberla/internal/sim"
	"walberla/internal/vascular"
)

// Version is the current schema version. Parse rejects any other value:
// scenarios are configuration contracts, and silently reinterpreting an
// old file under new semantics is worse than a hard error.
const Version = 1

// Scenario is the complete declarative description of one simulation.
// The zero value of every optional field means "use the documented
// default"; Validate fills the defaults in place so a validated scenario
// is self-describing.
type Scenario struct {
	// Version must equal Version (1).
	Version int `json:"version"`
	// Name is a free-form label (shows up in session listings and
	// telemetry); optional.
	Name string `json:"name,omitempty"`

	Geometry   Geometry       `json:"geometry"`
	Lattice    Lattice        `json:"lattice"`
	Resolution Resolution     `json:"resolution"`
	Collision  Collision      `json:"collision"`
	Physics    Physics        `json:"physics"`
	Refinement RefinementSpec `json:"refinement"`
	Parallel   Parallel       `json:"parallel"`
	Transport  Transport  `json:"transport"`
	Resilience Resilience `json:"resilience"`
	Faults     Faults     `json:"faults"`
	Telemetry  Telemetry  `json:"telemetry"`
	Run        RunSpec    `json:"run"`
}

// Geometry selects the domain and its driving boundary conditions.
type Geometry struct {
	// Example is the built-in scenario family: "cavity" (lid-driven
	// cavity, the paper's dense weak-scaling workload), "channel" (inflow/
	// outflow channel with an optional box obstacle), "taylor-green"
	// (periodic analytic vortex), or "tree" (the synthetic coronary tree
	// voxelized from its signed distance field, the paper's complex
	// geometry).
	Example string `json:"example"`
	// LidVelocity drives the +z lid of the cavity; default 0.05.
	LidVelocity float64 `json:"lid_velocity,omitempty"`
	// InflowVelocity drives channel (+x) and tree (+z) inflow; default 0.02.
	InflowVelocity float64 `json:"inflow_velocity,omitempty"`
	// Amplitude is the taylor-green initial velocity amplitude; default 0.02.
	Amplitude float64 `json:"amplitude,omitempty"`
	// Obstacle places a no-slip box (global cell coordinates, half-open
	// [min, max)) into the channel example.
	Obstacle *Obstacle `json:"obstacle,omitempty"`
	// TreeDepth is the bifurcation depth of the synthetic tree; default 3.
	TreeDepth int `json:"tree_depth,omitempty"`
	// Dx is the lattice spacing of the tree example (required there).
	Dx float64 `json:"dx,omitempty"`
	// Seed drives randomized setup stages (tree generation, balancing).
	Seed int64 `json:"seed,omitempty"`
}

// Obstacle is an axis-aligned box in global cell coordinates.
type Obstacle struct {
	Min [3]int `json:"min"`
	Max [3]int `json:"max"`
}

// Lattice selects the discrete velocity model.
type Lattice struct {
	// Stencil is "d3q19" (default), "d3q27" or "d2q9".
	Stencil string `json:"stencil,omitempty"`
}

// Resolution fixes the block decomposition. Dense examples (cavity,
// channel, taylor-green) require Grid; the tree example derives its grid
// from the geometry bounds and Dx.
type Resolution struct {
	// Grid is the block grid of dense examples.
	Grid [3]int `json:"grid,omitempty"`
	// CellsPerBlock is the per-block cell grid; default [8 8 8].
	CellsPerBlock [3]int `json:"cells_per_block,omitempty"`
}

// Collision configures the collision operator.
type Collision struct {
	// Kernel picks the compute kernel: a family alias ("auto", "generic",
	// "split", "sparse") or an exact sim.KernelChoice name ("TRT SIMD",
	// "TRT Interval", "SRT Generic", ...). Empty or "auto" (the default)
	// selects per block at plan-build time — the split SoA kernel for
	// dense blocks, the interval sparse kernel below the fluid-fraction
	// threshold.
	Kernel string `json:"kernel,omitempty"`
	// Layout picks the PDF memory layout: "auto" (default; the selected
	// kernels' layout), "aos" or "soa". Both layouts produce bit-identical
	// fields.
	Layout string `json:"layout,omitempty"`
	// Tau is the relaxation time (> 0.5); default 0.9.
	Tau float64 `json:"tau,omitempty"`
	// Magic is the TRT magic parameter; default 3/16.
	Magic float64 `json:"magic,omitempty"`
}

// RefinementSpec enables runtime adaptive mesh refinement: the
// simulation runs on the AMR driver, which refines/coarsens a
// 2:1-graded block octree at runtime from a flow criterion and
// rebalances by level-weighted cost on every re-grade. See docs/AMR.md
// for the constraints (D3Q19, dense examples, no sparse kernels, no
// heal-mode recovery).
type RefinementSpec struct {
	// MaxLevel caps the refinement depth; 0 (the default) runs the
	// uniform drivers and makes the other fields invalid.
	MaxLevel int `json:"max_level,omitempty"`
	// Criterion is "gradient" (default; velocity-gradient magnitude) or
	// "vorticity".
	Criterion string `json:"criterion,omitempty"`
	// RefineAbove and CoarsenBelow are the criterion hysteresis band (in
	// physical units); refine_above must be positive, coarsen_below in
	// [0, refine_above).
	RefineAbove  float64 `json:"refine_above,omitempty"`
	CoarsenBelow float64 `json:"coarsen_below,omitempty"`
	// Interval is the number of coarse steps between controller passes;
	// default 4.
	Interval int `json:"interval,omitempty"`
}

// Physics sets body forces and the initial state.
type Physics struct {
	Force           [3]float64 `json:"force"`
	InitialRho      float64    `json:"initial_rho,omitempty"`
	InitialVelocity [3]float64 `json:"initial_velocity"`
}

// Parallel sets the execution shape: SPMD ranks, intra-rank workers and
// the ghost exchange wire format.
type Parallel struct {
	// Ranks is the number of SPMD processes; default 1.
	Ranks int `json:"ranks,omitempty"`
	// Workers is the intra-rank worker count; default 1.
	Workers int `json:"workers,omitempty"`
	// Exchange is "aggregated" (default) or "per-pair".
	Exchange string `json:"exchange,omitempty"`
	// Spares parks this many extra ranks alongside the active world; heal
	// recovery recruits them to replace permanently failed ranks (needs
	// resilience.mode "heal").
	Spares int `json:"spares,omitempty"`
}

// Transport selects the rank interconnect.
type Transport struct {
	// Network is "inproc" (default), "unix" or "tcp".
	Network string `json:"network,omitempty"`
	// Addrs optionally pins one listen address per rank (socket
	// transports only; length must equal ranks).
	Addrs []string `json:"addrs,omitempty"`
	// Heartbeat is the socket transport liveness probe interval.
	Heartbeat Duration `json:"heartbeat,omitempty"`
}

// Resilience configures the fault-tolerant driver. CheckpointEvery == 0
// runs the plain driver.
type Resilience struct {
	// CheckpointEvery takes a coordinated checkpoint set every N steps.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Dir is the checkpoint set directory (required when checkpointing).
	Dir string `json:"dir,omitempty"`
	// Mode is "rewind" (default; disk checkpoint sets), "shrink"
	// (in-memory buddy replicas, survivors adopt a dead rank's blocks) or
	// "heal" (shrink, then recruit a parked spare back to full world size).
	Mode string `json:"mode,omitempty"`
	// MaxFailures aborts after this many rank failures; nil means the
	// driver default, explicit 0 aborts on the first failure.
	MaxFailures *int `json:"max_failures,omitempty"`
	// FailTimeout declares a rank failed when a receive from it exceeds
	// this deadline (silent-failure detection); zero disables it.
	FailTimeout Duration `json:"fail_timeout,omitempty"`
}

// Faults is a deterministic fault-injection schedule: the named ranks
// crash (declared failure) or hang (silent, needs resilience.fail_timeout
// to be detected) at the given steps. The schedule describes one world
// incarnation — a respawned serve session runs clean — and exists so
// recovery behavior is reproducible from a scenario file alone.
type Faults struct {
	// Seed perturbs fault timing deterministically; default 1.
	Seed int64 `json:"seed,omitempty"`
	// Crashes kill the named ranks at the named steps, declaring the
	// failure to the survivors.
	Crashes []FaultEvent `json:"crashes,omitempty"`
	// Hangs stop the named ranks silently; detection relies on
	// resilience.fail_timeout.
	Hangs []FaultEvent `json:"hangs,omitempty"`
}

// FaultEvent pins one injected fault to a world rank and a step.
type FaultEvent struct {
	Rank int `json:"rank"`
	Step int `json:"step"`
}

// empty reports whether the schedule injects nothing.
func (f *Faults) empty() bool { return len(f.Crashes) == 0 && len(f.Hangs) == 0 }

// Telemetry opts the run into span tracing and the metrics registry.
type Telemetry struct {
	// Metrics enables per-rank counter/gauge registries (the daemon
	// always enables them per session and labels them with the session).
	Metrics bool `json:"metrics,omitempty"`
	// Trace records per-phase spans for a Chrome-trace export.
	Trace bool `json:"trace,omitempty"`
}

// RunSpec sets the time loop.
type RunSpec struct {
	// Steps is the number of time steps; must be positive.
	Steps int `json:"steps"`
	// RebalanceEvery rebalances blocks by measured compute time every N
	// steps (plain driver only); 0 disables it.
	RebalanceEvery int `json:"rebalance_every,omitempty"`
}

// Duration marshals as a Go duration string ("250ms") and also accepts
// plain JSON numbers (nanoseconds) for programmatic producers.
type Duration time.Duration

// MarshalJSON renders the duration as its canonical string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string or a number of nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("scenario: duration must be a string like \"250ms\" or nanoseconds, got %s", b)
	}
	*d = Duration(n)
	return nil
}

// Parse decodes, version-checks and validates a scenario document.
// Unknown fields are rejected — a typo in a scenario file must fail
// loudly, not silently fall back to a default.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after the document")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// ParseFile reads and parses a scenario file.
func ParseFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Validate normalizes the scenario in place (filling documented
// defaults) and reports the first invalid setting. Solver-level numeric
// checks are delegated to sim.Config.Validate via the built problem, so
// scenario-built and hand-built configurations share one normalization
// point.
func (sc *Scenario) Validate() error {
	if sc.Version != Version {
		return fmt.Errorf("scenario: unsupported version %d (this build speaks version %d)", sc.Version, Version)
	}
	switch sc.Geometry.Example {
	case "cavity", "channel", "taylor-green", "tree":
	case "":
		return fmt.Errorf("scenario: geometry.example is required (cavity, channel, taylor-green or tree)")
	default:
		return fmt.Errorf("scenario: unknown geometry.example %q (want cavity, channel, taylor-green or tree)", sc.Geometry.Example)
	}
	switch sc.Lattice.Stencil {
	case "":
		sc.Lattice.Stencil = "d3q19"
	case "d3q19", "d3q27", "d2q9":
	default:
		return fmt.Errorf("scenario: unknown lattice.stencil %q (want d3q19, d3q27 or d2q9)", sc.Lattice.Stencil)
	}
	if sc.Geometry.LidVelocity == 0 {
		sc.Geometry.LidVelocity = 0.05
	}
	if sc.Geometry.InflowVelocity == 0 {
		sc.Geometry.InflowVelocity = 0.02
	}
	if sc.Geometry.Amplitude == 0 {
		sc.Geometry.Amplitude = 0.02
	}
	if sc.Geometry.TreeDepth == 0 {
		sc.Geometry.TreeDepth = 3
	}
	if sc.Geometry.Seed == 0 {
		sc.Geometry.Seed = 1
	}
	if sc.Resolution.CellsPerBlock == [3]int{} {
		sc.Resolution.CellsPerBlock = [3]int{8, 8, 8}
	}
	// Normalize kernel/layout names here so a validated scenario records
	// the canonical choice (family aliases resolve to concrete names,
	// empty resolves to auto); cross-checks against the stencil are
	// delegated to sim.Config.Validate below.
	kc, err := sim.ParseKernelChoice(sc.Collision.Kernel)
	if err != nil {
		return fmt.Errorf("scenario: collision.kernel: %w", err)
	}
	sc.Collision.Kernel = string(kc)
	lc, err := sim.ParseLayoutChoice(sc.Collision.Layout)
	if err != nil {
		return fmt.Errorf("scenario: collision.layout: %w", err)
	}
	sc.Collision.Layout = string(lc)
	for d := 0; d < 3; d++ {
		if sc.Resolution.CellsPerBlock[d] <= 0 {
			return fmt.Errorf("scenario: resolution.cells_per_block must be positive, got %v", sc.Resolution.CellsPerBlock)
		}
	}
	if sc.Geometry.Example == "tree" {
		if sc.Geometry.Dx <= 0 {
			return fmt.Errorf("scenario: the tree example needs geometry.dx > 0")
		}
	} else {
		for d := 0; d < 3; d++ {
			if sc.Resolution.Grid[d] <= 0 {
				return fmt.Errorf("scenario: the %s example needs a positive resolution.grid, got %v",
					sc.Geometry.Example, sc.Resolution.Grid)
			}
		}
	}
	if ob := sc.Geometry.Obstacle; ob != nil {
		if sc.Geometry.Example != "channel" {
			return fmt.Errorf("scenario: geometry.obstacle only applies to the channel example")
		}
		for d := 0; d < 3; d++ {
			if ob.Min[d] >= ob.Max[d] {
				return fmt.Errorf("scenario: geometry.obstacle box is empty on axis %d (min %v, max %v)", d, ob.Min, ob.Max)
			}
		}
	}
	if sc.Parallel.Ranks == 0 {
		sc.Parallel.Ranks = 1
	}
	if sc.Parallel.Ranks < 0 {
		return fmt.Errorf("scenario: parallel.ranks must be positive, got %d", sc.Parallel.Ranks)
	}
	if sc.Parallel.Workers == 0 {
		sc.Parallel.Workers = 1
	}
	switch sc.Parallel.Exchange {
	case "":
		sc.Parallel.Exchange = "aggregated"
	case "aggregated", "per-pair":
	default:
		return fmt.Errorf("scenario: unknown parallel.exchange %q (want aggregated or per-pair)", sc.Parallel.Exchange)
	}
	switch sc.Transport.Network {
	case "":
		sc.Transport.Network = "inproc"
	case "inproc", "unix", "tcp":
	default:
		return fmt.Errorf("scenario: unknown transport.network %q (want inproc, unix or tcp)", sc.Transport.Network)
	}
	if sc.Transport.Network == "inproc" && (len(sc.Transport.Addrs) != 0 || sc.Transport.Heartbeat != 0) {
		return fmt.Errorf("scenario: transport.addrs/heartbeat need network unix or tcp")
	}
	if n := len(sc.Transport.Addrs); n != 0 && n != sc.Parallel.Ranks {
		return fmt.Errorf("scenario: transport.addrs has %d addresses for %d ranks", n, sc.Parallel.Ranks)
	}
	if sc.Resilience.CheckpointEvery < 0 {
		return fmt.Errorf("scenario: resilience.checkpoint_every must be non-negative, got %d", sc.Resilience.CheckpointEvery)
	}
	switch sc.Resilience.Mode {
	case "":
		sc.Resilience.Mode = "rewind"
	case "rewind", "shrink", "heal":
	default:
		return fmt.Errorf("scenario: unknown resilience.mode %q (want rewind, shrink or heal)", sc.Resilience.Mode)
	}
	if sc.Resilience.CheckpointEvery > 0 && sc.Resilience.Mode == "rewind" && sc.Resilience.Dir == "" {
		return fmt.Errorf("scenario: resilience.dir is required for rewind checkpointing")
	}
	if sc.Parallel.Spares < 0 {
		return fmt.Errorf("scenario: parallel.spares must be non-negative, got %d", sc.Parallel.Spares)
	}
	if sc.Parallel.Spares > 0 {
		if sc.Resilience.Mode != "heal" {
			return fmt.Errorf("scenario: parallel.spares needs resilience.mode \"heal\", got %q", sc.Resilience.Mode)
		}
		if sc.Resilience.CheckpointEvery <= 0 {
			return fmt.Errorf("scenario: parallel.spares needs resilience.checkpoint_every > 0")
		}
	}
	if !sc.Faults.empty() {
		world := sc.Parallel.Ranks + sc.Parallel.Spares
		for _, kind := range []struct {
			name   string
			events []FaultEvent
		}{{"crashes", sc.Faults.Crashes}, {"hangs", sc.Faults.Hangs}} {
			for _, ev := range kind.events {
				if ev.Rank < 0 || ev.Rank >= world {
					return fmt.Errorf("scenario: faults.%s rank %d out of range [0, %d)", kind.name, ev.Rank, world)
				}
				if ev.Step < 1 || ev.Step > sc.Run.Steps {
					return fmt.Errorf("scenario: faults.%s step %d out of range [1, %d]", kind.name, ev.Step, sc.Run.Steps)
				}
			}
		}
		if sc.Resilience.CheckpointEvery <= 0 {
			return fmt.Errorf("scenario: a faults schedule needs the fault-tolerant driver (resilience.checkpoint_every > 0)")
		}
		if len(sc.Faults.Hangs) > 0 && sc.Resilience.FailTimeout <= 0 {
			return fmt.Errorf("scenario: faults.hangs need resilience.fail_timeout > 0 (silent-failure detection)")
		}
	}
	if sc.Run.Steps <= 0 {
		return fmt.Errorf("scenario: run.steps must be positive, got %d", sc.Run.Steps)
	}
	if sc.Run.RebalanceEvery < 0 {
		return fmt.Errorf("scenario: run.rebalance_every must be non-negative, got %d", sc.Run.RebalanceEvery)
	}
	if sc.Run.RebalanceEvery > 0 && sc.Resilience.CheckpointEvery > 0 {
		return fmt.Errorf("scenario: run.rebalance_every cannot be combined with the fault-tolerant driver")
	}
	if err := sc.validateRefinement(); err != nil {
		return err
	}
	if sc.AMR() {
		// Solver-level checks were delegated to amr.Config.Validate inside
		// validateRefinement; the uniform-driver delegate below does not
		// apply to refined worlds.
		return nil
	}
	// Delegate solver-level checks (tau range, kernel/stencil pairing) to
	// the single normalization point; the built problem is discarded.
	p, err := sc.Problem()
	if err != nil {
		return err
	}
	cfg := p.SimConfig()
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}

// stencil maps the schema name to the lattice model.
func (sc *Scenario) stencil() *lattice.Stencil {
	switch sc.Lattice.Stencil {
	case "d3q27":
		return lattice.D3Q27()
	case "d2q9":
		return lattice.D2Q9()
	default:
		return lattice.D3Q19()
	}
}

// Problem maps the scenario onto the core.Problem façade. The mapping is
// pure: calling it twice yields problems that build identical forests and
// identical solver configurations.
func (sc *Scenario) Problem() (*core.Problem, error) {
	kc, err := sim.ParseKernelChoice(sc.Collision.Kernel)
	if err != nil {
		return nil, fmt.Errorf("scenario: collision.kernel: %w", err)
	}
	lc, err := sim.ParseLayoutChoice(sc.Collision.Layout)
	if err != nil {
		return nil, fmt.Errorf("scenario: collision.layout: %w", err)
	}
	p := &core.Problem{
		CellsPerBlock:   sc.Resolution.CellsPerBlock,
		Stencil:         sc.stencil(),
		Kernel:          kc,
		Layout:          lc,
		Tau:             sc.Collision.Tau,
		Magic:           sc.Collision.Magic,
		Force:           sc.Physics.Force,
		InitialRho:      sc.Physics.InitialRho,
		InitialVelocity: sc.Physics.InitialVelocity,
		Ranks:           sc.Parallel.Ranks,
		Workers:         sc.Parallel.Workers,
		Seed:            sc.Geometry.Seed,
	}
	if sc.Parallel.Exchange == "per-pair" {
		p.Exchange = sim.ExchangePerPair
	}
	switch sc.Geometry.Example {
	case "cavity":
		p.Grid = sc.Resolution.Grid
		p.Boundary = boundary.Config{WallVelocity: [3]float64{sc.Geometry.LidVelocity, 0, 0}}
		p.SetupFlags = core.CavityFlags
	case "channel":
		p.Grid = sc.Resolution.Grid
		p.Boundary = boundary.Config{WallVelocity: [3]float64{sc.Geometry.InflowVelocity, 0, 0}, Density: 1}
		var min, max [3]int
		if ob := sc.Geometry.Obstacle; ob != nil {
			min, max = ob.Min, ob.Max
		}
		p.SetupFlags = core.ChannelFlags(min, max)
	case "taylor-green":
		p.Grid = sc.Resolution.Grid
		p.Periodic = [3]bool{true, true, true}
		amp := sc.Geometry.Amplitude
		kx := 2 * math.Pi / float64(sc.Resolution.Grid[0]*sc.Resolution.CellsPerBlock[0])
		ky := 2 * math.Pi / float64(sc.Resolution.Grid[1]*sc.Resolution.CellsPerBlock[1])
		p.InitialState = func(x, y, z int) (rho, ux, uy, uz float64) {
			fx := (float64(x) + 0.5) * kx
			fy := (float64(y) + 0.5) * ky
			return 1, amp * math.Cos(fx) * math.Sin(fy), -amp * math.Sin(fx) * math.Cos(fy), 0
		}
	case "tree":
		vp := vascular.DefaultParams()
		vp.Depth = sc.Geometry.TreeDepth
		vp.Seed = sc.Geometry.Seed
		sdf, err := vascular.Generate(vp).SDF()
		if err != nil {
			return nil, fmt.Errorf("scenario: tree geometry: %w", err)
		}
		p.Geometry = sdf
		p.Dx = sc.Geometry.Dx
		p.Boundary = boundary.Config{WallVelocity: [3]float64{0, 0, sc.Geometry.InflowVelocity}, Density: 1}
		p.SetupFlags = setup.FlagsFromSDF(sdf)
		p.UseGraphPartitioner = true
	default:
		return nil, fmt.Errorf("scenario: unknown geometry.example %q", sc.Geometry.Example)
	}
	return p, nil
}

// CommOptions assembles the communicator options of the scenario,
// including its deterministic fault schedule (if any).
func (sc *Scenario) CommOptions() comm.Options {
	opts := comm.Options{FailTimeout: time.Duration(sc.Resilience.FailTimeout)}
	switch sc.Transport.Network {
	case "unix", "tcp":
		opts.Net = &comm.NetOptions{
			Network:        sc.Transport.Network,
			Addrs:          sc.Transport.Addrs,
			HeartbeatEvery: time.Duration(sc.Transport.Heartbeat),
		}
	}
	if !sc.Faults.empty() {
		plan := &comm.FaultPlan{Seed: sc.Faults.Seed}
		if plan.Seed == 0 {
			plan.Seed = 1
		}
		for _, ev := range sc.Faults.Crashes {
			plan.Crashes = append(plan.Crashes, comm.CrashSpec{Rank: ev.Rank, Step: ev.Step})
		}
		for _, ev := range sc.Faults.Hangs {
			plan.Hangs = append(plan.Hangs, comm.CrashSpec{Rank: ev.Rank, Step: ev.Step})
		}
		opts.Faults = plan
	}
	return opts
}

// Resilient reports whether the scenario runs the fault-tolerant driver,
// and with which configuration.
func (sc *Scenario) Resilient() (sim.ResilienceConfig, bool) {
	if sc.Resilience.CheckpointEvery == 0 {
		return sim.ResilienceConfig{}, false
	}
	rc := sim.ResilienceConfig{
		CheckpointEvery: sc.Resilience.CheckpointEvery,
		Dir:             sc.Resilience.Dir,
		MaxFailures:     -1,
	}
	switch sc.Resilience.Mode {
	case "shrink":
		rc.Mode = sim.RecoverShrink
	case "heal":
		rc.Mode = sim.RecoverHeal
	}
	if sc.Resilience.MaxFailures != nil {
		rc.MaxFailures = *sc.Resilience.MaxFailures
	}
	return rc, true
}
