package scenario

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"walberla/internal/amr"
	"walberla/internal/boundary"
	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/kernels"
	"walberla/internal/lattice"
	"walberla/internal/output"
	"walberla/internal/sim"
)

// Runtime adaptive mesh refinement support. A scenario with
// refinement.max_level > 0 executes on the AMR driver (internal/amr):
// level-wise timestepping on a 2:1-graded octree with a runtime
// refine/coarsen controller. The AMR driver constrains the schema —
// D3Q19 only, dense examples only (no tree/SDF geometry, no obstacle),
// no sparse kernels, no per-pair exchange, no heal-mode recovery and no
// workload rebalancing (re-grades rebalance by construction) — and
// validateRefinement rejects the unsupported combinations loudly.

// validateRefinement applies the AMR-specific schema restrictions and
// delegates numeric checks to amr.Config.Validate. Called from Validate
// once the generic sections are normalized.
func (sc *Scenario) validateRefinement() error {
	r := &sc.Refinement
	if r.MaxLevel == 0 {
		if *r != (RefinementSpec{}) {
			return fmt.Errorf("scenario: refinement needs max_level > 0 (got %+v)", *r)
		}
		return nil
	}
	if r.MaxLevel < 0 {
		return fmt.Errorf("scenario: refinement.max_level must be non-negative, got %d", r.MaxLevel)
	}
	switch r.Criterion {
	case "":
		r.Criterion = "gradient"
	case "gradient", "vorticity":
	default:
		return fmt.Errorf("scenario: unknown refinement.criterion %q (want gradient or vorticity)", r.Criterion)
	}
	if r.Interval == 0 {
		r.Interval = 4
	}
	if sc.Geometry.Example == "tree" {
		return fmt.Errorf("scenario: refinement does not support the tree example (SDF geometry needs a uniform forest)")
	}
	if sc.Geometry.Obstacle != nil {
		return fmt.Errorf("scenario: geometry.obstacle is not supported with refinement")
	}
	if sc.Lattice.Stencil != "d3q19" {
		return fmt.Errorf("scenario: refinement requires lattice.stencil d3q19, got %q", sc.Lattice.Stencil)
	}
	if kernels.Choice(sc.Collision.Kernel) == kernels.ChoiceSparse {
		return fmt.Errorf("scenario: refinement does not support the sparse kernel %q", sc.Collision.Kernel)
	}
	if sc.Parallel.Exchange == "per-pair" {
		return fmt.Errorf("scenario: refinement requires the aggregated exchange (parallel.exchange %q)", sc.Parallel.Exchange)
	}
	if sc.Resilience.Mode == "heal" {
		return fmt.Errorf("scenario: refinement does not support resilience.mode heal (use rewind or shrink)")
	}
	if sc.Run.RebalanceEvery > 0 {
		return fmt.Errorf("scenario: run.rebalance_every is not supported with refinement (re-grades rebalance by construction)")
	}
	if sc.Physics.Force != [3]float64{} {
		return fmt.Errorf("scenario: physics.force is not supported with refinement")
	}
	_, err := sc.AMRConfig()
	return err
}

// AMR reports whether the scenario runs on the AMR driver.
func (sc *Scenario) AMR() bool { return sc.Refinement.MaxLevel > 0 }

// AMRConfig maps a validated scenario onto the AMR driver's
// configuration. The mapping is pure, like Problem.
func (sc *Scenario) AMRConfig() (amr.Config, error) {
	tau := sc.Collision.Tau
	if tau == 0 {
		tau = 0.9
	}
	cfg := amr.Config{
		Stencil:         sc.stencil(),
		Grid:            sc.Resolution.Grid,
		Cells:           sc.Resolution.CellsPerBlock,
		Tau:             tau,
		Magic:           sc.Collision.Magic,
		Workers:         sc.Parallel.Workers,
		InitialRho:      sc.Physics.InitialRho,
		InitialVelocity: sc.Physics.InitialVelocity,
		Refinement: amr.Refinement{
			MaxLevel:     sc.Refinement.MaxLevel,
			Criterion:    amr.Criterion(sc.Refinement.Criterion),
			RefineAbove:  sc.Refinement.RefineAbove,
			CoarsenBelow: sc.Refinement.CoarsenBelow,
			Interval:     sc.Refinement.Interval,
		},
	}
	switch sim.LayoutChoice(sc.Collision.Layout) {
	case sim.LayoutAoS:
		cfg.Layout = field.AoS
	default:
		// Auto resolves to the vectorizable layout: the split SoA kernel
		// is the distributed hot path.
		cfg.Layout = field.SoA
	}
	if kc := kernels.Choice(sc.Collision.Kernel); kc != kernels.Choice(sim.KernelAuto) {
		cfg.Choice = kc
	}
	switch sc.Geometry.Example {
	case "taylor-green":
		cfg.Periodic = [3]bool{true, true, true}
		amp := sc.Geometry.Amplitude
		kx := 2 * math.Pi / float64(sc.Resolution.Grid[0]*sc.Resolution.CellsPerBlock[0])
		ky := 2 * math.Pi / float64(sc.Resolution.Grid[1]*sc.Resolution.CellsPerBlock[1])
		cfg.InitialState = func(x, y, z float64) (rho, ux, uy, uz float64) {
			return 1, amp * math.Cos(x*kx) * math.Sin(y*ky), -amp * math.Sin(x*kx) * math.Cos(y*ky), 0
		}
	case "cavity":
		cfg.Boundary = boundary.Config{WallVelocity: [3]float64{sc.Geometry.LidVelocity, 0, 0}}
		cfg.Flags = domainFaceFlags(map[lattice.Face]field.CellType{lattice.FaceT: field.VelocityBounce})
	case "channel":
		cfg.Boundary = boundary.Config{WallVelocity: [3]float64{sc.Geometry.InflowVelocity, 0, 0}, Density: 1}
		cfg.Flags = domainFaceFlags(map[lattice.Face]field.CellType{
			lattice.FaceW: field.VelocityBounce,
			lattice.FaceE: field.PressureBounce,
		})
	default:
		return amr.Config{}, fmt.Errorf("scenario: refinement does not support the %s example", sc.Geometry.Example)
	}
	if err := cfg.Validate(); err != nil {
		return amr.Config{}, fmt.Errorf("scenario: %w", err)
	}
	return cfg, nil
}

// domainFaceFlags builds the level-aware boundary flag function of a
// box domain: leaves touching a domain face get that face's ghost layer
// marked (special cases from the map, no-slip otherwise); interior
// leaves stay flag-free and take the dense kernel fast path. Pure in
// the leaf identity, as migration and recovery require.
func domainFaceFlags(special map[lattice.Face]field.CellType) amr.FlagsFunc {
	return func(leaf amr.Leaf, grid, cells [3]int) *field.FlagField {
		level := leaf.Level()
		var faces []lattice.Face
		for f := lattice.FaceW; f < lattice.NumFaces; f++ {
			nx, ny, nz := f.Normal()
			n := [3]int{nx, ny, nz}
			for d := 0; d < 3; d++ {
				if (n[d] < 0 && leaf.Idx[d] == 0) || (n[d] > 0 && leaf.Idx[d] == grid[d]<<uint(level)-1) {
					faces = append(faces, f)
				}
			}
		}
		if len(faces) == 0 {
			return nil
		}
		fl := field.NewFlagField(cells[0], cells[1], cells[2], 1)
		fl.Fill(field.Fluid)
		for _, f := range faces {
			t, ok := special[f]
			if !ok {
				t = field.NoSlip
			}
			sim.MarkGhostFace(fl, f, t)
		}
		return fl
	}
}

// AMRResilient reports whether the AMR run uses the fault-tolerant
// driver, and with which configuration.
func (sc *Scenario) AMRResilient() (amr.ResilienceConfig, bool) {
	if sc.Resilience.CheckpointEvery == 0 {
		return amr.ResilienceConfig{}, false
	}
	rc := amr.ResilienceConfig{
		CheckpointEvery: sc.Resilience.CheckpointEvery,
		Dir:             sc.Resilience.Dir,
		MaxFailures:     -1,
	}
	if sc.Resilience.Mode == "shrink" {
		rc.Mode = amr.RecoverShrink
	}
	if sc.Resilience.MaxFailures != nil {
		rc.MaxFailures = *sc.Resilience.MaxFailures
	}
	return rc, true
}

// executeAMR is the AMR arm of Execute: same contract, refined world.
func executeAMR(ctx context.Context, sc *Scenario, opts ExecuteOptions) (Result, error) {
	var mu sync.Mutex
	var res Result
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	comm.RunWithOptions(sc.Parallel.Ranks, sc.CommOptions(), func(c *comm.Comm) {
		cfg, err := sc.AMRConfig()
		if err != nil {
			fail(err)
			return
		}
		if opts.TelemetryFor != nil {
			cfg.Tracer, cfg.Metrics = opts.TelemetryFor(c.WorldRank())
		}
		s, err := amr.New(c, cfg)
		if err != nil {
			fail(err)
			return
		}
		rc, resilient := sc.AMRResilient()
		var runErr error
		if resilient {
			_, runErr = s.RunResilientCtx(ctx, sc.Run.Steps, rc)
		} else {
			runErr = s.RunCtx(ctx, sc.Run.Steps)
		}
		interrupted := false
		switch {
		case errors.Is(runErr, amr.ErrInterrupted), errors.Is(runErr, context.Canceled),
			errors.Is(runErr, context.DeadlineExceeded):
			interrupted = true
		case errors.Is(runErr, amr.ErrRetired):
			// This rank failed permanently under shrinking recovery; the
			// survivors carry its leaves (and the result) on.
			return
		case runErr != nil:
			fail(runErr)
			return
		}
		hash, err := s.FieldHash()
		if err != nil {
			fail(err)
			return
		}
		if opts.VTKDir != "" {
			if err := writeAMRVTK(opts.VTKDir, s); err != nil {
				fail(err)
				return
			}
		}
		if opts.EachAMR != nil {
			opts.EachAMR(s.Comm, s)
		}
		if s.Comm.Rank() == 0 {
			mu.Lock()
			res = Result{Hash: hash, Steps: s.Steps(), Levels: s.LevelCounts(), Interrupted: interrupted}
			mu.Unlock()
		}
	})
	if firstErr != nil {
		return Result{}, firstErr
	}
	return res, nil
}

// writeAMRVTK dumps every local leaf's field as block_L<level>_X_Y_Z.vtk
// into dir; the spacing halves per level so viewers reassemble the
// mixed-resolution domain in physical coordinates.
func writeAMRVTK(dir string, s *amr.Sim) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, b := range s.OwnedBlocks() {
		h := 1.0 / float64(int(1)<<uint(b.Level()))
		origin := [3]float64{
			(float64(b.Idx[0]*b.Src.Nx) + 0.5) * h,
			(float64(b.Idx[1]*b.Src.Ny) + 0.5) * h,
			(float64(b.Idx[2]*b.Src.Nz) + 0.5) * h,
		}
		name := fmt.Sprintf("block_L%d_%d_%d_%d", b.Level(), b.Idx[0], b.Idx[1], b.Idx[2])
		f, err := os.Create(filepath.Join(dir, name+".vtk"))
		if err != nil {
			return err
		}
		err = output.WriteVTK(f, name, b.Src, b.Flags, origin, h)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}
