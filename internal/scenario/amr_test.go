package scenario

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"walberla/internal/field"
)

// amrBase is a minimal valid refined scenario: a 2x2x2 lid-driven
// cavity that refines the near-lid shear layer one level.
func amrBase() *Scenario {
	return &Scenario{
		Version:    Version,
		Geometry:   Geometry{Example: "cavity", LidVelocity: 0.08},
		Resolution: Resolution{Grid: [3]int{2, 2, 2}, CellsPerBlock: [3]int{8, 8, 8}},
		Refinement: RefinementSpec{MaxLevel: 1, RefineAbove: 0.002, CoarsenBelow: 0.0002},
		Run:        RunSpec{Steps: 2},
	}
}

// TestRefinementValidateErrors covers the AMR-specific schema
// restrictions: every unsupported combination must fail loudly, naming
// the offending setting.
func TestRefinementValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"fields without max_level", func(sc *Scenario) { sc.Refinement.MaxLevel = 0 }, "max_level"},
		{"negative max_level", func(sc *Scenario) { sc.Refinement.MaxLevel = -1 }, "max_level"},
		{"bad criterion", func(sc *Scenario) { sc.Refinement.Criterion = "curvature" }, "criterion"},
		{"missing refine_above", func(sc *Scenario) { sc.Refinement.RefineAbove = 0 }, "refine_above"},
		{"inverted hysteresis", func(sc *Scenario) { sc.Refinement.CoarsenBelow = 0.01 }, "coarsen_below"},
		{"tree example", func(sc *Scenario) {
			sc.Geometry.Example = "tree"
			sc.Geometry.Dx = 0.5
		}, "tree"},
		{"obstacle", func(sc *Scenario) {
			sc.Geometry.Example = "channel"
			sc.Geometry.Obstacle = &Obstacle{Min: [3]int{1, 1, 1}, Max: [3]int{2, 2, 2}}
		}, "obstacle"},
		{"d2q9 stencil", func(sc *Scenario) { sc.Lattice.Stencil = "d2q9" }, "d3q19"},
		{"sparse kernel", func(sc *Scenario) { sc.Collision.Kernel = "sparse" }, "sparse"},
		{"per-pair exchange", func(sc *Scenario) { sc.Parallel.Exchange = "per-pair" }, "aggregated"},
		{"heal recovery", func(sc *Scenario) {
			sc.Resilience = Resilience{CheckpointEvery: 2, Mode: "heal"}
		}, "heal"},
		{"workload rebalancing", func(sc *Scenario) { sc.Run.RebalanceEvery = 2 }, "rebalance"},
		{"body force", func(sc *Scenario) { sc.Physics.Force = [3]float64{1e-6, 0, 0} }, "force"},
		{"odd cells per block", func(sc *Scenario) { sc.Resolution.CellsPerBlock = [3]int{7, 8, 8} }, "even"},
	}
	for _, tc := range cases {
		sc := amrBase()
		tc.mutate(sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the scenario", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestRefinementDefaults: Validate fills the documented refinement
// defaults in place, and the valid examples all map onto an AMR config.
func TestRefinementDefaults(t *testing.T) {
	sc := amrBase()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sc.AMR() {
		t.Fatal("refined scenario does not report AMR")
	}
	if sc.Refinement.Criterion != "gradient" || sc.Refinement.Interval != 4 {
		t.Errorf("defaults not filled: %+v", sc.Refinement)
	}
	cfg, err := sc.AMRConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Layout != field.SoA {
		t.Errorf("auto layout resolved to %v, want SoA", cfg.Layout)
	}
	if cfg.Flags == nil {
		t.Error("cavity mapping has no boundary flags")
	}
	if cfg.Tau != 0.9 {
		t.Errorf("tau default = %v, want 0.9", cfg.Tau)
	}

	for _, ex := range []string{"taylor-green", "channel"} {
		sc := amrBase()
		sc.Geometry.Example = ex
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", ex, err)
			continue
		}
		cfg, err := sc.AMRConfig()
		if err != nil {
			t.Errorf("%s: %v", ex, err)
			continue
		}
		if ex == "taylor-green" && (cfg.Periodic != [3]bool{true, true, true} || cfg.InitialState == nil) {
			t.Errorf("taylor-green mapping not periodic with an initial state")
		}
		if ex == "channel" && cfg.Flags == nil {
			t.Errorf("channel mapping has no boundary flags")
		}
	}
}

// TestAMRGoldenParse: the checked-in refined scenario parses and lands
// on the AMR driver with defaults filled.
func TestAMRGoldenParse(t *testing.T) {
	sc, err := ParseFile(filepath.Join("testdata", "amr-cavity.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !sc.AMR() || sc.Refinement.MaxLevel != 1 {
		t.Fatalf("refinement = %+v", sc.Refinement)
	}
	if sc.Refinement.Criterion != "gradient" || sc.Refinement.Interval != 4 {
		t.Errorf("refinement defaults = %+v", sc.Refinement)
	}
	if _, resilient := sc.AMRResilient(); resilient {
		t.Error("plain scenario reports a resilient AMR run")
	}
}

// TestExecuteAMRDeterministic: a refined scenario executes to the same
// field hash regardless of worker count, actually refines at runtime,
// and dumps per-leaf VTK blocks on request — the AMR arm of the
// CLI-vs-daemon determinism contract.
func TestExecuteAMRDeterministic(t *testing.T) {
	sc, err := ParseFile(filepath.Join("testdata", "amr-cavity.json"))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Execute(context.Background(), sc, ExecuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Interrupted || r1.Steps != sc.Run.Steps || r1.Hash == 0 {
		t.Fatalf("unexpected result %+v", r1)
	}
	if len(r1.Levels) < 2 || r1.Levels[1] == 0 {
		t.Fatalf("run never refined: leaves per level %v", r1.Levels)
	}

	vtk := t.TempDir()
	sc2 := *sc
	sc2.Parallel.Workers = 4
	r2, err := Execute(context.Background(), &sc2, ExecuteOptions{VTKDir: vtk})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Hash != r2.Hash {
		t.Errorf("hash differs across worker counts: %016x vs %016x", r1.Hash, r2.Hash)
	}
	fine, err := filepath.Glob(filepath.Join(vtk, "block_L1_*.vtk"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fine) == 0 {
		entries, _ := os.ReadDir(vtk)
		t.Errorf("no fine-level VTK blocks written (%d files total)", len(entries))
	}
}
