package kernels

import (
	"walberla/internal/collide"
	"walberla/internal/field"
	"walberla/internal/lattice"
)

// The three strategies of section 4.3 for blocks only partially covered by
// fluid cells:
//
//   - SparseConditional: a conditional statement in the innermost loop
//     executes the stream-collide update only for fluid cells. Cheap to
//     set up, but the branch defeats vectorization.
//   - SparseCellList: the coordinates of a block's fluid cells are stored
//     in an array and the kernel loops over that array. No branch, but
//     the gather access pattern still defeats vectorization.
//   - SparseInterval: for every line of lattice cells the index range of
//     fluid cells is stored, similar to the compressed storage scheme of
//     a sparse matrix, and the split (SIMD) kernel runs on each interval.
//     This strategy vectorizes and fits tubular geometries with few but
//     consecutive fluid cells per line.

// trtCellAoS applies the fused pull-stream TRT update to the single cell
// with linear index ci of an AoS field.
func trtCellAoS(in, out []float64, ci int, offs *[lattice.Q19]int, le, lo float64) {
	const q = lattice.Q19
	fC := in[(ci-offs[lattice.C])*q+int(lattice.C)]
	fN := in[(ci-offs[lattice.N])*q+int(lattice.N)]
	fS := in[(ci-offs[lattice.S])*q+int(lattice.S)]
	fW := in[(ci-offs[lattice.W])*q+int(lattice.W)]
	fE := in[(ci-offs[lattice.E])*q+int(lattice.E)]
	fT := in[(ci-offs[lattice.T])*q+int(lattice.T)]
	fB := in[(ci-offs[lattice.B])*q+int(lattice.B)]
	fNE := in[(ci-offs[lattice.NE])*q+int(lattice.NE)]
	fNW := in[(ci-offs[lattice.NW])*q+int(lattice.NW)]
	fSE := in[(ci-offs[lattice.SE])*q+int(lattice.SE)]
	fSW := in[(ci-offs[lattice.SW])*q+int(lattice.SW)]
	fTN := in[(ci-offs[lattice.TN])*q+int(lattice.TN)]
	fTS := in[(ci-offs[lattice.TS])*q+int(lattice.TS)]
	fTE := in[(ci-offs[lattice.TE])*q+int(lattice.TE)]
	fTW := in[(ci-offs[lattice.TW])*q+int(lattice.TW)]
	fBN := in[(ci-offs[lattice.BN])*q+int(lattice.BN)]
	fBS := in[(ci-offs[lattice.BS])*q+int(lattice.BS)]
	fBE := in[(ci-offs[lattice.BE])*q+int(lattice.BE)]
	fBW := in[(ci-offs[lattice.BW])*q+int(lattice.BW)]

	rho := fC + fN + fS + fW + fE + fT + fB +
		fNE + fNW + fSE + fSW + fTN + fTS + fTE + fTW + fBN + fBS + fBE + fBW
	invRho := 1.0 / rho
	ux := (fE + fNE + fSE + fTE + fBE - fW - fNW - fSW - fTW - fBW) * invRho
	uy := (fN + fNE + fNW + fTN + fBN - fS - fSE - fSW - fTS - fBS) * invRho
	uz := (fT + fTN + fTS + fTE + fTW - fB - fBN - fBS - fBE - fBW) * invRho
	usq := 1.5 * (ux*ux + uy*uy + uz*uz)

	w0r := rho * (1.0 / 3.0)
	w1r := rho * (1.0 / 18.0)
	w2r := rho * (1.0 / 36.0)
	base := ci * q

	out[base+int(lattice.C)] = fC + le*(fC-w0r*(1.0-usq))
	trtPair(out, base, int(lattice.E), int(lattice.W), fE, fW, w1r, ux, usq, le, lo)
	trtPair(out, base, int(lattice.N), int(lattice.S), fN, fS, w1r, uy, usq, le, lo)
	trtPair(out, base, int(lattice.T), int(lattice.B), fT, fB, w1r, uz, usq, le, lo)
	trtPair(out, base, int(lattice.NE), int(lattice.SW), fNE, fSW, w2r, ux+uy, usq, le, lo)
	trtPair(out, base, int(lattice.NW), int(lattice.SE), fNW, fSE, w2r, uy-ux, usq, le, lo)
	trtPair(out, base, int(lattice.TN), int(lattice.BS), fTN, fBS, w2r, uy+uz, usq, le, lo)
	trtPair(out, base, int(lattice.TS), int(lattice.BN), fTS, fBN, w2r, uz-uy, usq, le, lo)
	trtPair(out, base, int(lattice.TE), int(lattice.BW), fTE, fBW, w2r, ux+uz, usq, le, lo)
	trtPair(out, base, int(lattice.TW), int(lattice.BE), fTW, fBE, w2r, uz-ux, usq, le, lo)
}

// SparseConditional is strategy one: the full block is traversed and a
// conditional in the innermost loop skips non-fluid cells.
type SparseConditional struct {
	p trtParams
}

// NewSparseConditional constructs the conditional sparse TRT kernel.
func NewSparseConditional(op collide.TRT) *SparseConditional {
	return &SparseConditional{p: trtParams{lambdaE: op.LambdaE, lambdaO: op.LambdaO}}
}

// Name implements Kernel.
func (k *SparseConditional) Name() string { return "TRT Conditional" }

// Layout implements Kernel.
func (k *SparseConditional) Layout() field.Layout { return field.AoS }

// Sweep implements Kernel.
func (k *SparseConditional) Sweep(src, dst *field.PDFField, flags *field.FlagField) {
	checkShapes(src, dst, field.AoS)
	if flags == nil {
		panic("kernels: sparse kernel requires a flag field")
	}
	offs := pullOffsets(src)
	in, out := src.Data(), dst.Data()
	fdata := flags.Data()
	fsx, fsy, fsz := flags.Strides()
	_ = fsx
	for z := 0; z < src.Nz; z++ {
		for y := 0; y < src.Ny; y++ {
			ci := src.CellIndex(0, y, z)
			fi := (z+flags.Ghost)*fsz + (y+flags.Ghost)*fsy + flags.Ghost
			for x := 0; x < src.Nx; x++ {
				// The branch the paper identifies as the vectorization
				// blocker — evaluated for every traversed cell.
				if fdata[fi] == field.Fluid {
					trtCellAoS(in, out, ci, &offs, k.p.lambdaE, k.p.lambdaO)
				}
				ci++
				fi++
			}
		}
	}
}

// SparseCellList is strategy two: the fluid cell indices are gathered once
// and the kernel loops over the index array, removing the branch from the
// inner loop at the cost of indexed access.
type SparseCellList struct {
	p     trtParams
	cells []int32 // linear cell indices of fluid cells
	src   *field.FlagField
}

// NewSparseCellList constructs the cell-list sparse TRT kernel for the
// given block; the flag field is scanned once to build the list.
func NewSparseCellList(op collide.TRT, flags *field.FlagField) *SparseCellList {
	k := &SparseCellList{
		p:   trtParams{lambdaE: op.LambdaE, lambdaO: op.LambdaO},
		src: flags,
	}
	sx, sy, sz := flags.Strides()
	_ = sx
	for z := 0; z < flags.Nz; z++ {
		for y := 0; y < flags.Ny; y++ {
			for x := 0; x < flags.Nx; x++ {
				if flags.Get(x, y, z) == field.Fluid {
					ci := (z+flags.Ghost)*sz + (y+flags.Ghost)*sy + (x + flags.Ghost)
					k.cells = append(k.cells, int32(ci))
				}
			}
		}
	}
	return k
}

// Name implements Kernel.
func (k *SparseCellList) Name() string { return "TRT CellList" }

// Layout implements Kernel.
func (k *SparseCellList) Layout() field.Layout { return field.AoS }

// FluidCells returns the number of cells in the list.
func (k *SparseCellList) FluidCells() int { return len(k.cells) }

// Sweep implements Kernel. The flag field must be the one the kernel was
// constructed from (the list is precomputed).
func (k *SparseCellList) Sweep(src, dst *field.PDFField, flags *field.FlagField) {
	checkShapes(src, dst, field.AoS)
	if flags != k.src {
		panic("kernels: SparseCellList used with a different flag field")
	}
	offs := pullOffsets(src)
	in, out := src.Data(), dst.Data()
	for _, ci := range k.cells {
		trtCellAoS(in, out, int(ci), &offs, k.p.lambdaE, k.p.lambdaO)
	}
}

// interval is a run of consecutive fluid cells within one lattice line.
type interval struct {
	base int // linear cell index of the first fluid cell
	n    int // run length
}

// SparseInterval is strategy three: per lattice line the ranges of fluid
// cells are stored like the compressed rows of a sparse matrix, and the
// split (SIMD) TRT kernel processes each range — branch-free, contiguous,
// vectorizable. It shares the fused by-direction row update with SplitTRT,
// so its results are bit-identical to the dense SoA kernel on the cells it
// covers.
type SparseInterval struct {
	p         trtParams
	intervals []interval
	src       *field.FlagField
	fluid     int
}

// NewSparseInterval constructs the interval sparse TRT kernel for the given
// block. Unlike the paper's single [first,last] pair per line, maximal runs
// are stored, so lines with interior gaps remain exact. Every stored run is
// bounds-checked against the line it belongs to — degenerate geometries
// (no fluid at all, isolated single cells, fully fluid lines) produce
// empty, length-one, and full-width intervals respectively, all of which
// must stay inside [lineBase, lineBase+Nx).
func NewSparseInterval(op collide.TRT, flags *field.FlagField) *SparseInterval {
	k := &SparseInterval{src: flags}
	k.p = trtParams{lambdaE: op.LambdaE, lambdaO: op.LambdaO}
	sx, sy, sz := flags.Strides()
	_ = sx
	for z := 0; z < flags.Nz; z++ {
		for y := 0; y < flags.Ny; y++ {
			lineBase := (z+flags.Ghost)*sz + (y+flags.Ghost)*sy + flags.Ghost
			x := 0
			for x < flags.Nx {
				for x < flags.Nx && flags.Get(x, y, z) != field.Fluid {
					x++
				}
				x0 := x
				for x < flags.Nx && flags.Get(x, y, z) == field.Fluid {
					x++
				}
				if x > x0 {
					iv := interval{base: lineBase + x0, n: x - x0}
					if iv.n < 1 || iv.n > flags.Nx || iv.base < lineBase || iv.base+iv.n > lineBase+flags.Nx {
						panic("kernels: sparse interval escapes its lattice line")
					}
					k.intervals = append(k.intervals, iv)
					k.fluid += iv.n
				}
			}
		}
	}
	return k
}

// Name implements Kernel.
func (k *SparseInterval) Name() string { return "TRT Interval" }

// Layout implements Kernel.
func (k *SparseInterval) Layout() field.Layout { return field.SoA }

// FluidCells returns the total number of cells covered by the intervals.
func (k *SparseInterval) FluidCells() int { return k.fluid }

// Intervals returns the number of stored runs, a measure of geometry
// fragmentation.
func (k *SparseInterval) Intervals() int { return len(k.intervals) }

// Sweep implements Kernel. The flag field must be the one the kernel was
// constructed from.
func (k *SparseInterval) Sweep(src, dst *field.PDFField, flags *field.FlagField) {
	checkShapes(src, dst, field.SoA)
	if flags != k.src {
		panic("kernels: SparseInterval used with a different flag field")
	}
	rows := newDirRows(src, dst)
	le, lo := k.p.lambdaE, k.p.lambdaO
	for _, iv := range k.intervals {
		trtRowSoA(&rows, iv.base, iv.n, le, lo)
	}
}
