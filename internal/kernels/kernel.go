// Package kernels implements the fused stream-collide compute kernels of
// the paper in its three optimization stages:
//
//  1. Generic: a textbook stream-pull kernel parameterized over an
//     arbitrary lattice model and collision operator (the paper's
//     "SRT/TRT Generic").
//  2. D3Q19-specialized: streaming and collision fused with common
//     subexpressions eliminated, hard-coded against the D3Q19 ordering
//     (the paper's "SRT/TRT D3Q19").
//  3. Split: the SIMD-style kernel — structure-of-arrays layout with the
//     innermost loop split by direction so that each inner loop touches
//     only a small number of concurrent load/store streams (the paper's
//     "SRT/TRT SIMD", there implemented with SSE/AVX/QPX intrinsics; here
//     the identical code transformation is expressed as contiguous-slice
//     loops, the shape Go's compiler and hardware prefetchers reward).
//
// In addition the package provides the three sparse-block strategies of
// section 4.3 for partially fluid-filled blocks: a conditional in the
// inner loop, a fluid-cell list, and per-row fluid intervals (the
// vectorizable compressed scheme).
//
// All kernels compute one stream-pull time step
//
//	dst(x, a) = Collide(src(x - e_a, a))
//
// over the fluid cells of a block, reading the ghost layer of src and
// leaving non-fluid cells of dst untouched.
package kernels

import (
	"walberla/internal/field"
)

// Kernel performs one fused stream-collide update of a block.
type Kernel interface {
	// Name identifies the kernel in benchmark reports, e.g. "TRT SIMD".
	Name() string
	// Layout returns the PDF field layout the kernel requires.
	Layout() field.Layout
	// Sweep updates all fluid cells of dst from src. A nil flags field
	// means the block is dense: every interior cell is fluid. src and dst
	// must share shape, stencil and the kernel's layout.
	Sweep(src, dst *field.PDFField, flags *field.FlagField)
}

// checkShapes panics when src/dst are unusable for a kernel sweep.
func checkShapes(src, dst *field.PDFField, layout field.Layout) {
	if src.Nx != dst.Nx || src.Ny != dst.Ny || src.Nz != dst.Nz ||
		src.Ghost != dst.Ghost || src.Stencil != dst.Stencil {
		panic("kernels: src and dst shapes differ")
	}
	if src.Layout != layout || dst.Layout != layout {
		panic("kernels: field layout does not match kernel layout")
	}
	if src.Ghost < 1 {
		panic("kernels: stream-pull requires a ghost layer")
	}
}

// isFluid reports whether cell (x,y,z) participates in the update.
func isFluid(flags *field.FlagField, x, y, z int) bool {
	return flags == nil || flags.Get(x, y, z) == field.Fluid
}

// srtParams bundles the per-sweep constants of the SRT collision.
type srtParams struct {
	omega float64
}

// trtParams bundles the per-sweep constants of the TRT collision.
type trtParams struct {
	lambdaE, lambdaO float64
}

// FluidCells counts the cells a kernel actually updates, the basis of the
// MFLUPS metric. A nil flags field counts every interior cell.
func FluidCells(nx, ny, nz int, flags *field.FlagField) int {
	if flags == nil {
		return nx * ny * nz
	}
	return flags.Count(field.Fluid)
}
