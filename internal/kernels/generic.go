package kernels

import (
	"fmt"

	"walberla/internal/collide"
	"walberla/internal/field"
	"walberla/internal/lattice"
)

// Generic is the naive, textbook-style stream-pull kernel: it works for an
// arbitrary lattice model (passed as data, mirroring the paper's template
// parameter) and an arbitrary collision operator behind an interface. It
// is the reference implementation every optimized kernel is validated
// against, and the slowest stage in the paper's Figure 3.
type Generic struct {
	Stencil *lattice.Stencil
	Op      collide.Operator
}

// NewGeneric constructs the generic kernel for the given lattice model and
// collision operator.
func NewGeneric(s *lattice.Stencil, op collide.Operator) *Generic {
	return &Generic{Stencil: s, Op: op}
}

// Name implements Kernel.
func (k *Generic) Name() string { return fmt.Sprintf("%s Generic", k.Op.Name()) }

// Layout implements Kernel. The generic kernel iterates cell by cell and
// therefore uses the array-of-structures layout.
func (k *Generic) Layout() field.Layout { return field.AoS }

// Sweep implements Kernel.
func (k *Generic) Sweep(src, dst *field.PDFField, flags *field.FlagField) {
	checkShapes(src, dst, field.AoS)
	s := k.Stencil
	if src.Stencil != s {
		panic("kernels: field stencil does not match kernel stencil")
	}
	f := make([]float64, s.Q)
	for z := 0; z < src.Nz; z++ {
		for y := 0; y < src.Ny; y++ {
			for x := 0; x < src.Nx; x++ {
				if !isFluid(flags, x, y, z) {
					continue
				}
				// Streaming: pull each PDF from the upstream neighbor.
				for a := 0; a < s.Q; a++ {
					f[a] = src.Get(x-s.Cx[a], y-s.Cy[a], z-s.Cz[a], lattice.Direction(a))
				}
				// Collision.
				k.Op.Collide(s, f)
				for a := 0; a < s.Q; a++ {
					dst.Set(x, y, z, lattice.Direction(a), f[a])
				}
			}
		}
	}
}
