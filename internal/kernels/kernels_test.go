package kernels

import (
	"math"
	"math/rand"
	"testing"

	"walberla/internal/collide"
	"walberla/internal/field"
	"walberla/internal/lattice"
)

// randomField fills a field (including ghost layers) with valid random
// PDF-like values so that streaming from ghosts is well-defined.
func randomField(r *rand.Rand, layout field.Layout, nx, ny, nz int) *field.PDFField {
	s := lattice.D3Q19()
	f := field.NewPDFField(s, nx, ny, nz, 1, layout)
	feq := make([]float64, s.Q)
	for z := -1; z < nz+1; z++ {
		for y := -1; y < ny+1; y++ {
			for x := -1; x < nx+1; x++ {
				rho := 0.9 + 0.2*r.Float64()
				ux := 0.08 * (r.Float64() - 0.5)
				uy := 0.08 * (r.Float64() - 0.5)
				uz := 0.08 * (r.Float64() - 0.5)
				s.Equilibrium(feq, rho, ux, uy, uz)
				for a := 0; a < s.Q; a++ {
					// Perturb away from equilibrium to exercise the full
					// collision, keeping PDFs positive.
					v := feq[a] * (1.0 + 0.1*(r.Float64()-0.5))
					f.Set(x, y, z, lattice.Direction(a), v)
				}
			}
		}
	}
	return f
}

// sparseFlags builds a flag field with a random fluid pattern at roughly
// the given fill fraction; non-fluid interior cells are NoSlip so fluid
// cells never pull from Outside.
func sparseFlags(r *rand.Rand, nx, ny, nz int, fill float64) *field.FlagField {
	fl := field.NewFlagField(nx, ny, nz, 1)
	fl.Fill(field.NoSlip)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if r.Float64() < fill {
					fl.Set(x, y, z, field.Fluid)
				}
			}
		}
	}
	return fl
}

func maxDiff(t *testing.T, a, b *field.PDFField, flags *field.FlagField) float64 {
	t.Helper()
	var m float64
	for z := 0; z < a.Nz; z++ {
		for y := 0; y < a.Ny; y++ {
			for x := 0; x < a.Nx; x++ {
				if flags != nil && flags.Get(x, y, z) != field.Fluid {
					continue
				}
				for q := 0; q < a.Stencil.Q; q++ {
					d := math.Abs(a.Get(x, y, z, lattice.Direction(q)) - b.Get(x, y, z, lattice.Direction(q)))
					if d > m {
						m = d
					}
				}
			}
		}
	}
	return m
}

const nx, ny, nz = 12, 10, 8

// Every optimized kernel must agree with the generic reference kernel to
// floating point accuracy on dense blocks.
func TestDenseKernelsMatchGeneric(t *testing.T) {
	srt := collide.NewSRT(0.83)
	trt := collide.NewTRT(0.83, collide.MagicParameter)

	cases := []struct {
		name string
		ref  Kernel
		opt  Kernel
	}{
		{"SRT D3Q19", NewGeneric(lattice.D3Q19(), srt), NewD3Q19SRT(srt)},
		{"TRT D3Q19", NewGeneric(lattice.D3Q19(), trt), NewD3Q19TRT(trt)},
		{"SRT SIMD", NewGeneric(lattice.D3Q19(), srt), NewSplitSRT(srt)},
		{"TRT SIMD", NewGeneric(lattice.D3Q19(), trt), NewSplitTRT(trt)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			srcA := randomField(r, field.AoS, nx, ny, nz)
			dstA := srcA.CopyShape()
			tc.ref.Sweep(srcA, dstA, nil)

			src := srcA.ConvertLayout(tc.opt.Layout())
			dst := src.CopyShape()
			tc.opt.Sweep(src, dst, nil)

			got := dst.ConvertLayout(field.AoS)
			if d := maxDiff(t, got, dstA, nil); d > 1e-13 {
				t.Errorf("max deviation from generic kernel: %g", d)
			}
		})
	}
}

// The sparse strategies must agree with the generic reference restricted
// to fluid cells, for several fill fractions.
func TestSparseKernelsMatchGeneric(t *testing.T) {
	trt := collide.NewTRT(0.77, collide.MagicParameter)
	for _, fill := range []float64{0.05, 0.3, 0.85, 1.0} {
		r := rand.New(rand.NewSource(int64(fill * 100)))
		flags := sparseFlags(r, nx, ny, nz, fill)
		srcA := randomField(r, field.AoS, nx, ny, nz)
		ref := srcA.CopyShape()
		NewGeneric(lattice.D3Q19(), trt).Sweep(srcA, ref, flags)

		kernelsUnderTest := []Kernel{
			NewSparseConditional(trt),
			NewSparseCellList(trt, flags),
			NewSparseInterval(trt, flags),
			NewD3Q19TRT(trt), // dense kernel with flags
			NewSplitTRT(trt), // split kernel with flags
		}
		for _, k := range kernelsUnderTest {
			src := srcA.ConvertLayout(k.Layout())
			dst := src.CopyShape()
			k.Sweep(src, dst, flags)
			got := dst.ConvertLayout(field.AoS)
			if d := maxDiff(t, got, ref, flags); d > 1e-13 {
				t.Errorf("fill %.2f, %s: max deviation %g", fill, k.Name(), d)
			}
		}
	}
}

// Sparse kernels must not write to non-fluid cells.
func TestSparseKernelsLeaveNonFluidUntouched(t *testing.T) {
	trt := collide.NewTRT(0.9, collide.MagicParameter)
	r := rand.New(rand.NewSource(7))
	flags := sparseFlags(r, nx, ny, nz, 0.4)
	for _, mk := range []func() Kernel{
		func() Kernel { return NewSparseConditional(trt) },
		func() Kernel { return NewSparseCellList(trt, flags) },
		func() Kernel { return NewSparseInterval(trt, flags) },
	} {
		k := mk()
		src := randomField(r, k.Layout(), nx, ny, nz)
		dst := src.CopyShape()
		sentinel := -123.0
		for i := range dst.Data() {
			dst.Data()[i] = sentinel
		}
		k.Sweep(src, dst, flags)
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					touched := dst.Get(x, y, z, lattice.C) != sentinel
					if touched != (flags.Get(x, y, z) == field.Fluid) {
						t.Fatalf("%s: cell (%d,%d,%d) fluid=%v touched=%v",
							k.Name(), x, y, z, flags.Get(x, y, z) == field.Fluid, touched)
					}
				}
			}
		}
	}
}

func TestSparseIntervalStats(t *testing.T) {
	trt := collide.NewTRT(0.9, collide.MagicParameter)
	fl := field.NewFlagField(10, 1, 1, 1)
	fl.Fill(field.NoSlip)
	// Two runs: [1,3] and [6,8].
	for _, x := range []int{1, 2, 3, 6, 7, 8} {
		fl.Set(x, 0, 0, field.Fluid)
	}
	k := NewSparseInterval(trt, fl)
	if k.Intervals() != 2 {
		t.Errorf("Intervals = %d, want 2", k.Intervals())
	}
	if k.FluidCells() != 6 {
		t.Errorf("FluidCells = %d, want 6", k.FluidCells())
	}
	kl := NewSparseCellList(trt, fl)
	if kl.FluidCells() != 6 {
		t.Errorf("cell list FluidCells = %d, want 6", kl.FluidCells())
	}
}

// A uniform equilibrium state is a fixed point of the full stream-collide
// update (with periodic-like ghost data).
func TestKernelFixedPoint(t *testing.T) {
	srt := collide.NewSRT(0.7)
	trt := collide.NewTRT(0.7, collide.MagicParameter)
	for _, k := range []Kernel{
		NewGeneric(lattice.D3Q19(), srt),
		NewD3Q19SRT(srt), NewD3Q19TRT(trt), NewSplitSRT(srt), NewSplitTRT(trt),
	} {
		src := field.NewPDFField(lattice.D3Q19(), 6, 6, 6, 1, k.Layout())
		src.FillEquilibrium(1.0, 0.04, 0.01, -0.02)
		dst := src.CopyShape()
		k.Sweep(src, dst, nil)
		for z := 0; z < 6; z++ {
			for y := 0; y < 6; y++ {
				for x := 0; x < 6; x++ {
					for a := 0; a < 19; a++ {
						want := src.Get(x, y, z, lattice.Direction(a))
						got := dst.Get(x, y, z, lattice.Direction(a))
						if math.Abs(got-want) > 1e-14 {
							t.Fatalf("%s: uniform equilibrium not a fixed point at (%d,%d,%d,%d): %v vs %v",
								k.Name(), x, y, z, a, got, want)
						}
					}
				}
			}
		}
	}
}

// Mass must be conserved by the collision part of the update: the sum over
// dst of cell densities equals the sum over the pulled values, which for a
// fully periodic ghost setup equals total interior mass.
func TestKernelMassConservation(t *testing.T) {
	trt := collide.NewTRT(1.1, collide.MagicParameter)
	for _, k := range []Kernel{NewD3Q19TRT(trt), NewSplitTRT(trt)} {
		// Periodic ghost fill: copy opposite interior layers into ghosts so
		// that every pulled PDF originates from an interior cell.
		src := field.NewPDFField(lattice.D3Q19(), 8, 8, 8, 1, k.Layout())
		r := rand.New(rand.NewSource(11))
		feq := make([]float64, 19)
		for z := 0; z < 8; z++ {
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					src.Stencil.Equilibrium(feq, 0.9+0.2*r.Float64(),
						0.05*(r.Float64()-0.5), 0.05*(r.Float64()-0.5), 0.05*(r.Float64()-0.5))
					for a := 0; a < 19; a++ {
						src.Set(x, y, z, lattice.Direction(a), feq[a])
					}
				}
			}
		}
		fillPeriodicGhosts(src)
		dst := src.CopyShape()
		k.Sweep(src, dst, nil)
		before := src.TotalMass()
		after := dst.TotalMass()
		if math.Abs(after-before) > 1e-9 {
			t.Errorf("%s: mass %v -> %v", k.Name(), before, after)
		}
	}
}

// fillPeriodicGhosts copies the interior boundary layers into the opposite
// ghost layers, emulating a fully periodic single block.
func fillPeriodicGhosts(f *field.PDFField) {
	nx, ny, nz := f.Nx, f.Ny, f.Nz
	wrap := func(v, n int) int { return ((v % n) + n) % n }
	for z := -1; z < nz+1; z++ {
		for y := -1; y < ny+1; y++ {
			for x := -1; x < nx+1; x++ {
				if x >= 0 && x < nx && y >= 0 && y < ny && z >= 0 && z < nz {
					continue
				}
				sx, sy, sz := wrap(x, nx), wrap(y, ny), wrap(z, nz)
				for a := 0; a < f.Stencil.Q; a++ {
					f.Set(x, y, z, lattice.Direction(a), f.Get(sx, sy, sz, lattice.Direction(a)))
				}
			}
		}
	}
}

func TestKernelNamesAndLayouts(t *testing.T) {
	srt := collide.NewSRT(0.8)
	trt := collide.NewTRT(0.8, collide.MagicParameter)
	flags := field.NewFlagField(2, 2, 2, 1)
	cases := []struct {
		k      Kernel
		name   string
		layout field.Layout
	}{
		{NewGeneric(lattice.D3Q19(), srt), "SRT Generic", field.AoS},
		{NewGeneric(lattice.D3Q19(), trt), "TRT Generic", field.AoS},
		{NewD3Q19SRT(srt), "SRT D3Q19", field.AoS},
		{NewD3Q19TRT(trt), "TRT D3Q19", field.AoS},
		{NewSplitSRT(srt), "SRT SIMD", field.SoA},
		{NewSplitTRT(trt), "TRT SIMD", field.SoA},
		{NewSparseConditional(trt), "TRT Conditional", field.AoS},
		{NewSparseCellList(trt, flags), "TRT CellList", field.AoS},
		{NewSparseInterval(trt, flags), "TRT Interval", field.SoA},
	}
	for _, c := range cases {
		if c.k.Name() != c.name {
			t.Errorf("Name = %q, want %q", c.k.Name(), c.name)
		}
		if c.k.Layout() != c.layout {
			t.Errorf("%s: Layout = %v, want %v", c.name, c.k.Layout(), c.layout)
		}
	}
}

func TestFluidCellsHelper(t *testing.T) {
	if FluidCells(4, 5, 6, nil) != 120 {
		t.Error("dense FluidCells wrong")
	}
	fl := field.NewFlagField(4, 5, 6, 1)
	fl.FillInterior(field.Fluid)
	fl.Set(0, 0, 0, field.NoSlip)
	if FluidCells(4, 5, 6, fl) != 119 {
		t.Error("sparse FluidCells wrong")
	}
}

func TestKernelShapeChecks(t *testing.T) {
	srt := collide.NewSRT(0.8)
	k := NewD3Q19SRT(srt)
	src := field.NewPDFField(lattice.D3Q19(), 4, 4, 4, 1, field.AoS)
	wrongLayout := field.NewPDFField(lattice.D3Q19(), 4, 4, 4, 1, field.SoA)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("layout mismatch", func() { k.Sweep(src, wrongLayout, nil) })
	noGhost := field.NewPDFField(lattice.D3Q19(), 4, 4, 4, 0, field.AoS)
	mustPanic("no ghost layer", func() { k.Sweep(noGhost, noGhost.CopyShape(), nil) })
	shapeMismatch := field.NewPDFField(lattice.D3Q19(), 4, 4, 5, 1, field.AoS)
	mustPanic("shape mismatch", func() { k.Sweep(src, shapeMismatch, nil) })
	mustPanic("sparse without flags", func() {
		trt := collide.NewTRT(0.8, collide.MagicParameter)
		NewSparseConditional(trt).Sweep(src, src.CopyShape(), nil)
	})
}
