package kernels

import (
	"walberla/internal/collide"
	"walberla/internal/field"
	"walberla/internal/lattice"
)

// splitScratch holds the per-row temporaries of the split kernels: the 19
// pulled PDF rows and the macroscopic value rows. Buffers grow on demand
// and are reused across rows and sweeps, so a kernel instance must not be
// shared between goroutines (each block gets its own kernel).
type splitScratch struct {
	f             [lattice.Q19][]float64
	rho, usq      []float64
	ux, uy, uz    []float64
	width, stride int
}

func (sc *splitScratch) ensure(n int) {
	if len(sc.rho) >= n {
		return
	}
	for a := range sc.f {
		sc.f[a] = make([]float64, n)
	}
	sc.rho = make([]float64, n)
	sc.usq = make([]float64, n)
	sc.ux = make([]float64, n)
	sc.uy = make([]float64, n)
	sc.uz = make([]float64, n)
}

// dirRows caches the per-direction SoA slices of src and dst for a sweep.
type dirRows struct {
	in   [lattice.Q19][]float64
	out  [lattice.Q19][]float64
	offs [lattice.Q19]int
}

func newDirRows(src, dst *field.PDFField) dirRows {
	var r dirRows
	r.offs = pullOffsets(src)
	for a := 0; a < lattice.Q19; a++ {
		r.in[a] = src.DirSlice(lattice.Direction(a))
		r.out[a] = dst.DirSlice(lattice.Direction(a))
	}
	return r
}

// pullAndMoments performs the first phase of the split update for the row
// of n cells starting at linear cell index base: per direction, one loop
// copies the pulled PDFs into scratch and accumulates the moment rows —
// each inner loop touches one load stream and at most four accumulators,
// the stream-count reduction that makes the layout SIMD-friendly.
func (sc *splitScratch) pullAndMoments(r *dirRows, base, n int) {
	// Center: initializes rho.
	{
		s := r.in[lattice.C][base:][:n]
		f := sc.f[lattice.C][:n]
		rho := sc.rho[:n]
		for i := 0; i < n; i++ {
			v := s[i]
			f[i] = v
			rho[i] = v
		}
	}
	for i := range sc.ux[:n] {
		sc.ux[i], sc.uy[i], sc.uz[i] = 0, 0, 0
	}
	type accum struct {
		dir        lattice.Direction
		sx, sy, sz float64
	}
	// One pass per direction; signs are the velocity components.
	dirs := [...]accum{
		{lattice.N, 0, 1, 0}, {lattice.S, 0, -1, 0},
		{lattice.W, -1, 0, 0}, {lattice.E, 1, 0, 0},
		{lattice.T, 0, 0, 1}, {lattice.B, 0, 0, -1},
		{lattice.NE, 1, 1, 0}, {lattice.NW, -1, 1, 0},
		{lattice.SE, 1, -1, 0}, {lattice.SW, -1, -1, 0},
		{lattice.TN, 0, 1, 1}, {lattice.TS, 0, -1, 1},
		{lattice.TE, 1, 0, 1}, {lattice.TW, -1, 0, 1},
		{lattice.BN, 0, 1, -1}, {lattice.BS, 0, -1, -1},
		{lattice.BE, 1, 0, -1}, {lattice.BW, -1, 0, -1},
	}
	rho := sc.rho[:n]
	ux, uy, uz := sc.ux[:n], sc.uy[:n], sc.uz[:n]
	for _, d := range dirs {
		s := r.in[d.dir][base-r.offs[d.dir]:][:n]
		f := sc.f[d.dir][:n]
		switch {
		case d.sy == 0 && d.sz == 0: // pure x
			for i := 0; i < n; i++ {
				v := s[i]
				f[i] = v
				rho[i] += v
				ux[i] += d.sx * v
			}
		case d.sx == 0 && d.sz == 0: // pure y
			for i := 0; i < n; i++ {
				v := s[i]
				f[i] = v
				rho[i] += v
				uy[i] += d.sy * v
			}
		case d.sx == 0 && d.sy == 0: // pure z
			for i := 0; i < n; i++ {
				v := s[i]
				f[i] = v
				rho[i] += v
				uz[i] += d.sz * v
			}
		case d.sz == 0: // xy diagonal
			for i := 0; i < n; i++ {
				v := s[i]
				f[i] = v
				rho[i] += v
				ux[i] += d.sx * v
				uy[i] += d.sy * v
			}
		case d.sx == 0: // yz diagonal
			for i := 0; i < n; i++ {
				v := s[i]
				f[i] = v
				rho[i] += v
				uy[i] += d.sy * v
				uz[i] += d.sz * v
			}
		default: // xz diagonal
			for i := 0; i < n; i++ {
				v := s[i]
				f[i] = v
				rho[i] += v
				ux[i] += d.sx * v
				uz[i] += d.sz * v
			}
		}
	}
	// Normalize momentum to velocity and precompute the kinetic term.
	usq := sc.usq[:n]
	for i := 0; i < n; i++ {
		inv := 1.0 / rho[i]
		x := ux[i] * inv
		y := uy[i] * inv
		z := uz[i] * inv
		ux[i], uy[i], uz[i] = x, y, z
		usq[i] = 1.5 * (x*x + y*y + z*z)
	}
}

// pairSpec describes one direction pair of the D3Q19 stencil for the
// by-direction collision loops: the weight and the coefficients of the
// velocity dot product of the positive representative.
type pairSpec struct {
	a, b       lattice.Direction
	w          float64
	cx, cy, cz float64
}

var d3q19Pairs = [...]pairSpec{
	{lattice.E, lattice.W, 1.0 / 18.0, 1, 0, 0},
	{lattice.N, lattice.S, 1.0 / 18.0, 0, 1, 0},
	{lattice.T, lattice.B, 1.0 / 18.0, 0, 0, 1},
	{lattice.NE, lattice.SW, 1.0 / 36.0, 1, 1, 0},
	{lattice.NW, lattice.SE, 1.0 / 36.0, -1, 1, 0},
	{lattice.TN, lattice.BS, 1.0 / 36.0, 0, 1, 1},
	{lattice.TS, lattice.BN, 1.0 / 36.0, 0, -1, 1},
	{lattice.TE, lattice.BW, 1.0 / 36.0, 1, 0, 1},
	{lattice.TW, lattice.BE, 1.0 / 36.0, -1, 0, 1},
}

// dot fills d with the velocity dot product of the pair's representative.
func (p *pairSpec) dot(d, ux, uy, uz []float64, n int) {
	switch {
	case p.cy == 0 && p.cz == 0:
		copy(d[:n], ux[:n])
	case p.cx == 0 && p.cz == 0:
		copy(d[:n], uy[:n])
	case p.cx == 0 && p.cy == 0:
		copy(d[:n], uz[:n])
	case p.cz == 0:
		for i := 0; i < n; i++ {
			d[i] = p.cx*ux[i] + p.cy*uy[i]
		}
	case p.cx == 0:
		for i := 0; i < n; i++ {
			d[i] = p.cy*uy[i] + p.cz*uz[i]
		}
	default:
		for i := 0; i < n; i++ {
			d[i] = p.cx*ux[i] + p.cz*uz[i]
		}
	}
}

// SplitSRT is the SIMD-style SRT kernel: SoA layout with the cell update
// split into per-direction loops (the paper's "SRT SIMD"). Not safe for
// concurrent use; construct one kernel per block.
type SplitSRT struct {
	p  srtParams
	sc splitScratch
	d  []float64
}

// NewSplitSRT constructs the split SRT kernel.
func NewSplitSRT(op collide.SRT) *SplitSRT {
	return &SplitSRT{p: srtParams{omega: op.Omega()}}
}

// Name implements Kernel.
func (k *SplitSRT) Name() string { return "SRT SIMD" }

// Layout implements Kernel.
func (k *SplitSRT) Layout() field.Layout { return field.SoA }

// Sweep implements Kernel.
func (k *SplitSRT) Sweep(src, dst *field.PDFField, flags *field.FlagField) {
	checkShapes(src, dst, field.SoA)
	if src.Stencil.Q != lattice.Q19 {
		panic("kernels: split kernel requires the D3Q19 stencil")
	}
	rows := newDirRows(src, dst)
	k.sc.ensure(src.Nx)
	if len(k.d) < src.Nx {
		k.d = make([]float64, src.Nx)
	}
	for z := 0; z < src.Nz; z++ {
		for y := 0; y < src.Ny; y++ {
			if flags == nil {
				k.row(&rows, src.CellIndex(0, y, z), src.Nx)
				continue
			}
			// With a flag field, update maximal runs of fluid cells; the
			// dense split kernel is only used on dense blocks, but this
			// keeps Sweep semantics uniform.
			x := 0
			for x < src.Nx {
				for x < src.Nx && flags.Get(x, y, z) != field.Fluid {
					x++
				}
				x0 := x
				for x < src.Nx && flags.Get(x, y, z) == field.Fluid {
					x++
				}
				if x > x0 {
					k.row(&rows, src.CellIndex(x0, y, z), x-x0)
				}
			}
		}
	}
}

// row updates n consecutive cells starting at linear index base.
func (k *SplitSRT) row(rows *dirRows, base, n int) {
	sc := &k.sc
	sc.pullAndMoments(rows, base, n)
	omega := k.p.omega
	om1 := 1.0 - omega
	rho, usq := sc.rho, sc.usq
	// Center direction.
	{
		f := sc.f[lattice.C]
		o := rows.out[lattice.C][base:][:n]
		for i := 0; i < n; i++ {
			o[i] = om1*f[i] + omega*(1.0/3.0)*rho[i]*(1.0-usq[i])
		}
	}
	d := k.d
	for pi := range d3q19Pairs {
		p := &d3q19Pairs[pi]
		p.dot(d, sc.ux, sc.uy, sc.uz, n)
		fa := sc.f[p.a]
		fb := sc.f[p.b]
		oa := rows.out[p.a][base:][:n]
		ob := rows.out[p.b][base:][:n]
		w := p.w
		for i := 0; i < n; i++ {
			cu := 3.0 * d[i]
			wr := w * rho[i]
			sym := wr * (1.0 + 0.5*cu*cu - usq[i])
			asym := wr * cu
			oa[i] = om1*fa[i] + omega*(sym+asym)
			ob[i] = om1*fb[i] + omega*(sym-asym)
		}
	}
}

// SplitTRT is the SIMD-style TRT kernel (the paper's "TRT SIMD"): identical
// loop structure to SplitSRT with the two-relaxation-time collision in the
// per-pair loops. Not safe for concurrent use.
type SplitTRT struct {
	p  trtParams
	sc splitScratch
	d  []float64
}

// NewSplitTRT constructs the split TRT kernel.
func NewSplitTRT(op collide.TRT) *SplitTRT {
	return &SplitTRT{p: trtParams{lambdaE: op.LambdaE, lambdaO: op.LambdaO}}
}

// Name implements Kernel.
func (k *SplitTRT) Name() string { return "TRT SIMD" }

// Layout implements Kernel.
func (k *SplitTRT) Layout() field.Layout { return field.SoA }

// Sweep implements Kernel.
func (k *SplitTRT) Sweep(src, dst *field.PDFField, flags *field.FlagField) {
	checkShapes(src, dst, field.SoA)
	if src.Stencil.Q != lattice.Q19 {
		panic("kernels: split kernel requires the D3Q19 stencil")
	}
	rows := newDirRows(src, dst)
	k.sc.ensure(src.Nx)
	if len(k.d) < src.Nx {
		k.d = make([]float64, src.Nx)
	}
	for z := 0; z < src.Nz; z++ {
		for y := 0; y < src.Ny; y++ {
			if flags == nil {
				k.row(&rows, src.CellIndex(0, y, z), src.Nx)
				continue
			}
			x := 0
			for x < src.Nx {
				for x < src.Nx && flags.Get(x, y, z) != field.Fluid {
					x++
				}
				x0 := x
				for x < src.Nx && flags.Get(x, y, z) == field.Fluid {
					x++
				}
				if x > x0 {
					k.row(&rows, src.CellIndex(x0, y, z), x-x0)
				}
			}
		}
	}
}

// row updates n consecutive cells starting at linear index base.
func (k *SplitTRT) row(rows *dirRows, base, n int) {
	sc := &k.sc
	sc.pullAndMoments(rows, base, n)
	le, lo := k.p.lambdaE, k.p.lambdaO
	rho, usq := sc.rho, sc.usq
	{
		f := sc.f[lattice.C]
		o := rows.out[lattice.C][base:][:n]
		for i := 0; i < n; i++ {
			feq := (1.0 / 3.0) * rho[i] * (1.0 - usq[i])
			o[i] = f[i] + le*(f[i]-feq)
		}
	}
	d := k.d
	for pi := range d3q19Pairs {
		p := &d3q19Pairs[pi]
		p.dot(d, sc.ux, sc.uy, sc.uz, n)
		fa := sc.f[p.a]
		fb := sc.f[p.b]
		oa := rows.out[p.a][base:][:n]
		ob := rows.out[p.b][base:][:n]
		w := p.w
		for i := 0; i < n; i++ {
			cu := 3.0 * d[i]
			wr := w * rho[i]
			feqP := wr * (1.0 + 0.5*cu*cu - usq[i])
			feqM := wr * cu
			fp := 0.5 * (fa[i] + fb[i])
			fm := 0.5 * (fa[i] - fb[i])
			even := le * (fp - feqP)
			odd := lo * (fm - feqM)
			oa[i] = fa[i] + even + odd
			ob[i] = fb[i] + even - odd
		}
	}
}
