package kernels

import (
	"walberla/internal/collide"
	"walberla/internal/field"
	"walberla/internal/lattice"
	"walberla/internal/perfmodel"
)

// The split kernels are the paper's stage-3 "SIMD" optimization: the PDF
// field is stored structure-of-arrays (one contiguous array per lattice
// direction), so a row of cells reads 19 unit-stride load streams and
// writes 19 unit-stride store streams — the access pattern hardware
// prefetchers and wide loads reward. The original formulation splits the
// cell update into per-direction loops with intrinsics; expressed in Go,
// the fastest equivalent keeps the by-direction streams but fuses the
// whole update into a single register-resident pass over each row,
// avoiding the scratch-array traffic a literal loop split would add.
//
// The floating-point evaluation order of the update is kept exactly
// identical to the D3Q19-specialized AoS kernels (same expressions, same
// shared pair helpers), so a simulation produces bit-identical fields in
// either layout — the property the distributed layer's cross-layout hash
// checks rely on.

// dirRows caches the per-direction SoA slices of src and dst for a sweep,
// together with the pull offsets: the pulled value of direction a for the
// cell with linear index ci is in[a][ci-offs[a]].
type dirRows struct {
	in   [lattice.Q19][]float64
	out  [lattice.Q19][]float64
	offs [lattice.Q19]int
}

func newDirRows(src, dst *field.PDFField) dirRows {
	var r dirRows
	r.offs = pullOffsets(src)
	for a := 0; a < lattice.Q19; a++ {
		r.in[a] = src.DirSlice(lattice.Direction(a))
		r.out[a] = dst.DirSlice(lattice.Direction(a))
	}
	return r
}

// tileRows returns the y-strip height of the cache-blocked traversal: the
// largest strip for which the three z-planes of by-direction source rows a
// stream-pull sweep re-reads (planes z-1, z, z+1 of the strip) stay
// resident in the per-core cache budget of the performance model. Within a
// strip the sweep advances plane by plane, so each padded source row is
// loaded from memory once and then served from cache for the two
// neighboring planes. Small blocks fit entirely and degenerate to the
// untiled traversal.
func tileRows(nx, ny, ghost int) int {
	budget := perfmodel.SuperMUCSocket().CacheBlockBytes
	rowBytes := lattice.Q19 * (nx + 2*ghost) * 8
	h := budget/(3*rowBytes) - 2
	if h < 4 {
		h = 4
	}
	if h > ny {
		h = ny
	}
	return h
}

// sweepRows drives a cache-blocked traversal of the interior, invoking
// row(base, n) for every maximal run of fluid cells. A nil flag field
// means the block is dense and whole rows are updated without any
// per-cell flag inspection.
func sweepRows(src *field.PDFField, flags *field.FlagField, tile int, row func(base, n int)) {
	nx, ny, nz := src.Nx, src.Ny, src.Nz
	for y0 := 0; y0 < ny; y0 += tile {
		y1 := y0 + tile
		if y1 > ny {
			y1 = ny
		}
		for z := 0; z < nz; z++ {
			for y := y0; y < y1; y++ {
				if flags == nil {
					row(src.CellIndex(0, y, z), nx)
					continue
				}
				x := 0
				for x < nx {
					for x < nx && flags.Get(x, y, z) != field.Fluid {
						x++
					}
					r0 := x
					for x < nx && flags.Get(x, y, z) == field.Fluid {
						x++
					}
					if x > r0 {
						row(src.CellIndex(r0, y, z), x-r0)
					}
				}
			}
		}
	}
}

// trtRowSoA applies the fused TRT stream-collide update to n consecutive
// cells starting at linear index base, reading and writing the
// by-direction arrays directly. The arithmetic mirrors trtCellAoS
// expression by expression.
func trtRowSoA(r *dirRows, base, n int, le, lo float64) {
	inC := r.in[lattice.C][base:][:n]
	inN := r.in[lattice.N][base-r.offs[lattice.N]:][:n]
	inS := r.in[lattice.S][base-r.offs[lattice.S]:][:n]
	inW := r.in[lattice.W][base-r.offs[lattice.W]:][:n]
	inE := r.in[lattice.E][base-r.offs[lattice.E]:][:n]
	inT := r.in[lattice.T][base-r.offs[lattice.T]:][:n]
	inB := r.in[lattice.B][base-r.offs[lattice.B]:][:n]
	inNE := r.in[lattice.NE][base-r.offs[lattice.NE]:][:n]
	inNW := r.in[lattice.NW][base-r.offs[lattice.NW]:][:n]
	inSE := r.in[lattice.SE][base-r.offs[lattice.SE]:][:n]
	inSW := r.in[lattice.SW][base-r.offs[lattice.SW]:][:n]
	inTN := r.in[lattice.TN][base-r.offs[lattice.TN]:][:n]
	inTS := r.in[lattice.TS][base-r.offs[lattice.TS]:][:n]
	inTE := r.in[lattice.TE][base-r.offs[lattice.TE]:][:n]
	inTW := r.in[lattice.TW][base-r.offs[lattice.TW]:][:n]
	inBN := r.in[lattice.BN][base-r.offs[lattice.BN]:][:n]
	inBS := r.in[lattice.BS][base-r.offs[lattice.BS]:][:n]
	inBE := r.in[lattice.BE][base-r.offs[lattice.BE]:][:n]
	inBW := r.in[lattice.BW][base-r.offs[lattice.BW]:][:n]
	outC := r.out[lattice.C][base:][:n]
	outN := r.out[lattice.N][base:][:n]
	outS := r.out[lattice.S][base:][:n]
	outW := r.out[lattice.W][base:][:n]
	outE := r.out[lattice.E][base:][:n]
	outT := r.out[lattice.T][base:][:n]
	outB := r.out[lattice.B][base:][:n]
	outNE := r.out[lattice.NE][base:][:n]
	outNW := r.out[lattice.NW][base:][:n]
	outSE := r.out[lattice.SE][base:][:n]
	outSW := r.out[lattice.SW][base:][:n]
	outTN := r.out[lattice.TN][base:][:n]
	outTS := r.out[lattice.TS][base:][:n]
	outTE := r.out[lattice.TE][base:][:n]
	outTW := r.out[lattice.TW][base:][:n]
	outBN := r.out[lattice.BN][base:][:n]
	outBS := r.out[lattice.BS][base:][:n]
	outBE := r.out[lattice.BE][base:][:n]
	outBW := r.out[lattice.BW][base:][:n]
	for i := 0; i < n; i++ {
		fC := inC[i]
		fN := inN[i]
		fS := inS[i]
		fW := inW[i]
		fE := inE[i]
		fT := inT[i]
		fB := inB[i]
		fNE := inNE[i]
		fNW := inNW[i]
		fSE := inSE[i]
		fSW := inSW[i]
		fTN := inTN[i]
		fTS := inTS[i]
		fTE := inTE[i]
		fTW := inTW[i]
		fBN := inBN[i]
		fBS := inBS[i]
		fBE := inBE[i]
		fBW := inBW[i]

		rho := fC + fN + fS + fW + fE + fT + fB +
			fNE + fNW + fSE + fSW + fTN + fTS + fTE + fTW + fBN + fBS + fBE + fBW
		invRho := 1.0 / rho
		ux := (fE + fNE + fSE + fTE + fBE - fW - fNW - fSW - fTW - fBW) * invRho
		uy := (fN + fNE + fNW + fTN + fBN - fS - fSE - fSW - fTS - fBS) * invRho
		uz := (fT + fTN + fTS + fTE + fTW - fB - fBN - fBS - fBE - fBW) * invRho
		usq := 1.5 * (ux*ux + uy*uy + uz*uz)

		w0r := rho * (1.0 / 3.0)
		w1r := rho * (1.0 / 18.0)
		w2r := rho * (1.0 / 36.0)

		outC[i] = fC + le*(fC-w0r*(1.0-usq))
		outE[i], outW[i] = trtPairVals(fE, fW, w1r, ux, usq, le, lo)
		outN[i], outS[i] = trtPairVals(fN, fS, w1r, uy, usq, le, lo)
		outT[i], outB[i] = trtPairVals(fT, fB, w1r, uz, usq, le, lo)
		outNE[i], outSW[i] = trtPairVals(fNE, fSW, w2r, ux+uy, usq, le, lo)
		outNW[i], outSE[i] = trtPairVals(fNW, fSE, w2r, uy-ux, usq, le, lo)
		outTN[i], outBS[i] = trtPairVals(fTN, fBS, w2r, uy+uz, usq, le, lo)
		outTS[i], outBN[i] = trtPairVals(fTS, fBN, w2r, uz-uy, usq, le, lo)
		outTE[i], outBW[i] = trtPairVals(fTE, fBW, w2r, ux+uz, usq, le, lo)
		outTW[i], outBE[i] = trtPairVals(fTW, fBE, w2r, uz-ux, usq, le, lo)
	}
}

// srtRowSoA is the SRT variant of trtRowSoA, mirroring the D3Q19SRT
// arithmetic expression by expression.
func srtRowSoA(r *dirRows, base, n int, omega, om1 float64) {
	inC := r.in[lattice.C][base:][:n]
	inN := r.in[lattice.N][base-r.offs[lattice.N]:][:n]
	inS := r.in[lattice.S][base-r.offs[lattice.S]:][:n]
	inW := r.in[lattice.W][base-r.offs[lattice.W]:][:n]
	inE := r.in[lattice.E][base-r.offs[lattice.E]:][:n]
	inT := r.in[lattice.T][base-r.offs[lattice.T]:][:n]
	inB := r.in[lattice.B][base-r.offs[lattice.B]:][:n]
	inNE := r.in[lattice.NE][base-r.offs[lattice.NE]:][:n]
	inNW := r.in[lattice.NW][base-r.offs[lattice.NW]:][:n]
	inSE := r.in[lattice.SE][base-r.offs[lattice.SE]:][:n]
	inSW := r.in[lattice.SW][base-r.offs[lattice.SW]:][:n]
	inTN := r.in[lattice.TN][base-r.offs[lattice.TN]:][:n]
	inTS := r.in[lattice.TS][base-r.offs[lattice.TS]:][:n]
	inTE := r.in[lattice.TE][base-r.offs[lattice.TE]:][:n]
	inTW := r.in[lattice.TW][base-r.offs[lattice.TW]:][:n]
	inBN := r.in[lattice.BN][base-r.offs[lattice.BN]:][:n]
	inBS := r.in[lattice.BS][base-r.offs[lattice.BS]:][:n]
	inBE := r.in[lattice.BE][base-r.offs[lattice.BE]:][:n]
	inBW := r.in[lattice.BW][base-r.offs[lattice.BW]:][:n]
	outC := r.out[lattice.C][base:][:n]
	outN := r.out[lattice.N][base:][:n]
	outS := r.out[lattice.S][base:][:n]
	outW := r.out[lattice.W][base:][:n]
	outE := r.out[lattice.E][base:][:n]
	outT := r.out[lattice.T][base:][:n]
	outB := r.out[lattice.B][base:][:n]
	outNE := r.out[lattice.NE][base:][:n]
	outNW := r.out[lattice.NW][base:][:n]
	outSE := r.out[lattice.SE][base:][:n]
	outSW := r.out[lattice.SW][base:][:n]
	outTN := r.out[lattice.TN][base:][:n]
	outTS := r.out[lattice.TS][base:][:n]
	outTE := r.out[lattice.TE][base:][:n]
	outTW := r.out[lattice.TW][base:][:n]
	outBN := r.out[lattice.BN][base:][:n]
	outBS := r.out[lattice.BS][base:][:n]
	outBE := r.out[lattice.BE][base:][:n]
	outBW := r.out[lattice.BW][base:][:n]
	for i := 0; i < n; i++ {
		fC := inC[i]
		fN := inN[i]
		fS := inS[i]
		fW := inW[i]
		fE := inE[i]
		fT := inT[i]
		fB := inB[i]
		fNE := inNE[i]
		fNW := inNW[i]
		fSE := inSE[i]
		fSW := inSW[i]
		fTN := inTN[i]
		fTS := inTS[i]
		fTE := inTE[i]
		fTW := inTW[i]
		fBN := inBN[i]
		fBS := inBS[i]
		fBE := inBE[i]
		fBW := inBW[i]

		rho := fC + fN + fS + fW + fE + fT + fB +
			fNE + fNW + fSE + fSW + fTN + fTS + fTE + fTW + fBN + fBS + fBE + fBW
		invRho := 1.0 / rho
		ux := (fE + fNE + fSE + fTE + fBE - fW - fNW - fSW - fTW - fBW) * invRho
		uy := (fN + fNE + fNW + fTN + fBN - fS - fSE - fSW - fTS - fBS) * invRho
		uz := (fT + fTN + fTS + fTE + fTW - fB - fBN - fBS - fBE - fBW) * invRho
		usq := 1.5 * (ux*ux + uy*uy + uz*uz)

		w0r := rho * (1.0 / 3.0)
		w1r := rho * (1.0 / 18.0)
		w2r := rho * (1.0 / 36.0)

		outC[i] = om1*fC + omega*w0r*(1.0-usq)
		outE[i], outW[i] = srtPairVals(fE, fW, w1r, ux, usq, omega, om1)
		outN[i], outS[i] = srtPairVals(fN, fS, w1r, uy, usq, omega, om1)
		outT[i], outB[i] = srtPairVals(fT, fB, w1r, uz, usq, omega, om1)
		outNE[i], outSW[i] = srtPairVals(fNE, fSW, w2r, ux+uy, usq, omega, om1)
		outNW[i], outSE[i] = srtPairVals(fNW, fSE, w2r, uy-ux, usq, omega, om1)
		outTN[i], outBS[i] = srtPairVals(fTN, fBS, w2r, uy+uz, usq, omega, om1)
		outTS[i], outBN[i] = srtPairVals(fTS, fBN, w2r, uz-uy, usq, omega, om1)
		outTE[i], outBW[i] = srtPairVals(fTE, fBW, w2r, ux+uz, usq, omega, om1)
		outTW[i], outBE[i] = srtPairVals(fTW, fBE, w2r, uz-ux, usq, omega, om1)
	}
}

// SplitSRT is the by-direction SRT kernel on the SoA layout (the paper's
// "SRT SIMD"). Safe for concurrent use on disjoint fields.
type SplitSRT struct {
	p    srtParams
	tile int
}

// NewSplitSRT constructs the split SRT kernel.
func NewSplitSRT(op collide.SRT) *SplitSRT {
	return &SplitSRT{p: srtParams{omega: op.Omega()}}
}

// Name implements Kernel.
func (k *SplitSRT) Name() string { return "SRT SIMD" }

// Layout implements Kernel.
func (k *SplitSRT) Layout() field.Layout { return field.SoA }

// Sweep implements Kernel.
func (k *SplitSRT) Sweep(src, dst *field.PDFField, flags *field.FlagField) {
	checkShapes(src, dst, field.SoA)
	if src.Stencil.Q != lattice.Q19 {
		panic("kernels: split kernel requires the D3Q19 stencil")
	}
	rows := newDirRows(src, dst)
	if k.tile == 0 {
		k.tile = tileRows(src.Nx, src.Ny, src.Ghost)
	}
	omega := k.p.omega
	om1 := 1.0 - omega
	sweepRows(src, flags, k.tile, func(base, n int) {
		srtRowSoA(&rows, base, n, omega, om1)
	})
}

// SplitTRT is the by-direction TRT kernel on the SoA layout (the paper's
// "TRT SIMD"), the default distributed hot path for dense blocks. Safe for
// concurrent use on disjoint fields.
type SplitTRT struct {
	p    trtParams
	tile int
}

// NewSplitTRT constructs the split TRT kernel.
func NewSplitTRT(op collide.TRT) *SplitTRT {
	return &SplitTRT{p: trtParams{lambdaE: op.LambdaE, lambdaO: op.LambdaO}}
}

// Name implements Kernel.
func (k *SplitTRT) Name() string { return "TRT SIMD" }

// Layout implements Kernel.
func (k *SplitTRT) Layout() field.Layout { return field.SoA }

// Sweep implements Kernel.
func (k *SplitTRT) Sweep(src, dst *field.PDFField, flags *field.FlagField) {
	checkShapes(src, dst, field.SoA)
	if src.Stencil.Q != lattice.Q19 {
		panic("kernels: split kernel requires the D3Q19 stencil")
	}
	rows := newDirRows(src, dst)
	if k.tile == 0 {
		k.tile = tileRows(src.Nx, src.Ny, src.Ghost)
	}
	le, lo := k.p.lambdaE, k.p.lambdaO
	sweepRows(src, flags, k.tile, func(base, n int) {
		trtRowSoA(&rows, base, n, le, lo)
	})
}
