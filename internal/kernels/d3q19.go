package kernels

import (
	"walberla/internal/collide"
	"walberla/internal/field"
	"walberla/internal/lattice"
)

// pullOffsets returns, for each D3Q19 direction, the linear cell-index
// offset of the upstream neighbor a stream-pull update reads from.
func pullOffsets(f *field.PDFField) [lattice.Q19]int {
	s := f.Stencil
	sx, sy, sz := f.Strides()
	var offs [lattice.Q19]int
	for a := 0; a < lattice.Q19; a++ {
		offs[a] = s.Cx[a]*sx + s.Cy[a]*sy + s.Cz[a]*sz
	}
	return offs
}

// D3Q19SRT is the SRT kernel specialized for the D3Q19 model: streaming and
// collision are fused, the direction loop is fully unrolled against the
// fixed ordering, and common subexpressions of the equilibrium (the
// symmetric/antisymmetric parts shared by direction pairs) are computed
// once. This is the paper's "SRT D3Q19" optimization stage.
type D3Q19SRT struct {
	p srtParams
}

// NewD3Q19SRT constructs the specialized SRT kernel.
func NewD3Q19SRT(op collide.SRT) *D3Q19SRT {
	return &D3Q19SRT{p: srtParams{omega: op.Omega()}}
}

// Name implements Kernel.
func (k *D3Q19SRT) Name() string { return "SRT D3Q19" }

// Layout implements Kernel.
func (k *D3Q19SRT) Layout() field.Layout { return field.AoS }

// Sweep implements Kernel.
func (k *D3Q19SRT) Sweep(src, dst *field.PDFField, flags *field.FlagField) {
	checkShapes(src, dst, field.AoS)
	if src.Stencil.Q != lattice.Q19 {
		panic("kernels: D3Q19 kernel requires the D3Q19 stencil")
	}
	offs := pullOffsets(src)
	in := src.Data()
	out := dst.Data()
	omega := k.p.omega
	om1 := 1.0 - omega
	const q = lattice.Q19
	for z := 0; z < src.Nz; z++ {
		for y := 0; y < src.Ny; y++ {
			ci := src.CellIndex(0, y, z)
			for x := 0; x < src.Nx; x++ {
				if !isFluid(flags, x, y, z) {
					ci++
					continue
				}
				// Pull all 19 PDFs from their upstream neighbors.
				fC := in[(ci-offs[lattice.C])*q+int(lattice.C)]
				fN := in[(ci-offs[lattice.N])*q+int(lattice.N)]
				fS := in[(ci-offs[lattice.S])*q+int(lattice.S)]
				fW := in[(ci-offs[lattice.W])*q+int(lattice.W)]
				fE := in[(ci-offs[lattice.E])*q+int(lattice.E)]
				fT := in[(ci-offs[lattice.T])*q+int(lattice.T)]
				fB := in[(ci-offs[lattice.B])*q+int(lattice.B)]
				fNE := in[(ci-offs[lattice.NE])*q+int(lattice.NE)]
				fNW := in[(ci-offs[lattice.NW])*q+int(lattice.NW)]
				fSE := in[(ci-offs[lattice.SE])*q+int(lattice.SE)]
				fSW := in[(ci-offs[lattice.SW])*q+int(lattice.SW)]
				fTN := in[(ci-offs[lattice.TN])*q+int(lattice.TN)]
				fTS := in[(ci-offs[lattice.TS])*q+int(lattice.TS)]
				fTE := in[(ci-offs[lattice.TE])*q+int(lattice.TE)]
				fTW := in[(ci-offs[lattice.TW])*q+int(lattice.TW)]
				fBN := in[(ci-offs[lattice.BN])*q+int(lattice.BN)]
				fBS := in[(ci-offs[lattice.BS])*q+int(lattice.BS)]
				fBE := in[(ci-offs[lattice.BE])*q+int(lattice.BE)]
				fBW := in[(ci-offs[lattice.BW])*q+int(lattice.BW)]

				// Macroscopic values with shared partial sums.
				rho := fC + fN + fS + fW + fE + fT + fB +
					fNE + fNW + fSE + fSW + fTN + fTS + fTE + fTW + fBN + fBS + fBE + fBW
				invRho := 1.0 / rho
				ux := (fE + fNE + fSE + fTE + fBE - fW - fNW - fSW - fTW - fBW) * invRho
				uy := (fN + fNE + fNW + fTN + fBN - fS - fSE - fSW - fTS - fBS) * invRho
				uz := (fT + fTN + fTS + fTE + fTW - fB - fBN - fBS - fBE - fBW) * invRho
				usq := 1.5 * (ux*ux + uy*uy + uz*uz)

				w0r := rho * (1.0 / 3.0)
				w1r := rho * (1.0 / 18.0)
				w2r := rho * (1.0 / 36.0)
				base := ci * q

				out[base+int(lattice.C)] = om1*fC + omega*w0r*(1.0-usq)

				// Each direction pair (a, abar) shares the symmetric part
				// of the equilibrium; only the antisymmetric part differs
				// in sign — the eliminated common subexpression.
				srtPair(out, base, int(lattice.E), int(lattice.W), fE, fW, w1r, ux, usq, omega, om1)
				srtPair(out, base, int(lattice.N), int(lattice.S), fN, fS, w1r, uy, usq, omega, om1)
				srtPair(out, base, int(lattice.T), int(lattice.B), fT, fB, w1r, uz, usq, omega, om1)
				srtPair(out, base, int(lattice.NE), int(lattice.SW), fNE, fSW, w2r, ux+uy, usq, omega, om1)
				srtPair(out, base, int(lattice.NW), int(lattice.SE), fNW, fSE, w2r, uy-ux, usq, omega, om1)
				srtPair(out, base, int(lattice.TN), int(lattice.BS), fTN, fBS, w2r, uy+uz, usq, omega, om1)
				srtPair(out, base, int(lattice.TS), int(lattice.BN), fTS, fBN, w2r, uz-uy, usq, omega, om1)
				srtPair(out, base, int(lattice.TE), int(lattice.BW), fTE, fBW, w2r, ux+uz, usq, omega, om1)
				srtPair(out, base, int(lattice.TW), int(lattice.BE), fTW, fBE, w2r, uz-ux, usq, omega, om1)
				ci++
			}
		}
	}
}

// srtPairVals relaxes a direction pair toward equilibrium and returns the
// post-collision values. d is the dot product e_a . u of the positive
// representative a; wr is w_a * rho. Shared by the AoS and SoA kernels so
// both layouts evaluate the identical floating-point expressions.
func srtPairVals(fa, fb, wr, d, usq, omega, om1 float64) (float64, float64) {
	cu := 3.0 * d
	sym := wr * (1.0 + 0.5*cu*cu - usq)
	asym := wr * cu
	return om1*fa + omega*(sym+asym), om1*fb + omega*(sym-asym)
}

func srtPair(out []float64, base, a, b int, fa, fb, wr, d, usq, omega, om1 float64) {
	out[base+a], out[base+b] = srtPairVals(fa, fb, wr, d, usq, omega, om1)
}

// D3Q19TRT is the TRT kernel specialized for D3Q19: like D3Q19SRT but with
// the two-relaxation-time collision, exploiting that the even/odd split of
// the TRT operator coincides with the direction-pair structure used for
// common subexpression elimination (the paper's "TRT D3Q19").
type D3Q19TRT struct {
	p trtParams
}

// NewD3Q19TRT constructs the specialized TRT kernel.
func NewD3Q19TRT(op collide.TRT) *D3Q19TRT {
	return &D3Q19TRT{p: trtParams{lambdaE: op.LambdaE, lambdaO: op.LambdaO}}
}

// Name implements Kernel.
func (k *D3Q19TRT) Name() string { return "TRT D3Q19" }

// Layout implements Kernel.
func (k *D3Q19TRT) Layout() field.Layout { return field.AoS }

// Sweep implements Kernel.
func (k *D3Q19TRT) Sweep(src, dst *field.PDFField, flags *field.FlagField) {
	checkShapes(src, dst, field.AoS)
	if src.Stencil.Q != lattice.Q19 {
		panic("kernels: D3Q19 kernel requires the D3Q19 stencil")
	}
	offs := pullOffsets(src)
	in := src.Data()
	out := dst.Data()
	le, lo := k.p.lambdaE, k.p.lambdaO
	const q = lattice.Q19
	for z := 0; z < src.Nz; z++ {
		for y := 0; y < src.Ny; y++ {
			ci := src.CellIndex(0, y, z)
			for x := 0; x < src.Nx; x++ {
				if !isFluid(flags, x, y, z) {
					ci++
					continue
				}
				fC := in[(ci-offs[lattice.C])*q+int(lattice.C)]
				fN := in[(ci-offs[lattice.N])*q+int(lattice.N)]
				fS := in[(ci-offs[lattice.S])*q+int(lattice.S)]
				fW := in[(ci-offs[lattice.W])*q+int(lattice.W)]
				fE := in[(ci-offs[lattice.E])*q+int(lattice.E)]
				fT := in[(ci-offs[lattice.T])*q+int(lattice.T)]
				fB := in[(ci-offs[lattice.B])*q+int(lattice.B)]
				fNE := in[(ci-offs[lattice.NE])*q+int(lattice.NE)]
				fNW := in[(ci-offs[lattice.NW])*q+int(lattice.NW)]
				fSE := in[(ci-offs[lattice.SE])*q+int(lattice.SE)]
				fSW := in[(ci-offs[lattice.SW])*q+int(lattice.SW)]
				fTN := in[(ci-offs[lattice.TN])*q+int(lattice.TN)]
				fTS := in[(ci-offs[lattice.TS])*q+int(lattice.TS)]
				fTE := in[(ci-offs[lattice.TE])*q+int(lattice.TE)]
				fTW := in[(ci-offs[lattice.TW])*q+int(lattice.TW)]
				fBN := in[(ci-offs[lattice.BN])*q+int(lattice.BN)]
				fBS := in[(ci-offs[lattice.BS])*q+int(lattice.BS)]
				fBE := in[(ci-offs[lattice.BE])*q+int(lattice.BE)]
				fBW := in[(ci-offs[lattice.BW])*q+int(lattice.BW)]

				rho := fC + fN + fS + fW + fE + fT + fB +
					fNE + fNW + fSE + fSW + fTN + fTS + fTE + fTW + fBN + fBS + fBE + fBW
				invRho := 1.0 / rho
				ux := (fE + fNE + fSE + fTE + fBE - fW - fNW - fSW - fTW - fBW) * invRho
				uy := (fN + fNE + fNW + fTN + fBN - fS - fSE - fSW - fTS - fBS) * invRho
				uz := (fT + fTN + fTS + fTE + fTW - fB - fBN - fBS - fBE - fBW) * invRho
				usq := 1.5 * (ux*ux + uy*uy + uz*uz)

				w0r := rho * (1.0 / 3.0)
				w1r := rho * (1.0 / 18.0)
				w2r := rho * (1.0 / 36.0)
				base := ci * q

				// Center direction has no odd part.
				out[base+int(lattice.C)] = fC + le*(fC-w0r*(1.0-usq))

				trtPair(out, base, int(lattice.E), int(lattice.W), fE, fW, w1r, ux, usq, le, lo)
				trtPair(out, base, int(lattice.N), int(lattice.S), fN, fS, w1r, uy, usq, le, lo)
				trtPair(out, base, int(lattice.T), int(lattice.B), fT, fB, w1r, uz, usq, le, lo)
				trtPair(out, base, int(lattice.NE), int(lattice.SW), fNE, fSW, w2r, ux+uy, usq, le, lo)
				trtPair(out, base, int(lattice.NW), int(lattice.SE), fNW, fSE, w2r, uy-ux, usq, le, lo)
				trtPair(out, base, int(lattice.TN), int(lattice.BS), fTN, fBS, w2r, uy+uz, usq, le, lo)
				trtPair(out, base, int(lattice.TS), int(lattice.BN), fTS, fBN, w2r, uz-uy, usq, le, lo)
				trtPair(out, base, int(lattice.TE), int(lattice.BW), fTE, fBW, w2r, ux+uz, usq, le, lo)
				trtPair(out, base, int(lattice.TW), int(lattice.BE), fTW, fBE, w2r, uz-ux, usq, le, lo)
				ci++
			}
		}
	}
}

// trtPairVals applies the TRT collision to a direction pair and returns
// the post-collision values. The even part of the equilibrium is the
// shared symmetric term, the odd part the shared antisymmetric term — the
// same subexpressions the SRT pair update reuses. Shared by the AoS and
// SoA kernels so both layouts evaluate the identical floating-point
// expressions.
func trtPairVals(fa, fb, wr, d, usq, le, lo float64) (float64, float64) {
	cu := 3.0 * d
	feqP := wr * (1.0 + 0.5*cu*cu - usq)
	feqM := wr * cu
	fp := 0.5 * (fa + fb)
	fm := 0.5 * (fa - fb)
	even := le * (fp - feqP)
	odd := lo * (fm - feqM)
	return fa + even + odd, fb + even - odd
}

func trtPair(out []float64, base, a, b int, fa, fb, wr, d, usq, le, lo float64) {
	out[base+a], out[base+b] = trtPairVals(fa, fb, wr, d, usq, le, lo)
}
