package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"walberla/internal/collide"
	"walberla/internal/field"
	"walberla/internal/lattice"
)

// Property: for arbitrary block shapes and arbitrary (valid) PDF states,
// every optimized kernel agrees with the generic reference. This catches
// indexing bugs that only appear at particular extents (e.g. stride
// confusion between axes on non-cubic blocks).
func TestKernelEquivalenceRandomShapes(t *testing.T) {
	trt := collide.NewTRT(0.9, collide.MagicParameter)
	srt := collide.NewSRT(0.9)
	prop := func(sx, sy, sz uint8, seed int64) bool {
		nx := int(sx%6) + 2
		ny := int(sy%6) + 2
		nz := int(sz%6) + 2
		r := rand.New(rand.NewSource(seed))
		src := field.NewPDFField(lattice.D3Q19(), nx, ny, nz, 1, field.AoS)
		feq := make([]float64, 19)
		for z := -1; z < nz+1; z++ {
			for y := -1; y < ny+1; y++ {
				for x := -1; x < nx+1; x++ {
					src.Stencil.Equilibrium(feq, 0.9+0.2*r.Float64(),
						0.06*(r.Float64()-0.5), 0.06*(r.Float64()-0.5), 0.06*(r.Float64()-0.5))
					for a := 0; a < 19; a++ {
						src.Set(x, y, z, lattice.Direction(a), feq[a]*(1+0.05*(r.Float64()-0.5)))
					}
				}
			}
		}
		refTRT := src.CopyShape()
		NewGeneric(lattice.D3Q19(), trt).Sweep(src, refTRT, nil)
		refSRT := src.CopyShape()
		NewGeneric(lattice.D3Q19(), srt).Sweep(src, refSRT, nil)

		kernelsUnderTest := []struct {
			k   Kernel
			ref *field.PDFField
		}{
			{NewD3Q19TRT(trt), refTRT},
			{NewSplitTRT(trt), refTRT},
			{NewD3Q19SRT(srt), refSRT},
			{NewSplitSRT(srt), refSRT},
		}
		for _, tc := range kernelsUnderTest {
			s2 := src.ConvertLayout(tc.k.Layout())
			d2 := s2.CopyShape()
			tc.k.Sweep(s2, d2, nil)
			got := d2.ConvertLayout(field.AoS)
			for z := 0; z < nz; z++ {
				for y := 0; y < ny; y++ {
					for x := 0; x < nx; x++ {
						for a := 0; a < 19; a++ {
							d := lattice.Direction(a)
							if math.Abs(got.Get(x, y, z, d)-tc.ref.Get(x, y, z, d)) > 1e-13 {
								return false
							}
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: sparse kernels on random fluid patterns agree with the
// reference restricted to fluid cells, for arbitrary shapes.
func TestSparseEquivalenceRandomPatterns(t *testing.T) {
	trt := collide.NewTRT(0.8, collide.MagicParameter)
	prop := func(sx, sy uint8, seed int64) bool {
		nx := int(sx%5) + 3
		ny := int(sy%5) + 3
		nz := 4
		r := rand.New(rand.NewSource(seed))
		flags := field.NewFlagField(nx, ny, nz, 1)
		flags.Fill(field.NoSlip)
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					if r.Float64() < 0.5 {
						flags.Set(x, y, z, field.Fluid)
					}
				}
			}
		}
		src := field.NewPDFField(lattice.D3Q19(), nx, ny, nz, 1, field.AoS)
		for i := range src.Data() {
			src.Data()[i] = 0.02 + 0.1*r.Float64()
		}
		ref := src.CopyShape()
		NewGeneric(lattice.D3Q19(), trt).Sweep(src, ref, flags)
		for _, k := range []Kernel{
			NewSparseConditional(trt),
			NewSparseCellList(trt, flags),
			NewSparseInterval(trt, flags),
		} {
			s2 := src.ConvertLayout(k.Layout())
			d2 := s2.CopyShape()
			k.Sweep(s2, d2, flags)
			got := d2.ConvertLayout(field.AoS)
			for z := 0; z < nz; z++ {
				for y := 0; y < ny; y++ {
					for x := 0; x < nx; x++ {
						if flags.Get(x, y, z) != field.Fluid {
							continue
						}
						for a := 0; a < 19; a++ {
							d := lattice.Direction(a)
							if math.Abs(got.Get(x, y, z, d)-ref.Get(x, y, z, d)) > 1e-13 {
								return false
							}
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
