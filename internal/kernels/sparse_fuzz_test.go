package kernels

import (
	"fmt"
	"math"
	"testing"

	"walberla/internal/collide"
	"walberla/internal/field"
	"walberla/internal/lattice"
)

// fuzzFlags decodes an arbitrary byte string into a flag field: bit i of
// the pattern decides whether interior cell i (in x-fastest order) is
// fluid. Bytes beyond the pattern leave cells solid, so short inputs are
// mostly-solid geometries and empty inputs have zero fluid cells.
func fuzzFlags(nx, ny, nz int, pattern []byte) *field.FlagField {
	flags := field.NewFlagField(nx, ny, nz, 1)
	flags.Fill(field.NoSlip)
	i := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if i/8 < len(pattern) && pattern[i/8]&(1<<(i%8)) != 0 {
					flags.Set(x, y, z, field.Fluid)
				}
				i++
			}
		}
	}
	return flags
}

// FuzzSparseIntervals drives the interval-list builder with arbitrary
// fluid/solid patterns — degenerate ones included: zero fluid cells,
// isolated single-cell intervals, full-width lines — and checks its
// invariants: the builder must not panic (its own bounds check guards
// every stored run against escaping its lattice line), it must account
// exactly the scanned fluid-cell and run counts, and its sweep must be
// bit-identical to the flag-aware dense split kernel, leaving every
// non-fluid cell untouched.
func FuzzSparseIntervals(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint8(4), []byte{})                       // zero fluid cells
	f.Add(uint8(8), uint8(2), uint8(2), []byte{0xff, 0xff, 0xff, 0xff}) // full-width intervals
	f.Add(uint8(5), uint8(3), uint8(2), []byte{0xaa, 0xaa, 0xaa, 0xaa}) // alternating single cells
	f.Add(uint8(1), uint8(1), uint8(1), []byte{0x01})                   // single-cell block
	f.Add(uint8(6), uint8(2), uint8(1), []byte{0x9e, 0x71})             // interior gaps
	f.Add(uint8(7), uint8(1), uint8(3), []byte{0x00, 0xff, 0x10})       // mixed lines

	f.Fuzz(func(t *testing.T, bx, by, bz uint8, pattern []byte) {
		nx := 1 + int(bx)%8
		ny := 1 + int(by)%8
		nz := 1 + int(bz)%8
		flags := fuzzFlags(nx, ny, nz, pattern)

		op := collide.NewTRT(0.8, 3.0/16.0)
		k := NewSparseInterval(op, flags) // must not panic on any geometry

		// Reference scan: fluid cells and maximal runs per lattice line.
		fluid, runs := 0, 0
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				in := false
				for x := 0; x < nx; x++ {
					if flags.Get(x, y, z) == field.Fluid {
						fluid++
						if !in {
							runs++
							in = true
						}
					} else {
						in = false
					}
				}
			}
		}
		if k.FluidCells() != fluid {
			t.Fatalf("FluidCells() = %d, scan counts %d", k.FluidCells(), fluid)
		}
		if k.Intervals() != runs {
			t.Fatalf("Intervals() = %d, scan counts %d maximal runs", k.Intervals(), runs)
		}

		// Sweep equivalence: the interval kernel and the flag-aware dense
		// split kernel must produce bit-identical fields. Both dst fields
		// start from the same sentinel state, so any write outside the
		// fluid cells diverges too.
		src := field.NewPDFField(lattice.D3Q19(), nx, ny, nz, 1, field.SoA)
		src.FillEquilibrium(1, 0.02, -0.01, 0.005)
		i := 0
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					b := byte(0x5b)
					if i < len(pattern) {
						b = pattern[i]
					}
					src.Set(x, y, z, lattice.E, 1.0/18.0+float64(b)/4096.0)
					i++
				}
			}
		}
		got := field.NewPDFField(lattice.D3Q19(), nx, ny, nz, 1, field.SoA)
		want := field.NewPDFField(lattice.D3Q19(), nx, ny, nz, 1, field.SoA)
		got.FillEquilibrium(7, 0, 0, 0)
		want.FillEquilibrium(7, 0, 0, 0)

		k.Sweep(src, got, flags)
		NewSplitTRT(op).Sweep(src, want, flags)

		gd, wd := got.Data(), want.Data()
		for j := range wd {
			if math.Float64bits(gd[j]) != math.Float64bits(wd[j]) {
				t.Fatal(diffReport(nx, ny, nz, j, gd[j], wd[j]))
			}
		}
	})
}

func diffReport(nx, ny, nz, idx int, got, want float64) string {
	return fmt.Sprintf("%dx%dx%d: data[%d] = %x, split kernel computes %x",
		nx, ny, nz, idx, math.Float64bits(got), math.Float64bits(want))
}
