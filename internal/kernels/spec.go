package kernels

import (
	"fmt"

	"walberla/internal/collide"
	"walberla/internal/field"
	"walberla/internal/lattice"
)

// Choice selects a compute kernel family; the names match the paper's
// Figure 3 series.
type Choice string

// Kernel choices.
const (
	ChoiceGenericSRT Choice = "SRT Generic"
	ChoiceGenericTRT Choice = "TRT Generic"
	ChoiceD3Q19SRT   Choice = "SRT D3Q19"
	ChoiceD3Q19TRT   Choice = "TRT D3Q19"
	ChoiceSplitSRT   Choice = "SRT SIMD"
	ChoiceSplitTRT   Choice = "TRT SIMD"
	ChoiceSparse     Choice = "TRT Interval" // sparse compressed-row kernel
)

// Spec describes a kernel to construct. The zero value of every field is
// a usable default (except Choice, which is required), so adding a new
// kernel parameter extends this struct instead of rippling a positional
// argument through every call site.
type Spec struct {
	// Choice selects the kernel family.
	Choice Choice
	// Stencil is the lattice model; nil means D3Q19, the model of all
	// simulations in the paper. Only the generic kernel choices support
	// other stencils.
	Stencil *lattice.Stencil
	// Tau is the relaxation time (stability requires > 0.5); zero means
	// 0.9.
	Tau float64
	// Magic is the TRT magic parameter; zero means 3/16.
	Magic float64
	// Flags is required by the sparse kernels (which precompute their
	// fluid cell structure from it) and ignored by the dense ones.
	Flags *field.FlagField
}

// New constructs the compute kernel described by the spec.
func New(spec Spec) (Kernel, error) {
	st := spec.Stencil
	if st == nil {
		st = lattice.D3Q19()
	}
	tau := spec.Tau
	if tau == 0 {
		tau = 0.9
	}
	magic := spec.Magic
	if magic == 0 {
		magic = collide.MagicParameter
	}
	srt := collide.NewSRT(tau)
	trt := collide.NewTRT(tau, magic)
	if st != lattice.D3Q19() &&
		spec.Choice != ChoiceGenericSRT && spec.Choice != ChoiceGenericTRT {
		return nil, fmt.Errorf("kernels: kernel %q supports D3Q19 only", spec.Choice)
	}
	switch spec.Choice {
	case ChoiceGenericSRT:
		return NewGeneric(st, srt), nil
	case ChoiceGenericTRT:
		return NewGeneric(st, trt), nil
	case ChoiceD3Q19SRT:
		return NewD3Q19SRT(srt), nil
	case ChoiceD3Q19TRT:
		return NewD3Q19TRT(trt), nil
	case ChoiceSplitSRT:
		return NewSplitSRT(srt), nil
	case ChoiceSplitTRT:
		return NewSplitTRT(trt), nil
	case ChoiceSparse:
		if spec.Flags == nil {
			return nil, fmt.Errorf("kernels: sparse kernel requires a flag field")
		}
		return NewSparseInterval(trt, spec.Flags), nil
	}
	return nil, fmt.Errorf("kernels: unknown kernel %q", spec.Choice)
}
