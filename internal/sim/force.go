package sim

import (
	"walberla/internal/field"
	"walberla/internal/lattice"
)

// forcing applies the first-order body force term 3 w_a (e_a . F) to the
// fluid cells of a block, injecting momentum density F per step.
//
// The per-direction increments depend only on the stencil and the
// (constant) force, so they are computed once per simulation instead of
// per cell, and directions with e_a . F = 0 are dropped up front — for an
// axis-aligned force that skips 9 of the 19 D3Q19 directions before the
// cell loop starts. Rows without any fluid cell are skipped after a cheap
// scan of the row's flags.
type forcing struct {
	dirs []lattice.Direction
	inc  []float64
}

// newForcing precomputes the non-zero PDF increments of the body force;
// a zero force yields an empty (no-op) forcing.
func newForcing(st *lattice.Stencil, force [3]float64) *forcing {
	f := &forcing{}
	if force == [3]float64{} {
		return f
	}
	for a := 0; a < st.Q; a++ {
		ef := float64(st.Cx[a])*force[0] + float64(st.Cy[a])*force[1] + float64(st.Cz[a])*force[2]
		if ef == 0 {
			continue
		}
		f.dirs = append(f.dirs, lattice.Direction(a))
		f.inc = append(f.inc, 3*st.W[a]*ef)
	}
	return f
}

// apply adds the force increments to every fluid cell of the block's Dst
// field.
func (f *forcing) apply(bd *BlockData) {
	if len(f.dirs) == 0 {
		return
	}
	flags := bd.Flags
	data := flags.Data()
	for z := 0; z < bd.Dst.Nz; z++ {
		for y := 0; y < bd.Dst.Ny; y++ {
			// Skip rows without fluid before touching any PDF data.
			row := data[flags.Index(0, y, z) : flags.Index(0, y, z)+bd.Dst.Nx]
			fluid := false
			for _, c := range row {
				if c == field.Fluid {
					fluid = true
					break
				}
			}
			if !fluid {
				continue
			}
			for x := 0; x < bd.Dst.Nx; x++ {
				if row[x] != field.Fluid {
					continue
				}
				for j, d := range f.dirs {
					bd.Dst.Set(x, y, z, d, bd.Dst.Get(x, y, z, d)+f.inc[j])
				}
			}
		}
	}
}
