package sim

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/testutil"
)

// healDomainHeader is the forest header a spare rank needs to stand by:
// the domain geometry of the shared shrinkForest scenario, without any
// block assignment (that is streamed on recruitment).
func healDomainHeader() *blockforest.BlockForest {
	return &blockforest.BlockForest{
		Domain:        blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		GridSize:      [3]int{2, 2, 1},
		CellsPerBlock: [3]int{4, 4, 4},
	}
}

func healConfig() ResilienceConfig {
	return ResilienceConfig{
		Mode:            RecoverHeal,
		CheckpointEvery: 2,
		MaxFailures:     4,
		BackoffBase:     time.Millisecond,
		BackoffMax:      10 * time.Millisecond,
	}
}

// runHealScenario executes a faulty run on `active` computing ranks plus
// `spares` parked ones under RecoverHeal. Ranks that finish the run —
// surviving actives and recruited spares — contribute their block bits
// and recovery stats; retired victims are counted. Every finisher must
// report the full world size.
func runHealScenario(t *testing.T, opts comm.Options, active, spares, steps, workers int, rc ResilienceConfig) (map[[3]int][]uint64, []RecoveryStats, int64) {
	t.Helper()
	testutil.CheckLeaks(t)
	var mu sync.Mutex
	got := make(map[[3]int][]uint64)
	var recovered []RecoveryStats
	var joined, retired atomic.Int64
	comm.RunWithOptions(active+spares, opts, func(c *comm.Comm) {
		cfg := cavityConfig()
		cfg.Workers = workers
		if c.WorldRank() >= active {
			s, m, join, err := RunSpareCtx(context.Background(), c, active, healDomainHeader(), cfg, steps, rc)
			if !join {
				if err != nil {
					t.Errorf("released spare %d: %v", c.WorldRank(), err)
				}
				return
			}
			joined.Add(1)
			if errors.Is(err, ErrRetired) {
				retired.Add(1)
				return
			}
			if err != nil {
				t.Errorf("recruited spare %d: %v", c.WorldRank(), err)
				return
			}
			if m.Ranks != active {
				t.Errorf("recruited spare %d: metrics report %d ranks, want %d", c.WorldRank(), m.Ranks, active)
			}
			collectBits(s, &mu, got)
			mu.Lock()
			recovered = append(recovered, m.Recovery)
			mu.Unlock()
			return
		}
		ac := c.GrowWorld(active)
		forest, err := blockforest.Distribute(ac, forestFor(ac.Rank(), shrinkForest(active)))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(ac, forest, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		m, err := s.RunResilient(steps, rc)
		if errors.Is(err, ErrRetired) {
			retired.Add(1)
			return
		}
		if err != nil {
			t.Errorf("rank %d: RunResilient: %v", c.WorldRank(), err)
			return
		}
		if m.Ranks != active {
			t.Errorf("rank %d: metrics report %d ranks, want %d after the heal", c.WorldRank(), m.Ranks, active)
		}
		collectBits(s, &mu, got)
		mu.Lock()
		recovered = append(recovered, m.Recovery)
		mu.Unlock()
	})
	if t.Failed() {
		t.Fatal("heal scenario failed")
	}
	if joined.Load() == 0 {
		t.Fatal("no spare was recruited")
	}
	return got, recovered, joined.Load()
}

// assertHealedFromBuddy checks the invariants of a single clean heal:
// exactly one heal event, served from the in-memory replica with zero
// disk traffic, no shrink, and a restored full-size world.
func assertHealedFromBuddy(t *testing.T, recovered []RecoveryStats) {
	t.Helper()
	for _, r := range recovered {
		if r.Heals != 1 {
			t.Errorf("finisher saw %d heals, want 1: %+v", r.Heals, r)
		}
		if r.Shrinks != 0 {
			t.Errorf("heal run shrank %d times, want 0: %+v", r.Shrinks, r)
		}
		if r.BuddyRestores+r.DiskRestores > 0 && (r.BuddyRestores != 1 || r.DiskRestores != 0) {
			t.Errorf("recovery was not served from the buddy replica: %+v", r)
		}
		if r.DiskReadsDuringRecovery != 0 {
			t.Errorf("pure buddy heal performed %d disk reads, want 0: %+v", r.DiskReadsDuringRecovery, r)
		}
		// The recruit entered after the failure, so only ranks that saw the
		// degraded world must account time for it.
		if r.FailuresDetected > 0 && r.DegradedTime <= 0 {
			t.Errorf("no degraded time recorded across a failure: %+v", r)
		}
	}
}

// TestHealRecoveryBitIdenticalAfterCrash is the tentpole acceptance test:
// a rank crashes mid-run, the survivors heal the world by recruiting the
// parked spare, the dead rank's buddy streams the replica blocks to the
// recruit — zero disk I/O — and the run finishes at full world size,
// bit-identical to an uninterrupted run, across intra-rank worker counts.
func TestHealRecoveryBitIdenticalAfterCrash(t *testing.T) {
	const steps, victim = 8, 1
	for _, workers := range []int{1, 2, 4, 7} {
		t.Run(workerName(workers), func(t *testing.T) {
			want := shrinkReference(t, 3, steps, workers)
			opts := comm.Options{Faults: &comm.FaultPlan{Seed: 11, Crashes: []comm.CrashSpec{{Rank: victim, Step: 5}}}}
			got, recovered, joined := runHealScenario(t, opts, 3, 1, steps, workers, healConfig())
			assertBitsEqual(t, got, want)
			assertHealedFromBuddy(t, recovered)
			if joined != 1 {
				t.Errorf("%d spares joined, want 1", joined)
			}
		})
	}
}

// TestHealRecoveryBitIdenticalAfterSilentFailure exercises healing after
// a silent hang: the victim goes dark, the survivors declare it dead by
// timeout and recruit a spare in its place. Two spares are provisioned —
// timeout-based accusation may, in principle, first name a healthy rank,
// which then also gets replaced; either way the run must finish at full
// world size and bit-identical.
func TestHealRecoveryBitIdenticalAfterSilentFailure(t *testing.T) {
	const steps, victim = 8, 1
	for _, workers := range []int{1, 2, 4, 7} {
		t.Run(workerName(workers), func(t *testing.T) {
			want := shrinkReference(t, 3, steps, workers)
			opts := comm.Options{
				Faults:      &comm.FaultPlan{Seed: 13, Hangs: []comm.CrashSpec{{Rank: victim, Step: 5}}},
				FailTimeout: 500 * time.Millisecond,
			}
			got, recovered, _ := runHealScenario(t, opts, 3, 2, steps, workers, healConfig())
			assertBitsEqual(t, got, want)
			for _, r := range recovered {
				if r.Heals == 0 {
					t.Errorf("finisher saw no heal: %+v", r)
				}
				if r.DiskReadsDuringRecovery != 0 {
					t.Errorf("heal after a silent failure read disk %d times, want 0: %+v", r.DiskReadsDuringRecovery, r)
				}
			}
		})
	}
}

// TestNetHealRecoveryCrash runs the full healing pipeline over real
// sockets: the spare has live connections (and heartbeats) while parked,
// joins on the crash, receives the streamed state over the wire codecs
// and finishes bit-identical at full world size.
func TestNetHealRecoveryCrash(t *testing.T) {
	const steps, victim = 8, 1
	for _, workers := range []int{1, 2, 4, 7} {
		t.Run(workerName(workers), func(t *testing.T) {
			want := shrinkReference(t, 3, steps, workers)
			opts := comm.Options{
				Net:         socketOpts(),
				Faults:      &comm.FaultPlan{Seed: 11, Crashes: []comm.CrashSpec{{Rank: victim, Step: 5}}},
				FailTimeout: 2 * time.Second,
			}
			got, recovered, joined := runHealScenario(t, opts, 3, 1, steps, workers, healConfig())
			assertBitsEqual(t, got, want)
			assertHealedFromBuddy(t, recovered)
			if joined != 1 {
				t.Errorf("%d spares joined, want 1", joined)
			}
		})
	}
}

// TestNetHealRecoverySilentHang is the socket-transport variant of the
// silent-failure heal: the hung rank is accused by the connection-level
// failure detector, and a spare replaces it over the wire.
func TestNetHealRecoverySilentHang(t *testing.T) {
	const steps, victim = 8, 1
	for _, workers := range []int{1, 2, 4, 7} {
		t.Run(workerName(workers), func(t *testing.T) {
			want := shrinkReference(t, 3, steps, workers)
			opts := comm.Options{
				Net:         socketOpts(),
				Faults:      &comm.FaultPlan{Seed: 13, Hangs: []comm.CrashSpec{{Rank: victim, Step: 5}}},
				FailTimeout: 2 * time.Second,
			}
			got, recovered, _ := runHealScenario(t, opts, 3, 2, steps, workers, healConfig())
			assertBitsEqual(t, got, want)
			for _, r := range recovered {
				if r.Heals == 0 {
					t.Errorf("finisher saw no heal: %+v", r)
				}
				if r.DiskReadsDuringRecovery != 0 {
					t.Errorf("heal after a hang read disk %d times, want 0: %+v", r.DiskReadsDuringRecovery, r)
				}
			}
		})
	}
}

// TestHealSparePoolExhausted drives the degradation path: two permanent
// failures against a single spare. The first heal restores full size; the
// second failure finds the pool empty and falls back to a plain shrink —
// the run finishes on two ranks, still bit-identical.
func TestHealSparePoolExhausted(t *testing.T) {
	testutil.CheckLeaks(t)
	const active, spares, steps = 3, 1, 10
	want := shrinkReference(t, active, steps, 1)
	var mu sync.Mutex
	got := make(map[[3]int][]uint64)
	var recovered []RecoveryStats
	var joined atomic.Int64
	opts := comm.Options{Faults: &comm.FaultPlan{Seed: 17, Crashes: []comm.CrashSpec{
		{Rank: 1, Step: 4},
		{Rank: 0, Step: 7},
	}}}
	comm.RunWithOptions(active+spares, opts, func(c *comm.Comm) {
		rc := healConfig()
		if c.WorldRank() >= active {
			s, m, join, err := RunSpareCtx(context.Background(), c, active, healDomainHeader(), cavityConfig(), steps, rc)
			if !join {
				t.Errorf("spare %d was released, want recruited", c.WorldRank())
				return
			}
			joined.Add(1)
			if err != nil {
				t.Errorf("recruited spare %d: %v", c.WorldRank(), err)
				return
			}
			if m.Ranks != active-1 {
				t.Errorf("recruit finished on %d ranks, want %d after the fallback shrink", m.Ranks, active-1)
			}
			collectBits(s, &mu, got)
			mu.Lock()
			recovered = append(recovered, m.Recovery)
			mu.Unlock()
			return
		}
		ac := c.GrowWorld(active)
		forest, err := blockforest.Distribute(ac, forestFor(ac.Rank(), shrinkForest(active)))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(ac, forest, cavityConfig())
		if err != nil {
			t.Error(err)
			return
		}
		m, err := s.RunResilient(steps, rc)
		if errors.Is(err, ErrRetired) {
			return
		}
		if err != nil {
			t.Errorf("rank %d: RunResilient: %v", c.WorldRank(), err)
			return
		}
		if m.Ranks != active-1 {
			t.Errorf("rank %d finished on %d ranks, want %d after the fallback shrink", c.WorldRank(), m.Ranks, active-1)
		}
		collectBits(s, &mu, got)
		mu.Lock()
		recovered = append(recovered, m.Recovery)
		mu.Unlock()
	})
	if t.Failed() {
		t.FailNow()
	}
	assertBitsEqual(t, got, want)
	if joined.Load() != 1 {
		t.Fatalf("%d spares joined, want 1", joined.Load())
	}
	for _, r := range recovered {
		if r.Heals != 1 || r.Shrinks != 1 {
			t.Errorf("finisher saw %d heals and %d shrinks, want 1 and 1: %+v", r.Heals, r.Shrinks, r)
		}
	}
}

// TestHealDiskFallback drives the disk rung of healing directly: with
// every in-memory generation invalidated (metadata retained), the heal
// must restore the survivor from the newest checkpoint set and stream the
// dead rank's state — read from the same set — to the recruit.
func TestHealDiskFallback(t *testing.T) {
	testutil.CheckLeaks(t)
	const active, steps = 2, 6
	const newestSet = 4 // checkpoint sets land at steps 2 and 4
	dir := t.TempDir()
	want := shrinkReference(t, active, steps, 1)
	var mu sync.Mutex
	got := make(map[[3]int][]uint64)
	retiredCh := make(chan struct{})
	comm.Run(active+1, func(c *comm.Comm) {
		rc := ResilienceConfig{Mode: RecoverHeal, CheckpointEvery: 2, Dir: dir, BackoffBase: time.Millisecond, BackoffMax: time.Millisecond}
		rc.Validate()
		if c.WorldRank() >= active {
			s, m, join, err := RunSpareCtx(context.Background(), c, active, healDomainHeader(), cavityConfig(), steps, rc)
			if !join {
				t.Error("spare was released, want recruited")
				return
			}
			if err != nil {
				t.Errorf("recruited spare: %v", err)
				return
			}
			if m.Recovery.Heals != 1 {
				t.Errorf("recruit recorded %d heals, want 1", m.Recovery.Heals)
			}
			collectBits(s, &mu, got)
			return
		}
		ac := c.GrowWorld(active)
		forest, err := blockforest.Distribute(ac, forestFor(ac.Rank(), shrinkForest(active)))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(ac, forest, cavityConfig())
		if err != nil {
			t.Error(err)
			return
		}
		// Fault-free run under shrink mode to produce the disk sets and the
		// retained replica metadata without releasing the parked spare.
		rcSeed := rc
		rcSeed.Mode = RecoverShrink
		if _, err := s.RunResilient(steps, rcSeed); err != nil {
			t.Errorf("rank %d: seeding run: %v", c.WorldRank(), err)
			return
		}
		// Invalidate the in-memory generations, keeping only the metadata —
		// as if the replicas were too stale to agree on.
		s.buddy.own[0].step, s.buddy.own[1].step = -1, -1
		s.buddy.replica[0], s.buddy.replica[1] = nil, nil

		if c.WorldRank() == 1 {
			// The victim: declare the failure (waking the parked spare into
			// the rendezvous — Retire alone would not), then leave.
			c.Accuse(c.WorldRank(), "retiring for the disk-rung test")
			c.Retire()
			close(retiredCh)
			return
		}
		<-retiredCh
		c.MarkDead(c.WorldRankOf(1))
		c.Recover()
		var rec RecoveryStats
		restored, err := s.healRestoreAttempt([]int{c.WorldRankOf(1)}, active, rc, &rec, time.Now())
		if err != nil {
			t.Errorf("healRestoreAttempt: %v", err)
			return
		}
		if restored != newestSet {
			t.Errorf("restored step %d, want %d (the newest disk set)", restored, newestSet)
		}
		if rec.DiskRestores != 1 || rec.BuddyRestores != 0 {
			t.Errorf("heal did not take the disk rung: %+v", rec)
		}
		if rec.Heals != 1 {
			t.Errorf("survivor recorded %d heals, want 1", rec.Heals)
		}
		if s.Comm.Size() != active {
			t.Errorf("post-heal communicator size %d, want %d", s.Comm.Size(), active)
		}
		// Mirror the driver tail so the recruit's shared loop completes.
		if _, err := s.runResilientLoop(context.Background(), steps, rc, active, int(restored), rec); err != nil {
			t.Errorf("post-heal driver: %v", err)
			return
		}
		collectBits(s, &mu, got)
	})
	if t.Failed() {
		t.FailNow()
	}
	assertBitsEqual(t, got, want)
}

// TestRunSpareRejectsWrongMode: the spare API only makes sense under
// RecoverHeal and must refuse anything else up front.
func TestRunSpareRejectsWrongMode(t *testing.T) {
	comm.Run(1, func(c *comm.Comm) {
		_, _, _, err := RunSpareCtx(context.Background(), c, 1, healDomainHeader(), cavityConfig(), 1, ResilienceConfig{Mode: RecoverShrink})
		if err == nil {
			t.Error("RunSpareCtx accepted RecoverShrink, want an error")
		}
	})
}

// TestCancelDuringRecoveryBackoff is the satellite regression test for
// context-aware recovery: a failure sends every rank into a deliberately
// huge backoff, the context is cancelled mid-sleep, and the run must exit
// with ErrInterrupted promptly instead of finishing the backoff ladder.
func TestCancelDuringRecoveryBackoff(t *testing.T) {
	testutil.CheckLeaks(t)
	const steps = 1000
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(500*time.Millisecond, cancel)
	start := time.Now()
	opts := comm.Options{Faults: &comm.FaultPlan{Seed: 5, Crashes: []comm.CrashSpec{{Rank: 1, Step: 2}}}}
	comm.RunWithOptions(2, opts, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), cavityForest()))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, cavityConfig())
		if err != nil {
			t.Error(err)
			return
		}
		_, err = s.RunResilientCtx(ctx, steps, ResilienceConfig{
			Mode:        RecoverRewind,
			MaxFailures: 4,
			BackoffBase: time.Hour,
			BackoffMax:  time.Hour,
		})
		if !errors.Is(err, ErrInterrupted) {
			t.Errorf("rank %d: err = %v, want ErrInterrupted", c.Rank(), err)
		}
	})
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v — the recovery backoff ignored the context", elapsed)
	}
}
