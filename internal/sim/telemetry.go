package sim

import (
	"time"

	"walberla/internal/perfmodel"
	"walberla/internal/telemetry"
)

// Telemetry wiring of the step pipeline (see docs/TELEMETRY.md). A
// simulation configured with Config.Tracer/Config.Metrics records:
//
//   - driver-lane spans for the four split-phase step phases plus the
//     whole step, checkpointing, buddy replication and the recovery
//     timeline;
//   - worker-lane spans for each block's boundary handling and
//     collide-stream sweep and for every pack/unpack/local-copy task —
//     the per-worker utilization the load-imbalance factor is computed
//     from;
//   - registry counters for per-phase nanoseconds, checkpoint/replica
//     bytes and failures, and gauges for mailbox occupancy and worker
//     imbalance.
//
// All handles are pre-resolved at construction and nil-safe, so an
// untraced simulation pays one branch per recording site and a traced
// steady-state Step() still performs zero heap allocations
// (TestStepZeroAllocTraced).

// simTel bundles the pre-resolved telemetry handles of one rank.
type simTel struct {
	tracer *telemetry.Tracer
	driver *telemetry.Lane

	postNs     *telemetry.Counter
	interiorNs *telemetry.Counter
	waitNs     *telemetry.Counter
	frontierNs *telemetry.Counter
	boundaryNs *telemetry.Counter
	collideNs  *telemetry.Counter
	steps      *telemetry.Counter

	checkpointBytes *telemetry.Counter
	replicaBytes    *telemetry.Counter
	failures        *telemetry.Counter

	imbalance   *telemetry.Gauge
	mboxPending *telemetry.Gauge
	mboxHigh    *telemetry.Gauge

	mttrMs     *telemetry.Gauge
	worldSize  *telemetry.Gauge
	degradedMs *telemetry.Gauge
}

// resolveSimTel registers the simulation's metrics and caches the lane
// handles. Both arguments may be nil (the respective half stays
// disabled).
func resolveSimTel(tr *telemetry.Tracer, reg *telemetry.Registry) simTel {
	return simTel{
		tracer:          tr,
		driver:          tr.Driver(),
		postNs:          reg.Counter("sim.phase.exchange_post_ns"),
		interiorNs:      reg.Counter("sim.phase.interior_sweep_ns"),
		waitNs:          reg.Counter("sim.phase.exchange_wait_ns"),
		frontierNs:      reg.Counter("sim.phase.frontier_sweep_ns"),
		boundaryNs:      reg.Counter("sim.phase.boundary_ns"),
		collideNs:       reg.Counter("sim.phase.collide_stream_ns"),
		steps:           reg.Counter("sim.steps"),
		checkpointBytes: reg.Counter("sim.checkpoint_bytes"),
		replicaBytes:    reg.Counter("sim.replica_bytes"),
		failures:        reg.Counter("sim.failures_detected"),
		imbalance:       reg.Gauge("sim.load_imbalance"),
		mboxPending:     reg.Gauge("comm.mailbox_pending"),
		mboxHigh:        reg.Gauge("comm.mailbox_high_water"),
		mttrMs:          reg.Gauge("recovery.mttr_ms"),
		worldSize:       reg.Gauge("recovery.world_size"),
		degradedMs:      reg.Gauge("recovery.degraded_ms"),
	}
}

// worker returns the span lane of the given pool worker (nil when
// untraced).
func (t *simTel) worker(k int) *telemetry.Lane { return t.tracer.Worker(k) }

// publishGauges refreshes the slow-moving gauges; called from metric
// gathering, not the per-step hot path.
func (s *Simulation) publishGauges() {
	t := &s.tel
	if t.tracer != nil {
		t.imbalance.Set(t.tracer.LoadImbalance())
	}
	mb := s.Comm.MailboxStats()
	t.mboxPending.Set(float64(mb.Pending))
	t.mboxHigh.Set(float64(mb.HighWater))
}

// Tracer returns the tracer the simulation records into (nil when
// untraced).
func (s *Simulation) Tracer() *telemetry.Tracer { return s.tel.tracer }

// PhaseBreakdown returns this rank's accumulated wall-clock phase times
// since the last timer reset, keyed by the telemetry exporter's phase
// names.
func (s *Simulation) PhaseBreakdown() map[string]float64 {
	o := s.overlap
	return map[string]float64{
		telemetry.PhaseExchangePost.String():  o.Post.Seconds(),
		telemetry.PhaseInteriorSweep.String(): o.Interior.Seconds(),
		telemetry.PhaseExchangeWait.String():  o.Wait.Seconds(),
		telemetry.PhaseFrontierSweep.String(): o.Frontier.Seconds(),
	}
}

// modelClasses maps the configured kernel onto the perfmodel taxonomy.
// KernelAuto is resolved as a dense block would be — the hot path the
// models predict.
func (c *Config) modelClasses() (perfmodel.KernelClass, perfmodel.CollisionClass) {
	kc := c.Kernel
	if kc == KernelAuto {
		kc = c.resolveKernel(1.0)
	}
	k := perfmodel.KernelGeneric
	switch kc {
	case KernelD3Q19SRT, KernelD3Q19TRT:
		k = perfmodel.KernelD3Q19
	case KernelSplitSRT, KernelSplitTRT, KernelSparse:
		k = perfmodel.KernelSIMD
	}
	coll := perfmodel.CollisionSRT
	switch kc {
	case KernelGenericTRT, KernelD3Q19TRT, KernelSplitTRT, KernelSparse:
		coll = perfmodel.CollisionTRT
	}
	return k, coll
}

// RooflineReport builds the live measured-vs-model comparison of this
// rank's run since the last timer reset: per-phase wall times and MLUPS
// from the step-loop timers against the perfmodel kernel prediction and
// bandwidth ceiling for the given machine (nil selects the SuperMUC
// socket model). The kernel time is the per-block boundary+sweep CPU
// time summed over workers, divided by the worker count — the wall-clock
// kernel time the ECM/roofline models predict.
func (s *Simulation) RooflineReport(machine *perfmodel.Machine) telemetry.RooflineReport {
	k, coll := s.Config.modelClasses()
	o := s.overlap
	wall := (o.Post + o.Interior + o.Wait + o.Frontier).Seconds()
	workers := s.pool.workers
	if workers < 1 {
		workers = 1
	}
	kernelSec := (s.boundaryTime + s.computeTime).Seconds() / float64(workers)
	return telemetry.BuildRooflineReport(telemetry.RooflineInput{
		FluidUpdates:       float64(s.LocalFluidCells()) * float64(s.steps),
		WallSeconds:        wall,
		KernelSeconds:      kernelSec,
		PhaseSecondsByName: s.PhaseBreakdown(),
		Machine:            machine,
		Kernel:             k,
		Collision:          coll,
		Cores:              workers,
		SMTWays:            1,
		LoadImbalance:      s.tel.tracer.LoadImbalance(),
	})
}

// stepPhases records one completed step's phase spans and counters.
// Durations are the already-measured phase times of Step, so untraced
// runs take no extra clock reads here.
func (t *simTel) stepPhases(step int, stepStart int64, post, interior, wait, frontier time.Duration) {
	t.postNs.Add(int64(post))
	t.interiorNs.Add(int64(interior))
	t.waitNs.Add(int64(wait))
	t.frontierNs.Add(int64(frontier))
	t.steps.Inc()
	d := t.driver
	if d == nil {
		return
	}
	// Reconstruct the phase boundaries from the step start and the
	// measured durations instead of stamping each one live — same data,
	// fewer clock reads.
	at := stepStart
	d.SpanAt(telemetry.PhaseExchangePost, step, 0, at, at+int64(post))
	at += int64(post)
	d.SpanAt(telemetry.PhaseInteriorSweep, step, 0, at, at+int64(interior))
	at += int64(interior)
	d.SpanAt(telemetry.PhaseExchangeWait, step, 0, at, at+int64(wait))
	at += int64(wait)
	d.SpanAt(telemetry.PhaseFrontierSweep, step, 0, at, at+int64(frontier))
	d.Span(telemetry.PhaseStep, step, 0, stepStart)
}
