package sim

import (
	"fmt"
	"sort"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/field"
)

// Dynamic load balancing — the extension the paper names as future work
// ("This will also require dynamic load balancing"). Blocks migrate
// between ranks at runtime with their complete state (flag field and PDF
// field including ghost layers), the neighborhood views are updated, and
// the exchange plan is rebuilt. The new assignment is computed from
// either the static workloads (fluid cells) or the measured per-block
// compute times, cut along the Morton curve exactly like the initial
// static balancing.

// migration tags live in the user tag space above any ghost-exchange tag
// (which is bounded by numTrees * 27).
const (
	tagMigrateCount = 1 << 30
	tagMigrateBlock = 1<<30 + 1
)

// migratedBlock carries one block's complete state to its new owner. The
// sender relinquishes the block, so sharing the underlying arrays through
// the in-process message is safe.
type migratedBlock struct {
	Block    blockforest.Block
	Workload float64
	Layout   field.Layout
	SrcData  []float64
	DstData  []float64
	Flags    []field.CellType
}

// Workloads returns this rank's per-block workloads: the measured kernel
// compute time per block if available (after at least one timed step),
// else the static fluid cell count.
func (s *Simulation) Workloads(useMeasured bool) map[[3]int]float64 {
	out := make(map[[3]int]float64, len(s.Blocks))
	for _, bd := range s.Blocks {
		if useMeasured && bd.ComputeTime > 0 {
			out[bd.Block.Coord] = bd.ComputeTime.Seconds()
		} else {
			out[bd.Block.Coord] = float64(bd.Fluid)
		}
	}
	return out
}

// RebalanceByWorkload computes a fresh Morton-curve assignment from the
// current workloads (measured compute times when useMeasured is set) and
// migrates blocks accordingly. Collective: every rank must call it at the
// same point of the time loop.
func (s *Simulation) RebalanceByWorkload(useMeasured bool) error {
	type entry struct {
		Coord    [3]int
		Workload float64
	}
	var mine []entry
	for c, w := range s.Workloads(useMeasured) {
		mine = append(mine, entry{c, w})
	}
	gathered := s.Comm.Gather(0, mine)
	var assignment map[[3]int]int
	if s.Comm.Rank() == 0 {
		var all []entry
		for _, part := range gathered {
			if part != nil {
				all = append(all, part.([]entry)...)
			}
		}
		sort.Slice(all, func(i, j int) bool {
			return blockforest.MortonKey(all[i].Coord) < blockforest.MortonKey(all[j].Coord)
		})
		var total float64
		for _, e := range all {
			total += e.Workload
		}
		ranks := s.Comm.Size()
		target := total / float64(ranks)
		assignment = make(map[[3]int]int, len(all))
		rank := 0
		var acc float64
		count := 0
		for _, e := range all {
			// Cut to the next rank when the block's midpoint crosses the
			// per-rank target (never leaving a rank empty while blocks
			// remain): robust against skewed measured workloads, where
			// waiting for acc >= target piles everything on rank 0.
			if rank < ranks-1 && count > 0 && acc+e.Workload/2 >= target {
				rank++
				acc = 0
				count = 0
			}
			assignment[e.Coord] = rank
			acc += e.Workload
			count++
		}
	}
	assignment = s.Comm.Bcast(0, assignment).(map[[3]int]int)
	return s.Rebalance(assignment)
}

// Rebalance migrates blocks to match the given complete assignment
// (coordinate of every block in the simulation to its new rank) and
// rebuilds the local data structures. Collective.
func (s *Simulation) Rebalance(assignment map[[3]int]int) error {
	me := s.Comm.Rank()
	ranks := s.Comm.Size()

	// Partition local blocks into kept and outgoing.
	var kept []*BlockData
	outgoing := map[int][]*BlockData{}
	for _, bd := range s.Blocks {
		newRank, ok := assignment[bd.Block.Coord]
		if !ok {
			return fmt.Errorf("sim: assignment misses local block %v", bd.Block.Coord)
		}
		if newRank < 0 || newRank >= ranks {
			return fmt.Errorf("sim: block %v assigned to invalid rank %d", bd.Block.Coord, newRank)
		}
		if newRank == me {
			kept = append(kept, bd)
		} else {
			outgoing[newRank] = append(outgoing[newRank], bd)
		}
	}

	// Announce per-destination counts (alltoall), then ship the blocks.
	counts := make([]any, ranks)
	for r := 0; r < ranks; r++ {
		counts[r] = len(outgoing[r])
	}
	incomingCounts := s.Comm.Alltoall(counts)
	for dst, blocks := range outgoing {
		for _, bd := range blocks {
			b := *bd.Block // copy; ranks inside are updated by the receiver
			s.Comm.Send(dst, tagMigrateBlock, &migratedBlock{
				Block:    b,
				Workload: bd.Block.Workload,
				Layout:   bd.Src.Layout,
				SrcData:  bd.Src.Data(),
				DstData:  bd.Dst.Data(),
				Flags:    bd.Flags.Data(),
			})
		}
	}
	expect := 0
	for r := 0; r < ranks; r++ {
		if r != me {
			expect += incomingCounts[r].(int)
		}
	}
	for i := 0; i < expect; i++ {
		payload, _ := s.Comm.Recv(comm.AnySource, tagMigrateBlock)
		mb := payload.(*migratedBlock)
		bd, err := s.adoptBlock(mb)
		if err != nil {
			return err
		}
		kept = append(kept, bd)
	}

	// Update neighborhood ranks everywhere and rebuild the local indexes.
	sort.Slice(kept, func(i, j int) bool {
		return blockforest.MortonKey(kept[i].Block.Coord) < blockforest.MortonKey(kept[j].Block.Coord)
	})
	s.Blocks = kept
	s.byCoord = make(map[[3]int]*BlockData, len(kept))
	var forestBlocks []*blockforest.Block
	for _, bd := range kept {
		for i := range bd.Block.Neighbors {
			n := &bd.Block.Neighbors[i]
			newRank, ok := assignment[n.Coord]
			if !ok {
				return fmt.Errorf("sim: assignment misses neighbor block %v", n.Coord)
			}
			n.Rank = newRank
		}
		s.byCoord[bd.Block.Coord] = bd
		forestBlocks = append(forestBlocks, bd.Block)
	}
	s.Forest.Blocks = forestBlocks
	s.rebuildPlan(true)
	// Migration invalidates ghost layers; synchronize before stepping on.
	return s.exchangeGhostLayers()
}

// adoptBlock reconstructs the runtime state of a migrated block on the
// receiving rank.
func (s *Simulation) adoptBlock(mb *migratedBlock) (*BlockData, error) {
	b := mb.Block
	cells := b.Cells
	flags := field.NewFlagField(cells[0], cells[1], cells[2], 1)
	copy(flags.Data(), mb.Flags)
	k, choice, err := s.Config.blockKernel(flags)
	if err != nil {
		return nil, err
	}
	src := field.NewPDFField(s.Stencil, cells[0], cells[1], cells[2], 1, mb.Layout)
	copy(src.Data(), mb.SrcData)
	dst := src.CopyShape()
	copy(dst.Data(), mb.DstData)
	if k.Layout() != mb.Layout {
		// The sender ran the block in a different layout (e.g. a forced
		// layout changed between runs); transpose into the kernel's.
		src = src.ConvertLayout(k.Layout())
		dst = dst.ConvertLayout(k.Layout())
	}
	fluid := flags.Count(field.Fluid)
	bd := &BlockData{
		Block:      &b,
		Src:        src,
		Dst:        dst,
		Flags:      flags,
		Kernel:     k,
		Boundary:   newBoundarySweep(s, flags),
		Fluid:      fluid,
		sweepFlags: denseSweepFlags(choice, flags, fluid),
	}
	return bd, nil
}

// RankLoad reports this rank's current share of the global workload (sum
// of fluid cells) — a convenience for rebalancing studies.
func (s *Simulation) RankLoad() (local, max, total int64) {
	local = s.LocalFluidCells()
	max = s.Comm.AllreduceInt64(local, comm.Max[int64])
	total = s.Comm.AllreduceInt64(local, comm.Sum[int64])
	return local, max, total
}
