package sim

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/boundary"
	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/lattice"
)

// obstacleCavityFlags is the cavity setup with a solid box inside every
// block at grid x == 0, pushing those blocks' fluid fraction below
// SparseFluidThreshold: under KernelAuto half the blocks run the interval
// sparse kernel and half the dense split kernel — the mixed-kernel plan
// the layout matrix must keep bit-identical.
func obstacleCavityFlags(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
	cavityFlags(b, forest, flags)
	if b.Coord[0] != 0 {
		return
	}
	for z := 1; z < 3; z++ {
		for y := 1; y < 3; y++ {
			for x := 1; x < 4; x++ {
				flags.Set(x, y, z, field.NoSlip)
			}
		}
	}
}

// layoutForest is the two-rank decomposition of the layout matrix tests.
func layoutForest(ranks int) *blockforest.SetupForest {
	domain := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
	f := blockforest.NewSetupForest(domain, [3]int{2, 2, 1}, [3]int{6, 6, 6}, [3]bool{})
	f.BalanceMorton(ranks)
	return f
}

// layoutConfig is the solver configuration of the layout matrix tests.
func layoutConfig(layout LayoutChoice, workers int) Config {
	return Config{
		Layout:     layout,
		Workers:    workers,
		Tau:        0.8,
		Boundary:   boundary.Config{WallVelocity: [3]float64{0.05, 0, 0}},
		SetupFlags: obstacleCavityFlags,
	}
}

// runLayoutCavity runs the obstacle cavity and returns its FieldHash (the
// layout-independent state fingerprint).
func runLayoutCavity(t *testing.T, layout LayoutChoice, workers, steps int, opts comm.Options) uint64 {
	t.Helper()
	const ranks = 2
	var hash uint64
	comm.RunWithOptions(ranks, opts, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), layoutForest(ranks)))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, layoutConfig(layout, workers))
		if err != nil {
			t.Error(err)
			return
		}
		mustRun(t, s, steps)
		h, err := s.FieldHash()
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			hash = h
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	return hash
}

// TestLayoutBitIdentityMatrix: the same mixed dense/sparse cavity yields
// the same field hash for every layout × worker count × transport
// combination — AoS and SoA kernels are floating-point equivalent, the
// exchange is layout-independent, and the worker pool execution order
// never changes results.
func TestLayoutBitIdentityMatrix(t *testing.T) {
	const steps = 12
	want := runLayoutCavity(t, LayoutSoA, 1, steps, comm.Options{})
	for _, layout := range []LayoutChoice{LayoutAoS, LayoutSoA} {
		for _, workers := range []int{1, 2, 4, 7} {
			for _, transport := range []string{"inproc", "unix"} {
				name := fmt.Sprintf("%s/workers=%d/%s", layout, workers, transport)
				opts := comm.Options{}
				if transport == "unix" {
					opts.Net = &comm.NetOptions{Network: "unix"}
				}
				got := runLayoutCavity(t, layout, workers, steps, opts)
				if got != want {
					t.Errorf("%s: field hash %016x, want %016x", name, got, want)
				}
			}
		}
	}
}

// TestLayoutAutoKernelSelection verifies the per-block plan-build
// selection: dense blocks get the split (SoA SIMD) kernel with a nil
// sweep flag field (the dense fast path), obstacle blocks fall below the
// fluid-fraction threshold and get the interval sparse kernel, and a
// forced AoS layout pins the D3Q19 kernel family instead.
func TestLayoutAutoKernelSelection(t *testing.T) {
	check := func(layout LayoutChoice, wantDense, wantSparse string, denseFlagsNil bool) {
		t.Helper()
		comm.Run(1, func(c *comm.Comm) {
			forest, err := blockforest.Distribute(c, forestFor(c.Rank(), layoutForest(1)))
			if err != nil {
				t.Error(err)
				return
			}
			s, err := New(c, forest, layoutConfig(layout, 1))
			if err != nil {
				t.Error(err)
				return
			}
			for _, bd := range s.Blocks {
				name := bd.Kernel.Name()
				if bd.Block.Coord[0] == 0 {
					if name != wantSparse {
						t.Errorf("layout %s: obstacle block %v kernel %q, want %q", layout, bd.Block.Coord, name, wantSparse)
					}
					if bd.sweepFlags == nil {
						t.Errorf("layout %s: obstacle block %v has nil sweep flags", layout, bd.Block.Coord)
					}
				} else {
					if name != wantDense {
						t.Errorf("layout %s: dense block %v kernel %q, want %q", layout, bd.Block.Coord, name, wantDense)
					}
					if gotNil := bd.sweepFlags == nil; gotNil != denseFlagsNil {
						t.Errorf("layout %s: dense block %v sweep flags nil = %v, want %v", layout, bd.Block.Coord, gotNil, denseFlagsNil)
					}
				}
			}
		})
	}
	check(LayoutAuto, "TRT SIMD", "TRT Interval", true)
	check(LayoutSoA, "TRT SIMD", "TRT Interval", true)
	// Forced AoS: the sparse interval kernel is SoA-only, so every block
	// runs the D3Q19-specialized kernel (obstacle blocks with flags).
	check(LayoutAoS, "TRT D3Q19", "TRT D3Q19", true)
}

// TestResilientReplayLayoutBitIdentity runs the obstacle cavity under the
// fault-tolerant driver with an injected crash and rewind recovery, in
// both layouts, and demands the exact fault-free hash: checkpoint
// encode/decode and replay are layout-independent.
func TestResilientReplayLayoutBitIdentity(t *testing.T) {
	const steps = 10
	const ranks = 2
	want := runLayoutCavity(t, LayoutSoA, 1, steps, comm.Options{})
	for _, layout := range []LayoutChoice{LayoutAoS, LayoutSoA} {
		dir := t.TempDir()
		var hash uint64
		opts := comm.Options{Faults: &comm.FaultPlan{Seed: 5, Crashes: []comm.CrashSpec{{Rank: 1, Step: 5}}}}
		comm.RunWithOptions(ranks, opts, func(c *comm.Comm) {
			forest, err := blockforest.Distribute(c, forestFor(c.Rank(), layoutForest(ranks)))
			if err != nil {
				t.Error(err)
				return
			}
			s, err := New(c, forest, layoutConfig(layout, 2))
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := s.RunResilient(steps, ResilienceConfig{
				CheckpointEvery: 2,
				Dir:             dir,
				MaxFailures:     4,
				BackoffBase:     time.Millisecond,
				BackoffMax:      10 * time.Millisecond,
			}); err != nil {
				t.Errorf("rank %d: RunResilient: %v", c.Rank(), err)
				return
			}
			h, err := s.FieldHash()
			if err != nil {
				t.Error(err)
				return
			}
			if c.Rank() == 0 {
				hash = h
			}
		})
		if t.Failed() {
			t.FailNow()
		}
		if hash != want {
			t.Errorf("layout %s: resilient replay hash %016x, want fault-free %016x", layout, hash, want)
		}
	}
}

// TestMixedLayoutShrinkRecovery is the regression test for the
// single-layout-per-world assumption the restore paths used to make: a
// three-rank world where the victim runs AoS fields while the survivors
// run SoA. The survivor adopting the dead rank's blocks must decode the
// replica in its stored (AoS) layout and transpose it into its own
// kernels' layout — and finish bit-identical to a fault-free run.
func TestMixedLayoutShrinkRecovery(t *testing.T) {
	const steps = 10
	const victim = 1
	layoutOf := func(rank int) LayoutChoice {
		if rank == victim {
			return LayoutAoS
		}
		return LayoutSoA
	}

	// Reference: the same mixed-layout world, fault-free.
	var want uint64
	comm.Run(3, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), layoutForest(3)))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, layoutConfig(layoutOf(c.Rank()), 1))
		if err != nil {
			t.Error(err)
			return
		}
		mustRun(t, s, steps)
		h, err := s.FieldHash()
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			want = h
		}
	})
	if t.Failed() {
		t.Fatal("mixed-layout reference run failed")
	}

	var mu sync.Mutex
	var hashes []uint64
	var stats []RecoveryStats
	opts := comm.Options{Faults: &comm.FaultPlan{Seed: 17, Crashes: []comm.CrashSpec{{Rank: victim, Step: 5}}}}
	comm.RunWithOptions(3, opts, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), layoutForest(3)))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, layoutConfig(layoutOf(c.Rank()), 1))
		if err != nil {
			t.Error(err)
			return
		}
		m, err := s.RunResilient(steps, ResilienceConfig{
			CheckpointEvery: 2,
			Mode:            RecoverShrink,
			MaxFailures:     2,
			BackoffBase:     time.Millisecond,
			BackoffMax:      10 * time.Millisecond,
		})
		if c.Rank() == victim {
			if !errors.Is(err, ErrRetired) {
				t.Errorf("victim: err = %v, want ErrRetired", err)
			}
			return
		}
		if err != nil {
			t.Errorf("rank %d: RunResilient: %v", c.Rank(), err)
			return
		}
		h, err := s.FieldHash()
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		hashes = append(hashes, h)
		stats = append(stats, m.Recovery)
		mu.Unlock()
		// The adopter's blocks must all run in its own configured layout,
		// transposed from the victim's AoS replica.
		for _, bd := range s.Blocks {
			if bd.Src.Layout != field.SoA {
				t.Errorf("rank %d: block %v restored in layout %v, want SoA", c.Rank(), bd.Block.Coord, bd.Src.Layout)
			}
		}
	})
	if t.Failed() {
		t.Fatal("mixed-layout shrink scenario failed")
	}
	adopted := 0
	for _, r := range stats {
		adopted += r.BlocksAdopted
		if r.DiskReadsDuringRecovery != 0 {
			t.Errorf("buddy recovery read disk %d times, want 0", r.DiskReadsDuringRecovery)
		}
	}
	if adopted == 0 {
		t.Fatal("no blocks were adopted; the shrink path did not run")
	}
	for _, h := range hashes {
		if h != want {
			t.Errorf("mixed-layout shrink hash %016x, want fault-free %016x", h, want)
		}
	}
}

// TestStepZeroAllocSoA extends the allocation-regression gate to the SoA
// hot path pinned explicitly: the split kernel over SoA fields — fused
// by-direction rows, tiled traversal, compiled boundary links — allocates
// nothing in steady state.
func TestStepZeroAllocSoA(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	const runs = 20
	comm.Run(2, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), allocForest()))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, Config{
			Kernel:     KernelSplitTRT,
			Layout:     LayoutSoA,
			Workers:    1,
			SetupFlags: allFluid,
		})
		if err != nil {
			t.Error(err)
			return
		}
		for _, bd := range s.Blocks {
			if bd.Src.Layout != field.SoA {
				t.Errorf("block %v layout %v, want SoA", bd.Block.Coord, bd.Src.Layout)
			}
		}
		step := func() {
			if err := s.Step(); err != nil {
				t.Error(err)
			}
		}
		for i := 0; i < 3; i++ {
			step()
		}
		if c.Rank() != 0 {
			for i := 0; i < runs+1; i++ {
				step()
			}
			return
		}
		if avg := testing.AllocsPerRun(runs, step); avg != 0 {
			t.Errorf("SoA Step allocates %.1f objects per step in steady state, want 0", avg)
		}
	})
}

// TestHashLayoutIndependence pins FieldHash's canonical visiting order
// directly: converting a field between layouts never changes the hash.
func TestHashLayoutIndependence(t *testing.T) {
	f := field.NewPDFField(lattice.D3Q19(), 5, 4, 3, 1, field.AoS)
	f.FillEquilibrium(1, 0.02, -0.01, 0.005)
	f.Set(2, 1, 0, lattice.NE, 0.123456789)
	g := f.ConvertLayout(field.SoA)
	if h1, h2 := hashInterior(f), hashInterior(g); h1 != h2 {
		t.Errorf("hashInterior differs across layouts: aos %016x soa %016x", h1, h2)
	}
}
