package sim

import (
	"math"
	"sync"
	"testing"

	"walberla/internal/blockforest"
	"walberla/internal/boundary"
	"walberla/internal/comm"
)

// Two independent simulations run side by side on disjoint
// subcommunicators of one world — the communicator contexts must keep
// their ghost exchanges and collectives fully isolated, and each
// simulation must reproduce its standalone result exactly.
func TestConcurrentSimulationsOnSubcommunicators(t *testing.T) {
	const worldRanks = 4 // two subgroups of two ranks
	grid := [3]int{2, 1, 1}
	cells := [3]int{4, 4, 4}
	domain := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})

	// Standalone references with two different lid velocities.
	standalone := func(lid float64) map[[3]int]float64 {
		f := blockforest.NewSetupForest(domain, grid, cells, [3]bool{})
		f.BalanceMorton(2)
		var mu sync.Mutex
		out := make(map[[3]int]float64)
		comm.Run(2, func(c *comm.Comm) {
			forest, _ := blockforest.Distribute(c, forestFor(c.Rank(), f))
			s, err := New(c, forest, Config{
				Tau:        0.8,
				Boundary:   boundary.Config{WallVelocity: [3]float64{lid, 0, 0}},
				SetupFlags: cavityFlags,
			})
			if err != nil {
				t.Error(err)
				return
			}
			mustRun(t, s, 30)
			gatherCavityField(s, cells, &mu, out)
		})
		return out
	}
	refA := standalone(0.03)
	refB := standalone(0.07)

	// The same two problems on subgroups of one world.
	var mu sync.Mutex
	gotA := make(map[[3]int]float64)
	gotB := make(map[[3]int]float64)
	comm.Run(worldRanks, func(c *comm.Comm) {
		color := c.Rank() / 2
		sub := c.Split(color, c.Rank())
		lid := 0.03
		out := gotA
		if color == 1 {
			lid = 0.07
			out = gotB
		}
		f := blockforest.NewSetupForest(domain, grid, cells, [3]bool{})
		f.BalanceMorton(2)
		var in *blockforest.SetupForest
		if sub.Rank() == 0 {
			in = f
		}
		forest, err := blockforest.Distribute(sub, in)
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(sub, forest, Config{
			Tau:        0.8,
			Boundary:   boundary.Config{WallVelocity: [3]float64{lid, 0, 0}},
			SetupFlags: cavityFlags,
		})
		if err != nil {
			t.Error(err)
			return
		}
		mustRun(t, s, 30)
		gatherCavityField(s, cells, &mu, out)
	})

	compare := func(name string, got, ref map[[3]int]float64) {
		if len(got) != len(ref) {
			t.Fatalf("%s: %d cells, want %d", name, len(got), len(ref))
		}
		var maxDiff float64
		for k, v := range ref {
			if d := math.Abs(got[k] - v); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 1e-14 {
			t.Errorf("%s deviates %g from its standalone run", name, maxDiff)
		}
	}
	compare("subgroup A", gotA, refA)
	compare("subgroup B", gotB, refB)
	// The two flows must actually differ (different lids).
	same := true
	for k, v := range refA {
		if math.Abs(refB[k]-v) > 1e-9 {
			same = false
			break
		}
	}
	if same {
		t.Error("test degenerate: both flows identical")
	}
}
