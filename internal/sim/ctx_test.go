package sim

import (
	"context"
	"errors"
	"os"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/output"
)

// stepCtx is a context that cancels itself after a fixed number of Err
// calls. The context-bound drivers poll Err exactly once per step in the
// cancellation vote, so a threshold of k cancels the run deterministically
// after k executed steps on every rank — no goroutine timing involved.
type stepCtx struct {
	context.Context
	after int32
	calls atomic.Int32
	done  chan struct{}
}

func newStepCtx(after int32) *stepCtx {
	return &stepCtx{Context: context.Background(), after: after, done: make(chan struct{})}
}

// Done returns a non-nil channel so the drivers enable the vote; it never
// fires — cancellation is observed through Err alone.
func (c *stepCtx) Done() <-chan struct{} { return c.done }

func (c *stepCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// cavitySim builds the shared 2-rank lid-driven cavity of the context
// tests on this rank.
func cavitySim(t *testing.T, c *comm.Comm, f *blockforest.SetupForest, workers int) *Simulation {
	t.Helper()
	forest, err := blockforest.Distribute(c, forestFor(c.Rank(), f))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c, forest, Config{Tau: 0.65, Workers: workers, SetupFlags: cavityFlags})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRunCtxCancelStopsAtSameStep: a cancellation mid-run stops every
// rank at the same step boundary with ErrInterrupted, and the state at
// that boundary is bit-identical to an uninterrupted run of exactly that
// many steps.
func TestRunCtxCancelStopsAtSameStep(t *testing.T) {
	const cancelAfter = 4
	var mu sync.Mutex
	interruptedBits := make(map[[3]int][]uint64)
	f := cavityForest()
	comm.Run(2, func(c *comm.Comm) {
		s := cavitySim(t, c, f, 2)
		_, err := s.RunCtx(newStepCtx(cancelAfter), 10)
		if !errors.Is(err, ErrInterrupted) {
			t.Errorf("rank %d: RunCtx error = %v, want ErrInterrupted", c.Rank(), err)
			return
		}
		if got := s.Steps(); got != cancelAfter {
			t.Errorf("rank %d: stopped after %d steps, want %d", c.Rank(), got, cancelAfter)
		}
		collectBits(s, &mu, interruptedBits)
	})

	wantBits := make(map[[3]int][]uint64)
	f2 := cavityForest()
	comm.Run(2, func(c *comm.Comm) {
		s := cavitySim(t, c, f2, 2)
		mustRun(t, s, cancelAfter)
		collectBits(s, &mu, wantBits)
	})
	compareBits(t, wantBits, interruptedBits, "interrupted vs uninterrupted")
}

// TestRunCtxBackgroundNoVote: a background context must not change the
// communication pattern of Run — no per-step collective.
func TestRunCtxBackgroundNoVote(t *testing.T) {
	f := cavityForest()
	comm.Run(2, func(c *comm.Comm) {
		s := cavitySim(t, c, f, 1)
		mustRun(t, s, 2)
		c.ResetStats()
		if _, err := s.RunCtx(context.Background(), 3); err != nil {
			t.Error(err)
			return
		}
		// 3 steps of ghost exchange plus the metrics reduction; the
		// per-pair aggregated exchange sends exactly one message per
		// neighbor per step. A cancellation vote would add one allreduce
		// (2+ sends) per step on top.
		withVote := c.Stats().Sends
		c.ResetStats()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		if _, err := s.RunCtx(ctx, 3); err != nil {
			t.Error(err)
			return
		}
		if c.Stats().Sends <= withVote {
			t.Errorf("rank %d: cancellable run sent %d messages, background run %d — vote missing",
				c.Rank(), c.Stats().Sends, withVote)
		}
	})
}

// TestResilientInterruptFinishesCheckpoint is the graceful-interrupt
// regression test: cancelling a resilient run never corrupts or discards
// the checkpoint sets on disk. The cancellation vote runs before each
// step's checkpoint work, so an in-flight set always commits before the
// driver returns; the interrupted run must leave (a) only fully committed,
// CRC-valid sets, (b) no transient .tmp-set directories, and (c) state
// from which a fresh world resumes bit-identical to an uninterrupted run.
func TestResilientInterruptFinishesCheckpoint(t *testing.T) {
	const (
		steps       = 10
		cancelAfter = 8 // cancels after step 7 → sets 3 and 6 committed
	)
	dir := t.TempDir()
	var mu sync.Mutex
	f := cavityForest()
	comm.Run(2, func(c *comm.Comm) {
		s := cavitySim(t, c, f, 1)
		_, err := s.RunResilientCtx(newStepCtx(cancelAfter), steps, ResilienceConfig{
			CheckpointEvery: 3,
			Dir:             dir,
		})
		if !errors.Is(err, ErrInterrupted) {
			t.Errorf("rank %d: RunResilientCtx error = %v, want ErrInterrupted", c.Rank(), err)
		}
	})
	if t.Failed() {
		return
	}

	sets := listSets(t, dir)
	if len(sets) != 2 || sets[0] != 6 || sets[1] != 3 {
		t.Fatalf("valid sets after interrupt = %v, want [6 3]", sets)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-set-") {
			t.Errorf("transient checkpoint directory %s left behind", e.Name())
		}
	}

	// Resume: a fresh world restores the newest set and finishes the run.
	resumedBits := make(map[[3]int][]uint64)
	f2 := cavityForest()
	comm.Run(2, func(c *comm.Comm) {
		s := cavitySim(t, c, f2, 1)
		restored, err := s.RestoreLatestCheckpointSet(dir)
		if err != nil {
			t.Error(err)
			return
		}
		if restored != 6 {
			t.Errorf("rank %d: restored step %d, want 6", c.Rank(), restored)
			return
		}
		mustRun(t, s, steps-int(restored))
		collectBits(s, &mu, resumedBits)
	})

	wantBits := make(map[[3]int][]uint64)
	f3 := cavityForest()
	comm.Run(2, func(c *comm.Comm) {
		s := cavitySim(t, c, f3, 1)
		mustRun(t, s, steps)
		collectBits(s, &mu, wantBits)
	})
	compareBits(t, wantBits, resumedBits, "resumed after interrupt vs uninterrupted")
}

// TestConfigValidateSingleNormalizationPoint: a hand-built zero config
// normalized by Validate must be exactly the configuration New runs with,
// and Validate must be idempotent.
func TestConfigValidateSingleNormalizationPoint(t *testing.T) {
	hand := Config{SetupFlags: cavityFlags}
	if err := hand.Validate(); err != nil {
		t.Fatal(err)
	}
	f := cavityForest()
	comm.Run(2, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), f))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, Config{SetupFlags: cavityFlags})
		if err != nil {
			t.Error(err)
			return
		}
		got, want := comparableConfig(s.Config), comparableConfig(hand)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("rank %d: New normalized %+v, Validate %+v", c.Rank(), got, want)
		}
	})
	again := hand
	if err := again.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(comparableConfig(again), comparableConfig(hand)) {
		t.Errorf("Validate not idempotent: %+v vs %+v", again, hand)
	}

	for _, bad := range []Config{
		{Tau: 0.5},
		{Workers: -1},
		{Exchange: ExchangeMode(99)},
	} {
		cfg := bad
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid config", bad)
		}
	}
	var rc ResilienceConfig
	rc.Mode = RecoveryMode(7)
	if err := rc.Validate(); err == nil {
		t.Error("ResilienceConfig.Validate accepted an unknown mode")
	}
	rc = ResilienceConfig{MaxFailures: -1}
	if err := rc.Validate(); err != nil {
		t.Fatal(err)
	}
	if rc.MaxFailures != 8 || rc.BackoffBase == 0 || rc.BackoffMax == 0 {
		t.Errorf("ResilienceConfig.Validate defaults not applied: %+v", rc)
	}
}

// comparableConfig clears the (incomparable) function fields so two
// configs can be compared field-wise.
func comparableConfig(c Config) Config {
	c.SetupFlags = nil
	c.InitialState = nil
	return c
}

// TestFieldHash: equal runs hash equal across worker counts (the fields
// are bit-identical), different step counts hash differently, and the
// hash agrees on every rank.
func TestFieldHash(t *testing.T) {
	hashAt := func(workers, steps int) uint64 {
		var mu sync.Mutex
		var hashes []uint64
		f := cavityForest()
		comm.Run(2, func(c *comm.Comm) {
			s := cavitySim(t, c, f, workers)
			mustRun(t, s, steps)
			h, err := s.FieldHash()
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			hashes = append(hashes, h)
			mu.Unlock()
		})
		if len(hashes) != 2 || hashes[0] != hashes[1] {
			t.Fatalf("ranks disagree on the hash: %v", hashes)
		}
		return hashes[0]
	}
	h1 := hashAt(1, 5)
	h4 := hashAt(4, 5)
	if h1 != h4 {
		t.Errorf("hash differs across worker counts: %016x vs %016x", h1, h4)
	}
	if h6 := hashAt(1, 6); h6 == h1 {
		t.Errorf("hash did not change with the fields: %016x", h6)
	}
}

// listSets lists the committed, valid checkpoint sets, newest first.
func listSets(t *testing.T, dir string) []int64 {
	t.Helper()
	return output.ListValidSets(dir)
}
