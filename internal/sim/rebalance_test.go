package sim

import (
	"math"
	"sync"
	"testing"

	"walberla/internal/blockforest"
	"walberla/internal/boundary"
	"walberla/internal/comm"
	"walberla/internal/field"
)

// gatherCavityField collects the global ux field from a running simulation.
func gatherCavityField(s *Simulation, cells [3]int, mu *sync.Mutex, out map[[3]int]float64) {
	mu.Lock()
	defer mu.Unlock()
	for _, bd := range s.Blocks {
		base := [3]int{
			bd.Block.Coord[0] * cells[0],
			bd.Block.Coord[1] * cells[1],
			bd.Block.Coord[2] * cells[2],
		}
		for z := 0; z < cells[2]; z++ {
			for y := 0; y < cells[1]; y++ {
				for x := 0; x < cells[0]; x++ {
					_, ux, _, _ := bd.Src.Moments(x, y, z)
					out[[3]int{base[0] + x, base[1] + y, base[2] + z}] = ux
				}
			}
		}
	}
}

// Dynamic rebalancing in the middle of a run must leave the physics
// untouched: run 20+20 steps with a migration in between and compare
// against 40 uninterrupted steps.
func TestRebalancePreservesPhysics(t *testing.T) {
	const ranks = 4
	grid := [3]int{2, 2, 2}
	cells := [3]int{4, 4, 4}
	domain := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})

	run := func(migrate bool) map[[3]int]float64 {
		f := blockforest.NewSetupForest(domain, grid, cells, [3]bool{})
		// Deliberately skewed initial assignment: everything on rank 0.
		for _, b := range f.Blocks() {
			b.Rank = 0
		}
		var mu sync.Mutex
		out := make(map[[3]int]float64)
		comm.Run(ranks, func(c *comm.Comm) {
			forest, _ := blockforest.Distribute(c, forestFor(c.Rank(), f))
			s, err := New(c, forest, Config{
				Tau:        0.8,
				Boundary:   boundary.Config{WallVelocity: [3]float64{0.05, 0, 0}},
				SetupFlags: cavityFlags,
			})
			if err != nil {
				t.Error(err)
				return
			}
			mustRun(t, s, 20)
			if migrate {
				if err := s.RebalanceByWorkload(false); err != nil {
					t.Error(err)
					return
				}
				// After rebalancing, the blocks must be spread out.
				local, maxLoad, total := s.RankLoad()
				_ = local
				if maxLoad == total {
					t.Error("rebalancing left all blocks on one rank")
				}
			}
			mustRun(t, s, 20)
			gatherCavityField(s, cells, &mu, out)
		})
		return out
	}

	ref := run(false)
	got := run(true)
	if len(got) != len(ref) {
		t.Fatalf("cell counts differ: %d vs %d", len(got), len(ref))
	}
	var maxDiff float64
	for k, v := range ref {
		if d := math.Abs(got[k] - v); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-13 {
		t.Errorf("rebalancing changed the physics by %g", maxDiff)
	}
}

// Rebalancing with measured workloads must also spread the blocks (each
// block accumulated real kernel time in the first phase).
func TestRebalanceByMeasuredTime(t *testing.T) {
	const ranks = 2
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{2, 1, 1}, [3]int{4, 4, 4}, [3]bool{})
	for _, b := range f.Blocks() {
		b.Rank = 0
	}
	comm.Run(ranks, func(c *comm.Comm) {
		forest, _ := blockforest.Distribute(c, forestFor(c.Rank(), f))
		s, err := New(c, forest, Config{
			Tau:        0.8,
			Boundary:   boundary.Config{WallVelocity: [3]float64{0.05, 0, 0}},
			SetupFlags: cavityFlags,
		})
		if err != nil {
			t.Error(err)
			return
		}
		mustRun(t, s, 5)
		if err := s.RebalanceByWorkload(true); err != nil {
			t.Error(err)
			return
		}
		if len(s.Blocks) != 1 {
			t.Errorf("rank %d holds %d blocks after rebalancing, want 1", c.Rank(), len(s.Blocks))
		}
		// The plan and neighborhood survive: one more step runs cleanly
		// and conserves mass.
		var local float64
		for _, bd := range s.Blocks {
			local += bd.Src.TotalMass()
		}
		before := c.AllreduceFloat64(local, comm.Sum[float64])
		mustRun(t, s, 5)
		local = 0
		for _, bd := range s.Blocks {
			local += bd.Src.TotalMass()
		}
		after := c.AllreduceFloat64(local, comm.Sum[float64])
		if math.Abs(after-before) > 1e-9 {
			t.Errorf("mass %v -> %v across rebalanced run", before, after)
		}
	})
}

func TestRebalanceValidation(t *testing.T) {
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{2, 1, 1}, [3]int{4, 4, 4}, [3]bool{})
	f.BalanceMorton(1)
	comm.Run(1, func(c *comm.Comm) {
		forest, _ := blockforest.Distribute(c, f)
		s, err := New(c, forest, Config{SetupFlags: func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
			flags.Fill(field.Fluid)
		}})
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.Rebalance(map[[3]int]int{}); err == nil {
			t.Error("incomplete assignment accepted")
		}
		if err := s.Rebalance(map[[3]int]int{{0, 0, 0}: 5, {1, 0, 0}: 0}); err == nil {
			t.Error("out-of-range rank accepted")
		}
	})
}

func TestWorkloadsFallBackToFluidCount(t *testing.T) {
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{1, 1, 1}, [3]int{4, 4, 4}, [3]bool{})
	f.BalanceMorton(1)
	comm.Run(1, func(c *comm.Comm) {
		forest, _ := blockforest.Distribute(c, f)
		s, _ := New(c, forest, Config{SetupFlags: func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
			flags.Fill(field.Fluid)
		}})
		w := s.Workloads(true) // no timed steps yet: falls back to counts
		if w[[3]int{0, 0, 0}] != 64 {
			t.Errorf("workload = %v, want 64 fluid cells", w[[3]int{0, 0, 0}])
		}
		mustRun(t, s, 2)
		w = s.Workloads(true)
		if w[[3]int{0, 0, 0}] <= 0 || w[[3]int{0, 0, 0}] == 64 {
			t.Errorf("measured workload = %v, want positive seconds", w[[3]int{0, 0, 0}])
		}
	})
}
