package sim

import (
	"testing"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/telemetry"
)

// allocForest is the two-rank, multi-block scenario of the allocation
// tests: remote channels in both directions plus local copies.
func allocForest() *blockforest.SetupForest {
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{4, 2, 1}, [3]int{4, 4, 4}, [3]bool{true, true, true})
	f.BalanceMorton(2)
	return f
}

// TestStepZeroAlloc is the allocation-regression gate of the aggregated
// exchange: after warm-up, a full time step — pack, one send and receive
// per neighbor rank, unpack, boundary, kernel sweep, swap — performs zero
// heap allocations. Workers is 1 because the fork-join pool's per-region
// goroutine spawns are the one deliberate exception, and AllocsPerRun
// serializes execution anyway.
func TestStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	const runs = 20
	comm.Run(2, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), allocForest()))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, Config{Workers: 1, SetupFlags: allFluid})
		if err != nil {
			t.Error(err)
			return
		}
		step := func() {
			if err := s.Step(); err != nil {
				t.Error(err)
			}
		}
		for i := 0; i < 3; i++ {
			step()
		}
		if c.Rank() != 0 {
			// Keep feeding rank 0's receives: AllocsPerRun executes its
			// function runs+1 times (one warm-up call plus the measured
			// runs). Rank 0's global malloc counter still observes this
			// rank's steps, so a regression on any rank fails the test.
			for i := 0; i < runs+1; i++ {
				step()
			}
			return
		}
		if avg := testing.AllocsPerRun(runs, step); avg != 0 {
			t.Errorf("Step allocates %.1f objects per step in steady state, want 0", avg)
		}
	})
}

// TestStepZeroAllocTraced is the telemetry-overhead gate: with a tracer
// and a metrics registry attached, the steady-state step — now also
// recording phase spans, pack/unpack/sweep spans, comm send/recv spans
// and counter updates — still performs zero heap allocations. Spans land
// in preallocated rings and counters are preregistered atomics, so
// tracing must never wake the collector mid-run.
func TestStepZeroAllocTraced(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	const runs = 20
	trace := telemetry.NewTrace()
	comm.Run(2, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), allocForest()))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, Config{
			Workers:    1,
			SetupFlags: allFluid,
			Tracer:     trace.NewTracer(c.Rank(), 1, 0),
			Metrics:    telemetry.NewRegistry(),
		})
		if err != nil {
			t.Error(err)
			return
		}
		step := func() {
			if err := s.Step(); err != nil {
				t.Error(err)
			}
		}
		for i := 0; i < 3; i++ {
			step()
		}
		if c.Rank() != 0 {
			for i := 0; i < runs+1; i++ {
				step()
			}
			return
		}
		if avg := testing.AllocsPerRun(runs, step); avg != 0 {
			t.Errorf("traced Step allocates %.1f objects per step in steady state, want 0", avg)
		}
		if s.Tracer().Driver().Len() == 0 {
			t.Error("tracing was attached but no spans were recorded")
		}
	})
}

// benchStep measures steady-state step cost and allocations (run with
// -benchmem) for one exchange wire format.
func benchStep(b *testing.B, mode ExchangeMode) {
	b.ReportAllocs()
	comm.Run(2, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), allocForest()))
		if err != nil {
			b.Error(err)
			return
		}
		s, err := New(c, forest, Config{Workers: 1, Exchange: mode, SetupFlags: allFluid})
		if err != nil {
			b.Error(err)
			return
		}
		for i := 0; i < b.N; i++ {
			if err := s.Step(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkStepAggregated(b *testing.B) { benchStep(b, ExchangeAggregated) }
func BenchmarkStepPerPair(b *testing.B)    { benchStep(b, ExchangePerPair) }
