package sim

import (
	"math"
	"sync"
	"testing"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/field"
)

// Taylor-Green vortex: the classic quantitative LBM validation with a
// fully analytic solution. In a periodic box the velocity field
//
//	u_x =  u0 cos(kx) sin(ky) exp(-2 nu k^2 t)
//	u_y = -u0 sin(kx) cos(ky) exp(-2 nu k^2 t)
//
// decays viscously; the measured decay rate tests that the relaxation
// time realizes exactly the kinematic viscosity nu = (tau - 1/2)/3 —
// i.e. that collision, streaming and the distributed exchange together
// solve the Navier-Stokes equations.
func TestTaylorGreenViscousDecay(t *testing.T) {
	const (
		n     = 24
		u0    = 0.02
		tau   = 0.8
		steps = 120
		ranks = 4
	)
	nu := (tau - 0.5) / 3.0
	k := 2 * math.Pi / float64(n)

	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{2, 2, 1}, [3]int{n / 2, n / 2, 2}, [3]bool{true, true, true})
	f.BalanceMorton(ranks)

	var mu sync.Mutex
	var sumSq0, sumSq1 float64
	var maxErr float64

	comm.Run(ranks, func(c *comm.Comm) {
		forest, _ := blockforest.Distribute(c, forestFor(c.Rank(), f))
		s, err := New(c, forest, Config{
			Tau: tau,
			InitialState: func(x, y, z int) (float64, float64, float64, float64) {
				fx := (float64(x) + 0.5) * k
				fy := (float64(y) + 0.5) * k
				return 1.0,
					u0 * math.Cos(fx) * math.Sin(fy),
					-u0 * math.Sin(fx) * math.Cos(fy),
					0
			},
			SetupFlags: func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
				flags.Fill(field.Fluid)
			},
		})
		if err != nil {
			t.Error(err)
			return
		}
		energy := func() float64 {
			var e float64
			for _, bd := range s.Blocks {
				for z := 0; z < bd.Src.Nz; z++ {
					for y := 0; y < bd.Src.Ny; y++ {
						for x := 0; x < bd.Src.Nx; x++ {
							_, ux, uy, uz := bd.Src.Moments(x, y, z)
							e += ux*ux + uy*uy + uz*uz
						}
					}
				}
			}
			return e
		}
		e0 := c.AllreduceFloat64(energy(), comm.Sum[float64])
		mustRun(t, s, steps)
		e1 := c.AllreduceFloat64(energy(), comm.Sum[float64])

		// Pointwise comparison against the analytic field at t = steps.
		decay := math.Exp(-2 * nu * k * k * float64(steps))
		var localMax float64
		for _, bd := range s.Blocks {
			base := [3]int{
				bd.Block.Coord[0] * bd.Src.Nx,
				bd.Block.Coord[1] * bd.Src.Ny,
				bd.Block.Coord[2] * bd.Src.Nz,
			}
			for z := 0; z < bd.Src.Nz; z++ {
				for y := 0; y < bd.Src.Ny; y++ {
					for x := 0; x < bd.Src.Nx; x++ {
						fx := (float64(base[0]+x) + 0.5) * k
						fy := (float64(base[1]+y) + 0.5) * k
						wantX := u0 * math.Cos(fx) * math.Sin(fy) * decay
						wantY := -u0 * math.Sin(fx) * math.Cos(fy) * decay
						_, ux, uy, _ := bd.Src.Moments(x, y, z)
						if e := math.Abs(ux - wantX); e > localMax {
							localMax = e
						}
						if e := math.Abs(uy - wantY); e > localMax {
							localMax = e
						}
					}
				}
			}
		}
		globalMax := c.AllreduceFloat64(localMax, comm.Max[float64])
		mu.Lock()
		if c.Rank() == 0 {
			sumSq0, sumSq1, maxErr = e0, e1, globalMax
		}
		mu.Unlock()
	})

	// Kinetic energy decays as exp(-4 nu k^2 t).
	wantRatio := math.Exp(-4 * nu * k * k * float64(steps))
	gotRatio := sumSq1 / sumSq0
	if math.Abs(gotRatio-wantRatio)/wantRatio > 0.02 {
		t.Errorf("energy decay ratio %v, analytic %v (%.2f%% off)",
			gotRatio, wantRatio, 100*math.Abs(gotRatio-wantRatio)/wantRatio)
	}
	// Pointwise error well below the initial amplitude (compressibility
	// error scales with u0^2 ~ 4e-4).
	if maxErr > 0.02*u0 {
		t.Errorf("max pointwise velocity error %v exceeds 2%% of u0", maxErr)
	}
}
