package sim

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/boundary"
	"walberla/internal/comm"
	"walberla/internal/output"
)

// cavityConfig is the shared scenario of the resilience tests: a small
// lid-driven cavity split over two ranks.
func cavityConfig() Config {
	return Config{
		Kernel:     KernelSplitTRT,
		Tau:        0.8,
		Boundary:   boundary.Config{WallVelocity: [3]float64{0.05, 0, 0}},
		SetupFlags: cavityFlags,
	}
}

func cavityForest() *blockforest.SetupForest {
	domain := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
	f := blockforest.NewSetupForest(domain, [3]int{2, 1, 1}, [3]int{4, 4, 4}, [3]bool{})
	f.BalanceMorton(2)
	return f
}

// collectBits snapshots the exact bit pattern of every block's Src field.
func collectBits(s *Simulation, mu *sync.Mutex, into map[[3]int][]uint64) {
	mu.Lock()
	defer mu.Unlock()
	for _, bd := range s.Blocks {
		d := bd.Src.Data()
		bits := make([]uint64, len(d))
		for i, v := range d {
			bits[i] = math.Float64bits(v)
		}
		into[bd.Block.Coord] = bits
	}
}

// TestResilientBitIdenticalUnderCrashes is the core acceptance test: a
// run with an injected rank crash at EVERY step (alternating ranks) plus
// periodic checkpointing must finish bit-identical to an uninterrupted
// run of the same scenario.
func TestResilientBitIdenticalUnderCrashes(t *testing.T) {
	const steps = 8
	var mu sync.Mutex

	// Reference: fault-free run.
	want := make(map[[3]int][]uint64)
	comm.Run(2, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), cavityForest()))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, cavityConfig())
		if err != nil {
			t.Error(err)
			return
		}
		mustRun(t, s, steps)
		collectBits(s, &mu, want)
	})
	if t.Failed() {
		t.Fatal("reference run failed")
	}

	// Faulty run: one crash scheduled at every step 1..steps-1.
	var crashes []comm.CrashSpec
	for st := 1; st < steps; st++ {
		crashes = append(crashes, comm.CrashSpec{Rank: st % 2, Step: st})
	}
	dir := t.TempDir()
	got := make(map[[3]int][]uint64)
	var recMu sync.Mutex
	var recovered []RecoveryStats
	comm.RunWithOptions(2, comm.Options{Faults: &comm.FaultPlan{Seed: 7, Crashes: crashes}}, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), cavityForest()))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, cavityConfig())
		if err != nil {
			t.Error(err)
			return
		}
		m, err := s.RunResilient(steps, ResilienceConfig{
			CheckpointEvery: 2,
			Dir:             dir,
			MaxFailures:     2 * steps,
			BackoffBase:     time.Millisecond,
			BackoffMax:      10 * time.Millisecond,
		})
		if err != nil {
			t.Errorf("rank %d: RunResilient: %v", c.Rank(), err)
			return
		}
		collectBits(s, &mu, got)
		recMu.Lock()
		recovered = append(recovered, m.Recovery)
		recMu.Unlock()
	})
	if t.Failed() {
		t.Fatal("resilient run failed")
	}

	if len(got) != len(want) {
		t.Fatalf("resilient run produced %d blocks, want %d", len(got), len(want))
	}
	for coord, wb := range want {
		gb, ok := got[coord]
		if !ok {
			t.Fatalf("block %v missing from resilient run", coord)
		}
		if len(gb) != len(wb) {
			t.Fatalf("block %v: %d values, want %d", coord, len(gb), len(wb))
		}
		for i := range wb {
			if gb[i] != wb[i] {
				t.Fatalf("block %v value %d: bits %016x, want %016x — resilient run is not bit-identical",
					coord, i, gb[i], wb[i])
			}
		}
	}
	for _, r := range recovered {
		if r.FailuresDetected == 0 || r.Restores == 0 {
			t.Fatalf("recovery stats show no recovery activity: %+v", r)
		}
		if r.CheckpointsWritten == 0 || r.CheckpointBytes == 0 {
			t.Fatalf("recovery stats show no checkpoints: %+v", r)
		}
		if r.StepsReplayed == 0 {
			t.Fatalf("crash at every step must force replays: %+v", r)
		}
	}
}

// TestRestoreFallsBackPastCorruptedSet: a flipped byte in the newest
// set's payload must be caught by the CRC chain and the restore must fall
// back to the previous valid set.
func TestRestoreFallsBackPastCorruptedSet(t *testing.T) {
	dir := t.TempDir()
	const steps = 8

	// Phase 1: produce sets at steps 2, 4, 6 and remember the state at
	// the top of step 4 by rerunning 4 steps fault-free.
	comm.Run(2, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), cavityForest()))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, cavityConfig())
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := s.RunResilient(steps, ResilienceConfig{CheckpointEvery: 2, Dir: dir}); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
	})
	if t.Failed() {
		t.Fatal("checkpoint-producing run failed")
	}
	for _, step := range []int{2, 4, 6} {
		if _, err := os.Stat(filepath.Join(dir, output.SetDirName(step))); err != nil {
			t.Fatalf("expected checkpoint set %d: %v", step, err)
		}
	}
	if sets := output.ListValidSets(dir); len(sets) != 3 || sets[0] != 6 {
		t.Fatalf("ListValidSets = %v, want [6 4 2]", sets)
	}

	// Corrupt one payload byte of set-6's rank 0 file (size unchanged, so
	// only the CRCs can catch it).
	rf := filepath.Join(dir, output.SetDirName(6), output.RankFileName(0))
	raw, err := os.ReadFile(rf)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x04
	if err := os.WriteFile(rf, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Phase 2: a fresh simulation restoring from the same directory must
	// reject set-6 on the corrupted rank and agree on set-4 collectively.
	var mu sync.Mutex
	got := make(map[[3]int][]uint64)
	comm.Run(2, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), cavityForest()))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, cavityConfig())
		if err != nil {
			t.Error(err)
			return
		}
		step, err := s.RestoreLatestCheckpointSet(dir)
		if err != nil {
			t.Errorf("rank %d: restore: %v", c.Rank(), err)
			return
		}
		if step != 4 {
			t.Errorf("rank %d: restored step %d, want fallback to 4", c.Rank(), step)
			return
		}
		collectBits(s, &mu, got)
	})
	if t.Failed() {
		t.Fatal("restore run failed")
	}

	// The restored state must be bit-identical to 4 uninterrupted steps.
	want := make(map[[3]int][]uint64)
	comm.Run(2, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), cavityForest()))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, cavityConfig())
		if err != nil {
			t.Error(err)
			return
		}
		mustRun(t, s, 4)
		collectBits(s, &mu, want)
	})
	for coord, wb := range want {
		gb := got[coord]
		if len(gb) != len(wb) {
			t.Fatalf("block %v: %d values, want %d", coord, len(gb), len(wb))
		}
		for i := range wb {
			if gb[i] != wb[i] {
				t.Fatalf("block %v value %d differs from the step-4 state", coord, i)
			}
		}
	}
}

// TestRestoreWithNoSetsRewindsToInitialState: with an empty checkpoint
// directory the restore re-initializes the fields bit-identically to a
// fresh simulation.
func TestRestoreWithNoSetsRewindsToInitialState(t *testing.T) {
	var mu sync.Mutex
	got := make(map[[3]int][]uint64)
	want := make(map[[3]int][]uint64)
	comm.Run(2, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), cavityForest()))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, cavityConfig())
		if err != nil {
			t.Error(err)
			return
		}
		collectBits(s, &mu, want)
		mustRun(t, s, 3) // dirty the state
		step, err := s.RestoreLatestCheckpointSet(t.TempDir())
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		if step != 0 {
			t.Errorf("rank %d: restored step %d, want 0", c.Rank(), step)
			return
		}
		collectBits(s, &mu, got)
	})
	if t.Failed() {
		t.FailNow()
	}
	for coord, wb := range want {
		gb := got[coord]
		for i := range wb {
			if gb[i] != wb[i] {
				t.Fatalf("block %v value %d differs from the initial state", coord, i)
			}
		}
	}
}

// TestWriteCheckpointSetAtomicAndIdempotent: no transient directory
// survives a successful write, and rewriting an existing step is a
// cheap no-op.
func TestWriteCheckpointSetAtomicAndIdempotent(t *testing.T) {
	dir := t.TempDir()
	comm.Run(2, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), cavityForest()))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, cavityConfig())
		if err != nil {
			t.Error(err)
			return
		}
		n, err := s.WriteCheckpointSet(dir, 5)
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		if n == 0 {
			t.Errorf("rank %d: wrote 0 bytes", c.Rank())
		}
		n, err = s.WriteCheckpointSet(dir, 5)
		if err != nil {
			t.Errorf("rank %d: rewrite: %v", c.Rank(), err)
			return
		}
		if n != 0 {
			t.Errorf("rank %d: rewrite of an existing set wrote %d bytes", c.Rank(), n)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != output.SetDirName(5) {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("checkpoint root holds %v, want only %s (no transient dirs)", names, output.SetDirName(5))
	}
	if got := output.ListValidSets(dir); len(got) != 1 || got[0] != 5 {
		t.Fatalf("ListValidSets = %v, want [5]", got)
	}
}
