package sim

import (
	"math"
	"sync"
	"testing"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/field"
)

// The hybrid acceptance tests: intra-rank worker parallelism must not
// change a single bit of the solution. Any amount of workers executes
// the same per-block sweeps on disjoint state; only the schedule
// differs, so the results must be exactly identical to the serial run.
// These tests are the ones `make verify` runs under the race detector.

// taylorGreenBits runs a periodic Taylor-Green vortex over 2 ranks with
// the given intra-rank worker count and snapshots every block's exact
// bit pattern.
func taylorGreenBits(t *testing.T, workers, steps int) map[[3]int][]uint64 {
	t.Helper()
	return taylorGreenBitsMode(t, workers, steps, ExchangeAggregated)
}

// taylorGreenBitsMode is taylorGreenBits with an explicit exchange wire
// format, the shared scenario of the aggregation bit-identity tests.
func taylorGreenBitsMode(t *testing.T, workers, steps int, mode ExchangeMode) map[[3]int][]uint64 {
	t.Helper()
	const n = 12
	k := 2 * math.Pi / float64(n)
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{2, 2, 1}, [3]int{n / 2, n / 2, 2}, [3]bool{true, true, true})
	f.BalanceMorton(2)

	var mu sync.Mutex
	bits := make(map[[3]int][]uint64)
	comm.Run(2, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), f))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, Config{
			Tau:      0.8,
			Workers:  workers,
			Exchange: mode,
			// A body force exercises the forcing sweep on the workers too.
			Force: [3]float64{1e-7, 0, 0},
			InitialState: func(x, y, z int) (float64, float64, float64, float64) {
				fx := (float64(x) + 0.5) * k
				fy := (float64(y) + 0.5) * k
				return 1.0,
					0.02 * math.Cos(fx) * math.Sin(fy),
					-0.02 * math.Sin(fx) * math.Cos(fy),
					0
			},
			SetupFlags: func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
				flags.Fill(field.Fluid)
			},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if got := s.Workers(); got != max(workers, 1) {
			t.Errorf("Workers() = %d, want %d", got, max(workers, 1))
		}
		mustRun(t, s, steps)
		collectBits(s, &mu, bits)
	})
	return bits
}

// compareBits fails the test unless the two snapshots are exactly equal.
func compareBits(t *testing.T, want, got map[[3]int][]uint64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d blocks, want %d", label, len(got), len(want))
	}
	for coord, w := range want {
		g, ok := got[coord]
		if !ok {
			t.Fatalf("%s: block %v missing", label, coord)
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: block %v word %d: %x != %x — not bit-identical",
					label, coord, i, g[i], w[i])
			}
		}
	}
}

// TestHybridTaylorGreenBitIdentical is the tentpole acceptance test: the
// multi-worker Taylor-Green run is bit-identical to the serial one.
func TestHybridTaylorGreenBitIdentical(t *testing.T) {
	const steps = 30
	ref := taylorGreenBits(t, 1, steps)
	if t.Failed() {
		t.Fatal("serial reference failed")
	}
	for _, workers := range []int{2, 4, 7} {
		compareBits(t, ref, taylorGreenBits(t, workers, steps), "workers="+string(rune('0'+workers)))
	}
}

// TestHybridOverlapSplitBitIdentical drives the comm/compute overlap
// path with a decomposition that has both frontier and interior blocks
// on a rank (4 blocks in a row over 2 ranks: the outer blocks have only
// local neighbors, the middle ones talk across the rank boundary) and
// checks bit-identity plus the split bookkeeping.
func TestHybridOverlapSplitBitIdentical(t *testing.T) {
	const steps = 25
	run := func(workers int) map[[3]int][]uint64 {
		domain := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
		f := blockforest.NewSetupForest(domain, [3]int{4, 1, 1}, [3]int{4, 4, 4}, [3]bool{})
		f.BalanceMorton(2)
		var mu sync.Mutex
		bits := make(map[[3]int][]uint64)
		comm.Run(2, func(c *comm.Comm) {
			forest, err := blockforest.Distribute(c, forestFor(c.Rank(), f))
			if err != nil {
				t.Error(err)
				return
			}
			cfg := cavityConfig()
			cfg.Workers = workers
			s, err := New(c, forest, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			frontier, interior := s.BlockSplit()
			if frontier == 0 || interior == 0 {
				t.Errorf("rank %d: frontier=%d interior=%d, want both nonzero", c.Rank(), frontier, interior)
			}
			mustRun(t, s, steps)
			o := s.Overlap()
			if o.Post <= 0 || o.Interior <= 0 || o.Frontier <= 0 {
				t.Errorf("rank %d: degenerate overlap breakdown %v", c.Rank(), o)
			}
			collectBits(s, &mu, bits)
		})
		return bits
	}
	ref := run(1)
	if t.Failed() {
		t.Fatal("serial reference failed")
	}
	compareBits(t, ref, run(4), "overlap workers=4")
}

// TestHybridResilientReplayBitIdentical: rewind-and-replay recovery with
// workers > 1 must still reproduce the fault-free serial run bit for
// bit — replayed steps take the same parallel sweep schedule.
func TestHybridResilientReplayBitIdentical(t *testing.T) {
	const steps = 8
	var mu sync.Mutex

	want := make(map[[3]int][]uint64)
	comm.Run(2, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), cavityForest()))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, cavityConfig())
		if err != nil {
			t.Error(err)
			return
		}
		mustRun(t, s, steps)
		collectBits(s, &mu, want)
	})
	if t.Failed() {
		t.Fatal("reference run failed")
	}

	crashes := []comm.CrashSpec{{Rank: 1, Step: 3}, {Rank: 0, Step: 6}}
	dir := t.TempDir()
	got := make(map[[3]int][]uint64)
	comm.RunWithOptions(2, comm.Options{Faults: &comm.FaultPlan{Seed: 11, Crashes: crashes}}, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), cavityForest()))
		if err != nil {
			t.Error(err)
			return
		}
		cfg := cavityConfig()
		cfg.Workers = 4
		s, err := New(c, forest, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		m, err := s.RunResilient(steps, ResilienceConfig{
			CheckpointEvery: 2,
			Dir:             dir,
			MaxFailures:     2 * steps,
			BackoffBase:     time.Millisecond,
			BackoffMax:      10 * time.Millisecond,
		})
		if err != nil {
			t.Errorf("rank %d: RunResilient: %v", c.Rank(), err)
			return
		}
		if c.Rank() == 0 && m.Recovery.Restores == 0 {
			t.Error("no rewind happened — the fault plan did not bite")
		}
		collectBits(s, &mu, got)
	})
	if t.Failed() {
		t.FailNow()
	}
	compareBits(t, want, got, "resilient workers=4")
}

// TestNewRejectsNegativeWorkers: the worker count is validated up front.
func TestNewRejectsNegativeWorkers(t *testing.T) {
	comm.Run(1, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, cavityForest())
		if err != nil {
			t.Error(err)
			return
		}
		cfg := cavityConfig()
		cfg.Workers = -1
		if _, err := New(c, forest, cfg); err == nil {
			t.Error("New accepted Workers = -1")
		}
	})
}

func TestWorkerPool(t *testing.T) {
	// Every index is executed exactly once, for any worker count, and the
	// reported worker id stays within the pool bounds.
	for _, w := range []int{0, 1, 2, 5, 16} {
		p := workerPool{workers: w}
		var hits [100]int32
		p.run(len(hits), func(worker, i int) {
			if worker < 0 || (w > 1 && worker >= w) || (w <= 1 && worker != 0) {
				t.Errorf("workers=%d: task %d ran on worker %d", w, i, worker)
			}
			hits[i]++
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", w, i, h)
			}
		}
	}
	// Zero tasks is a no-op.
	workerPool{workers: 4}.run(0, func(int, int) { t.Error("task ran") })
}

func TestWorkerPoolPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("worker panic was swallowed")
		}
	}()
	workerPool{workers: 3}.run(8, func(_, i int) {
		if i == 5 {
			panic("boom")
		}
	})
}
