package sim

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/output"
	"walberla/internal/testutil"
)

// Deterministic multi-layer chaos harness (make chaos-smoke). One seeded
// schedule composes faults across every layer the runtime can inject:
//
//   - frame layer: probabilistic drops, corruptions and delays plus a
//     directed sever — all transparently recovered by the transport's
//     retention/resend machinery, costing latency but never data;
//   - rank layer: two injected crashes and one silent hang — three
//     permanent failures, each healed by recruiting a parked spare;
//   - disk layer: a bit flipped in a committed checkpoint set while the
//     run is live — harmless, because every heal must be served from the
//     in-memory buddy replica.
//
// After every recovery the run must hold its invariants: the world back
// at full size, zero disk reads, and at the end a FieldHash (and the full
// bit pattern) identical to the fault-free reference, with no leaked
// goroutines and bounded repair time.

// chaosMTTRBound is the per-restore repair-time ceiling asserted by the
// soak — generous, since CI runs under the race detector.
const chaosMTTRBound = 15 * time.Second

// referenceFieldHash runs the scenario fault-free and returns its
// collective state fingerprint.
func referenceFieldHash(t *testing.T, ranks, steps, workers int) uint64 {
	t.Helper()
	var ref atomic.Uint64
	comm.Run(ranks, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), shrinkForest(ranks)))
		if err != nil {
			t.Error(err)
			return
		}
		cfg := cavityConfig()
		cfg.Workers = workers
		s, err := New(c, forest, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		mustRun(t, s, steps)
		h, err := s.FieldHash()
		if err != nil {
			t.Error(err)
			return
		}
		ref.Store(h)
	})
	if t.Failed() {
		t.Fatal("reference run failed")
	}
	return ref.Load()
}

// flipCheckpointBit waits for the first committed checkpoint set and
// flips one payload byte of its rank-0 file, then keeps quiet. Returns
// via the done channel whether a flip happened.
func flipCheckpointBit(dir string, stop <-chan struct{}, done chan<- bool) {
	for {
		select {
		case <-stop:
			done <- false
			return
		case <-time.After(2 * time.Millisecond):
		}
		sets := output.ListValidSets(dir)
		if len(sets) == 0 {
			continue
		}
		name := filepath.Join(dir, output.SetDirName(int(sets[0])), output.RankFileName(0))
		raw, err := os.ReadFile(name)
		if err != nil || len(raw) < 128 {
			continue
		}
		raw[len(raw)/2] ^= 0x10
		if err := os.WriteFile(name, raw, 0o644); err != nil {
			continue
		}
		done <- true
		return
	}
}

// TestChaosSoak is the acceptance soak: three permanent failures (two
// crashes and a silent hang) interleaved with continuous frame-layer
// faults and a disk-checkpoint bit flip, against a three-deep spare pool
// over real sockets. The run must finish at full world size with zero
// invariant violations.
func TestChaosSoak(t *testing.T) {
	testutil.CheckLeaks(t)
	const active, spares, steps, workers = 4, 3, 24, 2
	dir := t.TempDir()
	wantBits := shrinkReference(t, active, steps, workers)
	wantHash := referenceFieldHash(t, active, steps, workers)

	netOpts := socketOpts()
	netOpts.Faults = &comm.NetFaultPlan{
		Seed:     101,
		Drop:     0.02,
		Corrupt:  0.01,
		Delay:    0.05,
		MaxDelay: 2 * time.Millisecond,
		Severs:   []comm.SeverSpec{{From: 3, To: 0, AtFrame: 30}},
	}
	opts := comm.Options{
		Net: netOpts,
		Faults: &comm.FaultPlan{
			Seed: 101,
			Crashes: []comm.CrashSpec{
				{Rank: 1, Step: 6},
				{Rank: 2, Step: 12},
			},
			Hangs: []comm.CrashSpec{{Rank: 0, Step: 18}},
		},
		FailTimeout: time.Second,
	}
	rc := ResilienceConfig{
		Mode:            RecoverHeal,
		CheckpointEvery: 2,
		Dir:             dir,
		MaxFailures:     8,
		BackoffBase:     time.Millisecond,
		BackoffMax:      20 * time.Millisecond,
	}

	stopFlip := make(chan struct{})
	flipDone := make(chan bool, 1)
	go flipCheckpointBit(dir, stopFlip, flipDone)

	var mu sync.Mutex
	gotBits := make(map[[3]int][]uint64)
	var recovered []RecoveryStats
	var hashes []uint64
	var joined, retired atomic.Int64
	comm.RunWithOptions(active+spares, opts, func(c *comm.Comm) {
		cfg := cavityConfig()
		cfg.Workers = workers
		var s *Simulation
		var m Metrics
		var err error
		if c.WorldRank() >= active {
			var join bool
			s, m, join, err = RunSpareCtx(context.Background(), c, active, healDomainHeader(), cfg, steps, rc)
			if !join {
				if err != nil {
					t.Errorf("released spare %d: %v", c.WorldRank(), err)
				}
				return
			}
			joined.Add(1)
		} else {
			ac := c.GrowWorld(active)
			forest, derr := blockforest.Distribute(ac, forestFor(ac.Rank(), shrinkForest(active)))
			if derr != nil {
				t.Error(derr)
				return
			}
			s, err = New(ac, forest, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			m, err = s.RunResilient(steps, rc)
		}
		if errors.Is(err, ErrRetired) {
			retired.Add(1)
			return
		}
		if err != nil {
			t.Errorf("world rank %d: %v", c.WorldRank(), err)
			return
		}
		// Invariant: the world ended at full size.
		if m.Ranks != active {
			t.Errorf("world rank %d finished on %d ranks, want %d", c.WorldRank(), m.Ranks, active)
		}
		h, herr := s.FieldHash()
		if herr != nil {
			t.Errorf("world rank %d: FieldHash: %v", c.WorldRank(), herr)
			return
		}
		collectBits(s, &mu, gotBits)
		mu.Lock()
		recovered = append(recovered, m.Recovery)
		hashes = append(hashes, h)
		mu.Unlock()
	})
	close(stopFlip)
	flipped := <-flipDone

	if t.Failed() {
		t.Fatal("chaos soak failed")
	}

	// Invariant: the checkpoint corruption actually landed mid-run.
	if !flipped {
		t.Error("the disk bit-flip never fired — the schedule did not exercise the disk layer")
	}
	// Invariant: every permanent failure was absorbed by recruiting a
	// spare; nobody fell back to shrinking.
	if joined.Load() != retired.Load() {
		t.Errorf("%d spares joined for %d retired ranks", joined.Load(), retired.Load())
	}
	if retired.Load() < 3 {
		t.Errorf("%d permanent failures absorbed, want at least 3", retired.Load())
	}
	// Invariant: bit-identical state, by collective fingerprint and by
	// exhaustive comparison.
	for _, h := range hashes {
		if h != wantHash {
			t.Errorf("FieldHash %016x, want fault-free reference %016x", h, wantHash)
		}
	}
	assertBitsEqual(t, gotBits, wantBits)
	heals := 0
	for _, r := range recovered {
		heals += r.Heals
		// Invariant: every heal was served from the in-memory replica —
		// the (corrupted) disk sets were never even opened.
		if r.DiskReadsDuringRecovery != 0 {
			t.Errorf("recovery read disk %d times, want 0: %+v", r.DiskReadsDuringRecovery, r)
		}
		if r.Shrinks != 0 {
			t.Errorf("chaos run degraded to a shrink: %+v", r)
		}
		// Invariant: bounded repair time.
		if r.Restores > 0 {
			if mttr := r.TimeLost / time.Duration(r.Restores); mttr > chaosMTTRBound {
				t.Errorf("MTTR %v exceeds %v: %+v", mttr, chaosMTTRBound, r)
			}
		}
	}
	if heals == 0 {
		t.Error("no heal events recorded")
	}
}
