package sim

import (
	"math"
	"testing"

	"walberla/internal/field"
	"walberla/internal/lattice"
)

// naiveApplyForce is the pre-optimization body force loop kept as the
// reference: it recomputes 3 w_a (e_a . F) for every direction of every
// fluid cell and visits all Q directions even when the increment is
// zero.
func naiveApplyForce(bd *BlockData, st *lattice.Stencil, force [3]float64) {
	for z := 0; z < bd.Dst.Nz; z++ {
		for y := 0; y < bd.Dst.Ny; y++ {
			for x := 0; x < bd.Dst.Nx; x++ {
				if bd.Flags.Get(x, y, z) != field.Fluid {
					continue
				}
				for a := 0; a < st.Q; a++ {
					ef := float64(st.Cx[a])*force[0] + float64(st.Cy[a])*force[1] + float64(st.Cz[a])*force[2]
					if ef == 0 {
						continue
					}
					d := lattice.Direction(a)
					bd.Dst.Set(x, y, z, d, bd.Dst.Get(x, y, z, d)+3*st.W[a]*ef)
				}
			}
		}
	}
}

// forceBlock builds a standalone block with a mixed flag field: a solid
// slab in the middle (two full z-planes without fluid) plus scattered
// obstacle cells, so both row skipping and per-cell filtering are
// exercised.
func forceBlock(edge int) (*BlockData, *lattice.Stencil) {
	st := lattice.D3Q19()
	flags := field.NewFlagField(edge, edge, edge, 1)
	flags.Fill(field.Fluid)
	for z := edge / 2; z < edge/2+2 && z < edge; z++ {
		for y := 0; y < edge; y++ {
			for x := 0; x < edge; x++ {
				flags.Set(x, y, z, field.NoSlip)
			}
		}
	}
	for i := 0; i < edge; i++ {
		flags.Set(i, (i*7)%edge, (i*3)%edge, field.NoSlip)
	}
	dst := field.NewPDFField(st, edge, edge, edge, 1, field.AoS)
	dst.FillEquilibrium(1, 0.01, -0.02, 0.005)
	return &BlockData{Dst: dst, Flags: flags}, st
}

// The precomputed forcing matches the naive per-cell computation exactly
// (same additions in the same order per cell), for axis-aligned and
// diagonal forces.
func TestForcingMatchesNaive(t *testing.T) {
	for _, force := range [][3]float64{
		{1e-6, 0, 0},
		{0, -2e-6, 0},
		{1e-6, 2e-6, -3e-6},
		{0, 0, 0},
	} {
		bd, st := forceBlock(8)
		ref, _ := forceBlock(8)

		newForcing(st, force).apply(bd)
		naiveApplyForce(ref, st, force)

		a, b := bd.Dst.Data(), ref.Dst.Data()
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("force %v: word %d differs: %v != %v", force, i, a[i], b[i])
			}
		}
	}
}

// An axis-aligned force touches only the 10 D3Q19 directions with a
// nonzero matching velocity component; the rest are dropped up front.
func TestForcingPrecomputation(t *testing.T) {
	st := lattice.D3Q19()
	f := newForcing(st, [3]float64{1e-6, 0, 0})
	if len(f.dirs) != 10 {
		t.Errorf("axis-aligned force precomputed %d directions, want 10", len(f.dirs))
	}
	if g := newForcing(st, [3]float64{}); len(g.dirs) != 0 {
		t.Errorf("zero force precomputed %d directions, want 0", len(g.dirs))
	}
}

func BenchmarkApplyForce(b *testing.B) {
	const edge = 32
	bd, st := forceBlock(edge)
	f := newForcing(st, [3]float64{1e-6, 0, 0})
	cells := float64(edge * edge * edge)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.apply(bd)
	}
	b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
}

func BenchmarkApplyForceNaive(b *testing.B) {
	const edge = 32
	bd, st := forceBlock(edge)
	cells := float64(edge * edge * edge)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveApplyForce(bd, st, [3]float64{1e-6, 0, 0})
	}
	b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
}
