package sim

import (
	"math/rand"
	"testing"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/lattice"
)

func TestOffsetIndexBijective(t *testing.T) {
	seen := map[int]bool{}
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				i := offsetIndex([3]int{dx, dy, dz})
				if i < 0 || i > 26 {
					t.Fatalf("offsetIndex(%d,%d,%d) = %d out of range", dx, dy, dz, i)
				}
				if seen[i] {
					t.Fatalf("duplicate index %d", i)
				}
				seen[i] = true
			}
		}
	}
	if len(seen) != 27 {
		t.Errorf("covered %d indices, want 27", len(seen))
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	s := lattice.D3Q19()
	r := rand.New(rand.NewSource(4))
	for _, layout := range []field.Layout{field.AoS, field.SoA} {
		src := field.NewPDFField(s, 6, 5, 4, 1, layout)
		for i := range src.Data() {
			src.Data()[i] = r.Float64()
		}
		dst := src.CopyShape()
		for dz := -1; dz <= 1; dz++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					o := [3]int{dx, dy, dz}
					dirs := commDirections(s, o)
					if len(dirs) == 0 {
						continue
					}
					reg := sendRegion([3]int{6, 5, 4}, o)
					buf := pack(src, reg, dirs)
					if len(buf) != len(dirs)*reg.cells() {
						t.Fatalf("offset %v: packed %d values, want %d", o, len(buf), len(dirs)*reg.cells())
					}
					unpack(dst, reg, dirs, buf)
					for z := reg.lo[2]; z < reg.hi[2]; z++ {
						for y := reg.lo[1]; y < reg.hi[1]; y++ {
							for x := reg.lo[0]; x < reg.hi[0]; x++ {
								for _, d := range dirs {
									if dst.Get(x, y, z, d) != src.Get(x, y, z, d) {
										t.Fatalf("offset %v: value lost at (%d,%d,%d,%d)", o, x, y, z, d)
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

func TestSendRecvRegionsComplementary(t *testing.T) {
	cells := [3]int{8, 6, 4}
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				o := [3]int{dx, dy, dz}
				send := sendRegion(cells, o)
				recv := recvRegion(cells, o)
				// Same shape: the sender's slab lands exactly in the
				// receiver's ghost slab.
				for d := 0; d < 3; d++ {
					if send.hi[d]-send.lo[d] != recv.hi[d]-recv.lo[d] {
						t.Fatalf("offset %v: region shapes differ on axis %d", o, d)
					}
					// Send regions are interior, recv regions in the ghost
					// ring on non-zero axes.
					if o[d] != 0 {
						if send.lo[d] < 0 || send.hi[d] > cells[d] {
							t.Fatalf("offset %v: send region leaves interior", o)
						}
						if recv.lo[d] >= 0 && recv.hi[d] <= cells[d] {
							t.Fatalf("offset %v: recv region not in ghost ring", o)
						}
					}
				}
			}
		}
	}
}

// The exchange plan of a fully periodic 2x2x2 forest on one rank must
// contain only local operations covering every non-corner offset of every
// block.
func TestExchangePlanStructure(t *testing.T) {
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{2, 2, 2}, [3]int{4, 4, 4}, [3]bool{true, true, true})
	f.BalanceMorton(1)
	comm.Run(1, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, f)
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, Config{Exchange: ExchangePerPair, SetupFlags: func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
			flags.Fill(field.Fluid)
		}})
		if err != nil {
			t.Error(err)
			return
		}
		// 8 blocks x 18 non-corner offsets (6 faces + 12 edges for D3Q19).
		if len(s.plan) != 8*18 {
			t.Errorf("plan has %d ops, want %d", len(s.plan), 8*18)
		}
		for _, op := range s.plan {
			if op.remote {
				t.Error("single-rank plan contains remote op")
			}
			if op.peer == nil {
				t.Error("local op without peer")
			}
			if len(op.sendDirs) == 0 || len(op.sendDirs) != len(op.recvDirs) {
				t.Errorf("op with %d send, %d recv dirs", len(op.sendDirs), len(op.recvDirs))
			}
		}
	})
}

// Ghost values after one exchange must equal the neighbor's boundary
// values — checked directly on a periodic two-block domain.
func TestExchangeGhostValues(t *testing.T) {
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{2, 1, 1}, [3]int{4, 4, 4}, [3]bool{true, true, true})
	f.BalanceMorton(2)
	comm.Run(2, func(c *comm.Comm) {
		forest, _ := blockforest.Distribute(c, forestOnRank0(c, f))
		s, err := New(c, forest, Config{SetupFlags: func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
			flags.Fill(field.Fluid)
		}})
		if err != nil {
			t.Error(err)
			return
		}
		// Tag each block's PDFs with its grid coordinate so provenance is
		// visible after the exchange.
		for _, bd := range s.Blocks {
			tag := float64(bd.Block.Coord[0] + 1)
			for i := range bd.Src.Data() {
				bd.Src.Data()[i] = tag
			}
		}
		if err := s.exchangeGhostLayers(); err != nil {
			t.Error(err)
			return
		}
		for _, bd := range s.Blocks {
			// The +x ghost slab must carry the other block's tag.
			other := float64(1 + bd.Block.Coord[0]) // own tag
			wantNeighbor := 3 - other               // 1 <-> 2
			dirs := commDirections(s.Stencil, [3]int{1, 0, 0})
			for _, d := range dirs {
				// The ghost cell holds PDFs pointing INTO this block from
				// the neighbor, i.e. directions with cx == -1.
				inv := s.Stencil.Inv[d]
				got := bd.Src.Get(4, 2, 2, inv)
				if got != wantNeighbor {
					t.Errorf("block %v ghost +x dir %d = %v, want %v", bd.Block.Coord, inv, got, wantNeighbor)
				}
			}
		}
	})
}

func forestOnRank0(c *comm.Comm, f *blockforest.SetupForest) *blockforest.SetupForest {
	if c.Rank() == 0 {
		return f
	}
	return nil
}

func TestCommDirectionsAllOffsets(t *testing.T) {
	s := lattice.D3Q19()
	total := 0
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				total += len(commDirections(s, [3]int{dx, dy, dz}))
			}
		}
	}
	// Every non-center direction crosses exactly one face and, for
	// diagonal velocities, additionally the matching edges: 6 faces x 5 +
	// 12 edges x 1 = 42.
	if total != 42 {
		t.Errorf("total communicated directions = %d, want 42", total)
	}
}
