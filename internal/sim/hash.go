package sim

import (
	"fmt"
	"math"
	"sort"

	"walberla/internal/field"
	"walberla/internal/lattice"
)

// FieldHash is the collective state fingerprint of the session and
// scenario APIs: every rank hashes the interior cells of its blocks'
// current PDF fields, the per-block digests are gathered, ordered by
// global block coordinate and folded into a single value that every rank
// returns. Two runs of the same scenario produce the same hash exactly
// when their fields are bit-identical — independent of rank count,
// worker count, block assignment and memory layout, because the fold
// order is the global coordinate order and cells are visited in
// canonical (z, y, x, direction) order through the layout-agnostic
// accessor.
func (s *Simulation) FieldHash() (uint64, error) {
	type blockHash struct {
		Coord [3]int
		Hash  uint64
	}
	local := make([]blockHash, 0, len(s.Blocks))
	for _, bd := range s.Blocks {
		local = append(local, blockHash{bd.Block.Coord, hashInterior(bd.Src)})
	}
	gathered, err := s.Comm.GatherErr(0, local)
	if err != nil {
		return 0, err
	}
	var h uint64
	if s.Comm.Rank() == 0 {
		var all []blockHash
		for _, g := range gathered {
			all = append(all, g.([]blockHash)...)
		}
		sort.Slice(all, func(i, j int) bool {
			a, b := all[i].Coord, all[j].Coord
			if a[2] != b[2] {
				return a[2] < b[2]
			}
			if a[1] != b[1] {
				return a[1] < b[1]
			}
			return a[0] < b[0]
		})
		h = fnvOffset
		for _, bh := range all {
			for _, c := range bh.Coord {
				h = fnvMix(h, uint64(int64(c)))
			}
			h = fnvMix(h, bh.Hash)
		}
	}
	v, err := s.Comm.BcastErr(0, h)
	if err != nil {
		return 0, err
	}
	hv, ok := v.(uint64)
	if !ok {
		return 0, fmt.Errorf("sim: field hash broadcast carried %T", v)
	}
	return hv, nil
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a style running hash,
// byte-wise so single-bit differences in any byte diffuse.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return h
}

// hashInterior digests one PDF field's interior cells (ghost layers are
// derived state re-filled by the next exchange).
func hashInterior(f *field.PDFField) uint64 {
	h := uint64(fnvOffset)
	for z := 0; z < f.Nz; z++ {
		for y := 0; y < f.Ny; y++ {
			for x := 0; x < f.Nx; x++ {
				for a := 0; a < f.Stencil.Q; a++ {
					h = fnvMix(h, math.Float64bits(f.Get(x, y, z, lattice.Direction(a))))
				}
			}
		}
	}
	return h
}
