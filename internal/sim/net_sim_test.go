package sim

import (
	"sync"
	"testing"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/telemetry"
)

// socketOpts is the shared socket-transport configuration of the
// cross-transport tests: unix sockets with a brisk heartbeat so the
// fault-driven tests converge quickly.
func socketOpts() *comm.NetOptions {
	return &comm.NetOptions{
		Network:        "unix",
		HeartbeatEvery: 2 * time.Millisecond,
	}
}

// runCavityBits executes the two-rank cavity scenario on the given
// communicator options and returns every block's exact bit pattern.
func runCavityBits(t *testing.T, opts comm.Options, workers, steps int) map[[3]int][]uint64 {
	t.Helper()
	var mu sync.Mutex
	bits := make(map[[3]int][]uint64)
	comm.RunWithOptions(2, opts, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), cavityForest()))
		if err != nil {
			t.Error(err)
			return
		}
		cfg := cavityConfig()
		cfg.Workers = workers
		s, err := New(c, forest, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		mustRun(t, s, steps)
		collectBits(s, &mu, bits)
	})
	if t.Failed() {
		t.Fatal("cavity run failed")
	}
	return bits
}

// TestCrossTransportBitIdentical is the transport-abstraction acceptance
// test: the same scenario stepped over the in-process backend and over
// real sockets (unix and TCP) must produce bit-identical fields across
// intra-rank worker counts — the wire codec is an exact float64 carrier.
func TestCrossTransportBitIdentical(t *testing.T) {
	const steps = 6
	for _, workers := range []int{1, 2, 4, 7} {
		t.Run(workerName(workers), func(t *testing.T) {
			want := runCavityBits(t, comm.Options{}, workers, steps)
			got := runCavityBits(t, comm.Options{Net: socketOpts()}, workers, steps)
			assertBitsEqual(t, got, want)
		})
	}
	t.Run("tcp", func(t *testing.T) {
		want := runCavityBits(t, comm.Options{}, 1, steps)
		got := runCavityBits(t, comm.Options{Net: &comm.NetOptions{Network: "tcp"}}, 1, steps)
		assertBitsEqual(t, got, want)
	})
}

// TestNetTransientFaultsBitIdentical injects frame-level drops, corruption
// and delays into a socket run: the retention/resend protocol must absorb
// every fault with no observable effect — the result stays bit-identical
// to the in-process reference and no failure is ever declared.
func TestNetTransientFaultsBitIdentical(t *testing.T) {
	const steps = 6
	want := runCavityBits(t, comm.Options{}, 2, steps)

	opts := socketOpts()
	opts.Faults = &comm.NetFaultPlan{
		Seed:     42,
		Drop:     0.03,
		Corrupt:  0.03,
		Delay:    0.05,
		MaxDelay: 2 * time.Millisecond,
		Severs: []comm.SeverSpec{
			{From: 0, To: 1, AtFrame: 5},
			{From: 1, To: 0, AtFrame: 9},
		},
	}
	var mu sync.Mutex
	got := make(map[[3]int][]uint64)
	var injected, resent int64
	comm.RunWithOptions(2, comm.Options{Net: opts, FailTimeout: 30 * time.Second}, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), cavityForest()))
		if err != nil {
			t.Error(err)
			return
		}
		cfg := cavityConfig()
		cfg.Workers = 2
		s, err := New(c, forest, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		mustRun(t, s, steps)
		collectBits(s, &mu, got)
		if f := c.Failed(); f != nil {
			t.Errorf("rank %d: transient faults escalated to a failure: %v", c.Rank(), f)
		}
		ns, ok := c.NetStats()
		if !ok {
			t.Errorf("rank %d: no NetStats on the socket transport", c.Rank())
			return
		}
		mu.Lock()
		injected += ns.InjectedDrops + ns.InjectedCorrupts + ns.InjectedSevers
		resent += ns.ResentFrames
		mu.Unlock()
	})
	if t.Failed() {
		t.Fatal("faulty socket run failed")
	}
	assertBitsEqual(t, got, want)
	if injected == 0 {
		t.Fatal("fault plan injected nothing — the test exercised no recovery")
	}
	if resent == 0 {
		t.Fatal("faults were injected but nothing was resent")
	}
}

// TestNetShrinkRecoveryCrash runs the full shrinking-recovery pipeline
// over real sockets: a rank crashes mid-run, the survivors detect it,
// shrink the world, adopt the dead rank's blocks from the in-memory buddy
// replica — zero disk reads — and finish bit-identical to an
// uninterrupted run.
func TestNetShrinkRecoveryCrash(t *testing.T) {
	const steps, victim = 8, 1
	want := shrinkReference(t, 3, steps, 1)
	opts := comm.Options{
		Net:         socketOpts(),
		Faults:      &comm.FaultPlan{Seed: 11, Crashes: []comm.CrashSpec{{Rank: victim, Step: 5}}},
		FailTimeout: 2 * time.Second,
	}
	got, recovered := runShrinkScenario(t, opts, victim, steps, 1, ResilienceConfig{
		Mode:            RecoverShrink,
		CheckpointEvery: 2,
		MaxFailures:     4,
		BackoffBase:     time.Millisecond,
		BackoffMax:      10 * time.Millisecond,
	})
	assertBitsEqual(t, got, want)
	for _, r := range recovered {
		if r.Shrinks != 1 || r.BuddyRestores != 1 || r.DiskRestores != 0 {
			t.Errorf("crash over sockets was not recovered by one buddy shrink: %+v", r)
		}
		if r.DiskReadsDuringRecovery != 0 {
			t.Errorf("buddy recovery over sockets read disk %d times, want 0: %+v", r.DiskReadsDuringRecovery, r)
		}
	}
}

// TestNetShrinkRecoveryBlackHole is the connection-level acceptance test:
// the victim's NIC "fails" (a frame-layer black hole — it keeps computing
// but its frames go nowhere and nothing comes back), the transport's
// failure detector accuses it within FailTimeout, and the survivors
// complete shrinking recovery from the in-memory replicas, bit-identical
// and without touching disk. AfterFrames is calibrated to the scenario's
// frame trace: with a replica generation per step, the victim's ninth
// data frame lands well past the first complete generation (replica
// frames are atomic — delivered whole or not at all, so an interrupted
// generation leaves the previous one intact) and well before the run's
// final collectives, so the accusation fires mid-stepping with a wide
// scheduling margin on both sides.
func TestNetShrinkRecoveryBlackHole(t *testing.T) {
	const steps, victim = 8, 1
	const failTimeout = 300 * time.Millisecond
	want := shrinkReference(t, 3, steps, 1)

	netOpts := socketOpts()
	netOpts.Faults = &comm.NetFaultPlan{BlackHoles: []comm.HoleSpec{{Rank: victim, AfterFrames: 9}}}
	opts := comm.Options{Net: netOpts, FailTimeout: failTimeout}

	start := time.Now()
	got, recovered := runShrinkScenario(t, opts, victim, steps, 1, ResilienceConfig{
		Mode:            RecoverShrink,
		CheckpointEvery: 1,
		MaxFailures:     4,
		BackoffBase:     time.Millisecond,
		BackoffMax:      10 * time.Millisecond,
	})
	elapsed := time.Since(start)
	assertBitsEqual(t, got, want)
	for _, r := range recovered {
		if r.Shrinks != 1 || r.BuddyRestores != 1 || r.DiskRestores != 0 {
			t.Errorf("black hole was not recovered by one buddy shrink: %+v", r)
		}
		if r.DiskReadsDuringRecovery != 0 {
			t.Errorf("buddy recovery performed %d disk reads, want 0: %+v", r.DiskReadsDuringRecovery, r)
		}
	}
	// Detection must be bounded by the accusation clock, not the run: the
	// whole faulty run (compute included) finishing within a few multiples
	// of FailTimeout proves the detector fired on time.
	if elapsed > 10*failTimeout {
		t.Errorf("faulty run took %v — failure detection is not bounded by FailTimeout (%v)", elapsed, failTimeout)
	}
}

// TestStepZeroAllocSocket extends the allocation-regression gate to the
// socket transport: in the steady state every frame is written gathered
// from the persistent aggregated send buffers and read into rotating
// receive buffers, so a full step over unix sockets performs zero heap
// allocations. The heartbeat interval is set beyond the test's lifetime
// so the measurement sees pure data traffic (background liveness probes
// allocate nothing either, but their timers tick asynchronously and
// AllocsPerRun counts every goroutine's mallocs).
func TestStepZeroAllocSocket(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	const runs = 20
	quiet := &comm.NetOptions{
		Network:        "unix",
		HeartbeatEvery: time.Hour,
	}
	comm.RunWithOptions(2, comm.Options{Net: quiet}, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), allocForest()))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, Config{Workers: 1, SetupFlags: allFluid})
		if err != nil {
			t.Error(err)
			return
		}
		step := func() {
			if err := s.Step(); err != nil {
				t.Error(err)
			}
		}
		for i := 0; i < 5; i++ {
			step()
		}
		if c.Rank() != 0 {
			for i := 0; i < runs+1; i++ {
				step()
			}
			return
		}
		if avg := testing.AllocsPerRun(runs, step); avg != 0 {
			t.Errorf("socket Step allocates %.1f objects per step in steady state, want 0", avg)
		}
	})
}

// TestNetTelemetryWired checks the sim wires the transport's telemetry:
// a traced socket run must populate the comm.net.* counters.
func TestNetTelemetryWired(t *testing.T) {
	trace := telemetry.NewTrace()
	reg := telemetry.NewRegistry()
	comm.RunWithOptions(2, comm.Options{Net: socketOpts()}, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), cavityForest()))
		if err != nil {
			t.Error(err)
			return
		}
		cfg := cavityConfig()
		cfg.Tracer = trace.NewTracer(c.Rank(), 1, 0)
		cfg.Metrics = reg
		s, err := New(c, forest, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		mustRun(t, s, 3)
	})
	if t.Failed() {
		t.FailNow()
	}
	for _, name := range []string{"comm.net.frames_sent", "comm.net.frames_recv", "comm.net.bytes_sent", "comm.net.bytes_recv"} {
		if v := reg.Counter(name).Value(); v == 0 {
			t.Errorf("counter %s = 0 after a traced socket run", name)
		}
	}
}
