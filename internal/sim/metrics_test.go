package sim

import (
	"math"
	"sync"
	"testing"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
)

// metricsSim builds a small cavity simulation on the given decomposition
// for metrics tests.
func metricsSim(t *testing.T, c *comm.Comm, ranks int, grid, cells [3]int) *Simulation {
	t.Helper()
	domain := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
	f := blockforest.NewSetupForest(domain, grid, cells, [3]bool{})
	f.BalanceMorton(ranks)
	forest, err := blockforest.Distribute(c, forestFor(c.Rank(), f))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c, forest, Config{Tau: 0.8, SetupFlags: cavityFlags})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// gatherMetrics must reduce cell counts with a global sum and wall time
// with a global max, and derive MLUPS from the reduced values — every
// rank reports the identical global picture.
func TestGatherMetricsGlobalReduction(t *testing.T) {
	const ranks, steps = 4, 3
	grid, cells := [3]int{2, 2, 1}, [3]int{4, 4, 4}
	wantCells := int64(grid[0] * cells[0] * grid[1] * cells[1] * grid[2] * cells[2])

	var mu sync.Mutex
	var got []Metrics
	runRanks(t, ranks, func(c *comm.Comm) {
		s := metricsSim(t, c, ranks, grid, cells)
		m := mustRun(t, s, steps)
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})

	if len(got) != ranks {
		t.Fatalf("collected %d metrics, want %d", len(got), ranks)
	}
	for _, m := range got {
		if m != got[0] {
			t.Fatalf("ranks disagree on global metrics:\n%+v\n%+v", m, got[0])
		}
	}
	m := got[0]
	if m.Steps != steps || m.Ranks != ranks {
		t.Fatalf("steps=%d ranks=%d, want %d/%d", m.Steps, m.Ranks, steps, ranks)
	}
	if m.TotalCells != wantCells {
		t.Fatalf("TotalCells = %d, want %d", m.TotalCells, wantCells)
	}
	if m.TotalFluidCells <= 0 || m.TotalFluidCells > m.TotalCells {
		t.Fatalf("TotalFluidCells = %d out of range (0, %d]", m.TotalFluidCells, m.TotalCells)
	}
	if m.WallTime <= 0 {
		t.Fatalf("WallTime = %v, want > 0", m.WallTime)
	}
	wantMLUPS := float64(m.TotalCells) * steps / m.WallTime.Seconds() / 1e6
	if math.Abs(m.MLUPS-wantMLUPS) > 1e-9*wantMLUPS {
		t.Fatalf("MLUPS = %v, want %v (from reduced cells and wall time)", m.MLUPS, wantMLUPS)
	}
	if m.MFLUPS <= 0 || m.MFLUPS > m.MLUPS {
		t.Fatalf("MFLUPS = %v out of range (0, %v]", m.MFLUPS, m.MLUPS)
	}
	if per := m.MLUPSPerCore(); math.Abs(per-m.MLUPS/ranks) > 1e-12 {
		t.Fatalf("MLUPSPerCore = %v, want %v", per, m.MLUPS/ranks)
	}
	if f := m.FluidFraction(); f <= 0 || f > 1 {
		t.Fatalf("FluidFraction = %v out of (0, 1]", f)
	}
	if tps := m.TimeStepsPerSecond(); math.Abs(tps-steps/m.WallTime.Seconds()) > 1e-9 {
		t.Fatalf("TimeStepsPerSecond = %v", tps)
	}
	// A plain Run performs no fault-tolerance work.
	if m.Recovery != (RecoveryStats{}) {
		t.Fatalf("plain Run produced recovery stats: %+v", m.Recovery)
	}
}

// CommFraction is sum(commTime)/sum(wall) over ranks: with the phase
// timers pinned to known values the reduction is exact.
func TestCommFraction(t *testing.T) {
	const ranks = 2
	var mu sync.Mutex
	var got []Metrics
	runRanks(t, ranks, func(c *comm.Comm) {
		s := metricsSim(t, c, ranks, [3]int{2, 1, 1}, [3]int{4, 4, 4})
		mustRun(t, s, 1)
		// Pin the per-rank inputs: rank 0 spends 300ms of 1s communicating,
		// rank 1 spends 100ms of 1s — globally 400ms of 2s = 20%.
		if c.Rank() == 0 {
			s.commTime = 300 * time.Millisecond
		} else {
			s.commTime = 100 * time.Millisecond
		}
		m, err := s.gatherMetrics(1, time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	for _, m := range got {
		if math.Abs(m.CommFraction-0.2) > 1e-12 {
			t.Fatalf("CommFraction = %v, want 0.2", m.CommFraction)
		}
	}
	// Degenerate wall time must not divide by zero.
	var z Metrics
	if z.TimeStepsPerSecond() != 0 || z.FluidFraction() != 0 {
		t.Fatal("zero metrics must stay zero")
	}
}

// A fault-free resilient run accounts its protection work in
// Metrics.Recovery: checkpoint sets on disk, buddy replications in
// memory, and no restores or replays.
func TestRecoveryAccounting(t *testing.T) {
	const ranks, steps, every = 2, 6, 2
	dir := t.TempDir()
	var mu sync.Mutex
	var got []Metrics
	runRanks(t, ranks, func(c *comm.Comm) {
		s := metricsSim(t, c, ranks, [3]int{2, 1, 1}, [3]int{4, 4, 4})
		m, err := s.RunResilient(steps, ResilienceConfig{
			CheckpointEvery: every,
			Dir:             dir,
			Mode:            RecoverShrink,
		})
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	for _, m := range got {
		r := m.Recovery
		// Disk sets at steps 2 and 4 (never step 0); buddy generations at
		// steps 0, 2 and 4.
		if r.CheckpointsWritten != 2 {
			t.Fatalf("CheckpointsWritten = %d, want 2", r.CheckpointsWritten)
		}
		if r.CheckpointBytes <= 0 {
			t.Fatalf("CheckpointBytes = %d, want > 0", r.CheckpointBytes)
		}
		if r.Replications != 3 {
			t.Fatalf("Replications = %d, want 3", r.Replications)
		}
		if r.ReplicaBytes <= 0 {
			t.Fatalf("ReplicaBytes = %d, want > 0", r.ReplicaBytes)
		}
		if r.FailuresDetected != 0 || r.Restores != 0 || r.StepsReplayed != 0 ||
			r.Shrinks != 0 || r.BlocksAdopted != 0 || r.TimeLost != 0 {
			t.Fatalf("fault-free run accounted failures: %+v", r)
		}
	}
}
