package sim

import (
	"fmt"
	"sort"
	"sync"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/lattice"
	"walberla/internal/telemetry"
)

// Rank-aggregated ghost exchange (ExchangeAggregated, the default wire
// format — see docs/EXCHANGE.md).
//
// At plan build time every remote boundary slab is entered into the
// manifest of its neighbor-rank channel with a precomputed offset into
// one contiguous aggregate buffer. Each step then packs all slabs bound
// for a rank directly into that rank's aggregate (pack tasks fan out over
// the worker pool, writing to disjoint sub-slices) and issues exactly ONE
// message per neighbor rank — O(neighbor ranks) messages per step instead
// of O(block pairs), the message aggregation of the SC13 framework.
//
// Both sides sort their manifest by the same canonical key — (Morton key
// of the SENDING block, offset index of the SENDING direction) — so the
// receiver's unpack windows line up with the sender's pack windows without
// any per-slab headers on the wire. The fixed manifest order also makes
// the pack byte-for-byte deterministic for every worker count, which the
// resilient rewind-and-replay driver depends on.
//
// Buffer ownership: the transport is eager and zero-copy (the receiver
// sees the sender's buffer), so a sender must not overwrite a buffer the
// receiver may still be unpacking. Each channel therefore owns TWO
// persistent aggregate send buffers used alternately (s.exParity). Rank A
// repacks a buffer at step N+2 only after completing step N+1, which
// required B's step-N+1 message, which B sent after finishing its step-N
// unpack of that very buffer — a happens-before chain that makes two
// buffers sufficient for any worker count. Receive delivery is zero-copy:
// the channel's inbox is the sender's aggregate, valid until the next
// exchange completes.

// tagAggregate is the single tag of all aggregated exchange traffic: one
// message per (sender, receiver, step), matched in step order by the
// per-(source, tag) FIFO of the transport. It lives above every legacy
// per-pair tag (tree*27+offset) and below the migration tags (1<<30).
const tagAggregate = 1 << 29

// slabOp is one manifest entry of a rank channel: a boundary slab of a
// local block with its precomputed window [off, off+n) into the channel's
// aggregate buffer.
type slabOp struct {
	bd     *BlockData
	dirs   []lattice.Direction
	reg    region
	off, n int
	// key is the canonical manifest order: (Morton key of the sending
	// block, offset index of the sending direction), computable by both
	// sides of the channel.
	key aggKey
}

type aggKey struct {
	block uint64
	off   int
}

func (a aggKey) less(b aggKey) bool {
	if a.block != b.block {
		return a.block < b.block
	}
	return a.off < b.off
}

// localOp is a same-rank boundary exchange: a direct field-to-field copy
// from the source block's interior slab into the peer's ghost slab, with
// no staging buffer at all ("fast local communication").
type localOp struct {
	src, dst *BlockData
	srcReg   region
	dstReg   region
	dirs     []lattice.Direction
}

// rankChannel aggregates all traffic between this rank and one neighbor
// rank into a single message per step and direction.
type rankChannel struct {
	rank       int
	send       []slabOp
	recv       []slabOp
	sendFloats int
	recvFloats int
	// bufs are the two persistent aggregate send buffers, used alternately
	// (see the ownership comment above).
	bufs [2][]float64
	// req is the persistent receive request, re-posted every step.
	req comm.RecvRequest
	// inbox is the aggregate delivered for the current step (the sender's
	// buffer, zero-copy); cleared after unpack.
	inbox []float64
}

// packTask indexes one parallel pack-phase task: a local copy
// (chIdx < 0, index into locals) or a remote slab pack (channel chIdx,
// manifest entry slabIdx).
type packTask struct {
	chIdx   int
	slabIdx int
}

// aggBufPool recycles aggregate buffers across plan rebuilds, bounding
// allocation churn when block assignments change at runtime. Buffers may
// only be released when the rebuild trigger is collective among every
// rank whose zero-copy unpack read them (rebalancing). Failure-recovery
// rebuilds skip the release: the dead rank's last unpack never
// synchronizes with the survivors again, so repacking its input would be
// a data race. See rebuildPlan.
var aggBufPool sync.Pool

func aggGetBuf(n int) []float64 {
	if v := aggBufPool.Get(); v != nil {
		if b := v.([]float64); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]float64, n)
}

func aggPutBuf(b []float64) {
	if cap(b) > 0 {
		aggBufPool.Put(b[:0]) //nolint:staticcheck // slice header boxing only on rebuilds
	}
}

// buildAggregatePlan enumerates the boundary exchanges of all local
// blocks and groups the remote ones into per-neighbor-rank channels with
// canonically ordered manifests and precomputed buffer windows.
func buildAggregatePlan(s *Simulation) (locals []localOp, channels []rankChannel) {
	me := s.Comm.Rank()
	byRank := make(map[int]int) // neighbor rank -> index into channels
	for _, bd := range s.Blocks {
		cells := bd.Block.Cells
		for _, n := range bd.Block.Neighbors {
			o := n.Offset
			sendDirs := commDirections(s.Stencil, o)
			if len(sendDirs) == 0 {
				continue // corner offsets carry no D3Q19 PDFs
			}
			ro := [3]int{-o[0], -o[1], -o[2]}
			if n.Rank == me {
				peer, ok := s.byCoord[n.Coord]
				if !ok {
					panic(fmt.Sprintf("sim: local neighbor %v missing", n.Coord))
				}
				locals = append(locals, localOp{
					src:    bd,
					dst:    peer,
					srcReg: sendRegion(cells, o),
					dstReg: recvRegion(peer.Block.Cells, ro),
					dirs:   sendDirs,
				})
				continue
			}
			ci, ok := byRank[n.Rank]
			if !ok {
				ci = len(channels)
				byRank[n.Rank] = ci
				channels = append(channels, rankChannel{rank: n.Rank})
			}
			ch := &channels[ci]
			// Send entry: we are the sender — key by our block and offset.
			ch.send = append(ch.send, slabOp{
				bd:   bd,
				dirs: sendDirs,
				reg:  sendRegion(cells, o),
				key:  aggKey{blockforest.MortonKey(bd.Block.Coord), offsetIndex(o)},
			})
			// Receive entry: the NEIGHBOR is the sender — key by its block
			// and its sending offset (the reverse of ours), so both sides
			// order the manifest identically.
			ch.recv = append(ch.recv, slabOp{
				bd:   bd,
				dirs: commDirections(s.Stencil, ro),
				reg:  recvRegion(cells, o),
				key:  aggKey{blockforest.MortonKey(n.Coord), offsetIndex(ro)},
			})
		}
	}
	// Deterministic channel order (ascending neighbor rank) and canonical
	// manifest order within each channel.
	sort.Slice(channels, func(i, j int) bool { return channels[i].rank < channels[j].rank })
	for i := range channels {
		ch := &channels[i]
		sort.Slice(ch.send, func(a, b int) bool { return ch.send[a].key.less(ch.send[b].key) })
		sort.Slice(ch.recv, func(a, b int) bool { return ch.recv[a].key.less(ch.recv[b].key) })
		off := 0
		for k := range ch.send {
			sl := &ch.send[k]
			sl.off, sl.n = off, len(sl.dirs)*sl.reg.cells()
			off += sl.n
		}
		ch.sendFloats = off
		off = 0
		for k := range ch.recv {
			sl := &ch.recv[k]
			sl.off, sl.n = off, len(sl.dirs)*sl.reg.cells()
			off += sl.n
		}
		ch.recvFloats = off
		ch.bufs[0] = aggGetBuf(ch.sendFloats)
		ch.bufs[1] = aggGetBuf(ch.sendFloats)
	}
	return locals, channels
}

// releaseAggregateBuffers returns the channels' persistent buffers to the
// pool before a plan rebuild discards them.
func releaseAggregateBuffers(channels []rankChannel) {
	for i := range channels {
		aggPutBuf(channels[i].bufs[0])
		aggPutBuf(channels[i].bufs[1])
	}
}

// postExchangeAggregated starts one aggregated ghost layer
// synchronization: local copies and remote slab packs fan out over the
// worker pool (each task writes a disjoint ghost slab or a disjoint
// aggregate sub-slice), then exactly one message per neighbor rank is
// sent from the step's aggregate buffer and one receive per neighbor
// rank is posted. Steady-state, the whole phase performs zero heap
// allocations.
func (s *Simulation) postExchangeAggregated() error {
	s.pool.run(len(s.packTasks), s.packFn)
	p := s.exParity
	for i := range s.channels {
		ch := &s.channels[i]
		if err := s.Comm.SendFloat64s(ch.rank, tagAggregate, ch.bufs[p]); err != nil {
			return err
		}
	}
	for i := range s.channels {
		ch := &s.channels[i]
		s.Comm.IrecvInit(&ch.req, ch.rank, tagAggregate)
	}
	s.exParity ^= 1
	return nil
}

// completeExchangeAggregated waits for each neighbor rank's aggregate and
// unpacks all slabs by manifest on the worker pool.
func (s *Simulation) completeExchangeAggregated() error {
	for i := range s.channels {
		ch := &s.channels[i]
		buf, _, err := ch.req.WaitFloat64s()
		if err != nil {
			return err
		}
		if len(buf) != ch.recvFloats {
			panic(fmt.Sprintf("sim: rank %d received %d floats from rank %d, manifest expects %d",
				s.Comm.Rank(), len(buf), ch.rank, ch.recvFloats))
		}
		ch.inbox = buf
	}
	s.pool.run(len(s.unpackTasks), s.unpackFn)
	for i := range s.channels {
		s.channels[i].inbox = nil // the sender reclaims it two steps on
	}
	return nil
}

// buildExchangeClosures precomputes the flattened task lists and the pool
// closures of the aggregated exchange, so postExchange/completeExchange
// allocate nothing per step (a fresh closure per pool.run call would
// escape to the heap).
func (s *Simulation) buildExchangeClosures() {
	s.packTasks = s.packTasks[:0]
	for li := range s.locals {
		s.packTasks = append(s.packTasks, packTask{chIdx: -1, slabIdx: li})
	}
	s.unpackTasks = s.unpackTasks[:0]
	for ci := range s.channels {
		for si := range s.channels[ci].send {
			s.packTasks = append(s.packTasks, packTask{chIdx: ci, slabIdx: si})
		}
		for si := range s.channels[ci].recv {
			s.unpackTasks = append(s.unpackTasks, packTask{chIdx: ci, slabIdx: si})
		}
	}
	s.packFn = func(worker, i int) {
		t := s.packTasks[i]
		lane := s.tel.worker(worker)
		start := lane.Start()
		if t.chIdx < 0 {
			l := &s.locals[t.slabIdx]
			field.CopyRegion(l.dst.Src, l.dstReg.lo, l.src.Src, l.srcReg.lo, l.srcReg.hi, l.dirs)
			lane.Span(telemetry.PhaseLocalCopy, s.steps, int32(i), start)
			return
		}
		ch := &s.channels[t.chIdx]
		sl := &ch.send[t.slabIdx]
		buf := ch.bufs[s.exParity][sl.off : sl.off+sl.n]
		if n := sl.bd.Src.PackRegion(buf, sl.reg.lo, sl.reg.hi, sl.dirs); n != sl.n {
			panic(fmt.Sprintf("sim: packed %d of %d values", n, sl.n))
		}
		lane.Span(telemetry.PhasePack, s.steps, int32(i), start)
	}
	s.unpackFn = func(worker, i int) {
		t := s.unpackTasks[i]
		lane := s.tel.worker(worker)
		start := lane.Start()
		ch := &s.channels[t.chIdx]
		sl := &ch.recv[t.slabIdx]
		buf := ch.inbox[sl.off : sl.off+sl.n]
		if n := sl.bd.Src.UnpackRegion(buf, sl.reg.lo, sl.reg.hi, sl.dirs); n != sl.n {
			panic(fmt.Sprintf("sim: unpacked %d of %d values", n, sl.n))
		}
		lane.Span(telemetry.PhaseUnpack, s.steps, int32(i), start)
	}
}
