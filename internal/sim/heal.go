package sim

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/output"
	"walberla/internal/telemetry"
)

// Self-healing recovery (RecoverHeal). Shrinking recovery keeps a run
// live but monotonically bleeds capacity: every permanent failure costs a
// rank forever. Heal mode restores the lost capacity from a pool of
// *spare* ranks parked at the communicator layer (comm.ParkSpare): after
// a failure the survivors rendezvous as usual, grow the world back to the
// target size (comm.GrowWorld recruits the lowest-indexed live spare),
// and the dead rank's buddy — instead of adopting the replica blocks
// itself — streams them to the recruit with the same layout-independent
// WBK1 envelope buddy replication uses. The recruit reconstructs the
// blocks, every rank renumbers its neighborhoods into the grown rank
// space and rebuilds the aggregated exchange plan, the buddy ring is
// re-armed on the new topology, and the run resumes at full world size.
// Stepping is deterministic and FieldHash is partition-independent, so
// the healed run finishes bit-identical to a fault-free one.

// tagHeal carries the heal-mode state stream from an adopter to the
// recruited spare; it lives in the user tag space above the buddy tag.
const tagHeal = 1<<30 + 3

// wardPayload is the raw (decoded) state of one dead rank awaiting
// forwarding to its replacement: field snapshots plus block metadata.
type wardPayload struct {
	snaps []output.BlockSnapshot
	metas []blockMeta
}

// healRestoreAttempt wraps healRecover with the usual panic conversion (a
// failure can strike during recovery traffic too).
func (s *Simulation) healRestoreAttempt(dead []int, target int, rc ResilienceConfig, rec *RecoveryStats, start time.Time) (step int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			if cr, ok := r.(comm.Crash); ok {
				err = &comm.RankFailedError{Rank: cr.Rank, Cause: "injected crash"}
				return
			}
			var rfe *comm.RankFailedError
			if e, isErr := r.(error); isErr && errors.As(e, &rfe) {
				err = rfe
				return
			}
			panic(r)
		}
	}()
	return s.healRecover(dead, target, rc, rec, start)
}

// healRecover repairs the world back to full size after permanent
// failures: grow the communicator onto the surviving ranks plus one
// recruited spare per dead rank, vote on the newest restorable
// generation, rewind every survivor from its own snapshot, stream each
// dead rank's replica from its buddy to the recruit, renumber the
// neighborhoods into the grown rank space, and rebuild the exchange plan.
// With the spare pool exhausted it degrades to plain shrinking recovery.
// The recruited spare executes the mirrored protocol in joinWorld.
func (s *Simulation) healRecover(dead []int, target int, rc ResilienceConfig, rec *RecoveryStats, start time.Time) (int64, error) {
	healStart := s.tel.driver.Start()
	c := s.Comm
	b := s.buddy
	oldSize := c.Size()

	deadOld := make(map[int]bool, len(dead)) // dead old-comm ranks
	for _, d := range dead {
		r := c.CommRankOf(d)
		if r < 0 {
			return 0, fmt.Errorf("sim: dead world rank %d is not a member of the communicator", d)
		}
		deadOld[r] = true
	}

	newComm := c.GrowWorld(target)
	if newComm == nil {
		return 0, ErrRetired
	}

	// Recruits: members of the grown communicator that were not members
	// of the old one. None left means the spare pool is exhausted — the
	// run degrades to shrinking recovery and carries on at reduced size.
	var joiners []int // new-comm ranks, ascending
	for nr := 0; nr < newComm.Size(); nr++ {
		if c.CommRankOf(newComm.WorldRankOf(nr)) < 0 {
			joiners = append(joiners, nr)
		}
	}
	if len(joiners) == 0 {
		return s.shrinkRecover(dead, rc, rec, start)
	}
	if len(joiners) != len(deadOld) {
		// Single-failure-at-a-time semantics make a partial recruitment
		// unreachable; refuse rather than desynchronize with the spares.
		return 0, fmt.Errorf("sim: %d recruits for %d dead ranks", len(joiners), len(deadOld))
	}

	// Pair the i-th dead rank (ascending old rank) with the i-th recruit
	// (ascending new rank) — deterministic, so no agreement traffic.
	deadList := make([]int, 0, len(deadOld))
	for dr := range deadOld {
		deadList = append(deadList, dr)
	}
	sort.Ints(deadList)
	healOf := make(map[int]int, len(deadList)) // dead old rank -> recruit new rank
	for i, dr := range deadList {
		healOf[dr] = joiners[i]
	}

	// The supplier of each dead rank's state is its buddy, exactly as in
	// shrinking recovery; a dead buddy is a compound failure.
	var myWards []int // dead world ranks this rank supplies
	for dr := range deadOld {
		a := (dr + 1) % oldSize
		if deadOld[a] {
			return 0, fmt.Errorf("sim: buddy rank of dead rank %d died too; compound failure is unrecoverable", dr)
		}
		if a == c.Rank() {
			myWards = append(myWards, c.WorldRankOf(dr))
		}
	}

	// Vote on the restore generation over the grown communicator. The
	// recruit holds no state and contributes neutral values (joinWorld
	// mirrors this sequence).
	cand := maxInt(b.own[0].step, b.own[1].step)
	for _, w := range myWards {
		cand = minInt(cand, b.replicaLatest(w))
	}
	g, err := newComm.AllreduceInt64Err(int64(cand), comm.Min[int64])
	if err != nil {
		return 0, err
	}
	have := int64(1)
	if g >= 0 {
		if b.ownAt(int(g)) == nil {
			have = 0
		}
		for _, w := range myWards {
			if b.replicaAt(w, int(g)) == nil {
				have = 0
			}
		}
	}
	agree, err := newComm.AllreduceInt64Err(have, comm.Min[int64])
	if err != nil {
		return 0, err
	}

	var restored int64
	wards := make(map[int]wardPayload, len(myWards)) // dead world rank -> state
	if g >= 0 && agree == 1 {
		// Pure in-memory path: memcpy rewind; ward state straight from the
		// decoded replica generation.
		og := b.ownAt(int(g))
		for i, coord := range og.coords {
			bd := s.byCoord[coord]
			if bd == nil {
				return 0, fmt.Errorf("sim: own snapshot holds unknown block %v", coord)
			}
			copy(bd.Src.Data(), og.src[i])
			copy(bd.Dst.Data(), og.dst[i])
		}
		for _, w := range myWards {
			gen := b.replicaAt(w, int(g))
			if gen == nil {
				return 0, fmt.Errorf("sim: missing replica generation for dead rank %d", w)
			}
			wards[w] = wardPayload{snaps: gen.snaps, metas: gen.metas}
		}
		restored = g
		rec.BuddyRestores++
	} else {
		restored, wards, err = s.diskHealRestore(myWards, rc, newComm)
		if err != nil {
			return 0, err
		}
		rec.DiskRestores++
	}

	// The old→new rank map: survivors through their grown rank, dead
	// ranks to their replacement.
	redirect := make([]int, oldSize)
	for r := 0; r < oldSize; r++ {
		if deadOld[r] {
			redirect[r] = healOf[r]
			continue
		}
		nr := newComm.CommRankOf(c.WorldRankOf(r))
		if nr < 0 {
			return 0, fmt.Errorf("sim: surviving rank %d missing from the grown communicator", r)
		}
		redirect[r] = nr
	}

	// Stream each ward's state to its replacement, neighborhoods already
	// renumbered into the grown rank space, in the buddy-replica envelope
	// (WBK1 + CRC32C payload, gob metadata).
	for _, w := range myWards {
		wp := wards[w]
		metas, err := renumberMetas(wp.metas, redirect, oldSize)
		if err != nil {
			return 0, err
		}
		msg, err := encodeWardMsg(int(restored), w, wp.snaps, metas)
		if err != nil {
			return 0, err
		}
		if err := newComm.SendErr(healOf[c.CommRankOf(w)], tagHeal, msg); err != nil {
			return 0, err
		}
		rec.ReplicaBytes += int64(len(msg.Payload))
	}

	// Commit the grown topology on this rank.
	for _, bd := range s.Blocks {
		for i := range bd.Block.Neighbors {
			n := &bd.Block.Neighbors[i]
			if n.Rank < 0 || n.Rank >= oldSize {
				return 0, fmt.Errorf("sim: neighbor of block %v has invalid rank %d", bd.Block.Coord, n.Rank)
			}
			n.Rank = redirect[n.Rank]
		}
	}
	s.Comm = newComm
	s.Forest.Rank = newComm.Rank()
	s.Forest.NumRanks = newComm.Size()
	// recycleBuffers=false: the dead rank's final zero-copy unpack read our
	// old send buffers and will never synchronize with this rebuild.
	s.rebuildPlan(false)
	rec.Heals++

	// Drop all pre-heal generations (their communicator ranks are stale);
	// the time loop re-replicates on the new topology before the first
	// post-restore step.
	s.buddy = newBuddyState()

	ready := time.Since(start)
	// Recovery completes collectively, recruit included: no rank resumes
	// the time loop while a peer is still committing the grown topology.
	if err := newComm.BarrierErr(); err != nil {
		return 0, err
	}
	rec.RestoreLatency += ready
	s.tel.driver.Span(telemetry.PhaseHeal, int(restored), 0, healStart)
	return restored, nil
}

// renumberMetas deep-copies block metadata with every neighborhood rank
// redirected through the old→new rank map.
func renumberMetas(metas []blockMeta, redirect []int, oldSize int) ([]blockMeta, error) {
	out := make([]blockMeta, len(metas))
	for i, m := range metas {
		blk := m.Block
		blk.Neighbors = append([]blockforest.Neighbor(nil), blk.Neighbors...)
		for j := range blk.Neighbors {
			r := blk.Neighbors[j].Rank
			if r < 0 || r >= oldSize {
				return nil, fmt.Errorf("sim: replica block %v neighbor has invalid rank %d", blk.Coord, r)
			}
			blk.Neighbors[j].Rank = redirect[r]
		}
		out[i] = blockMeta{Block: blk, Flags: m.Flags}
	}
	return out, nil
}

// encodeWardMsg serializes one ward's state into the buddy-replica wire
// envelope for the heal stream.
func encodeWardMsg(step, srcWorld int, snaps []output.BlockSnapshot, metas []blockMeta) (*buddyMsg, error) {
	var payload bytes.Buffer
	_, crc, err := output.WriteRankFile(&payload, snaps)
	if err != nil {
		return nil, fmt.Errorf("sim: encoding heal payload: %w", err)
	}
	var meta bytes.Buffer
	if err := gob.NewEncoder(&meta).Encode(metas); err != nil {
		return nil, fmt.Errorf("sim: encoding heal metadata: %w", err)
	}
	return &buddyMsg{
		Step: step, SrcWorld: srcWorld,
		Payload: payload.Bytes(), CRC: crc, Meta: meta.Bytes(),
	}, nil
}

// diskHealRestore is the fallback rung of healing recovery: like
// diskShrinkRestore, but each supplier collects its dead wards' raw state
// for forwarding instead of adopting it. Collective over newComm; the
// recruit mirrors the candidate loop with neutral votes.
func (s *Simulation) diskHealRestore(myWards []int, rc ResilienceConfig, newComm *comm.Comm) (int64, map[int]wardPayload, error) {
	if rc.Dir == "" {
		return 0, nil, fmt.Errorf("sim: no common in-memory generation and no disk checkpoint directory configured")
	}
	var candidates []int64
	if newComm.Rank() == 0 {
		candidates = output.ListValidSets(rc.Dir)
		s.recoveryDiskReads++
	}
	v, err := newComm.BcastErr(0, candidates)
	if err != nil {
		return 0, nil, err
	}
	if v != nil {
		candidates = v.([]int64)
	}

	for _, step := range candidates {
		setDir := filepath.Join(rc.Dir, output.SetDirName(int(step)))
		own, loadErr := s.loadOwnRankFile(setDir)
		wards := make(map[int]wardPayload, len(myWards))
		if loadErr == nil {
			for _, w := range myWards {
				snaps, metas, err := s.readWardFromSet(setDir, w)
				if err != nil {
					loadErr = err
					break
				}
				wards[w] = wardPayload{snaps: snaps, metas: metas}
			}
		}
		ok := int64(1)
		if loadErr != nil {
			ok = 0
		}
		agree, err := newComm.AllreduceInt64Err(ok, comm.Min[int64])
		if err != nil {
			return 0, nil, err
		}
		if agree == 0 {
			continue
		}
		for coord, pair := range own {
			bd := s.byCoord[coord]
			restoreInto(bd.Src, pair[0])
			restoreInto(bd.Dst, pair[1])
		}
		return step, wards, nil
	}
	return 0, nil, fmt.Errorf("sim: no usable disk checkpoint set for heal recovery in %s", rc.Dir)
}

// RunSpare parks this rank as a hot spare of a heal-mode resilient run:
// it waits at the communicator layer, joins every recovery rendezvous,
// and when recruited receives the dead rank's state and finishes the run
// as a full member of the world. See RunSpareCtx.
func RunSpare(world *comm.Comm, active int, domain *blockforest.BlockForest, cfg Config, steps int, rc ResilienceConfig) (*Simulation, Metrics, bool, error) {
	return RunSpareCtx(context.Background(), world, active, domain, cfg, steps, rc)
}

// RunSpareCtx is the spare-rank counterpart of RunResilientCtx. world is
// the world communicator this rank received from comm.Run; active is the
// target active world size; domain supplies the forest header (Domain,
// GridSize, CellsPerBlock, Periodic — the block assignment itself is
// streamed on recruitment). It returns joined=false with a nil Simulation
// when the run ended without needing this spare, and otherwise the joined
// run's Simulation (for FieldHash and the like) and metrics. Like
// RunResilientCtx it returns ErrRetired if this rank itself fails
// permanently after joining.
func RunSpareCtx(ctx context.Context, world *comm.Comm, active int, domain *blockforest.BlockForest, cfg Config, steps int, rc ResilienceConfig) (*Simulation, Metrics, bool, error) {
	if err := rc.Validate(); err != nil {
		return nil, Metrics{}, false, err
	}
	if rc.Mode != RecoverHeal {
		return nil, Metrics{}, false, fmt.Errorf("sim: RunSpare requires RecoverHeal, got mode %d", rc.Mode)
	}
	if _, join := world.ParkSpare(active); !join {
		return nil, Metrics{}, false, nil
	}
	s, m, err := joinAndRun(ctx, world, active, domain, cfg, steps, rc)
	return s, m, true, err
}

// joinAndRun executes the recruit side of healRecover — mirror the vote,
// receive the state stream, reconstruct the blocks, commit the grown
// topology — and then finishes the run under the shared resilient driver.
func joinAndRun(ctx context.Context, world *comm.Comm, active int, domain *blockforest.BlockForest, cfg Config, steps int, rc ResilienceConfig) (*Simulation, Metrics, error) {
	newComm := world.GrowWorld(active)
	if newComm == nil {
		return nil, Metrics{}, fmt.Errorf("sim: recruited spare is outside the grown communicator")
	}
	// A recruit failing mid-join collapses the heal and ends the run for
	// everyone, so any exit before the shared driver takes over must
	// release the remaining spares. Once runResilientLoop runs, its own
	// release logic is in charge (it knows the one exit — this rank's own
	// retirement — where the spares must stay parked).
	release := true
	defer func() {
		if release && newComm.WorldSize() > newComm.Size() {
			newComm.ReleaseSpares()
		}
	}()

	forest := &blockforest.BlockForest{
		Rank:          newComm.Rank(),
		NumRanks:      newComm.Size(),
		Domain:        domain.Domain,
		GridSize:      domain.GridSize,
		CellsPerBlock: domain.CellsPerBlock,
		Periodic:      domain.Periodic,
	}
	s, err := New(newComm, forest, cfg)
	if err != nil {
		return nil, Metrics{}, err
	}
	var rec RecoveryStats
	healStart := s.tel.driver.Start()
	tJoin := time.Now()

	// Mirror the restore-generation vote with neutral contributions.
	g, err := newComm.AllreduceInt64Err(math.MaxInt64, comm.Min[int64])
	if err != nil {
		return nil, Metrics{}, err
	}
	agree, err := newComm.AllreduceInt64Err(1, comm.Min[int64])
	if err != nil {
		return nil, Metrics{}, err
	}
	if !(g >= 0 && agree == 1) {
		// Mirror the disk rung's candidate loop (the recruit reads nothing
		// itself — its state arrives by stream either way).
		v, err := newComm.BcastErr(0, []int64(nil))
		if err != nil {
			return nil, Metrics{}, err
		}
		var candidates []int64
		if v != nil {
			candidates = v.([]int64)
		}
		found := false
		for range candidates {
			agree, err := newComm.AllreduceInt64Err(1, comm.Min[int64])
			if err != nil {
				return nil, Metrics{}, err
			}
			if agree == 1 {
				found = true
				break
			}
		}
		if !found {
			return nil, Metrics{}, fmt.Errorf("sim: no usable restore source for the recruited spare")
		}
	}

	// Receive the dead rank's state and reconstruct its blocks.
	got, _, err := newComm.RecvErr(comm.AnySource, tagHeal)
	if err != nil {
		return nil, Metrics{}, err
	}
	in, ok := got.(*buddyMsg)
	if !ok {
		return nil, Metrics{}, fmt.Errorf("sim: unexpected heal payload %T", got)
	}
	gen := decodeReplica(in, s.Stencil)
	if gen == nil {
		return nil, Metrics{}, fmt.Errorf("sim: heal stream for step %d failed validation", in.Step)
	}
	blocks, err := s.buildAdoptedBlocks(gen.snaps, gen.metas)
	if err != nil {
		return nil, Metrics{}, err
	}
	sort.Slice(blocks, func(i, j int) bool {
		return blockforest.MortonKey(blocks[i].Block.Coord) < blockforest.MortonKey(blocks[j].Block.Coord)
	})
	s.Blocks = blocks
	s.byCoord = make(map[[3]int]*BlockData, len(blocks))
	forest.Blocks = forest.Blocks[:0]
	for _, bd := range blocks {
		s.byCoord[bd.Block.Coord] = bd
		forest.Blocks = append(forest.Blocks, bd.Block)
	}
	s.rebuildPlan(false)
	s.buddy = newBuddyState()
	rec.BlocksAdopted += len(blocks)
	rec.Heals++
	restored := int64(in.Step)

	if err := newComm.BarrierErr(); err != nil {
		return nil, Metrics{}, err
	}
	rec.RestoreLatency += time.Since(tJoin)
	s.tel.driver.Span(telemetry.PhaseHeal, in.Step, 0, healStart)
	s.tel.worldSize.Set(float64(newComm.Size()))

	// Finish the run as a full member under the shared resilient driver.
	release = false
	m, err := s.runResilientLoop(ctx, steps, rc, active, int(restored), rec)
	return s, m, err
}

// readWardFromSet reads and validates one dead ward's rank file from a
// checkpoint set, returning its raw snapshots joined with the retained
// replica metadata — the input of both adoption (shrink) and forwarding
// (heal).
func (s *Simulation) readWardFromSet(setDir string, w int) ([]output.BlockSnapshot, []blockMeta, error) {
	metaRaw, ok := s.buddy.lastMeta[w]
	if !ok {
		return nil, nil, fmt.Errorf("sim: no retained metadata for dead rank %d", w)
	}
	metas, err := decodeReplicaMeta(metaRaw)
	if err != nil {
		return nil, nil, err
	}
	// The set was written under the pre-recovery communicator, where the
	// dead world rank's comm rank named its file.
	dr := s.Comm.CommRankOf(w)
	if dr < 0 {
		return nil, nil, fmt.Errorf("sim: dead world rank %d unknown to the pre-recovery communicator", w)
	}
	m, err := output.ValidateSetDir(setDir)
	s.recoveryDiskReads++
	if err != nil {
		return nil, nil, err
	}
	name := output.RankFileName(dr)
	var entry *output.ManifestEntry
	for i := range m.Entries {
		if m.Entries[i].Name == name {
			entry = &m.Entries[i]
		}
	}
	if entry == nil {
		return nil, nil, fmt.Errorf("sim: checkpoint set %s has no file for dead rank %d", setDir, dr)
	}
	f, err := os.Open(filepath.Join(setDir, name))
	if err != nil {
		return nil, nil, err
	}
	s.recoveryDiskReads++
	snaps, crc, err := output.ReadRankFileStored(f, s.Stencil)
	f.Close()
	if err != nil {
		return nil, nil, err
	}
	if crc != entry.CRC {
		return nil, nil, fmt.Errorf("sim: rank file %s CRC %08x does not match manifest %08x", name, crc, entry.CRC)
	}
	return snaps, metas, nil
}
