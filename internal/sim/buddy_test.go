package sim

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
)

// shrinkForest is the shared scenario of the shrinking-recovery tests: a
// 2×2 block cavity spread over the given rank count (three in the main
// tests, so killing the middle rank leaves two survivors and one
// adoption).
func shrinkForest(ranks int) *blockforest.SetupForest {
	domain := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
	f := blockforest.NewSetupForest(domain, [3]int{2, 2, 1}, [3]int{4, 4, 4}, [3]bool{})
	f.BalanceMorton(ranks)
	return f
}

// shrinkReference runs the scenario fault-free on the original world and
// returns the exact bit pattern of every block. Stepping is deterministic
// and partition-independent, so this is the ground truth the post-shrink
// world must match bit for bit.
func shrinkReference(t *testing.T, ranks, steps, workers int) map[[3]int][]uint64 {
	t.Helper()
	var mu sync.Mutex
	want := make(map[[3]int][]uint64)
	comm.Run(ranks, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), shrinkForest(ranks)))
		if err != nil {
			t.Error(err)
			return
		}
		cfg := cavityConfig()
		cfg.Workers = workers
		s, err := New(c, forest, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		mustRun(t, s, steps)
		collectBits(s, &mu, want)
	})
	if t.Failed() {
		t.Fatal("reference run failed")
	}
	return want
}

func assertBitsEqual(t *testing.T, got, want map[[3]int][]uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("shrunk world produced %d blocks, want %d", len(got), len(want))
	}
	for coord, wb := range want {
		gb, ok := got[coord]
		if !ok {
			t.Fatalf("block %v missing from shrunk world", coord)
		}
		if len(gb) != len(wb) {
			t.Fatalf("block %v: %d values, want %d", coord, len(gb), len(wb))
		}
		for i := range wb {
			if gb[i] != wb[i] {
				t.Fatalf("block %v value %d: bits %016x, want %016x — shrink recovery is not bit-identical",
					coord, i, gb[i], wb[i])
			}
		}
	}
}

// runShrinkScenario executes the faulty run under RecoverShrink and
// returns the surviving ranks' block bits and recovery stats. The victim
// must come back with ErrRetired and contributes nothing.
func runShrinkScenario(t *testing.T, opts comm.Options, victim, steps, workers int, rc ResilienceConfig) (map[[3]int][]uint64, []RecoveryStats) {
	t.Helper()
	var mu sync.Mutex
	got := make(map[[3]int][]uint64)
	var recovered []RecoveryStats
	comm.RunWithOptions(3, opts, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), shrinkForest(3)))
		if err != nil {
			t.Error(err)
			return
		}
		cfg := cavityConfig()
		cfg.Workers = workers
		s, err := New(c, forest, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		m, err := s.RunResilient(steps, rc)
		if c.Rank() == victim {
			if !errors.Is(err, ErrRetired) {
				t.Errorf("victim rank %d: err = %v, want ErrRetired", victim, err)
			}
			return
		}
		if err != nil {
			t.Errorf("rank %d: RunResilient: %v", c.Rank(), err)
			return
		}
		if m.Ranks != 2 {
			t.Errorf("rank %d: metrics report %d ranks, want 2 after the shrink", c.Rank(), m.Ranks)
		}
		collectBits(s, &mu, got)
		mu.Lock()
		recovered = append(recovered, m.Recovery)
		mu.Unlock()
	})
	if t.Failed() {
		t.Fatal("shrink scenario failed")
	}
	return got, recovered
}

// TestShrinkRecoveryBitIdenticalAfterCrash is the tentpole acceptance
// test: a rank crashes mid-run, the survivors shrink the world, the buddy
// re-owns the dead rank's blocks from the in-memory replica — with zero
// disk I/O — and the run finishes bit-identical to an uninterrupted run,
// across intra-rank worker counts.
func TestShrinkRecoveryBitIdenticalAfterCrash(t *testing.T) {
	const steps, victim = 8, 1
	for _, workers := range []int{1, 2, 4, 7} {
		t.Run(workerName(workers), func(t *testing.T) {
			want := shrinkReference(t, 3, steps, workers)
			opts := comm.Options{Faults: &comm.FaultPlan{Seed: 11, Crashes: []comm.CrashSpec{{Rank: victim, Step: 5}}}}
			got, recovered := runShrinkScenario(t, opts, victim, steps, workers, ResilienceConfig{
				Mode:            RecoverShrink,
				CheckpointEvery: 2,
				MaxFailures:     4,
				BackoffBase:     time.Millisecond,
				BackoffMax:      10 * time.Millisecond,
			})
			assertBitsEqual(t, got, want)

			adopted := 0
			for _, r := range recovered {
				if r.Shrinks != 1 {
					t.Errorf("survivor saw %d shrinks, want 1: %+v", r.Shrinks, r)
				}
				if r.BuddyRestores != 1 || r.DiskRestores != 0 {
					t.Errorf("recovery was not served from the buddy replica: %+v", r)
				}
				if r.DiskReadsDuringRecovery != 0 {
					t.Errorf("pure buddy recovery performed %d disk reads, want 0: %+v", r.DiskReadsDuringRecovery, r)
				}
				if r.Replications == 0 || r.ReplicaBytes == 0 {
					t.Errorf("no replication activity recorded: %+v", r)
				}
				adopted += r.BlocksAdopted
			}
			if adopted == 0 {
				t.Errorf("no survivor adopted the dead rank's blocks")
			}
		})
	}
}

// TestShrinkRecoveryBitIdenticalAfterSilentFailure exercises the
// failure-detection deadline: the victim goes silent (injected hang, no
// crash notification), the survivors declare it dead by receive timeout,
// and shrinking recovery proceeds exactly as for a crash — in memory,
// bit-identical.
func TestShrinkRecoveryBitIdenticalAfterSilentFailure(t *testing.T) {
	const steps, victim = 8, 1
	for _, workers := range []int{1, 2, 4, 7} {
		t.Run(workerName(workers), func(t *testing.T) {
			want := shrinkReference(t, 3, steps, workers)
			opts := comm.Options{
				Faults:      &comm.FaultPlan{Seed: 13, Hangs: []comm.CrashSpec{{Rank: victim, Step: 5}}},
				FailTimeout: 500 * time.Millisecond,
			}
			got, recovered := runShrinkScenario(t, opts, victim, steps, workers, ResilienceConfig{
				Mode:            RecoverShrink,
				CheckpointEvery: 2,
				MaxFailures:     4,
				BackoffBase:     time.Millisecond,
				BackoffMax:      10 * time.Millisecond,
			})
			assertBitsEqual(t, got, want)
			for _, r := range recovered {
				if r.Shrinks != 1 || r.BuddyRestores != 1 {
					t.Errorf("silent failure was not recovered by a buddy shrink: %+v", r)
				}
				if r.DiskReadsDuringRecovery != 0 {
					t.Errorf("recovery from a silent failure read disk %d times, want 0: %+v", r.DiskReadsDuringRecovery, r)
				}
			}
		})
	}
}

func workerName(w int) string {
	return "workers=" + string(rune('0'+w))
}

// TestShrinkDiskFallback drives the fallback rung directly: when no
// common in-memory generation survives (simulated by invalidating the
// generations while keeping the retained metadata), shrink recovery must
// restore the survivors and the adopted blocks from the newest disk
// checkpoint set.
func TestShrinkDiskFallback(t *testing.T) {
	const steps = 6
	dir := t.TempDir()
	want := shrinkReference(t, 2, 4, 1) // state at the newest disk set (step 4)

	var mu sync.Mutex
	got := make(map[[3]int][]uint64)
	// The "victim" here is a healthy rank told to retire, so the survivor
	// must not start recovery (which purges in-flight messages) until the
	// victim has fully left the communication — hence the host-side signal.
	retired := make(chan struct{})
	comm.Run(2, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), shrinkForest(2)))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, cavityConfig())
		if err != nil {
			t.Error(err)
			return
		}
		rc := ResilienceConfig{Mode: RecoverShrink, CheckpointEvery: 2, Dir: dir}
		if _, err := s.RunResilient(steps, rc); err != nil {
			t.Errorf("rank %d: fault-free run: %v", c.Rank(), err)
			return
		}

		// Invalidate every in-memory generation, keeping only the
		// retained block metadata — as if the replicas were too stale to
		// agree on.
		s.buddy.own[0].step, s.buddy.own[1].step = -1, -1
		s.buddy.replica[0], s.buddy.replica[1] = nil, nil

		if c.Rank() == 1 {
			c.Retire()
			close(retired)
			return
		}
		<-retired
		c.MarkDead(c.WorldRankOf(1))
		c.Recover()
		var rec RecoveryStats
		rc.Validate()
		restored, err := s.shrinkRecover([]int{c.WorldRankOf(1)}, rc, &rec, time.Now())
		if err != nil {
			t.Errorf("shrinkRecover: %v", err)
			return
		}
		if restored != 4 {
			t.Errorf("restored step %d, want 4 (the newest disk set)", restored)
		}
		if rec.DiskRestores != 1 || rec.BuddyRestores != 0 {
			t.Errorf("recovery did not take the disk rung: %+v", rec)
		}
		if rec.BlocksAdopted == 0 {
			t.Errorf("sole survivor adopted no blocks: %+v", rec)
		}
		if s.Comm.Size() != 1 {
			t.Errorf("post-shrink communicator size %d, want 1", s.Comm.Size())
		}
		collectBits(s, &mu, got)
	})
	if t.Failed() {
		t.FailNow()
	}
	assertBitsEqual(t, got, want)
}

// TestBackoffCapping: the exponential recovery delay must grow from the
// base and saturate at the cap.
func TestBackoffCapping(t *testing.T) {
	rc := ResilienceConfig{BackoffBase: 10 * time.Millisecond, BackoffMax: 80 * time.Millisecond}
	rc.Validate()
	for _, tc := range []struct {
		n    int
		want time.Duration
	}{
		{1, 10 * time.Millisecond},
		{2, 20 * time.Millisecond},
		{3, 40 * time.Millisecond},
		{4, 80 * time.Millisecond},
		{5, 80 * time.Millisecond},
		{30, 80 * time.Millisecond}, // no overflow past the cap
	} {
		if got := rc.backoff(tc.n); got != tc.want {
			t.Errorf("backoff(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
	var def ResilienceConfig
	def.Validate()
	if def.BackoffBase != 10*time.Millisecond || def.BackoffMax != 2*time.Second {
		t.Errorf("default backoff = %v/%v, want 10ms/2s", def.BackoffBase, def.BackoffMax)
	}
}

// TestMaxFailuresSemantics: negative selects the documented default of 8,
// positive values pass through, and 0 means zero tolerance — the first
// failure aborts the run instead of recovering.
func TestMaxFailuresSemantics(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{-1, 8}, {-7, 8}, {0, 0}, {5, 5}} {
		rc := ResilienceConfig{MaxFailures: tc.in}
		rc.Validate()
		if rc.MaxFailures != tc.want {
			t.Errorf("applyDefaults(MaxFailures=%d) = %d, want %d", tc.in, rc.MaxFailures, tc.want)
		}
	}

	// Zero tolerance: a single injected crash must abort every rank with
	// the give-up error rather than rewinding.
	dir := t.TempDir()
	comm.RunWithOptions(2, comm.Options{Faults: &comm.FaultPlan{Seed: 3, Crashes: []comm.CrashSpec{{Rank: 1, Step: 2}}}}, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), cavityForest()))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, cavityConfig())
		if err != nil {
			t.Error(err)
			return
		}
		_, err = s.RunResilient(4, ResilienceConfig{
			CheckpointEvery: 2,
			Dir:             dir,
			MaxFailures:     0,
			BackoffBase:     time.Millisecond,
		})
		if err == nil || !strings.Contains(err.Error(), "giving up") {
			t.Errorf("rank %d: err = %v, want the give-up abort", c.Rank(), err)
		}
	})
}

// TestReplicateRoundTrip: one replication generation decodes back into
// blocks bit-identical to the producer's, via the same adoption path
// recovery uses.
func TestReplicateRoundTrip(t *testing.T) {
	var mu sync.Mutex
	want := make(map[[3]int][]uint64)
	decoded := make(map[[3]int][]uint64)
	comm.Run(2, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), cavityForest()))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, cavityConfig())
		if err != nil {
			t.Error(err)
			return
		}
		mustRun(t, s, 3)
		collectBits(s, &mu, want)
		s.buddy = newBuddyState()
		var rec RecoveryStats
		if err := s.replicate(3, &rec); err != nil {
			t.Errorf("rank %d: replicate: %v", c.Rank(), err)
			return
		}
		ward := (c.Rank() + c.Size() - 1) % c.Size()
		gen := s.buddy.replicaAt(c.WorldRankOf(ward), 3)
		if gen == nil {
			t.Errorf("rank %d: no committed replica for ward %d", c.Rank(), ward)
			return
		}
		if len(gen.snaps) == 0 || len(gen.snaps) != len(gen.metas) {
			t.Errorf("rank %d: replica decoded to %d snapshots, %d metas",
				c.Rank(), len(gen.snaps), len(gen.metas))
			return
		}
		blocks, err := s.adoptReplica(gen)
		if err != nil {
			t.Errorf("rank %d: adoptReplica: %v", c.Rank(), err)
			return
		}
		mu.Lock()
		for _, bd := range blocks {
			d := bd.Src.Data()
			bits := make([]uint64, len(d))
			for i, v := range d {
				bits[i] = math.Float64bits(v)
			}
			decoded[bd.Block.Coord] = bits
		}
		mu.Unlock()
	})
	if t.Failed() {
		t.FailNow()
	}
	assertBitsEqual(t, decoded, want)
}
