// Package sim drives distributed LBM simulations over a block forest: it
// allocates per-block PDF, flag and boundary data, exchanges ghost layers
// between blocks through the communicator (packing only the PDFs that
// actually cross each block boundary, as waLBerla does), applies boundary
// conditions, runs the fused stream-collide kernels, and accounts the
// MLUPS / MFLUPS and communication-time metrics the paper reports.
//
// Inside each rank the time loop is hybrid-parallel (see docs/HYBRID.md):
// per-block sweeps execute on a configurable worker pool, and the
// ghost-layer exchange is split-phase so interior blocks compute while
// remote boundary data is in flight. Results are bit-identical to serial
// runs for every worker count.
package sim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/boundary"
	"walberla/internal/collide"
	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/kernels"
	"walberla/internal/lattice"
	"walberla/internal/telemetry"
)

// KernelChoice selects a compute kernel family for a simulation; it is an
// alias of kernels.Choice, the key of the kernels.Spec constructor.
type KernelChoice = kernels.Choice

// Kernel choices; the names match the paper's Figure 3 series.
const (
	KernelGenericSRT = kernels.ChoiceGenericSRT
	KernelGenericTRT = kernels.ChoiceGenericTRT
	KernelD3Q19SRT   = kernels.ChoiceD3Q19SRT
	KernelD3Q19TRT   = kernels.ChoiceD3Q19TRT
	KernelSplitSRT   = kernels.ChoiceSplitSRT
	KernelSplitTRT   = kernels.ChoiceSplitTRT
	KernelSparse     = kernels.ChoiceSparse
)

// KernelAuto defers the kernel choice to plan-build time, where each block
// picks its own kernel from the configured layout, the stencil and its
// fluid fraction (see Config.resolveKernel). It is the default.
const KernelAuto KernelChoice = "auto"

// LayoutChoice selects the PDF memory layout of the simulation fields.
type LayoutChoice string

// Layout choices. The zero value is LayoutAuto.
const (
	// LayoutAuto lets kernel selection pick the layout: structure-of-arrays
	// for D3Q19 (the split kernels), array-of-structures otherwise.
	LayoutAuto LayoutChoice = "auto"
	// LayoutAoS forces array-of-structures fields and the AoS kernel
	// family.
	LayoutAoS LayoutChoice = "aos"
	// LayoutSoA forces structure-of-arrays fields and the split/sparse
	// kernel family.
	LayoutSoA LayoutChoice = "soa"
)

// SparseFluidThreshold is the fluid fraction below which automatic kernel
// selection switches a block from the dense split kernel to the compressed
// interval kernel of section 4.3 — below it, skipping the obstacle cells
// saves more bandwidth than the interval bookkeeping costs.
const SparseFluidThreshold = 0.95

// Config describes a simulation.
type Config struct {
	// Stencil selects the lattice model; nil means D3Q19, the model of
	// all simulations in the paper. Other stencils (D3Q27, D2Q9) run
	// through the generic kernels.
	Stencil *lattice.Stencil
	// Kernel picks the compute kernel; the zero value is KernelAuto:
	// every block gets the fastest kernel its geometry and the configured
	// layout admit — the split (SoA SIMD) TRT kernel for dense D3Q19
	// blocks, the interval sparse kernel for blocks whose fluid fraction
	// is below SparseFluidThreshold, the generic TRT kernel for other
	// stencils. Naming a concrete kernel pins it for all blocks.
	Kernel KernelChoice
	// Layout picks the PDF field memory layout; the zero value is
	// LayoutAuto (the layout of the selected kernels, SoA for D3Q19).
	// Both layouts produce bit-identical fields; LayoutAoS selects the
	// non-split kernel family for comparison runs.
	Layout LayoutChoice
	// Tau is the relaxation time (stability requires > 0.5); the zero
	// value means 0.9.
	Tau float64
	// Magic is the TRT magic parameter; zero means 3/16.
	Magic float64
	// Workers is the number of intra-rank workers executing per-block
	// sweeps and pack/unpack concurrently (the hybrid "threads per
	// process" of the paper). 0 or 1 runs serially; any value yields
	// bit-identical results.
	Workers int
	// Exchange selects the ghost exchange wire format; the zero value is
	// ExchangeAggregated (one message per neighbor rank per step from
	// persistent buffers). Both modes are bit-identical; ExchangePerPair
	// is kept for comparison benchmarks.
	Exchange ExchangeMode
	// InitialRho and InitialVelocity initialize all fluid cells to the
	// corresponding equilibrium. Zero rho means 1.
	InitialRho      float64
	InitialVelocity [3]float64
	// InitialState, if non-nil, overrides the uniform initialization with
	// a per-cell equilibrium state; x, y, z are global cell coordinates.
	InitialState func(x, y, z int) (rho, ux, uy, uz float64)
	// Boundary configures wall velocities and outflow densities.
	Boundary boundary.Config
	// Force is a constant body force density applied to every fluid cell
	// after collision (simple first-order forcing), used e.g. to drive
	// Poiseuille flow.
	Force [3]float64
	// SetupFlags populates the flag field of each block (voxelization,
	// domain walls). nil means: all interior cells fluid, ghost cells at
	// the domain boundary NoSlip walls, remaining ghosts fluid.
	SetupFlags func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField)
	// Tracer, when non-nil, records per-phase spans of the step pipeline,
	// the worker pool, the communication runtime and the resilience stack
	// into this rank's tracer (see docs/TELEMETRY.md). nil disables
	// tracing at the cost of one branch per recording site.
	Tracer *telemetry.Tracer
	// Metrics, when non-nil, is the registry the simulation and its
	// communicator update with counters (phase nanoseconds, comm traffic,
	// checkpoint bytes) and gauges (mailbox occupancy, load imbalance).
	Metrics *telemetry.Registry
}

// Validate normalizes the configuration in place — filling every zero
// value with its documented default — and reports the first invalid
// setting. It is the single normalization point for solver options:
// hand-built configs (New calls it), scenario-built configs
// (internal/scenario) and the daemon sessions (internal/serve) all pass
// through it, so a Config that survived Validate means the same
// simulation everywhere.
func (c *Config) Validate() error {
	if c.Stencil == nil {
		c.Stencil = lattice.D3Q19()
	}
	if c.Kernel == "" {
		c.Kernel = KernelAuto
	}
	if c.Layout == "" {
		c.Layout = LayoutAuto
	}
	switch c.Layout {
	case LayoutAuto, LayoutAoS, LayoutSoA:
	default:
		return fmt.Errorf("sim: unknown layout %q (want auto, aos or soa)", c.Layout)
	}
	if c.Kernel != KernelAuto {
		switch c.Kernel {
		case KernelGenericSRT, KernelGenericTRT, KernelD3Q19SRT, KernelD3Q19TRT,
			KernelSplitSRT, KernelSplitTRT, KernelSparse:
		default:
			return fmt.Errorf("sim: unknown kernel %q", c.Kernel)
		}
		if kl := kernelLayout(c.Kernel); (c.Layout == LayoutAoS && kl != field.AoS) ||
			(c.Layout == LayoutSoA && kl != field.SoA) {
			return fmt.Errorf("sim: kernel %s runs on %v fields, conflicting with layout %s",
				c.Kernel, kl, c.Layout)
		}
	}
	if c.Stencil != lattice.D3Q19() {
		if c.Kernel != KernelAuto && c.Kernel != KernelGenericSRT && c.Kernel != KernelGenericTRT {
			return fmt.Errorf("sim: stencil %s requires a generic kernel", c.Stencil)
		}
		if c.Layout == LayoutSoA {
			return fmt.Errorf("sim: stencil %s runs through the generic AoS kernels; layout soa is unsupported", c.Stencil)
		}
	}
	if c.Tau == 0 {
		c.Tau = 0.9
	}
	if c.Tau <= 0.5 {
		return fmt.Errorf("sim: tau %v must exceed 1/2", c.Tau)
	}
	if c.Magic == 0 {
		c.Magic = collide.MagicParameter
	}
	if c.InitialRho == 0 {
		c.InitialRho = 1
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: negative worker count %d", c.Workers)
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Exchange != ExchangeAggregated && c.Exchange != ExchangePerPair {
		return fmt.Errorf("sim: unknown exchange mode %v", c.Exchange)
	}
	return nil
}

// ParseKernelChoice maps a user-facing kernel name onto a KernelChoice.
// It accepts the family aliases of the CLI and scenario schema — "auto",
// "generic", "split", "sparse" — as well as the exact Figure 3 series
// names ("TRT SIMD", "SRT D3Q19", ...). Empty means auto.
func ParseKernelChoice(s string) (KernelChoice, error) {
	switch s {
	case "", string(KernelAuto):
		return KernelAuto, nil
	case "generic":
		return KernelGenericTRT, nil
	case "split":
		return KernelSplitTRT, nil
	case "sparse":
		return KernelSparse, nil
	}
	switch kc := KernelChoice(s); kc {
	case KernelGenericSRT, KernelGenericTRT, KernelD3Q19SRT, KernelD3Q19TRT,
		KernelSplitSRT, KernelSplitTRT, KernelSparse:
		return kc, nil
	}
	return "", fmt.Errorf("sim: unknown kernel %q (want auto, generic, split, sparse or a Figure 3 kernel name)", s)
}

// ParseLayoutChoice maps a user-facing layout name onto a LayoutChoice.
// Empty means auto.
func ParseLayoutChoice(s string) (LayoutChoice, error) {
	switch LayoutChoice(s) {
	case "", LayoutAuto:
		return LayoutAuto, nil
	case LayoutAoS:
		return LayoutAoS, nil
	case LayoutSoA:
		return LayoutSoA, nil
	}
	return "", fmt.Errorf("sim: unknown layout %q (want auto, aos or soa)", s)
}

// kernelLayout is the field layout each concrete kernel choice runs on.
func kernelLayout(k KernelChoice) field.Layout {
	switch k {
	case KernelSplitSRT, KernelSplitTRT, KernelSparse:
		return field.SoA
	}
	return field.AoS
}

// resolveKernel maps the configured kernel and layout onto the concrete
// kernel choice for one block, given the block's fluid fraction. It is the
// per-block selection point of KernelAuto: non-D3Q19 stencils fall back to
// the generic kernel, a forced AoS layout picks the D3Q19-specialized
// kernel, and SoA blocks get the interval sparse kernel when sparse enough
// and the dense split kernel otherwise. The choice is a pure function of
// (config, flags), so every rank that reconstructs a block — migration,
// buddy adoption — arrives at the same kernel.
func (c *Config) resolveKernel(fluidFrac float64) KernelChoice {
	if c.Kernel != KernelAuto {
		return c.Kernel
	}
	if c.Stencil != lattice.D3Q19() {
		return KernelGenericTRT
	}
	if c.Layout == LayoutAoS {
		return KernelD3Q19TRT
	}
	if fluidFrac < SparseFluidThreshold {
		return KernelSparse
	}
	return KernelSplitTRT
}

// blockKernel resolves and constructs the kernel of one block from its
// flag field.
func (c *Config) blockKernel(flags *field.FlagField) (kernels.Kernel, KernelChoice, error) {
	interior := flags.Nx * flags.Ny * flags.Nz
	frac := 1.0
	if interior > 0 {
		frac = float64(flags.Count(field.Fluid)) / float64(interior)
	}
	choice := c.resolveKernel(frac)
	k, err := kernels.New(kernels.Spec{
		Choice:  choice,
		Stencil: c.Stencil,
		Tau:     c.Tau,
		Magic:   c.Magic,
		Flags:   flags,
	})
	return k, choice, err
}

// BlockData is the runtime state of one block on this rank.
type BlockData struct {
	Block    *blockforest.Block
	Src, Dst *field.PDFField
	Flags    *field.FlagField
	Kernel   kernels.Kernel
	Boundary *boundary.Sweep
	Fluid    int // fluid cell count
	// ComputeTime accumulates this block's kernel time, the measured
	// workload used by dynamic rebalancing.
	ComputeTime time.Duration

	// sweepFlags is the flag field the kernel sweep receives: nil for
	// fully-fluid blocks under non-flag-bound kernels (selecting the
	// kernels' dense fast path, which skips all per-cell flag tests),
	// the block's Flags otherwise.
	sweepFlags *field.FlagField

	// Per-step phase timing scratch, written by the worker executing this
	// block's sweep and reduced into the rank timers in deterministic
	// block order after the join.
	stepBoundary time.Duration
	stepCompute  time.Duration
}

// Simulation is the per-rank simulation state.
type Simulation struct {
	Comm    *comm.Comm
	Forest  *blockforest.BlockForest
	Stencil *lattice.Stencil
	Config  Config
	Blocks  []*BlockData

	byCoord map[[3]int]*BlockData

	// Aggregated exchange state (ExchangeAggregated, aggregate.go): local
	// block-to-block copies, one channel per neighbor rank, the alternating
	// send-buffer parity, and the flattened pack/unpack task lists with
	// their precomputed pool closures (stored once so the steady-state
	// exchange allocates nothing).
	locals      []localOp
	channels    []rankChannel
	exParity    int
	packTasks   []packTask
	unpackTasks []packTask
	packFn      func(int, int)
	unpackFn    func(int, int)

	// Legacy per-pair exchange state (ExchangePerPair, exchange.go).
	plan    []exchangeOp
	pending []recvOp

	// Hybrid execution state: the worker pool, the frontier/interior
	// block split (frontier blocks have off-rank neighbors and must wait
	// for remote ghost data; interior blocks sweep while communication is
	// in flight), and the precomputed body-force increments. sweepList and
	// sweepFn are the persistent argument slot and closure of sweepBlocks.
	pool      workerPool
	interior  []*BlockData
	frontier  []*BlockData
	sweepList []*BlockData
	sweepFn   func(int, int)
	force     *forcing

	// tel holds the pre-resolved telemetry handles (telemetry.go); its
	// members are nil-safe, so untraced simulations pay one branch per
	// recording site.
	tel simTel

	// In-memory buddy replication state of shrinking recovery (buddy.go);
	// nil unless RunResilient runs with RecoverShrink.
	buddy *buddyState
	// recoveryDiskReads counts filesystem reads performed by the restore
	// paths; the driver snapshots it around each recovery to assert the
	// buddy path stays disk-free.
	recoveryDiskReads int

	computeTime  time.Duration
	commTime     time.Duration
	boundaryTime time.Duration
	overlap      OverlapTimes
	steps        int
	// worldSteps is the cumulative simulated-time step, never reset by
	// ResetTimers and advanced to the restored step by checkpoint-set
	// restores. The plain driver announces it to the fault injector so a
	// scenario's deterministic fault schedule fires at absolute steps even
	// when the run is split into many RunCtx batches (the serve daemon).
	worldSteps int
}

// New builds the simulation state for this rank's part of the forest.
func New(c *comm.Comm, forest *blockforest.BlockForest, cfg Config) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulation{
		Comm:    c,
		Forest:  forest,
		Stencil: cfg.Stencil,
		Config:  cfg,
		byCoord: make(map[[3]int]*BlockData),
		pool:    workerPool{workers: cfg.Workers},
		force:   newForcing(cfg.Stencil, cfg.Force),
	}
	s.tel = resolveSimTel(cfg.Tracer, cfg.Metrics)
	// The rank's driver goroutine owns lane 0, so the communicator shares
	// it for send/recv/barrier spans.
	c.SetTelemetry(cfg.Tracer.Driver(), cfg.Metrics)
	if c.TransportName() != "inproc" {
		// The socket transport's lifecycle events (connects, resends,
		// accusations) happen on background goroutines; give them their own
		// lane so they never contend with the driver's.
		var lane *telemetry.Lane
		if cfg.Tracer != nil {
			lane = cfg.Tracer.AddLane("net", 0)
		}
		c.SetNetTelemetry(lane, cfg.Metrics)
	}
	for _, b := range forest.Blocks {
		bd, err := s.newBlockData(b)
		if err != nil {
			return nil, err
		}
		s.Blocks = append(s.Blocks, bd)
		s.byCoord[b.Coord] = bd
	}
	s.sweepFn = func(worker, i int) {
		bd := s.sweepList[i]
		lane := s.tel.worker(worker)
		laneStart := lane.Start()
		tb := time.Now()
		bd.Boundary.Apply(bd.Src)
		tk := time.Now()
		bd.Kernel.Sweep(bd.Src, bd.Dst, bd.sweepFlags)
		s.force.apply(bd)
		bd.stepBoundary = tk.Sub(tb)
		bd.stepCompute = time.Since(tk)
		if lane != nil {
			// Reuse the durations just measured instead of stamping each
			// boundary live — two fewer clock reads per block.
			mid := laneStart + int64(bd.stepBoundary)
			lane.SpanAt(telemetry.PhaseBoundary, s.steps, int32(i), laneStart, mid)
			lane.SpanAt(telemetry.PhaseCollideStream, s.steps, int32(i), mid, mid+int64(bd.stepCompute))
		}
	}
	s.rebuildPlan(true)
	return s, nil
}

func (s *Simulation) newBlockData(b *blockforest.Block) (*BlockData, error) {
	cells := b.Cells
	flags := field.NewFlagField(cells[0], cells[1], cells[2], 1)
	if s.Config.SetupFlags != nil {
		s.Config.SetupFlags(b, s.Forest, flags)
	} else {
		defaultFlags(b, s.Forest, flags)
	}
	k, choice, err := s.Config.blockKernel(flags)
	if err != nil {
		return nil, err
	}
	layout := k.Layout()
	src := field.NewPDFField(s.Stencil, cells[0], cells[1], cells[2], 1, layout)
	fluid := flags.Count(field.Fluid)
	bd := &BlockData{
		Block:      b,
		Src:        src,
		Dst:        src.CopyShape(),
		Flags:      flags,
		Kernel:     k,
		Boundary:   newBoundarySweep(s, flags),
		Fluid:      fluid,
		sweepFlags: denseSweepFlags(choice, flags, fluid),
	}
	s.initBlockState(bd)
	return bd, nil
}

// denseSweepFlags picks the flag field a block's kernel sweep receives:
// nil when every interior cell is fluid and the kernel is not bound to its
// flag field — the dense fast path — and the block's flags otherwise.
func denseSweepFlags(choice KernelChoice, flags *field.FlagField, fluid int) *field.FlagField {
	if choice != KernelSparse && fluid == flags.Nx*flags.Ny*flags.Nz {
		return nil
	}
	return flags
}

// initBlockState (re)initializes a block's PDF fields to the configured
// step-zero state. It is shared between construction and checkpoint-less
// rewinds: a resilient restart that finds no valid checkpoint set rolls
// the fields back to exactly this state.
func (s *Simulation) initBlockState(bd *BlockData) {
	v := s.Config.InitialVelocity
	bd.Src.FillEquilibrium(s.Config.InitialRho, v[0], v[1], v[2])
	bd.Dst.FillEquilibrium(s.Config.InitialRho, v[0], v[1], v[2])
	if s.Config.InitialState != nil {
		cells := bd.Block.Cells
		feq := make([]float64, s.Stencil.Q)
		base := [3]int{bd.Block.Coord[0] * cells[0], bd.Block.Coord[1] * cells[1], bd.Block.Coord[2] * cells[2]}
		for z := 0; z < cells[2]; z++ {
			for y := 0; y < cells[1]; y++ {
				for x := 0; x < cells[0]; x++ {
					rho, ux, uy, uz := s.Config.InitialState(base[0]+x, base[1]+y, base[2]+z)
					s.Stencil.Equilibrium(feq, rho, ux, uy, uz)
					for a := 0; a < s.Stencil.Q; a++ {
						bd.Src.Set(x, y, z, lattice.Direction(a), feq[a])
					}
				}
			}
		}
	}
}

// newBoundarySweep builds the boundary handling of one block.
func newBoundarySweep(s *Simulation, flags *field.FlagField) *boundary.Sweep {
	return boundary.NewSweep(s.Stencil, flags, s.Config.Boundary)
}

// defaultFlags marks all interior cells fluid and ghost layers at the
// domain boundary (no neighbor, non-periodic) as no-slip walls; ghost
// layers toward existing neighbors stay fluid (they receive data).
func defaultFlags(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
	flags.Fill(field.Fluid)
	for f := lattice.FaceW; f < lattice.NumFaces; f++ {
		nx, ny, nz := f.Normal()
		if b.Neighbor([3]int{nx, ny, nz}) != nil {
			continue
		}
		markGhostFace(flags, f, field.NoSlip)
	}
}

// markGhostFace sets the ghost slab beyond the given face (including its
// edges and corners on that side) to the cell type.
func markGhostFace(flags *field.FlagField, f lattice.Face, t field.CellType) {
	g := flags.Ghost
	nx, ny, nz := f.Normal()
	for z := -g; z < flags.Nz+g; z++ {
		for y := -g; y < flags.Ny+g; y++ {
			for x := -g; x < flags.Nx+g; x++ {
				if (nx < 0 && x >= 0) || (nx > 0 && x < flags.Nx) ||
					(ny < 0 && y >= 0) || (ny > 0 && y < flags.Ny) ||
					(nz < 0 && z >= 0) || (nz > 0 && z < flags.Nz) {
					continue
				}
				flags.Set(x, y, z, t)
			}
		}
	}
}

// MarkGhostFace is exported for scenario setup hooks.
func MarkGhostFace(flags *field.FlagField, f lattice.Face, t field.CellType) {
	markGhostFace(flags, f, t)
}

// Step advances the simulation by one time step, overlapping the
// ghost-layer exchange with the interior sweeps:
//
//  1. post the exchange — pack boundary slabs (on the worker pool), send
//     them, copy between same-rank blocks, post remote receives;
//  2. sweep the interior blocks (no off-rank neighbors) on the worker
//     pool while remote data is in flight;
//  3. complete the exchange — wait for the remote slabs and unpack them
//     into the frontier blocks' ghost layers;
//  4. sweep the frontier blocks;
//  5. swap the PDF fields.
//
// Each block's sweep fuses boundary handling, the stream-collide kernel
// and body forcing; blocks touch disjoint state, so any execution order
// produces bit-identical fields. Step returns a typed
// *comm.RankFailedError when a peer dies mid-step, leaving this rank's
// fields in an unspecified state that only a checkpoint restore (or
// re-initialization) may repair.
func (s *Simulation) Step() error {
	s.Comm.SetTelemetryStep(s.steps)
	stepStart := s.tel.driver.Start()
	t0 := time.Now()
	if err := s.postExchange(); err != nil {
		return err
	}
	t1 := time.Now()
	post := t1.Sub(t0)
	s.overlap.Post += post

	s.sweepBlocks(s.interior)
	t2 := time.Now()
	interior := t2.Sub(t1)
	s.overlap.Interior += interior

	if err := s.completeExchange(); err != nil {
		return err
	}
	t3 := time.Now()
	wait := t3.Sub(t2)
	s.overlap.Wait += wait

	s.sweepBlocks(s.frontier)
	frontier := time.Since(t3)
	s.overlap.Frontier += frontier

	s.commTime = s.overlap.Post + s.overlap.Wait
	for _, bd := range s.Blocks {
		field.Swap(bd.Src, bd.Dst)
	}
	s.tel.stepPhases(s.steps, stepStart, post, interior, wait, frontier)
	s.steps++
	return nil
}

// sweepBlocks runs the fused per-block update — boundary handling,
// stream-collide, body force — for the given blocks on the worker pool,
// then reduces the per-block phase timings in deterministic block order.
// The sweep body is the persistent s.sweepFn closure; a fresh closure per
// call would escape to the heap on every invocation.
func (s *Simulation) sweepBlocks(bds []*BlockData) {
	s.sweepList = bds
	s.pool.run(len(bds), s.sweepFn)
	s.sweepList = nil
	var bNs, cNs time.Duration
	for _, bd := range bds {
		s.boundaryTime += bd.stepBoundary
		s.computeTime += bd.stepCompute
		bd.ComputeTime += bd.stepCompute
		bNs += bd.stepBoundary
		cNs += bd.stepCompute
	}
	s.tel.boundaryNs.Add(int64(bNs))
	s.tel.collideNs.Add(int64(cNs))
}

// rebuildPlan recomputes the exchange plan of the configured mode and the
// frontier/interior block split; it must run after any change to the
// block assignment or the neighborhood views (construction, rebalancing,
// failure recovery).
//
// recycleBuffers controls whether the retired aggregate buffers of the
// previous plan return to the buffer pool. That is safe only when the
// rebuild trigger is collective among every rank that ever read those
// buffers: the in-process transport delivers sends zero-copy, so a peer's
// unpack reads alias our send buffers, and repacking a recycled buffer
// must happen-after those reads. Rebalancing qualifies (it starts with an
// Alltoall). Failure recovery does NOT — a hung or crashed rank read our
// buffers and then retired without ever synchronizing again, so its final
// unpack has no happens-before edge to the recovery rendezvous. Recovery
// rebuilds must pass false and let the garbage collector take the retired
// buffers.
func (s *Simulation) rebuildPlan(recycleBuffers bool) {
	if recycleBuffers {
		releaseAggregateBuffers(s.channels)
	}
	s.locals, s.channels, s.plan = nil, nil, nil
	remote := make(map[*BlockData]bool)
	if s.Config.Exchange == ExchangePerPair {
		s.plan = buildExchangePlan(s)
		for i := range s.plan {
			if s.plan[i].remote {
				remote[s.plan[i].bd] = true
			}
		}
	} else {
		s.locals, s.channels = buildAggregatePlan(s)
		s.buildExchangeClosures()
		for ci := range s.channels {
			for _, sl := range s.channels[ci].send {
				remote[sl.bd] = true
			}
			for _, sl := range s.channels[ci].recv {
				remote[sl.bd] = true
			}
		}
	}
	s.interior, s.frontier = nil, nil
	for _, bd := range s.Blocks {
		if remote[bd] {
			s.frontier = append(s.frontier, bd)
		} else {
			s.interior = append(s.interior, bd)
		}
	}
}

// Run advances the given number of steps and returns the metrics of the
// run (globally reduced over all ranks).
func (s *Simulation) Run(steps int) (Metrics, error) {
	return s.RunCtx(context.Background(), steps)
}

// RunCtx is Run bound to a context: a cancellation stops the time loop at
// the next step boundary with an error wrapping ErrInterrupted. Because
// ranks observe the cancellation asynchronously, a cancellable context
// (ctx.Done() != nil) adds one scalar allreduce per step — the "stop?"
// vote that keeps every rank exiting at the same step instead of
// deadlocking its peers mid-exchange. A background context skips the vote
// and is byte-for-byte the uncancellable Run.
func (s *Simulation) RunCtx(ctx context.Context, steps int) (Metrics, error) {
	s.ResetTimers()
	start := time.Now()
	for i := 0; i < steps; i++ {
		if stop, err := s.cancelVote(ctx); err != nil {
			return Metrics{}, err
		} else if stop {
			return Metrics{}, interrupted(ctx)
		}
		// Announce the absolute step to the fault injector (free without a
		// plan). The resilient drivers announce their own replay-aware step
		// and never come through here.
		s.worldSteps++
		s.Comm.SetStep(s.worldSteps)
		if err := s.Step(); err != nil {
			return Metrics{}, err
		}
	}
	wall := time.Since(start)
	return s.gatherMetrics(steps, wall)
}

// cancelVote is the collective cancellation check of the context-bound
// drivers: every rank contributes whether its context is done, and the
// loop stops iff any rank's is — so all ranks agree on the exact step the
// run ends at. It is a no-op (no communication) for contexts that can
// never be cancelled.
func (s *Simulation) cancelVote(ctx context.Context) (stop bool, err error) {
	if ctx == nil || ctx.Done() == nil {
		return false, nil
	}
	flag := int64(0)
	if ctx.Err() != nil {
		flag = 1
	}
	v, err := s.Comm.AllreduceInt64Err(flag, comm.Max[int64])
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

// interrupted builds the ErrInterrupted-wrapping error of a cancelled
// run, attaching this rank's own context cause when it has one (on ranks
// that merely voted with a cancelled peer the cause is unknown).
func interrupted(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil {
		return fmt.Errorf("%w: %w", ErrInterrupted, cause)
	}
	return ErrInterrupted
}

// ErrInterrupted is returned (wrapped) by RunCtx and RunResilientCtx when
// the run was stopped by context cancellation rather than by an error:
// the simulation state is a consistent step boundary on every rank, and
// any in-flight checkpoint set was finished (or rolled back atomically)
// before the drivers returned.
var ErrInterrupted = errors.New("sim: run interrupted")

// SetForce replaces the constant body force applied after collision —
// the steering hook of the session API. Every rank must call it at the
// same step boundary (it changes the physics deterministically from the
// next step on).
func (s *Simulation) SetForce(f [3]float64) {
	s.Config.Force = f
	s.force = newForcing(s.Stencil, f)
}

// Steps returns the number of time steps executed since the last timer
// reset.
func (s *Simulation) Steps() int { return s.steps }

// ResetTimers zeroes the accumulated phase timers.
func (s *Simulation) ResetTimers() {
	s.computeTime, s.commTime, s.boundaryTime = 0, 0, 0
	s.overlap = OverlapTimes{}
	s.steps = 0
}

// Workers returns the configured intra-rank worker count.
func (s *Simulation) Workers() int { return s.pool.workers }

// BlockSplit returns the sizes of the frontier/interior block split:
// frontier blocks have off-rank neighbors and wait for remote ghost data,
// interior blocks sweep while communication is in flight.
func (s *Simulation) BlockSplit() (frontier, interior int) {
	return len(s.frontier), len(s.interior)
}

// LocalCells returns the number of allocated interior cells on this rank.
func (s *Simulation) LocalCells() int64 {
	var n int64
	for _, bd := range s.Blocks {
		n += int64(bd.Src.InteriorCells())
	}
	return n
}

// LocalFluidCells returns the number of fluid cells on this rank.
func (s *Simulation) LocalFluidCells() int64 {
	var n int64
	for _, bd := range s.Blocks {
		n += int64(bd.Fluid)
	}
	return n
}

// BlockByCoord returns this rank's block data at the given grid coordinate
// or nil.
func (s *Simulation) BlockByCoord(c [3]int) *BlockData { return s.byCoord[c] }
