// Package sim drives distributed LBM simulations over a block forest: it
// allocates per-block PDF, flag and boundary data, exchanges ghost layers
// between blocks through the communicator (packing only the PDFs that
// actually cross each block boundary, as waLBerla does), applies boundary
// conditions, runs the fused stream-collide kernels, and accounts the
// MLUPS / MFLUPS and communication-time metrics the paper reports.
package sim

import (
	"fmt"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/boundary"
	"walberla/internal/collide"
	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/kernels"
	"walberla/internal/lattice"
)

// KernelChoice selects a compute kernel family for a simulation.
type KernelChoice string

// Kernel choices; the names match the paper's Figure 3 series.
const (
	KernelGenericSRT KernelChoice = "SRT Generic"
	KernelGenericTRT KernelChoice = "TRT Generic"
	KernelD3Q19SRT   KernelChoice = "SRT D3Q19"
	KernelD3Q19TRT   KernelChoice = "TRT D3Q19"
	KernelSplitSRT   KernelChoice = "SRT SIMD"
	KernelSplitTRT   KernelChoice = "TRT SIMD"
	KernelSparse     KernelChoice = "TRT Interval" // sparse compressed-row kernel
)

// Config describes a simulation.
type Config struct {
	// Stencil selects the lattice model; nil means D3Q19, the model of
	// all simulations in the paper. Other stencils (D3Q27, D2Q9) run
	// through the generic kernels.
	Stencil *lattice.Stencil
	// Kernel picks the compute kernel; the zero value is KernelSplitTRT,
	// the kernel used for all production runs in the paper (or the
	// generic TRT kernel for non-D3Q19 stencils).
	Kernel KernelChoice
	// Tau is the relaxation time (stability requires > 0.5); the zero
	// value means 0.9.
	Tau float64
	// Magic is the TRT magic parameter; zero means 3/16.
	Magic float64
	// InitialRho and InitialVelocity initialize all fluid cells to the
	// corresponding equilibrium. Zero rho means 1.
	InitialRho      float64
	InitialVelocity [3]float64
	// InitialState, if non-nil, overrides the uniform initialization with
	// a per-cell equilibrium state; x, y, z are global cell coordinates.
	InitialState func(x, y, z int) (rho, ux, uy, uz float64)
	// Boundary configures wall velocities and outflow densities.
	Boundary boundary.Config
	// Force is a constant body force density applied to every fluid cell
	// after collision (simple first-order forcing), used e.g. to drive
	// Poiseuille flow.
	Force [3]float64
	// SetupFlags populates the flag field of each block (voxelization,
	// domain walls). nil means: all interior cells fluid, ghost cells at
	// the domain boundary NoSlip walls, remaining ghosts fluid.
	SetupFlags func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField)
}

// MakeKernel constructs the compute kernel for a kernel choice and the
// D3Q19 stencil; see MakeKernelFor for other lattice models. The flag
// field is required by the sparse kernels (which precompute their fluid
// cell structure from it) and ignored by the dense ones.
func MakeKernel(choice KernelChoice, tau, magic float64, flags *field.FlagField) (kernels.Kernel, error) {
	return MakeKernelFor(choice, lattice.D3Q19(), tau, magic, flags)
}

// MakeKernelFor constructs the compute kernel for an arbitrary stencil;
// only the generic kernel choices support stencils other than D3Q19.
func MakeKernelFor(choice KernelChoice, stencil *lattice.Stencil, tau, magic float64, flags *field.FlagField) (kernels.Kernel, error) {
	if stencil == nil {
		stencil = lattice.D3Q19()
	}
	if tau == 0 {
		tau = 0.9
	}
	if magic == 0 {
		magic = collide.MagicParameter
	}
	srt := collide.NewSRT(tau)
	trt := collide.NewTRT(tau, magic)
	if stencil != lattice.D3Q19() &&
		choice != KernelGenericSRT && choice != KernelGenericTRT {
		return nil, fmt.Errorf("sim: kernel %q supports D3Q19 only", choice)
	}
	switch choice {
	case KernelGenericSRT:
		return kernels.NewGeneric(stencil, srt), nil
	case KernelGenericTRT:
		return kernels.NewGeneric(stencil, trt), nil
	case KernelD3Q19SRT:
		return kernels.NewD3Q19SRT(srt), nil
	case KernelD3Q19TRT:
		return kernels.NewD3Q19TRT(trt), nil
	case KernelSplitSRT:
		return kernels.NewSplitSRT(srt), nil
	case KernelSplitTRT:
		return kernels.NewSplitTRT(trt), nil
	case KernelSparse:
		if flags == nil {
			return nil, fmt.Errorf("sim: sparse kernel requires a flag field")
		}
		return kernels.NewSparseInterval(trt, flags), nil
	}
	return nil, fmt.Errorf("sim: unknown kernel %q", choice)
}

// BlockData is the runtime state of one block on this rank.
type BlockData struct {
	Block    *blockforest.Block
	Src, Dst *field.PDFField
	Flags    *field.FlagField
	Kernel   kernels.Kernel
	Boundary *boundary.Sweep
	Fluid    int // fluid cell count
	// ComputeTime accumulates this block's kernel time, the measured
	// workload used by dynamic rebalancing.
	ComputeTime time.Duration
}

// Simulation is the per-rank simulation state.
type Simulation struct {
	Comm    *comm.Comm
	Forest  *blockforest.BlockForest
	Stencil *lattice.Stencil
	Config  Config
	Blocks  []*BlockData

	byCoord map[[3]int]*BlockData
	plan    []exchangeOp

	computeTime  time.Duration
	commTime     time.Duration
	boundaryTime time.Duration
	steps        int
}

// New builds the simulation state for this rank's part of the forest.
func New(c *comm.Comm, forest *blockforest.BlockForest, cfg Config) (*Simulation, error) {
	if cfg.Stencil == nil {
		cfg.Stencil = lattice.D3Q19()
	}
	if cfg.Kernel == "" {
		if cfg.Stencil == lattice.D3Q19() {
			cfg.Kernel = KernelSplitTRT
		} else {
			cfg.Kernel = KernelGenericTRT
		}
	}
	if cfg.Stencil != lattice.D3Q19() &&
		cfg.Kernel != KernelGenericSRT && cfg.Kernel != KernelGenericTRT {
		return nil, fmt.Errorf("sim: stencil %s requires a generic kernel", cfg.Stencil)
	}
	if cfg.Tau == 0 {
		cfg.Tau = 0.9
	}
	if cfg.Tau <= 0.5 {
		return nil, fmt.Errorf("sim: tau %v must exceed 1/2", cfg.Tau)
	}
	if cfg.Magic == 0 {
		cfg.Magic = collide.MagicParameter
	}
	if cfg.InitialRho == 0 {
		cfg.InitialRho = 1
	}
	s := &Simulation{
		Comm:    c,
		Forest:  forest,
		Stencil: cfg.Stencil,
		Config:  cfg,
		byCoord: make(map[[3]int]*BlockData),
	}
	for _, b := range forest.Blocks {
		bd, err := s.newBlockData(b)
		if err != nil {
			return nil, err
		}
		s.Blocks = append(s.Blocks, bd)
		s.byCoord[b.Coord] = bd
	}
	s.plan = buildExchangePlan(s)
	return s, nil
}

func (s *Simulation) newBlockData(b *blockforest.Block) (*BlockData, error) {
	cells := b.Cells
	flags := field.NewFlagField(cells[0], cells[1], cells[2], 1)
	if s.Config.SetupFlags != nil {
		s.Config.SetupFlags(b, s.Forest, flags)
	} else {
		defaultFlags(b, s.Forest, flags)
	}
	k, err := MakeKernelFor(s.Config.Kernel, s.Stencil, s.Config.Tau, s.Config.Magic, flags)
	if err != nil {
		return nil, err
	}
	layout := k.Layout()
	src := field.NewPDFField(s.Stencil, cells[0], cells[1], cells[2], 1, layout)
	bd := &BlockData{
		Block:    b,
		Src:      src,
		Dst:      src.CopyShape(),
		Flags:    flags,
		Kernel:   k,
		Boundary: newBoundarySweep(s, flags),
		Fluid:    flags.Count(field.Fluid),
	}
	s.initBlockState(bd)
	return bd, nil
}

// initBlockState (re)initializes a block's PDF fields to the configured
// step-zero state. It is shared between construction and checkpoint-less
// rewinds: a resilient restart that finds no valid checkpoint set rolls
// the fields back to exactly this state.
func (s *Simulation) initBlockState(bd *BlockData) {
	v := s.Config.InitialVelocity
	bd.Src.FillEquilibrium(s.Config.InitialRho, v[0], v[1], v[2])
	bd.Dst.FillEquilibrium(s.Config.InitialRho, v[0], v[1], v[2])
	if s.Config.InitialState != nil {
		cells := bd.Block.Cells
		feq := make([]float64, s.Stencil.Q)
		base := [3]int{bd.Block.Coord[0] * cells[0], bd.Block.Coord[1] * cells[1], bd.Block.Coord[2] * cells[2]}
		for z := 0; z < cells[2]; z++ {
			for y := 0; y < cells[1]; y++ {
				for x := 0; x < cells[0]; x++ {
					rho, ux, uy, uz := s.Config.InitialState(base[0]+x, base[1]+y, base[2]+z)
					s.Stencil.Equilibrium(feq, rho, ux, uy, uz)
					for a := 0; a < s.Stencil.Q; a++ {
						bd.Src.Set(x, y, z, lattice.Direction(a), feq[a])
					}
				}
			}
		}
	}
}

// newBoundarySweep builds the boundary handling of one block.
func newBoundarySweep(s *Simulation, flags *field.FlagField) *boundary.Sweep {
	return boundary.NewSweep(s.Stencil, flags, s.Config.Boundary)
}

// defaultFlags marks all interior cells fluid and ghost layers at the
// domain boundary (no neighbor, non-periodic) as no-slip walls; ghost
// layers toward existing neighbors stay fluid (they receive data).
func defaultFlags(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
	flags.Fill(field.Fluid)
	for f := lattice.FaceW; f < lattice.NumFaces; f++ {
		nx, ny, nz := f.Normal()
		if b.Neighbor([3]int{nx, ny, nz}) != nil {
			continue
		}
		markGhostFace(flags, f, field.NoSlip)
	}
}

// markGhostFace sets the ghost slab beyond the given face (including its
// edges and corners on that side) to the cell type.
func markGhostFace(flags *field.FlagField, f lattice.Face, t field.CellType) {
	g := flags.Ghost
	nx, ny, nz := f.Normal()
	for z := -g; z < flags.Nz+g; z++ {
		for y := -g; y < flags.Ny+g; y++ {
			for x := -g; x < flags.Nx+g; x++ {
				if (nx < 0 && x >= 0) || (nx > 0 && x < flags.Nx) ||
					(ny < 0 && y >= 0) || (ny > 0 && y < flags.Ny) ||
					(nz < 0 && z >= 0) || (nz > 0 && z < flags.Nz) {
					continue
				}
				flags.Set(x, y, z, t)
			}
		}
	}
}

// MarkGhostFace is exported for scenario setup hooks.
func MarkGhostFace(flags *field.FlagField, f lattice.Face, t field.CellType) {
	markGhostFace(flags, f, t)
}

// Step advances the simulation by one time step: ghost exchange, boundary
// handling, fused stream-collide, field swap. It panics if a rank failure
// is detected mid-step; resilient drivers use StepErr.
func (s *Simulation) Step() {
	if err := s.StepErr(); err != nil {
		panic(err)
	}
}

// StepErr is Step returning a typed *comm.RankFailedError when a peer
// dies mid-step, leaving this rank's fields in an unspecified state that
// only a checkpoint restore (or re-initialization) may repair.
func (s *Simulation) StepErr() error {
	t0 := time.Now()
	if err := s.exchangeGhostLayersErr(); err != nil {
		return err
	}
	t1 := time.Now()
	s.commTime += t1.Sub(t0)

	for _, bd := range s.Blocks {
		bd.Boundary.Apply(bd.Src)
	}
	t2 := time.Now()
	s.boundaryTime += t2.Sub(t1)

	for _, bd := range s.Blocks {
		timeBlockSweep(bd)
		if s.Config.Force != [3]float64{} {
			applyForce(bd, s.Stencil, s.Config.Force)
		}
	}
	s.computeTime += time.Since(t2)

	for _, bd := range s.Blocks {
		field.Swap(bd.Src, bd.Dst)
	}
	s.steps++
	return nil
}

// applyForce adds the first-order body force term 3 w_a (e_a . F) to every
// fluid cell of dst, injecting momentum density F per step.
func applyForce(bd *BlockData, st *lattice.Stencil, force [3]float64) {
	for z := 0; z < bd.Dst.Nz; z++ {
		for y := 0; y < bd.Dst.Ny; y++ {
			for x := 0; x < bd.Dst.Nx; x++ {
				if bd.Flags.Get(x, y, z) != field.Fluid {
					continue
				}
				for a := 0; a < st.Q; a++ {
					ef := float64(st.Cx[a])*force[0] + float64(st.Cy[a])*force[1] + float64(st.Cz[a])*force[2]
					if ef == 0 {
						continue
					}
					d := lattice.Direction(a)
					bd.Dst.Set(x, y, z, d, bd.Dst.Get(x, y, z, d)+3*st.W[a]*ef)
				}
			}
		}
	}
}

// Run advances the given number of steps and returns the metrics of the
// run (globally reduced over all ranks).
func (s *Simulation) Run(steps int) Metrics {
	s.ResetTimers()
	start := time.Now()
	for i := 0; i < steps; i++ {
		s.Step()
	}
	wall := time.Since(start)
	return s.gatherMetrics(steps, wall)
}

// ResetTimers zeroes the accumulated phase timers.
func (s *Simulation) ResetTimers() {
	s.computeTime, s.commTime, s.boundaryTime = 0, 0, 0
	s.steps = 0
}

// LocalCells returns the number of allocated interior cells on this rank.
func (s *Simulation) LocalCells() int64 {
	var n int64
	for _, bd := range s.Blocks {
		n += int64(bd.Src.InteriorCells())
	}
	return n
}

// LocalFluidCells returns the number of fluid cells on this rank.
func (s *Simulation) LocalFluidCells() int64 {
	var n int64
	for _, bd := range s.Blocks {
		n += int64(bd.Fluid)
	}
	return n
}

// BlockByCoord returns this rank's block data at the given grid coordinate
// or nil.
func (s *Simulation) BlockByCoord(c [3]int) *BlockData { return s.byCoord[c] }
