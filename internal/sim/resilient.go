package sim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/output"
	"walberla/internal/telemetry"
)

// Resilient execution: coordinated checkpoint sets plus automatic
// rewind-and-replay on rank failure. Checkpoints are taken at a step
// barrier (every rank snapshots the same step, before executing it), so a
// restored run replays the exact deterministic step sequence and finishes
// bit-identical to an uninterrupted run.

// RecoveryMode selects how RunResilient repairs the world after a
// permanent rank failure.
type RecoveryMode int

const (
	// RecoverRewind (the default) keeps the world intact: every rank —
	// including the one that failed, which in the in-process model can
	// rejoin — backs off, rendezvouses and rewinds from the newest valid
	// disk checkpoint set.
	RecoverRewind RecoveryMode = iota
	// RecoverShrink drops the failed rank: the survivors shrink the
	// communicator, the dead rank's buddy re-owns its blocks from the
	// in-memory replica, and the run resumes from the replicated step
	// with zero disk I/O (ULFM-style shrinking recovery; see
	// docs/RESILIENCE.md). Disk checkpoint sets, when configured, remain
	// the fallback for a stale or missing replica generation.
	RecoverShrink
	// RecoverHeal additionally repairs the lost capacity: after the
	// failure the world *grows back* to its full size by recruiting a
	// parked spare rank (comm.ParkSpare/GrowWorld), the dead rank's buddy
	// streams the replica blocks to the recruit instead of adopting them,
	// and the run resumes at full world size — still bit-identical, since
	// stepping is deterministic and the restore generation is voted the
	// same way. With the spare pool exhausted a heal degrades to a plain
	// shrink. See docs/RESILIENCE.md and RunSpare.
	RecoverHeal
)

// ErrRetired is returned by RunResilient on a rank that failed
// permanently under RecoverShrink: the rank has been removed from the
// world, the survivors carry its blocks on, and this rank must simply
// return from the SPMD function without further communication.
var ErrRetired = errors.New("sim: rank retired after permanent failure (shrinking recovery)")

// errSilenced is the internal conversion of an injected Hang: the rank
// must go dark without even marking itself dead — the world has to detect
// the silence by timeout.
var errSilenced = errors.New("sim: rank silenced by injected hang")

// ResilienceConfig tunes RunResilient.
type ResilienceConfig struct {
	// CheckpointEvery protects every multiple of this step count: under
	// RecoverRewind a coordinated disk checkpoint set is written (when Dir
	// is non-empty), under RecoverShrink an in-memory buddy replica
	// generation is produced (plus the disk set when Dir is set, as the
	// fallback rung). 0 disables both: failures rewind to the initial
	// state, and shrink recovery has no replicas to restore from.
	CheckpointEvery int
	// Dir is the checkpoint root directory; one "set-<step>" subdirectory
	// per checkpoint. Empty disables disk checkpointing (RecoverShrink
	// then runs purely in memory).
	Dir string
	// Mode selects rewind (default) or shrinking recovery.
	Mode RecoveryMode
	// MaxFailures caps how many rank-failure events are tolerated before
	// the run aborts. Negative selects the default of 8; 0 means zero
	// tolerance — abort on the first failure; positive values are the
	// cap.
	MaxFailures int
	// BackoffBase and BackoffMax shape the capped exponential delay
	// between failure detection and the recovery rendezvous; zero means
	// 10ms base, 2s cap.
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

// Validate normalizes the resilience configuration in place (default
// failure budget and backoff shape) and rejects unknown recovery modes —
// the ResilienceConfig counterpart of Config.Validate.
func (rc *ResilienceConfig) Validate() error {
	if rc.Mode != RecoverRewind && rc.Mode != RecoverShrink && rc.Mode != RecoverHeal {
		return fmt.Errorf("sim: unknown recovery mode %d", rc.Mode)
	}
	if rc.CheckpointEvery < 0 {
		return fmt.Errorf("sim: negative checkpoint interval %d", rc.CheckpointEvery)
	}
	if rc.MaxFailures < 0 {
		rc.MaxFailures = 8
	}
	if rc.BackoffBase == 0 {
		rc.BackoffBase = 10 * time.Millisecond
	}
	if rc.BackoffMax == 0 {
		rc.BackoffMax = 2 * time.Second
	}
	return nil
}

// backoff returns the capped exponential delay for the nth failure
// (1-based).
func (rc *ResilienceConfig) backoff(n int) time.Duration {
	d := rc.BackoffBase
	for i := 1; i < n; i++ {
		d *= 2
		if d >= rc.BackoffMax {
			return rc.BackoffMax
		}
	}
	if d > rc.BackoffMax {
		return rc.BackoffMax
	}
	return d
}

// ckptStatus is the coordination payload broadcast by rank 0 when a
// checkpoint set is opened and closed.
type ckptStatus struct {
	Err    string
	Skip   bool
	Total  int64
	Commit bool
}

// WriteCheckpointSet writes a coordinated checkpoint set for the given
// step: every rank snapshots all of its blocks (both PDF fields, so
// replay is bit-identical) into a per-rank file, rank 0 gathers sizes and
// CRC32Cs into the manifest, and the whole set directory is renamed into
// place atomically — a crash mid-checkpoint never produces a half-valid
// set. Returns the bytes this rank wrote (0 if the set already existed).
func (s *Simulation) WriteCheckpointSet(dir string, step int) (int64, error) {
	c := s.Comm
	final := filepath.Join(dir, output.SetDirName(step))
	tmp := filepath.Join(dir, output.TmpSetDirName(step))

	// Rank 0 opens the set (or reports it as already committed) and
	// broadcasts the verdict so every rank agrees before touching disk.
	var open ckptStatus
	if c.Rank() == 0 {
		if _, err := os.Stat(final); err == nil {
			open.Skip = true
		} else {
			os.RemoveAll(tmp)
			if err := os.MkdirAll(tmp, 0o755); err != nil {
				open.Err = err.Error()
			}
		}
	}
	v, err := c.BcastErr(0, open)
	if err != nil {
		return 0, err
	}
	open = v.(ckptStatus)
	if open.Err != "" {
		return 0, fmt.Errorf("sim: opening checkpoint set %d: %s", step, open.Err)
	}
	if open.Skip {
		return 0, nil
	}

	// Every rank writes its own file; errors are gathered, not returned
	// early, so rank 0 always receives one contribution per rank.
	type contribution struct {
		Entry output.ManifestEntry
		Err   string
	}
	var contrib contribution
	contrib.Entry.Name = output.RankFileName(c.Rank())
	blocks := make([]output.BlockSnapshot, len(s.Blocks))
	for i, bd := range s.Blocks {
		blocks[i] = output.BlockSnapshot{Coord: bd.Block.Coord, Src: bd.Src, Dst: bd.Dst}
	}
	if f, err := os.Create(filepath.Join(tmp, contrib.Entry.Name)); err != nil {
		contrib.Err = err.Error()
	} else {
		size, crc, werr := output.WriteRankFile(f, blocks)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			contrib.Err = werr.Error()
		}
		contrib.Entry.Size, contrib.Entry.CRC = size, crc
	}

	gathered, err := c.GatherErr(0, contrib)
	if err != nil {
		return 0, err
	}

	// Rank 0 commits: manifest write, then the atomic rename.
	var closeSt ckptStatus
	if c.Rank() == 0 {
		m := &output.SetManifest{Step: int64(step), Ranks: int32(c.Size())}
		for r, g := range gathered {
			gc := g.(contribution)
			if gc.Err != "" && closeSt.Err == "" {
				closeSt.Err = fmt.Sprintf("rank %d: %s", r, gc.Err)
			}
			m.Entries = append(m.Entries, gc.Entry)
			closeSt.Total += gc.Entry.Size
		}
		if closeSt.Err == "" {
			if err := writeManifestFile(filepath.Join(tmp, output.ManifestName), m); err != nil {
				closeSt.Err = err.Error()
			} else if err := os.Rename(tmp, final); err != nil {
				closeSt.Err = err.Error()
			} else {
				closeSt.Commit = true
			}
		}
		if closeSt.Err != "" {
			os.RemoveAll(tmp)
		}
	}
	v, err = c.BcastErr(0, closeSt)
	if err != nil {
		return 0, err
	}
	closeSt = v.(ckptStatus)
	if closeSt.Err != "" {
		return 0, fmt.Errorf("sim: committing checkpoint set %d: %s", step, closeSt.Err)
	}
	return contrib.Entry.Size, nil
}

func writeManifestFile(path string, m *output.SetManifest) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := output.WriteManifest(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RestoreLatestCheckpointSet rewinds the simulation to the newest
// checkpoint set that every rank can load and CRC-validate, voting sets
// down collectively so all ranks restore the same one (a set corrupted on
// any rank falls back to the next older set). With no usable set, the
// fields are re-initialized to the configured step-zero state. Returns the
// restored step.
func (s *Simulation) RestoreLatestCheckpointSet(dir string) (int64, error) {
	c := s.Comm

	// Rank 0 enumerates the committed, manifest-valid sets.
	var candidates []int64
	if c.Rank() == 0 {
		candidates = output.ListValidSets(dir)
		s.recoveryDiskReads++
	}
	v, err := c.BcastErr(0, candidates)
	if err != nil {
		return 0, err
	}
	if v != nil {
		candidates = v.([]int64)
	}

	for _, step := range candidates {
		blocks, loadErr := s.loadOwnRankFile(filepath.Join(dir, output.SetDirName(int(step))))
		ok := int64(1)
		if loadErr != nil {
			ok = 0
		}
		agree, err := c.AllreduceInt64Err(ok, comm.Min[int64])
		if err != nil {
			return 0, err
		}
		if agree == 0 {
			continue // some rank cannot use this set; try the next older one
		}
		for coord, pair := range blocks {
			bd := s.byCoord[coord]
			restoreInto(bd.Src, pair[0])
			restoreInto(bd.Dst, pair[1])
		}
		// Simulated time resumes at the restored step; the plain driver's
		// fault-injection announcements continue from there.
		s.worldSteps = int(step)
		return step, nil
	}

	// No usable checkpoint: rewind to the initial state.
	for _, bd := range s.Blocks {
		s.initBlockState(bd)
	}
	return 0, nil
}

// loadOwnRankFile reads and fully validates this rank's file of one set:
// manifest CRC and size, per-record CRCs, and an exact match between the
// snapshot coordinates and this rank's block assignment.
func (s *Simulation) loadOwnRankFile(setDir string) (map[[3]int][2]*field.PDFField, error) {
	c := s.Comm
	s.recoveryDiskReads++
	m, err := output.ValidateSetDir(setDir)
	if err != nil {
		return nil, err
	}
	if int(m.Ranks) != c.Size() {
		return nil, fmt.Errorf("sim: checkpoint set %s was written by %d ranks, running %d",
			setDir, m.Ranks, c.Size())
	}
	name := output.RankFileName(c.Rank())
	var entry *output.ManifestEntry
	for i := range m.Entries {
		if m.Entries[i].Name == name {
			entry = &m.Entries[i]
			break
		}
	}
	if entry == nil {
		return nil, fmt.Errorf("sim: checkpoint set %s has no file for rank %d", setDir, c.Rank())
	}
	f, err := os.Open(filepath.Join(setDir, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Decode every block in the layout it was stored in — ranks can run a
	// mix of layouts under per-block kernel selection; restoreInto
	// transposes if the live block disagrees.
	snaps, crc, err := output.ReadRankFileStored(f, s.Stencil)
	if err != nil {
		return nil, err
	}
	if crc != entry.CRC {
		return nil, fmt.Errorf("sim: rank file %s CRC %08x does not match manifest %08x", name, crc, entry.CRC)
	}
	if len(snaps) != len(s.Blocks) {
		return nil, fmt.Errorf("sim: rank file %s has %d blocks, rank owns %d", name, len(snaps), len(s.Blocks))
	}
	blocks := make(map[[3]int][2]*field.PDFField, len(snaps))
	for _, snap := range snaps {
		bd, ok := s.byCoord[snap.Coord]
		if !ok {
			return nil, fmt.Errorf("sim: rank file %s contains block %v not owned by rank %d",
				name, snap.Coord, c.Rank())
		}
		for _, pf := range [2]*field.PDFField{snap.Src, snap.Dst} {
			if pf.Nx != bd.Src.Nx || pf.Ny != bd.Src.Ny || pf.Nz != bd.Src.Nz || pf.Ghost != bd.Src.Ghost {
				return nil, fmt.Errorf("sim: rank file %s block %v shape mismatch", name, snap.Coord)
			}
		}
		blocks[snap.Coord] = [2]*field.PDFField{snap.Src, snap.Dst}
	}
	return blocks, nil
}

// RunResilient advances the simulation by the given number of steps under
// the fault-tolerant driver: periodic protection (disk checkpoint sets,
// and under RecoverShrink in-memory buddy replicas), and on any detected
// rank failure a capped-exponential backoff, a recovery rendezvous, and a
// state restore before replaying — a disk rewind of the whole world
// (RecoverRewind) or a shrink of the world onto the survivors with the
// dead rank's blocks adopted from its buddy's replica (RecoverShrink).
// Because stepping is deterministic, the run finishes bit-identical to an
// uninterrupted one on the same final block assignment.
//
// Under RecoverShrink a rank that failed permanently returns ErrRetired:
// it is no longer part of the world and must not communicate again.
func (s *Simulation) RunResilient(steps int, rc ResilienceConfig) (Metrics, error) {
	return s.RunResilientCtx(context.Background(), steps, rc)
}

// RunResilientCtx is RunResilient bound to a context. Cancellation stops
// the driver at the next step boundary — never inside a checkpoint: an
// in-flight checkpoint set or buddy-replica generation always finishes
// (or, on error, is rolled back atomically by the set's tmp-dir commit
// protocol) before the drivers return an error wrapping ErrInterrupted.
// As in RunCtx, a cancellable context costs one scalar allreduce per step
// so every rank leaves the loop at the same step.
func (s *Simulation) RunResilientCtx(ctx context.Context, steps int, rc ResilienceConfig) (Metrics, error) {
	if err := rc.Validate(); err != nil {
		return Metrics{}, err
	}
	if rc.Mode != RecoverRewind {
		s.buddy = newBuddyState()
	}
	return s.runResilientLoop(ctx, steps, rc, s.Comm.Size(), 0, RecoveryStats{})
}

// runResilientLoop is the shared fault-tolerant driver: RunResilientCtx
// enters it at step 0 on the initial communicator, a recruited spare
// (joinAndRun) enters it at the restored step on the grown one. target is
// the full world size heal mode grows back to.
func (s *Simulation) runResilientLoop(ctx context.Context, steps int, rc ResilienceConfig, target, startStep int, rec RecoveryStats) (Metrics, error) {
	s.ResetTimers()
	start := time.Now()
	step := startStep
	failures := rec.FailuresDetected
	needRestore := false
	var deadPending []int // world ranks whose blocks still need re-owning
	var degradedSince time.Time

	// In heal mode the end of the run — on every path except this rank's
	// own retirement — must release the parked spares, or they would wait
	// forever for a recruitment that can no longer happen.
	endRun := true
	defer func() {
		if endRun && rc.Mode == RecoverHeal && s.Comm.WorldSize() > s.Comm.Size() {
			s.Comm.ReleaseSpares()
		}
	}()

	// onFailure classifies one rank-failure event; it returns a non-nil
	// terminal error when this rank is done (retired or out of budget).
	onFailure := func(err error) error {
		var rfe *comm.RankFailedError
		if !errors.As(err, &rfe) {
			return err
		}
		failures++
		rec.FailuresDetected++
		s.tel.failures.Inc()
		if failures > rc.MaxFailures {
			return fmt.Errorf("sim: giving up after %d rank failures: %w", failures, err)
		}
		if rc.Mode != RecoverRewind {
			if rfe.Rank == s.Comm.WorldRank() {
				// This rank is the victim: leave the world for good. The
				// survivors carry the run on (and in heal mode recruit a
				// replacement), so the spares must stay parked.
				endRun = false
				s.Comm.Retire()
				return ErrRetired
			}
			found := false
			for _, d := range deadPending {
				found = found || d == rfe.Rank
			}
			if !found {
				deadPending = append(deadPending, rfe.Rank)
			}
			if degradedSince.IsZero() {
				degradedSince = time.Now()
			}
		}
		return nil
	}

	for {
		if needRestore {
			recStart := s.tel.driver.Start()
			tRec := time.Now()
			// The backoff observes ctx so cancellation mid-recovery does not
			// sit out the whole ladder; the rendezvous and restore still run
			// (skipping them would strand the peers in the collective), and
			// the cancellation vote at the top of the next attempt then
			// exits every rank at the same point.
			sleepCtx(ctx, rc.backoff(failures))
			if rc.Mode != RecoverRewind {
				for _, d := range deadPending {
					s.Comm.MarkDead(d)
				}
			}
			s.Comm.Recover()
			resStart := s.tel.driver.Start()
			tRestore := time.Now()
			diskBefore := s.recoveryDiskReads
			var restored int64
			var err error
			switch rc.Mode {
			case RecoverHeal:
				restored, err = s.healRestoreAttempt(deadPending, target, rc, &rec, tRestore)
			case RecoverShrink:
				restored, err = s.shrinkRestoreAttempt(deadPending, rc, &rec, tRestore)
			default:
				restored, err = s.restoreAttempt(rc.Dir)
			}
			rec.DiskReadsDuringRecovery += s.recoveryDiskReads - diskBefore
			if err != nil {
				rec.TimeLost += time.Since(tRec)
				if terminal := onFailure(err); terminal != nil {
					return Metrics{}, terminal
				}
				continue
			}
			deadPending = nil
			rec.Restores++
			if rc.Mode == RecoverRewind {
				// The shrink and heal paths record their rendezvous-to-ready
				// time themselves, just before their completion barrier.
				rec.RestoreLatency += time.Since(tRestore)
			}
			if step > int(restored) {
				rec.StepsReplayed += step - int(restored)
			}
			step = int(restored)
			rec.TimeLost += time.Since(tRec)
			if !degradedSince.IsZero() && s.Comm.Size() >= target {
				// A heal restored the full world size; plain shrinking stays
				// degraded until the run ends.
				rec.DegradedTime += time.Since(degradedSince)
				degradedSince = time.Time{}
			}
			s.publishRecoveryGauges(&rec, degradedSince)
			s.tel.driver.Span(telemetry.PhaseRestore, step, 0, resStart)
			s.tel.driver.Span(telemetry.PhaseRecovery, step, 0, recStart)
			needRestore = false
		}

		err := s.runAttempt(ctx, steps, rc, &step, &rec)
		if err == nil {
			break
		}
		if errors.Is(err, ErrInterrupted) {
			// Cancellation is not a failure: every rank left the loop at
			// the same step boundary with consistent fields and every
			// checkpoint set committed.
			return Metrics{}, err
		}
		if errors.Is(err, errSilenced) {
			// Injected silent failure: go dark without a trace — the
			// survivors must detect the silence via the failure-detection
			// deadline and shrink around this rank. The spares must stay
			// parked: one of them is this rank's replacement.
			endRun = false
			return Metrics{}, ErrRetired
		}
		if terminal := onFailure(err); terminal != nil {
			return Metrics{}, terminal
		}
		needRestore = true
	}

	if !degradedSince.IsZero() {
		rec.DegradedTime += time.Since(degradedSince)
		degradedSince = time.Time{}
	}
	s.publishRecoveryGauges(&rec, degradedSince)
	wall := time.Since(start)
	m, err := s.gatherMetrics(steps, wall)
	if err != nil {
		return Metrics{}, err
	}
	m.Recovery = rec
	return m, nil
}

// publishRecoveryGauges refreshes the resilience gauges: mean time to
// repair, current world size, and accumulated degraded wall time.
func (s *Simulation) publishRecoveryGauges(rec *RecoveryStats, degradedSince time.Time) {
	if rec.Restores > 0 {
		s.tel.mttrMs.Set(float64(rec.TimeLost.Milliseconds()) / float64(rec.Restores))
	}
	s.tel.worldSize.Set(float64(s.Comm.Size()))
	d := rec.DegradedTime
	if !degradedSince.IsZero() {
		d += time.Since(degradedSince)
	}
	s.tel.degradedMs.Set(float64(d.Milliseconds()))
}

// sleepCtx sleeps for d or until the context is cancelled, whichever
// comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	if ctx == nil || ctx.Done() == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// runAttempt executes steps until completion or the first detected
// failure, converting injected-crash panics into the same typed error the
// communication layer returns, so the driver above treats "this rank
// died" and "a peer died" uniformly.
func (s *Simulation) runAttempt(ctx context.Context, total int, rc ResilienceConfig, step *int, rec *RecoveryStats) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if cr, ok := r.(comm.Crash); ok {
				err = &comm.RankFailedError{Rank: cr.Rank, Cause: "injected crash"}
				return
			}
			if _, ok := r.(comm.Hang); ok {
				err = errSilenced
				return
			}
			var rfe *comm.RankFailedError
			if e, isErr := r.(error); isErr && errors.As(e, &rfe) {
				err = rfe
				return
			}
			panic(r)
		}
	}()
	for *step < total {
		// The cancellation vote sits before this step's protection work,
		// so a cancel that lands while a checkpoint set or replica
		// generation is being produced is only acted on at the next step
		// boundary — after the set committed.
		if stop, verr := s.cancelVote(ctx); verr != nil {
			return verr
		} else if stop {
			return interrupted(ctx)
		}
		// Arm this step's injected crashes and hangs (each fires at most
		// once per spec across replays) before any collective work for
		// the step.
		s.Comm.SetStep(*step)
		if rc.Mode != RecoverRewind && rc.CheckpointEvery > 0 &&
			*step%rc.CheckpointEvery == 0 && s.buddy.lastStep != *step {
			// Produce a buddy-replica generation, including one at step 0
			// so the buddy always holds at least the initial state (and
			// with it the block metadata adoption needs).
			repStart := s.tel.driver.Start()
			if err := s.replicate(*step, rec); err != nil {
				return err
			}
			s.tel.driver.Span(telemetry.PhaseReplicate, *step, 0, repStart)
		}
		if rc.CheckpointEvery > 0 && rc.Dir != "" && *step > 0 && *step%rc.CheckpointEvery == 0 {
			ckStart := s.tel.driver.Start()
			n, err := s.WriteCheckpointSet(rc.Dir, *step)
			if err != nil {
				return err
			}
			if n > 0 {
				rec.CheckpointsWritten++
				rec.CheckpointBytes += n
				s.tel.checkpointBytes.Add(n)
			}
			s.tel.driver.Span(telemetry.PhaseCheckpoint, *step, 0, ckStart)
		}
		if err := s.Step(); err != nil {
			return err
		}
		*step++
	}
	return s.Comm.BarrierErr()
}

// restoreAttempt wraps RestoreLatestCheckpointSet with the same panic
// conversion as runAttempt (a crash can be scheduled to fire during
// recovery traffic too).
func (s *Simulation) restoreAttempt(dir string) (step int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			if cr, ok := r.(comm.Crash); ok {
				err = &comm.RankFailedError{Rank: cr.Rank, Cause: "injected crash"}
				return
			}
			var rfe *comm.RankFailedError
			if e, isErr := r.(error); isErr && errors.As(e, &rfe) {
				err = rfe
				return
			}
			panic(r)
		}
	}()
	return s.RestoreLatestCheckpointSet(dir)
}
