//go:build race

package sim

// raceEnabled reports whether the binary was built with the race
// detector, whose instrumentation inserts heap allocations that make
// testing.AllocsPerRun meaningless.
const raceEnabled = true
