package sim

import (
	"fmt"
	"time"

	"walberla/internal/comm"
)

// Metrics summarizes a measured run, globally reduced over all ranks.
// MLUPS counts every traversed lattice cell, MFLUPS only fluid cells that
// the kernels actually update (the paper's two performance measures).
type Metrics struct {
	Steps int
	Ranks int

	TotalCells      int64
	TotalFluidCells int64

	// WallTime is the maximum wall clock time over ranks.
	WallTime time.Duration
	// CommFraction is the fraction of total rank time spent in ghost
	// layer communication (the dotted "%MPI" curves of Figure 6).
	CommFraction float64

	MLUPS  float64
	MFLUPS float64

	// Recovery accounts fault-tolerance activity during a resilient run
	// (zero for plain Run).
	Recovery RecoveryStats
}

// RecoveryStats summarizes the fault-tolerance side of a resilient run on
// this rank: failures observed, checkpoint traffic, and the work redone
// because of rewinds.
type RecoveryStats struct {
	// FailuresDetected counts rank-failure events this rank observed.
	FailuresDetected int
	// Restores counts successful rewinds to a checkpoint set (or to the
	// initial state when no valid set existed).
	Restores int
	// StepsReplayed is the total number of time steps re-executed after
	// rewinds.
	StepsReplayed int
	// CheckpointsWritten counts the checkpoint sets this rank contributed
	// to; CheckpointBytes is this rank's bytes written into them.
	CheckpointsWritten int
	CheckpointBytes    int64
	// TimeLost is the wall time this rank spent in recovery (backoff,
	// rendezvous and state restore), excluding replayed steps.
	TimeLost time.Duration
	// RestoreLatency is the state-restore part of TimeLost alone — from
	// the end of the recovery rendezvous to the simulation being ready to
	// step again. This is the buddy-vs-disk comparison the resilience
	// benchmark reports.
	RestoreLatency time.Duration

	// Buddy replication and shrinking recovery (RecoverShrink).

	// Replications counts the buddy-replica generations this rank
	// produced; ReplicaBytes is their serialized payload volume.
	Replications int
	ReplicaBytes int64
	// BuddyRestores counts recoveries satisfied entirely from in-memory
	// replicas; DiskRestores counts shrink recoveries that had to fall
	// back to a disk checkpoint set.
	BuddyRestores int
	DiskRestores  int
	// Shrinks counts world-shrink events this rank survived;
	// BlocksAdopted is the number of dead ranks' blocks this rank
	// re-owned.
	Shrinks       int
	BlocksAdopted int
	// DiskReadsDuringRecovery counts filesystem reads (directory scans and
	// file opens) performed while restoring state after a failure — zero
	// on the pure buddy path.
	DiskReadsDuringRecovery int

	// Healing recovery (RecoverHeal).

	// Heals counts world-heal events this rank took part in — as a
	// survivor, a supplier or a recruited spare.
	Heals int
	// DegradedTime is the wall time this rank observed the world below
	// its full size: from a failure detection until a heal restored the
	// target world size (or until the run ended, under plain shrinking).
	DegradedTime time.Duration
}

// OverlapTimes is this rank's accumulated split-phase step breakdown: the
// exchange post (pack, send, local copies), the interior sweeps that run
// while remote data is in flight, the residual wait for remote slabs plus
// their unpack, and the frontier sweeps that needed the remote data. Wait
// is the part of the communication the overlap could not hide.
type OverlapTimes struct {
	Post     time.Duration
	Interior time.Duration
	Wait     time.Duration
	Frontier time.Duration
}

func (o OverlapTimes) String() string {
	return fmt.Sprintf("post=%v interior=%v wait=%v frontier=%v",
		o.Post, o.Interior, o.Wait, o.Frontier)
}

// MLUPSPerCore and MFLUPSPerCore report per-rank (per-core) values — the
// parallel-efficiency measure used in the scaling figures.
func (m Metrics) MLUPSPerCore() float64 { return m.MLUPS / float64(m.Ranks) }

// MFLUPSPerCore reports fluid cell updates per second per rank.
func (m Metrics) MFLUPSPerCore() float64 { return m.MFLUPS / float64(m.Ranks) }

// FluidFraction is the global fluid cell fraction.
func (m Metrics) FluidFraction() float64 {
	if m.TotalCells == 0 {
		return 0
	}
	return float64(m.TotalFluidCells) / float64(m.TotalCells)
}

// TimeStepsPerSecond is the sustained time stepping rate.
func (m Metrics) TimeStepsPerSecond() float64 {
	if m.WallTime <= 0 {
		return 0
	}
	return float64(m.Steps) / m.WallTime.Seconds()
}

func (m Metrics) String() string {
	return fmt.Sprintf("steps=%d ranks=%d cells=%d fluid=%d (%.1f%%) wall=%v MLUPS=%.2f MFLUPS=%.2f comm=%.1f%%",
		m.Steps, m.Ranks, m.TotalCells, m.TotalFluidCells, 100*m.FluidFraction(),
		m.WallTime, m.MLUPS, m.MFLUPS, 100*m.CommFraction)
}

// gatherMetrics reduces the per-rank timings into global metrics; it
// returns a typed *comm.RankFailedError when a peer dies during the
// reduction.
func (s *Simulation) gatherMetrics(steps int, wall time.Duration) (Metrics, error) {
	s.publishGauges()
	c := s.Comm
	totalCells, err := c.AllreduceInt64Err(s.LocalCells(), comm.Sum[int64])
	if err != nil {
		return Metrics{}, err
	}
	totalFluid, err := c.AllreduceInt64Err(s.LocalFluidCells(), comm.Sum[int64])
	if err != nil {
		return Metrics{}, err
	}
	maxWallI, err := c.AllreduceInt64Err(int64(wall), comm.Max[int64])
	if err != nil {
		return Metrics{}, err
	}
	maxWall := time.Duration(maxWallI)
	sumWall, err := c.AllreduceFloat64Err(wall.Seconds(), comm.Sum[float64])
	if err != nil {
		return Metrics{}, err
	}
	sumComm, err := c.AllreduceFloat64Err(s.commTime.Seconds(), comm.Sum[float64])
	if err != nil {
		return Metrics{}, err
	}

	m := Metrics{
		Steps:           steps,
		Ranks:           c.Size(),
		TotalCells:      totalCells,
		TotalFluidCells: totalFluid,
		WallTime:        maxWall,
	}
	if sumWall > 0 {
		m.CommFraction = sumComm / sumWall
	}
	if maxWall > 0 {
		m.MLUPS = float64(totalCells) * float64(steps) / maxWall.Seconds() / 1e6
		m.MFLUPS = float64(totalFluid) * float64(steps) / maxWall.Seconds() / 1e6
	}
	return m, nil
}

// ExchangeStats describes this rank's ghost-exchange communication
// pattern under the current plan — the quantities the message-aggregation
// benchmark compares between wire formats.
type ExchangeStats struct {
	Mode ExchangeMode
	// NeighborRanks is the number of distinct remote ranks this rank
	// exchanges ghost data with.
	NeighborRanks int
	// MessagesPerStep is the number of point-to-point sends this rank
	// issues per time step: NeighborRanks in aggregated mode, RemoteSlabs
	// in per-pair mode.
	MessagesPerStep int
	// RemoteSlabs counts the boundary slabs crossing a rank border.
	RemoteSlabs int
	// LocalCopies counts the same-rank block-to-block ghost copies.
	LocalCopies int
	// SendFloats and RecvFloats are this rank's per-step payload volumes
	// in float64 values (identical in both modes: aggregation batches
	// messages, it never changes the communicated data).
	SendFloats int
	RecvFloats int
}

// ExchangeStats reports the communication pattern of the current exchange
// plan.
func (s *Simulation) ExchangeStats() ExchangeStats {
	st := ExchangeStats{Mode: s.Config.Exchange}
	if s.Config.Exchange == ExchangePerPair {
		ranks := make(map[int]bool)
		for i := range s.plan {
			op := &s.plan[i]
			if !op.remote {
				st.LocalCopies++
				continue
			}
			ranks[op.rank] = true
			st.RemoteSlabs++
			st.SendFloats += len(op.sendDirs) * op.src.cells()
			st.RecvFloats += len(op.recvDirs) * op.dst.cells()
		}
		st.NeighborRanks = len(ranks)
		st.MessagesPerStep = st.RemoteSlabs
		return st
	}
	st.NeighborRanks = len(s.channels)
	st.MessagesPerStep = len(s.channels)
	st.LocalCopies = len(s.locals)
	for i := range s.channels {
		ch := &s.channels[i]
		st.RemoteSlabs += len(ch.send)
		st.SendFloats += ch.sendFloats
		st.RecvFloats += ch.recvFloats
	}
	return st
}

// PhaseTimes returns this rank's accumulated phase timers since the last
// reset. Communication time is wall clock on the rank's driving
// goroutine (exchange post + residual wait); compute and boundary time
// aggregate the per-block sweep times across all workers, reduced in
// deterministic block order.
func (s *Simulation) PhaseTimes() (compute, communication, boundaryTime time.Duration) {
	return s.computeTime, s.commTime, s.boundaryTime
}

// Overlap returns this rank's accumulated split-phase breakdown of the
// time loop since the last reset.
func (s *Simulation) Overlap() OverlapTimes { return s.overlap }
