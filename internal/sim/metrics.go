package sim

import (
	"fmt"
	"time"

	"walberla/internal/comm"
)

// Metrics summarizes a measured run, globally reduced over all ranks.
// MLUPS counts every traversed lattice cell, MFLUPS only fluid cells that
// the kernels actually update (the paper's two performance measures).
type Metrics struct {
	Steps int
	Ranks int

	TotalCells      int64
	TotalFluidCells int64

	// WallTime is the maximum wall clock time over ranks.
	WallTime time.Duration
	// CommFraction is the fraction of total rank time spent in ghost
	// layer communication (the dotted "%MPI" curves of Figure 6).
	CommFraction float64

	MLUPS  float64
	MFLUPS float64
}

// MLUPSPerCore and MFLUPSPerCore report per-rank (per-core) values — the
// parallel-efficiency measure used in the scaling figures.
func (m Metrics) MLUPSPerCore() float64 { return m.MLUPS / float64(m.Ranks) }

// MFLUPSPerCore reports fluid cell updates per second per rank.
func (m Metrics) MFLUPSPerCore() float64 { return m.MFLUPS / float64(m.Ranks) }

// FluidFraction is the global fluid cell fraction.
func (m Metrics) FluidFraction() float64 {
	if m.TotalCells == 0 {
		return 0
	}
	return float64(m.TotalFluidCells) / float64(m.TotalCells)
}

// TimeStepsPerSecond is the sustained time stepping rate.
func (m Metrics) TimeStepsPerSecond() float64 {
	if m.WallTime <= 0 {
		return 0
	}
	return float64(m.Steps) / m.WallTime.Seconds()
}

func (m Metrics) String() string {
	return fmt.Sprintf("steps=%d ranks=%d cells=%d fluid=%d (%.1f%%) wall=%v MLUPS=%.2f MFLUPS=%.2f comm=%.1f%%",
		m.Steps, m.Ranks, m.TotalCells, m.TotalFluidCells, 100*m.FluidFraction(),
		m.WallTime, m.MLUPS, m.MFLUPS, 100*m.CommFraction)
}

// gatherMetrics reduces the per-rank timings into global metrics.
func (s *Simulation) gatherMetrics(steps int, wall time.Duration) Metrics {
	c := s.Comm
	totalCells := c.AllreduceInt64(s.LocalCells(), comm.Sum[int64])
	totalFluid := c.AllreduceInt64(s.LocalFluidCells(), comm.Sum[int64])
	maxWall := time.Duration(c.AllreduceInt64(int64(wall), comm.Max[int64]))
	sumWall := c.AllreduceFloat64(wall.Seconds(), comm.Sum[float64])
	sumComm := c.AllreduceFloat64(s.commTime.Seconds(), comm.Sum[float64])

	m := Metrics{
		Steps:           steps,
		Ranks:           c.Size(),
		TotalCells:      totalCells,
		TotalFluidCells: totalFluid,
		WallTime:        maxWall,
	}
	if sumWall > 0 {
		m.CommFraction = sumComm / sumWall
	}
	if maxWall > 0 {
		m.MLUPS = float64(totalCells) * float64(steps) / maxWall.Seconds() / 1e6
		m.MFLUPS = float64(totalFluid) * float64(steps) / maxWall.Seconds() / 1e6
	}
	return m
}

// PhaseTimes returns this rank's accumulated phase timers (compute,
// communication, boundary) since the last reset.
func (s *Simulation) PhaseTimes() (compute, communication, boundaryTime time.Duration) {
	return s.computeTime, s.commTime, s.boundaryTime
}
