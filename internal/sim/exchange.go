package sim

import (
	"fmt"

	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/lattice"
)

// Ghost layer exchange. For every pair of neighboring blocks only the PDFs
// that actually stream across the shared boundary are communicated: five
// directions per face and one per edge for D3Q19 (corner offsets carry no
// D3Q19 PDFs and are skipped entirely) — waLBerla's reduced-message
// optimization. Blocks on the same rank copy directly ("fast local
// communication"); remote blocks exchange messages tagged by the receiving
// block and the boundary direction.
//
// The exchange is split-phase so the time loop can overlap it with
// computation: postExchange packs and sends all boundary slabs (pack and
// local copies run on the worker pool) and posts the remote receives;
// completeExchange waits for the remote slabs and unpacks them. Interior
// sweeps run between the two halves while remote data is in flight.

// offsetIndex maps an offset in {-1,0,1}^3 to 0..26.
func offsetIndex(o [3]int) int {
	return (o[0] + 1) + 3*(o[1]+1) + 9*(o[2]+1)
}

// commDirections returns the stencil directions whose velocity crosses a
// block boundary with the given offset: every non-zero offset axis must
// match the velocity component.
func commDirections(st *lattice.Stencil, o [3]int) []lattice.Direction {
	var dirs []lattice.Direction
	for a := 0; a < st.Q; a++ {
		if st.Cx[a] == 0 && st.Cy[a] == 0 && st.Cz[a] == 0 {
			continue
		}
		if (o[0] != 0 && st.Cx[a] != o[0]) ||
			(o[1] != 0 && st.Cy[a] != o[1]) ||
			(o[2] != 0 && st.Cz[a] != o[2]) {
			continue
		}
		dirs = append(dirs, lattice.Direction(a))
	}
	return dirs
}

// region is a half-open box of cell coordinates.
type region struct {
	lo, hi [3]int
}

func (r region) cells() int {
	return (r.hi[0] - r.lo[0]) * (r.hi[1] - r.lo[1]) * (r.hi[2] - r.lo[2])
}

// sendRegion is the interior slab packed for a neighbor at offset o.
func sendRegion(cells [3]int, o [3]int) region {
	var r region
	for d := 0; d < 3; d++ {
		switch o[d] {
		case 1:
			r.lo[d], r.hi[d] = cells[d]-1, cells[d]
		case -1:
			r.lo[d], r.hi[d] = 0, 1
		default:
			r.lo[d], r.hi[d] = 0, cells[d]
		}
	}
	return r
}

// recvRegion is the ghost slab filled from the neighbor at offset o.
func recvRegion(cells [3]int, o [3]int) region {
	var r region
	for d := 0; d < 3; d++ {
		switch o[d] {
		case 1:
			r.lo[d], r.hi[d] = cells[d], cells[d]+1
		case -1:
			r.lo[d], r.hi[d] = -1, 0
		default:
			r.lo[d], r.hi[d] = 0, cells[d]
		}
	}
	return r
}

// exchangeOp is one precomputed boundary exchange of a local block.
type exchangeOp struct {
	bd       *BlockData
	offset   [3]int // toward the neighbor
	sendDirs []lattice.Direction
	recvDirs []lattice.Direction
	src      region // interior slab to pack
	dst      region // ghost slab to unpack
	remote   bool
	rank     int        // neighbor rank if remote
	peer     *BlockData // neighbor block if local
	sendTag  int        // tag on the neighbor's side for our data
	recvTag  int        // tag identifying data arriving for this op
	buf      []float64  // per-step pack/unpack scratch
}

// recvOp pairs a posted remote receive with its unpack destination.
type recvOp struct {
	op  *exchangeOp
	req *comm.RecvRequest
}

// tagFor builds the message tag for (receiving block, boundary offset of
// the receiver). User tags must be non-negative.
func tagFor(tree uint32, offIdx int) int { return int(tree)*27 + offIdx }

// buildExchangePlan enumerates, for each local block, the boundary
// exchanges with all its neighbors.
func buildExchangePlan(s *Simulation) []exchangeOp {
	var plan []exchangeOp
	for _, bd := range s.Blocks {
		cells := bd.Block.Cells
		for _, n := range bd.Block.Neighbors {
			o := n.Offset
			sendDirs := commDirections(s.Stencil, o)
			if len(sendDirs) == 0 {
				continue // corner offsets carry no D3Q19 PDFs
			}
			ro := [3]int{-o[0], -o[1], -o[2]}
			op := exchangeOp{
				bd:       bd,
				offset:   o,
				sendDirs: sendDirs,
				recvDirs: commDirections(s.Stencil, ro),
				src:      sendRegion(cells, o),
				dst:      recvRegion(cells, o),
				sendTag:  tagFor(n.ID.Tree, offsetIndex(ro)),
				recvTag:  tagFor(bd.Block.ID.Tree, offsetIndex(o)),
			}
			if n.Rank == s.Comm.Rank() {
				peer, ok := s.byCoord[n.Coord]
				if !ok {
					panic(fmt.Sprintf("sim: local neighbor %v missing", n.Coord))
				}
				op.peer = peer
			} else {
				op.remote = true
				op.rank = n.Rank
			}
			plan = append(plan, op)
		}
	}
	return plan
}

// pack serializes the PDFs of the given directions over the region in
// deterministic (dir-major, then z, y, x) order.
func pack(f *field.PDFField, r region, dirs []lattice.Direction) []float64 {
	buf := make([]float64, 0, len(dirs)*r.cells())
	for _, d := range dirs {
		for z := r.lo[2]; z < r.hi[2]; z++ {
			for y := r.lo[1]; y < r.hi[1]; y++ {
				for x := r.lo[0]; x < r.hi[0]; x++ {
					buf = append(buf, f.Get(x, y, z, d))
				}
			}
		}
	}
	return buf
}

// unpack reverses pack into the region.
func unpack(f *field.PDFField, r region, dirs []lattice.Direction, buf []float64) {
	i := 0
	for _, d := range dirs {
		for z := r.lo[2]; z < r.hi[2]; z++ {
			for y := r.lo[1]; y < r.hi[1]; y++ {
				for x := r.lo[0]; x < r.hi[0]; x++ {
					f.Set(x, y, z, d, buf[i])
					i++
				}
			}
		}
	}
	if i != len(buf) {
		panic(fmt.Sprintf("sim: unpacked %d of %d values", i, len(buf)))
	}
}

// postExchange starts one ghost layer synchronization of the Src fields:
// all boundary slabs are packed on the worker pool (same-rank copies land
// in the peer's ghost region immediately — "fast local communication"),
// the remote slabs are sent (eager, so this cannot deadlock), and one
// receive per remote op is posted. Interior blocks may be swept between
// postExchange and completeExchange; the packed slabs were taken before
// any sweep, so the overlap is bit-identical to a fully synchronous
// exchange.
//
// The parallel pack/copy phase is race-free by region disjointness: packs
// read interior slabs, copies write ghost slabs, and two copies into the
// same block target different offsets, hence disjoint ghost slabs.
func (s *Simulation) postExchange() error {
	s.pool.run(len(s.plan), func(i int) {
		op := &s.plan[i]
		op.buf = pack(op.bd.Src, op.src, op.sendDirs)
		if op.peer != nil {
			// Local copy: our slab lands in the peer's ghost region on the
			// opposite side.
			peerDst := recvRegion(op.peer.Block.Cells, [3]int{-op.offset[0], -op.offset[1], -op.offset[2]})
			unpack(op.peer.Src, peerDst, op.sendDirs, op.buf)
			op.buf = nil
		}
	})
	for i := range s.plan {
		op := &s.plan[i]
		if !op.remote {
			continue
		}
		buf := op.buf
		op.buf = nil
		if err := s.Comm.SendErr(op.rank, op.sendTag, buf); err != nil {
			return err
		}
	}
	s.pending = s.pending[:0]
	for i := range s.plan {
		op := &s.plan[i]
		if op.remote {
			s.pending = append(s.pending, recvOp{op: op, req: s.Comm.Irecv(op.rank, op.recvTag)})
		}
	}
	return nil
}

// completeExchange finishes the synchronization started by postExchange:
// it waits for every posted receive and unpacks the slabs into the
// frontier blocks' ghost layers on the worker pool. A typed
// *comm.RankFailedError is returned when a peer has been declared dead
// mid-exchange instead of deadlocking or panicking.
func (s *Simulation) completeExchange() error {
	for i := range s.pending {
		p := &s.pending[i]
		buf, _, err := p.req.WaitFloat64s()
		if err != nil {
			return err
		}
		p.op.buf = buf
	}
	s.pool.run(len(s.pending), func(i int) {
		op := s.pending[i].op
		unpack(op.bd.Src, op.dst, op.recvDirs, op.buf)
		op.buf = nil
	})
	s.pending = s.pending[:0]
	return nil
}

// exchangeGhostLayers performs one full, non-overlapped ghost layer
// synchronization (post immediately followed by complete) — used outside
// the time loop, e.g. after block migration.
func (s *Simulation) exchangeGhostLayers() error {
	if err := s.postExchange(); err != nil {
		return err
	}
	return s.completeExchange()
}
