package sim

import (
	"fmt"
	"sync"

	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/lattice"
)

// Ghost layer exchange. For every pair of neighboring blocks only the PDFs
// that actually stream across the shared boundary are communicated: five
// directions per face and one per edge for D3Q19 (corner offsets carry no
// D3Q19 PDFs and are skipped entirely) — waLBerla's reduced-message
// optimization. Blocks on the same rank copy directly ("fast local
// communication"); remote blocks exchange messages.
//
// The exchange is split-phase so the time loop can overlap it with
// computation: postExchange packs and sends all boundary slabs (pack and
// local copies run on the worker pool) and posts the remote receives;
// completeExchange waits for the remote slabs and unpacks them. Interior
// sweeps run between the two halves while remote data is in flight.
//
// Two wire formats exist, selected by Config.Exchange and bit-identical
// to each other (see docs/EXCHANGE.md):
//
//   - ExchangeAggregated (default, aggregate.go): all slabs bound for the
//     same neighbor rank travel in ONE message per step, packed by a
//     fixed manifest into persistent double-buffered aggregate buffers —
//     O(neighbor ranks) messages per step and zero steady-state heap
//     allocations.
//   - ExchangePerPair (this file): the legacy one-message-per-block-pair
//     path with per-step pack buffers, kept for comparison benchmarks and
//     cross-validation tests.

// ExchangeMode selects the ghost exchange wire format.
type ExchangeMode int

const (
	// ExchangeAggregated sends one aggregated message per neighbor rank
	// per step from persistent pooled buffers (the default).
	ExchangeAggregated ExchangeMode = iota
	// ExchangePerPair sends one message per neighboring block pair per
	// step, allocating a fresh pack buffer per message — the
	// pre-aggregation wire format.
	ExchangePerPair
)

func (m ExchangeMode) String() string {
	switch m {
	case ExchangeAggregated:
		return "aggregated"
	case ExchangePerPair:
		return "per-pair"
	}
	return fmt.Sprintf("ExchangeMode(%d)", int(m))
}

// offsetIndex maps an offset in {-1,0,1}^3 to 0..26.
func offsetIndex(o [3]int) int {
	return (o[0] + 1) + 3*(o[1]+1) + 9*(o[2]+1)
}

// commTables caches, per stencil, the offset→crossing-directions table:
// entry offsetIndex(o) lists the stencil directions whose velocity crosses
// a block boundary with offset o. Computed once per stencil and shared by
// every plan build and test — callers must not mutate the slices.
var commTables sync.Map // *lattice.Stencil -> *[27][]lattice.Direction

func commTable(st *lattice.Stencil) *[27][]lattice.Direction {
	if t, ok := commTables.Load(st); ok {
		return t.(*[27][]lattice.Direction)
	}
	var t [27][]lattice.Direction
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				o := [3]int{dx, dy, dz}
				if o == [3]int{} {
					continue
				}
				var dirs []lattice.Direction
				for a := 0; a < st.Q; a++ {
					if st.Cx[a] == 0 && st.Cy[a] == 0 && st.Cz[a] == 0 {
						continue
					}
					if (o[0] != 0 && st.Cx[a] != o[0]) ||
						(o[1] != 0 && st.Cy[a] != o[1]) ||
						(o[2] != 0 && st.Cz[a] != o[2]) {
						continue
					}
					dirs = append(dirs, lattice.Direction(a))
				}
				t[offsetIndex(o)] = dirs
			}
		}
	}
	actual, _ := commTables.LoadOrStore(st, &t)
	return actual.(*[27][]lattice.Direction)
}

// commDirections returns the stencil directions whose velocity crosses a
// block boundary with the given offset: every non-zero offset axis must
// match the velocity component. The result is a shared precomputed table
// entry; callers must not modify it.
func commDirections(st *lattice.Stencil, o [3]int) []lattice.Direction {
	return commTable(st)[offsetIndex(o)]
}

// region is a half-open box of cell coordinates.
type region struct {
	lo, hi [3]int
}

func (r region) cells() int {
	return (r.hi[0] - r.lo[0]) * (r.hi[1] - r.lo[1]) * (r.hi[2] - r.lo[2])
}

// sendRegion is the interior slab packed for a neighbor at offset o.
func sendRegion(cells [3]int, o [3]int) region {
	var r region
	for d := 0; d < 3; d++ {
		switch o[d] {
		case 1:
			r.lo[d], r.hi[d] = cells[d]-1, cells[d]
		case -1:
			r.lo[d], r.hi[d] = 0, 1
		default:
			r.lo[d], r.hi[d] = 0, cells[d]
		}
	}
	return r
}

// recvRegion is the ghost slab filled from the neighbor at offset o.
func recvRegion(cells [3]int, o [3]int) region {
	var r region
	for d := 0; d < 3; d++ {
		switch o[d] {
		case 1:
			r.lo[d], r.hi[d] = cells[d], cells[d]+1
		case -1:
			r.lo[d], r.hi[d] = -1, 0
		default:
			r.lo[d], r.hi[d] = 0, cells[d]
		}
	}
	return r
}

// postExchange starts one ghost layer synchronization of the Src fields in
// the configured wire format; completeExchange finishes it. Interior
// blocks may be swept between the two halves; the packed slabs are taken
// before any sweep, so the overlap is bit-identical to a fully synchronous
// exchange.
func (s *Simulation) postExchange() error {
	if s.Config.Exchange == ExchangePerPair {
		return s.postExchangePairs()
	}
	return s.postExchangeAggregated()
}

// completeExchange finishes the synchronization started by postExchange.
// A typed *comm.RankFailedError is returned when a peer has been declared
// dead mid-exchange instead of deadlocking or panicking.
func (s *Simulation) completeExchange() error {
	if s.Config.Exchange == ExchangePerPair {
		return s.completeExchangePairs()
	}
	return s.completeExchangeAggregated()
}

// exchangeGhostLayers performs one full, non-overlapped ghost layer
// synchronization (post immediately followed by complete) — used outside
// the time loop, e.g. after block migration.
func (s *Simulation) exchangeGhostLayers() error {
	if err := s.postExchange(); err != nil {
		return err
	}
	return s.completeExchange()
}

// ---------------------------------------------------------------------
// Legacy per-block-pair wire format (ExchangePerPair).

// exchangeOp is one precomputed boundary exchange of a local block.
type exchangeOp struct {
	bd       *BlockData
	offset   [3]int // toward the neighbor
	sendDirs []lattice.Direction
	recvDirs []lattice.Direction
	src      region // interior slab to pack
	dst      region // ghost slab to unpack
	remote   bool
	rank     int        // neighbor rank if remote
	peer     *BlockData // neighbor block if local
	sendTag  int        // tag on the neighbor's side for our data
	recvTag  int        // tag identifying data arriving for this op
	buf      []float64  // per-step pack/unpack scratch
}

// recvOp pairs a posted remote receive with its unpack destination.
type recvOp struct {
	op  *exchangeOp
	req *comm.RecvRequest
}

// tagFor builds the message tag for (receiving block, boundary offset of
// the receiver). User tags must be non-negative.
func tagFor(tree uint32, offIdx int) int { return int(tree)*27 + offIdx }

// buildExchangePlan enumerates, for each local block, the boundary
// exchanges with all its neighbors.
func buildExchangePlan(s *Simulation) []exchangeOp {
	var plan []exchangeOp
	for _, bd := range s.Blocks {
		cells := bd.Block.Cells
		for _, n := range bd.Block.Neighbors {
			o := n.Offset
			sendDirs := commDirections(s.Stencil, o)
			if len(sendDirs) == 0 {
				continue // corner offsets carry no D3Q19 PDFs
			}
			ro := [3]int{-o[0], -o[1], -o[2]}
			op := exchangeOp{
				bd:       bd,
				offset:   o,
				sendDirs: sendDirs,
				recvDirs: commDirections(s.Stencil, ro),
				src:      sendRegion(cells, o),
				dst:      recvRegion(cells, o),
				sendTag:  tagFor(n.ID.Tree, offsetIndex(ro)),
				recvTag:  tagFor(bd.Block.ID.Tree, offsetIndex(o)),
			}
			if n.Rank == s.Comm.Rank() {
				peer, ok := s.byCoord[n.Coord]
				if !ok {
					panic(fmt.Sprintf("sim: local neighbor %v missing", n.Coord))
				}
				op.peer = peer
			} else {
				op.remote = true
				op.rank = n.Rank
			}
			plan = append(plan, op)
		}
	}
	return plan
}

// pack serializes the PDFs of the given directions over the region in
// deterministic (dir-major, then z, y, x) order.
func pack(f *field.PDFField, r region, dirs []lattice.Direction) []float64 {
	buf := make([]float64, len(dirs)*r.cells())
	f.PackRegion(buf, r.lo, r.hi, dirs)
	return buf
}

// unpack reverses pack into the region.
func unpack(f *field.PDFField, r region, dirs []lattice.Direction, buf []float64) {
	if n := f.UnpackRegion(buf, r.lo, r.hi, dirs); n != len(buf) {
		panic(fmt.Sprintf("sim: unpacked %d of %d values", n, len(buf)))
	}
}

// postExchangePairs starts one per-block-pair ghost layer synchronization:
// all boundary slabs are packed on the worker pool (same-rank copies land
// in the peer's ghost region immediately — "fast local communication"),
// the remote slabs are sent (eager, so this cannot deadlock), and one
// receive per remote op is posted.
//
// The parallel pack/copy phase is race-free by region disjointness: packs
// read interior slabs, copies write ghost slabs, and two copies into the
// same block target different offsets, hence disjoint ghost slabs.
func (s *Simulation) postExchangePairs() error {
	s.pool.run(len(s.plan), func(_, i int) {
		op := &s.plan[i]
		op.buf = pack(op.bd.Src, op.src, op.sendDirs)
		if op.peer != nil {
			// Local copy: our slab lands in the peer's ghost region on the
			// opposite side.
			peerDst := recvRegion(op.peer.Block.Cells, [3]int{-op.offset[0], -op.offset[1], -op.offset[2]})
			unpack(op.peer.Src, peerDst, op.sendDirs, op.buf)
			op.buf = nil
		}
	})
	for i := range s.plan {
		op := &s.plan[i]
		if !op.remote {
			continue
		}
		buf := op.buf
		op.buf = nil
		if err := s.Comm.SendFloat64s(op.rank, op.sendTag, buf); err != nil {
			return err
		}
	}
	s.pending = s.pending[:0]
	for i := range s.plan {
		op := &s.plan[i]
		if op.remote {
			s.pending = append(s.pending, recvOp{op: op, req: s.Comm.Irecv(op.rank, op.recvTag)})
		}
	}
	return nil
}

// completeExchangePairs waits for every posted per-pair receive and
// unpacks the slabs into the frontier blocks' ghost layers on the worker
// pool.
func (s *Simulation) completeExchangePairs() error {
	for i := range s.pending {
		p := &s.pending[i]
		buf, _, err := p.req.WaitFloat64s()
		if err != nil {
			return err
		}
		p.op.buf = buf
	}
	s.pool.run(len(s.pending), func(_, i int) {
		op := s.pending[i].op
		unpack(op.bd.Src, op.dst, op.recvDirs, op.buf)
		op.buf = nil
	})
	s.pending = s.pending[:0]
	return nil
}
