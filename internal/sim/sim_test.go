package sim

import (
	"math"
	"sync"
	"testing"

	"walberla/internal/blockforest"
	"walberla/internal/boundary"
	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/lattice"
)

// runRanks is a thin alias keeping the SPMD test bodies compact.
func runRanks(t *testing.T, ranks int, f func(c *comm.Comm)) {
	t.Helper()
	comm.Run(ranks, f)
}

// mustRun advances the simulation, failing the test on any rank error.
func mustRun(t *testing.T, s *Simulation, steps int) Metrics {
	t.Helper()
	m, err := s.Run(steps)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// forestFor hands the setup forest to rank 0 only, matching the
// single-reader broadcast protocol of blockforest.Distribute.
func forestFor(rank int, f *blockforest.SetupForest) *blockforest.SetupForest {
	if rank == 0 {
		return f
	}
	return nil
}

// cavityFlags marks a lid-driven cavity: all walls no-slip, the +z lid a
// moving (velocity) wall.
func cavityFlags(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
	flags.Fill(field.Fluid)
	for f := lattice.FaceW; f < lattice.NumFaces; f++ {
		nx, ny, nz := f.Normal()
		if b.Neighbor([3]int{nx, ny, nz}) != nil {
			continue
		}
		MarkGhostFace(flags, f, field.NoSlip)
	}
	if b.Neighbor([3]int{0, 0, 1}) == nil {
		MarkGhostFace(flags, lattice.FaceT, field.VelocityBounce)
	}
}

// runCavity runs the lid-driven cavity on the given decomposition and
// returns the global x-velocity field keyed by global cell coordinate.
func runCavity(t *testing.T, ranks int, grid, cellsPerBlock [3]int, steps int, kernel KernelChoice) map[[3]int]float64 {
	t.Helper()
	domain := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
	f := blockforest.NewSetupForest(domain, grid, cellsPerBlock, [3]bool{})
	f.BalanceMorton(ranks)

	var mu sync.Mutex
	result := make(map[[3]int]float64)

	runRanks(t, ranks, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), f))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, Config{
			Kernel:     kernel,
			Tau:        0.8,
			Boundary:   boundary.Config{WallVelocity: [3]float64{0.05, 0, 0}},
			SetupFlags: cavityFlags,
		})
		if err != nil {
			t.Error(err)
			return
		}
		mustRun(t, s, steps)
		mu.Lock()
		defer mu.Unlock()
		for _, bd := range s.Blocks {
			base := [3]int{
				bd.Block.Coord[0] * cellsPerBlock[0],
				bd.Block.Coord[1] * cellsPerBlock[1],
				bd.Block.Coord[2] * cellsPerBlock[2],
			}
			for z := 0; z < cellsPerBlock[2]; z++ {
				for y := 0; y < cellsPerBlock[1]; y++ {
					for x := 0; x < cellsPerBlock[0]; x++ {
						_, ux, _, _ := bd.Src.Moments(x, y, z)
						result[[3]int{base[0] + x, base[1] + y, base[2] + z}] = ux
					}
				}
			}
		}
	})
	return result
}

// The physics must be independent of the domain decomposition: the same
// global grid split over different block counts and rank counts yields the
// same solution (the fundamental correctness property of the distributed
// ghost layer exchange).
func TestDecompositionInvariance(t *testing.T) {
	const steps = 40
	ref := runCavity(t, 1, [3]int{1, 1, 1}, [3]int{8, 8, 8}, steps, KernelSplitTRT)
	cases := []struct {
		ranks int
		grid  [3]int
		cells [3]int
	}{
		{2, [3]int{2, 1, 1}, [3]int{4, 8, 8}},
		{4, [3]int{2, 2, 1}, [3]int{4, 4, 8}},
		{8, [3]int{2, 2, 2}, [3]int{4, 4, 4}},
		{3, [3]int{2, 2, 2}, [3]int{4, 4, 4}}, // multiple blocks per rank
	}
	for _, tc := range cases {
		got := runCavity(t, tc.ranks, tc.grid, tc.cells, steps, KernelSplitTRT)
		if len(got) != len(ref) {
			t.Fatalf("ranks=%d: %d cells, want %d", tc.ranks, len(got), len(ref))
		}
		var maxDiff float64
		for k, v := range ref {
			if d := math.Abs(got[k] - v); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 1e-13 {
			t.Errorf("ranks=%d grid=%v: max deviation %g from single-block run", tc.ranks, tc.grid, maxDiff)
		}
	}
}

// Different kernels must produce the same distributed physics.
func TestKernelChoiceInvariance(t *testing.T) {
	const steps = 20
	ref := runCavity(t, 4, [3]int{2, 2, 1}, [3]int{4, 4, 8}, steps, KernelGenericTRT)
	for _, k := range []KernelChoice{KernelD3Q19TRT, KernelSplitTRT} {
		got := runCavity(t, 4, [3]int{2, 2, 1}, [3]int{4, 4, 8}, steps, k)
		var maxDiff float64
		for key, v := range ref {
			if d := math.Abs(got[key] - v); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 1e-12 {
			t.Errorf("%s deviates %g from generic kernel", k, maxDiff)
		}
	}
}

// A fully periodic domain with uniform equilibrium flow must stay exactly
// uniform while being advected — the exchange must preserve it.
func TestPeriodicUniformFlowInvariant(t *testing.T) {
	domain := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
	f := blockforest.NewSetupForest(domain, [3]int{2, 2, 1}, [3]int{4, 4, 4}, [3]bool{true, true, true})
	const ranks = 4
	f.BalanceMorton(ranks)
	runRanks(t, ranks, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), f))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, Config{
			Kernel:          KernelSplitTRT,
			InitialVelocity: [3]float64{0.03, -0.02, 0.01},
			SetupFlags: func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
				flags.Fill(field.Fluid)
			},
		})
		if err != nil {
			t.Error(err)
			return
		}
		mustRun(t, s, 25)
		for _, bd := range s.Blocks {
			for z := 0; z < 4; z++ {
				for y := 0; y < 4; y++ {
					for x := 0; x < 4; x++ {
						rho, ux, uy, uz := bd.Src.Moments(x, y, z)
						if math.Abs(rho-1) > 1e-12 || math.Abs(ux-0.03) > 1e-12 ||
							math.Abs(uy+0.02) > 1e-12 || math.Abs(uz-0.01) > 1e-12 {
							t.Errorf("rank %d block %v cell (%d,%d,%d) drifted: rho=%v u=(%v,%v,%v)",
								c.Rank(), bd.Block.Coord, x, y, z, rho, ux, uy, uz)
							return
						}
					}
				}
			}
		}
	})
}

// Mass is conserved in a closed cavity.
func TestMassConservation(t *testing.T) {
	domain := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
	f := blockforest.NewSetupForest(domain, [3]int{2, 1, 1}, [3]int{4, 8, 8}, [3]bool{})
	const ranks = 2
	f.BalanceMorton(ranks)
	runRanks(t, ranks, func(c *comm.Comm) {
		forest, _ := blockforest.Distribute(c, forestFor(c.Rank(), f))
		s, err := New(c, forest, Config{SetupFlags: func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
			flags.Fill(field.Fluid)
			for face := lattice.FaceW; face < lattice.NumFaces; face++ {
				nx, ny, nz := face.Normal()
				if b.Neighbor([3]int{nx, ny, nz}) == nil {
					MarkGhostFace(flags, face, field.NoSlip)
				}
			}
		}})
		if err != nil {
			t.Error(err)
			return
		}
		var localMass float64
		for _, bd := range s.Blocks {
			localMass += bd.Src.TotalMass()
		}
		before := s.Comm.AllreduceFloat64(localMass, func(a, b float64) float64 { return a + b })
		mustRun(t, s, 50)
		localMass = 0
		for _, bd := range s.Blocks {
			localMass += bd.Src.TotalMass()
		}
		after := s.Comm.AllreduceFloat64(localMass, func(a, b float64) float64 { return a + b })
		if math.Abs(after-before) > 1e-8 {
			t.Errorf("mass %v -> %v", before, after)
		}
	})
}

// Force-driven plane Poiseuille flow between no-slip plates: with the TRT
// magic parameter 3/16, bounce-back walls sit exactly halfway between
// cells and the steady parabolic profile is recovered to high accuracy.
func TestPoiseuilleFlowParabolicProfile(t *testing.T) {
	const nz = 10
	const force = 1e-6
	const tau = 0.9
	nu := (tau - 0.5) / 3.0
	domain := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
	f := blockforest.NewSetupForest(domain, [3]int{1, 1, 2}, [3]int{4, 4, nz / 2}, [3]bool{true, true, false})
	const ranks = 2
	f.BalanceMorton(ranks)
	var mu sync.Mutex
	profile := make(map[int]float64)
	runRanks(t, ranks, func(c *comm.Comm) {
		forest, _ := blockforest.Distribute(c, forestFor(c.Rank(), f))
		s, err := New(c, forest, Config{
			Tau:   tau,
			Force: [3]float64{force, 0, 0},
			SetupFlags: func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
				flags.Fill(field.Fluid)
				if b.Neighbor([3]int{0, 0, -1}) == nil {
					MarkGhostFace(flags, lattice.FaceB, field.NoSlip)
				}
				if b.Neighbor([3]int{0, 0, 1}) == nil {
					MarkGhostFace(flags, lattice.FaceT, field.NoSlip)
				}
			},
		})
		if err != nil {
			t.Error(err)
			return
		}
		mustRun(t, s, 6000)
		mu.Lock()
		defer mu.Unlock()
		for _, bd := range s.Blocks {
			zBase := bd.Block.Coord[2] * nz / 2
			for z := 0; z < nz/2; z++ {
				_, ux, _, _ := bd.Src.Moments(2, 2, z)
				profile[zBase+z] = ux
			}
		}
	})
	// The simple first-order forcing leaves a small uniform slip offset;
	// judge each cell against the analytic parabola relative to the peak
	// velocity (1 % of u_max).
	uMax := force / (2 * nu) * float64(nz*nz) / 4
	for z := 0; z < nz; z++ {
		zt := float64(z) + 0.5 - float64(nz)/2
		want := force / (2 * nu) * (float64(nz*nz)/4 - zt*zt)
		got := profile[z]
		if math.Abs(got-want) > 0.01*uMax {
			t.Errorf("z=%d: ux=%v, want %v (off by %.2f%% of peak)", z, got, want, 100*math.Abs(got-want)/uMax)
		}
	}
}

func TestMetrics(t *testing.T) {
	domain := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
	f := blockforest.NewSetupForest(domain, [3]int{2, 1, 1}, [3]int{4, 4, 4}, [3]bool{})
	const ranks = 2
	f.BalanceMorton(ranks)
	runRanks(t, ranks, func(c *comm.Comm) {
		forest, _ := blockforest.Distribute(c, forestFor(c.Rank(), f))
		s, err := New(c, forest, Config{})
		if err != nil {
			t.Error(err)
			return
		}
		m := mustRun(t, s, 10)
		if m.TotalCells != 128 {
			t.Errorf("TotalCells = %d, want 128", m.TotalCells)
		}
		if m.TotalFluidCells != 128 {
			t.Errorf("TotalFluidCells = %d, want 128", m.TotalFluidCells)
		}
		if m.MLUPS <= 0 || m.WallTime <= 0 {
			t.Errorf("degenerate metrics: %+v", m)
		}
		if m.CommFraction < 0 || m.CommFraction > 1 {
			t.Errorf("CommFraction = %v", m.CommFraction)
		}
		if m.FluidFraction() != 1 {
			t.Errorf("FluidFraction = %v", m.FluidFraction())
		}
		if m.MLUPSPerCore() <= 0 || m.TimeStepsPerSecond() <= 0 {
			t.Error("per-core metrics degenerate")
		}
		if m.String() == "" {
			t.Error("empty String()")
		}
	})
}

func TestCommDirections(t *testing.T) {
	st := lattice.D3Q19()
	if got := len(commDirections(st, [3]int{1, 0, 0})); got != 5 {
		t.Errorf("face +x: %d directions, want 5", got)
	}
	if got := len(commDirections(st, [3]int{1, 1, 0})); got != 1 {
		t.Errorf("edge +x+y: %d directions, want 1", got)
	}
	if got := len(commDirections(st, [3]int{1, 1, 1})); got != 0 {
		t.Errorf("corner: %d directions, want 0", got)
	}
}

func TestRegions(t *testing.T) {
	cells := [3]int{8, 8, 8}
	r := sendRegion(cells, [3]int{1, 0, 0})
	if r.lo != [3]int{7, 0, 0} || r.hi != [3]int{8, 8, 8} || r.cells() != 64 {
		t.Errorf("sendRegion +x = %+v", r)
	}
	r = recvRegion(cells, [3]int{-1, 0, -1})
	if r.lo != [3]int{-1, 0, -1} || r.hi != [3]int{0, 8, 0} || r.cells() != 8 {
		t.Errorf("recvRegion -x-z = %+v", r)
	}
}
