package sim

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/lattice"
	"walberla/internal/output"
	"walberla/internal/telemetry"
)

// In-memory buddy checkpointing and shrinking recovery (RecoverShrink).
//
// At every checkpoint interval each rank protects its state twice:
//
//   - an *own snapshot*: raw copies of both PDF fields of every local
//     block, restored by memcpy — the survivor's rewind needs no
//     decoding at all;
//   - a *buddy replica*: the blocks serialized with the rank-file
//     encoding of the disk checkpoint sets (WBK1 + CRC32C, but into
//     memory) plus the block metadata adoption needs, sent to the buddy
//     rank (rank+1) mod size.
//
// Both are double-buffered generations: a failure mid-replication leaves
// the previous generation intact, and the recovery vote picks the newest
// generation every survivor can serve. On a permanent failure the
// survivors shrink the world (comm.Shrink), the dead rank's buddy decodes
// the replica and re-owns the blocks through the same adoption path the
// dynamic load balancer uses, neighborhoods are renumbered with the
// old→new rank map, the exchange plan is rebuilt, and the run resumes
// from the replicated step — zero disk I/O on this path (asserted via
// RecoveryStats.DiskReadsDuringRecovery).

// tagBuddy carries replica generations; it lives in the user tag space
// above the migration tags (see rebalance.go).
const tagBuddy = 1<<30 + 2

// buddyMsg is one replication generation shipped to the buddy rank.
type buddyMsg struct {
	// Step is the generation's step barrier.
	Step int
	// SrcWorld is the producing rank's world rank — stable across
	// shrinks, unlike communicator ranks.
	SrcWorld int
	// Payload is the WBK1 rank-file encoding of all blocks (coordinates
	// plus both PDF fields); CRC is its CRC32C.
	Payload []byte
	CRC     uint32
	// Meta is the gob-encoded []blockMeta adoption needs (the rank-file
	// format stores only coordinates and fields).
	Meta []byte
}

// blockMeta carries the non-field state of one block: the forest block
// (ID, coordinates, AABB, neighborhood with communicator ranks as of the
// producing generation) and the flag field contents.
type blockMeta struct {
	Block blockforest.Block
	Flags []field.CellType
}

// replicaGen is one received generation, CRC-validated AND decoded at
// receipt: recovery latency is what buddy replication exists to minimize,
// so the deserialization cost is paid on the (overlappable) replication
// path, and a restore that adopts these blocks is a pure memory
// operation.
type replicaGen struct {
	step     int
	srcWorld int
	snaps    []output.BlockSnapshot
	metas    []blockMeta
}

// ownGen is one locally-held snapshot generation: raw field copies,
// restored by memcpy.
type ownGen struct {
	step   int
	coords [][3]int
	src    [][]float64
	dst    [][]float64
}

// buddyState is the double-buffered replication state of one rank.
type buddyState struct {
	parity  int            // slot the next generation writes
	own     [2]ownGen      // this rank's raw snapshots
	replica [2]*replicaGen // the ward's decoded generations held here
	// lastMeta retains the newest metadata per protected world rank even
	// when payload generations are invalidated — block metadata is static
	// between shrinks, and the disk-fallback rung needs it to adopt.
	lastMeta map[int][]byte
	// lastStep is the step of the newest generation this rank produced
	// (-1 before the first), deduplicating the post-restore generation.
	lastStep int
}

// copyInto copies src into dst, reusing dst's storage when it fits.
func copyInto(dst, src []float64) []float64 {
	if cap(dst) < len(src) {
		dst = make([]float64, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

func newBuddyState() *buddyState {
	b := &buddyState{lastMeta: make(map[int][]byte), lastStep: -1}
	b.own[0].step, b.own[1].step = -1, -1
	return b
}

// ownAt returns the own snapshot of the given step, or nil.
func (b *buddyState) ownAt(step int) *ownGen {
	for i := range b.own {
		if b.own[i].step == step {
			return &b.own[i]
		}
	}
	return nil
}

// replicaAt returns the committed replica generation of the given
// producing world rank and step, or nil.
func (b *buddyState) replicaAt(srcWorld, step int) *replicaGen {
	for _, g := range b.replica {
		if g != nil && g.srcWorld == srcWorld && g.step == step {
			return g
		}
	}
	return nil
}

// replicaLatest returns the newest committed generation step held for the
// producing world rank (-1 if none).
func (b *buddyState) replicaLatest(srcWorld int) int {
	latest := -1
	for _, g := range b.replica {
		if g != nil && g.srcWorld == srcWorld && g.step > latest {
			latest = g.step
		}
	}
	return latest
}

// replicate produces one protection generation at a step barrier: the own
// raw snapshot, and the serialized replica shipped to the buddy rank.
// Collective over s.Comm. A rank failure surfaces as the usual typed
// error; the half-written generation is simply never committed, so
// recovery falls back to the previous one.
func (s *Simulation) replicate(step int, rec *RecoveryStats) error {
	b := s.buddy
	c := s.Comm

	// Own snapshot first: purely local, so every survivor of a failure
	// during the exchange below still owns this generation (the vote
	// requires own generations to be uniform across survivors).
	p := b.parity
	og := &b.own[p]
	og.step = step
	og.coords = og.coords[:0]
	if len(og.src) != len(s.Blocks) {
		og.src = make([][]float64, len(s.Blocks))
		og.dst = make([][]float64, len(s.Blocks))
	}
	for i, bd := range s.Blocks {
		og.coords = append(og.coords, bd.Block.Coord)
		// Reuse the generation's buffers across intervals: snapshots are
		// taken every CheckpointEvery steps, and fresh multi-megabyte
		// slices each time keep the collector busy enough to intrude on
		// the recovery-latency window.
		og.src[i] = copyInto(og.src[i], bd.Src.Data())
		og.dst[i] = copyInto(og.dst[i], bd.Dst.Data())
	}
	b.lastStep = step

	if c.Size() < 2 {
		b.parity ^= 1
		return nil // no buddy to protect or be protected by
	}

	msg, err := s.encodeReplica(step)
	if err != nil {
		return err
	}
	buddy := (c.Rank() + 1) % c.Size()
	ward := (c.Rank() + c.Size() - 1) % c.Size()
	if err := c.SendErr(buddy, tagBuddy, msg); err != nil {
		return err
	}
	got, _, err := c.RecvErr(ward, tagBuddy)
	if err != nil {
		return err
	}
	in, ok := got.(*buddyMsg)
	if !ok {
		return fmt.Errorf("sim: unexpected buddy payload %T", got)
	}
	rec.Replications++
	rec.ReplicaBytes += int64(len(msg.Payload))
	s.tel.replicaBytes.Add(int64(len(msg.Payload)))
	// Validate and decode NOW, at receipt: a generation that fails either
	// is simply not committed (the previous one stays restorable and the
	// vote settles on it), and a committed generation makes the eventual
	// restore a pure memory operation.
	if gen := decodeReplica(in, s.Stencil); gen != nil {
		b.replica[p] = gen
		b.lastMeta[in.SrcWorld] = in.Meta
	}
	b.parity ^= 1
	// Commit barrier: without it the ring above only chains each rank to
	// its ward, so under a gray failure (one connection dead, others
	// alive) survivors can drift more than one generation apart — and
	// two-deep buffers that drift by two share no common generation,
	// forcing the disk fallback. The barrier bounds the skew at one
	// generation, which guarantees the vote always finds a common
	// restorable one. A failure here leaves this generation uncommitted
	// on some ranks; the vote settles on the previous one.
	return c.BarrierErr()
}

// decodeReplica validates and deserializes one replica envelope, nil if
// the envelope is corrupt in any way. Each block is decoded in the layout
// its sender stored it in (the wire format records it per block), so
// replicas from ranks running a mix of layouts restore without any
// world-wide layout assumption.
func decodeReplica(in *buddyMsg, stencil *lattice.Stencil) *replicaGen {
	if output.CRC32C(in.Payload) != in.CRC {
		return nil
	}
	metas, err := decodeReplicaMeta(in.Meta)
	if err != nil {
		return nil
	}
	snaps, crc, err := output.ReadRankFileStored(bytes.NewReader(in.Payload), stencil)
	if err != nil || crc != in.CRC || len(snaps) != len(metas) {
		return nil
	}
	return &replicaGen{step: in.Step, srcWorld: in.SrcWorld, snaps: snaps, metas: metas}
}

// encodeReplica serializes this rank's blocks into a replica envelope.
func (s *Simulation) encodeReplica(step int) (*buddyMsg, error) {
	snaps := make([]output.BlockSnapshot, len(s.Blocks))
	metas := make([]blockMeta, len(s.Blocks))
	for i, bd := range s.Blocks {
		snaps[i] = output.BlockSnapshot{Coord: bd.Block.Coord, Src: bd.Src, Dst: bd.Dst}
		metas[i] = blockMeta{
			Block: *bd.Block, // value copy; the receiver adopts its own instance
			Flags: append([]field.CellType(nil), bd.Flags.Data()...),
		}
	}
	var payload bytes.Buffer
	_, crc, err := output.WriteRankFile(&payload, snaps)
	if err != nil {
		return nil, fmt.Errorf("sim: encoding replica payload: %w", err)
	}
	var meta bytes.Buffer
	if err := gob.NewEncoder(&meta).Encode(metas); err != nil {
		return nil, fmt.Errorf("sim: encoding replica metadata: %w", err)
	}
	return &buddyMsg{
		Step:     step,
		SrcWorld: s.Comm.WorldRank(),
		Payload:  payload.Bytes(),
		CRC:      crc,
		Meta:     meta.Bytes(),
	}, nil
}

// shrinkRestoreAttempt wraps shrinkRecover with the same panic conversion
// as the other recovery entry points (a failure can strike during
// recovery traffic too).
func (s *Simulation) shrinkRestoreAttempt(dead []int, rc ResilienceConfig, rec *RecoveryStats, start time.Time) (step int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			if cr, ok := r.(comm.Crash); ok {
				err = &comm.RankFailedError{Rank: cr.Rank, Cause: "injected crash"}
				return
			}
			var rfe *comm.RankFailedError
			if e, isErr := r.(error); isErr && errors.As(e, &rfe) {
				err = rfe
				return
			}
			panic(r)
		}
	}()
	return s.shrinkRecover(dead, rc, rec, start)
}

// shrinkRecover repairs the world after permanent failures: shrink the
// communicator onto the survivors, vote on the newest restorable
// generation, rewind every survivor from its own snapshot, let each dead
// rank's buddy adopt the replica blocks, renumber the neighborhoods with
// the old→new rank map, and rebuild the exchange plan. Falls back to a
// disk checkpoint set when no common in-memory generation survives.
// Returns the restored step.
func (s *Simulation) shrinkRecover(dead []int, rc ResilienceConfig, rec *RecoveryStats, start time.Time) (int64, error) {
	shrinkStart := s.tel.driver.Start()
	c := s.Comm
	b := s.buddy
	oldSize := c.Size()

	deadOld := make(map[int]bool, len(dead)) // dead old-comm ranks
	for _, d := range dead {
		r := c.CommRankOf(d)
		if r < 0 {
			return 0, fmt.Errorf("sim: dead world rank %d is not a member of the communicator", d)
		}
		deadOld[r] = true
	}

	newComm, rankMap := c.Shrink()
	if newComm == nil {
		return 0, ErrRetired
	}

	// The adopter of each dead rank is its buddy — deterministic, so no
	// agreement traffic is needed. A dead buddy means the replica is gone
	// with it: with single-failure-at-a-time semantics this cannot occur
	// (the previous failure is fully recovered, and re-protected, before
	// the next one is handled), so treat it as unrecoverable.
	adopterOf := make(map[int]int, len(deadOld)) // dead old rank -> adopter old rank
	var myWards []int                            // dead world ranks this rank adopts from
	for dr := range deadOld {
		a := (dr + 1) % oldSize
		if deadOld[a] {
			return 0, fmt.Errorf("sim: buddy rank of dead rank %d died too; compound failure is unrecoverable", dr)
		}
		adopterOf[dr] = a
		if a == c.Rank() {
			myWards = append(myWards, c.WorldRankOf(dr))
		}
	}

	// Vote on the restore generation: the newest step every survivor can
	// serve from memory — own snapshots everywhere, plus the replicas of
	// the dead on their adopters. A negative outcome (no generations, or
	// an adopter whose replica was never committed) selects the disk
	// fallback collectively.
	cand := maxInt(b.own[0].step, b.own[1].step)
	for _, w := range myWards {
		cand = minInt(cand, b.replicaLatest(w))
	}
	g, err := newComm.AllreduceInt64Err(int64(cand), comm.Min[int64])
	if err != nil {
		return 0, err
	}
	have := int64(1)
	if g >= 0 {
		if b.ownAt(int(g)) == nil {
			have = 0
		}
		for _, w := range myWards {
			if b.replicaAt(w, int(g)) == nil {
				have = 0
			}
		}
	}
	agree, err := newComm.AllreduceInt64Err(have, comm.Min[int64])
	if err != nil {
		return 0, err
	}

	var restored int64
	var adopted []*BlockData
	if g >= 0 && agree == 1 {
		// Pure in-memory path: memcpy rewind + replica adoption.
		og := b.ownAt(int(g))
		for i, coord := range og.coords {
			bd := s.byCoord[coord]
			if bd == nil {
				return 0, fmt.Errorf("sim: own snapshot holds unknown block %v", coord)
			}
			copy(bd.Src.Data(), og.src[i])
			copy(bd.Dst.Data(), og.dst[i])
		}
		for _, w := range myWards {
			blocks, err := s.adoptReplica(b.replicaAt(w, int(g)))
			if err != nil {
				return 0, err
			}
			adopted = append(adopted, blocks...)
		}
		restored = g
		rec.BuddyRestores++
	} else {
		restored, adopted, err = s.diskShrinkRestore(myWards, rc, newComm)
		if err != nil {
			return 0, err
		}
		rec.DiskRestores++
	}

	// Commit the new topology: redirect every neighborhood rank through
	// the old→new map (dead ranks to their adopter), swap communicator
	// and forest, and rebuild the plan.
	redirect := make([]int, oldSize)
	for r := 0; r < oldSize; r++ {
		if deadOld[r] {
			redirect[r] = rankMap[adopterOf[r]]
		} else {
			redirect[r] = rankMap[r]
		}
	}
	kept := append(s.Blocks, adopted...)
	sort.Slice(kept, func(i, j int) bool {
		return blockforest.MortonKey(kept[i].Block.Coord) < blockforest.MortonKey(kept[j].Block.Coord)
	})
	s.Blocks = kept
	s.byCoord = make(map[[3]int]*BlockData, len(kept))
	var forestBlocks []*blockforest.Block
	for _, bd := range kept {
		for i := range bd.Block.Neighbors {
			n := &bd.Block.Neighbors[i]
			if n.Rank < 0 || n.Rank >= oldSize {
				return 0, fmt.Errorf("sim: neighbor of block %v has invalid rank %d", bd.Block.Coord, n.Rank)
			}
			n.Rank = redirect[n.Rank]
		}
		s.byCoord[bd.Block.Coord] = bd
		forestBlocks = append(forestBlocks, bd.Block)
	}
	s.Comm = newComm
	s.Forest.Rank = newComm.Rank()
	s.Forest.NumRanks = newComm.Size()
	s.Forest.Blocks = forestBlocks
	// recycleBuffers=false: the dead rank's final zero-copy unpack read our
	// old send buffers and will never synchronize with this rebuild, so the
	// retired buffers must not be repacked — see rebuildPlan.
	s.rebuildPlan(false)
	rec.Shrinks++
	rec.BlocksAdopted += len(adopted)

	// Drop all pre-shrink generations (their communicator ranks are stale).
	// Re-protection is NOT done here — the restored step is always a
	// checkpoint barrier (a multiple of the interval, or 0), so the time
	// loop re-replicates on the new topology before the first post-restore
	// step, outside the measured restore window.
	s.buddy = newBuddyState()

	// This rank is ready to step again; what remains is waiting for the
	// peers. RestoreLatency is the per-rank rendezvous-to-ready time, so
	// record it here — the barrier below is coordination, and the moments
	// after it are already re-protection work competing for cores.
	ready := time.Since(start)

	// Recovery completes collectively: no survivor resumes the time loop
	// (and starts competing for cores with re-protection work) while a
	// peer is still committing the shrunk topology.
	if err := newComm.BarrierErr(); err != nil {
		return 0, err
	}
	rec.RestoreLatency += ready
	s.tel.driver.Span(telemetry.PhaseShrink, int(restored), 0, shrinkStart)
	return restored, nil
}

// adoptReplica reconstructs the dead rank's blocks from a decoded
// generation, reusing the adoption discipline of the dynamic load
// balancer (rebalance.go). Pure memory: decoding already happened at
// receipt (decodeReplica).
func (s *Simulation) adoptReplica(gen *replicaGen) ([]*BlockData, error) {
	if gen == nil {
		return nil, fmt.Errorf("sim: missing replica generation")
	}
	return s.buildAdoptedBlocks(gen.snaps, gen.metas)
}

// buildAdoptedBlocks joins decoded field snapshots with their metadata
// into runtime blocks.
func (s *Simulation) buildAdoptedBlocks(snaps []output.BlockSnapshot, metas []blockMeta) ([]*BlockData, error) {
	byCoord := make(map[[3]int]*blockMeta, len(metas))
	for i := range metas {
		byCoord[metas[i].Block.Coord] = &metas[i]
	}
	if len(snaps) != len(metas) {
		return nil, fmt.Errorf("sim: replica has %d field snapshots but %d metadata records", len(snaps), len(metas))
	}
	blocks := make([]*BlockData, 0, len(snaps))
	for _, snap := range snaps {
		m := byCoord[snap.Coord]
		if m == nil {
			return nil, fmt.Errorf("sim: replica block %v has no metadata", snap.Coord)
		}
		cells := m.Block.Cells
		if snap.Src.Nx != cells[0] || snap.Src.Ny != cells[1] || snap.Src.Nz != cells[2] {
			return nil, fmt.Errorf("sim: replica block %v shape mismatch", snap.Coord)
		}
		flags := field.NewFlagField(cells[0], cells[1], cells[2], 1)
		copy(flags.Data(), m.Flags)
		k, choice, err := s.Config.blockKernel(flags)
		if err != nil {
			return nil, err
		}
		src, dst := snap.Src, snap.Dst
		if k.Layout() != src.Layout {
			// The snapshot was stored in another layout (the wire format
			// preserves the sender's); transpose into the kernel's.
			src = src.ConvertLayout(k.Layout())
			dst = dst.ConvertLayout(k.Layout())
		}
		fluid := flags.Count(field.Fluid)
		blk := m.Block // copy out of the decoded metadata
		blocks = append(blocks, &BlockData{
			Block:      &blk,
			Src:        src,
			Dst:        dst,
			Flags:      flags,
			Kernel:     k,
			Boundary:   newBoundarySweep(s, flags),
			Fluid:      fluid,
			sweepFlags: denseSweepFlags(choice, flags, fluid),
		})
	}
	return blocks, nil
}

func decodeReplicaMeta(raw []byte) ([]blockMeta, error) {
	var metas []blockMeta
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&metas); err != nil {
		return nil, fmt.Errorf("sim: decoding replica metadata: %w", err)
	}
	return metas, nil
}

// restoreInto copies one decoded snapshot field into a live block field,
// transposing first when the snapshot was stored in the other layout.
func restoreInto(dst, snap *field.PDFField) {
	if snap.Layout != dst.Layout {
		snap = snap.ConvertLayout(dst.Layout)
	}
	copy(dst.Data(), snap.Data())
}

// diskShrinkRestore is the fallback rung of shrinking recovery: the
// survivors restore their own blocks from the newest valid disk
// checkpoint set written by the pre-shrink world, and each adopter reads
// its dead ward's rank file too, joining it with the retained replica
// metadata. Collective over newComm (the old communicator is revoked but
// s.Comm still carries the pre-shrink rank numbering the set was written
// under).
func (s *Simulation) diskShrinkRestore(myWards []int, rc ResilienceConfig, newComm *comm.Comm) (int64, []*BlockData, error) {
	if rc.Dir == "" {
		return 0, nil, fmt.Errorf("sim: no common in-memory generation and no disk checkpoint directory configured")
	}
	var candidates []int64
	if newComm.Rank() == 0 {
		candidates = output.ListValidSets(rc.Dir)
		s.recoveryDiskReads++
	}
	v, err := newComm.BcastErr(0, candidates)
	if err != nil {
		return 0, nil, err
	}
	if v != nil {
		candidates = v.([]int64)
	}

	for _, step := range candidates {
		setDir := filepath.Join(rc.Dir, output.SetDirName(int(step)))
		own, loadErr := s.loadOwnRankFile(setDir)
		var adopted []*BlockData
		if loadErr == nil {
			adopted, loadErr = s.adoptFromSet(setDir, myWards)
		}
		ok := int64(1)
		if loadErr != nil {
			ok = 0
		}
		agree, err := newComm.AllreduceInt64Err(ok, comm.Min[int64])
		if err != nil {
			return 0, nil, err
		}
		if agree == 0 {
			continue
		}
		for coord, pair := range own {
			bd := s.byCoord[coord]
			restoreInto(bd.Src, pair[0])
			restoreInto(bd.Dst, pair[1])
		}
		return step, adopted, nil
	}
	return 0, nil, fmt.Errorf("sim: no usable disk checkpoint set for shrink recovery in %s", rc.Dir)
}

// adoptFromSet reads and validates the rank files of this rank's dead
// wards from one checkpoint set, joining them with the retained replica
// metadata.
func (s *Simulation) adoptFromSet(setDir string, myWards []int) ([]*BlockData, error) {
	var adopted []*BlockData
	for _, w := range myWards {
		snaps, metas, err := s.readWardFromSet(setDir, w)
		if err != nil {
			return nil, err
		}
		blocks, err := s.buildAdoptedBlocks(snaps, metas)
		if err != nil {
			return nil, err
		}
		adopted = append(adopted, blocks...)
	}
	return adopted, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
