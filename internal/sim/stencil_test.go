package sim

import (
	"math"
	"sync"
	"testing"

	"walberla/internal/blockforest"
	"walberla/internal/boundary"
	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/lattice"
)

// The simulation driver is stencil-generic through the generic kernels:
// a D3Q27 cavity must give identical physics regardless of decomposition
// (the exchange automatically communicates corner PDFs for D3Q27).
func TestD3Q27DecompositionInvariance(t *testing.T) {
	run := func(ranks int, grid, cells [3]int) map[[3]int]float64 {
		domain := blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1})
		f := blockforest.NewSetupForest(domain, grid, cells, [3]bool{})
		f.BalanceMorton(ranks)
		var mu sync.Mutex
		out := make(map[[3]int]float64)
		comm.Run(ranks, func(c *comm.Comm) {
			forest, _ := blockforest.Distribute(c, forestFor(c.Rank(), f))
			s, err := New(c, forest, Config{
				Stencil:    lattice.D3Q27(),
				Kernel:     KernelGenericTRT,
				Tau:        0.8,
				Boundary:   boundary.Config{WallVelocity: [3]float64{0.05, 0, 0}},
				SetupFlags: cavityFlags,
			})
			if err != nil {
				t.Error(err)
				return
			}
			mustRun(t, s, 25)
			mu.Lock()
			defer mu.Unlock()
			for _, bd := range s.Blocks {
				base := [3]int{
					bd.Block.Coord[0] * cells[0],
					bd.Block.Coord[1] * cells[1],
					bd.Block.Coord[2] * cells[2],
				}
				for z := 0; z < cells[2]; z++ {
					for y := 0; y < cells[1]; y++ {
						for x := 0; x < cells[0]; x++ {
							_, ux, _, _ := bd.Src.Moments(x, y, z)
							out[[3]int{base[0] + x, base[1] + y, base[2] + z}] = ux
						}
					}
				}
			}
		})
		return out
	}
	ref := run(1, [3]int{1, 1, 1}, [3]int{6, 6, 6})
	got := run(4, [3]int{2, 2, 1}, [3]int{3, 3, 6})
	if len(got) != len(ref) {
		t.Fatalf("cell counts differ: %d vs %d", len(got), len(ref))
	}
	var maxDiff float64
	for k, v := range ref {
		if d := math.Abs(got[k] - v); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-13 {
		t.Errorf("D3Q27 decomposition deviation %g", maxDiff)
	}
}

// The D3Q27 exchange must include corner operations (unlike D3Q19, whose
// corner offsets carry no PDFs).
func TestD3Q27ExchangePlanHasCorners(t *testing.T) {
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{2, 2, 2}, [3]int{4, 4, 4}, [3]bool{true, true, true})
	f.BalanceMorton(1)
	comm.Run(1, func(c *comm.Comm) {
		forest, _ := blockforest.Distribute(c, f)
		s, err := New(c, forest, Config{
			Stencil:  lattice.D3Q27(),
			Kernel:   KernelGenericTRT,
			Exchange: ExchangePerPair,
			SetupFlags: func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
				flags.Fill(field.Fluid)
			},
		})
		if err != nil {
			t.Error(err)
			return
		}
		// All 26 offsets carry PDFs for D3Q27: 8 blocks x 26 ops.
		if len(s.plan) != 8*26 {
			t.Errorf("D3Q27 plan has %d ops, want %d", len(s.plan), 8*26)
		}
	})
}

// A two-dimensional channel through the distributed driver: D2Q9 blocks
// one cell thick, periodic in x, walls in y.
func TestD2Q9DistributedUniformFlow(t *testing.T) {
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 0.1}),
		[3]int{2, 1, 1}, [3]int{4, 8, 1}, [3]bool{true, true, false})
	f.BalanceMorton(2)
	comm.Run(2, func(c *comm.Comm) {
		forest, _ := blockforest.Distribute(c, forestFor(c.Rank(), f))
		s, err := New(c, forest, Config{
			Stencil:         lattice.D2Q9(),
			Kernel:          KernelGenericSRT,
			InitialVelocity: [3]float64{0.04, 0.01, 0},
			SetupFlags: func(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
				flags.Fill(field.Fluid)
			},
		})
		if err != nil {
			t.Error(err)
			return
		}
		mustRun(t, s, 30)
		for _, bd := range s.Blocks {
			for y := 0; y < 8; y++ {
				for x := 0; x < 4; x++ {
					rho, ux, uy, uz := bd.Src.Moments(x, y, 0)
					if math.Abs(rho-1) > 1e-12 || math.Abs(ux-0.04) > 1e-12 ||
						math.Abs(uy-0.01) > 1e-12 || math.Abs(uz) > 1e-14 {
						t.Errorf("uniform 2-D flow drifted at (%d,%d): rho=%v u=(%v,%v,%v)",
							x, y, rho, ux, uy, uz)
						return
					}
				}
			}
		}
	})
}

func TestStencilKernelValidation(t *testing.T) {
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{1, 1, 1}, [3]int{4, 4, 4}, [3]bool{})
	f.BalanceMorton(1)
	comm.Run(1, func(c *comm.Comm) {
		forest, _ := blockforest.Distribute(c, f)
		if _, err := New(c, forest, Config{
			Stencil: lattice.D3Q27(),
			Kernel:  KernelSplitTRT,
		}); err == nil {
			t.Error("D3Q27 with a specialized D3Q19 kernel accepted")
		}
		// Default kernel for non-D3Q19 stencils is the generic TRT kernel.
		s, err := New(c, forest, Config{Stencil: lattice.D3Q27()})
		if err != nil {
			t.Errorf("default kernel selection failed: %v", err)
			return
		}
		if s.Blocks[0].Kernel.Name() != "TRT Generic" {
			t.Errorf("default kernel = %q", s.Blocks[0].Kernel.Name())
		}
	})
}
