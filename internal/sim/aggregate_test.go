package sim

import (
	"sync"
	"testing"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/field"
)

// allFluid is the SetupFlags of the fully periodic test scenarios.
func allFluid(b *blockforest.Block, forest *blockforest.BlockForest, flags *field.FlagField) {
	flags.Fill(field.Fluid)
}

// TestAggregatedBitIdenticalToPerPair: the rank-aggregated wire format is
// a pure transport change — for every worker count it must reproduce the
// legacy per-block-pair exchange bit for bit.
func TestAggregatedBitIdenticalToPerPair(t *testing.T) {
	const steps = 30
	ref := taylorGreenBitsMode(t, 1, steps, ExchangePerPair)
	if t.Failed() {
		t.Fatal("per-pair reference failed")
	}
	for _, workers := range []int{1, 2, 4, 7} {
		got := taylorGreenBitsMode(t, workers, steps, ExchangeAggregated)
		compareBits(t, ref, got, "aggregated workers="+string(rune('0'+workers)))
	}
}

// TestAggregatedPlanSingleRank: on one rank every exchange is a direct
// local copy — no channels, no messages.
func TestAggregatedPlanSingleRank(t *testing.T) {
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{2, 2, 2}, [3]int{4, 4, 4}, [3]bool{true, true, true})
	f.BalanceMorton(1)
	comm.Run(1, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, f)
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, Config{SetupFlags: allFluid})
		if err != nil {
			t.Error(err)
			return
		}
		if len(s.channels) != 0 {
			t.Errorf("single-rank plan has %d channels, want 0", len(s.channels))
		}
		// 8 blocks x 18 non-corner offsets (6 faces + 12 edges for D3Q19).
		if len(s.locals) != 8*18 {
			t.Errorf("plan has %d local copies, want %d", len(s.locals), 8*18)
		}
		st := s.ExchangeStats()
		if st.MessagesPerStep != 0 || st.NeighborRanks != 0 || st.LocalCopies != 8*18 {
			t.Errorf("unexpected ExchangeStats %+v", st)
		}
	})
}

// TestAggregatedPlanManifest checks the channel invariants on a two-rank
// split: canonical manifest order, contiguous buffer windows, and
// symmetric send/receive volumes.
func TestAggregatedPlanManifest(t *testing.T) {
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{4, 2, 1}, [3]int{4, 4, 4}, [3]bool{true, true, true})
	f.BalanceMorton(2)
	comm.Run(2, func(c *comm.Comm) {
		forest, err := blockforest.Distribute(c, forestFor(c.Rank(), f))
		if err != nil {
			t.Error(err)
			return
		}
		s, err := New(c, forest, Config{SetupFlags: allFluid})
		if err != nil {
			t.Error(err)
			return
		}
		if len(s.channels) != 1 {
			t.Fatalf("rank %d: %d channels, want 1", c.Rank(), len(s.channels))
		}
		ch := &s.channels[0]
		if ch.rank == c.Rank() {
			t.Errorf("channel to self (rank %d)", ch.rank)
		}
		check := func(slabs []slabOp, total int, label string) {
			off := 0
			for i := range slabs {
				sl := &slabs[i]
				if sl.off != off || sl.n != len(sl.dirs)*sl.reg.cells() {
					t.Errorf("rank %d: %s slab %d window [%d,%d) not contiguous at %d",
						c.Rank(), label, i, sl.off, sl.off+sl.n, off)
				}
				off += sl.n
				if i > 0 && !slabs[i-1].key.less(sl.key) {
					t.Errorf("rank %d: %s manifest not strictly ordered at %d", c.Rank(), label, i)
				}
			}
			if off != total {
				t.Errorf("rank %d: %s windows cover %d floats, channel says %d", c.Rank(), label, off, total)
			}
		}
		check(ch.send, ch.sendFloats, "send")
		check(ch.recv, ch.recvFloats, "recv")
		if len(ch.bufs[0]) != ch.sendFloats || len(ch.bufs[1]) != ch.sendFloats {
			t.Errorf("rank %d: buffer lengths %d/%d, want %d",
				c.Rank(), len(ch.bufs[0]), len(ch.bufs[1]), ch.sendFloats)
		}
		// The decomposition is symmetric, so volumes must match.
		if ch.sendFloats != ch.recvFloats {
			t.Errorf("rank %d: sendFloats %d != recvFloats %d", c.Rank(), ch.sendFloats, ch.recvFloats)
		}
	})
}

// TestAggregatedOneMessagePerNeighborRank is the tentpole acceptance
// test: with many blocks per rank, the steady-state aggregated exchange
// sends exactly one message per neighbor rank per step, while the
// per-pair format sends one per remote boundary slab.
func TestAggregatedOneMessagePerNeighborRank(t *testing.T) {
	const warmup, measured = 2, 5
	run := func(mode ExchangeMode) {
		f := blockforest.NewSetupForest(
			blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
			[3]int{4, 2, 1}, [3]int{4, 4, 4}, [3]bool{true, true, true})
		f.BalanceMorton(2)
		comm.Run(2, func(c *comm.Comm) {
			forest, err := blockforest.Distribute(c, forestFor(c.Rank(), f))
			if err != nil {
				t.Error(err)
				return
			}
			s, err := New(c, forest, Config{Exchange: mode, SetupFlags: allFluid})
			if err != nil {
				t.Error(err)
				return
			}
			es := s.ExchangeStats()
			if es.RemoteSlabs <= es.NeighborRanks {
				t.Errorf("rank %d: %d remote slabs over %d neighbor ranks — scenario does not aggregate",
					c.Rank(), es.RemoteSlabs, es.NeighborRanks)
			}
			// Step (not Run) so no collectives pollute the send counters.
			for i := 0; i < warmup; i++ {
				if err := s.Step(); err != nil {
					t.Error(err)
					return
				}
			}
			c.ResetStats()
			for i := 0; i < measured; i++ {
				if err := s.Step(); err != nil {
					t.Error(err)
					return
				}
			}
			st := c.Stats()
			if want := int64(measured * es.MessagesPerStep); st.Sends != want {
				t.Errorf("rank %d mode %v: %d sends over %d steps, want %d",
					c.Rank(), mode, st.Sends, measured, want)
			}
			if mode == ExchangeAggregated {
				if es.MessagesPerStep != es.NeighborRanks {
					t.Errorf("rank %d: %d messages/step, want %d (one per neighbor rank)",
						c.Rank(), es.MessagesPerStep, es.NeighborRanks)
				}
				// Per-destination counters: every neighbor got exactly one
				// message per step, everyone else none.
				for dst, ps := range st.Peers {
					want := int64(0)
					for i := range s.channels {
						if s.channels[i].rank == dst {
							want = measured
						}
					}
					if ps.Sends != want {
						t.Errorf("rank %d: %d sends to rank %d, want %d", c.Rank(), ps.Sends, dst, want)
					}
				}
			} else if es.MessagesPerStep != es.RemoteSlabs {
				t.Errorf("rank %d: per-pair sends %d messages/step, want %d (one per slab)",
					c.Rank(), es.MessagesPerStep, es.RemoteSlabs)
			}
		})
	}
	run(ExchangeAggregated)
	run(ExchangePerPair)
}

// TestExchangeStatsVolumesMatch: aggregation batches messages but never
// changes the communicated payload volume.
func TestExchangeStatsVolumesMatch(t *testing.T) {
	f := blockforest.NewSetupForest(
		blockforest.NewAABB([3]float64{0, 0, 0}, [3]float64{1, 1, 1}),
		[3]int{4, 2, 1}, [3]int{4, 4, 4}, [3]bool{true, true, true})
	f.BalanceMorton(2)
	var mu sync.Mutex
	stats := make(map[ExchangeMode]ExchangeStats)
	for _, mode := range []ExchangeMode{ExchangeAggregated, ExchangePerPair} {
		comm.Run(2, func(c *comm.Comm) {
			forest, err := blockforest.Distribute(c, forestFor(c.Rank(), f))
			if err != nil {
				t.Error(err)
				return
			}
			s, err := New(c, forest, Config{Exchange: mode, SetupFlags: allFluid})
			if err != nil {
				t.Error(err)
				return
			}
			if c.Rank() == 0 {
				mu.Lock()
				stats[mode] = s.ExchangeStats()
				mu.Unlock()
			}
		})
	}
	a, p := stats[ExchangeAggregated], stats[ExchangePerPair]
	if a.SendFloats != p.SendFloats || a.RecvFloats != p.RecvFloats {
		t.Errorf("payload volumes differ: aggregated %d/%d vs per-pair %d/%d floats",
			a.SendFloats, a.RecvFloats, p.SendFloats, p.RecvFloats)
	}
	if a.RemoteSlabs != p.RemoteSlabs || a.LocalCopies != p.LocalCopies {
		t.Errorf("slab counts differ: aggregated %+v vs per-pair %+v", a, p)
	}
	if a.MessagesPerStep >= p.MessagesPerStep {
		t.Errorf("aggregation does not reduce messages: %d vs %d", a.MessagesPerStep, p.MessagesPerStep)
	}
}
