package sim

import (
	"sync"
	"sync/atomic"
)

// Intra-rank worker pool: the "hybrid" half of the paper's hybrid
// parallelization (MPI between ranks, OpenMP-style threading over a
// rank's blocks inside it). Per-block tasks — boundary handling, the
// fused stream-collide sweep, body forcing, ghost-layer pack/unpack —
// write disjoint state, so they run concurrently in any order and the
// results are bit-identical to a serial sweep; every order-sensitive
// reduction (phase timers, metrics) happens afterwards on the caller in
// deterministic block order.
//
// The pool is fork-join: run spawns its workers per parallel region and
// joins them before returning. Blocks self-schedule over an atomic
// cursor, so blocks of uneven cost (sparse vs dense fill) balance across
// workers like an OpenMP dynamic schedule. Forking per region keeps the
// pool free of lifecycle state — a Simulation needs no Close, and a
// region costs one goroutine spawn per worker, negligible next to a
// block sweep.
type workerPool struct {
	// workers is the number of concurrent workers a parallel region may
	// use; 1 executes inline (the serial baseline).
	workers int
}

// poolRun is the shared state of one parallel region. The task cursor is
// a read-modify-write hot spot hit by every worker on every task claim;
// padding it out to a full 64-byte cache line keeps those RMWs from
// false-sharing a line with the join state, which workers touch on the
// completion path.
type poolRun struct {
	cursor atomic.Int64
	_      [56]byte // cursor gets the cache line to itself

	wg       sync.WaitGroup
	panicked atomic.Pointer[any]
}

// run executes task(worker, i) for every i in [0, n), using up to
// p.workers goroutines, and returns when all tasks have finished. worker
// identifies the executing worker in [0, p.workers); within one region a
// worker id is owned by exactly one goroutine, so tasks may write
// worker-indexed state — telemetry span lanes in particular — without
// synchronization (the region's join happens-before the next region). The
// serial path runs every task as worker 0 on the caller. A panic in any
// task is re-raised on the caller after the join.
func (p workerPool) run(n int, task func(worker, i int)) {
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			task(0, i)
		}
		return
	}
	var st poolRun
	st.wg.Add(w)
	for k := 0; k < w; k++ {
		go func(worker int) {
			defer st.wg.Done()
			defer func() {
				if r := recover(); r != nil {
					st.panicked.CompareAndSwap(nil, &r)
				}
			}()
			for {
				i := int(st.cursor.Add(1)) - 1
				if i >= n {
					return
				}
				task(worker, i)
			}
		}(k)
	}
	st.wg.Wait()
	if r := st.panicked.Load(); r != nil {
		panic(*r)
	}
}
