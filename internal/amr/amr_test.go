package amr

import (
	"math"
	"sync"
	"testing"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/lattice"
)

// baseConfig is the shared refined-world test scenario: a periodic
// 4×2×2 root grid of 8³-cell blocks with a localized shear layer that
// drives the gradient criterion in the domain's left half.
func baseConfig(workers int, layout field.Layout) Config {
	return Config{
		Stencil:  lattice.D3Q19(),
		Grid:     [3]int{4, 2, 2},
		Cells:    [3]int{8, 8, 8},
		Periodic: [3]bool{true, true, true},
		Layout:   layout,
		Tau:      0.8,
		Workers:  workers,
		InitialState: func(x, y, z float64) (float64, float64, float64, float64) {
			// A narrow jet centered at x=8 (inside the left half of the
			// 32-cell-wide domain): |∂uy/∂x| peaks at 0.015 near the jet
			// and falls below 1e-4 past x=16, so with the hysteresis band
			// below, the controller refines a strict subset with clear
			// threshold margins on both sides.
			return 1.0, 0, 0.05 * math.Exp(-(x-8)*(x-8)/8), 0
		},
		Refinement: Refinement{
			MaxLevel:     2,
			Criterion:    CriterionGradient,
			RefineAbove:  0.008,
			CoarsenBelow: 0.001,
			Interval:     4,
		},
	}
}

// runRefined executes the scenario and returns the final field hash,
// the total coarse steps and the leaf count per level.
func runRefined(t *testing.T, ranks, steps int, cfg Config, opts comm.Options) (uint64, []int) {
	t.Helper()
	var mu sync.Mutex
	var hash uint64
	var levels []int
	comm.RunWithOptions(ranks, opts, func(c *comm.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.Run(steps); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		h, err := s.FieldHash()
		if err != nil {
			t.Errorf("rank %d: hash: %v", c.Rank(), err)
			return
		}
		mu.Lock()
		hash = h
		levels = s.LevelCounts()
		mu.Unlock()
	})
	if t.Failed() {
		t.FailNow()
	}
	return hash, levels
}

// TestRefinedRunProducesMixedLevels is the controller smoke test: the
// shear scenario must actually refine (a strict subset of the domain)
// and keep the forest 2:1 graded and volume-conserving.
func TestRefinedRunProducesMixedLevels(t *testing.T) {
	_, levels := runRefined(t, 2, 8, baseConfig(1, field.AoS), comm.Options{})
	if len(levels) < 2 {
		t.Fatalf("controller never refined: level counts %v", levels)
	}
	fine := 0
	for l := 1; l < len(levels); l++ {
		fine += levels[l]
	}
	if fine == 0 {
		t.Fatalf("no refined leaves: %v", levels)
	}
	if levels[0] == 0 {
		t.Fatalf("everything refined — criterion is not localized: %v", levels)
	}
	// Volume conservation: sum of 8^-level over leaves equals the root
	// tree count.
	vol := 0.0
	for l, n := range levels {
		vol += float64(n) / math.Pow(8, float64(l))
	}
	if math.Abs(vol-16) > 1e-9 {
		t.Fatalf("volume not conserved: %g root blocks from %v", vol, levels)
	}
}

// TestConstantStateInvariant checks the whole level machinery —
// exchange at level interfaces, interpolation, restriction, sub-step
// scheduling — on the one flow whose exact solution is known: a uniform
// equilibrium state must stay uniform on a mixed-level world to machine
// precision (trilinear weights sum to 1 and the non-equilibrium part is
// zero, so the only error is float64 round-off in the re-derived
// equilibrium).
func TestConstantStateInvariant(t *testing.T) {
	cfg := baseConfig(2, field.AoS)
	cfg.InitialState = nil
	cfg.InitialRho = 1
	cfg.Refinement.Interval = 0 // static forest; pre-refine explicitly
	comm.Run(2, func(c *comm.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		// Refine the left half twice: levels 0..2 coexist.
		for round := 0; round < 2; round++ {
			marks := map[blockforest.BlockID]blockforest.Mark{}
			for _, l := range s.Leaves() {
				if l.Idx[0] < s.cfg.Grid[0]<<uint(l.Level())/2 {
					marks[l.ID] = blockforest.MarkRefine
				}
			}
			if err := s.ApplyMarks(marks); err != nil {
				t.Error(err)
				return
			}
		}
		if s.MaxLevel() != 2 {
			t.Errorf("expected max level 2, got %d", s.MaxLevel())
			return
		}
		if err := s.Run(6); err != nil {
			t.Error(err)
			return
		}
		// Moments stay at rest to round-off on every cell of every leaf.
		C := s.cfg.Cells
		f := make([]float64, s.cfg.Stencil.Q)
		for _, b := range s.blocks {
			for z := 0; z < C[2]; z++ {
				for y := 0; y < C[1]; y++ {
					for x := 0; x < C[0]; x++ {
						for a := range f {
							f[a] = b.Src.Get(x, y, z, lattice.Direction(a))
						}
						rho, ux, uy, uz := s.cfg.Stencil.Moments(f)
						if math.Abs(rho-1) > 1e-12 ||
							math.Abs(ux) > 1e-12 || math.Abs(uy) > 1e-12 || math.Abs(uz) > 1e-12 {
							t.Errorf("leaf %v cell (%d,%d,%d) drifted: rho=%g u=(%g,%g,%g)",
								b.ID, x, y, z, rho, ux, uy, uz)
							return
						}
					}
				}
			}
		}
	})
}

// TestWorkerInvariance: the refined run is bit-identical for any
// intra-rank worker count.
func TestWorkerInvariance(t *testing.T) {
	want, wantLevels := runRefined(t, 2, 8, baseConfig(1, field.AoS), comm.Options{})
	for _, w := range []int{2, 4, 7} {
		got, gotLevels := runRefined(t, 2, 8, baseConfig(w, field.AoS), comm.Options{})
		if got != want {
			t.Errorf("workers=%d: hash %016x != serial %016x (levels %v vs %v)", w, got, want, gotLevels, wantLevels)
		}
	}
}

// TestRankInvariance: the refined run is bit-identical for any rank
// count — the forest order, grading and interpolation are all
// placement-independent.
func TestRankInvariance(t *testing.T) {
	want, _ := runRefined(t, 1, 8, baseConfig(1, field.AoS), comm.Options{})
	for _, ranks := range []int{2, 3, 4} {
		got, _ := runRefined(t, ranks, 8, baseConfig(2, field.AoS), comm.Options{})
		if got != want {
			t.Errorf("ranks=%d: hash %016x != single-rank %016x", ranks, got, want)
		}
	}
}

// TestLayoutInvariance: AoS and SoA runs (which select different kernel
// implementations) produce the same bits — the split SoA kernel is an
// exact reimplementation, and the hash reads cells layout-agnostically.
func TestLayoutInvariance(t *testing.T) {
	want, _ := runRefined(t, 2, 8, baseConfig(2, field.AoS), comm.Options{})
	got, _ := runRefined(t, 2, 8, baseConfig(2, field.SoA), comm.Options{})
	if got != want {
		t.Errorf("SoA hash %016x != AoS %016x", got, want)
	}
}

// TestTransportInvariance: the refined run over unix-domain sockets is
// bit-identical to the in-process run — migration and level-tagged
// exchange survive real serialization.
func TestTransportInvariance(t *testing.T) {
	want, _ := runRefined(t, 2, 8, baseConfig(2, field.AoS), comm.Options{})
	got, _ := runRefined(t, 2, 8, baseConfig(2, field.AoS), comm.Options{Net: &comm.NetOptions{Network: "unix"}})
	if got != want {
		t.Errorf("unix-socket hash %016x != in-process %016x", got, want)
	}
}

// TestRegradeStats: the controller reports splits/merges/migrations
// consistently with the observed forest.
func TestRegradeStats(t *testing.T) {
	comm.Run(2, func(c *comm.Comm) {
		s, err := New(c, baseConfig(1, field.AoS))
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.Run(8); err != nil {
			t.Error(err)
			return
		}
		st := s.GetStats()
		if st.Regrades == 0 {
			t.Error("no regrade passes recorded")
		}
		if st.Splits == 0 {
			t.Error("no splits recorded despite refinement")
		}
		// NumLeaves = roots + 7 per net split octet.
		roots := 16
		net := (st.Splits - st.Merges) / 8 * 7
		if got := s.NumLeaves(); got != roots+net {
			t.Errorf("leaf accounting: %d leaves, expected %d (splits=%d merges=%d)",
				got, roots+net, st.Splits, st.Merges)
		}
	})
}

// TestUniformMatchesLevelZero: with refinement disabled the AMR driver
// must advance exactly like a uniform world — one sweep per block per
// step — and keep a single level.
func TestUniformMatchesLevelZero(t *testing.T) {
	cfg := baseConfig(2, field.AoS)
	cfg.Refinement = Refinement{}
	h1, levels := runRefined(t, 2, 6, cfg, comm.Options{})
	if len(levels) != 1 || levels[0] != 16 {
		t.Fatalf("uniform run refined: %v", levels)
	}
	h2, _ := runRefined(t, 2, 6, cfg, comm.Options{})
	if h1 != h2 {
		t.Fatalf("uniform AMR run not reproducible: %016x vs %016x", h1, h2)
	}
}
