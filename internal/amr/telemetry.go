package amr

import (
	"walberla/internal/telemetry"
)

// amrTel bundles the pre-resolved telemetry handles of one rank. All
// handles are nil-safe, so an untraced simulation pays one branch per
// recording site.
type amrTel struct {
	tracer *telemetry.Tracer
	driver *telemetry.Lane

	steps    *telemetry.Counter
	regrades *telemetry.Counter
	splits   *telemetry.Counter
	merges   *telemetry.Counter
	migrated *telemetry.Counter

	leaves   *telemetry.Gauge
	maxLevel *telemetry.Gauge
	cells    *telemetry.Gauge

	regradeNs *telemetry.Counter
	migrateNs *telemetry.Counter

	// Per-level phase times, pre-resolved for the full level range.
	sweepNs    [9]*telemetry.Counter
	exchangeNs [9]*telemetry.Counter
}

func resolveAMRTel(tr *telemetry.Tracer, reg *telemetry.Registry) amrTel {
	t := amrTel{
		tracer:    tr,
		driver:    tr.Driver(),
		steps:     reg.Counter("amr.steps"),
		regrades:  reg.Counter("amr.regrades"),
		splits:    reg.Counter("amr.blocks_split"),
		merges:    reg.Counter("amr.blocks_merged"),
		migrated:  reg.Counter("amr.blocks_migrated"),
		leaves:    reg.Gauge("amr.leaves"),
		maxLevel:  reg.Gauge("amr.max_level"),
		cells:     reg.Gauge("amr.cells"),
		regradeNs: reg.Counter("amr.regrade_ns"),
		migrateNs: reg.Counter("amr.migrate_ns"),
	}
	names := [9]string{"0", "1", "2", "3", "4", "5", "6", "7", "8"}
	for l := range t.sweepNs {
		t.sweepNs[l] = reg.Counter("amr.level" + names[l] + ".sweep_ns")
		t.exchangeNs[l] = reg.Counter("amr.level" + names[l] + ".exchange_ns")
	}
	return t
}

// publishGauges refreshes the forest-shape gauges after construction
// and every re-grade.
func (s *Sim) publishGauges() {
	s.tel.leaves.Set(float64(len(s.leaves)))
	s.tel.maxLevel.Set(float64(s.maxLevel))
	s.tel.cells.Set(float64(s.TotalCells()))
}
