package amr

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/output"
)

// Level-aware checkpoint sets. The directory protocol is the same as
// the uniform simulation's (set-<step> directories, per-rank files, a
// CRC-carrying manifest, atomic rename commit), but the rank files use
// the WBK2 leaf encoding: each record carries the full leaf identity
// (tree, octree path, level, coordinates) alongside both PDF fields, so
// a restore rebuilds the *forest topology of the checkpointed step* —
// which later re-grades may since have changed — not just the field
// contents. Replay from a restored set is bit-identical because
// stepping, the refinement controller and the balancer are all
// deterministic functions of the restored state.

// ckptStatus is the coordination payload broadcast by rank 0 when a
// checkpoint set is opened and closed.
type ckptStatus struct {
	Err    string
	Skip   bool
	Total  int64
	Commit bool
}

// WriteCheckpointSet writes a coordinated checkpoint set for the given
// coarse step: every rank snapshots all of its leaves (both PDF fields)
// into a per-rank WBK2 file, rank 0 gathers sizes and CRC32Cs into the
// manifest, and the set directory is renamed into place atomically.
// Returns the bytes this rank wrote (0 if the set already existed).
func (s *Sim) WriteCheckpointSet(dir string, step int) (int64, error) {
	c := s.Comm
	final := filepath.Join(dir, output.SetDirName(step))
	tmp := filepath.Join(dir, output.TmpSetDirName(step))

	var open ckptStatus
	if c.Rank() == 0 {
		if _, err := os.Stat(final); err == nil {
			open.Skip = true
		} else {
			os.RemoveAll(tmp)
			if err := os.MkdirAll(tmp, 0o755); err != nil {
				open.Err = err.Error()
			}
		}
	}
	v, err := c.BcastErr(0, open)
	if err != nil {
		return 0, err
	}
	open = v.(ckptStatus)
	if open.Err != "" {
		return 0, fmt.Errorf("amr: opening checkpoint set %d: %s", step, open.Err)
	}
	if open.Skip {
		return 0, nil
	}

	type contribution struct {
		Entry output.ManifestEntry
		Err   string
	}
	var contrib contribution
	contrib.Entry.Name = output.RankFileName(c.Rank())
	snaps := s.leafSnapshots()
	if f, err := os.Create(filepath.Join(tmp, contrib.Entry.Name)); err != nil {
		contrib.Err = err.Error()
	} else {
		size, crc, werr := output.WriteLeafFile(f, snaps)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			contrib.Err = werr.Error()
		}
		contrib.Entry.Size, contrib.Entry.CRC = size, crc
	}

	gathered, err := c.GatherErr(0, contrib)
	if err != nil {
		return 0, err
	}

	var closeSt ckptStatus
	if c.Rank() == 0 {
		m := &output.SetManifest{Step: int64(step), Ranks: int32(c.Size())}
		for r, g := range gathered {
			gc := g.(contribution)
			if gc.Err != "" && closeSt.Err == "" {
				closeSt.Err = fmt.Sprintf("rank %d: %s", r, gc.Err)
			}
			m.Entries = append(m.Entries, gc.Entry)
			closeSt.Total += gc.Entry.Size
		}
		if closeSt.Err == "" {
			if err := writeManifestFile(filepath.Join(tmp, output.ManifestName), m); err != nil {
				closeSt.Err = err.Error()
			} else if err := os.Rename(tmp, final); err != nil {
				closeSt.Err = err.Error()
			} else {
				closeSt.Commit = true
			}
		}
		if closeSt.Err != "" {
			os.RemoveAll(tmp)
		}
	}
	v, err = c.BcastErr(0, closeSt)
	if err != nil {
		return 0, err
	}
	closeSt = v.(ckptStatus)
	if closeSt.Err != "" {
		return 0, fmt.Errorf("amr: committing checkpoint set %d: %s", step, closeSt.Err)
	}
	return contrib.Entry.Size, nil
}

func writeManifestFile(path string, m *output.SetManifest) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := output.WriteManifest(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// leafSnapshots converts the owned blocks into WBK2 records.
func (s *Sim) leafSnapshots() []output.LeafSnapshot {
	snaps := make([]output.LeafSnapshot, len(s.blocks))
	for i, b := range s.blocks {
		snaps[i] = output.LeafSnapshot{
			Tree: b.ID.Tree, Path: b.ID.Path, Level: b.ID.Level,
			Coord: b.Coord, Src: b.Src, Dst: b.Dst,
		}
	}
	return snaps
}

// RestoreLatestCheckpointSet rewinds the simulation to the newest
// checkpoint set every rank can load and CRC-validate, voting unusable
// sets down collectively. The restored forest topology replaces the
// current one entirely (re-grades between the checkpoint and the
// failure are undone together with the field state). With no usable
// set, the world rewinds to the initial uniform forest. Returns the
// restored coarse step.
func (s *Sim) RestoreLatestCheckpointSet(dir string) (int64, error) {
	c := s.Comm

	var candidates []int64
	if c.Rank() == 0 {
		candidates = output.ListValidSets(dir)
		s.recoveryDiskReads++
	}
	v, err := c.BcastErr(0, candidates)
	if err != nil {
		return 0, err
	}
	if v != nil {
		candidates = v.([]int64)
	}

	for _, step := range candidates {
		setDir := filepath.Join(dir, output.SetDirName(int(step)))
		blocks, loadErr := s.loadRankLeafFile(setDir, c.Rank(), c.Size(), c.Rank())
		ok := int64(1)
		if loadErr != nil {
			ok = 0
		}
		agree, err := c.AllreduceInt64Err(ok, comm.Min[int64])
		if err != nil {
			return 0, err
		}
		if agree == 0 {
			continue // some rank cannot use this set; try the next older one
		}
		if err := s.installRestored(blocks, int(step)); err != nil {
			return 0, err
		}
		return step, nil
	}

	// No usable checkpoint: rewind to the initial uniform forest.
	if err := s.buildInitialForest(); err != nil {
		return 0, err
	}
	s.step = 0
	return 0, nil
}

// loadRankLeafFile reads and fully validates one rank's WBK2 file of a
// set (manifest CRC and size, per-record CRCs) and builds runtime
// blocks owned by newRank. wantRanks is the world size the set must
// have been written by; fileRank names the rank file inside the set.
func (s *Sim) loadRankLeafFile(setDir string, fileRank, wantRanks, newRank int) ([]*Block, error) {
	s.recoveryDiskReads++
	m, err := output.ValidateSetDir(setDir)
	if err != nil {
		return nil, err
	}
	if int(m.Ranks) != wantRanks {
		return nil, fmt.Errorf("amr: checkpoint set %s was written by %d ranks, need %d",
			setDir, m.Ranks, wantRanks)
	}
	name := output.RankFileName(fileRank)
	var entry *output.ManifestEntry
	for i := range m.Entries {
		if m.Entries[i].Name == name {
			entry = &m.Entries[i]
			break
		}
	}
	if entry == nil {
		return nil, fmt.Errorf("amr: checkpoint set %s has no file for rank %d", setDir, fileRank)
	}
	f, err := os.Open(filepath.Join(setDir, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	snaps, crc, err := output.ReadLeafFileStored(f, s.cfg.Stencil)
	if err != nil {
		return nil, err
	}
	if crc != entry.CRC {
		return nil, fmt.Errorf("amr: rank file %s CRC %08x does not match manifest %08x", name, crc, entry.CRC)
	}
	return s.blocksFromSnapshots(snaps, newRank)
}

// blocksFromSnapshots turns decoded WBK2 records into runtime blocks
// owned by the given rank, converting layouts and regenerating flag
// fields from the pure config function.
func (s *Sim) blocksFromSnapshots(snaps []output.LeafSnapshot, rank int) ([]*Block, error) {
	C := s.cfg.Cells
	blocks := make([]*Block, 0, len(snaps))
	for _, sn := range snaps {
		for _, pf := range []*fieldShape{{sn.Src.Nx, sn.Src.Ny, sn.Src.Nz}, {sn.Dst.Nx, sn.Dst.Ny, sn.Dst.Nz}} {
			if pf.nx != C[0] || pf.ny != C[1] || pf.nz != C[2] {
				return nil, fmt.Errorf("amr: snapshot leaf %d/%d shape mismatch", sn.Tree, sn.Path)
			}
		}
		bl := blockforest.Leaf{
			ID:    blockforest.BlockID{Tree: sn.Tree, Path: sn.Path, Level: sn.Level},
			Coord: sn.Coord,
			Rank:  rank,
		}
		b := &Block{Leaf: leafFrom(bl), Src: s.ensureLayout(sn.Src), Dst: s.ensureLayout(sn.Dst)}
		s.attachFlags(b)
		blocks = append(blocks, b)
	}
	return blocks, nil
}

type fieldShape struct{ nx, ny, nz int }

// installRestored commits a restored local block set: the global forest
// is rebuilt by allgathering every rank's restored leaf descriptors, so
// topology recovery needs no side channel — the rank files themselves
// carry the forest. Collective over s.Comm.
func (s *Sim) installRestored(blocks []*Block, step int) error {
	type leafDesc struct {
		Tree  uint32
		Path  uint64
		Level uint8
		Coord [3]int
	}
	local := make([]leafDesc, len(blocks))
	for i, b := range blocks {
		local[i] = leafDesc{Tree: b.ID.Tree, Path: b.ID.Path, Level: b.ID.Level, Coord: b.Coord}
	}
	gathered, err := s.Comm.AllgatherErr(local)
	if err != nil {
		return err
	}
	var all []blockforest.Leaf
	for r, g := range gathered {
		for _, d := range g.([]leafDesc) {
			all = append(all, blockforest.Leaf{
				ID:    blockforest.BlockID{Tree: d.Tree, Path: d.Path, Level: d.Level},
				Coord: d.Coord,
				Rank:  r,
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		ki, kj := blockforest.MortonKey(all[i].Coord), blockforest.MortonKey(all[j].Coord)
		if ki != kj {
			return ki < kj
		}
		return all[i].ID.Less(all[j].ID)
	})
	if err := blockforest.CheckGraded(all, s.cfg.Grid, s.cfg.Periodic); err != nil {
		return fmt.Errorf("amr: restored forest is not 2:1 graded: %w", err)
	}
	s.setLeaves(all)
	s.blocks = nil
	s.byID = nil
	for _, b := range blocks {
		b.Rank = s.Comm.Rank()
		s.addBlock(b)
	}
	s.sortBlocks()
	if err := s.rebuildKernels(); err != nil {
		return err
	}
	s.rebuildPlan()
	s.step = step
	return nil
}
