package amr

import (
	"fmt"

	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/lattice"
)

// Level-aware ghost exchange. The plan is rebuilt from the replicated
// leaf list after construction, every re-grade and every recovery; both
// ends of a message enumerate the same global metadata in the same
// canonical order, so the per-(rank, level) message manifests agree by
// construction and no negotiation round trip is needed (the PR 3
// aggregation idea, extended by one level dimension).
//
// All payloads are produced at receiver resolution on the sender
// ("sender-side resampling"): a coarse sender interpolates to the fine
// ghost cells — trilinear in space and, on the second sub-step of the
// parent interval, linear in time between the parent's pre- and
// post-sweep states (see step.go) — a fine sender restricts 2×2×2
// groups to coarse ghost cells, and same-level senders pack interior
// slabs. The receiver-side unpack is therefore always a uniform slab
// write, and a rank sends exactly one message per neighbor rank per
// level per sub-step.

// tagExchange is the base tag of level-tagged exchange windows; level ℓ
// uses tagExchange+ℓ. Kept far above the migration/buddy tags.
const tagExchange = 1<<28 + 0

// phaseSync marks an exchange outside the timestepping cycle (after
// construction, migration or restore): all levels share one time, so
// coarse→fine transfers read the sender's current state (Src) directly.
const phaseSync = -1

type opKind uint8

const (
	opSame opKind = iota
	opFromCoarse
	opFromFine
)

// region is a half-open cell box in receiver-local coordinates
// (ghost cells at -1 and C).
type region struct {
	lo, hi [3]int
}

func (r region) vol() int {
	return (r.hi[0] - r.lo[0]) * (r.hi[1] - r.lo[1]) * (r.hi[2] - r.lo[2])
}

// recvRegion is the ghost slab of one offset.
func recvRegion(C, o [3]int) region {
	var r region
	for d := 0; d < 3; d++ {
		switch o[d] {
		case 1:
			r.lo[d], r.hi[d] = C[d], C[d]+1
		case -1:
			r.lo[d], r.hi[d] = -1, 0
		default:
			r.lo[d], r.hi[d] = 0, C[d]
		}
	}
	return r
}

// xop is one ghost transfer: sender leaf → receiver leaf ghost region.
type xop struct {
	kind opKind
	recv int // leaf index
	send int // leaf index
	dst  region
	// base translates receiver coordinates into the sender's frame:
	//   same:       sender cell      = p + base
	//   fromCoarse: sender fine cell = p + base      (2× subdivision)
	//   fromFine:   sender cell      = 2p + t + base (t ∈ {0,1}³)
	base [3]int
	dirs []lattice.Direction
}

func (op *xop) floats() int { return len(op.dirs) * op.dst.vol() }

// channel aggregates the ops of one (peer rank, receiver level) pair
// into a single message per direction, with double-buffered persistent
// send buffers (the receive side unpacks straight from the delivered
// slice, zero-copy on the in-process transport).
type channel struct {
	peer    int // comm rank
	level   int
	sendOps []int
	recvOps []int
	sendLen int
	recvLen int
	sendBuf [2][]float64
	parity  int
	req     comm.RecvRequest
}

type plan struct {
	ops          []xop
	localByLevel [][]int
	chByLevel    [][]*channel
}

// dirsInto returns the directions streaming from the ghost slab at
// offset o into the interior: every velocity whose component opposes o
// on each offset axis.
func dirsInto(st *lattice.Stencil, o [3]int) []lattice.Direction {
	var dirs []lattice.Direction
	for a := 0; a < st.Q; a++ {
		if (o[0] == 0 || st.Cx[a] == -o[0]) &&
			(o[1] == 0 || st.Cy[a] == -o[1]) &&
			(o[2] == 0 || st.Cz[a] == -o[2]) {
			dirs = append(dirs, lattice.Direction(a))
		}
	}
	return dirs
}

// rebuildPlan derives the exchange plan of this rank from the global
// leaf list. Deterministic: every rank enumerating the same metadata
// produces the same op order, so paired channels agree on their
// manifests.
func (s *Sim) rebuildPlan() {
	st := s.cfg.Stencil
	C := s.cfg.Cells
	me := s.Comm.Rank()

	var dirTable [27][]lattice.Direction
	offAt := func(i int) [3]int { return [3]int{i%3 - 1, i / 3 % 3 - 1, i / 9 - 1} }
	for i := 0; i < 27; i++ {
		if o := offAt(i); o != [3]int{} {
			dirTable[i] = dirsInto(st, o)
		}
	}

	p := &plan{
		localByLevel: make([][]int, s.maxLevel+1),
		chByLevel:    make([][]*channel, s.maxLevel+1),
	}
	chans := map[[2]int]*channel{} // (peer, level)
	getChan := func(peer, level int) *channel {
		k := [2]int{peer, level}
		ch := chans[k]
		if ch == nil {
			ch = &channel{peer: peer, level: level}
			chans[k] = ch
			p.chByLevel[level] = append(p.chByLevel[level], ch)
		}
		return ch
	}
	addOp := func(op xop) {
		sr, rr := s.leaves[op.send].Rank, s.leaves[op.recv].Rank
		if sr != me && rr != me {
			return
		}
		i := len(p.ops)
		p.ops = append(p.ops, op)
		lv := s.leaves[op.recv].Level()
		switch {
		case sr == me && rr == me:
			p.localByLevel[lv] = append(p.localByLevel[lv], i)
		case rr == me:
			ch := getChan(sr, lv)
			ch.recvOps = append(ch.recvOps, i)
			ch.recvLen += op.floats()
		default:
			ch := getChan(rr, lv)
			ch.sendOps = append(ch.sendOps, i)
			ch.sendLen += op.floats()
		}
	}

	for ri := range s.leaves {
		r := &s.leaves[ri]
		lv := r.Level()
		for oi := 0; oi < 27; oi++ {
			o := offAt(oi)
			if o == ([3]int{}) {
				continue
			}
			u := [3]int{r.Idx[0] + o[0], r.Idx[1] + o[1], r.Idx[2] + o[2]}
			n, ok := s.wrapIdx(lv, u)
			if !ok {
				continue // domain boundary: handled by boundary conditions
			}
			dirs := dirTable[oi]
			if si, ok := s.leafAt(lv, n); ok {
				addOp(xop{kind: opSame, recv: ri, send: si,
					dst:  recvRegion(C, o),
					base: [3]int{-o[0] * C[0], -o[1] * C[1], -o[2] * C[2]},
					dirs: dirs})
				continue
			}
			if lv > 0 {
				cn := [3]int{n[0] >> 1, n[1] >> 1, n[2] >> 1}
				if si, ok := s.leafAt(lv-1, cn); ok {
					// The sender's fine frame origin, unwrapped, is the
					// parent region of u (level grids above 0 have even
					// extents, so wrapping preserves child parity).
					base := [3]int{}
					for d := 0; d < 3; d++ {
						base[d] = r.Idx[d]*C[d] - floorDiv2(u[d])*2*C[d]
					}
					addOp(xop{kind: opFromCoarse, recv: ri, send: si,
						dst: recvRegion(C, o), base: base, dirs: dirs})
					continue
				}
			}
			// Finer senders: by 2:1 balance the region is covered by up
			// to four level lv+1 children adjacent to the receiver.
			full := recvRegion(C, o)
			for b := 0; b < 8; b++ {
				bits := [3]int{b & 1, b >> 1 & 1, b >> 2 & 1}
				fit := true
				for d := 0; d < 3; d++ {
					if o[d] == 1 && bits[d] != 0 || o[d] == -1 && bits[d] != 1 {
						fit = false
						break
					}
				}
				if !fit {
					continue
				}
				child := [3]int{2*n[0] + bits[0], 2*n[1] + bits[1], 2*n[2] + bits[2]}
				si, ok := s.leafAt(lv+1, child)
				if !ok {
					panic(fmt.Sprintf("amr: 2:1 balance broken at level %d region %v", lv, n))
				}
				dst := full
				base := [3]int{}
				for d := 0; d < 3; d++ {
					if o[d] == 0 {
						dst.lo[d] = bits[d] * C[d] / 2
						dst.hi[d] = (bits[d] + 1) * C[d] / 2
					}
					uc := 2*u[d] + bits[d]
					base[d] = 2*r.Idx[d]*C[d] - uc*C[d]
				}
				addOp(xop{kind: opFromFine, recv: ri, send: si, dst: dst, base: base, dirs: dirs})
			}
		}
	}
	for _, chs := range p.chByLevel {
		for _, ch := range chs {
			if ch.sendLen > 0 {
				ch.sendBuf[0] = make([]float64, ch.sendLen)
				ch.sendBuf[1] = make([]float64, ch.sendLen)
			}
		}
	}
	s.plan = p
	s.blocksByLevel = make([][]*Block, s.maxLevel+1)
	for _, b := range s.blocks {
		s.blocksByLevel[b.Level()] = append(s.blocksByLevel[b.Level()], b)
	}
	s.publishGauges()
}

// sampleCoarseAt gathers the coarse sender's PDF vector at fine cell F
// at the receiving sub-step's start time. During the cycle the parent
// has already swept, so its pre-sweep state sits in Dst and its
// post-sweep state in Src: phase 0 (first half of the parent interval)
// reads the pre-sweep state, phase 1 the midpoint average ½(Dst+Src) —
// linear temporal interpolation. phaseSync reads the current state.
func (s *Sim) sampleCoarseAt(sb *Block, F [3]int, phase int, sc *interpScratch) {
	switch phase {
	case phaseSync:
		s.sampleCoarse(sb.Src, F, sc.f)
	case 0:
		s.sampleCoarse(sb.Dst, F, sc.f)
	default:
		s.sampleCoarse(sb.Dst, F, sc.f)
		s.sampleCoarse(sb.Src, F, sc.f2)
		for a := range sc.f {
			sc.f[a] = 0.5 * (sc.f[a] + sc.f2[a])
		}
	}
}

// packOp writes one op's payload at receiver resolution into buf
// (dir-major, then z, y, x — the PackRegion/UnpackRegion order).
func (s *Sim) packOp(op *xop, buf []float64, phase int, sc *interpScratch) {
	sb := s.byID[s.leaves[op.send].ID]
	switch op.kind {
	case opSame:
		srcLo := [3]int{op.dst.lo[0] + op.base[0], op.dst.lo[1] + op.base[1], op.dst.lo[2] + op.base[2]}
		srcHi := [3]int{op.dst.hi[0] + op.base[0], op.dst.hi[1] + op.base[1], op.dst.hi[2] + op.base[2]}
		sb.Src.PackRegion(buf, srcLo, srcHi, op.dirs)
	case opFromCoarse:
		lam := s.lambdaToFine(s.leaves[op.recv].Level())
		vol := op.dst.vol()
		ci := 0
		for z := op.dst.lo[2]; z < op.dst.hi[2]; z++ {
			for y := op.dst.lo[1]; y < op.dst.hi[1]; y++ {
				for x := op.dst.lo[0]; x < op.dst.hi[0]; x++ {
					F := [3]int{x + op.base[0], y + op.base[1], z + op.base[2]}
					s.sampleCoarseAt(sb, F, phase, sc)
					s.rescaleNeq(sc.f, lam, sc)
					for di, a := range op.dirs {
						buf[di*vol+ci] = sc.f[a]
					}
					ci++
				}
			}
		}
	case opFromFine:
		lam := s.lambdaToCoarse(s.leaves[op.send].Level())
		vol := op.dst.vol()
		ci := 0
		for z := op.dst.lo[2]; z < op.dst.hi[2]; z++ {
			for y := op.dst.lo[1]; y < op.dst.hi[1]; y++ {
				for x := op.dst.lo[0]; x < op.dst.hi[0]; x++ {
					F := [3]int{2*x + op.base[0], 2*y + op.base[1], 2*z + op.base[2]}
					restrictFine(sb.Src, F, sc.f)
					s.rescaleNeq(sc.f, lam, sc)
					for di, a := range op.dirs {
						buf[di*vol+ci] = sc.f[a]
					}
					ci++
				}
			}
		}
	}
}

// applyLocal computes one same-rank op directly into the receiver's
// ghost cells (identical arithmetic to the wire path, minus the copy).
func (s *Sim) applyLocal(op *xop, phase int, sc *interpScratch) {
	rb := s.byID[s.leaves[op.recv].ID]
	sb := s.byID[s.leaves[op.send].ID]
	switch op.kind {
	case opSame:
		srcLo := [3]int{op.dst.lo[0] + op.base[0], op.dst.lo[1] + op.base[1], op.dst.lo[2] + op.base[2]}
		srcHi := [3]int{op.dst.hi[0] + op.base[0], op.dst.hi[1] + op.base[1], op.dst.hi[2] + op.base[2]}
		field.CopyRegion(rb.Src, op.dst.lo, sb.Src, srcLo, srcHi, op.dirs)
	case opFromCoarse:
		lam := s.lambdaToFine(s.leaves[op.recv].Level())
		for z := op.dst.lo[2]; z < op.dst.hi[2]; z++ {
			for y := op.dst.lo[1]; y < op.dst.hi[1]; y++ {
				for x := op.dst.lo[0]; x < op.dst.hi[0]; x++ {
					F := [3]int{x + op.base[0], y + op.base[1], z + op.base[2]}
					s.sampleCoarseAt(sb, F, phase, sc)
					s.rescaleNeq(sc.f, lam, sc)
					for _, a := range op.dirs {
						rb.Src.Set(x, y, z, a, sc.f[a])
					}
				}
			}
		}
	case opFromFine:
		lam := s.lambdaToCoarse(s.leaves[op.send].Level())
		for z := op.dst.lo[2]; z < op.dst.hi[2]; z++ {
			for y := op.dst.lo[1]; y < op.dst.hi[1]; y++ {
				for x := op.dst.lo[0]; x < op.dst.hi[0]; x++ {
					F := [3]int{2*x + op.base[0], 2*y + op.base[1], 2*z + op.base[2]}
					restrictFine(sb.Src, F, sc.f)
					s.rescaleNeq(sc.f, lam, sc)
					for _, a := range op.dirs {
						rb.Src.Set(x, y, z, a, sc.f[a])
					}
				}
			}
		}
	}
}

// exchangeLevel refreshes the ghost layers of all level-ℓ receivers:
// one aggregated message per neighbor rank, local transfers on the
// worker pool. phase selects the temporal interpolation of
// coarse→fine transfers (see sampleCoarseAt).
func (s *Sim) exchangeLevel(level, phase int) error {
	p := s.plan
	chs := p.chByLevel[level]
	tag := tagExchange + level

	for _, ch := range chs {
		if ch.recvLen > 0 {
			s.Comm.IrecvInit(&ch.req, ch.peer, tag)
		}
	}
	for _, ch := range chs {
		if ch.sendLen == 0 {
			continue
		}
		buf := ch.sendBuf[ch.parity]
		off := 0
		for _, oi := range ch.sendOps {
			op := &p.ops[oi]
			n := op.floats()
			s.packOp(op, buf[off:off+n], phase, &s.scratch[0])
			off += n
		}
		if err := s.Comm.SendFloat64s(ch.peer, tag, buf); err != nil {
			return fmt.Errorf("amr: exchange send to %d level %d: %w", ch.peer, level, err)
		}
		ch.parity ^= 1
	}
	local := p.localByLevel[level]
	s.pool.run(len(local), func(worker, i int) {
		s.applyLocal(&p.ops[local[i]], phase, &s.scratch[worker])
	})
	for _, ch := range chs {
		if ch.recvLen == 0 {
			continue
		}
		data, _, err := ch.req.WaitFloat64s()
		if err != nil {
			return fmt.Errorf("amr: exchange recv from %d level %d: %w", ch.peer, level, err)
		}
		if len(data) != ch.recvLen {
			return fmt.Errorf("amr: exchange recv from %d level %d: got %d floats, want %d",
				ch.peer, level, len(data), ch.recvLen)
		}
		off := 0
		for _, oi := range ch.recvOps {
			op := &p.ops[oi]
			n := op.floats()
			rb := s.byID[s.leaves[op.recv].ID]
			rb.Src.UnpackRegion(data[off:off+n], op.dst.lo, op.dst.hi, op.dirs)
			off += n
		}
	}
	return nil
}

// syncAllLevels refreshes every ghost layer once (after construction,
// migration or restore).
func (s *Sim) syncAllLevels() error {
	for l := 0; l <= s.maxLevel; l++ {
		if err := s.exchangeLevel(l, phaseSync); err != nil {
			return err
		}
	}
	return nil
}
