package amr

import (
	"fmt"
	"sort"

	"walberla/internal/blockforest"
	"walberla/internal/boundary"
	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/kernels"
	"walberla/internal/lattice"
)

// Block is one locally owned leaf with its simulation state.
type Block struct {
	Leaf
	Src, Dst *field.PDFField
	// Flags is non-nil only for blocks with boundary cells; dense fluid
	// blocks take the flag-free kernel fast path.
	Flags    *field.FlagField
	Boundary *boundary.Sweep
}

// lkey addresses a block region by level and level-grid index.
type lkey struct {
	level int
	idx   [3]int
}

// Sim is a distributed AMR simulation. Every rank holds the full
// (lightweight) leaf list, so re-grade and balancing decisions are
// computed identically everywhere without collective negotiation; the
// heavyweight state — PDF fields — lives only on the owning rank.
type Sim struct {
	Comm *comm.Comm
	cfg  Config

	leaves   []Leaf       // canonical forest order, all ranks
	byKey    map[lkey]int // (level, idx) → position in leaves
	maxLevel int          // deepest level currently present

	blocks        []*Block // owned leaves, canonical order
	byID          map[blockforest.BlockID]*Block
	blocksByLevel [][]*Block

	kernels []kernels.Kernel // per level, 0..maxLevel
	pool    workerPool
	plan    *plan

	step  int // coarse steps completed
	tel   amrTel
	stats Stats

	buddy *buddyState
	// recoveryDiskReads counts disk accesses on recovery paths, backing
	// the zero-disk assertion of shrink recovery.
	recoveryDiskReads int64

	// scratch is per-worker interpolation scratch (Q-vector pairs).
	scratch []interpScratch
}

// Stats accumulates AMR bookkeeping of one rank since construction.
type Stats struct {
	Regrades   int
	Splits     int // leaves created by refinement (global)
	Merges     int // leaves removed by coarsening (global)
	Migrated   int // leaves that changed rank (global)
	RegradeNs  int64
	MigrateNs  int64
	SweepNs    [9]int64 // per level
	ExchangeNs [9]int64 // per level
}

// New builds an AMR simulation on the communicator: a uniform level-0
// forest with one leaf per root grid cell, Morton-distributed across
// ranks. The refinement controller (if enabled) first runs before
// step 1 of Run.
func New(c *comm.Comm, cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{Comm: c, cfg: cfg}
	s.tel = resolveAMRTel(cfg.Tracer, cfg.Metrics)
	s.pool.workers = cfg.workers()
	s.scratch = make([]interpScratch, cfg.workers())
	for i := range s.scratch {
		s.scratch[i] = newInterpScratch(cfg.Stencil.Q)
	}

	if err := s.buildInitialForest(); err != nil {
		return nil, err
	}
	return s, nil
}

// buildInitialForest (re)installs the uniform level-0 forest with the
// configured initial condition: one leaf per root grid cell in canonical
// (Morton) order, contiguously assigned. Also the rewind target when no
// usable checkpoint set exists.
func (s *Sim) buildInitialForest() error {
	var roots []blockforest.Leaf
	for z := 0; z < s.cfg.Grid[2]; z++ {
		for y := 0; y < s.cfg.Grid[1]; y++ {
			for x := 0; x < s.cfg.Grid[0]; x++ {
				coord := [3]int{x, y, z}
				roots = append(roots, blockforest.Leaf{
					ID:    blockforest.BlockID{Tree: s.treeOf(coord)},
					Coord: coord,
				})
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		ki, kj := blockforest.MortonKey(roots[i].Coord), blockforest.MortonKey(roots[j].Coord)
		if ki != kj {
			return ki < kj
		}
		return roots[i].ID.Less(roots[j].ID)
	})
	weights := make([]float64, len(roots))
	for i := range weights {
		weights[i] = 1
	}
	for i, r := range blockforest.AssignContiguous(weights, s.Comm.Size()) {
		roots[i].Rank = r
	}
	s.setLeaves(roots)
	s.blocks = nil
	s.byID = nil
	for _, l := range s.leaves {
		if l.Rank != s.Comm.Rank() {
			continue
		}
		s.addBlock(s.newBlock(l, true))
	}
	s.sortBlocks()
	if err := s.rebuildKernels(); err != nil {
		return err
	}
	s.rebuildPlan()
	return nil
}

// treeOf returns the root tree index of a grid coordinate (the same
// numbering as blockforest.SetupForest).
func (s *Sim) treeOf(c [3]int) uint32 {
	return uint32((c[2]*s.cfg.Grid[1]+c[1])*s.cfg.Grid[0] + c[0])
}

// setLeaves installs a new global leaf list (already in canonical
// order) and rebuilds the level index.
func (s *Sim) setLeaves(bls []blockforest.Leaf) {
	s.leaves = make([]Leaf, len(bls))
	s.byKey = make(map[lkey]int, len(bls))
	s.maxLevel = 0
	for i, bl := range bls {
		l := leafFrom(bl)
		s.leaves[i] = l
		s.byKey[lkey{level: l.Level(), idx: l.Idx}] = i
		if l.Level() > s.maxLevel {
			s.maxLevel = l.Level()
		}
	}
}

// bfLeaves converts the global leaf list back to blockforest form.
func (s *Sim) bfLeaves() []blockforest.Leaf {
	out := make([]blockforest.Leaf, len(s.leaves))
	for i, l := range s.leaves {
		out[i] = blockforest.Leaf{ID: l.ID, Coord: l.Coord, Rank: l.Rank}
	}
	return out
}

// newBlock allocates the state of one owned leaf. init fills the
// initial condition; migration paths pass init=false and install
// transferred fields instead.
func (s *Sim) newBlock(l Leaf, init bool) *Block {
	C := s.cfg.Cells
	b := &Block{Leaf: l}
	b.Src = field.NewPDFField(s.cfg.Stencil, C[0], C[1], C[2], 1, s.cfg.Layout)
	b.Dst = field.NewPDFField(s.cfg.Stencil, C[0], C[1], C[2], 1, s.cfg.Layout)
	if init {
		s.initBlockState(b)
	}
	s.attachFlags(b)
	return b
}

// initBlockState fills the initial condition of one block.
func (s *Sim) initBlockState(b *Block) {
	rho := s.cfg.InitialRho
	if rho == 0 {
		rho = 1
	}
	v := s.cfg.InitialVelocity
	b.Src.FillEquilibrium(rho, v[0], v[1], v[2])
	b.Dst.FillEquilibrium(rho, v[0], v[1], v[2])
	if s.cfg.InitialState == nil {
		return
	}
	// Physical positions in level-0 lattice units: level ℓ has cell
	// size 2^-ℓ.
	h := 1.0 / float64(int(1)<<uint(b.Level()))
	C := s.cfg.Cells
	feq := make([]float64, s.cfg.Stencil.Q)
	for z := 0; z < C[2]; z++ {
		for y := 0; y < C[1]; y++ {
			for x := 0; x < C[0]; x++ {
				px := (float64(b.Idx[0]*C[0]+x) + 0.5) * h
				py := (float64(b.Idx[1]*C[1]+y) + 0.5) * h
				pz := (float64(b.Idx[2]*C[2]+z) + 0.5) * h
				r, ux, uy, uz := s.cfg.InitialState(px, py, pz)
				s.cfg.Stencil.Equilibrium(feq, r, ux, uy, uz)
				for a, fv := range feq {
					b.Src.Set(x, y, z, lattice.Direction(a), fv)
					b.Dst.Set(x, y, z, lattice.Direction(a), fv)
				}
			}
		}
	}
}

// attachFlags regenerates the block's flag field and boundary sweep
// from the pure config function (nil flags for dense fluid blocks).
func (s *Sim) attachFlags(b *Block) {
	b.Flags, b.Boundary = nil, nil
	if s.cfg.Flags == nil {
		return
	}
	fl := s.cfg.Flags(b.Leaf, s.cfg.Grid, s.cfg.Cells)
	if fl == nil {
		return
	}
	sw := boundary.NewSweep(s.cfg.Stencil, fl, s.cfg.Boundary)
	ns, v, p := sw.Links()
	boundaryCells := ns+v+p > 0
	allFluid := fl.Count(field.Fluid) == fl.Nx*fl.Ny*fl.Nz
	if !boundaryCells && allFluid {
		return // dense fast path
	}
	b.Flags = fl
	if boundaryCells {
		b.Boundary = sw
	}
}

// addBlock registers an owned block.
func (s *Sim) addBlock(b *Block) {
	if s.byID == nil {
		s.byID = make(map[blockforest.BlockID]*Block)
	}
	s.blocks = append(s.blocks, b)
	s.byID[b.ID] = b
}

// sortBlocks restores canonical order after additions.
func (s *Sim) sortBlocks() {
	sort.Slice(s.blocks, func(i, j int) bool {
		ki, kj := blockforest.MortonKey(s.blocks[i].Coord), blockforest.MortonKey(s.blocks[j].Coord)
		if ki != kj {
			return ki < kj
		}
		return s.blocks[i].ID.Less(s.blocks[j].ID)
	})
}

// rebuildKernels instantiates the per-level collision kernels for the
// current depth.
func (s *Sim) rebuildKernels() error {
	s.kernels = make([]kernels.Kernel, s.maxLevel+1)
	for l := 0; l <= s.maxLevel; l++ {
		spec, err := s.cfg.kernelSpec(l)
		if err != nil {
			return err
		}
		k, err := kernels.New(spec)
		if err != nil {
			return fmt.Errorf("amr: level %d kernel: %w", l, err)
		}
		s.kernels[l] = k
	}
	return nil
}

// Step returns the number of completed coarse steps.
func (s *Sim) Steps() int { return s.step }

// MaxLevel returns the deepest refinement level currently present.
func (s *Sim) MaxLevel() int { return s.maxLevel }

// NumLeaves returns the global leaf count.
func (s *Sim) NumLeaves() int { return len(s.leaves) }

// Leaves returns a copy of the global leaf list in canonical order.
func (s *Sim) Leaves() []Leaf { return append([]Leaf(nil), s.leaves...) }

// OwnedBlocks returns this rank's blocks in canonical order. The slice
// is a copy; the blocks are live state — read-only for callers.
func (s *Sim) OwnedBlocks() []*Block { return append([]*Block(nil), s.blocks...) }

// TotalCells returns the global cell count of the current forest.
func (s *Sim) TotalCells() int64 {
	per := int64(s.cfg.Cells[0]) * int64(s.cfg.Cells[1]) * int64(s.cfg.Cells[2])
	return per * int64(len(s.leaves))
}

// LevelCounts returns the number of leaves per level.
func (s *Sim) LevelCounts() []int {
	counts := make([]int, s.maxLevel+1)
	for _, l := range s.leaves {
		counts[l.Level()]++
	}
	return counts
}

// GetStats returns the accumulated AMR statistics of this rank.
func (s *Sim) GetStats() Stats { return s.stats }

// levelExtent returns the level-ℓ block grid extent.
func (s *Sim) levelExtent(level int) [3]int {
	return [3]int{
		s.cfg.Grid[0] << uint(level),
		s.cfg.Grid[1] << uint(level),
		s.cfg.Grid[2] << uint(level),
	}
}

// wrapIdx wraps an unwrapped level index into the periodic domain; ok
// is false outside a non-periodic boundary.
func (s *Sim) wrapIdx(level int, idx [3]int) (w [3]int, ok bool) {
	ext := s.levelExtent(level)
	for d := 0; d < 3; d++ {
		w[d] = idx[d]
		if w[d] < 0 || w[d] >= ext[d] {
			if !s.cfg.Periodic[d] {
				return w, false
			}
			w[d] = ((w[d] % ext[d]) + ext[d]) % ext[d]
		}
	}
	return w, true
}

// leafAt looks up the leaf covering a level-grid region at exactly the
// given level.
func (s *Sim) leafAt(level int, idx [3]int) (int, bool) {
	i, ok := s.byKey[lkey{level: level, idx: idx}]
	return i, ok
}

// floorDiv2 is floor(a/2) for possibly negative a.
func floorDiv2(a int) int {
	if a < 0 {
		return -((-a + 1) / 2)
	}
	return a / 2
}
