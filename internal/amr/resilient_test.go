package amr

import (
	"errors"
	"sync"
	"testing"
	"time"

	"walberla/internal/comm"
	"walberla/internal/field"
)

// TestCheckpointRestoreRoundTrip: a mixed-level world checkpointed
// mid-run is rebuilt — forest topology included — by a fresh Sim that
// never saw the re-grades, and the restored state hashes identically.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := baseConfig(2, field.AoS)
	var mu sync.Mutex
	var wantHash uint64
	var wantLevels []int
	comm.Run(2, func(c *comm.Comm) {
		s, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.Run(5); err != nil {
			t.Error(err)
			return
		}
		if _, err := s.WriteCheckpointSet(dir, 5); err != nil {
			t.Error(err)
			return
		}
		h, err := s.FieldHash()
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		wantHash, wantLevels = h, s.LevelCounts()
		mu.Unlock()

		// A fresh simulation restores the set: step, forest and bits.
		r, err := New(c, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		step, err := r.RestoreLatestCheckpointSet(dir)
		if err != nil {
			t.Error(err)
			return
		}
		if step != 5 || r.Steps() != 5 {
			t.Errorf("restored step %d (Steps %d), want 5", step, r.Steps())
		}
		rh, err := r.FieldHash()
		if err != nil {
			t.Error(err)
			return
		}
		if rh != wantHash {
			t.Errorf("restored hash %016x != checkpointed %016x", rh, wantHash)
		}
		rl := r.LevelCounts()
		if len(rl) != len(wantLevels) {
			t.Errorf("restored levels %v != %v", rl, wantLevels)
		} else {
			for i := range rl {
				if rl[i] != wantLevels[i] {
					t.Errorf("restored levels %v != %v", rl, wantLevels)
					break
				}
			}
		}
	})
}

// TestResilientRewindBitIdentical is the rewind acceptance test on a
// refined world: with a rank crash injected at EVERY step and periodic
// level-aware checkpointing, the run must finish bit-identical to the
// fault-free reference — re-grades and migrations between checkpoint
// and crash are undone and replayed deterministically.
func TestResilientRewindBitIdentical(t *testing.T) {
	const steps = 8
	want, wantLevels := runRefined(t, 2, steps, baseConfig(1, field.AoS), comm.Options{})

	var crashes []comm.CrashSpec
	for st := 1; st < steps; st++ {
		crashes = append(crashes, comm.CrashSpec{Rank: st % 2, Step: st})
	}
	dir := t.TempDir()
	var mu sync.Mutex
	var got uint64
	var gotLevels []int
	var recovered []RecoveryStats
	comm.RunWithOptions(2, comm.Options{Faults: &comm.FaultPlan{Seed: 7, Crashes: crashes}}, func(c *comm.Comm) {
		s, err := New(c, baseConfig(1, field.AoS))
		if err != nil {
			t.Error(err)
			return
		}
		rec, err := s.RunResilient(steps, ResilienceConfig{
			CheckpointEvery: 2,
			Dir:             dir,
			Mode:            RecoverRewind,
			MaxFailures:     2 * steps,
			BackoffBase:     time.Millisecond,
			BackoffMax:      10 * time.Millisecond,
		})
		if err != nil {
			t.Errorf("rank %d: RunResilient: %v", c.Rank(), err)
			return
		}
		h, err := s.FieldHash()
		if err != nil {
			t.Errorf("rank %d: hash: %v", c.Rank(), err)
			return
		}
		mu.Lock()
		got, gotLevels = h, s.LevelCounts()
		recovered = append(recovered, rec)
		mu.Unlock()
	})
	if t.Failed() {
		t.Fatal("resilient run failed")
	}
	if got != want {
		t.Fatalf("resilient hash %016x != reference %016x (levels %v vs %v)", got, want, gotLevels, wantLevels)
	}
	for _, r := range recovered {
		if r.FailuresDetected == 0 || r.Restores == 0 {
			t.Errorf("no recovery activity recorded: %+v", r)
		}
		if r.CheckpointsWritten == 0 || r.CheckpointBytes == 0 {
			t.Errorf("no checkpoint activity recorded: %+v", r)
		}
		if r.StepsReplayed == 0 {
			t.Errorf("no steps replayed despite crashes at every step: %+v", r)
		}
	}
}

// TestShrinkRecoveryZeroDiskReads: a mixed-level world under
// RecoverShrink loses one rank; the survivors adopt its leaves from the
// in-memory buddy replica, rebuild the forest on the shrunk
// communicator, and finish bit-identical to the fault-free run —
// without a single disk read during recovery.
func TestShrinkRecoveryZeroDiskReads(t *testing.T) {
	const steps, victim = 8, 1
	want, _ := runRefined(t, 2, steps, baseConfig(1, field.AoS), comm.Options{})

	opts := comm.Options{Faults: &comm.FaultPlan{Seed: 11, Crashes: []comm.CrashSpec{{Rank: victim, Step: 5}}}}
	var mu sync.Mutex
	var got uint64
	var recovered []RecoveryStats
	retired := 0
	comm.RunWithOptions(3, opts, func(c *comm.Comm) {
		s, err := New(c, baseConfig(1, field.AoS))
		if err != nil {
			t.Error(err)
			return
		}
		rec, err := s.RunResilient(steps, ResilienceConfig{
			CheckpointEvery: 2,
			Mode:            RecoverShrink,
			MaxFailures:     4,
			BackoffBase:     time.Millisecond,
			BackoffMax:      10 * time.Millisecond,
		})
		if errors.Is(err, ErrRetired) {
			if c.Rank() != victim {
				t.Errorf("rank %d retired, expected only rank %d to", c.Rank(), victim)
			}
			mu.Lock()
			retired++
			mu.Unlock()
			return
		}
		if err != nil {
			t.Errorf("rank %d: RunResilient: %v", c.Rank(), err)
			return
		}
		h, err := s.FieldHash()
		if err != nil {
			t.Errorf("rank %d: hash: %v", c.Rank(), err)
			return
		}
		mu.Lock()
		got = h
		recovered = append(recovered, rec)
		mu.Unlock()
	})
	if t.Failed() {
		t.Fatal("shrink run failed")
	}
	if retired != 1 {
		t.Fatalf("%d ranks retired, want exactly 1", retired)
	}
	if len(recovered) != 2 {
		t.Fatalf("%d survivors reported, want 2", len(recovered))
	}
	if got != want {
		t.Fatalf("post-shrink hash %016x != fault-free reference %016x", got, want)
	}
	adopted := 0
	for _, r := range recovered {
		if r.Shrinks != 1 {
			t.Errorf("survivor saw %d shrinks, want 1: %+v", r.Shrinks, r)
		}
		if r.BuddyRestores != 1 || r.DiskRestores != 0 {
			t.Errorf("recovery was not served from the buddy replica: %+v", r)
		}
		if r.DiskReadsDuringRecovery != 0 {
			t.Errorf("pure in-memory recovery performed %d disk reads, want 0: %+v", r.DiskReadsDuringRecovery, r)
		}
		if r.Replications == 0 || r.ReplicaBytes == 0 {
			t.Errorf("no replication activity recorded: %+v", r)
		}
		adopted += r.LeavesAdopted
	}
	if adopted == 0 {
		t.Error("no survivor adopted the dead rank's leaves")
	}
}

// TestResilienceConfigValidate rejects malformed configurations.
func TestResilienceConfigValidate(t *testing.T) {
	bad := []ResilienceConfig{
		{Mode: RecoveryMode(7)},
		{CheckpointEvery: -1},
	}
	for _, rc := range bad {
		if err := rc.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", rc)
		}
	}
	rc := ResilienceConfig{MaxFailures: -1}
	if err := rc.Validate(); err != nil {
		t.Fatal(err)
	}
	if rc.MaxFailures != 8 || rc.BackoffBase == 0 || rc.BackoffMax == 0 {
		t.Errorf("defaults not applied: %+v", rc)
	}
}
