// Package amr implements runtime adaptive mesh refinement for the
// lattice Boltzmann framework: level-wise recursive timestepping on a
// 2:1-balanced block octree (the non-uniform-grids algorithm of
// Schornbaum & Rüde, arXiv:1508.07982), a runtime refine/coarsen
// controller driven by a flow criterion, and dynamic load balancing
// with block migration over the wire on every re-grade.
//
// A level-ℓ block halves the cell size of its parent, so under acoustic
// scaling it advances 2^ℓ sub-steps per coarse step with relaxation
// time τ_ℓ = 1/2 + 2^ℓ(τ₀ − 1/2). Level interfaces exchange ghost
// layers with sender-side resampling: a coarse owner interpolates its
// PDFs trilinearly to the fine receiver's ghost resolution, a fine
// owner averages aligned 2×2×2 cell groups down to a coarse receiver,
// and both rescale the non-equilibrium part per relaxation parity by
// the post-collision (τ_p − 1)Δt ratio of the two levels (see
// interp.go), so every wire payload lands as a uniform slab on the
// receiving side. See docs/AMR.md for the full scheme.
package amr

import (
	"fmt"
	"strings"

	"walberla/internal/blockforest"
	"walberla/internal/boundary"
	"walberla/internal/collide"
	"walberla/internal/field"
	"walberla/internal/kernels"
	"walberla/internal/lattice"
	"walberla/internal/telemetry"
)

// maxRefineLevel is the deepest refinement level the per-level stats
// and telemetry arrays are sized for.
const maxRefineLevel = 8

// Criterion selects the flow feature driving the refine/coarsen
// controller.
type Criterion string

const (
	// CriterionGradient refines where the velocity-gradient magnitude
	// (Frobenius norm of the finite-difference Jacobian, in physical
	// units) is large.
	CriterionGradient Criterion = "gradient"
	// CriterionVorticity refines where the vorticity magnitude |∇×u|
	// (in physical units) is large.
	CriterionVorticity Criterion = "vorticity"
)

// Refinement configures the runtime refine/coarsen controller.
type Refinement struct {
	// MaxLevel caps the refinement depth; 0 disables refinement.
	MaxLevel int
	// Criterion is the flow feature evaluated per block.
	Criterion Criterion
	// RefineAbove and CoarsenBelow are the hysteresis band: a block
	// whose criterion exceeds RefineAbove is marked for refinement, one
	// below CoarsenBelow votes to coarsen, and the gap between them
	// keeps blocks from oscillating across the thresholds.
	RefineAbove  float64
	CoarsenBelow float64
	// Interval is the number of coarse steps between controller passes;
	// a pass also runs before the first step so the initial condition
	// is already resolved. 0 keeps the forest static.
	Interval int
}

// FlagsFunc builds the flag field of one leaf, ghost layer included. It
// must be a pure function of the leaf identity — migration and recovery
// regenerate flags at the destination instead of shipping them.
type FlagsFunc func(leaf Leaf, grid, cells [3]int) *field.FlagField

// Config describes an AMR simulation.
type Config struct {
	Stencil  *lattice.Stencil
	Grid     [3]int // root blocks per axis
	Cells    [3]int // cells per block per axis (even when MaxLevel > 0)
	Periodic [3]bool

	// Choice selects the collision kernel family; per-level kernels are
	// instantiated from it with the level's relaxation time. Zero value
	// picks the D3Q19 TRT kernel in the configured layout. Sparse
	// kernels are not supported.
	Choice kernels.Choice
	Layout field.Layout
	// Tau is the coarse-grid (level 0) relaxation time.
	Tau   float64
	Magic float64

	Workers int

	InitialRho      float64
	InitialVelocity [3]float64
	// InitialState, if non-nil, initializes cells from their physical
	// position (level-0 lattice units, domain [0, Grid·Cells)) and
	// overrides InitialRho/InitialVelocity.
	InitialState func(x, y, z float64) (rho, ux, uy, uz float64)

	// Flags marks boundary cells per leaf; nil means fully periodic
	// fluid. Boundary is the macroscopic boundary data — under acoustic
	// scaling lattice velocities are level-invariant, so one config
	// serves all levels.
	Flags    FlagsFunc
	Boundary boundary.Config

	Refinement Refinement

	Tracer  *telemetry.Tracer
	Metrics *telemetry.Registry
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Stencil == nil {
		return fmt.Errorf("amr: nil stencil")
	}
	if c.Stencil.Q != 19 {
		return fmt.Errorf("amr: only the D3Q19 stencil is supported, got Q=%d", c.Stencil.Q)
	}
	for d := 0; d < 3; d++ {
		if c.Grid[d] <= 0 {
			return fmt.Errorf("amr: grid size %v must be positive", c.Grid)
		}
		if c.Cells[d] < 4 {
			return fmt.Errorf("amr: cells per block %v must be at least 4", c.Cells)
		}
		if c.Refinement.MaxLevel > 0 && c.Cells[d]%2 != 0 {
			return fmt.Errorf("amr: cells per block %v must be even with refinement (2:1 interface alignment)", c.Cells)
		}
	}
	if c.Tau <= 0.5 {
		return fmt.Errorf("amr: tau %g must exceed 0.5", c.Tau)
	}
	r := &c.Refinement
	if r.MaxLevel < 0 || r.MaxLevel > maxRefineLevel {
		return fmt.Errorf("amr: max level %d out of range [0,8]", r.MaxLevel)
	}
	if r.Interval < 0 {
		return fmt.Errorf("amr: refinement interval %d must not be negative", r.Interval)
	}
	if r.Interval > 0 {
		switch r.Criterion {
		case CriterionGradient, CriterionVorticity:
		default:
			return fmt.Errorf("amr: unknown criterion %q", r.Criterion)
		}
		if r.RefineAbove <= 0 {
			return fmt.Errorf("amr: refine_above %g must be positive", r.RefineAbove)
		}
		if r.CoarsenBelow < 0 || r.CoarsenBelow >= r.RefineAbove {
			return fmt.Errorf("amr: coarsen_below %g must be in [0, refine_above)", r.CoarsenBelow)
		}
	}
	if _, err := c.kernelSpec(0); err != nil {
		return err
	}
	return nil
}

// tauAt returns the relaxation time of level l under acoustic scaling:
// both dx and dt halve per level, so ν = c_s²(τ−1/2)dt requires
// τ_ℓ − 1/2 = 2^ℓ(τ₀ − 1/2).
func (c *Config) tauAt(l int) float64 {
	return 0.5 + float64(int(1)<<uint(l))*(c.Tau-0.5)
}

// tauOddAt returns the relaxation time of the odd (antisymmetric)
// population parity at level l. The TRT kernels tie it to the even one
// through the magic parameter, Λ = (τ⁺−1/2)(τ⁻−1/2), so τ⁻ does NOT
// follow the 2^ℓ acoustic scaling of τ⁺ — interface rescaling of the
// odd non-equilibrium part must use the τ⁻ ratio, not the τ⁺ ratio.
// SRT relaxes both parities with τ.
func (c *Config) tauOddAt(l int) float64 {
	if strings.HasPrefix(string(c.resolvedChoice()), "SRT") {
		return c.tauAt(l)
	}
	magic := c.Magic
	if magic == 0 {
		magic = collide.MagicParameter
	}
	return 0.5 + magic/(c.tauAt(l)-0.5)
}

// resolvedChoice is the kernel family after defaulting.
func (c *Config) resolvedChoice() kernels.Choice {
	if c.Choice != "" {
		return c.Choice
	}
	if c.Layout == field.SoA {
		return kernels.ChoiceSplitTRT
	}
	return kernels.ChoiceD3Q19TRT
}

// kernelSpec builds the collision kernel spec of one level.
func (c *Config) kernelSpec(l int) (kernels.Spec, error) {
	choice := c.resolvedChoice()
	if choice == kernels.ChoiceSparse {
		return kernels.Spec{}, fmt.Errorf("amr: sparse kernels are not supported")
	}
	return kernels.Spec{Choice: choice, Stencil: c.Stencil, Tau: c.tauAt(l), Magic: c.Magic}, nil
}

// workers resolves the pool size.
func (c *Config) workers() int {
	if c.Workers <= 0 {
		return 1
	}
	return c.Workers
}

// Leaf is one octree leaf of the AMR forest, replicated on every rank:
// identity, level-grid index and owning rank. Level ℓ subdivides every
// root block into 2^ℓ per axis, so Idx addresses the leaf on a grid of
// Grid·2^ℓ blocks.
type Leaf struct {
	ID    blockforest.BlockID
	Coord [3]int // root-tree grid coordinate
	Idx   [3]int // index on the level's block grid
	Rank  int
}

// Level returns the leaf's refinement level.
func (l Leaf) Level() int { return int(l.ID.Level) }

// leafFrom derives the full runtime descriptor from a blockforest leaf.
func leafFrom(bl blockforest.Leaf) Leaf {
	return Leaf{ID: bl.ID, Coord: bl.Coord, Idx: blockforest.LevelIndex(bl.Coord, bl.ID), Rank: bl.Rank}
}
