package amr

import (
	"math"

	"walberla/internal/field"
	"walberla/internal/lattice"
)

// Level-interface PDF transfer. Three operators share the same
// arithmetic so ghost exchange, block splitting and block merging stay
// mutually consistent:
//
//   - sampleCoarse: trilinear interpolation of a coarse field at a fine
//     cell center, sampling clamped to the sender's interior so the
//     result never depends on the sender's ghost state (and therefore
//     not on the block distribution);
//   - restrictFine: average of an aligned 2×2×2 fine cell group;
//   - rescaleNeq: rescaling of the non-equilibrium part, applied per
//     relaxation parity: f = f_eq + λ⁺ n⁺ + λ⁻ n⁻ with n± the even/odd
//     halves of f − f_eq over opposite direction pairs.
//
// The λ factors are the post-collision (Filippova–Hänel) ones,
//
//	λ_p,toFine = (τ_p,fine − 1) / (2 (τ_p,coarse − 1)),
//
// and the reciprocal going coarser, because the sweep kernels are fused
// stream-collide pulls: the stored state every exchange and migration
// reads is POST-collision, whose non-equilibrium part per parity p is
// (1 − 1/τ_p) n_pre with n_pre ≈ −τ_p Δt (∂_t + c·∇) f_eq, i.e.
// n_post ∝ (τ_p − 1) Δt. Two consequences worth spelling out:
//
//   - the pre-collision Dupuis–Chopard factor τ_f/(2 τ_c) is WRONG for
//     this data — with τ_c < 1 < τ_f it does not even have the right
//     sign, and the mis-scaled ghost stress acts as a persistent
//     momentum-flux defect at every interface (a linear shear profile
//     is then not a fixed point and visibly flattens near interfaces);
//   - each parity needs its own τ: under TRT the odd relaxation time
//     follows the magic-parameter constraint Λ = (τ⁺−½)(τ⁻−½), not the
//     acoustic 2^ℓ scaling of τ⁺ (SRT relaxes both parities with τ).
//
// At τ_p,src = 1 the source's post-collision non-equilibrium vanishes
// identically and carries no information; the factor degrades to 0
// (equilibrium transfer) instead of dividing by zero.
//
// All loops run in a fixed order with no reductions, so every operator
// is bitwise deterministic.

// interpScratch is the per-worker scratch of the transfer operators.
// f2 holds the second time level of a temporally interpolated
// coarse→fine sample (see exchange.go sampleCoarseAt).
type interpScratch struct {
	f   []float64
	f2  []float64
	feq []float64
	neq []float64
}

func newInterpScratch(q int) interpScratch {
	return interpScratch{
		f: make([]float64, q), f2: make([]float64, q),
		feq: make([]float64, q), neq: make([]float64, q),
	}
}

// lambdaPair carries the per-parity non-equilibrium scale factors of
// one transfer direction.
type lambdaPair struct {
	even, odd float64
}

// rescaleNeq rescales the non-equilibrium part of f in place, each
// direction parity by its own factor.
func (s *Sim) rescaleNeq(f []float64, lam lambdaPair, sc *interpScratch) {
	st := s.cfg.Stencil
	rho, ux, uy, uz := st.Moments(f)
	st.Equilibrium(sc.feq, rho, ux, uy, uz)
	for a := range f {
		sc.neq[a] = f[a] - sc.feq[a]
	}
	for a := range f {
		ab := int(st.Inv[a])
		p := 0.5 * (sc.neq[a] + sc.neq[ab])
		m := 0.5 * (sc.neq[a] - sc.neq[ab])
		f[a] = sc.feq[a] + lam.even*p + lam.odd*m
	}
}

// postNeqRatio is the post-collision non-equilibrium scale factor for a
// src → dst transfer of one parity: (τ_dst − 1) Δt_dst over
// (τ_src − 1) Δt_src with dtRatio = Δt_dst/Δt_src. Zero when the source
// relaxes at τ = 1 (its post-collision non-equilibrium is identically
// zero, so there is nothing to rescale).
func postNeqRatio(tauDst, tauSrc, dtRatio float64) float64 {
	d := tauSrc - 1
	if math.Abs(d) < 1e-12 {
		return 0
	}
	return dtRatio * (tauDst - 1) / d
}

// lambdaToFine is the non-equilibrium scale pair for coarse(src) →
// fine(dst) transfer between adjacent levels.
func (s *Sim) lambdaToFine(fineLevel int) lambdaPair {
	return lambdaPair{
		even: postNeqRatio(s.cfg.tauAt(fineLevel), s.cfg.tauAt(fineLevel-1), 0.5),
		odd:  postNeqRatio(s.cfg.tauOddAt(fineLevel), s.cfg.tauOddAt(fineLevel-1), 0.5),
	}
}

// lambdaToCoarse is the inverse pair for fine(src) → coarse(dst).
func (s *Sim) lambdaToCoarse(fineLevel int) lambdaPair {
	return lambdaPair{
		even: postNeqRatio(s.cfg.tauAt(fineLevel-1), s.cfg.tauAt(fineLevel), 2),
		odd:  postNeqRatio(s.cfg.tauOddAt(fineLevel-1), s.cfg.tauOddAt(fineLevel), 2),
	}
}

// sampleCoarse gathers the full PDF vector of a coarse field at the
// center of fine cell F of the sender's 2× subdivision (F in units of
// half the coarse cell size, possibly outside [0, 2C) for ghost
// targets). Only interior values are read: positions beyond the edge
// cell centers — every interface-adjacent fine ghost cell lands 0.25
// coarse cells past the last center — extrapolate linearly from the
// two nearest interior centers. Clamping onto the edge center instead
// would shift those samples by a quarter cell toward the block
// interior, a first-order bias that pumps momentum across every
// coarse→fine interface sitting in a gradient.
func (s *Sim) sampleCoarse(src *field.PDFField, F [3]int, out []float64) {
	C := s.cfg.Cells
	var i0, i1 [3]int
	var w1 [3]float64
	for d := 0; d < 3; d++ {
		q := (float64(F[d]) + 0.5) / 2.0
		q -= 0.5 // cell-center coordinates
		lo := int(math.Floor(q))
		if lo > C[d]-2 {
			lo = C[d] - 2
		}
		if lo < 0 {
			lo = 0
		}
		i0[d], i1[d] = lo, lo+1
		if i1[d] > C[d]-1 {
			i1[d] = C[d] - 1
		}
		w1[d] = q - float64(lo)
	}
	w0 := [3]float64{1 - w1[0], 1 - w1[1], 1 - w1[2]}
	for a := range out {
		v := 0.0
		v += w0[2] * (w0[1]*(w0[0]*src.Get(i0[0], i0[1], i0[2], lattice.Direction(a))+w1[0]*src.Get(i1[0], i0[1], i0[2], lattice.Direction(a))) +
			w1[1]*(w0[0]*src.Get(i0[0], i1[1], i0[2], lattice.Direction(a))+w1[0]*src.Get(i1[0], i1[1], i0[2], lattice.Direction(a))))
		v += w1[2] * (w0[1]*(w0[0]*src.Get(i0[0], i0[1], i1[2], lattice.Direction(a))+w1[0]*src.Get(i1[0], i0[1], i1[2], lattice.Direction(a))) +
			w1[1]*(w0[0]*src.Get(i0[0], i1[1], i1[2], lattice.Direction(a))+w1[0]*src.Get(i1[0], i1[1], i1[2], lattice.Direction(a))))
		out[a] = v
	}
}

// restrictFine averages the aligned 2×2×2 fine cell group with origin
// F (fine interior coordinates; the group never straddles blocks
// because cells per block is even).
func restrictFine(src *field.PDFField, F [3]int, out []float64) {
	for a := range out {
		v := 0.0
		for bz := 0; bz < 2; bz++ {
			for by := 0; by < 2; by++ {
				for bx := 0; bx < 2; bx++ {
					v += src.Get(F[0]+bx, F[1]+by, F[2]+bz, lattice.Direction(a))
				}
			}
		}
		out[a] = v * 0.125
	}
}

// prolongBlock fills a child field from its parent: child octant oct of
// the parent's 2× subdivision, interior cells only, with non-equilibrium
// rescaling for the finer level.
func (s *Sim) prolongBlock(parent *field.PDFField, oct int, fineLevel int, child *field.PDFField, sc *interpScratch) {
	C := s.cfg.Cells
	lam := s.lambdaToFine(fineLevel)
	org := [3]int{(oct & 1) * C[0], (oct >> 1 & 1) * C[1], (oct >> 2 & 1) * C[2]}
	for z := 0; z < C[2]; z++ {
		for y := 0; y < C[1]; y++ {
			for x := 0; x < C[0]; x++ {
				F := [3]int{org[0] + x, org[1] + y, org[2] + z}
				s.sampleCoarse(parent, F, sc.f)
				s.rescaleNeq(sc.f, lam, sc)
				for a, v := range sc.f {
					child.Set(x, y, z, lattice.Direction(a), v)
				}
			}
		}
	}
}

// restrictBlock fills one octant of a parent field from a child:
// interior cells only, with non-equilibrium rescaling for the coarser
// level.
func (s *Sim) restrictBlock(child *field.PDFField, oct int, fineLevel int, parent *field.PDFField, sc *interpScratch) {
	C := s.cfg.Cells
	lam := s.lambdaToCoarse(fineLevel)
	half := [3]int{C[0] / 2, C[1] / 2, C[2] / 2}
	org := [3]int{(oct & 1) * half[0], (oct >> 1 & 1) * half[1], (oct >> 2 & 1) * half[2]}
	for z := 0; z < half[2]; z++ {
		for y := 0; y < half[1]; y++ {
			for x := 0; x < half[0]; x++ {
				restrictFine(child, [3]int{2 * x, 2 * y, 2 * z}, sc.f)
				s.rescaleNeq(sc.f, lam, sc)
				for a, v := range sc.f {
					parent.Set(org[0]+x, org[1]+y, org[2]+z, lattice.Direction(a), v)
				}
			}
		}
	}
}
