package amr

import (
	"fmt"
	"math"
	"sort"

	"walberla/internal/field"
	"walberla/internal/lattice"
)

// FieldHash folds every interior PDF value of every leaf into one
// FNV-1a hash, identical on all ranks. Leaves are hashed locally, the
// digests gathered on rank 0, sorted by the full leaf identity (forest
// order is placement-independent) and folded with level metadata, so
// equal hashes mean bit-identical refined worlds regardless of rank
// count, worker count, transport or layout.
func (s *Sim) FieldHash() (uint64, error) {
	type leafHash struct {
		Tree  uint32
		Path  uint64
		Level uint8
		Coord [3]int
		Hash  uint64
	}
	local := make([]leafHash, 0, len(s.blocks))
	for _, b := range s.blocks {
		local = append(local, leafHash{
			Tree: b.ID.Tree, Path: b.ID.Path, Level: b.ID.Level,
			Coord: b.Coord, Hash: hashInterior(b.Src),
		})
	}
	gathered, err := s.Comm.GatherErr(0, local)
	if err != nil {
		return 0, err
	}
	var h uint64
	if s.Comm.Rank() == 0 {
		var all []leafHash
		for _, g := range gathered {
			all = append(all, g.([]leafHash)...)
		}
		sort.Slice(all, func(i, j int) bool {
			a, b := all[i], all[j]
			if a.Tree != b.Tree {
				return a.Tree < b.Tree
			}
			if a.Level != b.Level {
				return a.Level < b.Level
			}
			return a.Path < b.Path
		})
		h = fnvOffset
		for _, lh := range all {
			h = fnvMix(h, uint64(lh.Tree))
			h = fnvMix(h, lh.Path)
			h = fnvMix(h, uint64(lh.Level))
			for _, c := range lh.Coord {
				h = fnvMix(h, uint64(int64(c)))
			}
			h = fnvMix(h, lh.Hash)
		}
	}
	v, err := s.Comm.BcastErr(0, h)
	if err != nil {
		return 0, err
	}
	hv, ok := v.(uint64)
	if !ok {
		return 0, fmt.Errorf("amr: field hash broadcast returned %T", v)
	}
	return hv, nil
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// hashInterior hashes the interior cells of a field in layout-agnostic
// (z, y, x, direction) order.
func hashInterior(f *field.PDFField) uint64 {
	h := uint64(fnvOffset)
	for z := 0; z < f.Nz; z++ {
		for y := 0; y < f.Ny; y++ {
			for x := 0; x < f.Nx; x++ {
				for a := 0; a < f.Stencil.Q; a++ {
					h = fnvMix(h, math.Float64bits(f.Get(x, y, z, lattice.Direction(a))))
				}
			}
		}
	}
	return h
}
