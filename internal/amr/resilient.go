package amr

import (
	"context"
	"errors"
	"fmt"
	"time"

	"walberla/internal/comm"
	"walberla/internal/telemetry"
)

// Resilient execution for refined worlds: coordinated WBK2 checkpoint
// sets plus automatic rewind-and-replay (RecoverRewind), or in-memory
// buddy replication with shrinking recovery (RecoverShrink). Because
// stepping, the refinement controller and the balancer are all
// deterministic, a recovered run finishes bit-identical to an
// uninterrupted one. Heal (re-growing the world onto a spare rank) is
// not supported for refined worlds; use the uniform simulation's driver
// when healing is required.

// RecoveryMode selects how RunResilient repairs the world after a
// permanent rank failure.
type RecoveryMode int

const (
	// RecoverRewind keeps the world intact: every rank backs off,
	// rendezvouses and rewinds from the newest valid disk checkpoint
	// set — re-grades since the checkpoint are undone and replayed.
	RecoverRewind RecoveryMode = iota
	// RecoverShrink drops the failed rank: the survivors shrink the
	// communicator, the dead rank's buddy re-owns its leaves from the
	// in-memory replica, and the run resumes from the replicated step
	// with zero disk I/O.
	RecoverShrink
)

// ErrRetired is returned by RunResilient on a rank that failed
// permanently under RecoverShrink: the rank has been removed from the
// world and must not communicate again.
var ErrRetired = errors.New("amr: rank retired after permanent failure (shrinking recovery)")

// errSilenced is the internal conversion of an injected Hang: the rank
// goes dark without marking itself dead.
var errSilenced = errors.New("amr: rank silenced by injected hang")

// ErrInterrupted is returned (wrapped) by RunResilientCtx when the run
// was stopped by context cancellation rather than by an error.
var ErrInterrupted = errors.New("amr: run interrupted")

// ResilienceConfig tunes RunResilient. The semantics match the uniform
// simulation's sim.ResilienceConfig field for field.
type ResilienceConfig struct {
	// CheckpointEvery protects every multiple of this coarse-step count.
	// 0 disables protection: failures rewind to the initial state, and
	// shrink recovery has no replicas to restore from.
	CheckpointEvery int
	// Dir is the checkpoint root directory; empty disables disk
	// checkpointing (RecoverShrink then runs purely in memory).
	Dir string
	// Mode selects rewind (default) or shrinking recovery.
	Mode RecoveryMode
	// MaxFailures caps tolerated rank-failure events. Negative selects
	// the default of 8; 0 aborts on the first failure.
	MaxFailures int
	// BackoffBase and BackoffMax shape the capped exponential delay
	// between failure detection and the recovery rendezvous; zero means
	// 10ms base, 2s cap.
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

// Validate normalizes the configuration in place and rejects unknown
// recovery modes.
func (rc *ResilienceConfig) Validate() error {
	if rc.Mode != RecoverRewind && rc.Mode != RecoverShrink {
		return fmt.Errorf("amr: unknown or unsupported recovery mode %d", rc.Mode)
	}
	if rc.CheckpointEvery < 0 {
		return fmt.Errorf("amr: negative checkpoint interval %d", rc.CheckpointEvery)
	}
	if rc.MaxFailures < 0 {
		rc.MaxFailures = 8
	}
	if rc.BackoffBase == 0 {
		rc.BackoffBase = 10 * time.Millisecond
	}
	if rc.BackoffMax == 0 {
		rc.BackoffMax = 2 * time.Second
	}
	return nil
}

// backoff returns the capped exponential delay for the nth failure
// (1-based).
func (rc *ResilienceConfig) backoff(n int) time.Duration {
	d := rc.BackoffBase
	for i := 1; i < n; i++ {
		d *= 2
		if d >= rc.BackoffMax {
			return rc.BackoffMax
		}
	}
	if d > rc.BackoffMax {
		return rc.BackoffMax
	}
	return d
}

// RecoveryStats accumulates what resilient execution did.
type RecoveryStats struct {
	FailuresDetected        int
	Restores                int
	BuddyRestores           int // in-memory shrink restores
	DiskRestores            int // disk-fallback shrink restores
	Shrinks                 int
	StepsReplayed           int
	CheckpointsWritten      int
	CheckpointBytes         int64
	Replications            int
	ReplicaBytes            int64
	LeavesAdopted           int
	DiskReadsDuringRecovery int64
	TimeLost                time.Duration
	RestoreLatency          time.Duration
}

// RunResilient advances the simulation by the given number of coarse
// steps under the fault-tolerant driver. Under RecoverShrink a rank
// that failed permanently returns ErrRetired.
func (s *Sim) RunResilient(steps int, rc ResilienceConfig) (RecoveryStats, error) {
	return s.RunResilientCtx(context.Background(), steps, rc)
}

// RunResilientCtx is RunResilient bound to a context. Cancellation
// stops the driver at the next coarse-step boundary, never inside a
// checkpoint; the cancellation vote costs one scalar allreduce per
// step.
func (s *Sim) RunResilientCtx(ctx context.Context, steps int, rc ResilienceConfig) (RecoveryStats, error) {
	if err := rc.Validate(); err != nil {
		return RecoveryStats{}, err
	}
	if rc.Mode == RecoverShrink {
		s.buddy = newBuddyState()
	}
	var rec RecoveryStats
	failures := 0
	needRestore := false
	var deadPending []int // world ranks whose leaves still need re-owning

	// onFailure classifies one rank-failure event; non-nil means this
	// rank is done (retired or out of budget).
	onFailure := func(err error) error {
		var rfe *comm.RankFailedError
		if !errors.As(err, &rfe) {
			return err
		}
		failures++
		rec.FailuresDetected++
		if failures > rc.MaxFailures {
			return fmt.Errorf("amr: giving up after %d rank failures: %w", failures, err)
		}
		if rc.Mode == RecoverShrink {
			if rfe.Rank == s.Comm.WorldRank() {
				s.Comm.Retire()
				return ErrRetired
			}
			found := false
			for _, d := range deadPending {
				found = found || d == rfe.Rank
			}
			if !found {
				deadPending = append(deadPending, rfe.Rank)
			}
		}
		return nil
	}

	for {
		if needRestore {
			recStart := s.tel.driver.Start()
			tRec := time.Now()
			sleepCtx(ctx, rc.backoff(failures))
			if rc.Mode == RecoverShrink {
				for _, d := range deadPending {
					s.Comm.MarkDead(d)
				}
			}
			s.Comm.Recover()
			resStart := s.tel.driver.Start()
			tRestore := time.Now()
			prevStep := s.step
			diskBefore := s.recoveryDiskReads
			var restored int64
			var err error
			if rc.Mode == RecoverShrink {
				restored, err = s.shrinkRestoreAttempt(deadPending, rc, &rec, tRestore)
			} else {
				restored, err = s.restoreAttempt(rc.Dir)
			}
			rec.DiskReadsDuringRecovery += s.recoveryDiskReads - diskBefore
			if err != nil {
				rec.TimeLost += time.Since(tRec)
				if terminal := onFailure(err); terminal != nil {
					return rec, terminal
				}
				continue
			}
			deadPending = nil
			rec.Restores++
			if rc.Mode == RecoverRewind {
				rec.RestoreLatency += time.Since(tRestore)
			}
			if prevStep > int(restored) {
				rec.StepsReplayed += prevStep - int(restored)
			}
			rec.TimeLost += time.Since(tRec)
			s.tel.driver.Span(telemetry.PhaseRestore, s.step, 0, resStart)
			s.tel.driver.Span(telemetry.PhaseRecovery, s.step, 0, recStart)
			needRestore = false
		}

		err := s.runAttempt(ctx, steps, rc, &rec)
		if err == nil {
			break
		}
		if errors.Is(err, ErrInterrupted) {
			return rec, err
		}
		if errors.Is(err, errSilenced) {
			// Injected silent failure: go dark without a trace; the
			// survivors detect the silence by timeout and shrink.
			return rec, ErrRetired
		}
		if terminal := onFailure(err); terminal != nil {
			return rec, terminal
		}
		needRestore = true
	}
	return rec, nil
}

// runAttempt executes coarse steps until completion or the first
// detected failure, converting injected-crash panics into the typed
// error the communication layer returns.
func (s *Sim) runAttempt(ctx context.Context, total int, rc ResilienceConfig, rec *RecoveryStats) (err error) {
	defer convertCrash(&err)
	for s.step < total {
		if stop, verr := s.cancelVote(ctx); verr != nil {
			return verr
		} else if stop {
			return interrupted(ctx)
		}
		// Arm this step's injected crashes and hangs before any
		// collective work (each spec fires at most once across replays).
		s.Comm.SetStep(s.step)
		if rc.Mode == RecoverShrink && rc.CheckpointEvery > 0 &&
			s.step%rc.CheckpointEvery == 0 && s.buddy.lastStep != s.step {
			// Produce a replica generation, including one at step 0 so
			// the buddy always holds at least the initial state.
			repStart := s.tel.driver.Start()
			if err := s.replicate(s.step, rec); err != nil {
				return err
			}
			s.tel.driver.Span(telemetry.PhaseReplicate, s.step, 0, repStart)
		}
		if rc.CheckpointEvery > 0 && rc.Dir != "" && s.step > 0 && s.step%rc.CheckpointEvery == 0 {
			ckStart := s.tel.driver.Start()
			n, err := s.WriteCheckpointSet(rc.Dir, s.step)
			if err != nil {
				return err
			}
			if n > 0 {
				rec.CheckpointsWritten++
				rec.CheckpointBytes += n
			}
			s.tel.driver.Span(telemetry.PhaseCheckpoint, s.step, 0, ckStart)
		}
		if err := s.Step(); err != nil {
			return err
		}
	}
	return s.Comm.BarrierErr()
}

// restoreAttempt wraps RestoreLatestCheckpointSet with panic conversion
// (a crash can be scheduled to fire during recovery traffic too).
func (s *Sim) restoreAttempt(dir string) (step int64, err error) {
	defer convertCrash(&err)
	return s.RestoreLatestCheckpointSet(dir)
}

// shrinkRestoreAttempt wraps shrinkRecover the same way.
func (s *Sim) shrinkRestoreAttempt(dead []int, rc ResilienceConfig, rec *RecoveryStats, start time.Time) (step int64, err error) {
	defer convertCrash(&err)
	return s.shrinkRecover(dead, rc, rec, start)
}

// convertCrash converts injected-failure panics into the typed errors
// of the communication layer; other panics propagate.
func convertCrash(err *error) {
	if r := recover(); r != nil {
		if cr, ok := r.(comm.Crash); ok {
			*err = &comm.RankFailedError{Rank: cr.Rank, Cause: "injected crash"}
			return
		}
		if _, ok := r.(comm.Hang); ok {
			*err = errSilenced
			return
		}
		var rfe *comm.RankFailedError
		if e, isErr := r.(error); isErr && errors.As(e, &rfe) {
			*err = rfe
			return
		}
		panic(r)
	}
}

// cancelVote is the collective cancellation check: the loop stops iff
// any rank's context is done, so all ranks agree on the exact step the
// run ends at. No communication for non-cancellable contexts.
func (s *Sim) cancelVote(ctx context.Context) (stop bool, err error) {
	if ctx == nil || ctx.Done() == nil {
		return false, nil
	}
	flag := int64(0)
	if ctx.Err() != nil {
		flag = 1
	}
	v, err := s.Comm.AllreduceInt64Err(flag, comm.Max[int64])
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

// interrupted builds the ErrInterrupted-wrapping error of a cancelled
// run.
func interrupted(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil {
		return fmt.Errorf("%w: %w", ErrInterrupted, cause)
	}
	return ErrInterrupted
}

// sleepCtx sleeps for d or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) {
	if ctx == nil || ctx.Done() == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
