package amr

import (
	"context"
	"time"

	"walberla/internal/telemetry"
)

// Level-wise recursive timestepping (Schornbaum–Rüde): one coarse step
// is advance(0), and
//
//	advance(ℓ): exchange(ℓ); sweep(ℓ); advance(ℓ+1, 0); advance(ℓ+1, 1)
//
// so a level-ℓ block performs 2^ℓ collide-stream sweeps per coarse
// step and refreshes its ghosts before each one. The coarse level
// sweeps first: its exchange restricts time-aligned fine data (the
// fine level has not advanced yet), and because the buffer swap leaves
// the pre-sweep state in Dst, both ends of the parent's interval are
// in memory when the fine sub-steps run. The first sub-step (phase 0)
// reads coarse ghosts at the interval start (the parent's Dst) and the
// second (phase 1) the midpoint average ½(Dst+Src) — linear temporal
// interpolation, so the level coupling is second order in time. A
// zeroth-order hold instead (always reading the interval start) leaks
// momentum through the interface: in a decaying flow the held value is
// systematically larger than the time-aligned one, and the bias
// accumulates as a spurious source.

// Step advances the simulation by one coarse step, running the
// refine/coarsen controller first every Refinement.Interval steps.
// Before the very first step the controller iterates to a fixpoint
// instead of passing once: 2:1 grading admits only one level per pass,
// so a sharp initial feature needs MaxLevel passes to be fully
// resolved — and resolving it before any physics runs lets each pass
// re-sample the exact initial condition (see migrate) rather than
// interpolate a coarse representation of it.
func (s *Sim) Step() error {
	if iv := s.cfg.Refinement.Interval; iv > 0 && s.step%iv == 0 {
		for pass := 0; ; pass++ {
			changed, err := s.regrade()
			if err != nil {
				return err
			}
			if !changed || s.step > 0 || pass >= s.cfg.Refinement.MaxLevel {
				break
			}
		}
	}
	if err := s.advance(0, 0); err != nil {
		return err
	}
	s.step++
	s.tel.steps.Inc()
	return nil
}

// advance runs one sub-step of one level; phase says which half of the
// parent's interval this call covers and selects the temporal
// interpolation of coarse→fine ghost transfers (level 0 has no parent
// and ignores it).
func (s *Sim) advance(level, phase int) error {
	t0 := time.Now()
	lt0 := s.tel.driver.Start()
	if err := s.exchangeLevel(level, phase); err != nil {
		return err
	}
	s.tel.driver.Span(telemetry.PhaseAMRExchange, s.step, int32(level), lt0)
	xNs := time.Since(t0).Nanoseconds()
	s.stats.ExchangeNs[level] += xNs
	s.tel.exchangeNs[level].Add(xNs)
	s.sweepLevel(level)
	if level < s.maxLevel {
		if err := s.advance(level+1, 0); err != nil {
			return err
		}
		if err := s.advance(level+1, 1); err != nil {
			return err
		}
	}
	return nil
}

// sweepLevel runs boundary handling and the collide-stream kernel on
// every owned block of one level, then swaps the double buffers. Blocks
// are independent (kernels read ghosts, write only their own Dst), so
// the pool schedule cannot change results.
func (s *Sim) sweepLevel(level int) {
	t0 := time.Now()
	lt0 := s.tel.driver.Start()
	blocks := s.blocksByLevel[level]
	k := s.kernels[level]
	s.pool.run(len(blocks), func(worker, i int) {
		b := blocks[i]
		if b.Boundary != nil {
			b.Boundary.Apply(b.Src)
		}
		k.Sweep(b.Src, b.Dst, b.Flags)
		b.Src, b.Dst = b.Dst, b.Src
	})
	s.tel.driver.Span(telemetry.PhaseAMRSweep, s.step, int32(level), lt0)
	ns := time.Since(t0).Nanoseconds()
	s.stats.SweepNs[level] += ns
	s.tel.sweepNs[level].Add(ns)
}

// Run advances the simulation by the given number of coarse steps.
func (s *Sim) Run(steps int) error {
	for i := 0; i < steps; i++ {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunCtx is Run with cooperative cancellation: all ranks vote on the
// context state every coarse step, so they stop at the same step.
func (s *Sim) RunCtx(ctx context.Context, steps int) error {
	for i := 0; i < steps; i++ {
		var canceled int64
		if ctx.Err() != nil {
			canceled = 1
		}
		v, err := s.Comm.AllreduceInt64Err(canceled, func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
		if err != nil {
			return err
		}
		if v > 0 {
			return ctx.Err()
		}
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}
