package amr

import (
	"bytes"
	"fmt"
	"path/filepath"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/output"
	"walberla/internal/telemetry"
)

// In-memory buddy checkpointing and shrinking recovery for refined
// worlds. The discipline mirrors the uniform simulation's (sim/buddy.go)
// with one structural simplification: because the leaf list is
// replicated metadata and flag fields are a pure function of the
// config, a replica needs no side-band block metadata — the WBK2
// records already carry the full leaf identity, and the post-shrink
// topology is rebuilt by the same leaf-descriptor allgather the disk
// restore uses. On the in-memory path recovery touches the disk zero
// times (asserted via RecoveryStats.DiskReadsDuringRecovery).

// tagBuddy carries replica generations; kept away from the exchange
// (tagExchange+level) and migration (tagMigrate) windows.
const tagBuddy = 1<<28 + 96

// buddyMsg is one replication generation shipped to the buddy rank.
type buddyMsg struct {
	// Step is the generation's coarse-step barrier.
	Step int
	// SrcWorld is the producing rank's world rank — stable across
	// shrinks, unlike communicator ranks.
	SrcWorld int
	// Payload is the WBK2 leaf-file encoding of all owned leaves; CRC is
	// its CRC32C.
	Payload []byte
	CRC     uint32
}

// replicaGen is one received generation, CRC-validated and decoded at
// receipt so the eventual restore is a pure memory operation.
type replicaGen struct {
	step     int
	srcWorld int
	snaps    []output.LeafSnapshot
}

// ownGen is one locally-held snapshot generation: the owned leaf
// descriptors plus raw field copies (in the configured layout),
// restored without decoding.
type ownGen struct {
	step   int
	leaves []blockforest.Leaf
	src    [][]float64
	dst    [][]float64
}

// buddyState is the double-buffered replication state of one rank.
type buddyState struct {
	parity  int            // slot the next generation writes
	own     [2]ownGen      // this rank's raw snapshots
	replica [2]*replicaGen // the ward's decoded generations held here
	// lastStep is the step of the newest generation this rank produced
	// (-1 before the first), deduplicating the post-restore generation.
	lastStep int
}

func newBuddyState() *buddyState {
	b := &buddyState{lastStep: -1}
	b.own[0].step, b.own[1].step = -1, -1
	return b
}

// ownAt returns the own snapshot of the given step, or nil.
func (b *buddyState) ownAt(step int) *ownGen {
	for i := range b.own {
		if b.own[i].step == step {
			return &b.own[i]
		}
	}
	return nil
}

// replicaAt returns the committed replica generation of the given
// producing world rank and step, or nil.
func (b *buddyState) replicaAt(srcWorld, step int) *replicaGen {
	for _, g := range b.replica {
		if g != nil && g.srcWorld == srcWorld && g.step == step {
			return g
		}
	}
	return nil
}

// replicaLatest returns the newest committed generation step held for
// the producing world rank (-1 if none).
func (b *buddyState) replicaLatest(srcWorld int) int {
	latest := -1
	for _, g := range b.replica {
		if g != nil && g.srcWorld == srcWorld && g.step > latest {
			latest = g.step
		}
	}
	return latest
}

// copyInto copies src into dst, reusing dst's storage when it fits.
func copyInto(dst, src []float64) []float64 {
	if cap(dst) < len(src) {
		dst = make([]float64, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

// replicate produces one protection generation at a coarse-step
// barrier: the own raw snapshot, and the serialized replica shipped to
// the buddy rank (rank+1) mod size. Collective over s.Comm.
func (s *Sim) replicate(step int, rec *RecoveryStats) error {
	b := s.buddy
	c := s.Comm

	// Own snapshot first: purely local, so every survivor of a failure
	// during the exchange below still owns this generation.
	p := b.parity
	og := &b.own[p]
	og.step = step
	og.leaves = og.leaves[:0]
	if len(og.src) != len(s.blocks) {
		og.src = make([][]float64, len(s.blocks))
		og.dst = make([][]float64, len(s.blocks))
	}
	for i, bd := range s.blocks {
		og.leaves = append(og.leaves, blockforest.Leaf{ID: bd.ID, Coord: bd.Coord})
		og.src[i] = copyInto(og.src[i], bd.Src.Data())
		og.dst[i] = copyInto(og.dst[i], bd.Dst.Data())
	}
	b.lastStep = step

	if c.Size() < 2 {
		b.parity ^= 1
		return nil // no buddy to protect or be protected by
	}

	var payload bytes.Buffer
	_, crc, err := output.WriteLeafFile(&payload, s.leafSnapshots())
	if err != nil {
		return fmt.Errorf("amr: encoding replica payload: %w", err)
	}
	msg := &buddyMsg{Step: step, SrcWorld: c.WorldRank(), Payload: payload.Bytes(), CRC: crc}
	buddy := (c.Rank() + 1) % c.Size()
	ward := (c.Rank() + c.Size() - 1) % c.Size()
	if err := c.SendErr(buddy, tagBuddy, msg); err != nil {
		return err
	}
	got, _, err := c.RecvErr(ward, tagBuddy)
	if err != nil {
		return err
	}
	in, ok := got.(*buddyMsg)
	if !ok {
		return fmt.Errorf("amr: unexpected buddy payload %T", got)
	}
	rec.Replications++
	rec.ReplicaBytes += int64(len(msg.Payload))
	// Validate and decode at receipt: a corrupt generation is simply not
	// committed, and the previous one stays restorable.
	if output.CRC32C(in.Payload) == in.CRC {
		if snaps, rcrc, derr := output.ReadLeafFileStored(bytes.NewReader(in.Payload), s.cfg.Stencil); derr == nil && rcrc == in.CRC {
			b.replica[p] = &replicaGen{step: in.Step, srcWorld: in.SrcWorld, snaps: snaps}
		}
	}
	b.parity ^= 1
	// Commit barrier: bounds generation skew at one under gray failures,
	// guaranteeing the recovery vote always finds a common restorable
	// generation (see sim/buddy.go for the full argument).
	return c.BarrierErr()
}

// shrinkRecover repairs the world after permanent failures: shrink the
// communicator onto the survivors, vote on the newest restorable
// generation, rewind every survivor from its own snapshot, let each
// dead rank's buddy adopt the replica leaves, and rebuild the whole
// topology (leaf list, kernels, exchange plan) from the restored leaf
// descriptors. Falls back to the disk checkpoint sets when no common
// in-memory generation survives. Returns the restored coarse step.
func (s *Sim) shrinkRecover(dead []int, rc ResilienceConfig, rec *RecoveryStats, start time.Time) (int64, error) {
	shrinkStart := s.tel.driver.Start()
	c := s.Comm
	b := s.buddy
	oldSize := c.Size()
	oldRank := c.Rank()

	deadOld := make(map[int]bool, len(dead)) // dead old-comm ranks
	for _, d := range dead {
		r := c.CommRankOf(d)
		if r < 0 {
			return 0, fmt.Errorf("amr: dead world rank %d is not a member of the communicator", d)
		}
		deadOld[r] = true
	}

	newComm, _ := c.Shrink()
	if newComm == nil {
		return 0, ErrRetired
	}

	// The adopter of each dead rank is its buddy — deterministic, so no
	// agreement traffic is needed. A dead buddy means the replica died
	// with it: compound failure, unrecoverable in memory.
	var myWardWorlds []int // dead world ranks this rank adopts from
	var myWardOld []int    // the same wards as old-comm ranks (disk rung)
	for dr := range deadOld {
		a := (dr + 1) % oldSize
		if deadOld[a] {
			return 0, fmt.Errorf("amr: buddy rank of dead rank %d died too; compound failure is unrecoverable", dr)
		}
		if a == oldRank {
			myWardWorlds = append(myWardWorlds, c.WorldRankOf(dr))
			myWardOld = append(myWardOld, dr)
		}
	}

	// Vote on the restore generation: the newest step every survivor can
	// serve from memory — own snapshots everywhere, plus the replicas of
	// the dead on their adopters.
	cand := b.own[0].step
	if b.own[1].step > cand {
		cand = b.own[1].step
	}
	for _, w := range myWardWorlds {
		if lw := b.replicaLatest(w); lw < cand {
			cand = lw
		}
	}
	g, err := newComm.AllreduceInt64Err(int64(cand), comm.Min[int64])
	if err != nil {
		return 0, err
	}
	have := int64(1)
	if g >= 0 {
		if b.ownAt(int(g)) == nil {
			have = 0
		}
		for _, w := range myWardWorlds {
			if b.replicaAt(w, int(g)) == nil {
				have = 0
			}
		}
	}
	agree, err := newComm.AllreduceInt64Err(have, comm.Min[int64])
	if err != nil {
		return 0, err
	}

	var restored int64
	var blocks []*Block
	if g >= 0 && agree == 1 {
		// Pure in-memory path: raw rewind + decoded replica adoption.
		og := b.ownAt(int(g))
		for i, bl := range og.leaves {
			bl.Rank = newComm.Rank()
			blk := s.newBlock(leafFrom(bl), false)
			copy(blk.Src.Data(), og.src[i])
			copy(blk.Dst.Data(), og.dst[i])
			blocks = append(blocks, blk)
		}
		for _, w := range myWardWorlds {
			gen := b.replicaAt(w, int(g))
			adopted, err := s.blocksFromSnapshots(gen.snaps, newComm.Rank())
			if err != nil {
				return 0, err
			}
			blocks = append(blocks, adopted...)
			rec.LeavesAdopted += len(adopted)
		}
		restored = g
		rec.BuddyRestores++
	} else {
		restored, blocks, err = s.diskShrinkRestore(oldRank, oldSize, myWardOld, rc, newComm, rec)
		if err != nil {
			return 0, err
		}
		rec.DiskRestores++
	}

	// Commit the new topology: the leaf-descriptor allgather of
	// installRestored rebuilds the forest with new-communicator ranks,
	// so no old→new renumbering pass is needed.
	s.Comm = newComm
	if err := s.installRestored(blocks, int(restored)); err != nil {
		return 0, err
	}
	rec.Shrinks++

	// Drop all pre-shrink generations (their ranks are stale); the time
	// loop re-replicates on the new topology before the first
	// post-restore step, since a restored step is always a checkpoint
	// barrier.
	s.buddy = newBuddyState()

	ready := time.Since(start)
	if err := newComm.BarrierErr(); err != nil {
		return 0, err
	}
	rec.RestoreLatency += ready
	s.tel.driver.Span(telemetry.PhaseShrink, int(restored), 0, shrinkStart)
	return restored, nil
}

// diskShrinkRestore is the fallback rung of shrinking recovery: the
// survivors restore their own leaves from the newest valid disk set
// written by the pre-shrink world, and each adopter reads its dead
// wards' rank files too. Collective over newComm.
func (s *Sim) diskShrinkRestore(oldRank, oldSize int, wardOld []int, rc ResilienceConfig, newComm *comm.Comm, rec *RecoveryStats) (int64, []*Block, error) {
	if rc.Dir == "" {
		return 0, nil, fmt.Errorf("amr: no common in-memory generation and no disk checkpoint directory configured")
	}
	var candidates []int64
	if newComm.Rank() == 0 {
		candidates = output.ListValidSets(rc.Dir)
		s.recoveryDiskReads++
	}
	v, err := newComm.BcastErr(0, candidates)
	if err != nil {
		return 0, nil, err
	}
	if v != nil {
		candidates = v.([]int64)
	}

	for _, step := range candidates {
		setDir := filepath.Join(rc.Dir, output.SetDirName(int(step)))
		blocks, loadErr := s.loadRankLeafFile(setDir, oldRank, oldSize, newComm.Rank())
		if loadErr == nil {
			for _, w := range wardOld {
				var adopted []*Block
				adopted, loadErr = s.loadRankLeafFile(setDir, w, oldSize, newComm.Rank())
				if loadErr != nil {
					break
				}
				blocks = append(blocks, adopted...)
				rec.LeavesAdopted += len(adopted)
			}
		}
		ok := int64(1)
		if loadErr != nil {
			ok = 0
		}
		agree, err := newComm.AllreduceInt64Err(ok, comm.Min[int64])
		if err != nil {
			return 0, nil, err
		}
		if agree == 0 {
			continue
		}
		return step, blocks, nil
	}
	return 0, nil, fmt.Errorf("amr: no usable disk checkpoint set for shrink recovery in %s", rc.Dir)
}
