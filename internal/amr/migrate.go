package amr

import (
	"bytes"
	"fmt"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/comm"
	"walberla/internal/field"
	"walberla/internal/output"
	"walberla/internal/telemetry"
)

// Block migration. Every re-grade maps the old forest onto the new one
// with three payload kinds, each shipped in the layout-independent WBK2
// leaf stream (one aggregated message per destination rank):
//
//   - kept leaves move (or stay) as-is;
//   - a split leaf is prolonged into its eight children at the source —
//     the interpolation runs where the parent data lives, so the wire
//     carries exactly the new state;
//   - a merged octet ships its eight children to the parent's new owner
//     and is restricted there.
//
// One exception: before the first step (step 0) with a Config
// InitialState, split children are re-initialized from the initial
// condition at the destination instead of prolonged — the parent's
// cells are still exact point samples of InitialState, so re-sampling
// at the fine centers is exact where trilinear interpolation would bake
// an O(h²) smoothing of the feature into the run. Nothing ships for
// such children, and because InitialState is pure the result is
// bit-identical on every rank.
//
// Both Src and Dst fields transfer (non-fluid interior cells carry
// state the kernels never rewrite), while flag fields are regenerated
// at the destination from the pure Config.Flags function. Because every
// rank derives the same movement table from the replicated metadata, no
// negotiation precedes the point-to-point payload exchange.

// tagMigrate carries WBK2 migration payloads between re-grades.
const tagMigrate = 1<<28 + 64

// payload describes one WBK2 record's journey for one re-grade.
type payload struct {
	id       blockforest.BlockID // record identity (old leaf or new child)
	src, dst int                 // comm ranks
	kind     opKindMigrate
	newLeaf  int // index into the graded leaf list
	oct      int // octant for split/merge payloads
}

type opKindMigrate uint8

const (
	payloadKeep opKindMigrate = iota
	payloadSplit
	payloadSplitInit // split child re-initialized from InitialState at step 0; no wire payload
	payloadMerge
)

// migrate installs a graded leaf set: ships payloads, rebuilds blocks,
// kernels and the exchange plan.
func (s *Sim) migrate(graded []blockforest.Leaf) error {
	t0 := time.Now()
	lt0 := s.tel.driver.Start()
	me := s.Comm.Rank()
	oldByID := make(map[blockforest.BlockID]Leaf, len(s.leaves))
	for _, l := range s.leaves {
		oldByID[l.ID] = l
	}

	// The movement table, in canonical new-leaf order (identical on all
	// ranks).
	var moves []payload
	splits, merges := 0, 0
	for ni, nl := range graded {
		if ol, ok := oldByID[nl.ID]; ok {
			moves = append(moves, payload{id: nl.ID, src: ol.Rank, dst: nl.Rank, kind: payloadKeep, newLeaf: ni})
			continue
		}
		if nl.ID.Level > 0 {
			if op, ok := oldByID[nl.ID.Parent()]; ok {
				splits++
				kind, src := payloadSplit, op.Rank
				if s.step == 0 && s.cfg.InitialState != nil {
					kind, src = payloadSplitInit, nl.Rank
				}
				moves = append(moves, payload{id: nl.ID, src: src, dst: nl.Rank, kind: kind,
					newLeaf: ni, oct: nl.ID.Octant()})
				continue
			}
		}
		// Merge: children must exist in the old forest.
		for o := 0; o < 8; o++ {
			cid := nl.ID.Child(o)
			oc, ok := oldByID[cid]
			if !ok {
				return fmt.Errorf("amr: graded leaf %v has neither ancestor nor children", nl.ID)
			}
			moves = append(moves, payload{id: cid, src: oc.Rank, dst: nl.Rank, kind: payloadMerge,
				newLeaf: ni, oct: o})
		}
		merges++
	}
	moved := 0
	sendTo := map[int][]payload{}
	recvFrom := map[int]bool{}
	var localPayloads []output.LeafSnapshot
	for _, m := range moves {
		if m.kind == payloadSplitInit {
			continue // materialized at the destination, nothing ships
		}
		if m.src != m.dst {
			moved++
		}
		switch {
		case m.src == me && m.dst == me:
			localPayloads = append(localPayloads, s.buildPayload(m))
		case m.src == me:
			sendTo[m.dst] = append(sendTo[m.dst], m)
		case m.dst == me:
			recvFrom[m.src] = true
		}
	}

	// Post receives first, then ship one aggregated WBK2 blob per
	// destination; ranks are walked in a fixed order.
	reqs := map[int]*comm.RecvRequest{}
	for r := 0; r < s.Comm.Size(); r++ {
		if recvFrom[r] {
			reqs[r] = s.Comm.Irecv(r, tagMigrate)
		}
	}
	for r := 0; r < s.Comm.Size(); r++ {
		ms, ok := sendTo[r]
		if !ok {
			continue
		}
		snaps := make([]output.LeafSnapshot, len(ms))
		for i, m := range ms {
			snaps[i] = s.buildPayload(m)
		}
		var buf bytes.Buffer
		if _, _, err := output.WriteLeafFile(&buf, snaps); err != nil {
			return fmt.Errorf("amr: encoding migration payload for rank %d: %w", r, err)
		}
		if err := s.Comm.SendErr(r, tagMigrate, buf.Bytes()); err != nil {
			return fmt.Errorf("amr: migration send to rank %d: %w", r, err)
		}
	}
	incoming := make(map[blockforest.BlockID]output.LeafSnapshot)
	for _, sn := range localPayloads {
		incoming[snapID(sn)] = sn
	}
	for r := 0; r < s.Comm.Size(); r++ {
		rp, ok := reqs[r]
		if !ok {
			continue
		}
		data, _, err := rp.Wait()
		if err != nil {
			return fmt.Errorf("amr: migration recv from rank %d: %w", r, err)
		}
		raw, ok := data.([]byte)
		if !ok {
			return fmt.Errorf("amr: migration recv from rank %d: unexpected %T", r, data)
		}
		snaps, _, err := output.ReadLeafFileStored(bytes.NewReader(raw), s.cfg.Stencil)
		if err != nil {
			return fmt.Errorf("amr: decoding migration payload from rank %d: %w", r, err)
		}
		for _, sn := range snaps {
			incoming[snapID(sn)] = sn
		}
	}

	// Assemble the new local block set.
	newBlocks := make(map[blockforest.BlockID]*Block)
	for _, m := range moves {
		if m.dst != me {
			continue
		}
		nl := leafFrom(graded[m.newLeaf])
		switch m.kind {
		case payloadSplitInit:
			newBlocks[nl.ID] = s.newBlock(nl, true)
		case payloadKeep, payloadSplit:
			sn, ok := incoming[m.id]
			if !ok {
				return fmt.Errorf("amr: missing migration payload for leaf %v", m.id)
			}
			b := &Block{Leaf: nl, Src: s.ensureLayout(sn.Src), Dst: s.ensureLayout(sn.Dst)}
			s.attachFlags(b)
			newBlocks[nl.ID] = b
		case payloadMerge:
			b := newBlocks[nl.ID]
			if b == nil {
				b = s.newBlock(nl, false)
				b.Src.FillEquilibrium(1, 0, 0, 0)
				b.Dst.FillEquilibrium(1, 0, 0, 0)
				newBlocks[nl.ID] = b
			}
			sn, ok := incoming[m.id]
			if !ok {
				return fmt.Errorf("amr: missing merge payload for child %v", m.id)
			}
			fineLevel := int(m.id.Level)
			s.restrictBlock(s.ensureLayout(sn.Src), m.oct, fineLevel, b.Src, &s.scratch[0])
			s.restrictBlock(s.ensureLayout(sn.Dst), m.oct, fineLevel, b.Dst, &s.scratch[0])
		}
	}

	// Install: new leaf list, blocks in canonical order, kernels, plan.
	s.setLeaves(graded)
	s.blocks = s.blocks[:0]
	s.byID = make(map[blockforest.BlockID]*Block, len(newBlocks))
	for _, b := range newBlocks {
		s.addBlock(b)
	}
	s.sortBlocks()
	if err := s.rebuildKernels(); err != nil {
		return err
	}
	s.rebuildPlan()

	// splits already counts new fine leaves (one per child payload);
	// merges counts octets, i.e. 8 removed leaves each.
	s.stats.Splits += splits
	s.stats.Merges += merges * 8
	s.stats.Migrated += moved
	s.tel.splits.Add(int64(splits))
	s.tel.merges.Add(int64(merges * 8))
	s.tel.migrated.Add(int64(moved))
	s.tel.driver.Span(telemetry.PhaseMigrate, s.step, int32(moved), lt0)
	ns := time.Since(t0).Nanoseconds()
	s.stats.MigrateNs += ns
	s.tel.migrateNs.Add(ns)
	return nil
}

// buildPayload materializes one outgoing WBK2 record from local state.
// Split children are prolonged here at the source, so the wire carries
// the new fine state and every destination receives ready-to-install
// fields.
func (s *Sim) buildPayload(m payload) output.LeafSnapshot {
	b := s.byID[sourceID(m)]
	if b == nil {
		panic(fmt.Sprintf("amr: payload source %v not owned", sourceID(m)))
	}
	sn := output.LeafSnapshot{Tree: m.id.Tree, Path: m.id.Path, Level: m.id.Level, Coord: b.Coord}
	switch m.kind {
	case payloadKeep, payloadMerge:
		sn.Src, sn.Dst = b.Src, b.Dst
	case payloadSplit:
		C := s.cfg.Cells
		fineLevel := int(m.id.Level)
		src := field.NewPDFField(s.cfg.Stencil, C[0], C[1], C[2], 1, s.cfg.Layout)
		dst := field.NewPDFField(s.cfg.Stencil, C[0], C[1], C[2], 1, s.cfg.Layout)
		s.prolongBlock(b.Src, m.oct, fineLevel, src, &s.scratch[0])
		s.prolongBlock(b.Dst, m.oct, fineLevel, dst, &s.scratch[0])
		sn.Src, sn.Dst = src, dst
	}
	return sn
}

// sourceID is the old leaf a payload reads from.
func sourceID(m payload) blockforest.BlockID {
	if m.kind == payloadSplit {
		return m.id.Parent()
	}
	return m.id
}

func snapID(sn output.LeafSnapshot) blockforest.BlockID {
	return blockforest.BlockID{Tree: sn.Tree, Path: sn.Path, Level: sn.Level}
}

// ensureLayout converts a restored field into the configured layout if
// the stored one differs.
func (s *Sim) ensureLayout(f *field.PDFField) *field.PDFField {
	if f.Layout == s.cfg.Layout {
		return f
	}
	return f.ConvertLayout(s.cfg.Layout)
}
