package amr

import (
	"fmt"
	"math"
	"time"

	"walberla/internal/blockforest"
	"walberla/internal/lattice"
	"walberla/internal/telemetry"
)

// The refine/coarsen controller. Every rank evaluates the flow
// criterion on its own blocks, the per-leaf marks are allgathered, and
// every rank independently runs the shared 2:1 grading routine plus the
// level-weighted balancer on the replicated leaf list — so the new
// forest and its rank assignment are computed identically everywhere
// without a coordinator, and the migration pattern is known without an
// all-to-all negotiation.

// markEntry is one leaf's criterion vote on the wire.
type markEntry struct {
	ID   blockforest.BlockID
	Mark blockforest.Mark
}

// Regrade runs one controller pass: criterion, marks, 2:1 grading,
// level-weighted rebalancing and block migration. A pass that changes
// nothing costs one allgather.
func (s *Sim) Regrade() error {
	_, err := s.regrade()
	return err
}

// regrade is Regrade plus a report of whether the forest changed, which
// the step-0 bootstrap uses to iterate to a fixpoint.
func (s *Sim) regrade() (changed bool, err error) {
	t0 := time.Now()
	lt0 := s.tel.driver.Start()
	local := make([]markEntry, 0, len(s.blocks))
	for _, b := range s.blocks {
		local = append(local, markEntry{ID: b.ID, Mark: s.markOf(b)})
	}
	gathered, err := s.Comm.AllgatherErr(local)
	if err != nil {
		return false, fmt.Errorf("amr: regrade allgather: %w", err)
	}
	byID := make(map[blockforest.BlockID]blockforest.Mark, len(s.leaves))
	for _, g := range gathered {
		for _, e := range g.([]markEntry) {
			byID[e.ID] = e.Mark
		}
	}
	marks := make([]blockforest.Mark, len(s.leaves))
	for i, l := range s.leaves {
		marks[i] = byID[l.ID]
	}
	graded := blockforest.Grade(s.bfLeaves(), marks, s.cfg.Grid, s.cfg.Periodic, s.cfg.Refinement.MaxLevel)

	// Level-weighted contiguous assignment: a level-ℓ block sweeps 2^ℓ
	// sub-steps per coarse step, so it costs 2^ℓ× a coarse block.
	weights := make([]float64, len(graded))
	for i, l := range graded {
		weights[i] = float64(int(1) << uint(l.ID.Level))
	}
	for i, r := range blockforest.AssignContiguous(weights, s.Comm.Size()) {
		graded[i].Rank = r
	}

	s.stats.Regrades++
	s.tel.regrades.Inc()
	s.tel.driver.Span(telemetry.PhaseRegrade, s.step, int32(len(graded)), lt0)
	ns := time.Since(t0).Nanoseconds()
	s.stats.RegradeNs += ns
	s.tel.regradeNs.Add(ns)

	if s.sameForest(graded) {
		return false, nil
	}
	return true, s.migrate(graded)
}

// ApplyMarks refines/coarsens explicitly marked leaves (unlisted leaves
// keep their level), bypassing the flow criterion: the static
// pre-refinement hook for geometry-driven setups and tests. The map
// must be identical on all ranks. The same 2:1 grading, level-weighted
// balancing and migration as the runtime controller apply.
func (s *Sim) ApplyMarks(m map[blockforest.BlockID]blockforest.Mark) error {
	marks := make([]blockforest.Mark, len(s.leaves))
	for i, l := range s.leaves {
		marks[i] = m[l.ID]
	}
	maxLevel := s.cfg.Refinement.MaxLevel
	if maxLevel == 0 {
		maxLevel = maxRefineLevel
	}
	graded := blockforest.Grade(s.bfLeaves(), marks, s.cfg.Grid, s.cfg.Periodic, maxLevel)
	weights := make([]float64, len(graded))
	for i, l := range graded {
		weights[i] = float64(int(1) << uint(l.ID.Level))
	}
	for i, r := range blockforest.AssignContiguous(weights, s.Comm.Size()) {
		graded[i].Rank = r
	}
	if s.sameForest(graded) {
		return nil
	}
	return s.migrate(graded)
}

// sameForest reports whether the graded leaf set matches the current
// one, identity and placement included.
func (s *Sim) sameForest(graded []blockforest.Leaf) bool {
	if len(graded) != len(s.leaves) {
		return false
	}
	for i, g := range graded {
		if g.ID != s.leaves[i].ID || g.Rank != s.leaves[i].Rank {
			return false
		}
	}
	return true
}

// markOf evaluates the refinement criterion of one block and applies
// the hysteresis band.
func (s *Sim) markOf(b *Block) blockforest.Mark {
	r := &s.cfg.Refinement
	crit := s.criterion(b)
	if crit > r.RefineAbove && b.Level() < r.MaxLevel {
		return blockforest.MarkRefine
	}
	if crit < r.CoarsenBelow && b.Level() > 0 {
		return blockforest.MarkCoarsen
	}
	return blockforest.MarkKeep
}

// criterion computes the block's flow criterion in physical units: the
// maximum over interior cells of the velocity-gradient Frobenius norm
// or the vorticity magnitude, with lattice differences rescaled by the
// level's 1/h = 2^ℓ.
func (s *Sim) criterion(b *Block) float64 {
	C := s.cfg.Cells
	st := s.cfg.Stencil
	n := C[0] * C[1] * C[2]
	u := make([][3]float64, n)
	f := make([]float64, st.Q)
	idx := func(x, y, z int) int { return (z*C[1]+y)*C[0] + x }
	for z := 0; z < C[2]; z++ {
		for y := 0; y < C[1]; y++ {
			for x := 0; x < C[0]; x++ {
				for a := 0; a < st.Q; a++ {
					f[a] = b.Src.Get(x, y, z, lattice.Direction(a))
				}
				_, ux, uy, uz := st.Moments(f)
				u[idx(x, y, z)] = [3]float64{ux, uy, uz}
			}
		}
	}
	// One-sided differences at block edges, central inside; ghost
	// moments are never read, so the criterion is a pure function of
	// the block's interior state.
	diff := func(x, y, z, axis, comp int) float64 {
		lo, hi := [3]int{x, y, z}, [3]int{x, y, z}
		if lo[axis] > 0 {
			lo[axis]--
		}
		if hi[axis] < C[axis]-1 {
			hi[axis]++
		}
		if lo[axis] == hi[axis] {
			return 0
		}
		d := u[idx(hi[0], hi[1], hi[2])][comp] - u[idx(lo[0], lo[1], lo[2])][comp]
		return d / float64(hi[axis]-lo[axis])
	}
	h := float64(int(1) << uint(b.Level())) // 1/h: physical gradients
	var maxCrit float64
	for z := 0; z < C[2]; z++ {
		for y := 0; y < C[1]; y++ {
			for x := 0; x < C[0]; x++ {
				var crit float64
				if s.cfg.Refinement.Criterion == CriterionVorticity {
					wx := diff(x, y, z, 1, 2) - diff(x, y, z, 2, 1)
					wy := diff(x, y, z, 2, 0) - diff(x, y, z, 0, 2)
					wz := diff(x, y, z, 0, 1) - diff(x, y, z, 1, 0)
					crit = math.Sqrt(wx*wx + wy*wy + wz*wz)
				} else {
					var sum float64
					for axis := 0; axis < 3; axis++ {
						for comp := 0; comp < 3; comp++ {
							d := diff(x, y, z, axis, comp)
							sum += d * d
						}
					}
					crit = math.Sqrt(sum)
				}
				if crit *= h; crit > maxCrit {
					maxCrit = crit
				}
			}
		}
	}
	return maxCrit
}
