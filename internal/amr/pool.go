package amr

import (
	"sync"
	"sync/atomic"
)

// workerPool is the AMR twin of the sim package's fork-join pool: tasks
// self-schedule off an atomic cursor, panics re-raise on the caller,
// and a single-worker pool degrades to a serial inline loop. All tasks
// write disjoint state, so results are bit-identical for every worker
// count.
type workerPool struct {
	workers int
}

type poolRun struct {
	cursor atomic.Int64
	_      [56]byte // keep the cursor on its own cache line
	wg     sync.WaitGroup
	panic  atomic.Value
}

// run executes task(worker, i) for i in [0, n).
func (p *workerPool) run(n int, task func(worker, i int)) {
	if n == 0 {
		return
	}
	if p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			task(0, i)
		}
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	var r poolRun
	r.wg.Add(w)
	for k := 0; k < w; k++ {
		go func(worker int) {
			defer r.wg.Done()
			defer func() {
				if v := recover(); v != nil {
					r.panic.CompareAndSwap(nil, v)
				}
			}()
			for {
				i := int(r.cursor.Add(1)) - 1
				if i >= n {
					return
				}
				task(worker, i)
			}
		}(k)
	}
	r.wg.Wait()
	if v := r.panic.Load(); v != nil {
		panic(v)
	}
}
